package billing

import (
	"testing"
	"time"
)

func TestVectorMeterSumsDimensions(t *testing.T) {
	m, err := NewVectorMeter(DefaultRates(), time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// One full period at 4 cores, 8 GB RAM, 50 GB disk.
	for i := 0; i < 60; i++ {
		m.Record(4, 8, 50)
	}
	want := 4*1.0 + 8*0.25 + 50*0.02
	if got := m.TotalCost(); got != want {
		t.Fatalf("TotalCost = %v, want %v", got, want)
	}
	// Peak-based: one spiky minute dominates the next period.
	for i := 0; i < 60; i++ {
		c := 2.0
		if i == 30 {
			c = 6
		}
		m.Record(c, 8, 50)
	}
	if got := m.CPU.BilledCorePeriods(); got != 4+6 {
		t.Fatalf("CPU core-periods = %v, want 10 (peak per period)", got)
	}
	m.Reset()
	m.Record(1, 1, 1)
	m.Flush()
	if got := m.CPU.BilledCorePeriods(); got != 1 {
		t.Fatalf("after Reset+Flush: %v, want 1", got)
	}
}

func TestVectorMeterZeroRatesAreFree(t *testing.T) {
	m, err := NewVectorMeter(Rates{CPUCorePeriod: 1}, time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		m.Record(2, 100, 1000)
	}
	if got := m.TotalCost(); got != 2 {
		t.Fatalf("free RAM/disk must not bill: %v, want 2", got)
	}
}

func TestVectorMeterBadCadence(t *testing.T) {
	if _, err := NewVectorMeter(DefaultRates(), time.Hour, 7*time.Minute); err == nil {
		t.Fatal("non-dividing interval must error")
	}
}
