// Package errs defines the exported sentinel errors of the public caasper
// API. Public constructors and option validators used to fail with ad-hoc
// fmt.Errorf values that callers could only string-match; every validation
// failure now wraps one of these sentinels, so callers branch with
// errors.Is(err, caasper.ErrInvalidConfig) while the message keeps its
// full contextual detail.
//
// The package sits below every other internal package (it imports only the
// standard library) so that pvp, core, recommend, sim, dbsim, k8s and
// fleet can all wrap the same values without import cycles.
package errs

import "errors"

var (
	// ErrInvalidConfig marks a configuration or option set that fails
	// validation: core bounds out of order, non-positive cadences, empty
	// SKU ladders, malformed fleet tenant specs, …
	ErrInvalidConfig = errors.New("invalid configuration")

	// ErrBadWindow marks an invalid decision/observation window shape:
	// non-positive reactive windows, negative forecast horizons or
	// warm-up lengths.
	ErrBadWindow = errors.New("bad window")

	// ErrEmptyTrace marks a missing or empty input trace. A trace on the
	// wrong grid (the simulator and fleet require one-minute samples) is a
	// configuration mistake and wraps ErrInvalidConfig instead.
	ErrEmptyTrace = errors.New("empty or malformed trace")

	// ErrUnknownRecommender marks a recommender name outside the
	// NewRecommenderByName registry.
	ErrUnknownRecommender = errors.New("unknown recommender")
)
