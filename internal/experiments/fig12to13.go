package experiments

import (
	"fmt"
	"strings"

	"caasper/internal/sim"
	"caasper/internal/tuning"
	"caasper/internal/workload"
)

// Figure12Result holds the §6.3 parameter-tuning scatter (Figure 12):
// random parameter combinations evaluated on the cyclical trace, the
// Pareto frontier over (slack, throttling), and the reactive/proactive
// split the paper color-codes.
type Figure12Result struct {
	// Evaluations are all sampled combinations.
	Evaluations []tuning.Evaluation
	// Frontier is the Pareto-optimal subset (the red × points).
	Frontier []tuning.Evaluation
	// ReactiveCount / ProactiveCount split the sample (green vs blue).
	ReactiveCount, ProactiveCount int
	// ProactiveMeanK and ReactiveMeanK compare slack across the two
	// groups (paper: predictive runs sit at higher slack, lower
	// throttling).
	ProactiveMeanK, ReactiveMeanK float64
	ProactiveMeanC, ReactiveMeanC float64
	Report                        string
}

// Figure12 reproduces the tuning scatter on the Figure 10 workload.
// samples is the number of random combinations; the paper uses 5000 (use
// fewer for quick runs — the bench harness sweeps both).
func Figure12(seed uint64, samples int) (*Figure12Result, error) {
	tr := workload.Cyclical3Day(seed)
	simOpts := sim.DefaultOptions(14, 14)
	// Database B resizes complete in 3–5 minutes.
	simOpts.ResizeDelayMinutes = 4

	evals, err := tuning.RandomSearch(tr, tuning.SearchOptions{
		Samples:       samples,
		Seed:          seed + 1,
		Sim:           &simOpts,
		SeasonMinutes: 24 * 60,
	})
	if err != nil {
		return nil, err
	}
	res := &Figure12Result{
		Evaluations: evals,
		Frontier:    tuning.ParetoFrontier(evals),
	}
	var kR, kP, cR, cP float64
	for _, e := range evals {
		if e.Params.Proactive() {
			res.ProactiveCount++
			kP += e.K
			cP += e.C
		} else {
			res.ReactiveCount++
			kR += e.K
			cR += e.C
		}
	}
	if res.ProactiveCount > 0 {
		res.ProactiveMeanK = kP / float64(res.ProactiveCount)
		res.ProactiveMeanC = cP / float64(res.ProactiveCount)
	}
	if res.ReactiveCount > 0 {
		res.ReactiveMeanK = kR / float64(res.ReactiveCount)
		res.ReactiveMeanC = cR / float64(res.ReactiveCount)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — slack vs throttling over %d random parameter combinations\n", len(evals))
	fmt.Fprintf(&b, "reactive:  n=%d  mean K=%.0f  mean C=%.0f\n", res.ReactiveCount, res.ReactiveMeanK, res.ReactiveMeanC)
	fmt.Fprintf(&b, "proactive: n=%d  mean K=%.0f  mean C=%.0f\n", res.ProactiveCount, res.ProactiveMeanK, res.ProactiveMeanC)
	tb := NewTable("Pareto frontier (red x points)", "K (sum slack)", "C (sum insufficient)", "N (scalings)", "mode")
	for _, e := range res.Frontier {
		mode := "reactive"
		if e.Params.Proactive() {
			mode = "proactive"
		}
		tb.AddRow(e.K, e.C, e.N, mode)
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper: clear K-vs-C trade-off; predictive runs have higher slack and lower throttling\n")
	res.Report = b.String()
	return res, nil
}

// Figure13Result holds the α-sweep drill-down of Figure 13: the
// G-optimal combination for each α, showing slack shrinking and
// throttling growing as α (the slack penalty) rises.
type Figure13Result struct {
	// Alphas are the sampled coefficients (the paper displays 0, 0.063,
	// 0.447 and 2.28).
	Alphas []float64
	// Chosen is the G-optimal evaluation per α.
	Chosen []tuning.Evaluation
	Report string
}

// Figure13 reproduces the α drill-down over the Figure 12 search results.
func Figure13(fig12 *Figure12Result) (*Figure13Result, error) {
	alphas := []float64{0, 0.063, 0.447, 2.28}
	res := &Figure13Result{Alphas: alphas}
	tb := NewTable("Figure 13 — G-optimal parameter choice per alpha",
		"alpha", "K (sum slack)", "C (sum insufficient)", "N", "params")
	for _, a := range alphas {
		best, err := tuning.BestForAlpha(a, fig12.Evaluations)
		if err != nil {
			return nil, err
		}
		res.Chosen = append(res.Chosen, best)
		tb.AddRow(a, best.K, best.C, best.N, best.Params.String())
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper: as alpha increases, slack diminishes and throttling rises\n")
	res.Report = b.String()
	return res, nil
}
