package workload

import (
	"fmt"
	"sort"
	"time"

	"caasper/internal/stats"
	"caasper/internal/trace"
)

// This file synthesizes stand-ins for the Alibaba 2018 cluster-trace
// containers evaluated in §6.3 (Fig. 14 / Table 3). The original dataset
// is not redistributable and unavailable offline, so each trace ID maps to
// a seeded generator encoding the shape visible in the paper's plots and
// implied by its metrics table:
//
//	c_1      — strong diurnal cycle, 0–8 cores, moderate noise (Fig. 14a)
//	c_4043   — small, steady service ≈0.5–1.5 cores, very low slack trace
//	c_10235  — gentle diurnal 0–3 cores, no throttling in the paper
//	c_12104  — wide-swing bursty trace (highest avg slack 3.94 in Table 3)
//	c_23544  — medium diurnal with occasional bursts
//	c_24173  — noisy 0–3 core trace with frequent small oscillations
//	          (373 scalings in Table 3)
//	c_26742  — very bursty 0–3.5 cores (most scalings, 443, and the
//	          highest throttled-observation share, 1.21%)
//	c_29247  — ~0–6 cores with a huge Day-3 outlier spike to ~20 cores
//	          (Fig. 14e; the naïve forecaster projects the spike forward,
//	          inflating slack on Days 4–6)
//	c_29345  — large diurnal service with elevated baseline
//	c_29759  — well-behaved diurnal, low slack and almost no throttling
//	c_48113  — big stepped batch workload 0–20 cores with long flat
//	          plateaus (only 38 scalings in Table 3; Fig. 14f)
//
// All traces are 8 days at one-minute resolution (≈11.5k points, matching
// the paper's "around 11k data points"), already rescaled from millicores
// to whole-core ranges the way §6.3 describes.

// AlibabaIDs lists the trace identifiers in the order the paper reports
// them (Table 3).
var AlibabaIDs = []string{
	"c_1", "c_4043", "c_10235", "c_12104", "c_23544", "c_24173",
	"c_26742", "c_29247", "c_29345", "c_29759", "c_48113",
}

const alibabaDays = 8

// AlibabaTrace synthesizes the stand-in trace for the given ID. The seed
// offsets the generator so test suites can produce independent replicas;
// pass 0 for the canonical trace. Unknown IDs return an error.
func AlibabaTrace(id string, seed uint64) (*trace.Trace, error) {
	gen, ok := alibabaGenerators[id]
	if !ok {
		return nil, fmt.Errorf("workload: unknown alibaba trace %q (known: %v)", id, AlibabaIDs)
	}
	rng := stats.NewRNG(hashID(id) ^ seed)
	p := gen(rng)
	tr := Render(id, p, alibabaDays*24*time.Hour)
	tr.Sanitize()
	return tr, nil
}

// AllAlibabaTraces synthesizes every stand-in trace.
func AllAlibabaTraces(seed uint64) []*trace.Trace {
	out := make([]*trace.Trace, 0, len(AlibabaIDs))
	for _, id := range AlibabaIDs {
		tr, err := AlibabaTrace(id, seed)
		if err != nil {
			// Unreachable for the fixed ID list; panic preserves the
			// invariant loudly in tests.
			panic(err)
		}
		out = append(out, tr)
	}
	return out
}

func hashID(id string) uint64 {
	var h uint64 = 14695981039346656037 // FNV-1a
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

var alibabaGenerators = map[string]func(*stats.RNG) Pattern{
	"c_1": func(rng *stats.RNG) Pattern {
		return WithNoise(Diurnal(1.0, 7.0, 14*60), 0.5, rng)
	},
	"c_4043": func(rng *stats.RNG) Pattern {
		return WithNoise(Sine(1.0, 0.3, 6*60), 0.12, rng)
	},
	"c_10235": func(rng *stats.RNG) Pattern {
		return WithNoise(Diurnal(0.5, 2.5, 13*60), 0.18, rng)
	},
	"c_12104": func(rng *stats.RNG) Pattern {
		base := Diurnal(1.0, 5.0, 12*60)
		// Irregular tall bursts force a wide guard band => high slack.
		bursty := Add(base, randomBursts(rng.Fork(), alibabaDays, 3, 4.5, 90))
		return WithNoise(bursty, 0.4, rng)
	},
	"c_23544": func(rng *stats.RNG) Pattern {
		base := Diurnal(0.8, 3.0, 15*60)
		return WithNoise(Add(base, randomBursts(rng.Fork(), alibabaDays, 2, 1.5, 45)), 0.25, rng)
	},
	"c_24173": func(rng *stats.RNG) Pattern {
		// Fast oscillation induces frequent scalings.
		return WithNoise(Add(Sine(1.4, 0.7, 3*60), Sine(0, 0.25, 75)), 0.06, rng)
	},
	"c_26742": func(rng *stats.RNG) Pattern {
		base := Sine(1.2, 0.5, 2*60)
		return WithNoise(Add(base, randomBursts(rng.Fork(), alibabaDays, 8, 0.7, 45)), 0.08, rng)
	},
	"c_29247": func(rng *stats.RNG) Pattern {
		base := Diurnal(1.0, 5.0, 13*60)
		// The huge Day-3 outlier spike: ~20 cores for about two hours.
		spiked := Spike(base, 2*24*60+13*60, 120, 15)
		return WithNoise(spiked, 0.35, rng)
	},
	"c_29345": func(rng *stats.RNG) Pattern {
		return WithNoise(Diurnal(3.0, 9.0, 12*60), 0.5, rng)
	},
	"c_29759": func(rng *stats.RNG) Pattern {
		return WithNoise(Diurnal(0.6, 2.4, 14*60), 0.12, rng)
	},
	"c_48113": func(rng *stats.RNG) Pattern {
		// Batch workload: long plateaus at distinct levels.
		day := Piecewise(
			Segment{Pattern: Constant(2), Minutes: 6 * 60},
			Segment{Pattern: Constant(16), Minutes: 8 * 60},
			Segment{Pattern: Constant(8), Minutes: 4 * 60},
			Segment{Pattern: Constant(2), Minutes: 6 * 60},
		)
		return WithNoise(Repeat(day, 24*60), 0.4, rng)
	},
}

// randomBursts produces a pattern of nPerDay random spikes per day, each
// `height` cores tall and `width` minutes wide, at deterministic positions
// drawn from rng.
func randomBursts(rng *stats.RNG, days, nPerDay int, height, width float64) Pattern {
	type burst struct{ start, end float64 }
	var bursts []burst
	for d := 0; d < days; d++ {
		for i := 0; i < nPerDay; i++ {
			start := float64(d*24*60) + rng.Float64()*(24*60-width)
			bursts = append(bursts, burst{start, start + width})
		}
	}
	sort.Slice(bursts, func(i, j int) bool { return bursts[i].start < bursts[j].start })
	return func(m float64) float64 {
		// Linear scan is fine: burst counts are tiny and Render is the
		// only caller pattern, evaluated once per trace point.
		for _, b := range bursts {
			if m >= b.start && m < b.end {
				return height
			}
			if b.start > m {
				break
			}
		}
		return 0
	}
}

// SelectRepresentatives mimics the paper's §6.3 methodology: it clusters
// trace feature vectors with k-means and returns the trace closest to each
// centroid. The paper selected 9 representative Alibaba traces this way.
func SelectRepresentatives(traces []*trace.Trace, k int, seed uint64) ([]*trace.Trace, error) {
	if k > len(traces) {
		k = len(traces)
	}
	points := make([][]float64, len(traces))
	for i, tr := range traces {
		points[i] = tr.FeatureVector()
	}
	res, err := stats.KMeans(points, k, 200, stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	reps := res.Representatives(points)
	out := make([]*trace.Trace, 0, len(reps))
	for _, idx := range reps {
		if idx >= 0 {
			out = append(out, traces[idx])
		}
	}
	return out, nil
}
