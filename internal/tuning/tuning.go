// Package tuning implements the paper's §5 parameter-tuning methodology:
// a random search over CaaSPER's reactive parameters (the "Require:"
// inputs of Algorithm 1) and the proactive window sizes of Figure 8,
// evaluated in the trace-driven simulator; the objective function
// G(α, p) = α·K(p) + C(p) of Eq. 5 balancing slack against throttling;
// the log-uniform α sampling of Eq. 6; and Pareto-frontier extraction over
// the (K, C) plane (Figure 12).
package tuning

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"caasper/internal/core"
	"caasper/internal/forecast"
	"caasper/internal/obs"
	"caasper/internal/parallel"
	"caasper/internal/pvp"
	"caasper/internal/recommend"
	"caasper/internal/sim"
	"caasper/internal/stats"
	"caasper/internal/trace"
)

// Params is one tunable parameter combination: the Algorithm 1 inputs
// (s_h, s_l, m_h, m_l, SF_h, SF_l, c_min) plus the window sizes of the
// proactive mode. HorizonMinutes == 0 selects the purely reactive
// algorithm.
type Params struct {
	SlopeHigh      float64
	SlopeLow       float64
	SlackHigh      float64
	SlackLow       float64
	MaxStepUp      int
	MaxStepDown    int
	MinCores       int
	QuantileP      float64
	WindowMinutes  int
	HorizonMinutes int
}

// Proactive reports whether the combination uses forecasting.
func (p Params) Proactive() bool { return p.HorizonMinutes > 0 }

// ToConfig converts the combination into a core.Config over the given SKU
// ladder.
func (p Params) ToConfig(maxCores int) core.Config {
	cfg := core.DefaultConfig(maxCores)
	cfg.SlopeHigh = p.SlopeHigh
	cfg.SlopeLow = p.SlopeLow
	cfg.SlackHigh = p.SlackHigh
	cfg.SlackLow = p.SlackLow
	cfg.MaxStepUp = p.MaxStepUp
	cfg.MaxStepDown = p.MaxStepDown
	cfg.MinCores = p.MinCores
	cfg.QuantileP = p.QuantileP
	cfg.SF = pvp.ScalingFactorParams{CMin: float64(p.MinCores), SkewWeight: 4}
	return cfg
}

// String renders the combination compactly.
func (p Params) String() string {
	mode := "reactive"
	if p.Proactive() {
		mode = fmt.Sprintf("proactive(+%dm)", p.HorizonMinutes)
	}
	return fmt.Sprintf("Params{sh=%.2f sl=%.2f mh=%.2f ml=%.2f SFh=%d SFl=%d cmin=%d q=%.2f w=%dm %s}",
		p.SlopeHigh, p.SlopeLow, p.SlackHigh, p.SlackLow,
		p.MaxStepUp, p.MaxStepDown, p.MinCores, p.QuantileP, p.WindowMinutes, mode)
}

// SearchSpace bounds the random search. All ranges are inclusive.
type SearchSpace struct {
	SlopeHigh      [2]float64
	SlopeLow       [2]float64
	SlackHigh      [2]float64
	SlackLow       [2]float64
	MaxStepUp      [2]int
	MaxStepDown    [2]int
	MinCores       [2]int
	QuantileP      [2]float64
	WindowMinutes  [2]int
	HorizonMinutes [2]int
	// ProactiveFraction is the share of sampled combinations that use
	// forecasting (the paper's Figure 12 mixes green reactive and blue
	// predictive runs).
	ProactiveFraction float64
}

// DefaultSearchSpace mirrors the spread of behaviours visible in the
// paper's Figure 12 scatter.
func DefaultSearchSpace() SearchSpace {
	return SearchSpace{
		SlopeHigh:         [2]float64{0.5, 5},
		SlopeLow:          [2]float64{0.01, 0.5},
		SlackHigh:         [2]float64{0.02, 0.30},
		SlackLow:          [2]float64{0.10, 0.60},
		MaxStepUp:         [2]int{2, 12},
		MaxStepDown:       [2]int{1, 4},
		MinCores:          [2]int{2, 4},
		QuantileP:         [2]float64{0.90, 1.00},
		WindowMinutes:     [2]int{10, 120},
		HorizonMinutes:    [2]int{10, 120},
		ProactiveFraction: 0.5,
	}
}

// Sample draws one combination uniformly from the space.
func (s SearchSpace) Sample(rng *stats.RNG) Params {
	intIn := func(b [2]int) int {
		if b[1] <= b[0] {
			return b[0]
		}
		return b[0] + rng.Intn(b[1]-b[0]+1)
	}
	p := Params{
		SlopeHigh:     rng.Range(s.SlopeHigh[0], s.SlopeHigh[1]),
		SlopeLow:      rng.Range(s.SlopeLow[0], s.SlopeLow[1]),
		SlackHigh:     rng.Range(s.SlackHigh[0], s.SlackHigh[1]),
		SlackLow:      rng.Range(s.SlackLow[0], s.SlackLow[1]),
		MaxStepUp:     intIn(s.MaxStepUp),
		MaxStepDown:   intIn(s.MaxStepDown),
		MinCores:      intIn(s.MinCores),
		QuantileP:     rng.Range(s.QuantileP[0], s.QuantileP[1]),
		WindowMinutes: intIn(s.WindowMinutes),
	}
	if rng.Float64() < s.ProactiveFraction {
		p.HorizonMinutes = intIn(s.HorizonMinutes)
	}
	// Maintain the SlopeHigh ≥ SlopeLow invariant by construction.
	if p.SlopeLow > p.SlopeHigh {
		p.SlopeLow, p.SlopeHigh = p.SlopeHigh, p.SlopeLow
	}
	return p
}

// Evaluation is one simulated run of one combination.
type Evaluation struct {
	// Params is the combination evaluated.
	Params Params
	// K is the total slack, C the total insufficient CPU, N the number
	// of scalings (the §5 metrics).
	K, C float64
	N    int
	// ThrottledPct is the throttled-observation share.
	ThrottledPct float64
	// Cost is the billed core-periods.
	Cost float64
}

// SearchOptions configures RandomSearch.
type SearchOptions struct {
	// Samples is the number of combinations (the paper uses 5000).
	Samples int
	// Seed drives the deterministic sampler.
	Seed uint64
	// Space bounds the sampling; zero value uses DefaultSearchSpace.
	Space *SearchSpace
	// Sim configures the simulator; zero value uses sim.DefaultOptions
	// sized from the trace.
	Sim *sim.Options
	// SeasonMinutes is the seasonal-naive period for proactive
	// combinations (1440 for daily workloads).
	SeasonMinutes int
	// Workers bounds the evaluation fan-out; values below 1 select
	// runtime.GOMAXPROCS(0). The result is identical for every worker
	// count: combinations are sampled sequentially from the single RNG
	// stream before any evaluation starts, and evaluations land in
	// index-addressed slots.
	Workers int
	// Events, when non-nil and enabled, receives one "tuning.skip" event
	// per rejected combination, emitted in sampling order during the
	// sequential compaction phase — deterministic for every worker count.
	Events obs.Sink
	// Metrics, when non-nil, receives the search's runtime counters
	// (tuning.sampled / tuning.evaluated / tuning.skipped).
	Metrics *obs.Registry
}

// SearchReport summarises a RandomSearch run: how many combinations were
// drawn, how many evaluated cleanly, and how many were skipped as invalid.
// A large Skipped count means the SearchSpace is mis-bounded (its edges
// produce configurations Config.Validate rejects) and the effective sample
// is silently thinner than requested — exactly the failure mode this
// report exists to surface.
type SearchReport struct {
	// Sampled is the number of combinations drawn (== SearchOptions.Samples).
	Sampled int
	// Evaluated is the number of combinations simulated successfully.
	Evaluated int
	// Skipped is Sampled − Evaluated.
	Skipped int
	// FirstSkip describes the first skipped combination (by sampling
	// order) — "" when nothing was skipped.
	FirstSkip string
	// SkipReasons tallies skips by validation message, so a mis-bounded
	// space shows *which* edge is wrong, not just how often.
	SkipReasons map[string]int

	// Evaluation-pool runtime stats (wall-clock; not deterministic).
	// PoolTasks is the number of evaluations the pool executed,
	// PoolWorkers its size, PoolMaxQueue the deepest backlog observed,
	// PoolUtilization the busy÷capacity fraction in [0, 1].
	PoolTasks       int
	PoolWorkers     int
	PoolMaxQueue    int
	PoolUtilization float64
	// EvalLatencyP50 / EvalLatencyP99 are per-evaluation wall-latency
	// quantiles in milliseconds.
	EvalLatencyP50 float64
	EvalLatencyP99 float64
}

// String renders the report compactly.
func (r SearchReport) String() string {
	if r.Skipped == 0 {
		return fmt.Sprintf("SearchReport{%d/%d evaluated}", r.Evaluated, r.Sampled)
	}
	return fmt.Sprintf("SearchReport{%d/%d evaluated, %d skipped; first skip: %s}",
		r.Evaluated, r.Sampled, r.Skipped, r.FirstSkip)
}

// PoolSummary renders the evaluation pool's runtime behaviour on one line.
func (r SearchReport) PoolSummary() string {
	return fmt.Sprintf("pool: %d tasks on %d workers, max queue %d, utilization %.0f%%, eval latency p50 %.1fms p99 %.1fms",
		r.PoolTasks, r.PoolWorkers, r.PoolMaxQueue, 100*r.PoolUtilization,
		r.EvalLatencyP50, r.EvalLatencyP99)
}

// RandomSearch evaluates Samples random combinations on the trace. The
// returned slice preserves sampling order (deterministic per seed and
// worker count). Invalid combinations at the space edges are skipped; use
// RandomSearchReport to see how many.
func RandomSearch(tr *trace.Trace, opts SearchOptions) ([]Evaluation, error) {
	evals, _, err := RandomSearchReport(tr, opts)
	return evals, err
}

// RandomSearchReport is RandomSearch plus the skip accounting. The
// evaluations are computed across a bounded worker pool (opts.Workers):
// every combination is pre-sampled sequentially from the seeded RNG — so
// the sampled set is bit-identical to the historical sequential
// implementation — and evaluated into its own result slot.
func RandomSearchReport(tr *trace.Trace, opts SearchOptions) ([]Evaluation, SearchReport, error) {
	var report SearchReport
	if tr == nil || tr.Len() == 0 {
		return nil, report, errors.New("tuning: empty trace")
	}
	if opts.Samples < 1 {
		return nil, report, errors.New("tuning: Samples must be ≥ 1")
	}
	space := DefaultSearchSpace()
	if opts.Space != nil {
		space = *opts.Space
	}
	maxCores := maxCoresForTrace(tr)
	simOpts := sim.DefaultOptions(maxCores, maxCores)
	if opts.Sim != nil {
		simOpts = *opts.Sim
	}
	season := opts.SeasonMinutes
	if season <= 0 {
		season = 1440
	}

	// Phase 1 — sequential sampling: the single RNG stream is consumed in
	// sampling order only, keeping the drawn set independent of the
	// evaluation schedule.
	rng := stats.NewRNG(opts.Seed)
	params := make([]Params, opts.Samples)
	for i := range params {
		params[i] = space.Sample(rng)
	}

	// Phase 2 — parallel evaluation into index-addressed slots, with the
	// pool's runtime behaviour (latency quantiles, queue depth,
	// utilization) captured for the report.
	type outcome struct {
		ev  Evaluation
		err error
	}
	outcomes := make([]outcome, len(params))
	poolStats := parallel.NewStats()
	_ = parallel.ForEachStats(context.Background(), len(params), opts.Workers, poolStats, func(i int) error {
		ev, err := Evaluate(tr, params[i], simOpts, season)
		outcomes[i] = outcome{ev: ev, err: err}
		return nil // individual invalid combinations are skips, not failures
	})

	// Phase 3 — sequential compaction in sampling order. Skip events are
	// emitted here, not from the workers, so the stream is deterministic
	// for every worker count.
	report.Sampled = len(params)
	emitSkips := obs.Enabled(opts.Events)
	evals := make([]Evaluation, 0, len(params))
	for i, o := range outcomes {
		if o.err != nil {
			report.Skipped++
			if report.FirstSkip == "" {
				report.FirstSkip = fmt.Sprintf("sample %d %s: %v", i, params[i], o.err)
			}
			if report.SkipReasons == nil {
				report.SkipReasons = make(map[string]int)
			}
			report.SkipReasons[o.err.Error()]++
			if emitSkips {
				opts.Events.Emit(obs.Event{T: int64(i), Type: "tuning.skip", Fields: []obs.Field{
					obs.I("sample", int64(i)),
					obs.S("params", params[i].String()),
					obs.S("reason", o.err.Error()),
				}})
			}
			continue
		}
		evals = append(evals, o.ev)
	}
	report.Evaluated = len(evals)
	report.PoolTasks = int(poolStats.Tasks())
	report.PoolWorkers = poolStats.Workers()
	report.PoolMaxQueue = int(poolStats.MaxQueueDepth())
	report.PoolUtilization = poolStats.Utilization()
	report.EvalLatencyP50 = poolStats.Latency().Quantile(0.5) / 1e6
	report.EvalLatencyP99 = poolStats.Latency().Quantile(0.99) / 1e6
	if m := opts.Metrics; m != nil {
		m.Counter("tuning.sampled").Add(int64(report.Sampled))
		m.Counter("tuning.evaluated").Add(int64(report.Evaluated))
		m.Counter("tuning.skipped").Add(int64(report.Skipped))
		m.Gauge("tuning.pool_utilization").Set(report.PoolUtilization)
	}
	if len(evals) == 0 {
		return nil, report, fmt.Errorf("tuning: no valid combinations (%d/%d skipped, first: %s)",
			report.Skipped, report.Sampled, report.FirstSkip)
	}
	return evals, report, nil
}

// NewRecommender builds the CaaSPER recommender a combination describes:
// the proactive adapter with a seasonal-naive forecaster when a horizon is
// set, the reactive adapter otherwise.
func NewRecommender(p Params, maxCores, seasonMinutes int) (recommend.Recommender, error) {
	cfg := p.ToConfig(maxCores)
	if p.Proactive() {
		return recommend.NewCaaSPERProactive(
			cfg,
			&forecast.SeasonalNaive{Season: seasonMinutes},
			p.WindowMinutes, p.HorizonMinutes, seasonMinutes)
	}
	return recommend.NewCaaSPERReactive(cfg, p.WindowMinutes)
}

// Evaluate runs one combination through the simulator.
func Evaluate(tr *trace.Trace, p Params, simOpts sim.Options, seasonMinutes int) (Evaluation, error) {
	rec, err := NewRecommender(p, simOpts.MaxCores, seasonMinutes)
	if err != nil {
		return Evaluation{}, err
	}
	res, err := sim.Run(tr, rec, simOpts)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{
		Params:       p,
		K:            res.SumSlack,
		C:            res.SumInsufficient,
		N:            res.NumScalings,
		ThrottledPct: res.ThrottledPct,
		Cost:         res.BilledCorePeriods,
	}, nil
}

func maxCoresForTrace(tr *trace.Trace) int {
	m := int(tr.Peak()*1.5) + 2
	if m < 4 {
		m = 4
	}
	return m
}

// Objective computes G(α, p) = α·K + C (Eq. 5).
func Objective(alpha float64, e Evaluation) float64 {
	return alpha*e.K + e.C
}

// BestForAlpha returns the evaluation minimising G(α, ·). Ties break
// toward fewer scalings, then lower cost (R3's frequency penalty).
func BestForAlpha(alpha float64, evals []Evaluation) (Evaluation, error) {
	if len(evals) == 0 {
		return Evaluation{}, errors.New("tuning: no evaluations")
	}
	best := evals[0]
	bestG := Objective(alpha, best)
	for _, e := range evals[1:] {
		g := Objective(alpha, e)
		switch {
		case g < bestG:
			best, bestG = e, g
		case g == bestG && (e.N < best.N || (e.N == best.N && e.Cost < best.Cost)):
			best = e
		}
	}
	return best, nil
}

// SampleAlphas draws n coefficients from the log-uniform distribution of
// Eq. 6. The paper samples ln(D) ~ U(−100, 100); those extremes degenerate
// to pure-K or pure-C optimisation, so callers typically pass a narrower
// range such as (−5, 5). The result is sorted ascending.
func SampleAlphas(n int, lnLo, lnHi float64, seed uint64) []float64 {
	rng := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.LogUniform(lnLo, lnHi)
	}
	sort.Float64s(out)
	return out
}

// OptimalSet implements Eq. 6: the set of G-minimising combinations over
// all sampled α values, deduplicated, ordered by ascending α of first
// appearance.
func OptimalSet(evals []Evaluation, alphas []float64) ([]Evaluation, error) {
	if len(alphas) == 0 {
		return nil, errors.New("tuning: no alphas")
	}
	seen := map[Params]bool{}
	var out []Evaluation
	for _, a := range alphas {
		best, err := BestForAlpha(a, evals)
		if err != nil {
			return nil, err
		}
		if !seen[best.Params] {
			seen[best.Params] = true
			out = append(out, best)
		}
	}
	return out, nil
}

// ParetoFrontier returns the evaluations not dominated in the (K, C)
// plane: no other evaluation is at least as good on both metrics and
// strictly better on one. The result is sorted by ascending K.
func ParetoFrontier(evals []Evaluation) []Evaluation {
	if len(evals) == 0 {
		return nil
	}
	sorted := append([]Evaluation(nil), evals...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].K != sorted[j].K {
			return sorted[i].K < sorted[j].K
		}
		return sorted[i].C < sorted[j].C
	})
	var frontier []Evaluation
	bestC := 0.0
	first := true
	for _, e := range sorted {
		if first || e.C < bestC {
			frontier = append(frontier, e)
			bestC = e.C
			first = false
		}
	}
	return frontier
}
