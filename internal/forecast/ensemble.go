package forecast

import (
	"errors"
	"fmt"
	"strings"
)

// Ensemble combines several forecasters. The paper evaluated a zoo of
// candidates (OpenShift's predictors, sktime's naïve and ARIMA, Prophet)
// before settling on the naïve model; an ensemble is the standard way to
// hedge across them without committing to one, and — because the §4.3
// prediction path is pluggable — it drops straight into CaaSPER's
// proactive mode.
type Ensemble struct {
	// Members are the combined forecasters; at least one is required.
	Members []Forecaster
	// Mode selects the combination rule.
	Mode EnsembleMode
}

// EnsembleMode is the per-point combination rule.
type EnsembleMode int

// Combination rules.
const (
	// EnsembleMean averages the members' forecasts per point.
	EnsembleMean EnsembleMode = iota
	// EnsembleMax takes the per-point maximum — the conservative choice
	// for scale-up-oriented forecasting (never under-predict demand).
	EnsembleMax
	// EnsembleMedian takes the per-point median, robust to one member
	// going rogue (e.g. drift extrapolating an outlier).
	EnsembleMedian
)

// Name implements Forecaster.
func (e *Ensemble) Name() string {
	names := make([]string, len(e.Members))
	for i, m := range e.Members {
		names[i] = m.Name()
	}
	mode := map[EnsembleMode]string{
		EnsembleMean:   "mean",
		EnsembleMax:    "max",
		EnsembleMedian: "median",
	}[e.Mode]
	return fmt.Sprintf("ensemble-%s(%s)", mode, strings.Join(names, ","))
}

// HistoryNeed implements HistoryBound: the maximum of the members' needs.
// Any unbounded member (or an empty ensemble) makes the whole ensemble
// unbounded.
func (e *Ensemble) HistoryNeed() int {
	if len(e.Members) == 0 {
		return -1
	}
	need := 0
	for _, m := range e.Members {
		n := HistoryNeed(m)
		if n < 0 {
			return -1
		}
		if n > need {
			need = n
		}
	}
	return need
}

// Forecast implements Forecaster. Members that error on the given history
// are skipped; if every member errors, the first error is returned.
func (e *Ensemble) Forecast(history []float64, horizon int) ([]float64, error) {
	if len(e.Members) == 0 {
		return nil, errors.New("forecast: empty ensemble")
	}
	if horizon <= 0 {
		return nil, nil
	}
	var forecasts [][]float64
	var firstErr error
	for _, m := range e.Members {
		f, err := m.Forecast(history, horizon)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("forecast: ensemble member %s: %w", m.Name(), err)
			}
			continue
		}
		forecasts = append(forecasts, f)
	}
	if len(forecasts) == 0 {
		return nil, firstErr
	}
	out := make([]float64, horizon)
	col := make([]float64, 0, len(forecasts))
	for h := 0; h < horizon; h++ {
		col = col[:0]
		for _, f := range forecasts {
			col = append(col, f[h])
		}
		out[h] = combine(col, e.Mode)
	}
	return clampNonNegative(out), nil
}

func combine(xs []float64, mode EnsembleMode) float64 {
	switch mode {
	case EnsembleMax:
		m := xs[0]
		for _, v := range xs[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case EnsembleMedian:
		sorted := append([]float64(nil), xs...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		n := len(sorted)
		if n%2 == 1 {
			return sorted[n/2]
		}
		return (sorted[n/2-1] + sorted[n/2]) / 2
	default: // EnsembleMean
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
}
