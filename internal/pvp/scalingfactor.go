package pvp

import "math"

// ScalingFactorParams configures the Eq. 3 scaling-factor function
//
//	SF(s, skew) = log(skewWeight·skew·s + c_min)
//
// which converts a PvP-curve slope into the number of cores to scale by.
// The logarithmic decay gives aggressive multi-core jumps when the slope
// (throttling severity) is large and gentle single-core micro-adjustments
// when it is small — Figure 6's shape.
type ScalingFactorParams struct {
	// CMin is the c_min guardrail of Eq. 3: the minimum cores required to
	// operate the pod. It both floors the log argument (so SF is defined
	// at s = 0) and anchors small-slope behaviour.
	CMin float64
	// SkewWeight scales the skew multiplier; it is the calibration knob
	// the paper derives from observing sophisticated customers' manual
	// scaling decisions. Default 1.0.
	SkewWeight float64
}

// DefaultScalingFactorParams mirrors the paper's running example: a 2-core
// operational floor and unit skew weight.
func DefaultScalingFactorParams() ScalingFactorParams {
	return ScalingFactorParams{CMin: 2, SkewWeight: 1}
}

// ScalingFactor evaluates SF(s, skew) = ln(skewWeight·skew·s + c_min) in
// cores (fractional; Algorithm 1 rounds and clamps it afterwards).
// Negative or NaN inputs are treated as zero; the log argument is floored
// at 1 so the factor is never negative.
func ScalingFactor(s, skew float64, p ScalingFactorParams) float64 {
	if s < 0 || math.IsNaN(s) {
		s = 0
	}
	if skew < 0 || math.IsNaN(skew) {
		skew = 0
	}
	w := p.SkewWeight
	if w <= 0 {
		w = 1
	}
	arg := w*skew*s + p.CMin
	if arg < 1 {
		arg = 1
	}
	return math.Log(arg)
}

// ScalingFactorCurve tabulates SF over a slope range — the data behind the
// paper's Figure 6.
func ScalingFactorCurve(skew float64, p ScalingFactorParams, sMax float64, n int) (slopes, factors []float64) {
	if n < 2 {
		n = 2
	}
	slopes = make([]float64, n)
	factors = make([]float64, n)
	for i := 0; i < n; i++ {
		s := sMax * float64(i) / float64(n-1)
		slopes[i] = s
		factors[i] = ScalingFactor(s, skew, p)
	}
	return slopes, factors
}
