// Package sim implements the paper's §5 trace-driven autoscaling
// simulator: it replays a CPU *demand* trace against a pluggable
// recommender, models the resize latency of rolling updates, distinguishes
// demand from the capped usage the recommender is allowed to observe, and
// captures the three tuning metrics of §5 — total slack K(·), total
// insufficient CPU C(·) and number of scalings N(·) — plus the billing
// cost under the pay-as-you-go model.
//
// The central modelling decision (DESIGN.md §4): recommenders never see
// demand. They see usage = min(demand, limits), exactly what a metrics
// server reports for a cgroup-capped container. Throttling-blind policies
// therefore under-scale on capped history, which is the §3.3 failure mode
// the paper builds CaaSPER to escape.
package sim

import (
	"fmt"
	"math"
	"time"

	"caasper/internal/billing"
	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/hooks"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/stats"
	"caasper/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// RunHooks is the canonical spelling of the telemetry/fault knobs
	// shared with LiveOptions and FleetOptions (event sink, metrics
	// registry, fault spec + seed). The deprecated top-level fields
	// below shadow it for source compatibility; a set deprecated field
	// wins (see hooks.RunHooks.Merge).
	hooks.RunHooks
	// InitialCores is the allocation at trace start.
	//
	// Deprecated: set Resources.Initial.CPUCores. A non-zero value here
	// wins, so seed callers behave identically.
	InitialCores int
	// MinCores / MaxCores are the scaler's safety clamps (Figure 1,
	// step 5 performs "health and resource safety checks").
	//
	// Deprecated: set Resources.Min/Max.CPUCores. Non-zero values here
	// win, so seed callers behave identically.
	MinCores, MaxCores int
	// Resources is the canonical resource-vector spelling of the run's
	// bounds, shared with fleet.TenantSpec and dbsim.HarnessOptions.
	// Managing a non-CPU dimension (non-zero Max.RAMGB or Max.DiskGB)
	// is meaningful only to RunVector; plain Run reads just the CPU
	// entries.
	Resources core.ResourceRange
	// RAMTrace / DiskTrace are the per-minute RAM demand and disk usage
	// series in GB for RunVector; nil derives them deterministically
	// from the CPU trace (workload.DeriveRAM / DeriveDisk).
	RAMTrace, DiskTrace *trace.Trace
	// Mem / Disk tune RunVector's RAM and disk policies (zero values:
	// defaults).
	Mem  recommend.MemoryPolicy
	Disk recommend.DiskPolicy
	// DecisionEveryMinutes is the recommender polling cadence.
	DecisionEveryMinutes int
	// ResizeDelayMinutes models the rolling-update latency: a decision
	// made at minute t takes effect at t+delay (5–15 min for Database A,
	// 3–5 min for Database B, §6.1). While a resize is in flight no new
	// decision is taken, mirroring the operator's serialization.
	ResizeDelayMinutes int
	// BillingPeriod is the pay-as-you-go metering period (default 1h).
	BillingPeriod time.Duration
	// PricePerCorePeriod is the unit price (default 1: report ratios).
	PricePerCorePeriod float64
	// WarmupMinutes delays the first decision, letting window-based
	// recommenders accumulate signal. Defaults to DecisionEveryMinutes.
	WarmupMinutes int
	// Workers bounds the fan-out of multi-run drivers (RunMatrix and the
	// CLIs); values below 1 select runtime.GOMAXPROCS(0). A single Run is
	// always one sequential replay — the parallelism is across runs, so
	// results stay deterministic for every worker count.
	Workers int
	// Faults, when non-empty, injects deterministic failures into the
	// replay (keyed on the fault seed and the simulated minute — every
	// fault time in the spec is in *minutes* here, the simulator's tick):
	// metrics-gap makes the recommender observe the previous minute's
	// usage instead of the current one (a lost scrape; ground-truth
	// accounting is unaffected), restart-stuck extends an in-flight
	// resize, restart-fail makes an in-flight rolling update fail and
	// roll back at enactment time ("sim.resize-aborted"), and
	// sched-pressure transiently lowers the reachable core ceiling.
	//
	// Deprecated: set RunHooks.FaultSpec instead; this alias shadows it
	// and wins when non-nil.
	Faults *faults.Spec
	// FaultSeed seeds the fault injector's deterministic draws.
	//
	// Deprecated: set RunHooks.FaultSeed instead; this alias shadows it
	// and wins when non-zero.
	FaultSeed uint64
	// Events, when non-nil and enabled, receives the run's structured
	// event stream: "sim.resize" per enacted resize, "sim.throttle" per
	// throttled minute, "sim.slack" per decision tick, "fault.*" records
	// from the injector, plus the recommender's "core.decision" audits
	// when it implements recommend.Instrumentable. Every event is keyed
	// on the simulated minute and emitted in replay order, so the stream
	// is byte-identical across runs and worker counts (RunMatrix buffers
	// per cell and replays in cell order to preserve this).
	//
	// Deprecated: set RunHooks.Events instead; this alias shadows it and
	// wins when non-nil.
	Events obs.Sink
	// Metrics, when non-nil, receives end-of-run counters (decisions,
	// resizes, throttled minutes). It is runtime telemetry, outside the
	// determinism contract.
	//
	// Deprecated: set RunHooks.Metrics instead; this alias shadows it
	// and wins when non-nil.
	Metrics *obs.Registry
}

// Hooks resolves the effective telemetry/fault knobs: the deprecated
// top-level aliases overlaid on the embedded RunHooks.
func (o Options) Hooks() hooks.RunHooks {
	return o.RunHooks.Merge(o.Events, o.Metrics, o.Faults, o.FaultSeed)
}

// Range resolves the run's effective resource bounds: the deprecated
// scalar CPU fields overlay the vector (non-zero wins), the same merge
// fleet.TenantSpec.Range performs.
func (o Options) Range() core.ResourceRange {
	return o.Resources.MergeCPU(o.InitialCores, o.MinCores, o.MaxCores)
}

// DefaultOptions returns the configuration used across the experiments:
// 10-minute decisions, 10-minute resizes, hourly billing.
func DefaultOptions(initial, maxCores int) Options {
	return Options{
		InitialCores:         initial,
		MinCores:             2,
		MaxCores:             maxCores,
		DecisionEveryMinutes: 10,
		ResizeDelayMinutes:   10,
		BillingPeriod:        time.Hour,
		PricePerCorePeriod:   1,
	}
}

// Validate checks option invariants. Every failure wraps
// errs.ErrInvalidConfig, so callers can branch with errors.Is.
func (o Options) Validate() error {
	if o.InitialCores < 1 {
		return fmt.Errorf("sim: InitialCores must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	if o.MinCores < 1 || o.MaxCores < o.MinCores {
		return fmt.Errorf("sim: bad core bounds [%d, %d]: %w", o.MinCores, o.MaxCores, errs.ErrInvalidConfig)
	}
	if o.DecisionEveryMinutes < 1 {
		return fmt.Errorf("sim: DecisionEveryMinutes must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	if o.ResizeDelayMinutes < 0 {
		return fmt.Errorf("sim: ResizeDelayMinutes must be ≥ 0: %w", errs.ErrInvalidConfig)
	}
	if o.BillingPeriod <= 0 {
		return fmt.Errorf("sim: BillingPeriod must be positive: %w", errs.ErrInvalidConfig)
	}
	return nil
}

// DecisionRecord captures one scaling decision for audit and for the §5
// simulator-correctness t-tests.
type DecisionRecord struct {
	// Minute is when the decision was taken.
	Minute int
	// From and To are the allocations before and after.
	From, To int
	// EffectiveAt is when the new allocation took effect.
	EffectiveAt int
	// Explanation carries the recommender's prose account when it
	// implements recommend.Explainer (R6); empty otherwise.
	Explanation string
}

// Result aggregates a simulation run.
type Result struct {
	// TraceName and Recommender identify the run.
	TraceName   string
	Recommender string

	// Minutes is the number of simulated one-minute steps.
	Minutes int

	// Limits, Usage and Demand are the per-minute series (cores).
	Limits []float64
	Usage  []float64
	Demand []float64

	// SumSlack is K(·): Σ max(0, limits − usage).
	SumSlack float64
	// SumInsufficient is C(·): Σ max(0, demand − limits).
	SumInsufficient float64
	// NumScalings is N(·): the number of enacted resizes.
	NumScalings int

	// ThrottledMinutes counts minutes with any insufficient CPU;
	// ThrottledPct is their share of all minutes (Table 3's
	// "Throttling Obvsns. %").
	ThrottledMinutes int
	ThrottledPct     float64

	// AvgSlack and AvgInsufficient are per-minute means (Table 3).
	AvgSlack        float64
	AvgInsufficient float64

	// BilledCorePeriods is the pay-as-you-go cost at unit price.
	BilledCorePeriods float64

	// Decisions records every enacted scaling.
	Decisions []DecisionRecord

	// DecisionSeries is the recommended target at every decision tick
	// (including holds) — the series the §5 t-test compares.
	DecisionSeries []float64

	// AbortedScalings counts resizes that failed at enactment (injected
	// restart failures; 0 without faults).
	AbortedScalings int
	// FaultCounts tallies injected faults (zero without faults).
	FaultCounts faults.Counts
}

// ThroughputProxy estimates the fraction of demanded work the allocation
// served: 1 − C/Σdemand. It is the simulator's stand-in for relative
// throughput (the paper's OpenShift run throttled throughput to ~27%).
func (r *Result) ThroughputProxy() float64 {
	total := stats.Sum(r.Demand)
	if total == 0 {
		return 1
	}
	p := 1 - r.SumInsufficient/total
	if p < 0 {
		return 0
	}
	return p
}

// SlackReductionVs returns the fractional slack reduction of this run
// against a baseline run (e.g. 0.783 for the paper's "reduced it by
// 78.3%"). A zero-slack baseline yields 0.
func (r *Result) SlackReductionVs(baseline *Result) float64 {
	if baseline.SumSlack == 0 {
		return 0
	}
	return 1 - r.SumSlack/baseline.SumSlack
}

// CostRatioVs returns cost(this)/cost(baseline), the paper's price form.
func (r *Result) CostRatioVs(baseline *Result) float64 {
	if baseline.BilledCorePeriods == 0 {
		return 0
	}
	return r.BilledCorePeriods / baseline.BilledCorePeriods
}

// String renders the headline metrics.
func (r *Result) String() string {
	return fmt.Sprintf("Result{%s/%s: K=%.0f C=%.1f N=%d throttled=%.2f%% cost=%.0f}",
		r.TraceName, r.Recommender, r.SumSlack, r.SumInsufficient, r.NumScalings,
		r.ThrottledPct*100, r.BilledCorePeriods)
}

// Run replays the demand trace through the recommender. The trace must be
// on a one-minute grid (call Trace.Resample first otherwise).
func Run(tr *trace.Trace, rec recommend.Recommender, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("sim: empty trace: %w", errs.ErrEmptyTrace)
	}
	if tr.Interval != time.Minute {
		// A trace on the wrong grid is a configuration mistake (the caller
		// forgot to resample), not an absence of data — wrap the sentinel
		// that actually describes it.
		return nil, fmt.Errorf("sim: trace interval %v, want 1m (resample first): %w", tr.Interval, errs.ErrInvalidConfig)
	}
	// Resolve the telemetry/fault knobs once: deprecated aliases overlay
	// the embedded RunHooks (hooks.RunHooks.Merge).
	h := opts.Hooks()

	meter, err := billing.NewMeter(opts.PricePerCorePeriod, opts.BillingPeriod, time.Minute)
	if err != nil {
		return nil, err
	}

	warmup := opts.WarmupMinutes
	if warmup <= 0 {
		warmup = opts.DecisionEveryMinutes
	}

	n := tr.Len()
	// Decision ticks are spaced DecisionEveryMinutes apart, so the
	// decision series can be sized exactly once instead of growing by
	// repeated append in the minute loop.
	ticks := n/opts.DecisionEveryMinutes + 1
	res := &Result{
		TraceName:      tr.Name,
		Recommender:    rec.Name(),
		Minutes:        n,
		Limits:         make([]float64, n),
		Usage:          make([]float64, n),
		Demand:         make([]float64, n),
		DecisionSeries: make([]float64, 0, ticks),
		Decisions:      make([]DecisionRecord, 0, ticks),
	}

	limit := stats.ClampInt(opts.InitialCores, opts.MinCores, opts.MaxCores)
	pendingTarget := -1
	pendingAt := -1

	// Defensive copy + sanitisation, written straight into the result's
	// demand series (it is rewritten sample-for-sample below anyway):
	// real metric pipelines emit NaN/Inf gaps around restarts; the
	// accounting must never propagate them into K/C or the billing meter.
	demandSeries := res.Demand
	copy(demandSeries, tr.Values)
	for i, v := range demandSeries {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			demandSeries[i] = 0
		}
	}

	// Event emission is guarded once: with the sink disabled (the
	// default) the replay loop pays one branch per minute and allocates
	// nothing for telemetry.
	events := obs.Enabled(h.Events)
	// evf is the reusable event-field buffer: Sink.Emit lets emitters
	// reclaim the backing once it returns (retaining sinks copy), so the
	// per-event composite literals below stop costing one allocation each.
	var evf []obs.Field
	if events {
		if in, ok := rec.(recommend.Instrumentable); ok {
			in.SetEventSink(h.Events)
		}
	}

	// The fault injector is built per run so its events land in this
	// run's sink (RunMatrix gives each cell its own buffered sink) and
	// its counts belong to this result. Nil without a spec: every hook
	// below is then a nil-receiver no-op. The simulated "pod" is the
	// primary, named like the live set's first replica.
	inj := h.Injector()
	const simPod = "db-0"

	var pendingExplanation string
	enact := func(t int) {
		if pendingTarget != limit {
			res.Decisions = append(res.Decisions, DecisionRecord{
				Minute:      pendingAt - opts.ResizeDelayMinutes,
				From:        limit,
				To:          pendingTarget,
				EffectiveAt: t,
				Explanation: pendingExplanation,
			})
			res.NumScalings++
			if events {
				evf = append(evf[:0],
					obs.I("from", int64(limit)),
					obs.I("to", int64(pendingTarget)),
					obs.I("decided", int64(pendingAt-opts.ResizeDelayMinutes)),
					obs.I("effective", int64(t)),
				)
				h.Events.Emit(obs.Event{T: int64(t), Type: "sim.resize", Fields: evf})
			}
			limit = pendingTarget
		}
		pendingTarget, pendingAt = -1, -1
		pendingExplanation = ""
	}

	// slackSinceTick accumulates slack between decision ticks for the
	// per-tick "sim.slack" event; lastTick is the previous tick's minute.
	var slackSinceTick float64
	lastTick := 0
	// lastObserved carries the previous minute's observation forward over
	// injected metric gaps.
	var lastObserved float64

	for t := 0; t < n; t++ {
		// Enact a completed resize before metering the minute.
		if pendingTarget >= 0 && t >= pendingAt {
			if inj.RestartFails(simPod, int64(t)) {
				// The rolling update failed at enactment and rolled
				// back: the limit stays, the decision is abandoned.
				res.AbortedScalings++
				if events {
					evf = append(evf[:0],
						obs.I("from", int64(limit)),
						obs.I("to", int64(pendingTarget)),
					)
					h.Events.Emit(obs.Event{T: int64(t), Type: "sim.resize-aborted", Fields: evf})
				}
				pendingTarget, pendingAt = -1, -1
				pendingExplanation = ""
			} else {
				enact(t)
			}
		}

		demand := demandSeries[t] // == res.Demand[t], sanitised above
		capf := float64(limit)
		usage := math.Min(demand, capf)

		res.Usage[t] = usage
		res.Limits[t] = capf
		res.SumSlack += capf - usage
		slackSinceTick += capf - usage
		if insuff := demand - capf; insuff > 0 {
			res.SumInsufficient += insuff
			res.ThrottledMinutes++
			if events {
				evf = append(evf[:0],
					obs.F("demand", demand),
					obs.F("limit", capf),
					obs.F("insufficient", insuff),
				)
				h.Events.Emit(obs.Event{T: int64(t), Type: "sim.throttle", Fields: evf})
			}
		}

		// The recommender sees the capped usage — unless the scrape for
		// this minute was lost, in which case the pipeline reports the
		// previous sample (ground-truth accounting above is unaffected).
		observed := usage
		if inj.DropSample(simPod, int64(t)) {
			observed = lastObserved
		} else {
			lastObserved = usage
		}
		rec.Observe(t, observed)
		meter.Record(capf)

		// Decision tick: only when idle (no resize in flight).
		if t >= warmup && t%opts.DecisionEveryMinutes == 0 && pendingTarget < 0 {
			if events {
				evf = append(evf[:0],
					obs.F("limit", capf),
					obs.F("slack", slackSinceTick),
					obs.I("window", int64(t-lastTick)),
				)
				h.Events.Emit(obs.Event{T: int64(t), Type: "sim.slack", Fields: evf})
			}
			slackSinceTick, lastTick = 0, t
			target := stats.ClampInt(rec.Recommend(limit), opts.MinCores, opts.MaxCores)
			// Transient scheduling pressure lowers the reachable core
			// ceiling: a scale-up beyond it would not place right now.
			if pc := inj.PressureCores(int64(t)); pc > 0 {
				ceiling := opts.MaxCores - int(pc)
				if ceiling < opts.MinCores {
					ceiling = opts.MinCores
				}
				if target > ceiling {
					target = ceiling
				}
			}
			res.DecisionSeries = append(res.DecisionSeries, float64(target))
			if target != limit {
				pendingTarget = target
				pendingAt = t + opts.ResizeDelayMinutes
				// A stuck restart stretches the rolling update: the new
				// limit lands late (per-pod retries modeled in aggregate).
				// Instant (in-place) resizes restart nothing to get stuck.
				if opts.ResizeDelayMinutes > 0 {
					if d := inj.RestartStuck(simPod, int64(t)); d > 0 {
						pendingAt += int(d)
					}
				}
				if ex, ok := rec.(recommend.Explainer); ok {
					pendingExplanation = ex.Explain()
				}
				if opts.ResizeDelayMinutes == 0 {
					// Instant (in-place-style) resizes take effect at
					// the decision tick itself.
					enact(t)
				}
			}
		}
	}

	meter.Flush()
	res.FaultCounts = inj.Counts()
	res.BilledCorePeriods = meter.BilledCorePeriods()
	res.ThrottledPct = float64(res.ThrottledMinutes) / float64(n)
	res.AvgSlack = res.SumSlack / float64(n)
	res.AvgInsufficient = res.SumInsufficient / float64(n)
	if m := h.Metrics; m != nil {
		m.Counter("sim.runs").Inc()
		m.Counter("sim.minutes").Add(int64(n))
		m.Counter("sim.decisions").Add(int64(len(res.DecisionSeries)))
		m.Counter("sim.resizes").Add(int64(res.NumScalings))
		m.Counter("sim.throttled_minutes").Add(int64(res.ThrottledMinutes))
	}
	return res, nil
}
