package core

import (
	"testing"

	"caasper/internal/forecast"
)

// intervalStub returns a fixed point forecast with a controllable
// interval width.
type intervalStub struct {
	point float64
	width float64
}

func (s intervalStub) Name() string { return "interval-stub" }

func (s intervalStub) Forecast(_ []float64, horizon int) ([]float64, error) {
	out := make([]float64, horizon)
	for i := range out {
		out[i] = s.point
	}
	return out, nil
}

func (s intervalStub) ForecastInterval(_ []float64, horizon int) (point, lo, hi []float64, err error) {
	point = make([]float64, horizon)
	lo = make([]float64, horizon)
	hi = make([]float64, horizon)
	for i := range point {
		point[i] = s.point
		lo[i] = s.point - s.width
		hi[i] = s.point + s.width
	}
	return point, lo, hi, nil
}

func TestUncertaintyPrefilterBlocksWideForecasts(t *testing.T) {
	r := mustRecommender(t, 16)
	p, err := NewProactive(r, intervalStub{point: 12, width: 100}, 20, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxRelativeUncertainty = 0.5

	// Observed usage is calm at 3 cores of 6; the forecast screams 12
	// but with a huge interval — the prefilter must discard it.
	hist := make([]float64, 60)
	for i := range hist {
		hist[i] = 3
	}
	d, used, err := p.Decide(6, hist)
	if err != nil {
		t.Fatal(err)
	}
	if used {
		t.Error("wide-interval forecast should be prefiltered (reactive fallback)")
	}
	if d.Delta > 0 {
		t.Errorf("prefiltered decision should not scale up: %+v", d)
	}
}

func TestUncertaintyPrefilterPassesTightForecasts(t *testing.T) {
	r := mustRecommender(t, 16)
	p, err := NewProactive(r, intervalStub{point: 12, width: 0.5}, 20, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxRelativeUncertainty = 0.5

	hist := make([]float64, 60)
	for i := range hist {
		hist[i] = 3
	}
	d, used, err := p.Decide(6, hist)
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Fatal("tight-interval forecast should pass the prefilter")
	}
	if d.Delta < 1 {
		t.Errorf("confident 12-core forecast should scale up from 6: %+v", d)
	}
}

func TestPrefilterDisabledByDefault(t *testing.T) {
	// Zero MaxRelativeUncertainty: even an interval forecaster is used
	// unconditionally (back-compatible with the paper's current system,
	// which "does not consider the confidence values").
	r := mustRecommender(t, 16)
	p, err := NewProactive(r, intervalStub{point: 12, width: 100}, 20, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 60)
	for i := range hist {
		hist[i] = 3
	}
	_, used, err := p.Decide(6, hist)
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Error("prefilter must be off by default")
	}
}

func TestPrefilterWithRealIntervalForecaster(t *testing.T) {
	// End-to-end with IntervalSeasonalNaive: a stable cyclic history
	// yields a confident forecast that passes the prefilter.
	season := 120
	var hist []float64
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < season; i++ {
			v := 2.0
			if i >= 60 && i < 90 {
				v = 9.0
			}
			hist = append(hist, v)
		}
	}
	// Now at phase 50 of the cycle: the spike is 10 samples ahead.
	hist = append(hist, make([]float64, 50)...)
	for i := len(hist) - 50; i < len(hist); i++ {
		hist[i] = 2.0
	}

	r := mustRecommender(t, 16)
	p, err := NewProactive(r, forecast.NewIntervalSeasonalNaive(season), 30, 30, season)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxRelativeUncertainty = 0.5
	d, used, err := p.Decide(3, hist)
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Fatal("stable seasonal history should pass the prefilter")
	}
	if d.Delta < 1 {
		t.Errorf("forecasted spike should pre-scale: %+v", d)
	}
}
