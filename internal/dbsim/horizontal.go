package dbsim

import (
	"fmt"
	"time"

	"caasper/internal/billing"
	"caasper/internal/errs"
	"caasper/internal/k8s"
	"caasper/internal/workload"
)

// This file implements the horizontal-autoscaling contrast of the paper's
// motivation (§1, §3.1): a replica-count autoscaler in the style of the
// Kubernetes HPA. For stateful single-primary databases it is structurally
// handicapped — new replicas need a size-of-data copy before they can
// serve, and they can never serve write-transaction load — which is
// precisely why the paper builds a *vertical* autoscaler. The
// MotivationHorizontal experiment replays a write-heavy workload through
// this scaler and through CaaSPER to reproduce that argument
// quantitatively.

// HorizontalOptions configures the HPA-style run.
type HorizontalOptions struct {
	// Harness carries the shared cluster/database setup. The scaler
	// never changes CPU per pod: Harness.InitialCores is the fixed
	// vertical size of every replica.
	Harness HarnessOptions
	// MaxReplicas bounds the scale-out; 0 means unbounded (the cluster's
	// capacity is then the only limit). When 0 and the harness carries a
	// resource vector, Harness.Resources.Max.Replicas applies instead.
	MaxReplicas int
	// SeedSeconds is the size-of-data-copy time for a new replica
	// before it can serve (§3.1).
	SeedSeconds int64
	// UtilizationHigh triggers a scale-out when the primary's mean
	// utilization over a decision window exceeds it (the HPA's target
	// metric, defaulting to the classic 80%).
	UtilizationHigh float64
	// DecisionEverySeconds is the scaler cadence.
	DecisionEverySeconds int64
}

// DefaultHorizontalOptions mirrors a standard HPA setup on Database A.
func DefaultHorizontalOptions(cpuPerPod, maxReplicas int) HorizontalOptions {
	return HorizontalOptions{
		Harness:              DatabaseAOptions(cpuPerPod, cpuPerPod),
		MaxReplicas:          maxReplicas,
		SeedSeconds:          900, // 15-minute data copy
		UtilizationHigh:      0.8,
		DecisionEverySeconds: 600,
	}
}

// RunHorizontal executes the load against a stateful set managed by the
// HPA-style replica scaler: pod CPU stays fixed, replicas are added (up
// to MaxReplicas) whenever the primary runs hot, and each new replica
// seeds for SeedSeconds before serving reads. Billing meters the sum of
// all replicas' limits — horizontal growth is not free.
func RunHorizontal(sched *workload.LoadSchedule, opts HorizontalOptions) (*LiveResult, error) {
	if sched == nil {
		return nil, fmt.Errorf("dbsim: nil schedule: %w", errs.ErrInvalidConfig)
	}
	maxReplicas := opts.MaxReplicas
	if maxReplicas == 0 {
		// 0 is unbounded, not "never scale": the old strict comparison
		// below silently froze the set at its initial size. A vector
		// bound on the harness supplies the ceiling when present.
		maxReplicas = opts.Harness.Range().Max.Replicas
	}
	if maxReplicas != 0 && maxReplicas < opts.Harness.Replicas {
		return nil, fmt.Errorf("dbsim: MaxReplicas below initial replicas: %w", errs.ErrInvalidConfig)
	}
	if opts.UtilizationHigh <= 0 || opts.UtilizationHigh > 1 {
		return nil, fmt.Errorf("dbsim: UtilizationHigh out of (0,1]: %w", errs.ErrInvalidConfig)
	}
	if opts.DecisionEverySeconds < 1 || opts.SeedSeconds < 0 {
		return nil, fmt.Errorf("dbsim: bad cadences: %w", errs.ErrInvalidConfig)
	}
	h := opts.Harness
	cluster := h.Cluster
	if cluster == nil {
		cluster = k8s.SmallCluster()
	}
	set, err := k8s.NewStatefulSet("db", h.Replicas, h.InitialCores, h.MemGiBPerPod, cluster)
	if err != nil {
		return nil, err
	}
	db, err := New(set, sched, h.DB)
	if err != nil {
		return nil, err
	}

	period := h.BillingPeriod
	if period == 0 {
		period = time.Hour
	}
	meter, err := billing.NewMeter(1, period, time.Second)
	if err != nil {
		return nil, err
	}

	seconds := int64(sched.Duration / time.Second)
	res := &LiveResult{}
	var minuteLimit, minuteUsage float64
	var lastThrottled, lastUsed float64
	var windowUsed float64 // primary cpu-seconds since last decision
	nextDecision := opts.DecisionEverySeconds
	var seeding *k8s.Pod

	for now := int64(0); now < seconds; now++ {
		// Complete a seeding replica.
		if seeding != nil && now >= seeding.RestartingUntil {
			seeding.Phase = k8s.PhaseRunning
			db.TrackReplica(seeding)
			seeding = nil
			res.NumScalings++
		}

		db.Tick(now, nil)

		// Billing: the sum of every replica's limits (each pod is a
		// billed resource).
		var totalLimit float64
		for _, p := range set.Pods {
			totalLimit += p.CPULimit()
		}
		meter.Record(totalLimit)

		if p := set.Primary(); p != nil {
			dThrottled := p.ThrottledCPUSeconds - lastThrottled
			dUsed := p.UsedCPUSeconds - lastUsed
			if dThrottled < 0 || dUsed < 0 {
				dThrottled, dUsed = 0, 0
			}
			lastThrottled = p.ThrottledCPUSeconds
			lastUsed = p.UsedCPUSeconds
			res.SumInsufficient += dThrottled / 60
			if slack := p.CPULimit() - dUsed; slack > 0 {
				res.SumSlack += slack / 60
			}
			windowUsed += dUsed
			minuteUsage += dUsed
		}
		minuteLimit += totalLimit

		if (now+1)%60 == 0 {
			res.LimitsPerMinute = append(res.LimitsPerMinute, minuteLimit/60)
			res.PrimaryUsagePerMinute = append(res.PrimaryUsagePerMinute, minuteUsage/60)
			minuteLimit, minuteUsage = 0, 0
		}

		// HPA decision: scale out when the primary ran hot on average.
		if now >= nextDecision {
			primary := set.Primary()
			if primary != nil && seeding == nil && (maxReplicas == 0 || len(set.Pods) < maxReplicas) {
				util := windowUsed / (float64(opts.DecisionEverySeconds) * primary.CPULimit())
				res.DecisionSeries = append(res.DecisionSeries, util)
				if util >= opts.UtilizationHigh {
					p, err := set.AddReplica(cluster, h.InitialCores, now+opts.SeedSeconds)
					if err == nil {
						seeding = p
					}
					// A full cluster simply stops the scale-out — the
					// HPA's pending-pod situation.
				}
			}
			windowUsed = 0
			nextDecision = now + opts.DecisionEverySeconds
		}
	}

	meter.Flush()
	res.DB = db.Stats()
	res.BilledCorePeriods = meter.BilledCorePeriods()
	return res, nil
}
