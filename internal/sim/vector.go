package sim

// vector.go extends the single-tenant simulator to the resource vector:
// RunVector replays the CPU dimension through the unchanged Run (so the
// CPU metrics, decisions and event stream stay byte-identical to a
// CPU-only run) and layers the RAM and disk loops on top — RAM under the
// dual-threshold MemoryPolicy with mem-pressure fault injection, disk
// under the grow-only DiskPolicy. Both non-CPU loops resize in place at
// decision ticks (memory hot-add and volume expansion do not restart the
// pod, unlike the CPU rolling update Run models).

import (
	"fmt"
	"time"

	"caasper/internal/billing"
	"caasper/internal/errs"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/trace"
	"caasper/internal/workload"
)

// VectorResult aggregates a multi-resource run: the embedded CPU result
// plus the RAM/disk trajectories and their bills.
type VectorResult struct {
	*Result

	// FinalRAMGB / FinalDiskGB close the non-CPU trajectories (0 when
	// the dimension is unmanaged).
	FinalRAMGB, FinalDiskGB int
	// RAMScalings / DiskScalings count enacted non-CPU resizes.
	RAMScalings, DiskScalings int
	// OOMMinutes counts minutes with any RAM shortfall; RAMShortGBMin is
	// the shortfall integral in GB-minutes.
	OOMMinutes    int
	RAMShortGBMin float64
	// DiskFullMinutes counts minutes the disk trace exceeded the volume.
	DiskFullMinutes int
	// BilledRAMGBPeriods / BilledDiskGBPeriods are the non-CPU bills in
	// native units (GB-periods at unit rate).
	BilledRAMGBPeriods, BilledDiskGBPeriods float64
	// MemPressureWindows counts injected memory-pressure windows.
	MemPressureWindows int64
}

// TotalCost sums the dimensions at the billing DefaultRates weights.
func (r *VectorResult) TotalCost() float64 {
	rates := billing.DefaultRates()
	return r.BilledCorePeriods*rates.CPUCorePeriod +
		r.BilledRAMGBPeriods*rates.RAMGBPeriod +
		r.BilledDiskGBPeriods*rates.DiskGBPeriod
}

// String renders the headline vector metrics.
func (r *VectorResult) String() string {
	return fmt.Sprintf("%s ram=%dGB(%d scalings, %d oom) disk=%dGB(%d scalings)",
		r.Result.String(), r.FinalRAMGB, r.RAMScalings, r.OOMMinutes,
		r.FinalDiskGB, r.DiskScalings)
}

// RunVector replays the demand trace through the recommender across the
// full resource vector. The CPU dimension runs through Run unchanged;
// opts.Resources must manage at least one non-CPU dimension (use Run for
// CPU-only work).
func RunVector(tr *trace.Trace, rec recommend.Recommender, opts Options) (*VectorResult, error) {
	rr := opts.Range()
	if !rr.Multi() {
		return nil, fmt.Errorf("sim: RunVector needs a managed non-CPU dimension (use Run): %w", errs.ErrInvalidConfig)
	}
	if err := rr.Validate(); err != nil {
		return nil, err
	}
	cpu, err := Run(tr, rec, opts)
	if err != nil {
		return nil, err
	}
	res := &VectorResult{Result: cpu}

	h := opts.Hooks()
	events := obs.Enabled(h.Events)
	// A fresh injector for the non-CPU loops: draws are (kind, pod, time)
	// keyed, so its mem-pressure stream is identical to what a single
	// shared injector would produce, and Run's CPU fault draws are
	// untouched.
	inj := h.Injector()
	const simPod = "db-0"

	warmup := opts.WarmupMinutes
	if warmup <= 0 {
		warmup = opts.DecisionEveryMinutes
	}
	n := cpu.Minutes

	if rr.Max.RAMGB > 0 {
		ramTr := opts.RAMTrace
		if ramTr == nil {
			ramTr = workload.DeriveRAM(tr, 1, 0.5)
		}
		if ramTr.Len() < n {
			return nil, fmt.Errorf("sim: RAM trace covers %d of %d minutes: %w", ramTr.Len(), n, errs.ErrInvalidConfig)
		}
		meter, err := billing.NewMeter(1, opts.BillingPeriod, time.Minute)
		if err != nil {
			return nil, err
		}
		alloc := rr.Initial.RAMGB
		peak := 0.0
		for t := 0; t < n; t++ {
			demand := ramTr.At(t) + inj.MemPressureGB(simPod, int64(t))
			if demand > peak {
				peak = demand
			}
			if short := demand - float64(alloc); short > 0 {
				res.OOMMinutes++
				res.RAMShortGBMin += short
				if events {
					h.Events.Emit(obs.Event{T: int64(t), Type: "sim.oom", Fields: []obs.Field{
						obs.F("demand", demand),
						obs.I("alloc", int64(alloc)),
						obs.F("short", short),
					}})
				}
			}
			meter.Record(float64(alloc))
			if t >= warmup && t%opts.DecisionEveryMinutes == 0 {
				target := opts.Mem.Target(alloc, peak, rr.Min.RAMGB, rr.Max.RAMGB)
				if target != alloc {
					if events {
						h.Events.Emit(obs.Event{T: int64(t), Type: "sim.ram-resize", Fields: []obs.Field{
							obs.I("from", int64(alloc)),
							obs.I("to", int64(target)),
							obs.F("peak", peak),
						}})
					}
					alloc = target
					res.RAMScalings++
				}
				peak = 0
			}
		}
		meter.Flush()
		res.FinalRAMGB = alloc
		res.BilledRAMGBPeriods = meter.BilledCorePeriods()
	}

	if rr.Max.DiskGB > 0 {
		dskTr := opts.DiskTrace
		if dskTr == nil {
			dskTr = workload.DeriveDisk(tr, float64(rr.Initial.DiskGB)*0.5, 0.5)
		}
		if dskTr.Len() < n {
			return nil, fmt.Errorf("sim: disk trace covers %d of %d minutes: %w", dskTr.Len(), n, errs.ErrInvalidConfig)
		}
		meter, err := billing.NewMeter(1, opts.BillingPeriod, time.Minute)
		if err != nil {
			return nil, err
		}
		alloc := rr.Initial.DiskGB
		high := 0.0
		for t := 0; t < n; t++ {
			used := dskTr.At(t)
			if used > float64(alloc) {
				res.DiskFullMinutes++
				used = float64(alloc) // writes beyond the volume fail
			}
			if used > high {
				high = used
			}
			meter.Record(float64(alloc))
			if t >= warmup && t%opts.DecisionEveryMinutes == 0 {
				if target := opts.Disk.Target(alloc, high, rr.Max.DiskGB); target > alloc {
					if events {
						h.Events.Emit(obs.Event{T: int64(t), Type: "sim.disk-resize", Fields: []obs.Field{
							obs.I("from", int64(alloc)),
							obs.I("to", int64(target)),
							obs.F("high_water", high),
						}})
					}
					alloc = target
					res.DiskScalings++
				}
			}
		}
		meter.Flush()
		res.FinalDiskGB = alloc
		res.BilledDiskGBPeriods = meter.BilledCorePeriods()
	}

	res.MemPressureWindows = inj.Counts().MemPressureWindows
	return res, nil
}
