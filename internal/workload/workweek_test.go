package workload

import (
	"testing"
	"time"

	"caasper/internal/forecast"
	"caasper/internal/stats"
)

func TestWorkWeekShape(t *testing.T) {
	tr := WorkWeek(1)
	if tr.Duration() != 21*24*time.Hour {
		t.Fatalf("duration = %v", tr.Duration())
	}
	day := 24 * 60
	// Business days run far hotter than weekends.
	wedMean := stats.Mean(tr.Window(2*day, 3*day))
	satMean := stats.Mean(tr.Window(5*day, 6*day))
	if wedMean < satMean*1.8 {
		t.Errorf("weekday mean %v vs weekend %v: weekly cycle missing", wedMean, satMean)
	}
	// The second-Friday reporting spike is the trace's global peak.
	spikeWin := tr.Window(11*day+15*60, 11*day+19*60)
	if stats.Max(spikeWin) < 10 {
		t.Errorf("reporting spike max = %v, want ≥10", stats.Max(spikeWin))
	}
	// Weekly periodicity: Monday week 1 ≈ Monday week 2 (outside the
	// spike window).
	w1 := stats.Mean(tr.Window(0, day))
	w2 := stats.Mean(tr.Window(7*day, 8*day))
	if diff := w1 - w2; diff > 0.7 || diff < -0.7 {
		t.Errorf("weekly drift: %v vs %v", w1, w2)
	}
}

func TestWorkWeekSeasonDetection(t *testing.T) {
	// The ACF detector must find the weekly period (10 080 min) rather
	// than the daily one when searching the weekly range — the R5
	// scenario where a daily-season forecaster would mispredict
	// weekends.
	tr := WorkWeek(2)
	const week = 7 * 24 * 60
	season, err := forecast.DetectSeason(tr.Values, 2*24*60, week+day(1), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if season < week-60 || season > week+60 {
		t.Errorf("detected season %d, want ≈%d (one week)", season, week)
	}
	// The daily cycle is also present when searching below a day and a
	// half.
	daily, err := forecast.DetectSeason(tr.Values, 6*60, 36*60, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if daily < 23*60 || daily > 25*60 {
		t.Errorf("daily season = %d, want ≈1440", daily)
	}
}

func day(n int) int { return n * 24 * 60 }

func TestWorkWeekProactiveWeeklySeason(t *testing.T) {
	// With the weekly season, the seasonal-naive forecaster predicts
	// quiet weekends correctly; with a daily season it over-predicts
	// Saturday from Friday's load.
	tr := WorkWeek(3)
	const week = 7 * 24 * 60
	const dayLen = 24 * 60
	// History: up to Saturday 00:00 of week 2.
	hist := tr.Values[:week+5*dayLen]

	weekly := &forecast.SeasonalNaive{Season: week}
	daily := &forecast.SeasonalNaive{Season: dayLen}
	horizon := 6 * 60 // Saturday morning

	wPred, err := weekly.Forecast(hist, horizon)
	if err != nil {
		t.Fatal(err)
	}
	dPred, err := daily.Forecast(hist, horizon)
	if err != nil {
		t.Fatal(err)
	}
	actual := tr.Values[week+5*dayLen : week+5*dayLen+horizon]
	wMAE, _ := stats.MAE(wPred, actual)
	dMAE, _ := stats.MAE(dPred, actual)
	if wMAE >= dMAE {
		t.Errorf("weekly-season MAE %v should beat daily-season MAE %v on the weekend boundary", wMAE, dMAE)
	}
}
