// Shard-parallel discrete-event engine (Options.Sharding == auto).
//
// The event engine's only cross-tenant coupling is phase 2: the capacity
// arbiter compares a proposal's resize deltas against the free capacity
// of the nodes hosting the proposer's pods. Tenants whose pods touch
// disjoint node sets therefore cannot affect each other's grants — one
// tenant's enactment changes only its own nodes' allocations, which the
// other's feasibility check never reads. Partitioning the fleet into the
// connected components of the tenant–node placement graph (union-find
// over pod placements) yields shard groups that are provably independent
// for the *whole* run: placements are fixed at onboarding, so the
// partition never changes mid-run.
//
// Each shard is a self-contained event loop — its own wake heap, awake
// list, virtual clock, arbitration scratch and fault-injector clone
// (draws are (seed, kind, pod, time)-keyed, so a clone replays the exact
// values the shared injector would have produced) — fanned out on
// internal/parallel. Phase 1 inside a shard runs sequentially: the fleet
// already parallelizes across shards, and one fan-out for the whole run
// replaces the single-shard loop's one fan-out per tick.
//
// Determinism and byte-identity. All cross-shard effects are reproduced
// after the join, sequentially, from per-shard records:
//
//   - Results: tenants only ever write their own TenantResult slots, and
//     the run epilogue (fleet.go) reduces them in tenant order, so the
//     aggregate sums add in the same order as the single-shard run.
//   - Pressure edges: shard clones poll silently; the merge advances the
//     one authoritative injector across the union of content ticks. A
//     window's activation edge appears in the single-shard stream after
//     all phase-2 events of ticks before the window's start and before
//     all phase-2 events of ticks at or after it — a position
//     independent of the empty ticks in between — so advancing only at
//     content ticks emits every edge at the identical byte offset.
//   - Phase-2 events: within one tick the single-shard engine emits
//     scale-down enactments in ascending tenant order, then arbitrated
//     scale-ups in (severity desc, tenant index asc) order. Both orders
//     are total and each shard's buffered run is already sorted by them,
//     so a k-way merge on the tagged keys reproduces the global
//     permutation exactly; the per-tick "fleet.arbitration" summary is
//     re-synthesized from the summed per-shard tallies.
//
// Arbitration semantics are untouched: a shard's grants see the
// already-reserved capacity of its earlier grants (same as the global
// order restricted to the shard), and grants in other shards are
// irrelevant by node-disjointness.
package fleet

import (
	"context"
	"math/bits"
	"sync/atomic"

	"caasper/internal/k8s"
	"caasper/internal/obs"
	"caasper/internal/parallel"
)

// shardPartition groups tenant indices into node-disjoint shard groups:
// the connected components of the bipartite tenant–node placement graph,
// computed with a union-find whose roots stay the smallest member index.
// It returns the group members concatenated (idxs) plus the group
// boundary offsets (group g spans idxs[offsets[g]:offsets[g+1]]).
// Members are ascending within a group and groups are ordered by their
// smallest member, so walking idxs visits every tenant exactly once.
func shardPartition(ts []*tenant) (idxs, offsets []int32) {
	parent := make([]int32, len(ts))
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byNode := make(map[string]int32)
	for i, t := range ts {
		for _, p := range t.set.Pods {
			if p.NodeName == "" {
				continue
			}
			j, ok := byNode[p.NodeName]
			if !ok {
				byNode[p.NodeName] = int32(i)
				continue
			}
			ra, rb := find(int32(i)), find(j)
			if ra == rb {
				continue
			}
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	root := make([]int32, len(ts))
	ng := int32(0)
	gid := make([]int32, len(ts)) // root index → group id
	for i := range ts {
		r := find(int32(i))
		root[i] = r
		if r == int32(i) {
			gid[i] = ng
			ng++
		}
	}
	offsets = make([]int32, ng+1)
	for i := range ts {
		offsets[gid[root[i]]+1]++
	}
	for g := int32(0); g < ng; g++ {
		offsets[g+1] += offsets[g]
	}
	idxs = make([]int32, len(ts))
	pos := make([]int32, ng)
	copy(pos, offsets[:ng])
	for i := range ts { // ascending i keeps members sorted within groups
		g := gid[root[i]]
		idxs[pos[g]] = int32(i)
		pos[g]++
	}
	return idxs, offsets
}

// evKey orders one shard's buffered phase-2 events for the cross-shard
// merge: scale-down enactments (stage 0, ascending tenant index) precede
// arbitrated scale-ups (stage 1, severity descending then index
// ascending) — the exact total order the single-shard engine emits in.
type evKey struct {
	stage int8
	idx   int32
	sev   float64
}

// keyLess is the single-shard engine's within-tick emission order.
func keyLess(a, b evKey) bool {
	if a.stage != b.stage {
		return a.stage < b.stage
	}
	if a.stage == 0 {
		return a.idx < b.idx
	}
	if a.sev != b.sev {
		return a.sev > b.sev
	}
	return a.idx < b.idx
}

// shardSink buffers one shard's phase-2 events alongside their merge
// keys (enactPhase tags the pending key before each emission). Emitters
// build fresh Fields slices, so retaining them until the merge is safe.
type shardSink struct {
	evs  []obs.Event
	keys []evKey
	key  evKey
}

func (k *shardSink) Enabled() bool { return true }
func (k *shardSink) Flush() error  { return nil }
func (k *shardSink) Emit(e obs.Event) {
	k.evs = append(k.evs, e)
	k.keys = append(k.keys, k.key)
}

// tickStat records one shard's phase-2 outcome at one content tick — a
// tick where the shard emitted events or deferred a tenant — everything
// the merge needs to re-synthesize the global arbitration summary.
type tickStat struct {
	tick           int32
	contenders     int32
	granted        int32
	deferred       int32
	evStart, evEnd int32 // the tick's event range in the shard's buffer
}

// shardRun is one shard's private event loop: a copy of the parent
// runState with the shared mutable machinery swapped for shard-local
// equivalents (injector clone, arbitration scratch, event buffer, dummy
// Result) plus the shard's wake heap and bookkeeping.
type shardRun struct {
	runState
	idxs  []int32 // global tenant indices, ascending
	heap  wakeHeap
	awake []int

	ticks   []tickStat // events-enabled: per content tick
	defBits []uint64   // events-disabled: shared minute bitmap of deferral ticks
	sink    shardSink  // events-enabled: h.Events and ssink point here
	dres    Result     // res redirect: shards must not touch the shared Result
}

// run executes the shard's event loop — the single-shard loop restricted
// to the shard's tenants, with the cross-shard effects (pressure
// edges/counts, cluster pressure, arbitration bookkeeping) recorded for
// the merge instead of applied. See the file comment.
func (sr *shardRun) run() {
	ts := sr.ts
	if d0 := sr.nextDecisionAt(0); d0 >= 0 {
		for _, i := range sr.idxs {
			sr.heap = append(sr.heap, wakeEntry{at: int32(d0), idx: i})
		}
	}
	heap := sr.heap
	clock := 0
	pressure := 0.0
	awake := sr.awake

	for len(heap) > 0 {
		d := int(heap[0].at)
		awake = awake[:0]
		for len(heap) > 0 && int(heap[0].at) == d {
			awake = append(awake, int(heap.pop().idx))
		}

		for {
			// The clone polls the same (window-keyed) pressure values the
			// shared injector would, silently; the shard's clock differs
			// from the global one, but the returned value only depends on
			// the tick's window. No cluster.SetPressure here — the cluster
			// is shared and nothing reads its pressure mid-run.
			if sr.finj != nil {
				pressure = sr.finj.AdvancePressure(int64(clock), int64(d+1))
			}
			clock = d + 1

			sevFrom := d - sr.d + 1
			if d == sr.warmup {
				sevFrom = 0
			}

			// Phase 1, sequential within the shard: the run is already
			// fanned out across shards.
			for _, i := range awake {
				t := ts[i]
				t.advanceTo(d+1, sevFrom)
				limit := t.lim
				t.hasProp = false
				t.decide(limit)
				t.computeWake(&sr.runState, d, limit)
			}

			evStart := len(sr.sink.evs)
			contenders, granted, deferred := sr.enactPhase(awake, pressure, d)
			if sr.events {
				if end := len(sr.sink.evs); end > evStart || deferred > 0 {
					sr.ticks = append(sr.ticks, tickStat{
						tick:       int32(d),
						contenders: int32(contenders),
						granted:    int32(granted),
						deferred:   int32(deferred),
						evStart:    int32(evStart),
						evEnd:      int32(end),
					})
				}
			} else if deferred > 0 {
				// Shards share one minute bitmap: an atomic OR is
				// commutative, so the union is schedule-independent, and
				// deferrals are rare enough that contention is immaterial.
				w, mask := &sr.defBits[uint(d)>>6], uint64(1)<<(uint(d)&63)
				for {
					old := atomic.LoadUint64(w)
					if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
						break
					}
				}
			}

			for _, i := range awake {
				if t := ts[i]; t.hasProp {
					t.lim = t.set.CPULimit()
				}
			}

			if len(heap) == 0 {
				if w := uniformWake(ts, awake); w >= 0 {
					d = w
					continue
				}
			}
			for _, i := range awake {
				if w := ts[i].wakeAt; w >= 0 {
					heap.push(wakeEntry{at: int32(w), idx: int32(i)})
				}
			}
			break
		}
	}

	// Account the shard's tenants to the horizon (the single-shard
	// epilogue's tail catch-up, restricted to this shard).
	for _, i := range sr.idxs {
		ts[i].advanceTo(sr.minutes, sr.minutes)
	}
}

// runEventsSharded fans the shard groups out on internal/parallel, then
// merges the per-shard records back into the authoritative injector,
// cluster pressure, Result and event stream — sequentially, so the
// output is byte-identical to runEventsSingle at any worker count.
func (s *runState) runEventsSharded(idxs, offsets []int32) error {
	n := len(offsets) - 1
	shards := make([]shardRun, n)
	arbs := make([]arbScratch, n)
	// Pre-size every shard's arbitration scratch from shared blocks: the
	// feasibility tally and rollback list each hold at most one tenant's
	// pods per check, so maxPods capacity means no shard ever grows its
	// scratch — three allocations replace ~3 per shard. (needMem stays
	// nil: the event engine rejects multi-resource tenants.)
	maxPods := 0
	for _, t := range s.ts {
		if np := len(t.set.Pods); np > maxPods {
			maxPods = np
		}
	}
	nodesBack := make([]string, n*maxPods)
	needBack := make([]float64, n*maxPods)
	doneBack := make([]*k8s.Pod, n*maxPods)
	// One backing block per working array, carved into per-shard
	// three-index slices: a tenant holds at most one pending wake, so a
	// shard's heap/awake/ups never outgrow its tenant count.
	heapBack := make([]wakeEntry, len(s.ts))
	awakeBack := make([]int, len(s.ts))
	upsBack := make([]int, len(s.ts))
	var defBits []uint64
	if !s.events {
		defBits = make([]uint64, (s.minutes+63)/64)
	}
	for k := 0; k < n; k++ {
		lo, hi := offsets[k], offsets[k+1]
		sr := &shards[k]
		sr.runState = *s
		sr.idxs = idxs[lo:hi]
		sr.heap = heapBack[lo:lo:hi]
		sr.awake = awakeBack[lo:lo:hi]
		sr.ups = upsBack[lo:lo:hi]
		arbs[k] = arbScratch{
			nodes: nodesBack[k*maxPods : k*maxPods : (k+1)*maxPods],
			need:  needBack[k*maxPods : k*maxPods : (k+1)*maxPods],
			done:  doneBack[k*maxPods : k*maxPods : (k+1)*maxPods],
		}
		sr.arb = &arbs[k]
		sr.res = &sr.dres
		sr.finj = s.finj.Clone()
		sr.defBits = defBits
		if s.events {
			sr.h.Events = &sr.sink
			sr.ssink = &sr.sink
		}
	}

	err := parallel.ForEach(context.Background(), n, s.workers, func(k int) error {
		shards[k].run()
		return nil
	})
	if err != nil {
		return err
	}
	s.mergeShards(shards)
	return nil
}

// mergeShards replays the cross-shard effects in global order. With
// events disabled only the counters matter: the pressure-window coverage
// is batching-independent (draws and edge dedupe are window-keyed), so
// one sweep advances the authoritative injector, and the arbitration
// tick count is the number of distinct ticks any shard deferred on. With
// events enabled the merge walks the union of content ticks in order,
// interleaving pressure edges and the k-way-merged phase-2 events.
func (s *runState) mergeShards(shards []shardRun) {
	if !s.events {
		if s.finj != nil {
			s.cluster.SetPressure(s.finj.AdvancePressure(0, int64(s.minutes)))
		}
		for _, w := range shards[0].defBits {
			s.res.ArbitrationTicks += bits.OnesCount64(w)
		}
		return
	}

	heads := make([]int, len(shards)) // per-shard cursor into ticks
	clock := 0
	pressure := 0.0
	for {
		// Next content tick: the minimum un-merged tick across shards.
		d := -1
		for k := range shards {
			if heads[k] < len(shards[k].ticks) {
				if t := int(shards[k].ticks[heads[k]].tick); d < 0 || t < d {
					d = t
				}
			}
		}
		if d < 0 {
			break
		}
		// Pressure edges up to and including tick d's window come first,
		// exactly where the single-shard loop put them (see the file
		// comment for why empty ticks cannot shift the byte position).
		if s.finj != nil {
			pressure = s.finj.AdvancePressure(int64(clock), int64(d+1))
			s.cluster.SetPressure(pressure)
		}
		clock = d + 1

		// K-way merge of the participating shards' event runs under the
		// single-shard emission order, then the re-synthesized
		// arbitration summary.
		contenders, granted, deferred := 0, 0, 0
		for {
			best, bestPos := -1, int32(0)
			for k := range shards {
				sr := &shards[k]
				if heads[k] >= len(sr.ticks) {
					continue
				}
				st := &sr.ticks[heads[k]]
				if int(st.tick) != d {
					continue
				}
				pos := st.evStart
				if pos >= st.evEnd {
					continue
				}
				if best < 0 || keyLess(sr.sink.keys[pos], shards[best].sink.keys[bestPos]) {
					best, bestPos = k, pos
				}
			}
			if best < 0 {
				break
			}
			s.h.Events.Emit(shards[best].sink.evs[bestPos])
			shards[best].ticks[heads[best]].evStart++
		}
		for k := range shards {
			sr := &shards[k]
			if heads[k] < len(sr.ticks) && int(sr.ticks[heads[k]].tick) == d {
				st := &sr.ticks[heads[k]]
				contenders += int(st.contenders)
				granted += int(st.granted)
				deferred += int(st.deferred)
				heads[k]++
			}
		}
		if deferred > 0 {
			s.res.ArbitrationTicks++
			s.h.Events.Emit(obs.Event{T: int64(d), Type: "fleet.arbitration", Fields: []obs.Field{
				obs.I("contenders", int64(contenders)),
				obs.I("granted", int64(granted)),
				obs.I("deferred", int64(deferred)),
				obs.F("pressure", pressure),
			}})
		}
	}
	if s.finj != nil && clock < s.minutes {
		s.cluster.SetPressure(s.finj.AdvancePressure(int64(clock), int64(s.minutes)))
	}
}
