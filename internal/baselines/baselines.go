// Package baselines implements the vertical-scaling policies the paper
// evaluates CaaSPER against (§3.3, §6):
//
//   - Control: fixed limits sized for the expected peak — the paper's
//     oracle-like over-provisioned reference run.
//   - KubernetesVPA: the default VPA recommender — a decaying histogram of
//     CPU samples whose 90th percentile (plus safety margin) sets
//     requests, with the paper's limits := requests+1 adaptation to the
//     limits-equal-requests service invariant.
//   - OpenShiftVPA: an OpenShift-style predictive recommender that sets
//     limits from a forecast of recent (capped) usage — faithfully
//     reproducing the throttling feedback loop of §3.3/Figure 3c.
//   - Autopilot: a moving-window-maximum policy in the spirit of Google's
//     Autopilot (§7), included as an additional reference point.
//
// All types implement recommend.Recommender.
package baselines

import (
	"errors"
	"fmt"
	"math"

	"caasper/internal/stats"
	"caasper/internal/window"
)

// Control is the fixed-limits reference policy.
type Control struct {
	// Cores is the fixed allocation.
	Cores int
}

// NewControl builds a fixed-allocation policy.
func NewControl(cores int) *Control { return &Control{Cores: cores} }

// Name implements recommend.Recommender.
func (c *Control) Name() string { return fmt.Sprintf("control(%d)", c.Cores) }

// Observe implements recommend.Recommender.
func (c *Control) Observe(int, float64) {}

// Recommend implements recommend.Recommender.
func (c *Control) Recommend(int) int { return c.Cores }

// Reset implements recommend.Recommender.
func (c *Control) Reset() {}

// ObserveRun implements recommend.RunObserver: Observe is a no-op, so the
// bulk form is too.
func (c *Control) ObserveRun(int, float64, int) {}

// SteadyObserving implements recommend.SteadyObserver: fixed limits hold
// no observation state at all, so every future recommendation is the same
// constant regardless of what is observed.
func (c *Control) SteadyObserving(float64) bool { return true }

// KubernetesVPAOptions configures the default-VPA baseline.
type KubernetesVPAOptions struct {
	// Percentile is the histogram percentile used for the requests
	// target; the upstream recommender uses 0.90.
	Percentile float64
	// SafetyMargin is the fraction added on top of the percentile;
	// upstream defaults to 0.15.
	SafetyMargin float64
	// HalfLifeMinutes is the histogram decay half-life; upstream uses
	// 24 hours.
	HalfLifeMinutes float64
	// MinCores / MaxCores clamp the recommendation (the paper adds a
	// 2-core floor to avoid disrupting the deployment).
	MinCores, MaxCores int
}

// DefaultKubernetesVPAOptions mirrors the upstream defaults plus the
// paper's guardrails.
func DefaultKubernetesVPAOptions(maxCores int) KubernetesVPAOptions {
	return KubernetesVPAOptions{
		Percentile:      0.90,
		SafetyMargin:    0.15,
		HalfLifeMinutes: 24 * 60,
		MinCores:        2,
		MaxCores:        maxCores,
	}
}

// KubernetesVPA is the decayed-histogram default VPA recommender.
type KubernetesVPA struct {
	opts KubernetesVPAOptions
	hist *stats.DecayingHistogram
}

// NewKubernetesVPA builds the baseline.
func NewKubernetesVPA(opts KubernetesVPAOptions) (*KubernetesVPA, error) {
	if opts.Percentile <= 0 || opts.Percentile > 1 {
		return nil, fmt.Errorf("baselines: percentile %v out of (0,1]", opts.Percentile)
	}
	if opts.MinCores < 1 || opts.MaxCores < opts.MinCores {
		return nil, errors.New("baselines: bad core bounds")
	}
	if opts.HalfLifeMinutes <= 0 {
		return nil, errors.New("baselines: non-positive half-life")
	}
	v := &KubernetesVPA{opts: opts}
	v.Reset()
	return v, nil
}

// Name implements recommend.Recommender.
func (v *KubernetesVPA) Name() string { return "k8s-vpa" }

// Observe implements recommend.Recommender.
//
// The histogram decays by sample timestamp, so Observe genuinely depends
// on the minute — this baseline deliberately implements neither
// recommend.RunObserver nor recommend.SteadyObserver: equal usage at
// different minutes lands with different decayed weights, and further
// equal observations keep shifting the percentile.
func (v *KubernetesVPA) Observe(minute int, usageCores float64) {
	v.hist.Add(usageCores, 1, float64(minute))
}

// Recommend implements recommend.Recommender. The histogram percentile
// plus safety margin yields the requests target; the paper's adaptation
// keeps limits := requests+1 so that the (requests-driven) VPA remains
// willing to scale, which is the allocation this method returns.
func (v *KubernetesVPA) Recommend(currentCores int) int {
	if v.hist.Empty() {
		return currentCores
	}
	p := v.hist.Percentile(v.opts.Percentile)
	requests := int(math.Ceil(p * (1 + v.opts.SafetyMargin)))
	limits := requests + 1 // the §3.3 limits:=requests+1 invariant
	return stats.ClampInt(limits, v.opts.MinCores, v.opts.MaxCores)
}

// Reset implements recommend.Recommender.
func (v *KubernetesVPA) Reset() {
	h, err := stats.NewDecayingHistogram(stats.DecayingHistogramOptions{
		FirstBucket: 0.01,
		Growth:      1.05,
		MaxValue:    float64(v.opts.MaxCores) * 2,
		HalfLife:    v.opts.HalfLifeMinutes,
	})
	if err != nil {
		// Options were validated in the constructor; a failure here is
		// programmer error.
		panic(err)
	}
	v.hist = h
}

// OpenShiftVPAOptions configures the predictive baseline.
type OpenShiftVPAOptions struct {
	// LookbackMinutes is the history window the predictor is fit on.
	LookbackMinutes int
	// HorizonMinutes is how far ahead the usage forecast extends.
	HorizonMinutes int
	// Margin is the fractional head-room added to the predicted peak.
	// The §3.3 evaluation shows the effective margin was far too small
	// to escape the capped-usage feedback loop.
	Margin float64
	// MinCores / MaxCores clamp the recommendation.
	MinCores, MaxCores int
}

// DefaultOpenShiftVPAOptions mirrors the behaviour evaluated in §3.3.
func DefaultOpenShiftVPAOptions(maxCores int) OpenShiftVPAOptions {
	return OpenShiftVPAOptions{
		LookbackMinutes: 60,
		HorizonMinutes:  30,
		Margin:          0.10,
		MinCores:        2,
		MaxCores:        maxCores,
	}
}

// OpenShiftVPA is the predictive baseline: it linearly extrapolates the
// recent observed usage and sets limits to the predicted peak plus
// margin. Because observed usage is capped at the current limits, a low
// initial prediction caps the workload, which keeps future predictions
// low — the throttling spiral of §3.3 emerges from the policy itself, not
// from any hard-coding here.
type OpenShiftVPA struct {
	opts OpenShiftVPAOptions
	// history retains only the lookback window the fit reads — O(window)
	// memory over arbitrarily long replays.
	history *window.Ring
	// xs is the constant 0..Lookback-1 regressor vector, computed once:
	// LinearFit always sees the same x-axis, only the y-window slides.
	xs []float64
}

// NewOpenShiftVPA builds the baseline.
func NewOpenShiftVPA(opts OpenShiftVPAOptions) (*OpenShiftVPA, error) {
	if opts.LookbackMinutes < 2 {
		return nil, errors.New("baselines: lookback must be ≥ 2")
	}
	if opts.HorizonMinutes < 1 {
		return nil, errors.New("baselines: horizon must be ≥ 1")
	}
	if opts.MinCores < 1 || opts.MaxCores < opts.MinCores {
		return nil, errors.New("baselines: bad core bounds")
	}
	xs := make([]float64, opts.LookbackMinutes)
	for i := range xs {
		xs[i] = float64(i)
	}
	return &OpenShiftVPA{opts: opts, history: window.New(opts.LookbackMinutes), xs: xs}, nil
}

// Name implements recommend.Recommender.
func (o *OpenShiftVPA) Name() string { return "openshift-vpa" }

// Observe implements recommend.Recommender.
func (o *OpenShiftVPA) Observe(_ int, usageCores float64) {
	o.history.Push(usageCores)
}

// ObserveRun implements recommend.RunObserver: Observe ignores the minute
// and only pushes into the ring, so the bulk form is a bulk ring append.
func (o *OpenShiftVPA) ObserveRun(_ int, usageCores float64, n int) {
	if n <= 0 {
		return
	}
	o.history.PushRun(usageCores, n)
}

// SteadyObserving implements recommend.SteadyObserver: Recommend is a pure
// function of the ring view (LinearFit over a constant x-axis), so once
// the bounded lookback window is saturated with nothing but u, further
// equal observations cannot change any future recommendation.
func (o *OpenShiftVPA) SteadyObserving(usageCores float64) bool {
	return o.history.Bounded() &&
		o.history.Total() >= o.history.Cap() &&
		o.history.AllEqual(usageCores)
}

// Recommend implements recommend.Recommender.
func (o *OpenShiftVPA) Recommend(currentCores int) int {
	// The ring retains min(total, Lookback) samples — exactly the
	// recent slice the unbounded history produced (Lookback ≥ 2, so the
	// cold-start gate sees the same branch either way).
	recent := o.history.View()
	if len(recent) < 2 {
		// Cold start: predict low (the §3.3 "initially the recommender
		// component predicts low CPU utilization").
		return o.opts.MinCores
	}
	a, b, err := stats.LinearFit(o.xs[:len(recent)], recent)
	if err != nil {
		return currentCores
	}
	// Predicted peak over the horizon: the max of the fitted line's
	// endpoints (a line's extremum is at an endpoint).
	start := a + b*float64(len(recent))
	end := a + b*float64(len(recent)+o.opts.HorizonMinutes-1)
	peak := math.Max(start, end)
	// Round to nearest (not up): the predictive pipeline sizes to its
	// point forecast. On capped history this is what keeps the limits
	// oscillating between 2 and 3 cores in §3.3 instead of ratcheting
	// out of the throttling spiral.
	target := int(math.Round(peak * (1 + o.opts.Margin)))
	return stats.ClampInt(target, o.opts.MinCores, o.opts.MaxCores)
}

// Reset implements recommend.Recommender.
func (o *OpenShiftVPA) Reset() { o.history.Reset() }

// AutopilotOptions configures the moving-window-maximum baseline.
type AutopilotOptions struct {
	// WindowMinutes is the sliding window the maximum is taken over.
	WindowMinutes int
	// Margin is the fractional head-room over the window maximum.
	Margin float64
	// MinCores / MaxCores clamp the recommendation.
	MinCores, MaxCores int
}

// DefaultAutopilotOptions returns a 3-hour window with 10% head-room.
func DefaultAutopilotOptions(maxCores int) AutopilotOptions {
	return AutopilotOptions{
		WindowMinutes: 180,
		Margin:        0.10,
		MinCores:      2,
		MaxCores:      maxCores,
	}
}

// Autopilot recommends the sliding-window maximum plus margin — the
// moving-max flavour of Google's Autopilot (paper §7) adapted to whole
// cores.
type Autopilot struct {
	opts AutopilotOptions
	// history retains only the moving-max window — O(window) memory.
	history *window.Ring
}

// NewAutopilot builds the baseline.
func NewAutopilot(opts AutopilotOptions) (*Autopilot, error) {
	if opts.WindowMinutes < 1 {
		return nil, errors.New("baselines: window must be ≥ 1")
	}
	if opts.MinCores < 1 || opts.MaxCores < opts.MinCores {
		return nil, errors.New("baselines: bad core bounds")
	}
	return &Autopilot{opts: opts, history: window.New(opts.WindowMinutes)}, nil
}

// Name implements recommend.Recommender.
func (a *Autopilot) Name() string { return "autopilot-max" }

// Observe implements recommend.Recommender.
func (a *Autopilot) Observe(_ int, usageCores float64) {
	a.history.Push(usageCores)
}

// ObserveRun implements recommend.RunObserver: Observe ignores the minute
// and only pushes into the ring, so the bulk form is a bulk ring append.
func (a *Autopilot) ObserveRun(_ int, usageCores float64, n int) {
	if n <= 0 {
		return
	}
	a.history.PushRun(usageCores, n)
}

// SteadyObserving implements recommend.SteadyObserver: Recommend is a pure
// function of the ring view (max plus margin), so a saturated window
// holding nothing but u pins every future recommendation.
func (a *Autopilot) SteadyObserving(usageCores float64) bool {
	return a.history.Bounded() &&
		a.history.Total() >= a.history.Cap() &&
		a.history.AllEqual(usageCores)
}

// Recommend implements recommend.Recommender.
func (a *Autopilot) Recommend(currentCores int) int {
	recent := a.history.View() // min(total, WindowMinutes) samples
	if len(recent) == 0 {
		return currentCores
	}
	m := stats.Max(recent)
	target := int(math.Ceil(m * (1 + a.opts.Margin)))
	return stats.ClampInt(target, a.opts.MinCores, a.opts.MaxCores)
}

// Reset implements recommend.Recommender.
func (a *Autopilot) Reset() { a.history.Reset() }
