GO ?= go

.PHONY: build test race bench bench-all check chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# Full verification gate: vet + build + race tests + benchmark smoke.
check:
	sh scripts/check.sh

# Fixed-seed fault-injection matrix diffed against the chaos goldens.
# Regenerate after an intentional behaviour change: UPDATE=1 make chaos
chaos:
	sh scripts/chaos.sh
