package tuning

import (
	"strings"
	"testing"

	"caasper/internal/obs"
)

func TestRandomSearchSkipReasonsAndEvents(t *testing.T) {
	tr := shortCyclicalTrace()
	space := DefaultSearchSpace()
	space.MinCores = [2]int{999, 999} // every combination invalid
	mem := obs.NewMemorySink()
	reg := obs.NewRegistry()
	_, report, err := RandomSearchReport(tr, SearchOptions{
		Samples: 8,
		Seed:    3,
		Space:   &space,
		Events:  mem,
		Metrics: reg,
	})
	if err == nil {
		t.Fatal("all-invalid search should error")
	}
	if report.Skipped != 8 {
		t.Fatalf("Skipped = %d, want 8", report.Skipped)
	}
	total := 0
	for _, n := range report.SkipReasons {
		total += n
	}
	if total != 8 {
		t.Errorf("SkipReasons sum = %d, want 8: %v", total, report.SkipReasons)
	}
	if mem.Len() != 8 {
		t.Fatalf("skip events = %d, want 8", mem.Len())
	}
	var buf []byte
	for i, e := range mem.Events() {
		if e.Type != "tuning.skip" {
			t.Fatalf("event %d type = %s", i, e.Type)
		}
		if e.T != int64(i) {
			t.Errorf("skip events out of sampling order: event %d has T=%d", i, e.T)
		}
		buf = e.AppendNDJSON(buf[:0])
		if !strings.Contains(string(buf), `"reason":`) {
			t.Errorf("skip event missing reason: %s", buf)
		}
	}
	if got := reg.Counter("tuning.skipped").Value(); got != 8 {
		t.Errorf("counter tuning.skipped = %d, want 8", got)
	}
}

func TestRandomSearchPoolStatsPopulated(t *testing.T) {
	tr := shortCyclicalTrace()
	_, report, err := RandomSearchReport(tr, SearchOptions{
		Samples:       6,
		Seed:          11,
		SeasonMinutes: 6 * 60,
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.PoolTasks != 6 {
		t.Errorf("PoolTasks = %d, want 6", report.PoolTasks)
	}
	if report.PoolWorkers != 2 {
		t.Errorf("PoolWorkers = %d, want 2", report.PoolWorkers)
	}
	if report.PoolUtilization <= 0 || report.PoolUtilization > 1 {
		t.Errorf("PoolUtilization = %v, want in (0, 1]", report.PoolUtilization)
	}
	if report.EvalLatencyP50 <= 0 || report.EvalLatencyP99 < report.EvalLatencyP50 {
		t.Errorf("eval latency quantiles p50=%v p99=%v look wrong", report.EvalLatencyP50, report.EvalLatencyP99)
	}
	if !strings.Contains(report.PoolSummary(), "6 tasks on 2 workers") {
		t.Errorf("PoolSummary = %q", report.PoolSummary())
	}
}
