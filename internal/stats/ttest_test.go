package stats

import (
	"math"
	"testing"
)

func TestPairedTTestValidation(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should error")
	}
}

func TestPairedTTestIdenticalSamples(t *testing.T) {
	a := []float64{3, 4, 5, 6, 7}
	r, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 || r.T != 0 || r.MeanDiff != 0 {
		t.Errorf("identical samples: %+v, want P=1 T=0", r)
	}
	if r.Significant(0.05) {
		t.Error("identical samples should not be significant")
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 3, 4, 5} // exact shift, zero-variance differences
	r, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 0 {
		t.Errorf("constant nonzero shift should give P=0, got %v", r.P)
	}
	if !r.Significant(0.05) {
		t.Error("constant shift should be significant")
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// Classic textbook example: diffs = {1, 2, 3, 4, 5} shifted around 0.
	a := []float64{10, 12, 9, 14, 11}
	b := []float64{9, 10, 7, 11, 9}
	// diffs = {1, 2, 2, 3, 2}; mean=2, sd=sqrt(0.5), t = 2/(sqrt(0.5)/sqrt(5)) ≈ 6.325.
	r, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.T, 6.3245553, 1e-5) {
		t.Errorf("T = %v, want ≈6.3246", r.T)
	}
	if r.DF != 4 {
		t.Errorf("DF = %d, want 4", r.DF)
	}
	// Two-sided p for t=6.3246, df=4 ≈ 0.00320.
	if !almostEqual(r.P, 0.0032, 5e-4) {
		t.Errorf("P = %v, want ≈0.0032", r.P)
	}
}

func TestPairedTTestNoisyEquivalentSamples(t *testing.T) {
	// Two series that differ only by symmetric noise should not be
	// significantly different — this is the simulator-correctness check
	// shape from paper §5.
	rng := NewRNG(99)
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		base := 5 + 3*math.Sin(float64(i)/10)
		a[i] = base + rng.NormFloat64()*0.2
		b[i] = base + rng.NormFloat64()*0.2
	}
	r, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant(0.05) {
		t.Errorf("equivalent noisy series flagged significant: %+v", r)
	}
}

func TestPairedTTestDetectsRealShift(t *testing.T) {
	rng := NewRNG(123)
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 1.0 + rng.NormFloat64()*0.1
	}
	r, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.05) {
		t.Errorf("clear shift not detected: %+v", r)
	}
	if r.MeanDiff >= 0 {
		t.Errorf("MeanDiff = %v, want negative (a < b)", r.MeanDiff)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); !almostEqual(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8} {
		lhs := regIncBeta(2.5, 4, x)
		rhs := 1 - regIncBeta(4, 2.5, 1-x)
		if !almostEqual(lhs, rhs, 1e-10) {
			t.Errorf("symmetry broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestStudentTSFKnownValues(t *testing.T) {
	// P(T > 0) = 0.5 for any df.
	if got := studentTSF(0, 10); got != 0.5 {
		t.Errorf("SF(0) = %v", got)
	}
	// df=1 (Cauchy): P(T > 1) = 0.25.
	if got := studentTSF(1, 1); !almostEqual(got, 0.25, 1e-6) {
		t.Errorf("SF(1, df=1) = %v, want 0.25", got)
	}
	// Large df approaches the normal tail: P(Z > 1.96) ≈ 0.025.
	if got := studentTSF(1.96, 10000); !almostEqual(got, 0.025, 1e-3) {
		t.Errorf("SF(1.96, df=1e4) = %v, want ≈0.025", got)
	}
}
