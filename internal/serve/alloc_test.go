// Ingest-path allocation pins. The serve ingest hot path recycles its
// parse scratch (scanner buffer + samples slice travel through the
// shard queue and back into their pools) and decodes canonical sample
// lines with a hand-rolled parser instead of encoding/json; these tests
// fail the build if either half regresses — the parser by diverging
// from json.Unmarshal, the pooling by re-introducing per-batch garbage.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"caasper/internal/obs"
)

// TestParseSampleFastMatchesJSON cross-checks the fast parser against
// encoding/json on canonical, exotic and malformed inputs: whenever the
// fast path accepts a line it must produce the exact struct the full
// decoder does, and it must decline (not misparse) everything unusual.
func TestParseSampleFastMatchesJSON(t *testing.T) {
	cases := []struct {
		in       string
		wantFast bool // fast path must handle it itself
	}{
		{`{"cpu": 1.5, "ram_gb": 3.2, "disk_gb": 12}`, true},
		{`{"cpu":0}`, true},
		{`{"cpu":3.25,"ram_gb":0.5}`, true},
		{`{"cpu":7e2}`, true},
		{`{"cpu":1.25E+1}`, true},
		{`{"cpu":-0}`, true},
		{`{"disk_gb":40,"cpu":2}`, true}, // order-independent
		{`  {"cpu": 2}  `, true},
		{`{}`, true},
		{`{"cpu":0.1}`, true}, // repeating binary fraction
		{`{"cpu":33.33}`, true},
		// Outside the fast path: must fall back, never misparse.
		{`{"cpu":1e999}`, false},                   // overflow → +Inf via ParseFloat... json rejects? fallback decides
		{`{"cpu":12345678901234567890123}`, false}, // >19 digits
		{`{"cpu":2,"note":"hi"}`, false},           // unknown key (json ignores it)
		{`{"cpu":null}`, false},                    // null → json leaves sentinel
		{`{"cpu":"3"}`, false},                     // wrong type → json error
		{`{"cpus":2}`, false},                      // unknown key (json ignores it)
		{`{"\u0063pu":2}`, false},                  // escaped key → fall back
		{`{"cpu":2}{"cpu":3}`, false},              // trailing garbage
		{`{"cpu":2,}`, false},                      // trailing comma
		{`{"cpu":.5}`, false},                      // no leading digit
		{`{"cpu":01}`, false},                      // leading zero
		{`not json`, false},
	}
	for _, tc := range cases {
		fast := sample{CPU: -1}
		ok := parseSampleFast([]byte(tc.in), &fast)
		if ok != tc.wantFast {
			t.Errorf("parseSampleFast(%q) ok = %v, want %v", tc.in, ok, tc.wantFast)
		}
		if !ok {
			continue
		}
		ref := sample{CPU: -1}
		if err := json.Unmarshal([]byte(tc.in), &ref); err != nil {
			t.Errorf("fast path accepted %q but json.Unmarshal rejects it: %v", tc.in, err)
			continue
		}
		if fast != ref {
			t.Errorf("parseSampleFast(%q) = %+v, json.Unmarshal = %+v", tc.in, fast, ref)
		}
	}
}

// TestParseSampleFastRandomizedNumbers sweeps generated numeric shapes
// through both decoders — the bit-identical contract for the Clinger
// fast-path window, across signs, fractions and exponents.
func TestParseSampleFastRandomizedNumbers(t *testing.T) {
	var nums []string
	for _, mant := range []string{"0", "1", "7", "12", "999", "4503599627370495", "9007199254740991", "1.5", "0.125", "3.1415926", "0.0071", "123.456"} {
		for _, exp := range []string{"", "e0", "e1", "e-1", "E5", "e+10", "e-20", "e22"} {
			nums = append(nums, mant+exp, "-"+mant+exp)
		}
	}
	for _, n := range nums {
		line := fmt.Sprintf(`{"cpu":%s,"ram_gb":%s}`, n, n)
		fast := sample{CPU: -1}
		if !parseSampleFast([]byte(line), &fast) {
			// Outside the exact-conversion window — allowed, the real
			// handler falls back to json.Unmarshal.
			continue
		}
		ref := sample{CPU: -1}
		if err := json.Unmarshal([]byte(line), &ref); err != nil {
			t.Fatalf("json.Unmarshal(%q): %v", line, err)
		}
		if fast != ref {
			t.Errorf("number %q: fast %v/%v, json %v/%v", n, fast.CPU, fast.RAMGB, ref.CPU, ref.RAMGB)
		}
	}
}

// TestParseSampleFastAllocBudget pins the fast parser at zero
// allocations per canonical line — the whole point of bypassing
// encoding/json on the ingest hot path.
func TestParseSampleFastAllocBudget(t *testing.T) {
	raw := []byte(`{"cpu": 3.27, "ram_gb": 12.5, "disk_gb": 40}`)
	var smp sample
	allocs := testing.AllocsPerRun(100, func() {
		smp = sample{CPU: -1}
		if !parseSampleFast(raw, &smp) {
			t.Fatal("canonical line fell off the fast path")
		}
	})
	if allocs != 0 {
		t.Fatalf("parseSampleFast allocated %.0f times per line, want 0", allocs)
	}
	if smp.CPU != 3.27 || smp.RAMGB != 12.5 || smp.DiskGB != 40 {
		t.Fatalf("parsed %+v", smp)
	}
}

// TestIngestAllocBudget drives a warmed-up 60-sample batch straight into
// the handler (no HTTP client, a recycled recorder) and budgets the
// whole POST: with pooled parse scratch and the fast-path decoder, the
// per-batch cost is dominated by net/http request plumbing and the due
// decisions — around 85 allocations, under 1.5 per sample — where the
// seed implementation spent ~370 more on the parse path alone (a fresh
// 64 KiB scanner buffer, samples-slice growth and one json.Unmarshal
// per line).
func TestIngestAllocBudget(t *testing.T) {
	s, err := New(Options{Metrics: obs.NewRegistry(), Shards: 1, DecisionEveryMinutes: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mux := s.Handler()

	cfgBody := `{"policy":"caasper","min_cores":1,"max_cores":16,"initial_cores":2,"window":40}`
	req := httptest.NewRequest("PUT", "/v1/tenants/t0", strings.NewReader(cfgBody))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("tenant PUT: %d %s", rec.Code, rec.Body.String())
	}

	var body bytes.Buffer
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&body, `{"cpu": %.2f, "ram_gb": %.2f, "disk_gb": 12}`+"\n", 1.5+float64(i%7), 3.2+float64(i%5))
	}
	lines := body.Bytes()

	post := func() {
		req := httptest.NewRequest("POST", "/v1/tenants/t0/samples", bytes.NewReader(lines))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("samples POST: %d %s", rec.Code, rec.Body.String())
		}
	}
	// Warm up the pools, the tenant window and the drain worker's scratch
	// high-water marks, then wait for the queue to empty so measured runs
	// recycle batch boxes instead of racing the worker for fresh ones.
	const warmups = 8
	for i := 0; i < warmups; i++ {
		post()
	}
	applied := s.opts.Metrics.Counter("serve.samples")
	for applied.Value() < warmups*60 {
		time.Sleep(time.Millisecond)
	}
	// The drain worker runs concurrently and a GC mid-measurement would
	// charge pool refills to the loop; pause collection so the pin is
	// about the code path (same technique as the top-level alloc tests).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(20, post)
	const budget = 120 // one 60-sample batch; the seed's parse path alone spent ~370 on top of this
	if allocs > budget {
		t.Fatalf("60-sample ingest POST allocated %.0f times, budget %d", allocs, budget)
	}
}
