package faults

import (
	"strings"
	"testing"

	"caasper/internal/obs"
)

func TestMemPressureSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec("mem-pressure:p=0.4:gb=3:dur=120")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := spec.Get(MemPressure)
	if !ok {
		t.Fatal("mem-pressure missing from parsed spec")
	}
	if f.P != 0.4 || f.GB != 3 || f.Dur != 120 {
		t.Fatalf("parsed fault wrong: %+v", f)
	}
	if got := spec.String(); got != "mem-pressure:p=0.4:dur=120:gb=3" {
		t.Fatalf("String() = %q", got)
	}
	// Defaults.
	spec, err = ParseSpec("mem-pressure")
	if err != nil {
		t.Fatal(err)
	}
	f, _ = spec.Get(MemPressure)
	if f.P != 0.5 || f.GB != 2 || f.Dur != 300 {
		t.Fatalf("defaults wrong: %+v", f)
	}
	// Bad gb values.
	for _, s := range []string{"mem-pressure:gb=0", "mem-pressure:gb=-1", "mem-pressure:gb=x"} {
		if _, err := ParseSpec(s); err == nil {
			t.Fatalf("spec %q should be rejected", s)
		}
	}
}

func TestMemPressureDeterministicWindows(t *testing.T) {
	spec, _ := ParseSpec("mem-pressure:p=0.5:gb=2:dur=60")
	run := func() ([]float64, Counts) {
		in := New(spec, 7)
		var got []float64
		for now := int64(0); now < 600; now += 10 {
			got = append(got, in.MemPressureGB("pod-0", now))
		}
		return got, in.Counts()
	}
	a, ca := run()
	b, cb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across runs: %v vs %v", i, a[i], b[i])
		}
	}
	if ca != cb {
		t.Fatalf("counts differ: %+v vs %+v", ca, cb)
	}
	if ca.MemPressureWindows == 0 {
		t.Fatal("p=0.5 over 10 windows should activate at least once")
	}
	if !ca.Any() {
		t.Fatal("Counts.Any must include mem-pressure windows")
	}
	// Value is all-or-nothing per window.
	for i, v := range a {
		if v != 0 && v != 2 {
			t.Fatalf("draw %d = %v, want 0 or 2", i, v)
		}
	}
	// Different pods see independent streams (keyed per pod).
	in := New(spec, 7)
	same := true
	for now := int64(0); now < 600; now += 60 {
		if in.MemPressureGB("pod-0", now) != in.MemPressureGB("pod-other", now) {
			same = false
		}
	}
	if same {
		t.Fatal("pod streams should differ for at least one window")
	}
}

func TestMemPressureEdgeEventOnce(t *testing.T) {
	spec, _ := ParseSpec("mem-pressure:p=1:gb=2:dur=60")
	in := New(spec, 1)
	sink := obs.NewMemorySink()
	in.Events = sink
	// Poll the same window repeatedly: one edge event only.
	for now := int64(0); now < 60; now += 10 {
		if got := in.MemPressureGB("p", now); got != 2 {
			t.Fatalf("p=1 window must be active, got %v", got)
		}
	}
	events := sink.Events()
	n := 0
	for _, e := range events {
		if e.Type == "fault.mem-pressure" {
			n++
			if e.T != 0 {
				t.Fatalf("edge event at T=%d, want window boundary 0", e.T)
			}
		}
	}
	if n != 1 {
		t.Fatalf("got %d edge events, want 1", n)
	}
}

func TestMemPressureNilAndCPUOnlySummary(t *testing.T) {
	var in *Injector
	if in.MemPressureGB("p", 0) != 0 {
		t.Fatal("nil injector must inject nothing")
	}
	// A spec without mem-pressure must not mention it in the summary —
	// the CPU-only chaos report stays byte-identical.
	spec, _ := ParseSpec("restart-fail:p=0.2")
	if s := Summarize(spec, 1, Counts{}); strings.Contains(s, "memory-pressure") {
		t.Fatalf("CPU-only summary mentions memory-pressure:\n%s", s)
	}
	spec, _ = ParseSpec("mem-pressure")
	if s := Summarize(spec, 1, Counts{MemPressureWindows: 3}); !strings.Contains(s, "memory-pressure windows:     3") {
		t.Fatalf("mem-pressure summary missing:\n%s", s)
	}
}
