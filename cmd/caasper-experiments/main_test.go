package main

import (
	"strings"
	"testing"
)

func TestRunnersHaveUniqueIDsAndDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range runners {
		if r.id == "" || r.doc == "" || r.fn == nil {
			t.Errorf("incomplete runner %+v", r.id)
		}
		if seen[r.id] {
			t.Errorf("duplicate runner id %q", r.id)
		}
		seen[r.id] = true
	}
	// Every paper artifact is covered.
	for _, want := range []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "correctness", "motivation", "table1-margins",
		"ablation-inplace", "ablation-horizon", "ablation-prefilter",
	} {
		if !seen[want] {
			t.Errorf("missing runner %q", want)
		}
	}
}

func TestFastRunnersProduceReports(t *testing.T) {
	fast := map[string]bool{"fig4": true, "fig5": true, "fig6": true, "fig7": true}
	for _, r := range runners {
		if !fast[r.id] {
			continue
		}
		text, err := r.fn(1, 10, 1)
		if err != nil {
			t.Errorf("%s: %v", r.id, err)
			continue
		}
		if !strings.Contains(text, "paper") {
			t.Errorf("%s report lacks the paper comparison line:\n%s", r.id, text)
		}
	}
}
