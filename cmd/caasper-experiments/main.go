// Command caasper-experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §3 for the full index) and prints the
// reports, optionally to a file. Individual experiments are selectable:
//
//	caasper-experiments                       # run everything
//	caasper-experiments -run fig3,fig10       # a subset
//	caasper-experiments -samples 1000         # deeper tuning sweeps
//	caasper-experiments -out results.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"caasper/internal/experiments"
	"caasper/internal/obs"
	"caasper/internal/parallel"
)

type runner struct {
	id  string
	doc string
	fn  func(seed uint64, samples, workers int) (string, error)
}

var runners = []runner{
	{"fig3", "recommender comparison on the 62h step workload (§3.3)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.Figure3(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig4", "slope-driven scale-up example (§4.2)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.Figure4(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig5", "PvP curves: throttled vs right-sized (§4.2)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.Figure5(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig6", "scaling-factor function shape (§4.2)", func(uint64, int, int) (string, error) {
		return experiments.Figure6().Report, nil
	}},
	{"fig7", "typical vs flat PvP curves, walk-down (§4.2)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.Figure7(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig9", "live 12h workday on Database A + Table 1 (§6.2)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.Figure9Table1(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig10", "live 3-day cyclical on Database B + Table 1 (§6.2)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.Figure10Table1(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig11", "recreated customer trace + Table 2 (§6.2)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.Figure11Table2(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig12", "tuning scatter + Pareto frontier (§6.3)", func(seed uint64, samples, _ int) (string, error) {
		r, err := experiments.Figure12(seed, samples)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig13", "alpha drill-down (§6.3)", func(seed uint64, samples, _ int) (string, error) {
		f12, err := experiments.Figure12(seed, samples)
		if err != nil {
			return "", err
		}
		r, err := experiments.Figure13(f12)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"fig14", "Alibaba traces + Table 3 (§6.3)", func(seed uint64, samples, _ int) (string, error) {
		r, err := experiments.Figure14Table3(seed, samples)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"correctness", "simulator-vs-live paired t-test (§5)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.SimulatorCorrectness(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"table1-margins", "Table 1 metrics with ± error margins across replica runs (§6.2)", func(seed uint64, _, workers int) (string, error) {
		_, report, err := experiments.ReplicatedFigure9([]uint64{seed, seed + 1, seed + 2}, workers)
		return report, err
	}},
	{"motivation", "horizontal vs vertical scaling for single-primary DBs (§1/§3.1)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.MotivationHorizontal(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"ablation-inplace", "rolling-update vs in-place resize (§8 future work)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.AblationInPlace(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"ablation-horizon", "proactive scale-ahead horizon sweep (§6.2)", func(seed uint64, _, workers int) (string, error) {
		r, err := experiments.AblationHorizon(seed, workers)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
	{"ablation-prefilter", "forecast-confidence prefilter (§4.3 future work)", func(seed uint64, _, _ int) (string, error) {
		r, err := experiments.AblationPrefilter(seed)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}},
}

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		samples = flag.Int("samples", 200, "tuning-sweep sample count for fig12/fig13/fig14 (paper: 5000)")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		out     = flag.String("out", "", "also write reports to this file")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", 0, "worker goroutines for fan-out stages (default: GOMAXPROCS)")
	)
	var cli obs.CLIConfig
	cli.Register(flag.CommandLine)
	flag.Parse()

	session, err := cli.Start()
	if err != nil {
		fatal(err)
	}
	defer session.Finish(os.Stdout)
	session.FlushOnSignal(os.Stdout, "caasper-experiments")

	if *list {
		for _, r := range runners {
			fmt.Printf("%-12s %s\n", r.id, r.doc)
		}
		return
	}

	selected := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var active []runner
	for _, r := range runners {
		if len(selected) == 0 || selected[r.id] {
			active = append(active, r)
		}
	}

	// Experiments run concurrently but their reports are buffered and
	// printed in the declaration order, so the output is byte-identical to
	// a sequential run for every -workers value. A failing experiment is
	// reported in place rather than aborting the batch, matching the old
	// sequential behaviour.
	type outcome struct {
		text string
		err  error
	}
	results, _ := parallel.Map(context.Background(), len(active), *workers, func(i int) (outcome, error) {
		t0 := time.Now()
		text, err := active[i].fn(*seed, *samples, *workers)
		session.Metrics.Histogram("experiments.latency").ObserveSince(t0)
		session.Log.Infof("%s done in %v", active[i].id, time.Since(t0).Round(time.Millisecond))
		return outcome{text: text, err: err}, nil
	})

	// The audit stream is emitted sequentially in declaration order, so
	// -events output is identical for every -workers value.
	failed := 0
	for i, r := range active {
		fmt.Fprintf(w, "================ %s — %s ================\n", r.id, r.doc)
		if obs.Enabled(session.Events) {
			session.Events.Emit(obs.Event{T: int64(i), Type: "experiment.done", Fields: []obs.Field{
				obs.S("id", r.id),
				obs.B("ok", results[i].err == nil),
			}})
		}
		if results[i].err != nil {
			fmt.Fprintf(w, "ERROR: %v\n\n", results[i].err)
			session.Metrics.Counter("experiments.failed").Inc()
			failed++
			continue
		}
		session.Metrics.Counter("experiments.succeeded").Inc()
		fmt.Fprintf(w, "%s\n", results[i].text)
	}
	if failed > 0 {
		session.Finish(os.Stdout)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caasper-experiments:", err)
	os.Exit(1)
}
