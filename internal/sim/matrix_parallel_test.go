package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"caasper/internal/trace"
	"caasper/internal/workload"
)

// Matrix cells are evaluated across a worker pool but written by index, so
// Cells ordering, every per-cell Result and the rendered Summary must be
// identical for every worker count.
func TestRunMatrixDeterministicAcrossWorkerCounts(t *testing.T) {
	traces := []*trace.Trace{
		workload.Workday12h(1),
		workload.StepTrace62h(1),
	}
	factories := testFactories()
	run := func(workers int) *Matrix {
		t.Helper()
		m, err := RunMatrix(traces, factories, Options{
			DecisionEveryMinutes: 10,
			ResizeDelayMinutes:   10,
			BillingPeriod:        time.Hour,
			Workers:              workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return m
	}

	want := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if got.Summary() != want.Summary() {
			t.Errorf("workers=%d: summary differs from sequential run:\n%s\nvs\n%s",
				workers, got.Summary(), want.Summary())
		}
		for i := range want.Cells {
			if got.Cells[i].TraceName != want.Cells[i].TraceName ||
				got.Cells[i].RecommenderName != want.Cells[i].RecommenderName {
				t.Fatalf("workers=%d: cell %d is %s/%s, want %s/%s", workers, i,
					got.Cells[i].TraceName, got.Cells[i].RecommenderName,
					want.Cells[i].TraceName, want.Cells[i].RecommenderName)
			}
			if !reflect.DeepEqual(got.Cells[i].Result, want.Cells[i].Result) {
				t.Errorf("workers=%d: cell %d result differs", workers, i)
			}
		}
	}
}

// The lazy Cell index must notice cells appended after the first lookup.
func TestMatrixCellIndexRebuildAfterAppend(t *testing.T) {
	m := &Matrix{Cells: []MatrixCell{
		{TraceName: "a", RecommenderName: "x", Result: &Result{NumScalings: 1}},
	}}
	if got := m.Cell("a", "x"); got == nil || got.NumScalings != 1 {
		t.Fatalf("Cell(a,x) = %v", got)
	}
	if m.Cell("b", "y") != nil {
		t.Fatal("missing cell should be nil")
	}
	m.Cells = append(m.Cells, MatrixCell{
		TraceName: "b", RecommenderName: "y", Result: &Result{NumScalings: 2},
	})
	if got := m.Cell("b", "y"); got == nil || got.NumScalings != 2 {
		t.Fatalf("Cell(b,y) after append = %v", got)
	}
	// Duplicate keys: first occurrence wins, matching the old linear scan.
	m.Cells = append(m.Cells, MatrixCell{
		TraceName: "a", RecommenderName: "x", Result: &Result{NumScalings: 99},
	})
	if got := m.Cell("a", "x"); got == nil || got.NumScalings != 1 {
		t.Fatalf("duplicate Cell(a,x) = %v, want the first occurrence", got)
	}
}

func BenchmarkRunMatrixParallel(b *testing.B) {
	traces := []*trace.Trace{
		workload.Workday12h(1),
		workload.StepTrace62h(1),
	}
	factories := testFactories()
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunMatrix(traces, factories, Options{
					DecisionEveryMinutes: 10,
					ResizeDelayMinutes:   10,
					BillingPeriod:        time.Hour,
					Workers:              workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
