// Command caasper-serve runs the recommender as a long-lived service:
// tenants POST metric samples over HTTP/NDJSON, decisions stream back
// with lazily materialised explanations, and the admin API retunes
// min/max core ranges and hot-swaps policies without a restart.
//
// The listener binds synchronously before any traffic is accepted, so a
// bad -addr fails fast; -addr-file writes the bound address (useful with
// -addr 127.0.0.1:0 in scripts). On SIGINT/SIGTERM the server stops
// accepting requests, drains every queued ingest batch, checkpoints to
// -snapshot when one is configured, and flushes telemetry — a restart
// from that snapshot resumes mid-window with bit-identical decisions.
//
// Examples:
//
//	caasper-serve -addr 127.0.0.1:8080 -snapshot state.ndjson
//	caasper-serve -addr 127.0.0.1:0 -addr-file addr.txt -decision-interval 5
//
//	curl -X PUT  localhost:8080/v1/tenants/acme -d '{"policy":"caasper","min_cores":2,"max_cores":16}'
//	printf '{"cpu":3.2}\n{"cpu":4.1}\n' | curl -X POST localhost:8080/v1/tenants/acme/samples --data-binary @-
//	curl 'localhost:8080/v1/tenants/acme/decisions?explain=1'
//	curl -X PUT  localhost:8080/v1/admin/tenants/acme/range -d '{"min_cores":4,"max_cores":32}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"caasper"
	"caasper/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		shards      = flag.Int("shards", 16, "tenant-map shard count (ingest parallelism)")
		queueDepth  = flag.Int("queue-depth", 256, "per-shard ingest queue depth (full queue answers 429)")
		decisionInt = flag.Int("decision-interval", 10, "samples between decisions per tenant")
		logSize     = flag.Int("decision-log", 512, "per-tenant decision records retained for the stream")
		snapshot    = flag.String("snapshot", "", "checkpoint file: restored at startup, written on shutdown and POST /v1/admin/snapshot")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	var cli obs.CLIConfig
	cli.Register(flag.CommandLine)
	flag.Parse()

	session, err := cli.Start()
	if err != nil {
		fatal(err)
	}
	defer session.Finish(os.Stdout)

	if _, err := obs.StartPprof(*pprofAddr, session.Log); err != nil {
		fatal(err)
	}

	srv, err := caasper.NewServer(caasper.ServeOptions{
		Shards:               *shards,
		QueueDepth:           *queueDepth,
		DecisionEveryMinutes: *decisionInt,
		DecisionLogSize:      *logSize,
		SnapshotPath:         *snapshot,
		Events:               session.Events,
		Metrics:              session.Metrics,
		Log:                  session.Log,
	})
	if err != nil {
		fatal(err)
	}

	// Bind synchronously so a bad address is a startup error, not a
	// silent goroutine death.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("caasper-serve: listening on %s\n", bound)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Graceful drain: stop accepting, let in-flight requests finish,
	// drain the ingest queues, checkpoint, flush telemetry.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("\ncaasper-serve: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			session.Log.Infof("shutdown: %v", err)
		}
		cancel()
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			srv.Close()
			fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caasper-serve:", err)
	os.Exit(1)
}
