package experiments

import (
	"fmt"
	"strings"
	"time"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/dbsim"
	"caasper/internal/recommend"
	"caasper/internal/workload"
)

// MotivationHorizontalResult quantifies the paper's §1/§3.1 motivating
// argument: horizontal scaling "is not well suited for stateful
// monolithic systems ... that have a fixed number of total instances
// (e.g., single writable primary)". A write-heavy workload that
// out-demands its per-pod CPU is run three ways:
//
//   - Fixed: the undersized deployment as-is;
//   - Horizontal: an HPA-style scaler adds read replicas (each paying a
//     size-of-data-copy seed) but can never give the primary more CPU;
//   - Vertical: CaaSPER resizes the pods.
type MotivationHorizontalResult struct {
	Fixed, Horizontal, Vertical *dbsim.LiveResult
	// HorizontalThroughputGain and VerticalThroughputGain are relative
	// to the fixed run.
	HorizontalThroughputGain float64
	VerticalThroughputGain   float64
	Report                   string
}

// MotivationHorizontal runs the §1/§3.1 contrast: 6 hours of TPC-C
// (92% writes) demanding ~5 cores against 2-core pods.
func MotivationHorizontal(seed uint64) (*MotivationHorizontalResult, error) {
	mix := workload.TPCCMix()
	sched, err := workload.ScheduleForCores("write-heavy", mix,
		workload.Constant(5), 6*time.Hour)
	if err != nil {
		return nil, err
	}
	_ = seed // the workload is deterministic; seed kept for signature symmetry

	const podCores = 2
	noRetry := func(o dbsim.HarnessOptions) dbsim.HarnessOptions {
		o.DB.Retry = false // drops make the throughput impact visible
		return o
	}

	fixedOpts := noRetry(dbsim.DatabaseAOptions(podCores, podCores))
	fixed, err := dbsim.RunLive(sched, baselines.NewControl(podCores), fixedOpts)
	if err != nil {
		return nil, fmt.Errorf("fixed: %w", err)
	}

	hOpts := dbsim.DefaultHorizontalOptions(podCores, 6)
	hOpts.Harness = noRetry(hOpts.Harness)
	// Give the horizontal path its best case: every read is offloaded
	// to the added replicas. The gain stays marginal anyway — TPC-C is
	// 92% writes, and writes can only run on the primary.
	hOpts.Harness.DB.SecondaryReadFraction = 1.0
	horizontal, err := dbsim.RunHorizontal(sched, hOpts)
	if err != nil {
		return nil, fmt.Errorf("horizontal: %w", err)
	}

	vCfg := core.DefaultConfig(8)
	vRec, err := recommend.NewCaaSPERReactive(vCfg, 40)
	if err != nil {
		return nil, err
	}
	vOpts := noRetry(dbsim.DatabaseAOptions(podCores, 8))
	vertical, err := dbsim.RunLive(sched, vRec, vOpts)
	if err != nil {
		return nil, fmt.Errorf("vertical: %w", err)
	}

	res := &MotivationHorizontalResult{Fixed: fixed, Horizontal: horizontal, Vertical: vertical}
	if fixed.DB.CompletedTxns > 0 {
		res.HorizontalThroughputGain = horizontal.DB.CompletedTxns / fixed.DB.CompletedTxns
		res.VerticalThroughputGain = vertical.DB.CompletedTxns / fixed.DB.CompletedTxns
	}

	tb := NewTable("Motivation (§1/§3.1) — horizontal vs vertical scaling for a write-heavy single-primary DB",
		"strategy", "completed txns", "thrpt vs fixed", "primary insufficient", "billed core-h")
	tb.AddRow("fixed (2-core pods)", fixed.DB.CompletedTxns, "1.00x",
		fixed.SumInsufficient, fixed.BilledCorePeriods)
	tb.AddRow("horizontal (HPA, +replicas)", horizontal.DB.CompletedTxns,
		ratio(res.HorizontalThroughputGain), horizontal.SumInsufficient, horizontal.BilledCorePeriods)
	tb.AddRow("vertical (caasper)", vertical.DB.CompletedTxns,
		ratio(res.VerticalThroughputGain), vertical.SumInsufficient, vertical.BilledCorePeriods)
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper: replicas \"cannot serve write-transaction load\" and need a size-of-data copy — only vertical scaling relieves the primary\n")
	res.Report = b.String()
	return res, nil
}
