package experiments

import (
	"strings"
	"testing"
)

func TestAblationInPlaceShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("live-loop ablation")
	}
	res, err := AblationInPlace(1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's footnote-10 claim: with in-place resizes, no failed
	// (interrupted) transactions and no failovers.
	if res.InPlace.DB.InterruptedTxns != 0 {
		t.Errorf("in-place interrupted = %v, want 0", res.InPlace.DB.InterruptedTxns)
	}
	if res.InPlace.Failovers != 0 {
		t.Errorf("in-place failovers = %d, want 0", res.InPlace.Failovers)
	}
	// Rolling updates do interrupt work.
	if res.Rolling.DB.InterruptedTxns <= 0 {
		t.Error("rolling updates should interrupt some transactions")
	}
	// In-place reacts immediately, so throttling (insufficient CPU)
	// should not exceed the rolling path's.
	if res.InPlace.SumInsufficient > res.Rolling.SumInsufficient+1e-9 {
		t.Errorf("in-place insufficient %v should be ≤ rolling %v",
			res.InPlace.SumInsufficient, res.Rolling.SumInsufficient)
	}
	if !strings.Contains(res.Report, "in-place") {
		t.Error("report missing")
	}
}

func TestAblationHorizonShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("horizon sweep")
	}
	res, err := AblationHorizon(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].HorizonMinutes != 0 {
		t.Error("first row should be pure reactive")
	}
	// The longest horizon should throttle no more than pure reactive
	// (scale-ahead is the whole point).
	last := res.Rows[len(res.Rows)-1]
	if last.SumInsufficient > res.Rows[0].SumInsufficient+1e-9 {
		t.Errorf("120m horizon insufficient %v > reactive %v",
			last.SumInsufficient, res.Rows[0].SumInsufficient)
	}
	if !strings.Contains(res.Report, "horizon") {
		t.Error("report missing")
	}
}

func TestAblationPrefilterShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("prefilter sweep")
	}
	res, err := AblationPrefilter(1)
	if err != nil {
		t.Fatal(err)
	}
	// Both configurations must complete; the prefiltered run should not
	// carry more slack than the unfiltered one (it discards the
	// outlier-inflated forecasts that cause over-provisioning).
	if res.With.SumSlack > res.Without.SumSlack*1.05 {
		t.Errorf("prefilter slack %v should not exceed unfiltered %v",
			res.With.SumSlack, res.Without.SumSlack)
	}
	if !strings.Contains(res.Report, "prefilter") {
		t.Error("report missing")
	}
}
