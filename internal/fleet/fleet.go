// Package fleet implements the sharded multi-tenant fleet controller: N
// independent tenants — each a stateful set, a recommender and a CPU
// demand trace — autoscaled concurrently against ONE shared Kubernetes
// cluster. It is the scale-out answer to the paper's closing observation
// that a CaaS platform runs CaaSPER "for all customer databases on the
// cluster", not one: per-tenant decision loops are embarrassingly
// parallel, but the cluster's capacity is not, so simultaneous scale-ups
// can oversubscribe a node. The controller therefore splits every tick in
// two:
//
//  1. a parallel observe/decide phase fanned out over the tenant shards
//     through internal/parallel (index-addressed slots, no shared writes),
//     where each tenant scrapes its usage sample, feeds its recommender
//     and files a resize proposal; and
//  2. a sequential enact/arbitrate phase where scale-downs release
//     capacity first and the capacity arbiter grants scale-ups in
//     throttling-severity order (most-throttled first, tenant index as
//     the deterministic tie-break), deferring any tenant whose grant
//     would not fit the free capacity of its pods' nodes under the
//     current scheduling pressure.
//
// Because phase 1 writes only tenant-local state and phase 2 runs in a
// fixed order, results — and the "fleet.*" event stream — are
// byte-identical at every worker count, the same determinism contract the
// simulator's RunMatrix established. Fault injection composes: each
// tenant owns an injector (draws are pod-keyed, so streams are
// tenant-specific and order-independent), and a fleet-level injector
// drives cluster-wide scheduling pressure from the sequential loop.
package fleet

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"caasper/internal/billing"
	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/hooks"
	"caasper/internal/k8s"
	"caasper/internal/obs"
	"caasper/internal/parallel"
	"caasper/internal/recommend"
	"caasper/internal/trace"
)

// TenantSpec describes one tenant of the fleet: its workload, its policy
// and its stateful-set shape.
type TenantSpec struct {
	// Name identifies the tenant and prefixes its pod names; it must be
	// unique within the fleet.
	Name string
	// Trace is the tenant's per-minute CPU demand series.
	Trace *trace.Trace
	// NewRecommender builds the tenant's fresh policy instance. A factory
	// rather than an instance because recommenders are stateful and the
	// fleet runs tenants concurrently.
	NewRecommender func() (recommend.Recommender, error)
	// InitialCores is the starting whole-core limit per pod.
	//
	// Deprecated: set Resources.Initial.CPUCores. A non-zero value here
	// wins, so seed callers behave identically.
	InitialCores int
	// MinCores / MaxCores are the tenant's safety clamps.
	//
	// Deprecated: set Resources.Min/Max.CPUCores. Non-zero values here
	// win, so seed callers behave identically.
	MinCores, MaxCores int
	// Replicas is the stateful-set size (default 1).
	Replicas int
	// MemGiBPerPod sizes pod memory (scheduling only; not billed).
	// Ignored when Resources manages RAM — the RAM allocation then
	// sizes the pods.
	MemGiBPerPod float64

	// Resources is the canonical resource-vector spelling of the
	// tenant's bounds. Managing any non-CPU dimension (a non-zero
	// Max.RAMGB, Max.DiskGB or Max.Replicas) upgrades the tenant from
	// the CPU-only decision loop to the multi-resource loop: RAM scales
	// by the dual-threshold MemoryPolicy, disk grows off its high-water
	// mark, and — for Stateless tenants — replicas overflow horizontally
	// once the vertical CPU ceiling pins. CPU-only tenants (zero value
	// here) run the exact pre-vector code paths.
	Resources core.ResourceRange
	// RAMTrace is the per-minute per-pod RAM demand series in GB; nil
	// derives one deterministically from Trace (workload.DeriveRAM).
	RAMTrace *trace.Trace
	// DiskTrace is the per-minute per-pod disk usage series in GB; nil
	// derives one deterministically from Trace (workload.DeriveDisk).
	DiskTrace *trace.Trace
	// Stateless marks the tenant safe for horizontal overflow: only
	// stateless tiers may trade a replica for a resize (stateful sets
	// pay the size-of-data seeding cost the paper warns about).
	Stateless bool
	// SeedMinutes delays a new replica's first served minute (default 0
	// for stateless tiers — no data to copy).
	SeedMinutes int
	// Mem tunes the RAM policy (zero value: defaults).
	Mem recommend.MemoryPolicy
	// Disk tunes the disk policy (zero value: defaults).
	Disk recommend.DiskPolicy
}

// Range resolves the tenant's effective resource bounds: the deprecated
// scalar CPU fields overlay the vector (non-zero wins), mirroring the
// RunHooks merge precedent.
func (s TenantSpec) Range() core.ResourceRange {
	return s.Resources.MergeCPU(s.InitialCores, s.MinCores, s.MaxCores)
}

// Options configures a fleet run. The telemetry/fault knobs come from the
// embedded hooks.RunHooks, the same canonical spelling SimOptions and
// LiveOptions share.
type Options struct {
	hooks.RunHooks
	// Cluster hosts every tenant's pods; nil defaults to the paper's
	// large cluster (6 × 16 CPU / 56 GiB).
	Cluster *k8s.Cluster
	// Minutes bounds the run; 0 replays until the shortest trace ends.
	Minutes int
	// DecisionEveryMinutes is the per-tenant decision cadence (default 10).
	DecisionEveryMinutes int
	// WarmupMinutes delays each tenant's first decision (default:
	// DecisionEveryMinutes), letting window-based recommenders accumulate
	// signal.
	WarmupMinutes int
	// Workers bounds the parallel observe/decide fan-out; below 1 selects
	// runtime.GOMAXPROCS(0). Results are byte-identical at every value.
	Workers int
	// BillingPeriod is the pay-as-you-go metering period (default 1h).
	BillingPeriod time.Duration
	// PricePerCorePeriod is the unit price (default 1: report ratios).
	PricePerCorePeriod float64
	// RAMPricePerGBPeriod / DiskPricePerGBPeriod price the non-CPU
	// dimensions for multi-resource tenants (defaults: billing
	// DefaultRates, 0.25 and 0.02). CPU-only tenants never meter them.
	RAMPricePerGBPeriod, DiskPricePerGBPeriod float64
	// Engine selects the tick engine: EngineStepped (the default, also
	// selected by "") or EngineEvents. Both produce byte-identical results
	// and event streams; see the engine constants for when each wins.
	Engine string
	// Sharding controls the event engine's shard-parallel mode:
	// ShardingAuto (the default, also selected by "") partitions the
	// fleet into node-disjoint shard groups and runs them concurrently;
	// ShardingOff forces the single-shard reference loop. Results and
	// event streams are byte-identical either way — the knob exists for
	// A/B verification and debugging, not correctness. Ignored by the
	// stepped engine.
	Sharding string
}

// Engine names accepted by Options.Engine.
const (
	// EngineStepped advances every tenant minute by minute in
	// decision-cadence segments — the reference engine: simple, O(minutes ×
	// tenants), and the behavioural yardstick the event engine is tested
	// against.
	EngineStepped = "stepped"
	// EngineEvents is the discrete-event engine: a virtual clock plus a
	// binary-heap wake queue where tenants only run at decision ticks and
	// sleep through provably-steady spans, with observation windows,
	// accounting and billing advanced analytically across constant-demand
	// trace runs. Results and event streams are byte-identical to
	// EngineStepped; wall-clock cost scales with trace inflections and
	// decisions instead of simulated minutes, which is what makes
	// 100k-tenant months tractable.
	EngineEvents = "events"
)

// Sharding modes accepted by Options.Sharding.
const (
	// ShardingAuto (the default) lets the event engine split the fleet
	// at its real contention boundary: arbitration only couples tenants
	// whose pods share a cluster node, so the tenant graph's
	// node-connected components run as independent shards, each with its
	// own wake heap, virtual clock and fault-draw stream, fanned out on
	// internal/parallel. A fleet whose tenants all contend on one node
	// collapses to a single shard — exactly the ShardingOff loop.
	ShardingAuto = "auto"
	// ShardingOff forces the single-shard event loop (one global wake
	// heap, sequential ticks) — the reference the sharded mode is tested
	// byte-identical against.
	ShardingOff = "off"
)

// DefaultOptions returns the fleet defaults: 10-minute decisions, hourly
// billing, unit price, shortest-trace horizon.
func DefaultOptions() Options {
	return Options{
		DecisionEveryMinutes: 10,
		BillingPeriod:        time.Hour,
		PricePerCorePeriod:   1,
	}
}

// Validate checks option invariants. Failures wrap errs.ErrInvalidConfig.
func (o Options) Validate() error {
	if o.DecisionEveryMinutes < 1 {
		return fmt.Errorf("fleet: DecisionEveryMinutes must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	if o.Minutes < 0 {
		return fmt.Errorf("fleet: Minutes must be ≥ 0: %w", errs.ErrInvalidConfig)
	}
	if o.BillingPeriod < 0 {
		return fmt.Errorf("fleet: BillingPeriod must be ≥ 0: %w", errs.ErrInvalidConfig)
	}
	switch o.Engine {
	case "", EngineStepped, EngineEvents:
	default:
		return fmt.Errorf("fleet: unknown engine %q: %w", o.Engine, errs.ErrInvalidConfig)
	}
	switch o.Sharding {
	case "", ShardingAuto, ShardingOff:
	default:
		return fmt.Errorf("fleet: unknown sharding mode %q (auto or off): %w", o.Sharding, errs.ErrInvalidConfig)
	}
	return nil
}

// TenantResult aggregates one tenant's run.
type TenantResult struct {
	// Name and Recommender identify the tenant.
	Name        string
	Recommender string
	// InitialCores / FinalCores bracket the allocation trajectory.
	InitialCores, FinalCores int
	// SumSlack is K(·): Σ max(0, limit − usage) in core-minutes.
	SumSlack float64
	// SumInsufficient is C(·): Σ max(0, demand − limit) in core-minutes.
	SumInsufficient float64
	// NumScalings is N(·): the number of enacted resizes.
	NumScalings int
	// ThrottledMinutes counts minutes with any insufficient CPU.
	ThrottledMinutes int
	// Deferrals counts scale-up proposals the capacity arbiter rejected
	// (the tenant's arbitration losses).
	Deferrals int
	// ResizesAborted counts enactments lost to injected restart failures.
	ResizesAborted int
	// BilledCorePeriods is the pay-as-you-go cost at unit price.
	BilledCorePeriods float64
	// FaultCounts tallies this tenant's injected faults.
	FaultCounts faults.Counts

	// Multi-resource extensions — zero for CPU-only tenants.

	// FinalRAMGB / FinalDiskGB / FinalReplicas close the vector
	// trajectory (0 when the dimension is unmanaged).
	FinalRAMGB, FinalDiskGB, FinalReplicas int
	// RAMShortGBMin is Σ max(0, ram demand − grant) in GB-minutes.
	RAMShortGBMin float64
	// OOMMinutes counts minutes with any RAM shortfall.
	OOMMinutes int
	// DiskFullMinutes counts minutes the disk trace exceeded the volume.
	DiskFullMinutes int
	// BilledRAMGBPeriods / BilledDiskGBPeriods are the non-CPU costs in
	// native units (GB-periods).
	BilledRAMGBPeriods, BilledDiskGBPeriods float64
}

// Result aggregates a fleet run: per-tenant outcomes plus the
// fleet-level aggregates and arbitration statistics.
type Result struct {
	// Minutes is the simulated horizon.
	Minutes int
	// Tenants holds one result per tenant, in input order.
	Tenants []TenantResult
	// TotalSlack / TotalInsufficient / TotalCost aggregate K, C and cost
	// across tenants.
	TotalSlack, TotalInsufficient, TotalCost float64
	// TotalScalings / TotalDeferrals / TotalAborted aggregate N, the
	// arbitration losses and the fault-aborted enactments.
	TotalScalings, TotalDeferrals, TotalAborted int
	// ArbitrationTicks counts ticks on which the arbiter had to defer at
	// least one tenant (capacity contention actually bit).
	ArbitrationTicks int
	// PressureWindows counts fleet-level scheduling-pressure windows.
	PressureWindows int64
	// TotalOOMMinutes / TotalRAMShortGBMin / TotalRAMCost / TotalDiskCost
	// aggregate the multi-resource tenants (zero for CPU-only fleets).
	TotalOOMMinutes  int
	TotalRAMShortGBMin float64
	TotalRAMCost, TotalDiskCost float64
}

// Summary renders the per-tenant comparison table plus the fleet
// aggregate row.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-20s %10s %10s %5s %6s %6s %8s\n",
		"tenant", "recommender", "K", "C", "N", "defer", "abort", "cost")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-10s %-20s %10.0f %10.1f %5d %6d %6d %8.0f\n",
			t.Name, t.Recommender, t.SumSlack, t.SumInsufficient,
			t.NumScalings, t.Deferrals, t.ResizesAborted, t.BilledCorePeriods)
	}
	fmt.Fprintf(&b, "%-10s %-20s %10.0f %10.1f %5d %6d %6d %8.0f\n",
		"TOTAL", fmt.Sprintf("(%d tenants)", len(r.Tenants)), r.TotalSlack,
		r.TotalInsufficient, r.TotalScalings, r.TotalDeferrals,
		r.TotalAborted, r.TotalCost)
	fmt.Fprintf(&b, "arbitration: %d contended ticks, %d deferrals, %d pressure windows over %d minutes\n",
		r.ArbitrationTicks, r.TotalDeferrals, r.PressureWindows, r.Minutes)
	// The multi-resource block renders only when a tenant managed a
	// non-CPU dimension, keeping CPU-only summaries byte-identical.
	multi := false
	for _, t := range r.Tenants {
		if t.FinalRAMGB > 0 || t.FinalDiskGB > 0 || t.FinalReplicas > 0 {
			multi = true
			break
		}
	}
	if multi {
		fmt.Fprintf(&b, "\n%-10s %8s %8s %5s %6s %10s %8s %8s\n",
			"tenant", "ram", "disk", "reps", "oom", "ram-short", "ram$", "disk$")
		for _, t := range r.Tenants {
			if t.FinalRAMGB == 0 && t.FinalDiskGB == 0 && t.FinalReplicas == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-10s %8d %8d %5d %6d %10.1f %8.1f %8.1f\n",
				t.Name, t.FinalRAMGB, t.FinalDiskGB, t.FinalReplicas,
				t.OOMMinutes, t.RAMShortGBMin, t.BilledRAMGBPeriods, t.BilledDiskGBPeriods)
		}
		fmt.Fprintf(&b, "multi-resource: %d OOM minutes, %.1f GB-min RAM short, ram cost %.1f, disk cost %.1f\n",
			r.TotalOOMMinutes, r.TotalRAMShortGBMin, r.TotalRAMCost, r.TotalDiskCost)
	}
	return b.String()
}

// sinkPool recycles the per-tenant fault-event buffers across fleet runs:
// a chaos run over a large fleet otherwise allocates one sink — plus its
// grown event slice — per tenant per run.
var sinkPool = sync.Pool{New: func() any { return obs.NewMemorySink() }}

// proposal is one tenant's pending resize request for the current tick.
// CPU-only tenants fill only target/severity; multi-resource tenants set
// multi and carry explicit targets for every managed dimension.
type proposal struct {
	target   int
	severity float64 // accumulated insufficient core-minutes since the last decision
	multi    bool
	ram      int // RAM GB target (multi only)
	disk     int // disk GB target (multi only)
	reps     int // replica target (multi only)
}

// grows reports whether any dimension of the proposal asks for more
// capacity — such proposals go through the arbiter; pure releases enact
// first. For CPU-only proposals this is exactly the pre-vector
// target-vs-limit comparison.
func (p proposal) grows(t *tenant) bool {
	if !p.multi {
		return p.target >= t.set.CPULimit()
	}
	return p.target > t.set.CPULimit() || p.ram > t.mr.ramAlloc || p.reps > t.mr.replicas
}

// tenant is the per-tenant runtime state. Phase 1 touches exactly one
// tenant per goroutine; phase 2 walks them sequentially.
type tenant struct {
	spec TenantSpec
	rec  recommend.Recommender
	set  *k8s.StatefulSet
	// meter is held by value: fleets allocate tenants in one block and the
	// meter has no identity beyond its tenant.
	meter billing.Meter
	inj   *faults.Injector
	sink  *obs.MemorySink
	res   TenantResult
	// pod caches the ordinal-0 pod name, the tenant's fault-draw key.
	pod string

	prevUsage float64 // last minute's usage, replayed on a metrics-gap fault
	severity  float64 // insufficiency accumulated since the last decision
	prop      proposal
	hasProp   bool

	// mr is the multi-resource state; nil keeps the tenant on the exact
	// CPU-only code paths (see multi.go).
	mr *multiState

	// Event-engine state (see events.go; untouched by the stepped engine).
	done   int                      // minutes [0, done) are fully accounted
	wakeAt int                      // next wake minute computed at the last decision (−1: none)
	lim    int                      // cached CPU limit: only phase 2 resizes, and only proposers
	runs   []int32                  // the trace's constant-run starts, shared across tenants
	runCur int                      // index into runs of the run containing done
	gap    bool                     // spec includes metrics-gap: samples need per-minute draws
	bulk   recommend.RunObserver    // non-nil: bulk window advance allowed
	steady recommend.SteadyObserver // non-nil: steady-state sleep allowed
}

// decide evaluates the recommender at a decision tick: the clamped target
// becomes a phase-2 proposal when it differs from the current limit, and
// the severity accumulator (the arbiter's priority signal) is snapshotted
// into the proposal and reset either way.
func (t *tenant) decide(limit int) {
	target := t.rec.Recommend(limit)
	if target < t.spec.MinCores {
		target = t.spec.MinCores
	}
	if target > t.spec.MaxCores {
		target = t.spec.MaxCores
	}
	if target != limit {
		t.prop = proposal{target: target, severity: t.severity}
		t.hasProp = true
	}
	t.severity = 0
}

// runState is the assembled per-run machinery shared by both engines: the
// tenants, the cluster, the fleet-level injector and the phase-2 scratch.
// Run builds it, dispatches to runStepped or runEvents, then reads the
// results back out in the common epilogue.
type runState struct {
	ts      []*tenant
	cluster *k8s.Cluster
	finj    *faults.Injector
	h       hooks.RunHooks
	events  bool
	minutes int
	warmup  int
	d       int // decision cadence in minutes
	workers int
	shard   string // Options.Sharding ("", auto or off)
	res     *Result

	// Phase-2 working storage reused across ticks.
	ups []int
	arb *arbScratch

	// ssink, when non-nil, marks this runState as one shard of a
	// shard-parallel run (see shard.go): h.Events points at the same
	// buffer, and enactPhase tags each buffered event with its merge key
	// so the post-run merge can reproduce the single-shard byte order.
	ssink *shardSink
}

// Run executes the fleet loop over the shared cluster and returns the
// per-tenant and aggregate results. See the package comment for the
// two-phase tick structure and the determinism argument.
func Run(tenants []TenantSpec, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("fleet: no tenants: %w", errs.ErrInvalidConfig)
	}
	h := opts.RunHooks
	events := obs.Enabled(h.Events)

	cluster := opts.Cluster
	if cluster == nil {
		cluster = k8s.LargeCluster()
	}
	period := opts.BillingPeriod
	if period == 0 {
		period = time.Hour
	}
	price := opts.PricePerCorePeriod
	if price == 0 {
		price = 1
	}
	warmup := opts.WarmupMinutes
	if warmup == 0 {
		warmup = opts.DecisionEveryMinutes
	}

	// Resolve the horizon: the shortest trace bounds the replay.
	minutes := opts.Minutes
	seen := make(map[string]bool, len(tenants))
	for i, spec := range tenants {
		if spec.Name == "" {
			return nil, fmt.Errorf("fleet: tenant %d has no name: %w", i, errs.ErrInvalidConfig)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("fleet: duplicate tenant %q: %w", spec.Name, errs.ErrInvalidConfig)
		}
		seen[spec.Name] = true
		if spec.Trace == nil || len(spec.Trace.Values) == 0 {
			return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, errs.ErrEmptyTrace)
		}
		if spec.Trace.Interval != time.Minute {
			// A mis-configured interval is a config error, not a missing
			// trace: callers matching ErrEmptyTrace to skip absent tenants
			// must not silently swallow a resample mistake.
			return nil, fmt.Errorf("fleet: tenant %q: trace interval %s is not 1m (resample first): %w",
				spec.Name, spec.Trace.Interval, errs.ErrInvalidConfig)
		}
		if spec.NewRecommender == nil {
			return nil, fmt.Errorf("fleet: tenant %q has no recommender factory: %w", spec.Name, errs.ErrInvalidConfig)
		}
		rr := spec.Range()
		if rr.Initial.CPUCores < 1 || rr.Min.CPUCores < 1 || rr.Max.CPUCores < rr.Min.CPUCores {
			return nil, fmt.Errorf("fleet: tenant %q: bad core bounds: %w", spec.Name, errs.ErrInvalidConfig)
		}
		if rr.Multi() {
			if err := rr.Validate(); err != nil {
				return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, err)
			}
			if opts.Engine == EngineEvents {
				// The event engine's analytic catch-up covers only the
				// CPU dimension today; refuse rather than silently
				// dropping RAM/disk accounting.
				return nil, fmt.Errorf(`fleet: tenant %q manages RAM/disk/replicas, which the "events" engine cannot replay (its analytic catch-up is CPU-only); rerun with Engine %q (-engine stepped): %w`,
					spec.Name, EngineStepped, errs.ErrInvalidConfig)
			}
		}
		if minutes == 0 || len(spec.Trace.Values) < minutes {
			minutes = len(spec.Trace.Values)
		}
	}

	// Build the tenants: stateful sets scheduled onto the shared cluster
	// in input order (first-come placement, like a real fleet onboarding
	// sequence), per-tenant injectors (pod-keyed draws make each stream
	// tenant-specific regardless of query order) and per-tenant event
	// buffers replayed sequentially after the loop. All tenant records
	// live in one backing block, and every meter is a value copy of one
	// validated prototype — construction garbage used to dominate
	// short-horizon fleet benchmarks.
	meterProto, err := billing.NewMeter(price, period, time.Minute)
	if err != nil {
		return nil, err
	}
	tstore := make([]tenant, len(tenants))
	ts := make([]*tenant, len(tenants))
	for i, spec := range tenants {
		rr := spec.Range()
		replicas := spec.Replicas
		if rr.Multi() && rr.Initial.Replicas > 0 {
			replicas = rr.Initial.Replicas
		}
		if replicas < 1 {
			replicas = 1
		}
		memGiB := spec.MemGiBPerPod
		if rr.Max.RAMGB > 0 {
			memGiB = float64(rr.Initial.RAMGB) // RAM-managed pods size to the grant
		}
		rec, err := spec.NewRecommender()
		if err != nil {
			return nil, fmt.Errorf("fleet: building recommender for %q: %w", spec.Name, err)
		}
		set, err := k8s.NewStatefulSet(spec.Name, replicas, rr.Initial.CPUCores, memGiB, cluster)
		if err != nil {
			return nil, fmt.Errorf("fleet: onboarding %q: %w", spec.Name, err)
		}
		t := &tstore[i]
		t.spec, t.rec, t.set, t.meter, t.pod = spec, rec, set, *meterProto, set.Pods[0].Name
		// Normalize the deprecated scalar CPU fields on the tenant's copy
		// so the decide clamp reads one resolved set of bounds.
		t.spec.InitialCores, t.spec.MinCores, t.spec.MaxCores = rr.Initial.CPUCores, rr.Min.CPUCores, rr.Max.CPUCores
		if rr.Multi() {
			if err := t.initMulti(rr, replicas, minutes, opts); err != nil {
				return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, err)
			}
		}
		t.inj = faults.New(h.FaultSpec, h.FaultSeed)
		if t.inj != nil {
			t.inj.Stats = h.Metrics
			if events {
				t.sink = sinkPool.Get().(*obs.MemorySink)
				t.sink.Reset()
				t.inj.Events = t.sink
			}
		}
		t.res = TenantResult{
			Name:         spec.Name,
			Recommender:  rec.Name(),
			InitialCores: rr.Initial.CPUCores,
		}
		ts[i] = t
	}

	// The fleet-level injector drives cluster-wide scheduling pressure
	// from the sequential loop; its events go straight to the shared sink.
	finj := faults.New(h.FaultSpec, h.FaultSeed)
	if finj != nil {
		finj.Events, finj.Stats = h.Events, h.Metrics
	}

	if events {
		h.Events.Emit(obs.Event{T: 0, Type: "fleet.run", Fields: []obs.Field{
			obs.I("tenants", int64(len(ts))),
			obs.I("minutes", int64(minutes)),
			obs.I("nodes", int64(len(cluster.Nodes()))),
			obs.I("decision_every", int64(opts.DecisionEveryMinutes)),
		}})
	}

	res := &Result{Minutes: minutes, Tenants: make([]TenantResult, len(ts))}

	s := &runState{
		ts:      ts,
		cluster: cluster,
		finj:    finj,
		h:       h,
		events:  events,
		minutes: minutes,
		warmup:  warmup,
		d:       opts.DecisionEveryMinutes,
		workers: opts.Workers,
		shard:   opts.Sharding,
		res:     res,
		arb:     &arbScratch{},
	}
	if opts.Engine == EngineEvents {
		err = s.runEvents()
	} else {
		err = s.runStepped()
	}
	if err != nil {
		return nil, err
	}

	// Epilogue: close the books, emit the per-tenant summaries and replay
	// each tenant's buffered fault stream, all in tenant order.
	for i, t := range ts {
		t.meter.Flush()
		t.res.FinalCores = t.set.CPULimit()
		t.res.BilledCorePeriods = t.meter.BilledCorePeriods()
		t.res.FaultCounts = t.inj.Counts()
		if t.mr != nil {
			t.finishMulti()
		}
		res.Tenants[i] = t.res

		res.TotalSlack += t.res.SumSlack
		res.TotalInsufficient += t.res.SumInsufficient
		res.TotalCost += t.res.BilledCorePeriods
		res.TotalScalings += t.res.NumScalings
		res.TotalDeferrals += t.res.Deferrals
		res.TotalAborted += t.res.ResizesAborted
		res.TotalOOMMinutes += t.res.OOMMinutes
		res.TotalRAMShortGBMin += t.res.RAMShortGBMin
		res.TotalRAMCost += t.res.BilledRAMGBPeriods
		res.TotalDiskCost += t.res.BilledDiskGBPeriods

		if events {
			fields := []obs.Field{
				obs.S("tenant", t.spec.Name),
				obs.S("recommender", t.res.Recommender),
				obs.F("slack", t.res.SumSlack),
				obs.F("insufficient", t.res.SumInsufficient),
				obs.I("scalings", int64(t.res.NumScalings)),
				obs.I("deferrals", int64(t.res.Deferrals)),
				obs.I("aborted", int64(t.res.ResizesAborted)),
				obs.I("throttled_minutes", int64(t.res.ThrottledMinutes)),
				obs.F("cost", t.res.BilledCorePeriods),
			}
			if t.mr != nil {
				// Appended, never reordered: CPU-only tenant events stay
				// byte-identical to the pre-vector stream.
				fields = append(fields,
					obs.I("ram_gb", int64(t.res.FinalRAMGB)),
					obs.I("disk_gb", int64(t.res.FinalDiskGB)),
					obs.I("replicas", int64(t.res.FinalReplicas)),
					obs.I("oom_minutes", int64(t.res.OOMMinutes)),
					obs.F("ram_short", t.res.RAMShortGBMin),
				)
			}
			h.Events.Emit(obs.Event{T: int64(minutes), Type: "fleet.tenant", Fields: fields})
			if t.sink != nil {
				t.sink.ReplayTo(h.Events)
				sinkPool.Put(t.sink)
				t.sink = nil
			}
		}
	}
	res.PressureWindows = finj.Counts().PressureWindows

	if m := h.Metrics; m != nil {
		m.Counter("fleet.tenants").Add(int64(len(ts)))
		m.Counter("fleet.minutes").Add(int64(minutes))
		m.Counter("fleet.resizes").Add(int64(res.TotalScalings))
		m.Counter("fleet.deferrals").Add(int64(res.TotalDeferrals))
		m.Counter("fleet.resizes_aborted").Add(int64(res.TotalAborted))
		m.Gauge("fleet.total_cost").Set(res.TotalCost)
	}
	return res, nil
}

// runStepped is the reference engine. The replay advances in
// decision-cadence segments rather than single minutes: limits only change
// in phase 2, which only runs at decision ticks, so every minute in
// between is pure tenant-local observation. Batching the segment into ONE
// parallel fan-out per decision tick (instead of one per minute) removes
// ~DecisionEveryMinutes× scheduling round-trips per tick while preserving
// the exact per-minute observe/account/meter sequence each tenant executes
// — results and event streams stay byte-identical at every worker count.
func (s *runState) runStepped() error {
	ts, minutes, warmup := s.ts, s.minutes, s.warmup
	ctx := context.Background()

	// The sequential phase walks every tenant index each tick.
	all := make([]int, len(ts))
	for i := range all {
		all[i] = i
	}

	for segStart := 0; segStart < minutes; {
		// The segment ends just after the next decision minute (the first
		// now ≥ segStart with now ≥ warmup and (now−warmup)%D == 0), or at
		// the horizon when no further decision happens.
		segEnd := minutes // exclusive
		decision := -1    // the decision minute, -1 when the replay ends first
		nd := warmup
		if segStart > warmup {
			nd = warmup + (segStart-warmup+s.d-1)/s.d*s.d
		}
		if nd < minutes {
			segEnd = nd + 1
			decision = nd
		}

		// Sequential segment prologue: poll the fleet-level scheduling
		// pressure for every minute in order — the same draw and event
		// sequence the per-minute loop produced — keeping the decision
		// minute's value for this tick's arbitration.
		pressure := 0.0
		if s.finj != nil {
			for now := segStart; now < segEnd; now++ {
				pressure = s.finj.PressureCores(int64(now))
			}
			s.cluster.SetPressure(pressure)
		}

		// Phase 1 — parallel observe/decide over the whole segment. Each
		// task touches only its tenant's state and reads nothing phase 2
		// mutates, so any worker count produces identical proposals.
		err := parallel.ForEach(ctx, len(ts), s.workers, func(i int) error {
			t := ts[i]
			if t.mr != nil {
				// Multi-resource tenants observe every dimension; the
				// CPU-only loop below stays byte-for-byte untouched.
				t.observeMultiSegment(segStart, segEnd, decision)
				return nil
			}
			limit := t.set.CPULimit() // constant within the segment
			limf := float64(limit)
			t.hasProp = false
			for now := segStart; now < segEnd; now++ {
				demand := t.spec.Trace.Values[now]
				usage := demand
				if usage > limf {
					usage = limf
				}

				// Scrape: a metrics-gap fault loses this minute's sample,
				// so the recommender observes the previous one —
				// ground-truth accounting below is unaffected.
				observed := usage
				if t.inj.DropSample(t.pod, int64(now)) {
					observed = t.prevUsage
				}
				t.prevUsage = usage
				t.rec.Observe(now, observed)

				// Ground-truth accounting in core-minutes.
				if slack := limf - usage; slack > 0 {
					t.res.SumSlack += slack
				}
				if short := demand - limf; short > 0 {
					t.res.SumInsufficient += short
					t.severity += short
					t.res.ThrottledMinutes++
				}
				t.meter.Record(limf)
			}

			// Decide: file a proposal for phase 2. The severity snapshot
			// is the insufficiency accumulated since the last decision —
			// the arbiter's priority signal.
			if decision >= 0 {
				t.decide(limit)
			}
			return nil
		})
		if err != nil {
			return err
		}
		segStart = segEnd
		if decision >= 0 {
			s.enactTick(all, pressure, decision)
		}
	}
	return nil
}

// enactTick runs phase 2 at one decision tick and closes its books: the
// arbitration-tick counter and the per-tick "fleet.arbitration" summary
// event, emitted when at least one tenant was deferred. Both engines'
// non-sharded loops call this; the shard loops call enactPhase directly
// and re-derive the tick bookkeeping in the merge (shard.go), where the
// global contender/grant/deferral totals are known.
func (s *runState) enactTick(cands []int, pressure float64, now int) {
	contenders, granted, deferred := s.enactPhase(cands, pressure, now)
	if deferred > 0 {
		s.res.ArbitrationTicks++
		if s.events {
			s.h.Events.Emit(obs.Event{T: int64(now), Type: "fleet.arbitration", Fields: []obs.Field{
				obs.I("contenders", int64(contenders)),
				obs.I("granted", int64(granted)),
				obs.I("deferred", int64(deferred)),
				obs.F("pressure", pressure),
			}})
		}
	}
}

// enactPhase is phase 2 — the sequential enact/arbitrate pass at one
// decision tick, shared by both engines. cands lists the tenant indices
// that may hold proposals, in ascending order: the stepped engine passes
// every index, the event engine just the tenants awake at this tick
// (sleeping tenants provably file nothing, so the walk is equivalent).
// It returns the tick's arbitration tallies — the scale-up contender
// count and how many were granted vs deferred — for enactTick or the
// shard merge to summarize.
//
// Scale-downs go first: they only release capacity, so they are always
// granted and make room for this tick's scale-ups (the arbiter sees the
// freed cores).
func (s *runState) enactPhase(cands []int, pressure float64, now int) (contenders, granted, deferred int) {
	ts := s.ts
	ups := s.ups[:0]
	for _, i := range cands {
		t := ts[i]
		if !t.hasProp {
			continue
		}
		if !t.prop.grows(t) {
			if s.ssink != nil {
				s.ssink.key = evKey{stage: 0, idx: int32(i)}
			}
			s.enactProposal(t, now)
		} else {
			ups = append(ups, i)
		}
	}

	// Arbitration: grant scale-ups most-throttled-first; tenant index
	// breaks ties deterministically. The order is total (indices are
	// unique), so this closure-free insertion sort reproduces exactly
	// the permutation sort.SliceStable used to produce. Each grant
	// applies its in-place resizes immediately, so later feasibility
	// checks see the already-reserved capacity.
	if len(ups) > 0 {
		for a := 1; a < len(ups); a++ {
			v := ups[a]
			sv := ts[v].prop.severity
			b := a - 1
			for b >= 0 {
				sb := ts[ups[b]].prop.severity
				if sv > sb || (sv == sb && v < ups[b]) {
					ups[b+1] = ups[b]
					b--
				} else {
					break
				}
			}
			ups[b+1] = v
		}
		for _, i := range ups {
			t := ts[i]
			if s.ssink != nil {
				s.ssink.key = evKey{stage: 1, idx: int32(i), sev: t.prop.severity}
			}
			if node, short := s.checkFeasible(t, pressure); node != "" {
				t.res.Deferrals++
				deferred++
				if s.events {
					s.h.Events.Emit(obs.Event{T: int64(now), Type: "fleet.deferred", Fields: []obs.Field{
						obs.S("tenant", t.spec.Name),
						obs.I("from", int64(t.set.CPULimit())),
						obs.I("want", int64(t.prop.target)),
						obs.F("severity", t.prop.severity),
						obs.S("node", node),
						obs.F("short_cores", short),
					}})
				}
				continue
			}
			s.enactProposal(t, now)
			granted++
		}
	}
	s.ups = ups
	return len(ups), granted, deferred
}

// enactProposal routes a granted proposal to the matching enactor.
func (s *runState) enactProposal(t *tenant, now int) {
	if t.prop.multi {
		s.enactMulti(t, now)
		return
	}
	enact(t, t.prop, s.cluster, s.arb, s.h.Events, s.events, now)
}

// checkFeasible routes the arbiter's capacity check: CPU-only proposals
// keep the single-dimension node scan; multi proposals bin-pack CPU and
// RAM deltas together.
func (s *runState) checkFeasible(t *tenant, pressure float64) (string, float64) {
	if t.prop.multi {
		return infeasibleMulti(t, s.cluster, pressure, s.arb)
	}
	return infeasible(t, t.prop.target, s.cluster, pressure, s.arb)
}

// arbScratch holds the phase-2 working storage reused across ticks: the
// per-node resize tally of infeasible (a pair of parallel slices — sets
// span a handful of nodes, so linear probing beats a map rebuilt per
// check) and enact's rollback list.
type arbScratch struct {
	nodes   []string
	need    []float64
	needMem []float64 // RAM deltas per node (multi-resource proposals)
	done    []*k8s.Pod
}

// infeasible checks whether granting the tenant's scale-up would
// oversubscribe any node hosting its pods: per node, the summed resize
// deltas must fit the node's free capacity minus the transient scheduling
// pressure (which the raw in-place resize path does not see — the arbiter
// is the pressure-aware layer). It returns the first violating node's
// name and the shortfall in cores, or "" when the grant fits.
func infeasible(t *tenant, target int, cluster *k8s.Cluster, pressure float64, arb *arbScratch) (string, float64) {
	arb.nodes = arb.nodes[:0]
	arb.need = arb.need[:0]
	for _, p := range t.set.Pods {
		delta := float64(target) - p.CPULimit()
		if delta <= 0 || p.NodeName == "" {
			continue
		}
		found := false
		for j, name := range arb.nodes {
			if name == p.NodeName {
				arb.need[j] += delta
				found = true
				break
			}
		}
		if !found {
			arb.nodes = append(arb.nodes, p.NodeName)
			arb.need = append(arb.need, delta)
		}
	}
	for j, name := range arb.nodes {
		n := cluster.NodeByName(name)
		if n == nil {
			return name, arb.need[j]
		}
		free := n.Free().CPUCores - pressure
		if arb.need[j] > free {
			return name, arb.need[j] - free
		}
	}
	return "", 0
}

// enact applies one granted proposal: every pod of the set is resized in
// place to the target (all-or-nothing — an unexpected mid-apply rejection
// rolls the already-resized pods back). An injected restart failure
// aborts the enactment before any pod changes, modelling a failed apply.
func enact(t *tenant, prop proposal, cluster *k8s.Cluster, arb *arbScratch, sink obs.Sink, events bool, now int) {
	from := t.set.CPULimit()
	if t.inj.RestartFails(t.pod, int64(now)) {
		t.res.ResizesAborted++
		if events {
			sink.Emit(obs.Event{T: int64(now), Type: "fleet.resize-aborted", Fields: []obs.Field{
				obs.S("tenant", t.spec.Name),
				obs.I("from", int64(from)),
				obs.I("to", int64(prop.target)),
				obs.S("reason", "restart-fail"),
			}})
		}
		return
	}
	done := arb.done[:0]
	for _, p := range t.set.Pods {
		spec := k8s.NewGuaranteedSpec(prop.target, t.spec.MemGiBPerPod)
		if err := cluster.ResizeInPlace(p, spec); err != nil {
			// The arbiter pre-checked feasibility, so this is a genuine
			// surprise (e.g. a racing co-tenant): roll back and treat it
			// as an aborted enactment rather than leaving the set split.
			for _, q := range done {
				_ = cluster.ResizeInPlace(q, k8s.NewGuaranteedSpec(from, t.spec.MemGiBPerPod))
			}
			arb.done = done[:0]
			t.res.ResizesAborted++
			if events {
				sink.Emit(obs.Event{T: int64(now), Type: "fleet.resize-aborted", Fields: []obs.Field{
					obs.S("tenant", t.spec.Name),
					obs.I("from", int64(from)),
					obs.I("to", int64(prop.target)),
					obs.S("reason", "infeasible"),
				}})
			}
			return
		}
		done = append(done, p)
	}
	arb.done = done[:0]
	t.res.NumScalings++
	if events {
		sink.Emit(obs.Event{T: int64(now), Type: "fleet.resize", Fields: []obs.Field{
			obs.S("tenant", t.spec.Name),
			obs.I("from", int64(from)),
			obs.I("to", int64(prop.target)),
			obs.F("severity", prop.severity),
		}})
	}
}
