package k8s

import "testing"

func TestAddReplica(t *testing.T) {
	c := SmallCluster()
	set, err := NewStatefulSet("db", 2, 4, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	p, err := set.AddReplica(c, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ordinal != 2 || p.Name != "db-2" {
		t.Errorf("new replica = %s (ordinal %d)", p.Name, p.Ordinal)
	}
	if p.Role != RoleSecondary {
		t.Errorf("role = %s, want secondary (the primary is fixed)", p.Role)
	}
	if p.Running() {
		t.Error("new replica must seed before serving (§3.1 size-of-data copy)")
	}
	if p.RestartingUntil != 500 {
		t.Errorf("seed deadline = %d", p.RestartingUntil)
	}
	if len(set.Pods) != 3 {
		t.Errorf("set size = %d", len(set.Pods))
	}
	// Capacity is reserved immediately even while seeding.
	if got := c.TotalAllocated().CPUCores; got != 12 {
		t.Errorf("allocated = %v, want 12", got)
	}
	// Running set is unaffected until the seed completes.
	if got := len(set.RunningPods()); got != 2 {
		t.Errorf("running = %d", got)
	}
}

func TestAddReplicaClusterFull(t *testing.T) {
	c, _ := NewCluster(NewNode("n", 8, 32))
	set, err := NewStatefulSet("db", 1, 6, 8, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.AddReplica(c, 6, 100); err == nil {
		t.Error("full cluster should reject the scale-out")
	}
	if len(set.Pods) != 1 {
		t.Errorf("failed scale-out must not grow the set: %d", len(set.Pods))
	}
}
