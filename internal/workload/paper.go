package workload

import (
	"time"

	"caasper/internal/stats"
	"caasper/internal/trace"
)

// This file encodes the specific workload shapes described in the paper's
// motivation and evaluation sections. Each constructor documents the
// section and figure it reproduces.

// StepTrace62h reproduces the §3.3 / Figure 3 control workload: a 62-hour
// trace alternating 8 hours at ~2–3 cores with 8 hours at ~7 cores. The
// paper runs it against fixed 14-core limits (the over-provisioned
// "control"), the K8s VPA, OpenShift's VPA, and CaaSPER.
func StepTrace62h(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	base := Step(2.5, 7, 8*60)
	return Render("step62h", WithNoise(base, 0.35, rng), 62*time.Hour)
}

// Workday12h reproduces the §6.2 / Figure 9 non-cyclical workload on
// Database A: 3 hours of mixed read/write transactions at ~1–3.3 cores,
// 6 hours of read-only batch queries at ~5.5 cores, then 3 hours of the
// light mix again. The paper's control run fixes limits at 6 cores.
func Workday12h(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	light := Sine(2.2, 1.0, 90) // wanders between ~1.2 and ~3.2 cores
	heavy := Constant(5.5)
	p := Piecewise(
		Segment{Pattern: light, Minutes: 3 * 60},
		Segment{Pattern: heavy, Minutes: 6 * 60},
		Segment{Pattern: light, Minutes: 3 * 60},
	)
	return Render("workday12h", WithNoise(p, 0.25, rng), 12*time.Hour)
}

// Cyclical3Day reproduces the §6.2 / Figure 10 cyclical workload on
// Database B: three daily cycles with a baseline diurnal wave between ~2
// and ~6 cores plus a large ~12-core spike on Day 2 (the event the
// proactive mode must anticipate on Day 3's equivalent) and a recurring
// morning ramp. The control run fixes limits at 14 cores.
func Cyclical3Day(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	daily := Diurnal(3.5, 8.5, 13*60)
	// A recurring sharp mid-afternoon surge each day (the pattern the
	// forecaster learns), plus the Day-2 outlier spike to ~12 cores.
	surge := Repeat(Spike(Constant(0), 15*60, 60, 3), 24*60)
	base := Add(daily, surge)
	withSpike := Spike(base, 24*60+16*60, 45, 5.5) // Day 2, 4pm: ~12 cores total
	return Render("cyclical3day", WithNoise(withSpike, 0.3, rng), 72*time.Hour)
}

// WorkWeek synthesizes the R5 "cyclical patterns during work-days/weeks"
// scenario: three full weeks at one-minute resolution with business-hour
// load Monday–Friday, quiet weekends, and a month-end-style reporting
// spike late on the second Friday ("periodic spikes in usage for
// quarterly reporting"). It exercises weekly (10 080-minute) seasonality,
// which daily-season forecasters mispredict on weekends.
func WorkWeek(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	const day = 24 * 60
	business := Diurnal(1.5, 7, 14*60)
	weekend := Sine(1.2, 0.3, 6*60)
	week := Piecewise(
		Segment{Pattern: business, Minutes: 5 * day},
		Segment{Pattern: weekend, Minutes: 2 * day},
	)
	base := Repeat(week, 7*day)
	// Reporting spike: second Friday, 4pm, two hours, +5 cores.
	spiked := Spike(base, 7*day+4*day+16*60, 120, 5)
	return Render("workweek", WithNoise(spiked, 0.25, rng), 21*24*time.Hour)
}

// ThrottledAt8 reproduces the Figure 5a/5c sample: a Database A workload
// whose demand presses against an 8-core limit most of the time, so the
// observed (capped) trace piles up at 8 and the PvP curve has a steep
// slope at the 8-core SKU. The returned trace is the *observed* usage
// (already capped at 8), matching what the metrics server would report.
func ThrottledAt8(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	demand := WithNoise(Sine(8.5, 1.5, 120), 0.4, rng)
	tr := Render("throttled8", demand, 200*time.Minute)
	return tr.Clip(0, 8)
}

// HealthyAt32 reproduces the Figure 5b/5d sample: a workload comfortably
// inside a 32-core limit — the PvP-curve slope at 32 cores is neither
// steep nor flat.
func HealthyAt32(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	demand := WithNoise(Sine(24, 5, 150), 1.0, rng)
	tr := Render("healthy32", demand, 200*time.Minute)
	return tr.Clip(0, 32)
}

// ThrottledAt3 reproduces the Figure 4 scenario: utilization hard-capped
// at 3 cores before the scale-up decision. True demand is ~6 cores; the
// observed trace therefore sits at the 3-core cap, and the PvP curve's
// slope at 3 cores is at an inflection point.
func ThrottledAt3(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	demand := WithNoise(Constant(6), 0.3, rng)
	tr := Render("throttled3", demand, 120*time.Minute)
	return tr.Clip(0, 3)
}

// OverProvisionedAt12 reproduces the Figure 7b scenario: a workload using
// ~2–3.5 cores while allocated 12 — the PvP curve is flat at the current
// allocation, and the walk-down mechanism should recommend scaling down by
// roughly 8 cores.
func OverProvisionedAt12(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	demand := WithNoise(Sine(2.8, 0.6, 100), 0.2, rng)
	return Render("overprov12", demand, 200*time.Minute)
}

// CustomerTrace reproduces the §6.2 / Figure 11 recreated customer
// workload: a Database A customer bounded to a maximum of 6 cores on the
// shared small cluster, with bursty demand that alternates between light
// (~1.5–2.5 cores) interactive traffic and heavy (~5–6.5 cores) bursts —
// the shape under which the prefer-performance and prefer-savings tunings
// diverge. Demand intentionally exceeds 6 cores during bursts so that
// low-core tunings throttle (the paper's savings run drops ~10% of
// transactions).
//
// See stitcher.go for the benchmark-mix synthesis that produces an
// equivalent trace the way the Stitcher tool does.
func CustomerTrace(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	bursts := Repeat(Piecewise(
		Segment{Pattern: Sine(1.4, 0.3, 60), Minutes: 360},
		Segment{Pattern: Ramp(1.4, 5.4, 0, 20), Minutes: 20},
		Segment{Pattern: Sine(5.4, 0.5, 45), Minutes: 60},
		Segment{Pattern: Ramp(5.4, 1.4, 0, 20), Minutes: 20},
	), 460)
	return Render("customer", WithNoise(bursts, 0.2, rng), 20*time.Hour)
}
