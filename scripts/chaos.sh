#!/bin/sh
# Fixed-seed chaos matrix: run the trace-driven simulator (multi-worker)
# and the live end-to-end loop under a deterministic fault spec, extract
# the fault/k8s/sim event lines from the NDJSON streams, and diff them
# against the checked-in goldens. Any drift in the fault injector's draw
# discipline, the operator's retry/abort policy, or the scaler's
# degradation path shows up here as a byte diff.
#
#   sh scripts/chaos.sh            # verify against testdata/chaos goldens
#   UPDATE=1 sh scripts/chaos.sh   # regenerate the goldens
set -eu

cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

echo "==> chaos sim matrix (caasper,vpa @ 4 workers, fault-seed 7)"
go run ./cmd/caasper-sim -workload workday12h -recommender caasper,vpa -workers 4 \
    -faults "restart-fail:p=0.2,restart-stuck:p=0.3:dur=25,metrics-gap:p=0.02,sched-pressure:cores=2" \
    -fault-seed 7 -events "$OUT/sim.ndjson" >/dev/null
grep -E '"type":"(fault|sim)\.' "$OUT/sim.ndjson" > "$OUT/sim-chaos.ndjson"

echo "==> chaos vector sim (caasper + ram=4-16, mem-pressure, fault-seed 7)"
go run ./cmd/caasper-sim -workload workday12h -recommender caasper -resources ram=4-16 \
    -faults "mem-pressure:p=0.3:dur=60:gb=4" \
    -fault-seed 7 -events "$OUT/sim-mem.ndjson" -plot=false >/dev/null
grep -E '"type":"(fault|sim)\.' "$OUT/sim-mem.ndjson" > "$OUT/sim-mem-chaos.ndjson"

echo "==> chaos live run (workday on Database A, fault-seed 7)"
go run ./cmd/caasper-live -workload workday -recommender caasper \
    -faults "restart-fail:p=0.1,restart-stuck:p=0.05:dur=600,metrics-gap:p=0.0005" \
    -fault-seed 7 -events "$OUT/live.ndjson" >/dev/null
grep -E '"type":"(fault|k8s)\.' "$OUT/live.ndjson" > "$OUT/live-chaos.ndjson"

GOLD=testdata/chaos
if [ "${UPDATE:-0}" = "1" ]; then
    mkdir -p "$GOLD"
    cp "$OUT/sim-chaos.ndjson" "$GOLD/sim-chaos.golden.ndjson"
    cp "$OUT/sim-mem-chaos.ndjson" "$GOLD/sim-mem-chaos.golden.ndjson"
    cp "$OUT/live-chaos.ndjson" "$GOLD/live-chaos.golden.ndjson"
    wc -l "$GOLD"/*.ndjson
    echo "==> goldens regenerated in $GOLD/"
    exit 0
fi

diff -u "$GOLD/sim-chaos.golden.ndjson" "$OUT/sim-chaos.ndjson"
diff -u "$GOLD/sim-mem-chaos.golden.ndjson" "$OUT/sim-mem-chaos.ndjson"
diff -u "$GOLD/live-chaos.golden.ndjson" "$OUT/live-chaos.ndjson"
echo "==> OK: chaos event streams byte-identical to goldens"
