package sim

import (
	"testing"
	"time"

	"caasper/internal/baselines"
	"caasper/internal/hooks"
	"caasper/internal/obs"
	"caasper/internal/trace"
)

// TestRunHooksEmbeddedSpelling proves the canonical RunHooks spelling is
// live end-to-end: a sink set through the embedded struct (not the
// deprecated top-level alias) receives the run's events.
func TestRunHooksEmbeddedSpelling(t *testing.T) {
	tr := trace.New("flat", time.Minute, make([]float64, 60))
	rec := baselines.NewControl(2)

	mem := obs.NewMemorySink()
	opts := DefaultOptions(2, 8)
	opts.RunHooks = hooks.RunHooks{Events: mem}
	if opts.Hooks().Events != obs.Sink(mem) {
		t.Fatal("Hooks() should surface the embedded sink")
	}
	if _, err := Run(tr, rec, opts); err != nil {
		t.Fatal(err)
	}
	if mem.Len() == 0 {
		t.Error("embedded RunHooks.Events received no events")
	}

	// The deprecated alias shadows the embedded field and wins.
	alias := obs.NewMemorySink()
	opts.Events = alias
	if opts.Hooks().Events != obs.Sink(alias) {
		t.Error("deprecated Events alias should win over embedded RunHooks.Events")
	}
}
