package sim

import (
	"runtime"
	"strings"
	"testing"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/faults"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/trace"
	"caasper/internal/workload"
)

// Chaos determinism contract (acceptance criterion of the fault-injection
// PR): with a fixed -fault-seed the full NDJSON event stream — fault.*
// injections included — is byte-identical at every worker count, because
// each cell builds its injector from (spec, seed) alone and every draw
// derives a fresh PRNG from (seed, kind, pod, time).
func TestChaosEventStreamDeterministicAcrossWorkers(t *testing.T) {
	spec, err := faults.ParseSpec("restart-fail:p=0.2,restart-stuck:p=0.3:dur=25,metrics-gap:p=0.05,sched-pressure:cores=2")
	if err != nil {
		t.Fatal(err)
	}
	factories := []RecommenderFactory{
		{Name: "caasper", New: func() (recommend.Recommender, error) {
			return recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
		}},
		{Name: "vpa", New: func() (recommend.Recommender, error) {
			return baselines.NewKubernetesVPA(baselines.DefaultKubernetesVPAOptions(8))
		}},
	}
	run := func(workers int) string {
		t.Helper()
		tr := workload.Workday12h(42)
		mem := obs.NewMemorySink()
		opts := DefaultOptions(8, 8)
		opts.Workers = workers
		opts.Events = mem
		opts.Faults = spec
		opts.FaultSeed = 7
		if _, err := RunMatrix([]*trace.Trace{tr}, factories, opts); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return encodeStream(mem)
	}

	want := run(1)
	if want == "" {
		t.Fatal("empty event stream")
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: chaos event stream not byte-identical to sequential run (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}

	// The run must not be vacuously fault-free: the stream carries real
	// injections and at least one aborted resize audit.
	faultLines, aborts := 0, 0
	for _, l := range strings.Split(strings.TrimSuffix(want, "\n"), "\n") {
		if strings.Contains(l, `"type":"fault.`) {
			faultLines++
		}
		if strings.Contains(l, `"type":"sim.resize-aborted"`) {
			aborts++
		}
	}
	if faultLines == 0 {
		t.Error("no fault.* events in chaos stream")
	}
	if aborts == 0 {
		t.Error("no sim.resize-aborted events in chaos stream")
	}
}

// TestChaosSameSeedSameResult pins the scalar side of the contract: two
// runs with the same (spec, seed) agree on every fault counter and
// headline metric, while a different seed draws a different fault mix.
func TestChaosSameSeedSameResult(t *testing.T) {
	spec, err := faults.ParseSpec("restart-fail:p=0.3,metrics-gap:p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) *Result {
		t.Helper()
		tr := workload.Workday12h(42)
		rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions(8, 8)
		opts.Faults = spec
		opts.FaultSeed = seed
		res, err := Run(tr, rec, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a, b := run(7), run(7)
	if a.FaultCounts != b.FaultCounts {
		t.Errorf("same seed, different fault counts: %+v vs %+v", a.FaultCounts, b.FaultCounts)
	}
	if a.AbortedScalings != b.AbortedScalings || a.NumScalings != b.NumScalings ||
		a.BilledCorePeriods != b.BilledCorePeriods || a.SumSlack != b.SumSlack {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
	if a.FaultCounts.MetricsGaps == 0 {
		t.Error("chaos run drew no metrics gaps; spec p=0.1 over a 12h trace should")
	}
	c := run(99)
	if c.FaultCounts == a.FaultCounts {
		t.Error("different seeds drew identical fault counts; injector may be ignoring the seed")
	}
}

// TestChaosFreePathMatchesBaseline: a nil fault spec must leave the
// simulator byte-for-byte on the pre-fault-injection path — same event
// stream and same result as a run that never heard of faults.
func TestChaosFreePathMatchesBaseline(t *testing.T) {
	run := func(withEmptySpec bool) (string, *Result) {
		t.Helper()
		tr := workload.Workday12h(42)
		rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
		if err != nil {
			t.Fatal(err)
		}
		mem := obs.NewMemorySink()
		opts := DefaultOptions(8, 8)
		opts.Events = mem
		if withEmptySpec {
			opts.Faults = &faults.Spec{}
			opts.FaultSeed = 1234
		}
		res, err := Run(tr, rec, opts)
		if err != nil {
			t.Fatal(err)
		}
		return encodeStream(mem), res
	}
	baseStream, baseRes := run(false)
	gotStream, gotRes := run(true)
	if gotStream != baseStream {
		t.Error("empty fault spec changed the event stream")
	}
	if gotRes.NumScalings != baseRes.NumScalings || gotRes.BilledCorePeriods != baseRes.BilledCorePeriods {
		t.Errorf("empty fault spec changed results: %+v vs %+v", gotRes, baseRes)
	}
	if gotRes.FaultCounts != (faults.Counts{}) {
		t.Errorf("fault counts on a fault-free run: %+v", gotRes.FaultCounts)
	}
}
