// Package window provides the fixed-capacity observation windows that
// bound every recommender's memory to O(window) regardless of trace
// length. The paper positions CaaSPER as a fleet-scale algorithm — it
// runs "for all customer databases on the cluster" — so a month-long
// replay across a thousand tenants must not retain a thousand unbounded
// history slices when each policy only ever reads a fixed tail
// (CaaSPER's 40-minute window, OpenShift-VPA's lookback, Autopilot's
// moving-max window).
//
// The core type is Ring, a mirrored ring buffer: every sample is written
// to two slots, i mod cap and i mod cap + cap, so the most recent
// min(total, cap) samples are ALWAYS one contiguous sub-slice of the
// backing array. That contiguity is what lets the decision hot path keep
// its plain []float64 signatures (core.Decide, forecast.Forecaster)
// without a copy per tick: View returns a slice into the buffer, in
// chronological order, with zero allocations.
//
// A Ring with capacity ≤ 0 degrades to an unbounded append-backed
// history. This is the correctness escape hatch for consumers whose
// output genuinely depends on the entire series (e.g. forecasters that
// do not implement forecast.HistoryBound): bit-equality with the
// unbounded-history implementation always wins over the memory bound.
package window

import "fmt"

// Ring is a bounded sliding window over float64 samples. The zero value
// is an unbounded window (equivalent to a plain growing slice); use New
// for a fixed capacity. A Ring is single-goroutine state, like the
// recommender adapters that own one.
type Ring struct {
	// buf is the mirrored storage: 2*capacity slots in bounded mode,
	// a plain append slice in unbounded mode.
	buf []float64
	// capacity is the retained-sample bound; 0 means unbounded.
	capacity int
	// total counts samples ever pushed (the logical history length,
	// which can exceed the retained length in bounded mode).
	total int
}

// New returns a Ring retaining the last capacity samples. capacity ≤ 0
// yields an unbounded window.
func New(capacity int) *Ring {
	if capacity <= 0 {
		return &Ring{}
	}
	return &Ring{buf: make([]float64, 2*capacity), capacity: capacity}
}

// Push appends one sample. In bounded mode this is two array stores —
// no allocation, no branch on fullness — which is what keeps the
// steady-state observe path at zero allocs/op.
func (r *Ring) Push(v float64) {
	if r.capacity == 0 {
		r.buf = append(r.buf, v)
		r.total++
		return
	}
	i := r.total % r.capacity
	r.buf[i] = v
	r.buf[i+r.capacity] = v
	r.total++
}

// PushRun appends n copies of the same sample — the bulk form the
// discrete-event fleet engine uses to advance an observation window over
// a constant-demand trace run in one call. The resulting state (buffer,
// total, View) is bit-identical to n sequential Push(v) calls; when the
// run is at least as long as the capacity, every retained slot is simply
// overwritten with v, making the append O(cap) instead of O(n).
func (r *Ring) PushRun(v float64, n int) {
	if n <= 0 {
		return
	}
	if r.capacity == 0 {
		for k := 0; k < n; k++ {
			r.buf = append(r.buf, v)
		}
		r.total += n
		return
	}
	if n >= r.capacity {
		// n sequential pushes visit every slot of both mirrors.
		for i := range r.buf {
			r.buf[i] = v
		}
		r.total += n
		return
	}
	i := r.total % r.capacity
	for k := 0; k < n; k++ {
		r.buf[i] = v
		r.buf[i+r.capacity] = v
		if i++; i == r.capacity {
			i = 0
		}
	}
	r.total += n
}

// AllEqual reports whether every retained sample equals v (vacuously true
// when empty). Steady-state detection — "the window holds nothing but the
// current usage level" — is what lets the event-driven fleet engine prove
// a recommender's output cannot change until the demand trace does.
func (r *Ring) AllEqual(v float64) bool {
	for _, x := range r.View() {
		if x != v {
			return false
		}
	}
	return true
}

// Len returns the number of retained samples: min(Total, Cap) in bounded
// mode, Total otherwise.
func (r *Ring) Len() int {
	if r.capacity == 0 || r.total < r.capacity {
		return r.total
	}
	return r.capacity
}

// Total returns the number of samples ever pushed — the logical history
// length. Consumers that gate on "how much history has accumulated"
// (e.g. core.Proactive's MinHistory warm-up) must use Total, not Len,
// to stay bit-equal with an unbounded history.
func (r *Ring) Total() int { return r.total }

// Cap returns the retention bound (0 = unbounded).
func (r *Ring) Cap() int { return r.capacity }

// Bounded reports whether the window retains a fixed number of samples.
func (r *Ring) Bounded() bool { return r.capacity > 0 }

// View returns the retained samples, oldest to newest, as one contiguous
// slice into the mirrored buffer. The slice is valid until the next Push
// and must not be mutated or retained across pushes. Zero allocations.
func (r *Ring) View() []float64 {
	if r.capacity == 0 {
		return r.buf
	}
	if r.total <= r.capacity {
		return r.buf[:r.total]
	}
	start := r.total % r.capacity
	return r.buf[start : start+r.capacity]
}

// Tail returns the most recent n retained samples (all of them when
// n ≥ Len, none when n ≤ 0). Same aliasing rules as View. A negative n is
// clamped to 0 rather than panicking: callers compute tail lengths from
// configuration deltas (window − horizon and the like), and a misconfigured
// difference must degrade to "no samples", not a slice-bounds fault.
func (r *Ring) Tail(n int) []float64 {
	v := r.View()
	if n >= len(v) {
		return v
	}
	if n < 0 {
		n = 0
	}
	return v[len(v)-n:]
}

// Reset clears the window for reuse, keeping the backing storage.
func (r *Ring) Reset() {
	r.total = 0
	if r.capacity == 0 {
		r.buf = r.buf[:0]
	}
}

// Snapshot appends the retained samples (oldest first) to dst and returns
// the extended slice together with the total-pushed count — the
// serialisable form of the window a checkpoint writes out. Restore on a
// Ring of the same capacity rebuilds bit-identical state.
func (r *Ring) Snapshot(dst []float64) ([]float64, int) {
	return append(dst, r.View()...), r.total
}

// Restore rebuilds the window from a Snapshot: values are the retained
// samples oldest-first and total the number ever pushed. The restored
// state — buffer layout, total, View — is bit-identical to the Ring the
// snapshot was taken from, which is what lets a restarted server resume
// mid-window with unchanged subsequent decisions.
func (r *Ring) Restore(values []float64, total int) error {
	if total < len(values) {
		return fmt.Errorf("window: snapshot total %d < %d retained samples", total, len(values))
	}
	if r.capacity > 0 {
		if len(values) > r.capacity {
			return fmt.Errorf("window: snapshot holds %d samples, capacity is %d", len(values), r.capacity)
		}
		if total > r.capacity && len(values) != r.capacity {
			return fmt.Errorf("window: saturated snapshot (total %d) retains %d of %d samples", total, len(values), r.capacity)
		}
	} else if total != len(values) {
		return fmt.Errorf("window: unbounded snapshot total %d != %d retained samples", total, len(values))
	}
	r.Reset()
	// Replaying the values from the pre-window total lands every sample in
	// the slot (total mod capacity) it originally occupied, so View reads
	// from the same offset as the snapshotted ring.
	r.total = total - len(values)
	for _, v := range values {
		r.Push(v)
	}
	return nil
}
