package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil receiver
// is valid and inert, so callers can hold an optional counter without
// guarding every bump.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 point-in-time value. The nil receiver is
// valid and inert.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-watermark idiom (max queue depth, peak allocation).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket atomic histogram: Observe is lock-free and
// allocation-free, so it is safe on the parallel engine's per-task path.
// Bounds are inclusive upper bounds in ascending order; one overflow
// bucket catches everything beyond the last bound. The nil receiver is
// valid and inert.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-added
	maxBits atomic.Uint64 // float64 bits, CAS-maxed
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// defaultDurationBounds is a 1-2-5 ladder from 1µs to 500s in
// nanoseconds — wide enough for both a 4µs decision and an 8-minute
// experiment suite.
func defaultDurationBounds() []float64 {
	var bounds []float64
	for decade := 1e3; decade <= 1e11; decade *= 10 {
		bounds = append(bounds, decade, 2*decade, 5*decade)
	}
	return bounds
}

// NewDurationHistogram builds a histogram sized for wall-clock durations
// in nanoseconds.
func NewDurationHistogram() *Histogram {
	return NewHistogram(defaultDurationBounds())
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	// Max tracking assumes non-negative samples (durations, depths): the
	// zero value doubles as "no observations yet".
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the wall-clock time elapsed since t0 in
// nanoseconds and returns it — the allocation-free stopwatch idiom:
//
//	t0 := time.Now()
//	... work ...
//	h.ObserveSince(t0)
func (h *Histogram) ObserveSince(t0 time.Time) time.Duration {
	d := time.Since(t0)
	h.Observe(float64(d.Nanoseconds()))
	return d
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the p-quantile (p in [0, 1]) by linear interpolation
// within the holding bucket; samples beyond the last bound report the
// observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(n)
	cum := 0.0
	for i := range h.buckets {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i >= len(h.bounds) {
				return h.Max()
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - cum) / c
			v := lower + frac*(upper-lower)
			if max := h.Max(); v > max && max > 0 {
				v = max
			}
			return v
		}
		cum += c
	}
	return h.Max()
}

// Registry is a named collection of counters, gauges and histograms.
// Get-or-create lookups take a mutex; the returned instruments are atomic,
// so hot paths hold instruments, not names. The nil receiver is valid:
// every lookup returns a nil instrument whose methods are no-ops, which is
// what makes `reg.Counter("x").Inc()` safe with telemetry disabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration-bounded histogram, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewDurationHistogram()
		r.hists[name] = h
	}
	return h
}

// Summary renders the registry as a sorted, aligned table — the `-obs`
// end-of-run report. Histograms report count, mean, p50, p99 and max in
// milliseconds (they hold nanosecond durations by convention).
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, "c\x00"+n)
	}
	for n := range r.gauges {
		names = append(names, "g\x00"+n)
	}
	for n := range r.hists {
		names = append(names, "h\x00"+n)
	}
	r.mu.Unlock()
	sort.Slice(names, func(i, j int) bool { return names[i][2:] < names[j][2:] })

	var b strings.Builder
	b.WriteString("observability summary\n")
	for _, tagged := range names {
		kind, name := tagged[0], tagged[2:]
		switch kind {
		case 'c':
			fmt.Fprintf(&b, "  %-36s %12d\n", name, r.Counter(name).Value())
		case 'g':
			fmt.Fprintf(&b, "  %-36s %12.2f\n", name, r.Gauge(name).Value())
		case 'h':
			h := r.Histogram(name)
			ms := func(ns float64) float64 { return ns / 1e6 }
			fmt.Fprintf(&b, "  %-36s %12d  mean=%.3fms p50=%.3fms p99=%.3fms max=%.3fms\n",
				name, h.Count(), ms(h.Mean()), ms(h.Quantile(0.5)), ms(h.Quantile(0.99)), ms(h.Max()))
		}
	}
	if len(names) == 0 {
		b.WriteString("  (no metrics recorded)\n")
	}
	return b.String()
}
