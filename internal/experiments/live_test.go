package experiments

import (
	"strings"
	"testing"
)

// Live-loop experiment tests. These run multi-hour simulated workloads at
// one-second resolution; they are the slowest tests in the repository but
// each completes in seconds of wall time.

func TestFigure9Table1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("live-loop experiment")
	}
	res, err := Figure9Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	// Control never scales; CaaSPER scales a handful of times (paper: 3).
	if res.Control.NumScalings != 0 {
		t.Errorf("control scalings = %d", res.Control.NumScalings)
	}
	if res.Resizes < 2 || res.Resizes > 8 {
		t.Errorf("CaaSPER resizes = %d, paper ≈3", res.Resizes)
	}
	// Price below control (paper: 0.85x).
	if res.CostRatio >= 1 || res.CostRatio < 0.5 {
		t.Errorf("cost ratio = %v, paper 0.85x", res.CostRatio)
	}
	// Slack substantially reduced (paper: 39.6%).
	if res.SlackReduction < 0.2 {
		t.Errorf("slack reduction = %v, paper 0.396", res.SlackReduction)
	}
	// Throughput within a few percent of control.
	if res.CaaSPER.DB.CompletedTxns < res.Control.DB.CompletedTxns*0.93 {
		t.Errorf("throughput %v vs control %v",
			res.CaaSPER.DB.CompletedTxns, res.Control.DB.CompletedTxns)
	}
	// Resizes interrupt a tiny number of transactions (paper: ~1 per
	// resize, dropped and retried).
	if res.CaaSPER.DB.InterruptedTxns <= 0 {
		t.Error("resizes should interrupt some transactions")
	}
	if res.CaaSPER.DB.InterruptedTxns > res.CaaSPER.DB.CompletedTxns*0.01 {
		t.Errorf("interrupted %v of %v txns — too disruptive",
			res.CaaSPER.DB.InterruptedTxns, res.CaaSPER.DB.CompletedTxns)
	}
	if !strings.Contains(res.Report, "Figure 9") {
		t.Error("report missing")
	}
}

func TestFigure10Table1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("live-loop experiment")
	}
	res, err := Figure10Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	// Both CaaSPER modes cost roughly half the control (paper: 0.57y /
	// 0.56y), with proactive at or below reactive.
	if res.ReactiveCostRatio >= 0.85 {
		t.Errorf("reactive cost ratio = %v, paper 0.57", res.ReactiveCostRatio)
	}
	if res.ProactiveCostRatio > res.ReactiveCostRatio+0.02 {
		t.Errorf("proactive (%v) should not cost more than reactive (%v)",
			res.ProactiveCostRatio, res.ReactiveCostRatio)
	}
	// Slack reductions in the paper's band (66.5% / 68.2%).
	if res.ReactiveSlackReduction < 0.45 {
		t.Errorf("reactive slack reduction = %v", res.ReactiveSlackReduction)
	}
	if res.ProactiveSlackReduction < res.ReactiveSlackReduction-0.05 {
		t.Errorf("proactive slack reduction %v should be ≥ reactive %v",
			res.ProactiveSlackReduction, res.ReactiveSlackReduction)
	}
	// Throughput preserved within noise.
	if res.Reactive.DB.CompletedTxns < res.Control.DB.CompletedTxns*0.95 {
		t.Errorf("reactive throughput %v vs control %v",
			res.Reactive.DB.CompletedTxns, res.Control.DB.CompletedTxns)
	}
	if res.Proactive.DB.CompletedTxns < res.Control.DB.CompletedTxns*0.95 {
		t.Errorf("proactive throughput %v vs control %v",
			res.Proactive.DB.CompletedTxns, res.Control.DB.CompletedTxns)
	}
	if !strings.Contains(res.Report, "Figure 10") {
		t.Error("report missing")
	}
}

func TestFigure11Table2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("live-loop experiment")
	}
	res, err := Figure11Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	// Prefer-performance: throughput ≈ control at a lower price
	// (paper: same txns, 0.74x price).
	if res.PerfThroughputRatio < 0.97 {
		t.Errorf("perf throughput ratio = %v, want ≈1", res.PerfThroughputRatio)
	}
	if res.PerfCostRatio >= 1 {
		t.Errorf("perf cost ratio = %v, want < 1 (paper 0.74)", res.PerfCostRatio)
	}
	// Prefer-savings: cheaper than perf, modest throughput loss
	// (paper: 0.49x price, 10% fewer txns).
	if res.SavingsCostRatio >= res.PerfCostRatio {
		t.Errorf("savings cost %v should undercut perf %v",
			res.SavingsCostRatio, res.PerfCostRatio)
	}
	if res.SavingsThroughputRatio < 0.75 || res.SavingsThroughputRatio > 1.0 {
		t.Errorf("savings throughput ratio = %v, paper ≈0.9", res.SavingsThroughputRatio)
	}
	if res.SavingsThroughputRatio >= res.PerfThroughputRatio+0.01 {
		t.Error("savings should not out-perform the perf tuning")
	}
	if !strings.Contains(res.Report, "Table 2") {
		t.Error("report missing")
	}
}

func TestFigure12And13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning sweep")
	}
	fig12, err := Figure12(1, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig12.Evaluations) < 100 {
		t.Fatalf("evaluations = %d", len(fig12.Evaluations))
	}
	if len(fig12.Frontier) < 2 {
		t.Errorf("frontier = %d points", len(fig12.Frontier))
	}
	if fig12.ReactiveCount == 0 || fig12.ProactiveCount == 0 {
		t.Error("both modes should be sampled")
	}
	// Frontier is a staircase: K ascending, C strictly descending.
	for i := 1; i < len(fig12.Frontier); i++ {
		if fig12.Frontier[i].C >= fig12.Frontier[i-1].C {
			t.Fatal("frontier not strictly improving in C")
		}
	}

	fig13, err := Figure13(fig12)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig13.Chosen) != 4 {
		t.Fatalf("chosen = %d", len(fig13.Chosen))
	}
	// As α rises, slack K must not rise and throttling C must not fall.
	for i := 1; i < len(fig13.Chosen); i++ {
		if fig13.Chosen[i].K > fig13.Chosen[i-1].K+1e-9 {
			t.Errorf("α sweep: K rose at step %d", i)
		}
		if fig13.Chosen[i].C < fig13.Chosen[i-1].C-1e-9 {
			t.Errorf("α sweep: C fell at step %d", i)
		}
	}
	if !strings.Contains(fig13.Report, "alpha") {
		t.Error("report missing")
	}
}

func TestFigure14Table3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning sweep over 11 traces")
	}
	res, err := Figure14Table3(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Table 3 bands: small average slack, sub-2% throttled
		// observations, bounded scaling counts.
		if row.AvgSlack < 0 || row.AvgSlack > 8 {
			t.Errorf("%s: avg slack = %v", row.Workload, row.AvgSlack)
		}
		if row.ThrottledPct > 0.05 {
			t.Errorf("%s: throttled obs = %v, want ≤5%%", row.Workload, row.ThrottledPct)
		}
		if row.NumScalings < 1 || row.NumScalings > 1200 {
			t.Errorf("%s: scalings = %d", row.Workload, row.NumScalings)
		}
		if row.AvgInsufficient > 0.5 {
			t.Errorf("%s: avg insufficient = %v", row.Workload, row.AvgInsufficient)
		}
	}
	// The batch workload c_48113 has long plateaus → few scalings
	// relative to the noisy c_26742 (paper: 38 vs 443).
	byName := map[string]AlibabaRow{}
	for _, r := range res.Rows {
		byName[r.Workload] = r
	}
	if byName["c_48113"].NumScalings >= byName["c_26742"].NumScalings {
		t.Errorf("c_48113 (%d) should scale less than c_26742 (%d)",
			byName["c_48113"].NumScalings, byName["c_26742"].NumScalings)
	}
	if !strings.Contains(res.Report, "Table 3") {
		t.Error("report missing")
	}
}

func TestSimulatorCorrectnessShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("live-loop experiment")
	}
	res, err := SimulatorCorrectness(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LiveDecisions) != len(res.SimDecisions) {
		t.Fatal("series not aligned")
	}
	if len(res.LiveDecisions) < 10 {
		t.Fatalf("only %d decision pairs", len(res.LiveDecisions))
	}
	// The paper's acceptance criterion: statistically equivalent.
	if !res.Equivalent {
		t.Errorf("simulator decisions significantly differ from live: %+v", res.TTest)
	}
	if !strings.Contains(res.Report, "t-test") {
		t.Error("report missing")
	}
}
