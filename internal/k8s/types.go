// Package k8s is a miniature, discrete-time Kubernetes-like substrate:
// just enough of the real system's resource model, scheduling, stateful
// sets, rolling updates and metrics plumbing to run the paper's vertical
// autoscaling loop (Figure 1) end to end.
//
// It models, faithfully to the paper's evaluation environment:
//
//   - requests/limits at the container level, with the DBaaS invariant
//     limits == requests (§3.1 "Predictability");
//   - cgroup-style CPU capping: a pod's usable CPU each tick is
//     min(demand, limits), with the clipped remainder accounted as
//     throttled time (§2.1);
//   - nodes with allocatable capacity and a bin-packing scheduler that
//     places pods by requests (§2.1);
//   - stateful sets with one writable primary and n−1 readable
//     secondaries (§3.1, Figure 2);
//   - rolling updates with restart: resizes restart pods one at a time,
//     secondaries first and the primary last, each restart taking a
//     configurable duration and dropping the pod's connections (§2.2,
//     §3.1) — the source of the 5–15 minute resize windows;
//   - a metrics server recording per-pod usage for the recommender, and a
//     scaler that polls the recommender, applies safety checks, and
//     enacts decisions through the operator (Figure 1, steps 2–6).
//
// Time is integer seconds from simulation start; there are no goroutines
// and no wall-clock reads, so runs are deterministic and fast.
package k8s

import (
	"errors"
	"fmt"
)

// Role is a replica's role within a stateful set.
type Role string

// Replica roles.
const (
	// RolePrimary is the single writable instance.
	RolePrimary Role = "primary"
	// RoleSecondary is a readable replica.
	RoleSecondary Role = "secondary"
)

// Phase is a pod lifecycle phase.
type Phase string

// Pod phases. The substrate only needs the running/restarting/pending
// distinction; the full K8s phase machine is out of scope.
const (
	// PhasePending means the pod awaits scheduling.
	PhasePending Phase = "Pending"
	// PhaseRunning means the pod is serving.
	PhaseRunning Phase = "Running"
	// PhaseRestarting means the pod was deallocated for a rolling
	// update and is being rescheduled/restarted.
	PhaseRestarting Phase = "Restarting"
)

// Resources is a CPU/memory resource vector. CPU is in cores (the
// substrate schedules whole-core requests per the billing model but the
// type allows fractions); memory is in GiB.
type Resources struct {
	// CPUCores is CPU in cores.
	CPUCores float64
	// MemoryGiB is memory in GiB.
	MemoryGiB float64
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPUCores: r.CPUCores + o.CPUCores, MemoryGiB: r.MemoryGiB + o.MemoryGiB}
}

// Sub returns r − o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{CPUCores: r.CPUCores - o.CPUCores, MemoryGiB: r.MemoryGiB - o.MemoryGiB}
}

// Fits reports whether r fits within capacity c.
func (r Resources) Fits(c Resources) bool {
	return r.CPUCores <= c.CPUCores+1e-9 && r.MemoryGiB <= c.MemoryGiB+1e-9
}

// ContainerSpec is a container's declarative resource specification.
// Per the service invariant (R1), NewGuaranteedSpec sets limits equal to
// requests.
type ContainerSpec struct {
	// Requests is the guaranteed minimum used for scheduling.
	Requests Resources
	// Limits is the cgroup-enforced maximum.
	Limits Resources
}

// NewGuaranteedSpec builds a spec with limits == requests (the
// "Guaranteed" QoS class the paper's databases run in).
func NewGuaranteedSpec(cpuCores int, memGiB float64) ContainerSpec {
	r := Resources{CPUCores: float64(cpuCores), MemoryGiB: memGiB}
	return ContainerSpec{Requests: r, Limits: r}
}

// Guaranteed reports whether limits == requests.
func (c ContainerSpec) Guaranteed() bool {
	return c.Requests == c.Limits
}

// Validate checks spec invariants.
func (c ContainerSpec) Validate() error {
	if c.Requests.CPUCores <= 0 {
		return errors.New("k8s: non-positive CPU request")
	}
	if c.Limits.CPUCores < c.Requests.CPUCores {
		return errors.New("k8s: limits below requests")
	}
	if c.Requests.MemoryGiB < 0 || c.Limits.MemoryGiB < c.Requests.MemoryGiB {
		return errors.New("k8s: invalid memory spec")
	}
	return nil
}

// Pod is a scheduled instance of a stateful set replica.
type Pod struct {
	// Name is "<set>-<ordinal>", K8s stateful-set style.
	Name string
	// Ordinal is the replica index within the set.
	Ordinal int
	// Role is the replica's current role.
	Role Role
	// Phase is the lifecycle phase.
	Phase Phase
	// Spec is the container resource specification.
	Spec ContainerSpec
	// NodeName is the node the pod is bound to ("" while pending).
	NodeName string
	// RestartingUntil is the tick (seconds) at which an in-flight
	// restart completes; meaningful only in PhaseRestarting.
	RestartingUntil int64
	// Restarts counts completed restarts (observability).
	Restarts int

	// ThrottledCPUSeconds accumulates demand clipped by the limit —
	// the cgroup cpu.stat "throttled_time" equivalent.
	ThrottledCPUSeconds float64
	// UsedCPUSeconds accumulates CPU actually consumed.
	UsedCPUSeconds float64
}

// Running reports whether the pod can serve traffic.
func (p *Pod) Running() bool { return p.Phase == PhaseRunning }

// CPULimit returns the pod's CPU limit in cores.
func (p *Pod) CPULimit() float64 { return p.Spec.Limits.CPUCores }

// ConsumeCPU applies cgroup capping for a dt-second interval: given the
// pod's CPU demand in cores, it returns the CPU actually usable and
// accounts the clipped remainder as throttled time. Restarting and
// pending pods consume nothing.
func (p *Pod) ConsumeCPU(demandCores, dtSeconds float64) (usedCores float64) {
	if !p.Running() || demandCores <= 0 {
		return 0
	}
	limit := p.CPULimit()
	used := demandCores
	if used > limit {
		used = limit
		p.ThrottledCPUSeconds += (demandCores - limit) * dtSeconds
	}
	p.UsedCPUSeconds += used * dtSeconds
	return used
}

// String renders the pod for debugging.
func (p *Pod) String() string {
	return fmt.Sprintf("Pod{%s %s %s %gc on %q}", p.Name, p.Role, p.Phase, p.CPULimit(), p.NodeName)
}
