package sim

import (
	"testing"

	"caasper/internal/core"
	"caasper/internal/recommend"
	"caasper/internal/workload"
)

// Golden regression test: the exact resize sequence CaaSPER produces on
// the fixed-seed workday trace. This pins the *behaviour* of Algorithm 1 +
// simulator against accidental drift: any change to thresholds, curve
// construction, rounding or the decision cadence shows up here first.
//
// The assertion is deliberately tolerant of tiny floating-point
// differences across platforms: the resize count must match exactly and
// at least 90% of individual resize records must match the golden
// sequence; a genuine algorithm change breaks both.
func TestGoldenWorkdayDecisionSequence(t *testing.T) {
	tr := workload.Workday12h(42)
	rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, rec, DefaultOptions(8, 8))
	if err != nil {
		t.Fatal(err)
	}

	golden := []DecisionRecord{
		{Minute: 10, From: 8, To: 4, EffectiveAt: 20},
		{Minute: 80, From: 4, To: 3, EffectiveAt: 90},
		{Minute: 100, From: 3, To: 4, EffectiveAt: 110},
		{Minute: 170, From: 4, To: 3, EffectiveAt: 180},
		{Minute: 190, From: 3, To: 6, EffectiveAt: 200},
		{Minute: 210, From: 6, To: 7, EffectiveAt: 220},
		{Minute: 580, From: 7, To: 5, EffectiveAt: 590},
		{Minute: 610, From: 5, To: 4, EffectiveAt: 620},
		{Minute: 630, From: 4, To: 3, EffectiveAt: 640},
		{Minute: 640, From: 3, To: 4, EffectiveAt: 650},
	}
	if len(res.Decisions) != len(golden) {
		t.Fatalf("resize count drifted: got %d, golden %d\n%+v",
			len(res.Decisions), len(golden), res.Decisions)
	}
	matches := 0
	for i := range golden {
		got := res.Decisions[i]
		if got.Minute == golden[i].Minute && got.From == golden[i].From &&
			got.To == golden[i].To && got.EffectiveAt == golden[i].EffectiveAt {
			matches++
		}
		// Every enacted CaaSPER decision must carry its explanation (R6).
		if got.Explanation == "" {
			t.Errorf("decision %d has no explanation", i)
		}
	}
	if frac := float64(matches) / float64(len(golden)); frac < 0.9 {
		t.Errorf("only %d/%d resize records match the golden sequence:\n got   %+v\n want %+v",
			matches, len(golden), res.Decisions, golden)
	}

	// Headline metrics pinned with tolerance.
	if res.NumScalings != 10 {
		t.Errorf("scalings = %d, golden 10", res.NumScalings)
	}
	if res.BilledCorePeriods < 70 || res.BilledCorePeriods > 78 {
		t.Errorf("billed = %v, golden ≈74", res.BilledCorePeriods)
	}
	if res.ThroughputProxy() < 0.97 {
		t.Errorf("throughput = %v, golden ≈0.98", res.ThroughputProxy())
	}
}
