package main

import "testing"

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitList[%d] = %q", i, got[i])
		}
	}
	if splitList("") != nil {
		t.Error("empty list should be nil")
	}
}

func TestCollectTraces(t *testing.T) {
	traces, err := collectTraces("workday12h,step62h", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	if _, err := collectTraces("nope", "", 1); err == nil {
		t.Error("unknown workload should error")
	}
	traces, err = collectTraces("", "c_1,c_4043", 1)
	if err != nil || len(traces) != 2 {
		t.Errorf("alibaba traces: %v %d", err, len(traces))
	}
	if _, err := collectTraces("", "c_zzz", 1); err == nil {
		t.Error("unknown alibaba id should error")
	}
}

func TestCollectFactories(t *testing.T) {
	traces, err := collectTraces("workday12h", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := collectFactories("control,caasper,caasper-proactive,vpa,openshift,autopilot", traces, 1440)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 6 {
		t.Fatalf("factories = %d", len(fs))
	}
	for _, f := range fs {
		rec, err := f.New()
		if err != nil {
			t.Errorf("%s: %v", f.Name, err)
			continue
		}
		if rec.Name() == "" {
			t.Errorf("%s built a nameless recommender", f.Name)
		}
	}
	if _, err := collectFactories("bogus", traces, 1440); err == nil {
		t.Error("unknown recommender should error")
	}
}
