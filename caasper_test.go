package caasper

import (
	"testing"
	"time"
)

func TestPublicDecide(t *testing.T) {
	cfg := DefaultConfig(16)
	// A workload pinned at its 3-core cap must trigger a scale-up with
	// an explanation attached.
	usage := make([]float64, 60)
	for i := range usage {
		usage[i] = 3
	}
	d, err := Decide(cfg, 3, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Branch != BranchScaleUp || d.Delta < 1 {
		t.Errorf("decision = %+v", d)
	}
	if d.Explanation == "" {
		t.Error("missing explanation (R6)")
	}
	if _, err := Decide(Config{}, 3, usage); err == nil {
		t.Error("invalid config should error")
	}
}

func TestPublicCurve(t *testing.T) {
	c, err := BuildCurve([]float64{2, 2, 2}, SKURange{MinCores: 1, MaxCores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Performance(8) != 1 {
		t.Errorf("performance = %v", c.Performance(8))
	}
	if sf := ScalingFactor(2, 1, ScalingFactorParams{CMin: 2, SkewWeight: 1}); sf <= 0 {
		t.Errorf("SF = %v", sf)
	}
}

func TestPublicForecasters(t *testing.T) {
	hist := []float64{1, 2, 3, 4, 1, 2, 3, 4}
	for _, f := range []Forecaster{
		NewSeasonalNaive(4),
		NewHoltWinters(0.3, 0.1, 0.2, 2),
		NewAR(2),
		NewMovingAverage(4),
	} {
		if f.Name() == "" {
			t.Error("unnamed forecaster")
		}
		if _, err := f.Forecast(hist, 4); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

func TestPublicSimulateWithBaselines(t *testing.T) {
	tr := Workloads["workday12h"](1)
	opts := DefaultSimOptions(6, 8)

	recs := []Recommender{NewControl(6)}
	if r, err := NewKubernetesVPA(8); err != nil {
		t.Fatal(err)
	} else {
		recs = append(recs, r)
	}
	if r, err := NewOpenShiftVPA(8); err != nil {
		t.Fatal(err)
	} else {
		recs = append(recs, r)
	}
	if r, err := NewAutopilot(8); err != nil {
		t.Fatal(err)
	} else {
		recs = append(recs, r)
	}
	if r, err := NewReactive(DefaultConfig(8), 40); err != nil {
		t.Fatal(err)
	} else {
		recs = append(recs, r)
	}
	if r, err := NewProactive(DefaultConfig(8), NewSeasonalNaive(360), 40, 30, 360); err != nil {
		t.Fatal(err)
	} else {
		recs = append(recs, r)
	}

	for _, rec := range recs {
		res, err := Simulate(tr.Clone(), rec, opts)
		if err != nil {
			t.Fatalf("%s: %v", rec.Name(), err)
		}
		if res.Minutes != tr.Len() {
			t.Errorf("%s: minutes = %d", rec.Name(), res.Minutes)
		}
	}
}

func TestPublicWorkloadsAndAlibaba(t *testing.T) {
	for name, gen := range Workloads {
		tr := gen(1)
		if tr.Len() == 0 {
			t.Errorf("workload %s is empty", name)
		}
	}
	if len(AlibabaIDs) != 11 {
		t.Errorf("AlibabaIDs = %d", len(AlibabaIDs))
	}
	tr, err := AlibabaTrace("c_1", 0)
	if err != nil || tr.Len() == 0 {
		t.Errorf("AlibabaTrace: %v", err)
	}
	if _, err := AlibabaTrace("nope", 0); err == nil {
		t.Error("unknown trace should error")
	}
}

func TestPublicTuning(t *testing.T) {
	tr := Workloads["workday12h"](2)
	simOpts := DefaultSimOptions(6, 8)
	evals, err := RandomSearch(tr, TuningOptions{Samples: 10, Seed: 1, Sim: &simOpts, SeasonMinutes: 720})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 {
		t.Fatal("no evaluations")
	}
	front := ParetoFrontier(evals)
	if len(front) == 0 {
		t.Error("empty frontier")
	}
	if _, err := BestForAlpha(1, evals); err != nil {
		t.Error(err)
	}
}

func TestPublicRunLive(t *testing.T) {
	demand := Workloads["workday12h"](3)
	short, err := demand.Resample(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ScheduleForCores("api-live", MixedOLTP(), TracePattern(short), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewReactive(DefaultConfig(6), 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLive(sched, rec, DatabaseA(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.CompletedTxns <= 0 {
		t.Error("no transactions completed")
	}
	// Database presets carry the paper's replica counts.
	if DatabaseA(2, 8).Replicas != 3 || DatabaseB(2, 8).Replicas != 2 {
		t.Error("preset replica counts wrong")
	}
}

func TestPublicStitch(t *testing.T) {
	src := Workloads["customer"](1)
	sw, err := Stitch(src, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Segments) == 0 {
		t.Error("no stitched segments")
	}
	if err := sw.Schedule().Validate(); err != nil {
		t.Error(err)
	}
}

func TestPublicNewTrace(t *testing.T) {
	tr := NewTrace("x", time.Minute, []float64{1, 2})
	if tr.Len() != 2 {
		t.Errorf("len = %d", tr.Len())
	}
}
