package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func minuteTrace(values ...float64) *Trace {
	return New("t", time.Minute, values)
}

func TestNewCopiesValues(t *testing.T) {
	src := []float64{1, 2, 3}
	tr := New("x", time.Minute, src)
	src[0] = 99
	if tr.Values[0] != 1 {
		t.Error("New must copy its input")
	}
}

func TestLenDurationAt(t *testing.T) {
	tr := minuteTrace(1, 2, 3)
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Duration() != 3*time.Minute {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if tr.At(-5) != 1 || tr.At(0) != 1 || tr.At(2) != 3 || tr.At(99) != 3 {
		t.Error("At should clamp indices")
	}
	empty := minuteTrace()
	if empty.At(0) != 0 {
		t.Error("At on empty trace should be 0")
	}
}

func TestWindow(t *testing.T) {
	tr := minuteTrace(0, 1, 2, 3, 4)
	if got := tr.Window(1, 3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Window(1,3) = %v", got)
	}
	if got := tr.Window(-10, 2); len(got) != 2 {
		t.Errorf("Window(-10,2) = %v", got)
	}
	if got := tr.Window(3, 100); len(got) != 2 {
		t.Errorf("Window(3,100) = %v", got)
	}
	if got := tr.Window(4, 2); got != nil {
		t.Errorf("inverted window = %v", got)
	}
}

func TestScaleClipRound(t *testing.T) {
	tr := minuteTrace(0.5, 1.4, 2.6)
	tr.Scale(2)
	if tr.Values[0] != 1 || tr.Values[1] != 2.8 || tr.Values[2] != 5.2 {
		t.Errorf("Scale: %v", tr.Values)
	}
	tr.Clip(1.5, 5)
	if tr.Values[0] != 1.5 || tr.Values[2] != 5 {
		t.Errorf("Clip: %v", tr.Values)
	}
	tr.Round()
	if tr.Values[0] != 2 || tr.Values[1] != 3 || tr.Values[2] != 5 {
		t.Errorf("Round: %v", tr.Values)
	}
}

func TestSanitize(t *testing.T) {
	tr := minuteTrace(1, math.NaN(), math.Inf(1), -3, 2)
	fixed := tr.Sanitize()
	if fixed != 3 {
		t.Errorf("fixed = %d, want 3", fixed)
	}
	for i, v := range tr.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("value %d not sanitized: %v", i, v)
		}
	}
}

func TestResampleDownAverages(t *testing.T) {
	// 10s samples -> 1min buckets of 6 samples each.
	vals := make([]float64, 12)
	for i := range vals {
		vals[i] = float64(i)
	}
	tr := New("fine", 10*time.Second, vals)
	out, err := tr.Resample(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("Len = %d, want 2", out.Len())
	}
	if out.Values[0] != 2.5 || out.Values[1] != 8.5 {
		t.Errorf("Resample = %v", out.Values)
	}
	if out.Interval != time.Minute {
		t.Errorf("Interval = %v", out.Interval)
	}
}

func TestResampleUpRepeats(t *testing.T) {
	tr := minuteTrace(1, 2)
	out, err := tr.Resample(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2, 2}
	if out.Len() != 4 {
		t.Fatalf("Len = %d", out.Len())
	}
	for i := range want {
		if out.Values[i] != want[i] {
			t.Errorf("upsample[%d] = %v, want %v", i, out.Values[i], want[i])
		}
	}
}

func TestResampleIdentityAndErrors(t *testing.T) {
	tr := minuteTrace(1, 2, 3)
	same, err := tr.Resample(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if same == tr {
		t.Error("identity resample should clone")
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("zero interval should error")
	}
	bad := &Trace{Name: "x", Values: []float64{1}}
	if _, err := bad.Resample(time.Minute); err == nil {
		t.Error("unset source interval should error")
	}
}

func TestResamplePreservesMeanProperty(t *testing.T) {
	// Property: downsampling by an exact divisor preserves the mean.
	f := func(seed uint8) bool {
		n := 120
		vals := make([]float64, n)
		x := float64(seed)
		for i := range vals {
			x = math.Mod(x*1.7+3.1, 17)
			vals[i] = x
		}
		tr := New("p", time.Minute, vals)
		out, err := tr.Resample(10 * time.Minute)
		if err != nil {
			return false
		}
		var a, b float64
		for _, v := range vals {
			a += v
		}
		a /= float64(len(vals))
		for _, v := range out.Values {
			b += v
		}
		b /= float64(len(out.Values))
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	tr := minuteTrace(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	s := tr.Summarize()
	if s.Samples != 10 || s.Mean != 5.5 || s.Max != 10 || s.Min != 1 {
		t.Errorf("Summary = %+v", s)
	}
	if s.P50 != 5.5 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P90 < 9 || s.P90 > 10 {
		t.Errorf("P90 = %v", s.P90)
	}
	empty := minuteTrace()
	es := empty.Summarize()
	if es.Samples != 0 || es.Mean != 0 {
		t.Errorf("empty Summary = %+v", es)
	}
}

func TestFeatureVector(t *testing.T) {
	tr := minuteTrace(2, 2, 2, 8)
	fv := tr.FeatureVector()
	if len(fv) != 6 {
		t.Fatalf("feature vector length = %d", len(fv))
	}
	if fv[0] != 3.5 {
		t.Errorf("mean feature = %v", fv[0])
	}
	if fv[5] != 8.0/3.5 {
		t.Errorf("burstiness = %v", fv[5])
	}
	flat := minuteTrace()
	if got := flat.FeatureVector(); got[5] != 0 {
		t.Errorf("empty burstiness = %v", got[5])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := minuteTrace(1.5, 2.25, 0)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "t", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d != %d", got.Len(), tr.Len())
	}
	for i := range tr.Values {
		if got.Values[i] != tr.Values[i] {
			t.Errorf("value %d: %v != %v", i, got.Values[i], tr.Values[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "t", time.Minute); err == nil {
		t.Error("empty csv should error")
	}
	if _, err := ReadCSV(strings.NewReader("index,cpu_cores\n0,notanumber\n"), "t", time.Minute); err == nil {
		t.Error("bad float should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New("json", 30*time.Second, []float64{1, 2, 3})
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "json" || got.Interval != 30*time.Second || got.Len() != 3 {
		t.Errorf("round trip: %+v", got)
	}
	var bad Trace
	if err := json.Unmarshal([]byte(`{"name":"x","interval_ms":0,"values":[]}`), &bad); err == nil {
		t.Error("zero interval JSON should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := minuteTrace(1, 2)
	c := tr.Clone()
	c.Values[0] = 99
	if tr.Values[0] != 1 {
		t.Error("Clone must not share backing array")
	}
}

func TestStringContainsName(t *testing.T) {
	tr := minuteTrace(1)
	if s := tr.String(); !strings.Contains(s, "t:") && !strings.Contains(s, "Trace{") {
		t.Errorf("String = %q", s)
	}
}

func TestPeak(t *testing.T) {
	if p := minuteTrace(1, 7.5, 3).Peak(); p != 7.5 {
		t.Errorf("Peak = %v, want 7.5", p)
	}
	empty := New("empty", time.Minute, nil)
	if p := empty.Peak(); p != 0 {
		t.Errorf("Peak of empty trace = %v, want 0", p)
	}
	// NaN samples must not poison the scan; all-negative traces peak at 0
	// (a ladder bound can never be negative).
	weird := New("weird", time.Minute, []float64{math.NaN(), -4, 2.25, math.NaN()})
	if p := weird.Peak(); p != 2.25 {
		t.Errorf("Peak with NaN = %v, want 2.25", p)
	}
	neg := New("neg", time.Minute, []float64{-3, -1})
	if p := neg.Peak(); p != 0 {
		t.Errorf("Peak of negative trace = %v, want 0", p)
	}
}
