package parallel

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestForEachStatsAccounting(t *testing.T) {
	st := NewStats()
	err := ForEachStats(context.Background(), 10, 4, st, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks() != 10 {
		t.Errorf("Tasks = %d, want 10", st.Tasks())
	}
	if st.Workers() != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers())
	}
	// The first claim leaves 9 tasks pending; the recorded max can only
	// be lower if claims race, never higher.
	if q := st.MaxQueueDepth(); q < 1 || q > 9 {
		t.Errorf("MaxQueueDepth = %d, want in [1, 9]", q)
	}
	if st.Latency().Count() != 10 {
		t.Errorf("latency samples = %d, want 10", st.Latency().Count())
	}
	if st.BusyNanos() < 10*int64(time.Millisecond) {
		t.Errorf("BusyNanos = %d, want ≥ 10ms of summed sleeps", st.BusyNanos())
	}
	if st.ElapsedNanos() <= 0 {
		t.Error("ElapsedNanos not recorded")
	}
	if u := st.Utilization(); u <= 0 || u > 1 {
		t.Errorf("Utilization = %v, want in (0, 1]", u)
	}
}

func TestForEachStatsSequentialPath(t *testing.T) {
	st := NewStats()
	if err := ForEachStats(context.Background(), 5, 1, st, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st.Tasks() != 5 || st.Workers() != 1 {
		t.Errorf("tasks/workers = %d/%d, want 5/1", st.Tasks(), st.Workers())
	}
	if st.MaxQueueDepth() != 4 {
		t.Errorf("MaxQueueDepth = %d, want 4 (sequential claims are ordered)", st.MaxQueueDepth())
	}
}

func TestForEachStatsNilStatsDelegates(t *testing.T) {
	ran := 0
	if err := ForEachStats(context.Background(), 3, 1, nil, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("ran = %d, want 3", ran)
	}
}

func TestForEachStatsPreservesErrorContract(t *testing.T) {
	st := NewStats()
	sentinel := errors.New("boom")
	err := ForEachStats(context.Background(), 8, 4, st, func(i int) error {
		if i == 2 || i == 6 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Failing tasks still count: the pool ran all of them.
	if st.Tasks() != 8 {
		t.Errorf("Tasks = %d, want 8", st.Tasks())
	}
}

func TestForEachStatsAccumulatesAcrossRuns(t *testing.T) {
	st := NewStats()
	for r := 0; r < 3; r++ {
		if err := ForEachStats(context.Background(), 4, 2, st, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if st.Tasks() != 12 {
		t.Errorf("Tasks = %d, want 12 accumulated", st.Tasks())
	}
}
