package pvp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"caasper/internal/stats"
)

func defaultRange() SKURange {
	return SKURange{MinCores: 1, MaxCores: 16, PricePerCore: 1}
}

func TestSKURangeValidate(t *testing.T) {
	if err := (SKURange{MinCores: 0, MaxCores: 4}).Validate(); err == nil {
		t.Error("MinCores 0 should fail")
	}
	if err := (SKURange{MinCores: 4, MaxCores: 2}).Validate(); err == nil {
		t.Error("inverted range should fail")
	}
	if err := defaultRange().Validate(); err != nil {
		t.Error(err)
	}
	if got := defaultRange().Count(); got != 16 {
		t.Errorf("Count = %d", got)
	}
}

func TestBuildCurveValidation(t *testing.T) {
	if _, err := BuildCurve(nil, defaultRange()); err == nil {
		t.Error("empty window should error")
	}
	if _, err := BuildCurve([]float64{1}, SKURange{}); err == nil {
		t.Error("bad range should error")
	}
}

func TestCurveMonotoneNonDecreasing(t *testing.T) {
	rng := stats.NewRNG(1)
	usage := make([]float64, 500)
	for i := range usage {
		usage[i] = rng.Float64() * 12
	}
	c, err := BuildCurve(usage, defaultRange())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Performance < c.Points[i-1].Performance {
			t.Fatalf("curve decreases at %d cores", c.Points[i].Cores)
		}
	}
	for _, s := range c.Slopes() {
		if s < 0 {
			t.Fatal("negative slope")
		}
	}
}

func TestCurveEndpointValues(t *testing.T) {
	// All usage below 1 core: every SKU has performance 1.
	low := []float64{0.2, 0.3, 0.5}
	c, err := BuildCurve(low, defaultRange())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if p.Performance != 1 {
			t.Errorf("SKU %d performance = %v, want 1", p.Cores, p.Performance)
		}
	}
	// All usage way above the max SKU: every SKU throttles.
	high := []float64{100, 120}
	c, err = BuildCurve(high, defaultRange())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if p.Performance != 0 {
			t.Errorf("SKU %d performance = %v, want 0", p.Cores, p.Performance)
		}
	}
}

func TestAtCapCountsAsThrottled(t *testing.T) {
	// Samples pinned exactly at 8 cores (an 8-core cap) must count as
	// throttled for the 8-core SKU — the core insight that makes slope
	// detection work on capped telemetry.
	usage := make([]float64, 100)
	for i := range usage {
		usage[i] = 8
	}
	c, err := BuildCurve(usage, defaultRange())
	if err != nil {
		t.Fatal(err)
	}
	if perf := c.Performance(8); perf != 0 {
		t.Errorf("performance at cap = %v, want 0 (pinned samples are throttling)", perf)
	}
	if perf := c.Performance(9); perf != 1 {
		t.Errorf("performance one core up = %v, want 1", perf)
	}
	// The slope at 8 cores is therefore maximal.
	if s := c.SlopeAt(8); math.Abs(s-SlopeScale) > 1e-9 {
		t.Errorf("slope at cap = %v, want %v", s, SlopeScale)
	}
}

func TestThrottledWorkloadSteepSlope(t *testing.T) {
	// Figure 5 shape: capped-at-8 usage gives a steep slope at 8 cores;
	// a healthy workload at 32 cores gives a moderate slope.
	rng := stats.NewRNG(2)
	capped := make([]float64, 400)
	for i := range capped {
		v := 8.5 + rng.NormFloat64()*1.5
		if v > 8 {
			v = 8
		}
		if v < 0 {
			v = 0
		}
		capped[i] = v
	}
	c, err := BuildCurve(capped, SKURange{MinCores: 1, MaxCores: 32})
	if err != nil {
		t.Fatal(err)
	}
	if s := c.SlopeAt(8); s < 2 {
		t.Errorf("throttled slope = %v, want steep (≥2)", s)
	}

	healthy := make([]float64, 400)
	for i := range healthy {
		healthy[i] = 24 + rng.NormFloat64()*5
	}
	h, err := BuildCurve(healthy, SKURange{MinCores: 1, MaxCores: 40})
	if err != nil {
		t.Fatal(err)
	}
	s32 := h.SlopeAt(32)
	if s32 >= 2 || s32 < 0 {
		t.Errorf("healthy slope = %v, want moderate (<2)", s32)
	}
}

func TestSlopeAtBounds(t *testing.T) {
	usage := []float64{3, 3, 3}
	c, _ := BuildCurve(usage, defaultRange())
	if s := c.SlopeAt(16); s != 0 {
		t.Errorf("slope at top of ladder = %v, want 0", s)
	}
	if s := c.SlopeAt(-5); s != c.Slopes()[0] {
		t.Errorf("slope below ladder should clamp to first slope")
	}
	// Single-SKU ladder has no slopes.
	one, _ := BuildCurve(usage, SKURange{MinCores: 4, MaxCores: 4})
	if s := one.SlopeAt(4); s != 0 {
		t.Errorf("single-SKU slope = %v", s)
	}
}

func TestPerformanceClamping(t *testing.T) {
	c, _ := BuildCurve([]float64{2}, defaultRange())
	if c.Performance(-3) != c.Points[0].Performance {
		t.Error("below-range should clamp to first point")
	}
	if c.Performance(99) != c.Points[len(c.Points)-1].Performance {
		t.Error("above-range should clamp to last point")
	}
}

func TestFlatTailDetection(t *testing.T) {
	// Over-provisioned: usage ~2-3, allocation 12 (Figure 7b).
	rng := stats.NewRNG(3)
	usage := make([]float64, 300)
	for i := range usage {
		usage[i] = 2.5 + rng.NormFloat64()*0.4
	}
	c, err := BuildCurve(usage, defaultRange())
	if err != nil {
		t.Fatal(err)
	}
	if !c.FlatTailAt(12) {
		t.Error("12 cores should be on the flat tail")
	}
	if c.FlatTailAt(2) {
		t.Error("2 cores should not be on the flat tail")
	}
}

func TestWalkDown(t *testing.T) {
	rng := stats.NewRNG(4)
	usage := make([]float64, 300)
	for i := range usage {
		usage[i] = 2.8 + rng.NormFloat64()*0.3
	}
	c, err := BuildCurve(usage, defaultRange())
	if err != nil {
		t.Fatal(err)
	}
	// From 12 cores, walking down at perfTarget 1.0 should land near 4
	// cores (the cheapest SKU fully covering ~3.5-core peaks) — roughly
	// the paper's "scale down by almost 8 cores" example.
	got := c.WalkDown(12, 1.0)
	if got < 3 || got > 5 {
		t.Errorf("WalkDown(12) = %d, want 3-5", got)
	}
	// Walking down from the floor stays put.
	if c.WalkDown(1, 1.0) != 1 {
		t.Error("WalkDown at floor should stay")
	}
	// With an unreachable target nothing changes.
	heavy := make([]float64, 100)
	for i := range heavy {
		heavy[i] = 50
	}
	hc, _ := BuildCurve(heavy, defaultRange())
	if hc.WalkDown(10, 1.0) != 10 {
		t.Error("unreachable target should not move")
	}
}

func TestSkewNonNegative(t *testing.T) {
	f := func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		usage := make([]float64, 50)
		for i := range usage {
			usage[i] = rng.Float64() * 20
		}
		c, err := BuildCurve(usage, defaultRange())
		if err != nil {
			return false
		}
		return c.Skew() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurvePricing(t *testing.T) {
	c, _ := BuildCurve([]float64{1}, SKURange{MinCores: 2, MaxCores: 4, PricePerCore: 10})
	if c.Points[0].MonthlyPrice != 20 || c.Points[2].MonthlyPrice != 40 {
		t.Errorf("prices = %v, %v", c.Points[0].MonthlyPrice, c.Points[2].MonthlyPrice)
	}
	// Zero price defaults to 1 per core.
	d, _ := BuildCurve([]float64{1}, SKURange{MinCores: 2, MaxCores: 3})
	if d.Points[0].MonthlyPrice != 2 {
		t.Errorf("default price = %v", d.Points[0].MonthlyPrice)
	}
}

func TestCurveString(t *testing.T) {
	c, _ := BuildCurve([]float64{1}, defaultRange())
	if !strings.Contains(c.String(), "Curve{") {
		t.Errorf("String = %q", c.String())
	}
	empty := &Curve{}
	if empty.String() != "Curve{}" {
		t.Errorf("empty String = %q", empty.String())
	}
}

func TestScalingFactorShape(t *testing.T) {
	p := DefaultScalingFactorParams()
	// SF is zero-floored and monotone in s.
	if sf := ScalingFactor(0, 0, p); math.Abs(sf-math.Log(2)) > 1e-9 {
		t.Errorf("SF(0) = %v, want ln(cmin)=ln 2", sf)
	}
	prev := -1.0
	for s := 0.0; s <= 10; s += 0.5 {
		sf := ScalingFactor(s, 5, p)
		if sf < prev {
			t.Fatalf("SF not monotone at s=%v", s)
		}
		prev = sf
	}
	// Higher skew scales more aggressively.
	if ScalingFactor(2, 10, p) <= ScalingFactor(2, 1, p) {
		t.Error("higher skew should give larger SF")
	}
	// Logarithmic decay: the increment shrinks as s grows.
	d1 := ScalingFactor(2, 5, p) - ScalingFactor(1, 5, p)
	d2 := ScalingFactor(9, 5, p) - ScalingFactor(8, 5, p)
	if d2 >= d1 {
		t.Errorf("SF should decelerate: d1=%v d2=%v", d1, d2)
	}
	// Invalid inputs are sanitised.
	if sf := ScalingFactor(math.NaN(), -3, p); math.IsNaN(sf) || sf < 0 {
		t.Errorf("SF of garbage = %v", sf)
	}
	// Log argument floored at 1 → SF never negative.
	if sf := ScalingFactor(0, 0, ScalingFactorParams{CMin: 0.1, SkewWeight: 1}); sf < 0 {
		t.Errorf("SF = %v, want ≥ 0", sf)
	}
}

func TestScalingFactorPaperExample(t *testing.T) {
	// Paper Figure 4: slope 1.38 with strong skew recommends scaling up
	// by ~3.7 cores (rounded down to 3 by the whole-core invariant).
	// With skewWeight tuned to the paper's calibration, ln(skew·s+2)
	// ≈ 3.7 requires skew·s ≈ 39; we verify the formula reproduces that.
	p := ScalingFactorParams{CMin: 2, SkewWeight: 28.5}
	sf := ScalingFactor(1.38, 1.0, p)
	if math.Abs(sf-3.73) > 0.05 {
		t.Errorf("SF = %v, want ≈3.73", sf)
	}
}

func TestScalingFactorCurve(t *testing.T) {
	slopes, factors := ScalingFactorCurve(2, DefaultScalingFactorParams(), 10, 21)
	if len(slopes) != 21 || len(factors) != 21 {
		t.Fatalf("lengths = %d, %d", len(slopes), len(factors))
	}
	if slopes[0] != 0 || slopes[20] != 10 {
		t.Errorf("slope endpoints = %v, %v", slopes[0], slopes[20])
	}
	for i := 1; i < len(factors); i++ {
		if factors[i] < factors[i-1] {
			t.Fatal("factors not monotone")
		}
	}
	// Degenerate n clamps to 2.
	s2, f2 := ScalingFactorCurve(1, DefaultScalingFactorParams(), 5, 1)
	if len(s2) != 2 || len(f2) != 2 {
		t.Errorf("clamped lengths = %d, %d", len(s2), len(f2))
	}
}

// ---------------------------------------------------------------------------
// Histogram curve build equivalence (the O(samples + SKUs) rebuild)

// bruteExceedCurve is the direct O(samples × SKUs) definition the histogram
// build must reproduce bit-for-bit.
func bruteExceedCurve(usage []float64, r SKURange) []float64 {
	const eps = 0.02
	out := make([]float64, 0, r.Count())
	for cores := r.MinCores; cores <= r.MaxCores; cores++ {
		capf := float64(cores)
		var exceed int
		for _, u := range usage {
			if u > capf*(1-eps) {
				exceed++
			}
		}
		out = append(out, 1-float64(exceed)/float64(len(usage)))
	}
	return out
}

func TestBuildCurveMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(99)
	ranges := []SKURange{
		{MinCores: 1, MaxCores: 16},
		{MinCores: 2, MaxCores: 32},
		{MinCores: 5, MaxCores: 5},
		{MinCores: 1, MaxCores: 128},
	}
	var c Curve
	for trial := 0; trial < 200; trial++ {
		r := ranges[trial%len(ranges)]
		n := 1 + trial%60
		usage := make([]float64, n)
		for i := range usage {
			switch trial % 5 {
			case 0:
				usage[i] = rng.Range(0, float64(r.MaxCores)+4)
			case 1:
				// Exactly at SKU boundaries: cores·0.98, the tie case.
				usage[i] = float64(1+i%r.MaxCores) * 0.98
			case 2:
				usage[i] = -rng.Range(0, 3) // below the whole ladder
			case 3:
				usage[i] = float64(r.MaxCores) * 10 // above the ladder
			default:
				usage[i] = rng.Range(0, float64(r.MaxCores))
			}
		}
		if trial%7 == 0 {
			usage[0] = math.NaN()
		}
		if trial%11 == 0 {
			usage[n-1] = math.Inf(1)
		}
		if trial%13 == 0 && n > 1 {
			usage[n/2] = math.Inf(-1)
		}
		if err := BuildCurveInto(&c, usage, r); err != nil {
			t.Fatal(err)
		}
		want := bruteExceedCurve(usage, r)
		if len(c.Points) != len(want) {
			t.Fatalf("trial %d: %d points, want %d", trial, len(c.Points), len(want))
		}
		for i, w := range want {
			if c.Points[i].Performance != w {
				t.Fatalf("trial %d range %+v: point %d perf %v, want %v (usage %v)",
					trial, r, i, c.Points[i].Performance, w, usage)
			}
		}
	}
}

// TestBuildCurveIntoSteadyStateZeroAllocs: the per-decision rebuild must
// not allocate once the curve's scratch buffers are warm.
func TestBuildCurveIntoSteadyStateZeroAllocs(t *testing.T) {
	r := defaultRange()
	usage := make([]float64, 40)
	for i := range usage {
		usage[i] = float64((i*37)%17) + 0.5
	}
	var c Curve
	if err := BuildCurveInto(&c, usage, r); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := BuildCurveInto(&c, usage, r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("BuildCurveInto steady-state allocs = %v, want 0", allocs)
	}
}
