// Package stats provides the statistical primitives that the CaaSPER
// autoscaler and its evaluation harness are built on: descriptive statistics
// (means, variances, quantiles, skewness), an exponentially decaying
// histogram (the primitive behind the Kubernetes VPA baseline), a paired
// Student t-test (used to validate simulator correctness, paper §5), k-means
// clustering (used to select representative traces, paper §6.3), and a small
// deterministic random-number façade.
//
// Everything in this package is purely computational: no goroutines, no
// wall-clock time, no allocation beyond what the inputs require. All
// functions treat NaN and Inf inputs as programmer error unless documented
// otherwise.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by functions that cannot operate on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// Samples of size < 2 have zero variance by convention.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks (the "R-7" method used by most
// statistics packages). It returns an error for an empty sample and clamps
// q into [0, 1].
//
// A single quantile needs at most two order statistics, not a total
// order, so the implementation copies xs once and partially selects in
// the copy (O(n) expected) instead of fully sorting (O(n log n)). The
// result is bit-identical to sorting first: quickselect places the exact
// k-th smallest element, and the interpolation formula is unchanged.
func Quantile(xs []float64, q float64) (float64, error) {
	scratch := make([]float64, len(xs))
	copy(scratch, xs)
	return QuantileInPlace(scratch, q)
}

// QuantileInPlace is Quantile evaluated destructively in the caller's
// buffer: xs is partially reordered (no allocation). Hot-path callers
// (one quantile per decision tick) keep a scratch copy and reuse it.
// Bit-identical to Quantile and to QuantileSorted on a sorted copy.
func QuantileInPlace(xs []float64, q float64) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if n == 1 {
		return xs[0], nil
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	selectNth(xs, lo)
	vlo := xs[lo]
	if lo == hi {
		return vlo, nil
	}
	// hi == lo+1, and after selection everything right of lo is ≥ the
	// lo-th order statistic, so the hi-th order statistic is the minimum
	// of the right part.
	vhi := Min(xs[lo+1:])
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac, nil
}

// selectNth partially reorders xs so that xs[k] holds the k-th smallest
// element, everything left of k is ≤ xs[k] and everything right is ≥
// xs[k] (the classic nth-element contract). Deterministic median-of-three
// pivoting; small ranges fall back to insertion sort. Expected O(n).
func selectNth(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	for hi-lo > 12 {
		// Median-of-three pivot, moved to xs[lo].
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]

		// Hoare partition.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if xs[i] >= pivot {
					break
				}
			}
			for {
				j--
				if xs[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		// Elements lo..j are ≤ pivot, j+1..hi are ≥ pivot.
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	// Insertion sort the remaining small range; xs[k] lands exactly.
	for i := lo + 1; i <= hi; i++ {
		v := xs[i]
		j := i - 1
		for j >= lo && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// QuantileSorted is Quantile for inputs already sorted ascending. It avoids
// the defensive copy; callers on hot paths (the simulator evaluates a
// quantile per decision) should sort once and reuse.
func QuantileSorted(sorted []float64, q float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Skewness returns the Fisher–Pearson moment coefficient of skewness of xs
// (the adjusted, bias-corrected version used by common statistics packages).
// Samples of size < 3 or with zero variance have zero skewness by convention.
//
// CaaSPER uses the skewness of the PvP-curve slope distribution to modulate
// the scaling factor (paper Eq. 3): a strongly skewed slope distribution
// means the probability mass of the usage distribution is concentrated at
// one end, and scaling should be correspondingly more aggressive.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 <= 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	// Bias correction: G1 = g1 * sqrt(n(n-1)) / (n-2).
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Slopes returns the forward differences of ys: out[i] = ys[i+1] - ys[i].
// The result has length len(ys)-1; a slice shorter than 2 yields nil.
func Slopes(ys []float64) []float64 {
	if len(ys) < 2 {
		return nil
	}
	out := make([]float64, len(ys)-1)
	for i := 0; i+1 < len(ys); i++ {
		out[i] = ys[i+1] - ys[i]
	}
	return out
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a and slope b. xs and ys must have equal length ≥ 2; degenerate
// inputs (zero x-variance) yield b = 0 and a = mean(ys).
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return my, 0, nil
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the inclusive range [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MAE returns the mean absolute error between predictions and actuals.
func MAE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, errors.New("stats: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - actual[i])
	}
	return s / float64(len(pred)), nil
}

// MAPE returns the mean absolute percentage error between predictions and
// actuals, skipping points where the actual value is zero (they would
// otherwise divide by zero). If every actual is zero it returns ErrEmpty.
func MAPE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, errors.New("stats: MAPE length mismatch")
	}
	var s float64
	var n int
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs((pred[i] - actual[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return s / float64(n), nil
}
