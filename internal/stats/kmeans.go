package stats

import (
	"errors"
	"math"
)

// KMeansResult holds the outcome of a k-means clustering run.
type KMeansResult struct {
	// Centroids are the final cluster centres, one per cluster.
	Centroids [][]float64
	// Assignments maps each input point to its cluster index.
	Assignments []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeans clusters the points into k clusters using Lloyd's algorithm with
// k-means++ seeding. The paper (§6.3) uses k-means over trace feature
// vectors to select representative Alibaba workloads; internal/experiments
// does the same over synthetic trace features.
//
// rng supplies determinism; points must be non-empty, all of equal
// dimension, and k must satisfy 1 ≤ k ≤ len(points).
func KMeans(points [][]float64, k int, maxIter int, rng *RNG) (KMeansResult, error) {
	if len(points) == 0 {
		return KMeansResult{}, ErrEmpty
	}
	if k < 1 || k > len(points) {
		return KMeansResult{}, errors.New("stats: k out of range")
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return KMeansResult{}, errors.New("stats: inconsistent point dimensions")
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if rng == nil {
		rng = NewRNG(1)
	}

	centroids := kmeansPPSeed(points, k, rng)
	assign := make([]int, len(points))
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				d := sqDist(p, cen)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				next[c][j] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Empty cluster: re-seed on the farthest point.
				next[c] = append([]float64(nil), farthestPoint(points, centroids)...)
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
		}
		centroids = next
	}

	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return KMeansResult{
		Centroids:   centroids,
		Assignments: assign,
		Inertia:     inertia,
		Iterations:  iter,
	}, nil
}

// Representatives returns, for each cluster, the index of the input point
// closest to that cluster's centroid — the "representative trace" selection
// used in the paper's Alibaba evaluation.
func (r KMeansResult) Representatives(points [][]float64) []int {
	reps := make([]int, len(r.Centroids))
	best := make([]float64, len(r.Centroids))
	for c := range best {
		best[c] = math.Inf(1)
		reps[c] = -1
	}
	for i, p := range points {
		c := r.Assignments[i]
		d := sqDist(p, r.Centroids[c])
		if d < best[c] {
			best[c] = d
			reps[c] = i
		}
	}
	return reps
}

func kmeansPPSeed(points [][]float64, k int, rng *RNG) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := rng.Intn(len(points))
	centroids = append(centroids, clonePoint(points[first]))
	dists := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(p, c); dd < d {
					d = dd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with existing centroids; duplicate one.
			centroids = append(centroids, clonePoint(points[rng.Intn(len(points))]))
			continue
		}
		target := rng.Float64() * total
		var cum float64
		chosen := len(points) - 1
		for i, d := range dists {
			cum += d
			if cum >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, clonePoint(points[chosen]))
	}
	return centroids
}

func farthestPoint(points, centroids [][]float64) []float64 {
	bestIdx, bestD := 0, -1.0
	for i, p := range points {
		d := math.Inf(1)
		for _, c := range centroids {
			if dd := sqDist(p, c); dd < d {
				d = dd
			}
		}
		if d > bestD {
			bestD, bestIdx = d, i
		}
	}
	return points[bestIdx]
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clonePoint(p []float64) []float64 {
	return append([]float64(nil), p...)
}
