package tuning

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// The tentpole guarantee of the parallel evaluation engine: the search is
// bit-identical for every worker count, because combinations are sampled
// sequentially from the single RNG stream before evaluation starts and
// every evaluation lands in an index-addressed slot.
func TestRandomSearchDeterministicAcrossWorkerCounts(t *testing.T) {
	tr := shortCyclicalTrace()
	run := func(workers int) ([]Evaluation, SearchReport) {
		t.Helper()
		evals, report, err := RandomSearchReport(tr, SearchOptions{
			Samples:       24,
			Seed:          11,
			SeasonMinutes: 6 * 60,
			Workers:       workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return evals, report
	}

	// Pool runtime stats (latency, utilization, worker count) are
	// wall-clock and legitimately vary across runs; the determinism
	// contract covers the outcome accounting only.
	deterministic := func(r SearchReport) SearchReport {
		return SearchReport{
			Sampled:     r.Sampled,
			Evaluated:   r.Evaluated,
			Skipped:     r.Skipped,
			FirstSkip:   r.FirstSkip,
			SkipReasons: r.SkipReasons,
		}
	}

	want, wantReport := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, gotReport := run(workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: evaluations differ from sequential run", workers)
		}
		if !reflect.DeepEqual(deterministic(gotReport), deterministic(wantReport)) {
			t.Errorf("workers=%d: report = %+v, want %+v", workers, gotReport, wantReport)
		}
	}
}

func TestRandomSearchReportAccounting(t *testing.T) {
	tr := shortCyclicalTrace()
	evals, report, err := RandomSearchReport(tr, SearchOptions{
		Samples:       16,
		Seed:          5,
		SeasonMinutes: 6 * 60,
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sampled != 16 {
		t.Errorf("Sampled = %d, want 16", report.Sampled)
	}
	if report.Evaluated+report.Skipped != report.Sampled {
		t.Errorf("Evaluated %d + Skipped %d != Sampled %d",
			report.Evaluated, report.Skipped, report.Sampled)
	}
	if report.Evaluated != len(evals) {
		t.Errorf("Evaluated = %d, but %d evaluations returned", report.Evaluated, len(evals))
	}
	if report.Skipped == 0 && report.FirstSkip != "" {
		t.Errorf("FirstSkip = %q with no skips", report.FirstSkip)
	}
}

// A mis-bounded space used to thin the sample silently; now every skip is
// counted and an all-skip search fails loudly with the first reason.
func TestRandomSearchAllInvalidCombinationsError(t *testing.T) {
	tr := shortCyclicalTrace()
	space := DefaultSearchSpace()
	space.MinCores = [2]int{999, 999} // far above any derivable ladder
	_, report, err := RandomSearchReport(tr, SearchOptions{
		Samples: 8,
		Seed:    3,
		Space:   &space,
	})
	if err == nil {
		t.Fatal("all-invalid search should error")
	}
	if report.Skipped != 8 || report.Evaluated != 0 {
		t.Errorf("report = %+v, want 8 skipped / 0 evaluated", report)
	}
	if report.FirstSkip == "" {
		t.Error("FirstSkip should describe the rejected combination")
	}
}

func BenchmarkRandomSearchParallel(b *testing.B) {
	tr := shortCyclicalTrace()
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RandomSearch(tr, SearchOptions{
					Samples:       16,
					Seed:          3,
					SeasonMinutes: 6 * 60,
					Workers:       workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
