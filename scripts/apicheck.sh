#!/bin/sh
# Public-API drift gate: dump the exported symbols of the root caasper
# package (scripts/apidump) and diff them against the checked-in
# snapshot. A removed re-export or renamed constructor fails here as a
# byte diff instead of surprising downstream callers.
#
#   sh scripts/apicheck.sh            # verify against testdata/api.txt
#   UPDATE=1 sh scripts/apicheck.sh   # regenerate after an intentional change
set -eu

cd "$(dirname "$0")/.."

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

go run ./scripts/apidump | LC_ALL=C sort > "$OUT"

GOLD=testdata/api.txt
if [ "${UPDATE:-0}" = "1" ]; then
    cp "$OUT" "$GOLD"
    wc -l "$GOLD"
    echo "==> API snapshot regenerated in $GOLD"
    exit 0
fi

diff -u "$GOLD" "$OUT"
echo "==> OK: exported API matches $GOLD ($(wc -l < "$GOLD") symbols)"
