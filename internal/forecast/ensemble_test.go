package forecast

import (
	"errors"
	"strings"
	"testing"
)

type fixedForecaster struct {
	name string
	vals []float64
	err  error
}

func (f fixedForecaster) Name() string { return f.name }
func (f fixedForecaster) Forecast(_ []float64, horizon int) ([]float64, error) {
	if f.err != nil {
		return nil, f.err
	}
	out := make([]float64, horizon)
	for i := range out {
		out[i] = f.vals[i%len(f.vals)]
	}
	return out, nil
}

func TestEnsembleEmpty(t *testing.T) {
	e := &Ensemble{}
	if _, err := e.Forecast([]float64{1}, 3); err == nil {
		t.Error("empty ensemble should error")
	}
}

func TestEnsembleModes(t *testing.T) {
	members := []Forecaster{
		fixedForecaster{name: "a", vals: []float64{2}},
		fixedForecaster{name: "b", vals: []float64{4}},
		fixedForecaster{name: "c", vals: []float64{9}},
	}
	cases := []struct {
		mode EnsembleMode
		want float64
	}{
		{EnsembleMean, 5},
		{EnsembleMax, 9},
		{EnsembleMedian, 4},
	}
	for _, c := range cases {
		e := &Ensemble{Members: members, Mode: c.mode}
		got, err := e.Forecast([]float64{1, 2}, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			if v != c.want {
				t.Errorf("mode %v: forecast = %v, want %v", c.mode, v, c.want)
			}
		}
	}
	// Even-member median averages the middle pair.
	e := &Ensemble{Members: members[:2], Mode: EnsembleMedian}
	got, _ := e.Forecast([]float64{1}, 1)
	if got[0] != 3 {
		t.Errorf("even median = %v, want 3", got[0])
	}
}

func TestEnsembleSkipsFailingMembers(t *testing.T) {
	e := &Ensemble{
		Members: []Forecaster{
			fixedForecaster{name: "bad", err: errors.New("boom")},
			fixedForecaster{name: "ok", vals: []float64{7}},
		},
		Mode: EnsembleMean,
	}
	got, err := e.Forecast([]float64{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Errorf("forecast = %v, want surviving member's 7", got[0])
	}
	// All failing: first error surfaces.
	all := &Ensemble{Members: []Forecaster{
		fixedForecaster{name: "x", err: errors.New("first")},
		fixedForecaster{name: "y", err: errors.New("second")},
	}}
	if _, err := all.Forecast([]float64{1}, 1); err == nil || !strings.Contains(err.Error(), "first") {
		t.Errorf("err = %v, want first member's error", err)
	}
}

func TestEnsembleWithRealMembers(t *testing.T) {
	hist := sinusoid(240, 60, 5, 2)
	e := &Ensemble{
		Members: []Forecaster{
			&SeasonalNaive{Season: 60},
			&MovingAverage{Window: 30},
			Naive{},
		},
		Mode: EnsembleMax,
	}
	got, err := e.Forecast(hist, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("len = %d", len(got))
	}
	for _, v := range got {
		if v < 0 {
			t.Fatal("negative ensemble forecast")
		}
	}
	// Max-mode never under-predicts any member.
	sn, _ := (&SeasonalNaive{Season: 60}).Forecast(hist, 30)
	for i := range got {
		if got[i] < sn[i]-1e-9 {
			t.Fatalf("max ensemble below member at %d", i)
		}
	}
	if !strings.HasPrefix(e.Name(), "ensemble-max(") {
		t.Errorf("name = %q", e.Name())
	}
}

func TestEnsembleZeroHorizon(t *testing.T) {
	e := &Ensemble{Members: []Forecaster{Naive{}}}
	got, err := e.Forecast([]float64{1}, 0)
	if err != nil || got != nil {
		t.Errorf("zero horizon: %v, %v", got, err)
	}
}
