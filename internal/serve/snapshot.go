package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"caasper/internal/recommend"
)

// snapshotVersion is the checkpoint format version. Version 2 added the
// multi-resource tenant fields (all omitempty, so a CPU-only v2 tenant
// line is byte-identical to its v1 spelling); Restore still accepts v1
// checkpoints, whose tenants resume with RAM/disk/replicas at their
// config defaults.
const snapshotVersion = 2

// snapshotVersionV1 is the CPU-only predecessor Restore migrates from.
const snapshotVersionV1 = 1

// snapshotHeader is the first NDJSON line of a checkpoint.
type snapshotHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Tenants int    `json:"tenants"`
}

// snapshotTenant is one tenant's checkpoint line. PolicyState carries
// the recommend.StateSnapshotter payload (window, total, scratch memo);
// policies without the interface restore cold, flagged by HasState.
type snapshotTenant struct {
	ID       string           `json:"id"`
	Config   TenantConfig     `json:"config"`
	Cores    int              `json:"cores"`
	Minute   int              `json:"minute"`
	Seq      int64            `json:"seq"`
	HasState bool             `json:"has_state"`
	State    recommend.State  `json:"state,omitempty"`
	Log      []DecisionRecord `json:"log,omitempty"`
	// Multi-resource state (v2, omitted for CPU-only tenants): current
	// grants plus the between-decision peaks, so a restored tenant's next
	// multi decision is bit-identical too.
	RAMGB    int     `json:"ram_gb,omitempty"`
	DiskGB   int     `json:"disk_gb,omitempty"`
	Replicas int     `json:"replicas,omitempty"`
	RAMPeak  float64 `json:"ram_peak,omitempty"`
	DiskHigh float64 `json:"disk_high,omitempty"`
	CPUPeak  float64 `json:"cpu_peak,omitempty"`
}

// Snapshot checkpoints every tenant to path as versioned NDJSON: one
// header line, then one line per tenant in sorted ID order. The write is
// atomic (temp file + rename), so a crash mid-snapshot leaves the
// previous checkpoint intact. Each tenant serialises under its own
// lock; in-flight batches for other tenants keep draining.
func (s *Server) Snapshot(path string) error {
	ids := s.tenantIDs()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(snapshotHeader{Format: "caasper-serve", Version: snapshotVersion, Tenants: len(ids)}); err != nil {
		return err
	}
	for _, id := range ids {
		var st snapshotTenant
		ok := false
		s.lookupQuiet(id, func(t *tenantState) {
			st = snapshotTenant{
				ID:     t.id,
				Config: t.cfg,
				Cores:  t.cores,
				Minute: t.minute,
				Seq:    t.seq,
				Log:    t.log,
			}
			if t.cfg.multi() {
				st.RAMGB = t.ramGB
				st.DiskGB = t.diskGB
				st.Replicas = t.replicas
				st.RAMPeak = t.ramPeak
				st.DiskHigh = t.diskHigh
				st.CPUPeak = t.cpuPeak
			}
			if snap, can := t.rec.(recommend.StateSnapshotter); can {
				st.HasState = true
				st.State = snap.SnapshotState()
			}
			ok = true
		})
		if !ok {
			continue
		}
		if err := enc.Encode(st); err != nil {
			return err
		}
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	s.opts.Log.Infof("snapshot: %d tenants → %s", len(ids), path)
	return nil
}

// restoreIfPresent loads the checkpoint at path when one exists; a
// missing file is a cold start, not an error.
func (s *Server) restoreIfPresent(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	defer f.Close()
	return s.Restore(f)
}

// Restore rebuilds the tenant map from a Snapshot stream. Each tenant is
// reconstructed from its config (same policy, same knobs) and its
// serialised state is restored, so the first post-restore decision is
// bit-identical to the one the snapshotted server would have made next —
// the round-trip contract pinned by TestSnapshotRestartBitIdentical.
func (s *Server) Restore(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	if !sc.Scan() {
		return fmt.Errorf("serve: restore: empty snapshot")
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return fmt.Errorf("serve: restore: header: %w", err)
	}
	if hdr.Format != "caasper-serve" || (hdr.Version != snapshotVersion && hdr.Version != snapshotVersionV1) {
		return fmt.Errorf("serve: restore: unsupported snapshot format %q version %d", hdr.Format, hdr.Version)
	}
	n := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var st snapshotTenant
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			return fmt.Errorf("serve: restore: tenant line %d: %w", n+1, err)
		}
		t, err := s.newTenant(st.ID, st.Config)
		if err != nil {
			return fmt.Errorf("serve: restore: tenant %q: %w", st.ID, err)
		}
		t.cores = st.Cores
		t.minute = st.Minute
		t.seq = st.Seq
		t.log = st.Log
		if t.cfg.multi() {
			// v1 lines carry no multi fields: zero grants keep the
			// newTenant config defaults, peaks restart cold.
			if st.RAMGB > 0 {
				t.ramGB = st.RAMGB
			}
			if st.DiskGB > 0 {
				t.diskGB = st.DiskGB
			}
			if st.Replicas > 0 {
				t.replicas = st.Replicas
			}
			t.ramPeak = st.RAMPeak
			t.diskHigh = st.DiskHigh
			t.cpuPeak = st.CPUPeak
		}
		if st.HasState {
			snap, can := t.rec.(recommend.StateSnapshotter)
			if !can {
				return fmt.Errorf("serve: restore: tenant %q: policy %q lost its snapshot capability", st.ID, st.Config.Policy)
			}
			if err := snap.RestoreState(st.State); err != nil {
				return fmt.Errorf("serve: restore: tenant %q: %w", st.ID, err)
			}
		}
		sh := s.shardFor(st.ID)
		sh.mu.Lock()
		sh.tenants[st.ID] = t
		sh.mu.Unlock()
		n++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	if n != hdr.Tenants {
		return fmt.Errorf("serve: restore: snapshot truncated: header says %d tenants, found %d", hdr.Tenants, n)
	}
	s.opts.Log.Infof("restore: %d tenants from snapshot", n)
	return nil
}
