package baselines_test

import (
	"testing"

	"caasper/internal/recommend"

	. "caasper/internal/baselines"
)

// Compile-time interface checks.
var (
	_ recommend.Recommender = (*Control)(nil)
	_ recommend.Recommender = (*KubernetesVPA)(nil)
	_ recommend.Recommender = (*OpenShiftVPA)(nil)
	_ recommend.Recommender = (*Autopilot)(nil)
)

func TestControl(t *testing.T) {
	c := NewControl(14)
	if c.Name() != "control(14)" {
		t.Errorf("name = %q", c.Name())
	}
	c.Observe(0, 100)
	if got := c.Recommend(3); got != 14 {
		t.Errorf("control recommends %d, want fixed 14", got)
	}
	c.Reset()
	if got := c.Recommend(3); got != 14 {
		t.Error("reset must not change the fixed allocation")
	}
}

func TestKubernetesVPAValidation(t *testing.T) {
	bad := []KubernetesVPAOptions{
		{Percentile: 0, MinCores: 2, MaxCores: 8, HalfLifeMinutes: 60},
		{Percentile: 1.5, MinCores: 2, MaxCores: 8, HalfLifeMinutes: 60},
		{Percentile: 0.9, MinCores: 0, MaxCores: 8, HalfLifeMinutes: 60},
		{Percentile: 0.9, MinCores: 9, MaxCores: 8, HalfLifeMinutes: 60},
		{Percentile: 0.9, MinCores: 2, MaxCores: 8, HalfLifeMinutes: 0},
	}
	for i, o := range bad {
		if _, err := NewKubernetesVPA(o); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestKubernetesVPAColdStartHolds(t *testing.T) {
	v, err := NewKubernetesVPA(DefaultKubernetesVPAOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Recommend(5); got != 5 {
		t.Errorf("cold start = %d, want hold 5", got)
	}
}

func TestKubernetesVPAScalesUpButNotDown(t *testing.T) {
	// The paper's Figure 3b behaviour: scales up to ~8 after traffic
	// rises, then does NOT scale down in the low phase because the
	// decayed P90 stays high.
	opts := DefaultKubernetesVPAOptions(16)
	opts.SafetyMargin = 0 // paper-matched: limits = ceil(P90)+1
	v, err := NewKubernetesVPA(opts)
	if err != nil {
		t.Fatal(err)
	}
	minute := 0
	// 8 hours at ~7 cores.
	for i := 0; i < 8*60; i++ {
		v.Observe(minute, 7)
		minute++
	}
	up := v.Recommend(3)
	if up < 8 || up > 9 {
		t.Errorf("after high phase: %d, want ≈8", up)
	}
	// 8 hours at ~2.5 cores: with the 24h half-life the histogram P90
	// still remembers the peak.
	for i := 0; i < 8*60; i++ {
		v.Observe(minute, 2.5)
		minute++
	}
	down := v.Recommend(up)
	if down < up-1 {
		t.Errorf("after low phase: %d, should stay near %d (no scale-down)", down, up)
	}
}

func TestKubernetesVPAClampsAndReset(t *testing.T) {
	opts := DefaultKubernetesVPAOptions(6)
	v, _ := NewKubernetesVPA(opts)
	for i := 0; i < 100; i++ {
		v.Observe(i, 40)
	}
	if got := v.Recommend(4); got != 6 {
		t.Errorf("clamp to max: %d", got)
	}
	v.Reset()
	if got := v.Recommend(4); got != 4 {
		t.Errorf("after reset should hold: %d", got)
	}
	for i := 0; i < 100; i++ {
		v.Observe(i, 0.01)
	}
	if got := v.Recommend(4); got != 2 {
		t.Errorf("clamp to min: %d", got)
	}
}

func TestOpenShiftVPAValidation(t *testing.T) {
	bad := []OpenShiftVPAOptions{
		{LookbackMinutes: 1, HorizonMinutes: 5, MinCores: 2, MaxCores: 8},
		{LookbackMinutes: 10, HorizonMinutes: 0, MinCores: 2, MaxCores: 8},
		{LookbackMinutes: 10, HorizonMinutes: 5, MinCores: 0, MaxCores: 8},
		{LookbackMinutes: 10, HorizonMinutes: 5, MinCores: 9, MaxCores: 8},
	}
	for i, o := range bad {
		if _, err := NewOpenShiftVPA(o); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestOpenShiftVPAColdStartPredictsLow(t *testing.T) {
	o, err := NewOpenShiftVPA(DefaultOpenShiftVPAOptions(14))
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Recommend(14); got != 2 {
		t.Errorf("cold start = %d, want MinCores 2 (the §3.3 low initial prediction)", got)
	}
}

func TestOpenShiftVPAThrottlingFeedbackLoop(t *testing.T) {
	// The §3.3 spiral: usage capped at the low limits keeps the
	// prediction low regardless of the true demand.
	o, _ := NewOpenShiftVPA(DefaultOpenShiftVPAOptions(14))
	limit := 2.0
	for i := 0; i < 240; i++ {
		// True demand is 7 cores but observation is capped.
		o.Observe(i, limit)
	}
	got := o.Recommend(2)
	if got > 3 {
		t.Errorf("capped history should keep the prediction low, got %d", got)
	}
}

func TestOpenShiftVPAFollowsUncappedTrend(t *testing.T) {
	o, _ := NewOpenShiftVPA(DefaultOpenShiftVPAOptions(14))
	// Rising usage 1 → 6 cores over 60 minutes, uncapped.
	for i := 0; i < 60; i++ {
		o.Observe(i, 1+float64(i)/12)
	}
	got := o.Recommend(6)
	if got < 6 {
		t.Errorf("rising trend extrapolation = %d, want ≥ 6", got)
	}
	o.Reset()
	if got := o.Recommend(6); got != 2 {
		t.Errorf("after reset = %d, want cold-start 2", got)
	}
}

func TestAutopilotValidation(t *testing.T) {
	bad := []AutopilotOptions{
		{WindowMinutes: 0, MinCores: 2, MaxCores: 8},
		{WindowMinutes: 10, MinCores: 0, MaxCores: 8},
		{WindowMinutes: 10, MinCores: 9, MaxCores: 8},
	}
	for i, o := range bad {
		if _, err := NewAutopilot(o); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestAutopilotTracksWindowMax(t *testing.T) {
	opts := DefaultAutopilotOptions(16)
	opts.WindowMinutes = 60
	a, err := NewAutopilot(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Recommend(5); got != 5 {
		t.Errorf("empty history should hold, got %d", got)
	}
	minute := 0
	for i := 0; i < 60; i++ {
		a.Observe(minute, 7)
		minute++
	}
	if got := a.Recommend(3); got != 8 { // ceil(7*1.1)
		t.Errorf("peak window = %d, want 8", got)
	}
	// After the peak leaves the window, it scales down (unlike VPA).
	for i := 0; i < 120; i++ {
		a.Observe(minute, 2)
		minute++
	}
	if got := a.Recommend(8); got != 3 { // ceil(2*1.1)
		t.Errorf("post-peak = %d, want 3", got)
	}
	a.Reset()
	if got := a.Recommend(4); got != 4 {
		t.Errorf("after reset = %d", got)
	}
}
