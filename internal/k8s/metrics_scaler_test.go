package k8s

import (
	"testing"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/recommend"
)

func TestMetricsServerBucketsMeans(t *testing.T) {
	ms := NewMetricsServer(60)
	// 60 seconds at 3 cores, then 60 at 5.
	for s := int64(0); s < 60; s++ {
		ms.RecordUsage("db-0", s, 3)
	}
	for s := int64(60); s < 120; s++ {
		ms.RecordUsage("db-0", s, 5)
	}
	// Trigger closing of the second bucket.
	ms.RecordUsage("db-0", 120, 1)
	series := ms.UsageSeries("db-0")
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
	if series[0] != 3 || series[1] != 5 {
		t.Errorf("series = %v, want [3 5]", series)
	}
}

func TestMetricsServerPartialBucketMean(t *testing.T) {
	ms := NewMetricsServer(60)
	// Only 30 of the 60 seconds recorded at 4 cores: the bucket mean is
	// cpu-seconds / interval = 120/60 = 2 (silence counts as idle).
	for s := int64(0); s < 30; s++ {
		ms.RecordUsage("p", s, 4)
	}
	ms.RecordUsage("p", 60, 0)
	series := ms.UsageSeries("p")
	if len(series) != 1 || series[0] != 2 {
		t.Errorf("series = %v, want [2]", series)
	}
}

func TestMetricsServerZeroFillsSilentBuckets(t *testing.T) {
	ms := NewMetricsServer(60)
	ms.RecordUsage("p", 0, 6)
	// Silence for buckets 1 and 2, then activity in bucket 3.
	ms.RecordUsage("p", 185, 6)
	series := ms.UsageSeries("p")
	if len(series) != 3 {
		t.Fatalf("series = %v", series)
	}
	if series[1] != 0 || series[2] != 0 {
		t.Errorf("silent buckets = %v, want zeros", series)
	}
}

func TestMetricsServerLateFirstSample(t *testing.T) {
	ms := NewMetricsServer(60)
	// First sample in bucket 2: earlier buckets backfill as zero.
	ms.RecordUsage("p", 130, 3)
	ms.RecordUsage("p", 190, 3)
	series := ms.UsageSeries("p")
	if len(series) != 3 || series[0] != 0 || series[1] != 0 {
		t.Errorf("series = %v", series)
	}
}

func TestMetricsServerPods(t *testing.T) {
	ms := NewMetricsServer(60)
	ms.RecordUsage("b", 0, 1)
	ms.RecordUsage("a", 0, 1)
	pods := ms.Pods()
	if len(pods) != 2 || pods[0] != "a" || pods[1] != "b" {
		t.Errorf("pods = %v", pods)
	}
	if NewMetricsServer(0).IntervalSeconds != 60 {
		t.Error("zero interval should default to 60")
	}
}

func TestScalerValidation(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 2, 4, 16, c)
	op, _ := NewOperator(set, c, 10)
	ms := NewMetricsServer(60)
	rec := baselines.NewControl(4)
	if _, err := NewScaler(nil, op, ms, 600, 2, 8); err == nil {
		t.Error("nil recommender should fail")
	}
	if _, err := NewScaler(rec, nil, ms, 600, 2, 8); err == nil {
		t.Error("nil operator should fail")
	}
	if _, err := NewScaler(rec, op, nil, 600, 2, 8); err == nil {
		t.Error("nil metrics should fail")
	}
	if _, err := NewScaler(rec, op, ms, 0, 2, 8); err == nil {
		t.Error("zero cadence should fail")
	}
	if _, err := NewScaler(rec, op, ms, 600, 0, 8); err == nil {
		t.Error("bad bounds should fail")
	}
}

// scalerHarness runs a closed loop: demand → pods → metrics → scaler →
// operator, for the given number of seconds.
func scalerHarness(t *testing.T, rec recommend.Recommender, demand func(sec int64) float64, seconds int64, initialCores, minC, maxC int) (*StatefulSet, *Scaler, *Operator) {
	t.Helper()
	c := SmallCluster()
	set, err := NewStatefulSet("db", 3, initialCores, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(set, c, 100)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMetricsServer(60)
	sc, err := NewScaler(rec, op, ms, 600, minC, maxC)
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < seconds; now++ {
		op.Tick(now)
		// The primary receives the demand; secondaries idle at 10%.
		for _, p := range set.Pods {
			d := demand(now) * 0.1
			if p.Role == RolePrimary {
				d = demand(now)
			}
			used := p.ConsumeCPU(d, 1)
			ms.RecordUsage(p.Name, now, used)
		}
		sc.Tick(now)
	}
	return set, sc, op
}

func TestScalerClosedLoopScalesUpUnderThrottling(t *testing.T) {
	cfg := core.DefaultConfig(8)
	rec, err := recommend.NewCaaSPERReactive(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Demand 6 cores against an initial 2-core limit for 2 hours.
	set, sc, op := scalerHarness(t, rec, func(int64) float64 { return 6 }, 7200, 2, 2, 8)
	if set.CPULimit() < 6 {
		t.Errorf("limit after loop = %d, want ≥6 (demand)", set.CPULimit())
	}
	if sc.ScalingsRequested == 0 {
		t.Error("no scalings requested")
	}
	if op.ResizeCount == 0 {
		t.Error("no resizes completed")
	}
}

func TestScalerClosedLoopScalesDownWhenIdle(t *testing.T) {
	cfg := core.DefaultConfig(8)
	rec, err := recommend.NewCaaSPERReactive(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := scalerHarness(t, rec, func(int64) float64 { return 1.2 }, 7200, 8, 2, 8)
	if set.CPULimit() > 3 {
		t.Errorf("limit after idle loop = %d, want scaled down toward 2", set.CPULimit())
	}
}

func TestScalerRespectsBoundsAndSerialization(t *testing.T) {
	// A recommender that always wants 99 cores: clamped to max, and
	// never re-requested mid-update.
	rec := baselines.NewControl(99)
	set, sc, _ := scalerHarness(t, rec, func(int64) float64 { return 1 }, 4000, 4, 2, 6)
	if set.CPULimit() != 6 {
		t.Errorf("limit = %d, want clamped 6", set.CPULimit())
	}
	if sc.ScalingsRequested != 1 {
		t.Errorf("scalings = %d, want exactly 1 (then target == max)", sc.ScalingsRequested)
	}
	for _, v := range sc.DecisionSeries {
		if v > 6 {
			t.Errorf("decision %v above clamp", v)
		}
	}
}

func TestScalerHoldRecordsDecision(t *testing.T) {
	rec := baselines.NewControl(4)
	_, sc, op := scalerHarness(t, rec, func(int64) float64 { return 2 }, 3000, 4, 2, 8)
	if len(sc.DecisionSeries) == 0 {
		t.Fatal("decision series empty")
	}
	if sc.ScalingsRequested != 0 || op.ResizeCount != 0 {
		t.Error("holds must not trigger resizes")
	}
}
