package fleet

// multi.go holds the multi-resource tenant loop: RAM scaled by the
// dual-threshold MemoryPolicy, disk grown off its high-water mark, and —
// for stateless tiers — horizontal overflow once the vertical CPU
// ceiling pins. CPU-only tenants never allocate a multiState and run the
// exact pre-vector code paths in fleet.go; everything here engages only
// when TenantSpec.Resources manages a non-CPU dimension. The determinism
// contract is unchanged: phase 1 (observeMultiSegment) writes only
// tenant-local state, phase 2 (enactMulti) runs sequentially.

import (
	"fmt"
	"time"

	"caasper/internal/billing"
	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/k8s"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/workload"
)

// horizontalHeadroom is the fraction of the replica set's total vertical
// ceiling kept free before overflow adds a replica (and, symmetrically,
// the margin a smaller set must absorb the peak under before scale-in).
const horizontalHeadroom = 0.25

// multiState is the per-tenant multi-resource runtime state, owned by
// exactly one tenant and touched from its phase-1 goroutine plus the
// sequential phase 2.
type multiState struct {
	rr   core.ResourceRange
	mem  recommend.MemoryPolicy
	disk recommend.DiskPolicy

	// ram / dsk are the per-minute per-pod demand/usage series in GB
	// (nil when the dimension is unmanaged).
	ram, dsk []float64

	// Current grants: the RAM GB per pod, the volume GB per pod and the
	// replica count.
	ramAlloc, diskAlloc, replicas int

	// seeding is the minute the newest replica finishes seeding (−1:
	// none in flight); seedMin is the spec's seeding delay.
	seeding, seedMin int

	// Decision-window accumulators, reset at each decision.
	ramPeak      float64 // peak per-pod RAM demand (GB)
	diskHigh     float64 // high-water disk usage (GB) — never reset: grow-only
	cpuPeakTotal float64 // peak total CPU demand across replicas (cores)
	ramShort     float64 // RAM shortfall GB-minutes since the last decision

	// Meters for the non-CPU dimensions, value-held like tenant.meter.
	ramMeter, diskMeter billing.Meter
}

// initMulti builds the tenant's multi-resource state: demand traces
// (derived deterministically from the CPU trace when absent), initial
// grants from the resolved range, and per-dimension meters.
func (t *tenant) initMulti(rr core.ResourceRange, replicas, minutes int, opts Options) error {
	m := &multiState{
		rr:       rr,
		mem:      t.spec.Mem,
		disk:     t.spec.Disk,
		replicas: replicas,
		seeding:  -1,
		seedMin:  t.spec.SeedMinutes,
	}
	period := opts.BillingPeriod
	if period == 0 {
		period = time.Hour
	}
	rates := billing.DefaultRates()

	if rr.Max.RAMGB > 0 {
		tr := t.spec.RAMTrace
		if tr == nil {
			tr = workload.DeriveRAM(t.spec.Trace, 1, 0.5)
		}
		if tr.Interval != time.Minute {
			return fmt.Errorf("RAM trace interval %s is not 1m (resample first): %w", tr.Interval, errs.ErrInvalidConfig)
		}
		if len(tr.Values) < minutes {
			return fmt.Errorf("RAM trace covers %d of %d minutes: %w", len(tr.Values), minutes, errs.ErrInvalidConfig)
		}
		m.ram = tr.Values
		m.ramAlloc = rr.Initial.RAMGB
		price := opts.RAMPricePerGBPeriod
		if price == 0 {
			price = rates.RAMGBPeriod
		}
		mm, err := billing.NewMeter(price, period, time.Minute)
		if err != nil {
			return err
		}
		m.ramMeter = *mm
	}
	if rr.Max.DiskGB > 0 {
		tr := t.spec.DiskTrace
		if tr == nil {
			tr = workload.DeriveDisk(t.spec.Trace, float64(rr.Initial.DiskGB)*0.5, 0.5)
		}
		if tr.Interval != time.Minute {
			return fmt.Errorf("disk trace interval %s is not 1m (resample first): %w", tr.Interval, errs.ErrInvalidConfig)
		}
		if len(tr.Values) < minutes {
			return fmt.Errorf("disk trace covers %d of %d minutes: %w", len(tr.Values), minutes, errs.ErrInvalidConfig)
		}
		m.dsk = tr.Values
		m.diskAlloc = rr.Initial.DiskGB
		price := opts.DiskPricePerGBPeriod
		if price == 0 {
			price = rates.DiskGBPeriod
		}
		dm, err := billing.NewMeter(price, period, time.Minute)
		if err != nil {
			return err
		}
		m.diskMeter = *dm
	}
	t.mr = m
	return nil
}

// observeMultiSegment is the multi-resource phase-1 body: the per-minute
// observe/account/meter walk over one decision-cadence segment, followed
// by the vector decision when the segment ends on a decision tick. The
// CPU trace is interpreted as TOTAL tenant demand spread across the
// serving replicas (so horizontal overflow actually relieves pressure);
// RAM and disk traces are per pod.
func (t *tenant) observeMultiSegment(segStart, segEnd, decision int) {
	m := t.mr
	limit := t.set.CPULimit() // constant within the segment
	limf := float64(limit)
	t.hasProp = false
	for now := segStart; now < segEnd; now++ {
		// Flip a freshly-seeded replica into service (tenant-local: only
		// this goroutine touches this set's pods in phase 1).
		if m.seeding >= 0 && now >= m.seeding {
			for _, p := range t.set.Pods {
				if p.Phase == k8s.PhaseRestarting {
					p.Phase = k8s.PhaseRunning
				}
			}
			m.seeding = -1
		}
		serving := 0
		for _, p := range t.set.Pods {
			if p.Running() {
				serving++
			}
		}
		if serving < 1 {
			serving = 1 // the primary always serves in this model
		}
		capf := limf * float64(serving)

		demand := t.spec.Trace.Values[now]
		if demand > m.cpuPeakTotal {
			m.cpuPeakTotal = demand
		}
		usage := demand
		if usage > capf {
			usage = capf
		}

		// The recommender sees the per-replica average — the same
		// per-pod signal a scrape of any one serving pod would show.
		perPod := usage / float64(serving)
		observed := perPod
		if t.inj.DropSample(t.pod, int64(now)) {
			observed = t.prevUsage
		}
		t.prevUsage = perPod
		t.rec.Observe(now, observed)

		// Ground-truth accounting in total core-minutes.
		if slack := capf - usage; slack > 0 {
			t.res.SumSlack += slack
		}
		if short := demand - capf; short > 0 {
			t.res.SumInsufficient += short
			t.severity += short
			t.res.ThrottledMinutes++
		}
		// Billing covers every pod, seeding replicas included — capacity
		// is reserved (and paid for) from the moment it is scheduled.
		pods := float64(len(t.set.Pods))
		t.meter.Record(limf * pods)

		if m.ram != nil {
			rdemand := m.ram[now] + t.inj.MemPressureGB(t.pod, int64(now))
			if rdemand > m.ramPeak {
				m.ramPeak = rdemand
			}
			if short := rdemand - float64(m.ramAlloc); short > 0 {
				m.ramShort += short
				t.res.RAMShortGBMin += short
				t.res.OOMMinutes++
			}
			m.ramMeter.Record(float64(m.ramAlloc) * pods)
		}
		if m.dsk != nil {
			used := m.dsk[now]
			if used > float64(m.diskAlloc) {
				t.res.DiskFullMinutes++
				used = float64(m.diskAlloc) // writes beyond the volume fail
			}
			if used > m.diskHigh {
				m.diskHigh = used
			}
			m.diskMeter.Record(float64(m.diskAlloc) * pods)
		}
	}
	if decision >= 0 {
		t.decideMulti(limit)
	}
}

// decideMulti evaluates every managed dimension at a decision tick and
// files one vector proposal when any of them wants to move. Replica
// overflow is vertical-first: a replica is added only when the CPU
// target is pinned at the per-pod ceiling AND the peak total demand
// exceeds what the current set can serve with headroom; it is removed
// only when the target is off the ceiling and the smaller set would
// still absorb the peak with the same headroom.
func (t *tenant) decideMulti(limit int) {
	m := t.mr
	target := t.rec.Recommend(limit)
	if target < t.spec.MinCores {
		target = t.spec.MinCores
	}
	if target > t.spec.MaxCores {
		target = t.spec.MaxCores
	}

	ram := m.ramAlloc
	if m.ram != nil {
		ram = m.mem.Target(m.ramAlloc, m.ramPeak, m.rr.Min.RAMGB, m.rr.Max.RAMGB)
	}
	disk := m.diskAlloc
	if m.dsk != nil {
		disk = m.disk.Target(m.diskAlloc, m.diskHigh, m.rr.Max.DiskGB)
	}
	reps := m.replicas
	if t.spec.Stateless {
		maxR := m.rr.Max.Replicas // 0 = unbounded
		minR := m.rr.Min.Replicas
		if minR < 1 {
			minR = 1
		}
		ceiling := float64(t.spec.MaxCores*reps) * (1 - horizontalHeadroom)
		smaller := float64(t.spec.MaxCores*(reps-1)) * (1 - horizontalHeadroom)
		if target >= t.spec.MaxCores && m.cpuPeakTotal > ceiling && (maxR == 0 || reps < maxR) {
			reps++
		} else if reps > minR && target < t.spec.MaxCores && m.cpuPeakTotal <= smaller {
			reps--
		}
	}

	if target != limit || ram != m.ramAlloc || disk != m.diskAlloc || reps != m.replicas {
		// RAM shortfall joins CPU insufficiency as the arbiter's priority
		// signal: an OOM-ing tenant outranks a merely-throttled one.
		t.prop = proposal{
			target:   target,
			severity: t.severity + m.ramShort,
			multi:    true,
			ram:      ram,
			disk:     disk,
			reps:     reps,
		}
		t.hasProp = true
	}
	t.severity, m.ramShort, m.ramPeak, m.cpuPeakTotal = 0, 0, 0, 0
}

// enactMulti applies one granted vector proposal in phase 2: the in-place
// CPU/RAM resize first (all-or-nothing with rollback, same fault model as
// the CPU-only enact), then the grow-only volume expansion, then the
// replica add/remove. A restart-failure fault aborts only the resize —
// volume growth and replica moves are not pod restarts.
func (s *runState) enactMulti(t *tenant, now int) {
	m := t.mr
	from := t.set.CPULimit()
	fromRAM := m.ramAlloc
	fromReps := m.replicas
	prop := t.prop

	oldMem := t.spec.MemGiBPerPod
	newMem := t.spec.MemGiBPerPod
	if m.ram != nil {
		oldMem = float64(fromRAM)
		newMem = float64(prop.ram)
	}

	if prop.target != from || (m.ram != nil && prop.ram != fromRAM) {
		if t.inj.RestartFails(t.pod, int64(now)) {
			t.res.ResizesAborted++
			if s.events {
				s.h.Events.Emit(obs.Event{T: int64(now), Type: "fleet.resize-aborted", Fields: []obs.Field{
					obs.S("tenant", t.spec.Name),
					obs.I("from", int64(from)),
					obs.I("to", int64(prop.target)),
					obs.S("reason", "restart-fail"),
				}})
			}
			return
		}
		done := s.arb.done[:0]
		for _, p := range t.set.Pods {
			if err := s.cluster.ResizeInPlace(p, k8s.NewGuaranteedSpec(prop.target, newMem)); err != nil {
				for _, q := range done {
					_ = s.cluster.ResizeInPlace(q, k8s.NewGuaranteedSpec(from, oldMem))
				}
				s.arb.done = done[:0]
				t.res.ResizesAborted++
				if s.events {
					s.h.Events.Emit(obs.Event{T: int64(now), Type: "fleet.resize-aborted", Fields: []obs.Field{
						obs.S("tenant", t.spec.Name),
						obs.I("from", int64(from)),
						obs.I("to", int64(prop.target)),
						obs.S("reason", "infeasible"),
					}})
				}
				return
			}
			done = append(done, p)
		}
		s.arb.done = done[:0]
		if m.ram != nil {
			m.ramAlloc = prop.ram
			t.set.MemGiBPerPod = newMem // future replicas inherit the grant
		}
		t.res.NumScalings++
	}

	if m.dsk != nil && prop.disk > m.diskAlloc {
		m.diskAlloc = prop.disk // grow-only: enact never shrinks a volume
	}

	if t.spec.Stateless && prop.reps != fromReps {
		if prop.reps > fromReps {
			if _, err := t.set.AddReplica(s.cluster, t.set.CPULimit(), int64(now+m.seedMin)); err != nil {
				// The arbiter checks existing pods' nodes; a fresh replica
				// competes for cluster-wide capacity and may still lose.
				t.res.Deferrals++
				if s.events {
					s.h.Events.Emit(obs.Event{T: int64(now), Type: "fleet.deferred", Fields: []obs.Field{
						obs.S("tenant", t.spec.Name),
						obs.S("reason", "scale-out"),
						obs.I("want_replicas", int64(prop.reps)),
						obs.F("severity", prop.severity),
					}})
				}
			} else {
				m.replicas++
				m.seeding = now + m.seedMin
				t.res.NumScalings++
			}
		} else if _, err := t.set.RemoveReplica(s.cluster); err == nil {
			m.replicas--
			t.res.NumScalings++
		}
	}

	if s.events {
		s.h.Events.Emit(obs.Event{T: int64(now), Type: "fleet.resize", Fields: []obs.Field{
			obs.S("tenant", t.spec.Name),
			obs.I("from", int64(from)),
			obs.I("to", int64(prop.target)),
			obs.F("severity", prop.severity),
			obs.I("ram_from", int64(fromRAM)),
			obs.I("ram_to", int64(m.ramAlloc)),
			obs.I("disk_gb", int64(m.diskAlloc)),
			obs.I("replicas", int64(m.replicas)),
		}})
	}
}

// infeasibleMulti is the multi-dimensional arbiter check: per node, the
// summed CPU AND RAM resize deltas of the tenant's pods must fit the
// node's free capacity (CPU under the current scheduling pressure). It
// returns the first violating node and the shortfall in the violating
// dimension's native unit, or "" when the grant fits.
func infeasibleMulti(t *tenant, cluster *k8s.Cluster, pressure float64, arb *arbScratch) (string, float64) {
	m := t.mr
	podMem := t.spec.MemGiBPerPod
	if m.ram != nil {
		podMem = float64(t.prop.ram)
	}
	arb.nodes = arb.nodes[:0]
	arb.need = arb.need[:0]
	arb.needMem = arb.needMem[:0]
	for _, p := range t.set.Pods {
		cpuDelta := float64(t.prop.target) - p.CPULimit()
		memDelta := podMem - p.Spec.Requests.MemoryGiB
		if (cpuDelta <= 0 && memDelta <= 0) || p.NodeName == "" {
			continue
		}
		if cpuDelta < 0 {
			cpuDelta = 0
		}
		if memDelta < 0 {
			memDelta = 0
		}
		found := false
		for j, name := range arb.nodes {
			if name == p.NodeName {
				arb.need[j] += cpuDelta
				arb.needMem[j] += memDelta
				found = true
				break
			}
		}
		if !found {
			arb.nodes = append(arb.nodes, p.NodeName)
			arb.need = append(arb.need, cpuDelta)
			arb.needMem = append(arb.needMem, memDelta)
		}
	}
	for j, name := range arb.nodes {
		n := cluster.NodeByName(name)
		if n == nil {
			return name, arb.need[j]
		}
		free := n.Free()
		if avail := free.CPUCores - pressure; arb.need[j] > avail {
			return name, arb.need[j] - avail
		}
		if arb.needMem[j] > free.MemoryGiB {
			return name, arb.needMem[j] - free.MemoryGiB
		}
	}
	return "", 0
}

// finishMulti closes the tenant's multi-resource books in the epilogue.
func (t *tenant) finishMulti() {
	m := t.mr
	t.res.FinalReplicas = m.replicas
	if m.ram != nil {
		m.ramMeter.Flush()
		t.res.FinalRAMGB = m.ramAlloc
		t.res.BilledRAMGBPeriods = m.ramMeter.BilledCorePeriods()
	}
	if m.dsk != nil {
		m.diskMeter.Flush()
		t.res.FinalDiskGB = m.diskAlloc
		t.res.BilledDiskGBPeriods = m.diskMeter.BilledCorePeriods()
	}
}
