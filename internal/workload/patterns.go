// Package workload synthesizes every CPU workload used in the paper's
// evaluation: the 62-hour step workload of §3.3 (Fig. 3), the 12-hour
// "workday" of §6.2 (Fig. 9), the 3-day cyclical load of §6.2 (Fig. 10),
// the Stitcher-style recreated customer trace of §6.2 (Fig. 11), the
// Alibaba-like container traces of §6.3 (Fig. 14 / Table 3), and the
// BenchBase-style transaction mixes (TPC-C / TPC-H / YCSB) that drive the
// live-system database simulator.
//
// Generators are deterministic: all noise comes from explicit seeds.
package workload

import (
	"math"
	"time"

	"caasper/internal/stats"
	"caasper/internal/trace"
)

// Pattern maps a time offset (in minutes from trace start) to CPU demand in
// cores. Patterns are composable building blocks; Render evaluates one into
// a concrete Trace on a one-minute grid.
type Pattern func(minute float64) float64

// Render evaluates the pattern over the duration at one-minute resolution.
func Render(name string, p Pattern, duration time.Duration) *trace.Trace {
	n := int(duration / time.Minute)
	values := make([]float64, n)
	for i := range values {
		v := p(float64(i))
		if v < 0 {
			v = 0
		}
		values[i] = v
	}
	return trace.New(name, time.Minute, values)
}

// Constant returns a pattern with a fixed demand level.
func Constant(level float64) Pattern {
	return func(float64) float64 { return level }
}

// TracePattern adapts a rendered trace back into a Pattern with step
// interpolation — the bridge from trace-level workloads to the live
// transaction simulator, which samples demand at sub-minute resolution.
func TracePattern(tr *trace.Trace) Pattern {
	return func(m float64) float64 {
		idx := int(m / (float64(tr.Interval) / float64(time.Minute)))
		return tr.At(idx)
	}
}

// Step alternates between low and high demand, holding each level for
// holdMinutes. The paper's §3.3 control workload is exactly this shape:
// 8 hours at ~2–3 cores, then 8 hours at ~7 cores, repeating.
func Step(low, high, holdMinutes float64) Pattern {
	period := 2 * holdMinutes
	return func(m float64) float64 {
		if math.Mod(m, period) < holdMinutes {
			return low
		}
		return high
	}
}

// Sine oscillates around mean with the given amplitude and period.
func Sine(mean, amplitude, periodMinutes float64) Pattern {
	return func(m float64) float64 {
		return mean + amplitude*math.Sin(2*math.Pi*m/periodMinutes)
	}
}

// Diurnal models a daily cycle: a smooth rise to `peak` during "business
// hours" and decay to `base` overnight, with the busy window centred at
// peakMinuteOfDay (e.g. 13*60 for 1pm).
func Diurnal(base, peak, peakMinuteOfDay float64) Pattern {
	const day = 24 * 60
	return func(m float64) float64 {
		tod := math.Mod(m, day)
		// Raised-cosine bump centred at the peak, 12h wide.
		d := math.Abs(tod - peakMinuteOfDay)
		if d > day/2 {
			d = day - d
		}
		w := 0.5 * (1 + math.Cos(math.Pi*math.Min(d, 360)/360))
		return base + (peak-base)*w
	}
}

// Spike adds a burst of the given height over [startMinute, startMinute+width).
func Spike(base Pattern, startMinute, width, height float64) Pattern {
	return func(m float64) float64 {
		v := base(m)
		if m >= startMinute && m < startMinute+width {
			v += height
		}
		return v
	}
}

// Ramp linearly interpolates demand from `from` to `to` over the window
// [startMinute, startMinute+width), holding `from` before and `to` after.
func Ramp(from, to, startMinute, width float64) Pattern {
	return func(m float64) float64 {
		switch {
		case m < startMinute:
			return from
		case m >= startMinute+width:
			return to
		default:
			frac := (m - startMinute) / width
			return from + (to-from)*frac
		}
	}
}

// Piecewise concatenates segments: each segment holds its pattern for its
// duration, then the next begins (with time rebased to the segment start).
// After the last segment the final pattern keeps running.
type Segment struct {
	Pattern Pattern
	Minutes float64
}

// Piecewise builds a pattern from consecutive segments.
func Piecewise(segments ...Segment) Pattern {
	return func(m float64) float64 {
		var offset float64
		for i, s := range segments {
			if m < offset+s.Minutes || i == len(segments)-1 {
				return s.Pattern(m - offset)
			}
			offset += s.Minutes
		}
		return 0
	}
}

// Repeat tiles the pattern with the given period.
func Repeat(p Pattern, periodMinutes float64) Pattern {
	return func(m float64) float64 {
		return p(math.Mod(m, periodMinutes))
	}
}

// Add sums patterns pointwise.
func Add(ps ...Pattern) Pattern {
	return func(m float64) float64 {
		var v float64
		for _, p := range ps {
			v += p(m)
		}
		return v
	}
}

// ScalePattern multiplies a pattern by a constant factor.
func ScalePattern(p Pattern, f float64) Pattern {
	return func(m float64) float64 { return p(m) * f }
}

// WithNoise perturbs a pattern with Gaussian noise of the given standard
// deviation, floored at zero. The RNG is consumed sample by sample, so the
// pattern must be evaluated on a monotone grid (as Render does) for
// reproducibility.
func WithNoise(p Pattern, sd float64, rng *stats.RNG) Pattern {
	return func(m float64) float64 {
		v := p(m) + rng.NormFloat64()*sd
		if v < 0 {
			return 0
		}
		return v
	}
}

// WithJitter multiplies the pattern by (1 ± up to frac) uniform noise.
func WithJitter(p Pattern, frac float64, rng *stats.RNG) Pattern {
	return func(m float64) float64 {
		v := p(m) * (1 + rng.Range(-frac, frac))
		if v < 0 {
			return 0
		}
		return v
	}
}
