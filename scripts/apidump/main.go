// Command apidump prints the exported package-level API surface of the
// root caasper package, one "kind Name" line per symbol, sorted. It is
// the input to scripts/apicheck.sh, which diffs the output against the
// checked-in snapshot testdata/api.txt so accidental API drift (a
// removed re-export, a renamed constructor) fails `make check` instead
// of surprising downstream callers.
//
// Run from the repository root:
//
//	go run ./scripts/apidump
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
)

func main() {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
	pkg, ok := pkgs["caasper"]
	if !ok {
		fmt.Fprintln(os.Stderr, "apidump: package caasper not found in cwd (run from the repo root)")
		os.Exit(1)
	}

	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods live on re-exported internal types; only
				// package-level functions are part of this surface.
				if d.Recv == nil && d.Name.IsExported() {
					lines = append(lines, "func "+d.Name.Name)
				}
			case *ast.GenDecl:
				kind := map[token.Token]string{
					token.CONST: "const", token.VAR: "var", token.TYPE: "type",
				}[d.Tok]
				if kind == "" {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							lines = append(lines, kind+" "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() {
								lines = append(lines, kind+" "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}
