package workload

import (
	"testing"
	"time"

	"caasper/internal/trace"
)

func TestDeriveRAMStickyAndDeterministic(t *testing.T) {
	cpu := trace.New("t", time.Minute, []float64{1, 8, 8, 1, 1, 1})
	a := DeriveRAM(cpu, 1, 0.5)
	b := DeriveRAM(cpu, 1, 0.5)
	if a.Len() != cpu.Len() {
		t.Fatalf("length %d, want %d", a.Len(), cpu.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a.At(i), b.At(i))
		}
	}
	// Ram rises with load...
	if a.At(1) <= a.At(0) {
		t.Fatalf("RAM should follow load up: %v then %v", a.At(0), a.At(1))
	}
	// ...but decays slowly after it drops (sticky: still above the
	// affine level 1.5 one minute after the spike ends).
	if a.At(3) <= 1.5 {
		t.Fatalf("RAM at %v right after spike, want sticky decay above 1.5", a.At(3))
	}
	if a.At(5) > a.At(3) {
		t.Fatal("RAM must decay while load is flat")
	}
}

func TestDeriveDiskMonotone(t *testing.T) {
	cpu := trace.New("t", time.Minute, []float64{2, 0, 4, 1})
	d := DeriveDisk(cpu, 10, 3)
	prev := 0.0
	for i := 0; i < d.Len(); i++ {
		if d.At(i) < prev {
			t.Fatalf("disk shrank at %d: %v < %v", i, d.At(i), prev)
		}
		prev = d.At(i)
	}
	if d.At(0) <= 10 {
		t.Fatalf("disk must start above base: %v", d.At(0))
	}
}
