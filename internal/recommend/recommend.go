// Package recommend defines the pluggable recommender interface of the
// vertical autoscaling loop (paper Figure 1, step 3) and the adapters that
// expose CaaSPER's reactive and proactive algorithms through it. The
// trace-driven simulator (internal/sim), the Kubernetes-substrate control
// loop (internal/k8s) and every baseline (internal/baselines) speak this
// interface, which is what makes the paper's recommender comparisons
// possible.
package recommend

import (
	"fmt"

	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/forecast"
	"caasper/internal/obs"
	win "caasper/internal/window"
)

// Recommender is a pluggable vertical-scaling policy. Implementations are
// fed one usage sample per metric interval via Observe and asked for a
// target allocation at each decision tick via Recommend.
//
// Implementations must be deterministic given the same observation
// sequence; they are exercised both by the simulator and by the live
// control loop, and the paper's §5 correctness methodology (paired t-test
// between simulated and live decision series) depends on it.
type Recommender interface {
	// Name identifies the policy in reports.
	Name() string
	// Observe records the usage (cores) measured during one metric
	// interval. minute is the sample's time index.
	Observe(minute int, usageCores float64)
	// Recommend returns the desired core allocation given the current
	// one. Returning currentCores means "hold".
	Recommend(currentCores int) int
	// Reset clears accumulated state so one instance can be reused
	// across experiment runs.
	Reset()
}

// RunObserver is the optional bulk form of Observe for recommenders whose
// Observe is a pure "append one sample" with no per-minute side effects.
// ObserveRun(minute, u, n) must leave the recommender in exactly the state
// n sequential Observe(minute+k, u) calls (k = 0..n−1) would — the
// discrete-event fleet engine relies on that bit-equality to advance
// observation windows across constant-demand trace runs in one call.
// Recommenders whose Observe depends on the minute itself (e.g. a
// time-decayed histogram) must NOT implement it.
type RunObserver interface {
	// ObserveRun records n consecutive samples of the same usage value,
	// the first at time index minute.
	ObserveRun(minute int, usageCores float64, n int)
}

// SteadyObserver is the optional steady-state marker that lets an
// event-driven engine put a tenant to sleep across decision ticks.
// SteadyObserving(u) may return true only when BOTH hold:
//
//  1. Recommend is a pure function of the retained observation state and
//     its currentCores argument (same inputs, same output, no
//     output-affecting side effects); and
//  2. further Observe(u) calls cannot change that retained state's
//     Recommend output (typically: a saturated bounded window already
//     holding nothing but u).
//
// Under those two guarantees, a tenant whose last decision was "hold" and
// whose demand stays at u provably re-decides "hold" at every subsequent
// tick, so the engine can skip the ticks entirely. Implementations unsure
// of either property must return false — sleeping is an optimisation,
// never an obligation.
type SteadyObserver interface {
	// SteadyObserving reports whether observing usageCores indefinitely
	// provably leaves every future Recommend output unchanged.
	SteadyObserving(usageCores float64) bool
}

// Explainer is implemented by recommenders that can explain their most
// recent recommendation in prose — the interpretability surface (R6) the
// simulator and CLIs expose. Baselines deliberately do not implement it:
// the paper's §3.3 complaint about them includes their opacity.
type Explainer interface {
	// Explain returns the last recommendation's explanation ("" when no
	// recommendation has been made yet).
	Explain() string
}

// Instrumentable is implemented by recommenders that can stream a
// machine-readable decision audit trail (the "core.decision" events of
// internal/obs). The simulator and live harness attach their run's sink
// through it; policies that do not implement it simply run un-audited,
// mirroring Explainer's opt-in contract.
type Instrumentable interface {
	// SetEventSink attaches the structured event sink the recommender
	// should emit decision audits into. A nil or disabled sink turns
	// auditing off.
	SetEventSink(s obs.Sink)
}

// CaaSPERReactive adapts core.Recommender to the Recommender interface:
// it keeps a sliding usage window (the paper's "last 40 minutes of CPU
// usage") and evaluates Algorithm 1 on it at each decision tick.
type CaaSPERReactive struct {
	algo   *core.Recommender
	window int
	// history retains exactly the window samples Algorithm 1 reads:
	// memory stays O(window) over a month-long replay, and the
	// steady-state Observe path is allocation-free.
	history *win.Ring
	// scratch reuses the Algorithm 1 evaluation buffers across decision
	// ticks (an adapter is single-stream state already).
	scratch core.Scratch
	// LastDecision exposes the most recent full decision (explanation,
	// slope, branch) for interpretability surfaces.
	LastDecision core.Decision
}

// NewCaaSPERReactive builds the reactive adapter. window is the number of
// samples Algorithm 1 sees (40 in the paper's running configuration).
func NewCaaSPERReactive(cfg core.Config, window int) (*CaaSPERReactive, error) {
	if window < 1 {
		return nil, fmt.Errorf("recommend: window %d must be ≥ 1: %w", window, errs.ErrBadWindow)
	}
	algo, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &CaaSPERReactive{algo: algo, window: window, history: win.New(window)}, nil
}

// Name implements Recommender.
func (c *CaaSPERReactive) Name() string { return "caasper-reactive" }

// Observe implements Recommender.
func (c *CaaSPERReactive) Observe(minute int, usageCores float64) {
	c.scratch.Now = int64(minute) // timestamp for the next decision audit
	c.history.Push(usageCores)
}

// ObserveRun implements RunObserver: the per-minute Observe only stamps
// the audit clock and pushes into the ring, so the bulk form is a single
// clock stamp plus a bulk ring append — bit-identical end state.
func (c *CaaSPERReactive) ObserveRun(minute int, usageCores float64, n int) {
	if n <= 0 {
		return
	}
	c.scratch.Now = int64(minute + n - 1)
	c.history.PushRun(usageCores, n)
}

// SteadyObserving implements SteadyObserver. Algorithm 1 is a pure
// function of (window, current cores, config) — DecideScratch's memo
// documents exactly that — so once the bounded window is saturated and
// holds nothing but the current usage level, further equal observations
// cannot move any future recommendation.
func (c *CaaSPERReactive) SteadyObserving(usageCores float64) bool {
	return c.history.Bounded() &&
		c.history.Total() >= c.history.Cap() &&
		c.history.AllEqual(usageCores)
}

// Recommend implements Recommender.
func (c *CaaSPERReactive) Recommend(currentCores int) int {
	// The ring retains exactly the window tail the unbounded adapter
	// used to slice off, already contiguous — no copy, no allocation.
	d, err := c.algo.DecideScratch(&c.scratch, currentCores, c.history.View())
	if err != nil {
		return currentCores // no usable signal: hold
	}
	c.LastDecision = d
	return d.TargetCores
}

// Reset implements Recommender. The attached event sink survives: a reset
// starts a new decision stream, not a new telemetry configuration.
func (c *CaaSPERReactive) Reset() {
	c.history.Reset()
	c.scratch = core.Scratch{Sink: c.scratch.Sink}
	c.LastDecision = core.Decision{}
}

// Explain implements Explainer. The hot path defers explanation
// materialisation to the scratch buffer (core.Scratch.Explanation), so
// the string is only built when something actually asks for it.
func (c *CaaSPERReactive) Explain() string {
	if e := c.LastDecision.Explanation; e != "" {
		return e
	}
	return c.scratch.Explanation()
}

// SetEventSink implements Instrumentable.
func (c *CaaSPERReactive) SetEventSink(s obs.Sink) { c.scratch.Sink = s }

// CaaSPERProactive adapts core.Proactive: enough history is retained for
// the forecaster to learn the seasonal pattern, and each decision
// evaluates Algorithm 1 on the combined observed+forecast window (Eq. 4).
//
// When the forecaster declares a bounded history requirement
// (forecast.HistoryBound), the adapter retains only
// max(observedWindow, HistoryNeed) samples in a ring — O(window) memory
// with bit-identical decisions. Forecasters that read the entire series
// (EMA, Holt-Winters, AR) keep the unbounded history they genuinely need.
type CaaSPERProactive struct {
	pro     *core.Proactive
	history *win.Ring
	// scratch reuses the Algorithm 1 evaluation buffers across ticks.
	scratch core.Scratch
	// LastUsedForecast reports whether the most recent decision
	// incorporated the forecast (false during the warm-up period).
	LastUsedForecast bool
	// LastDecision exposes the most recent full decision.
	LastDecision core.Decision
}

// NewCaaSPERProactive builds the proactive adapter. observedWindow and
// horizon are o_n−o_f and o_f of Figure 8; minHistory is the warm-up
// length (one full season) before forecasting activates.
func NewCaaSPERProactive(cfg core.Config, f forecast.Forecaster, observedWindow, horizon, minHistory int) (*CaaSPERProactive, error) {
	algo, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	pro, err := core.NewProactive(algo, f, observedWindow, horizon, minHistory)
	if err != nil {
		return nil, err
	}
	return &CaaSPERProactive{pro: pro, history: win.New(proactiveRetention(f, observedWindow, horizon))}, nil
}

// proactiveRetention sizes the proactive adapter's history ring: the
// observed window always enters the combined window, and a bounded
// forecaster additionally reads its HistoryNeed tail. 0 (unbounded) when
// the forecaster's output depends on the full series.
func proactiveRetention(f forecast.Forecaster, observedWindow, horizon int) int {
	if f == nil || horizon == 0 {
		return observedWindow
	}
	need := forecast.HistoryNeed(f)
	if need < 0 {
		return 0 // unbounded: correctness beats the memory bound
	}
	if need > observedWindow {
		return need
	}
	return observedWindow
}

// Name implements Recommender.
func (c *CaaSPERProactive) Name() string { return "caasper-proactive" }

// Observe implements Recommender.
func (c *CaaSPERProactive) Observe(minute int, usageCores float64) {
	c.scratch.Now = int64(minute) // timestamp for the next decision audit
	c.history.Push(usageCores)
}

// ObserveRun implements RunObserver (see CaaSPERReactive.ObserveRun).
// The proactive adapter deliberately does NOT implement SteadyObserver:
// its MinHistory warm-up can flip the decision mode mid-sleep and
// forecaster purity is a property of the injected Forecaster, not of the
// adapter — so the engine keeps waking it at every tick.
func (c *CaaSPERProactive) ObserveRun(minute int, usageCores float64, n int) {
	if n <= 0 {
		return
	}
	c.scratch.Now = int64(minute + n - 1)
	c.history.PushRun(usageCores, n)
}

// Recommend implements Recommender.
func (c *CaaSPERProactive) Recommend(currentCores int) int {
	// Total() (samples ever observed), not the retained length, gates the
	// MinHistory warm-up — a bounded ring must activate proactive mode at
	// the same tick an unbounded history would.
	d, used, err := c.pro.DecideHistoryScratch(&c.scratch, currentCores, c.history.View(), c.history.Total())
	if err != nil {
		return currentCores
	}
	c.LastUsedForecast = used
	c.LastDecision = d
	return d.TargetCores
}

// Reset implements Recommender. The attached event sink survives (see
// CaaSPERReactive.Reset).
func (c *CaaSPERProactive) Reset() {
	c.history.Reset()
	c.scratch = core.Scratch{Sink: c.scratch.Sink}
	c.LastUsedForecast = false
	c.LastDecision = core.Decision{}
}

// Explain implements Explainer. Proactive decisions carry their prefixed
// explanation eagerly; the reactive warm-up path defers to the scratch
// buffer (see CaaSPERReactive.Explain).
func (c *CaaSPERProactive) Explain() string {
	if e := c.LastDecision.Explanation; e != "" {
		return e
	}
	return c.scratch.Explanation()
}

// SetEventSink implements Instrumentable.
func (c *CaaSPERProactive) SetEventSink(s obs.Sink) { c.scratch.Sink = s }
