package experiments

import (
	"context"
	"fmt"
	"strings"

	"caasper/internal/core"
	"caasper/internal/dbsim"
	"caasper/internal/forecast"
	"caasper/internal/parallel"
	"caasper/internal/recommend"
	"caasper/internal/sim"
	"caasper/internal/workload"
)

// This file contains the ablation studies DESIGN.md calls out for the
// repository's design choices — they correspond to the paper's future-work
// items (§8) and to the knobs §5 identifies as dominant.

// AblationInPlaceResult compares rolling-update resizes with the K8s
// in-place pod resize feature the paper plans to adopt (§2.2 footnote 4,
// §6.2 footnote 10): the paper reports that with in-place resize "neither
// the scale-up lag nor failed transactions occur".
type AblationInPlaceResult struct {
	Rolling, InPlace *dbsim.LiveResult
	Report           string
}

// AblationInPlace runs the Figure 9 workday on Database A twice: with the
// rolling-update resize path and with in-place resizes.
func AblationInPlace(seed uint64) (*AblationInPlaceResult, error) {
	sched := workload.WorkdaySchedule(seed)
	const cores = 6

	mkRec := func() (recommend.Recommender, error) {
		return recommend.NewCaaSPERReactive(core.DefaultConfig(cores), 40)
	}

	rec, err := mkRec()
	if err != nil {
		return nil, err
	}
	rolling, err := dbsim.RunLive(sched, rec, dbsim.DatabaseAOptions(cores, cores))
	if err != nil {
		return nil, fmt.Errorf("rolling: %w", err)
	}

	rec, err = mkRec()
	if err != nil {
		return nil, err
	}
	ipOpts := dbsim.DatabaseAOptions(cores, cores)
	ipOpts.InPlaceResize = true
	inPlace, err := dbsim.RunLive(sched, rec, ipOpts)
	if err != nil {
		return nil, fmt.Errorf("in-place: %w", err)
	}

	res := &AblationInPlaceResult{Rolling: rolling, InPlace: inPlace}
	tb := NewTable("Ablation — rolling-update vs in-place resize (workday, Database A)",
		"resize mode", "completed txns", "interrupted txns", "failovers", "sum insufficient", "billed core-h")
	tb.AddRow("rolling update", rolling.DB.CompletedTxns, rolling.DB.InterruptedTxns,
		rolling.Failovers, rolling.SumInsufficient, rolling.BilledCorePeriods)
	tb.AddRow("in-place", inPlace.DB.CompletedTxns, inPlace.DB.InterruptedTxns,
		inPlace.Failovers, inPlace.SumInsufficient, inPlace.BilledCorePeriods)
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper (§6.2 fn.10): with in-place resize neither the scale-up lag nor failed transactions occur\n")
	res.Report = b.String()
	return res, nil
}

// AblationHorizonRow is one proactive-horizon setting's outcome.
type AblationHorizonRow struct {
	HorizonMinutes  int
	SumSlack        float64
	SumInsufficient float64
	NumScalings     int
}

// AblationHorizonResult sweeps the proactive scale-ahead window — the
// knob §6.2 mentions tuning ("we set the scale-ahead window gap to 1 hour
// to display on the graph more clearly; in practice we set this smaller
// to increase savings").
type AblationHorizonResult struct {
	Rows   []AblationHorizonRow
	Report string
}

// AblationHorizon evaluates horizons 0 (pure reactive), 15, 60 and 120
// minutes on the cyclical trace. The four horizon runs are independent
// simulations, so they fan out across workers goroutines (below 1:
// runtime.GOMAXPROCS(0)); rows are written by horizon index, keeping the
// table order and values identical for every worker count.
func AblationHorizon(seed uint64, workers int) (*AblationHorizonResult, error) {
	tr := workload.Cyclical3Day(seed)
	opts := sim.DefaultOptions(14, 14)
	opts.ResizeDelayMinutes = 4
	const season = 24 * 60

	horizons := []int{0, 15, 60, 120}
	rows, err := parallel.Map(context.Background(), len(horizons), workers, func(i int) (AblationHorizonRow, error) {
		horizon := horizons[i]
		var rec recommend.Recommender
		var err error
		if horizon == 0 {
			rec, err = recommend.NewCaaSPERReactive(core.DefaultConfig(14), 40)
		} else {
			rec, err = recommend.NewCaaSPERProactive(core.DefaultConfig(14),
				&forecast.SeasonalNaive{Season: season}, 40, horizon, season)
		}
		if err != nil {
			return AblationHorizonRow{}, err
		}
		r, err := sim.Run(tr, rec, opts)
		if err != nil {
			return AblationHorizonRow{}, err
		}
		return AblationHorizonRow{
			HorizonMinutes:  horizon,
			SumSlack:        r.SumSlack,
			SumInsufficient: r.SumInsufficient,
			NumScalings:     r.NumScalings,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &AblationHorizonResult{Rows: rows}
	tb := NewTable("Ablation — proactive scale-ahead horizon on the cyclical workload",
		"horizon (min)", "sum slack K", "sum insufficient C", "scalings N")
	for _, row := range rows {
		tb.AddRow(row.HorizonMinutes, row.SumSlack, row.SumInsufficient, row.NumScalings)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("longer horizons buy earlier scale-ups (less throttling) at the cost of extra slack\n")
	res.Report = b.String()
	return res, nil
}

// AblationPrefilterResult compares the proactive mode with and without
// the §4.3-planned confidence prefilter on a trace whose forecast is
// poisoned by a one-off outlier spike (the c_29247 situation the paper
// discusses: "the lower accuracy of the naïve forecasting ... caused by
// the huge outlier spike is then projected onto future days").
type AblationPrefilterResult struct {
	Without, With *sim.Result
	Report        string
}

// AblationPrefilter runs the c_29247-style trace through the proactive
// recommender with the uncertainty prefilter off and on.
func AblationPrefilter(seed uint64) (*AblationPrefilterResult, error) {
	tr, err := workload.AlibabaTrace("c_29247", seed)
	if err != nil {
		return nil, err
	}
	peak := tr.Summarize().Max
	maxCores := int(peak*1.3) + 2
	opts := sim.DefaultOptions(int(peak)+1, maxCores)
	opts.DecisionEveryMinutes = 5
	opts.ResizeDelayMinutes = 1
	const season = 24 * 60

	run := func(maxUncertainty float64) (*sim.Result, error) {
		algo, err := core.New(core.DefaultConfig(maxCores))
		if err != nil {
			return nil, err
		}
		pro, err := core.NewProactive(algo, forecast.NewIntervalSeasonalNaive(season), 40, 60, season)
		if err != nil {
			return nil, err
		}
		pro.MaxRelativeUncertainty = maxUncertainty
		rec := &proactiveAdapter{pro: pro}
		return sim.Run(tr, rec, opts)
	}

	without, err := run(0) // prefilter disabled
	if err != nil {
		return nil, err
	}
	with, err := run(0.8)
	if err != nil {
		return nil, err
	}

	res := &AblationPrefilterResult{Without: without, With: with}
	tb := NewTable("Ablation — forecast-confidence prefilter on the outlier-spike trace (c_29247)",
		"prefilter", "sum slack K", "sum insufficient C", "scalings N")
	tb.AddRow("off (paper's current system)", without.SumSlack, without.SumInsufficient, without.NumScalings)
	tb.AddRow("on (§4.3 planned)", with.SumSlack, with.SumInsufficient, with.NumScalings)
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("the prefilter discards post-outlier forecasts whose intervals ballooned, trimming the projected slack\n")
	res.Report = b.String()
	return res, nil
}

// proactiveAdapter exposes a core.Proactive with prefilter settings as a
// recommend.Recommender (the standard adapter does not surface the
// prefilter knob).
type proactiveAdapter struct {
	pro     *core.Proactive
	history []float64
}

func (a *proactiveAdapter) Name() string { return "caasper-proactive-prefilter" }

func (a *proactiveAdapter) Observe(_ int, usage float64) {
	a.history = append(a.history, usage)
}

func (a *proactiveAdapter) Recommend(current int) int {
	d, _, err := a.pro.Decide(current, a.history)
	if err != nil {
		return current
	}
	return d.TargetCores
}

func (a *proactiveAdapter) Reset() { a.history = a.history[:0] }
