package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"caasper/internal/pvp"
	"caasper/internal/stats"
)

// This file implements the paper's §8 future-work direction "automatic
// scaling of other resource types, e.g., memory, disk": a multi-resource
// variant of the CaaSPER decision built on the general Doppler curve
// (pvp.MultiCurve). Per §4.2, "when scaling applications on top of
// platforms like K8s, each resource can be scaled independently and we
// can treat each resource scaling problem separately" — so the
// multi-resource recommender runs one Algorithm 1-style evaluation per
// dimension over that dimension's marginal usage distribution and emits
// an independent target per resource.

// ResourceLadder bounds one scalable dimension.
type ResourceLadder struct {
	// Min and Max bound the allocation in the dimension's native unit
	// (cores, GiB, ...).
	Min, Max int
	// Step is the allocation granularity (1 core; 4 GiB; ...).
	Step int
}

// Validate checks ladder invariants.
func (l ResourceLadder) Validate() error {
	if l.Min < 1 || l.Max < l.Min {
		return errors.New("core: bad resource ladder bounds")
	}
	if l.Step < 1 {
		return errors.New("core: ladder step must be ≥ 1")
	}
	return nil
}

// MultiResourceConfig configures a per-dimension decision.
type MultiResourceConfig struct {
	// Ladders maps dimension name → its allocation ladder.
	Ladders map[string]ResourceLadder
	// Base carries the shared Algorithm 1 thresholds (slope/slack bands,
	// step bounds, quantile). Its SKU ladder is overridden per
	// dimension.
	Base Config
}

// MultiResourceDecision is the per-dimension outcome.
type MultiResourceDecision struct {
	// Targets maps dimension name → recommended allocation (in the
	// dimension's native units).
	Targets map[string]int
	// PerDimension carries the full per-dimension decisions for
	// interpretability.
	PerDimension map[string]Decision
}

// AnyChange reports whether any dimension moved.
func (d MultiResourceDecision) AnyChange(current map[string]int) bool {
	for dim, target := range d.Targets {
		if target != current[dim] {
			return true
		}
	}
	return false
}

// MultiResourceRecommender evaluates independent per-dimension decisions.
type MultiResourceRecommender struct {
	cfg MultiResourceConfig
}

// NewMultiResource builds the recommender.
func NewMultiResource(cfg MultiResourceConfig) (*MultiResourceRecommender, error) {
	if len(cfg.Ladders) == 0 {
		return nil, errors.New("core: no resource ladders")
	}
	for dim, l := range cfg.Ladders {
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("core: dimension %q: %w", dim, err)
		}
	}
	return &MultiResourceRecommender{cfg: cfg}, nil
}

// Decide evaluates every configured dimension against its marginal usage
// series drawn from the samples. current maps dimension → current
// allocation; dimensions present in Ladders but absent from current
// default to their ladder minimum.
func (m *MultiResourceRecommender) Decide(current map[string]int, samples []pvp.UsageSample) (MultiResourceDecision, error) {
	if len(samples) == 0 {
		return MultiResourceDecision{}, ErrNoUsage
	}
	out := MultiResourceDecision{
		Targets:      make(map[string]int, len(m.cfg.Ladders)),
		PerDimension: make(map[string]Decision, len(m.cfg.Ladders)),
	}
	// Deterministic iteration order for reproducible explanations.
	dims := make([]string, 0, len(m.cfg.Ladders))
	for dim := range m.cfg.Ladders {
		dims = append(dims, dim)
	}
	sort.Strings(dims)

	for _, dim := range dims {
		ladder := m.cfg.Ladders[dim]
		usage := marginal(samples, dim, ladder.Step)

		cfg := m.cfg.Base
		cfg.SKUs = pvp.SKURange{
			MinCores:     stepsFor(ladder.Min, ladder.Step),
			MaxCores:     stepsFor(ladder.Max, ladder.Step),
			PricePerCore: 1,
		}
		cfg.MinCores = cfg.SKUs.MinCores
		rec, err := New(cfg)
		if err != nil {
			return MultiResourceDecision{}, fmt.Errorf("core: dimension %q: %w", dim, err)
		}
		cur := current[dim]
		if cur < ladder.Min {
			cur = ladder.Min
		}
		d, err := rec.Decide(stepsFor(cur, ladder.Step), usage)
		if err != nil {
			return MultiResourceDecision{}, fmt.Errorf("core: dimension %q: %w", dim, err)
		}
		target := stats.ClampInt(d.TargetCores*ladder.Step, ladder.Min, ladder.Max)
		d.Explanation = fmt.Sprintf("[%s] %s", dim, d.Explanation)
		out.Targets[dim] = target
		out.PerDimension[dim] = d
	}
	return out, nil
}

// marginal extracts one dimension's usage series, rescaled into ladder
// steps so the integral-SKU curve machinery applies unchanged.
func marginal(samples []pvp.UsageSample, dim string, step int) []float64 {
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		out = append(out, s[dim]/float64(step))
	}
	return out
}

// stepsFor converts a native-unit allocation into ladder steps, rounding
// up so capacity is never under-represented.
func stepsFor(nativeUnits, step int) int {
	return int(math.Ceil(float64(nativeUnits) / float64(step)))
}
