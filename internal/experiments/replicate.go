package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"caasper/internal/parallel"
	"caasper/internal/stats"
)

// The paper reports its live metrics with error margins ("141±4 ms",
// "measured by multiple runs in the same cluster", §6.2 / Table 1). This
// file provides the replication machinery: run an experiment across
// several seeds and summarise each metric as mean ± sample standard
// deviation.

// MetricSample is one named metric value from one replica run.
type MetricSample struct {
	Name  string
	Value float64
}

// ReplicatedMetric is a metric summarised across replicas.
type ReplicatedMetric struct {
	Name string
	// Mean and Std are across replicas.
	Mean, Std float64
	// N is the replica count.
	N int
}

// String renders the paper's "value±margin" form.
func (m ReplicatedMetric) String() string {
	return fmt.Sprintf("%.1f±%.1f", m.Mean, m.Std)
}

// Replicate runs fn once per seed and aggregates the returned metrics by
// name. Every run must return the same metric set; mismatches error. It
// fans the seeds out across runtime.GOMAXPROCS(0) workers; use
// ReplicateWorkers to bound the pool explicitly.
func Replicate(seeds []uint64, fn func(seed uint64) ([]MetricSample, error)) ([]ReplicatedMetric, error) {
	return ReplicateWorkers(seeds, 0, fn)
}

// ReplicateWorkers is Replicate with an explicit worker count (values
// below 1 select runtime.GOMAXPROCS(0)). fn must be safe for concurrent
// calls — every experiment here derives all state from its seed. Replica
// results are written by seed index and aggregated sequentially in seed
// order afterwards, so the output (including metric ordering and the
// floating-point mean/stddev accumulation order) is identical for every
// worker count; on failure the error of the earliest seed wins.
func ReplicateWorkers(seeds []uint64, workers int, fn func(seed uint64) ([]MetricSample, error)) ([]ReplicatedMetric, error) {
	if len(seeds) == 0 {
		return nil, errors.New("experiments: no seeds")
	}
	runs, err := parallel.Map(context.Background(), len(seeds), workers, func(i int) ([]MetricSample, error) {
		samples, err := fn(seeds[i])
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seeds[i], err)
		}
		return samples, nil
	})
	if err != nil {
		return nil, err
	}
	values := map[string][]float64{}
	var order []string
	for _, samples := range runs {
		for _, s := range samples {
			if _, ok := values[s.Name]; !ok {
				order = append(order, s.Name)
			}
			values[s.Name] = append(values[s.Name], s.Value)
		}
	}
	out := make([]ReplicatedMetric, 0, len(order))
	for _, name := range order {
		vs := values[name]
		if len(vs) != len(seeds) {
			return nil, fmt.Errorf("experiments: metric %q present in %d of %d runs", name, len(vs), len(seeds))
		}
		out = append(out, ReplicatedMetric{
			Name: name,
			Mean: stats.Mean(vs),
			Std:  stats.StdDev(vs),
			N:    len(vs),
		})
	}
	return out, nil
}

// ReplicatedFigure9 runs the Figure 9 / Table 1 live experiment across
// the given seeds and reports each headline metric with its ± margin —
// the paper's presentation format for that table. Replicas run across
// workers goroutines (below 1: runtime.GOMAXPROCS(0)).
func ReplicatedFigure9(seeds []uint64, workers int) ([]ReplicatedMetric, string, error) {
	metrics, err := ReplicateWorkers(seeds, workers, func(seed uint64) ([]MetricSample, error) {
		r, err := Figure9Table1(seed)
		if err != nil {
			return nil, err
		}
		return []MetricSample{
			{Name: "control avg lat (ms)", Value: r.Control.DB.AvgLatencyMS},
			{Name: "control med lat (ms)", Value: r.Control.DB.MedLatencyMS},
			{Name: "caasper avg lat (ms)", Value: r.CaaSPER.DB.AvgLatencyMS},
			{Name: "caasper med lat (ms)", Value: r.CaaSPER.DB.MedLatencyMS},
			{Name: "caasper price (% of control)", Value: r.CostRatio * 100},
			{Name: "caasper slack reduction (%)", Value: r.SlackReduction * 100},
			{Name: "caasper resizes", Value: float64(r.Resizes)},
		}, nil
	})
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 (non-cyclical) across %d replica runs (mean±sd, paper form \"141±4\"):\n", len(seeds))
	for _, m := range metrics {
		fmt.Fprintf(&b, "  %-30s %s\n", m.Name, m.String())
	}
	return metrics, b.String(), nil
}
