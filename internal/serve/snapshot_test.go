package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// feedHalves posts usage to a server in two halves with an optional
// action between them, then returns the explained decision stream.
func decisionsOf(t *testing.T, base, id string) string {
	t.Helper()
	code, body, _ := do(t, http.MethodGet, base+"/v1/tenants/"+id+"/decisions?explain=1", "")
	if code != http.StatusOK {
		t.Fatalf("decisions: %d %s", code, body)
	}
	return body
}

// TestSnapshotRestartBitIdentical pins the durability contract: a server
// stopped mid-window, checkpointed and restored emits byte-for-byte the
// same subsequent decision NDJSON as an uninterrupted server fed the
// identical sample stream. The cut points land mid-warm-up, mid-window
// and past a full window to cover the mirrored-ring replay paths.
func TestSnapshotRestartBitIdentical(t *testing.T) {
	usage := rampUsage(240)
	tenants := []struct{ id, cfg string }{
		{"re", `{"policy":"caasper","max_cores":10,"initial_cores":5}`},
		{"pro", `{"policy":"caasper-proactive","max_cores":10,"initial_cores":5}`},
		{"narrow", `{"policy":"caasper","max_cores":10,"initial_cores":5,"window":12}`},
	}

	for _, cut := range []int{17, 90, 203} {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			// Control: one uninterrupted server over the full stream.
			_, ctlURL := testServer(t, Options{DecisionEveryMinutes: 10})
			for _, tn := range tenants {
				register(t, ctlURL.URL, tn.id, tn.cfg)
				postSamples(t, ctlURL.URL, tn.id, usage)
				waitSamples(t, ctlURL.URL, tn.id, len(usage))
			}

			// Interrupted: first half, drain + snapshot, restore into a
			// fresh server, second half.
			snap := filepath.Join(t.TempDir(), "serve.snapshot")
			s1, err := New(Options{DecisionEveryMinutes: 10, SnapshotPath: snap})
			if err != nil {
				t.Fatal(err)
			}
			ts1 := newTestFrontend(t, s1)
			for _, tn := range tenants {
				register(t, ts1, tn.id, tn.cfg)
				postSamples(t, ts1, tn.id, usage[:cut])
				waitSamples(t, ts1, tn.id, cut)
			}
			if err := s1.Close(); err != nil { // drain + checkpoint
				t.Fatal(err)
			}

			s2, err := New(Options{DecisionEveryMinutes: 10, SnapshotPath: snap})
			if err != nil {
				t.Fatal(err)
			}
			ts2 := newTestFrontend(t, s2)
			defer s2.Close()
			for _, tn := range tenants {
				// Restored server already knows the tenant — no re-PUT.
				postSamples(t, ts2, tn.id, usage[cut:])
				waitSamples(t, ts2, tn.id, len(usage))
			}

			for _, tn := range tenants {
				want := decisionsOf(t, ctlURL.URL, tn.id)
				got := decisionsOf(t, ts2, tn.id)
				if want != got {
					t.Errorf("tenant %s: decision stream diverged after restart at sample %d\ncontrol:\n%s\nrestored:\n%s",
						tn.id, cut, want, got)
				}
			}
		})
	}
}

// TestSnapshotBaselineColdRestore pins the documented contract for
// policies without recommend.StateSnapshotter (the decayed-histogram VPA
// baseline): the observation state restores cold, but the allocation,
// sample clock, sequence numbers and decision log all carry over.
func TestSnapshotBaselineColdRestore(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "serve.snapshot")
	s1, err := New(Options{DecisionEveryMinutes: 10, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestFrontend(t, s1)
	register(t, ts1, "base", `{"policy":"vpa","max_cores":10}`)
	postSamples(t, ts1, "base", rampUsage(50))
	waitSamples(t, ts1, "base", 50)
	preLog := decisionsOf(t, ts1, "base")
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{DecisionEveryMinutes: 10, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestFrontend(t, s2)
	defer s2.Close()
	_, body, _ := do(t, http.MethodGet, ts2+"/v1/tenants/base", "")
	var st tenantStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Samples != 50 || st.Decision != 5 {
		t.Fatalf("restored status = %+v (want sample clock and seq carried over)", st)
	}
	if got := decisionsOf(t, ts2, "base"); got != preLog {
		t.Fatalf("restored decision log diverged:\n%s\nvs\n%s", got, preLog)
	}
	postSamples(t, ts2, "base", rampUsage(10))
	waitSamples(t, ts2, "base", 60)
	_, body, _ = do(t, http.MethodGet, ts2+"/v1/tenants/base/decisions?since=5", "")
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly one post-restore decision, got %d", len(lines))
	}
	var rec DecisionRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 6 || rec.Minute != 59 {
		t.Fatalf("post-restore decision = %+v (want seq 6 at minute 59)", rec)
	}
}

// TestSnapshotFileShape pins the checkpoint format: versioned header plus
// one sorted tenant line each.
func TestSnapshotFileShape(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "serve.snapshot")
	s, err := New(Options{SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestFrontend(t, s)
	register(t, ts, "b", `{"max_cores":4}`)
	register(t, ts, "a", `{"max_cores":4}`)
	postSamples(t, ts, "a", rampUsage(25))
	waitSamples(t, ts, "a", 25)

	code, _, _ := do(t, http.MethodPost, ts+"/v1/admin/snapshot", "")
	if code != http.StatusOK {
		t.Fatalf("snapshot endpoint: %d", code)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("snapshot has %d lines, want header + 2 tenants", len(lines))
	}
	var hdr snapshotHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Format != "caasper-serve" || hdr.Version != snapshotVersion || hdr.Tenants != 2 {
		t.Fatalf("header = %+v", hdr)
	}
	var first snapshotTenant
	if err := json.Unmarshal([]byte(lines[1]), &first); err != nil {
		t.Fatal(err)
	}
	if first.ID != "a" || !first.HasState {
		t.Fatalf("first tenant line = %+v (want sorted, with state)", first)
	}
	s.Close()
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	for _, tc := range []struct{ name, payload string }{
		{"empty", ""},
		{"wrong format", `{"format":"other","version":1,"tenants":0}`},
		{"wrong version", `{"format":"caasper-serve","version":99,"tenants":0}`},
		{"truncated", `{"format":"caasper-serve","version":1,"tenants":3}`},
		{"garbage tenant", `{"format":"caasper-serve","version":1,"tenants":1}` + "\nnot json"},
	} {
		s, err := New(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(strings.NewReader(tc.payload)); err == nil {
			t.Errorf("%s: Restore accepted a bad snapshot", tc.name)
		}
		s.Close()
	}
}

// TestColdStartWithoutSnapshot pins that a missing checkpoint file is a
// cold start, not an error.
func TestColdStartWithoutSnapshot(t *testing.T) {
	s, err := New(Options{SnapshotPath: filepath.Join(t.TempDir(), "nope.snapshot")})
	if err != nil {
		t.Fatalf("missing snapshot must cold-start: %v", err)
	}
	s.Close()
}
