// Package parallel is the deterministic fan-out engine behind the
// evaluation stack: the §5 random parameter search, the trace×recommender
// simulation matrix and the experiment replication suites all distribute
// independent tasks across a bounded worker pool through it.
//
// Determinism contract: callers enumerate their tasks up front (consuming
// any shared RNG stream *sequentially*), workers write results into
// index-addressed slots, and error selection is by lowest task index — so
// the observable outcome of a run is identical for every worker count,
// including 1. The engine never reorders, samples or drops work.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalises a requested worker count: values below 1 become
// runtime.GOMAXPROCS(0) (use every core the runtime may schedule on), and
// the result never exceeds the task count n.
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach invokes fn(i) for every i in [0, n) across a bounded pool of
// workers goroutines (workers < 1 selects runtime.GOMAXPROCS(0)). fn must
// be safe for concurrent invocation and should write its result into an
// index-addressed slot of a caller-owned slice.
//
// Error handling is deterministic: every task runs regardless of other
// tasks' failures (results stay complete and worker-count-independent),
// and if any tasks fail the error from the lowest index is returned.
// A nil ctx is allowed; a cancelled ctx stops workers from *starting*
// further tasks and its error is returned unless a task error (which has
// a definite index) occurred first.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)

	if workers == 1 {
		// Sequential fast path: same contract, no goroutines. Tasks after
		// a failure still run so the result set matches parallel runs.
		var firstErr error
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					break
				}
			}
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var (
		mu      sync.Mutex
		next    int // next task index to hand out
		errIdx  = -1
		taskErr error
		ctxErr  error
		wg      sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				if ctxErr == nil {
					ctxErr = err
				}
				return 0, false
			}
		}
		i := next
		next++
		return i, true
	}
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if errIdx == -1 || i < errIdx {
			errIdx, taskErr = i, err
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()

	if taskErr != nil {
		return taskErr
	}
	return ctxErr
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results as an index-addressed slice: out[i] is fn(i)'s value regardless
// of scheduling. On error the slice is still returned (slots whose tasks
// failed hold fn's returned value for that index); the error reported is
// the one from the lowest failing index.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}
