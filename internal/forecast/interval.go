package forecast

import (
	"math"

	"caasper/internal/stats"
)

// IntervalForecaster extends Forecaster with prediction intervals. The
// paper's §4.3/§8 future work plans to use confidence values "as a
// prefilter ... to improve the balance between predictive and reactive
// components" — core.Proactive consumes this interface when its
// uncertainty prefilter is enabled.
type IntervalForecaster interface {
	Forecaster
	// ForecastInterval returns the point forecast together with lower
	// and upper bounds at roughly 95% coverage. All three slices have
	// length horizon.
	ForecastInterval(history []float64, horizon int) (point, lo, hi []float64, err error)
}

// IntervalSeasonalNaive wraps SeasonalNaive with empirical prediction
// intervals: the residuals between the two most recent seasons estimate
// the forecast error spread, and the interval is point ± z·sd with
// z = 1.96. With fewer than two full seasons the interval degenerates to
// the point forecast (maximal confidence is the safe default: the
// prefilter then never blocks the reactive fallback path, which handles
// cold starts on its own).
type IntervalSeasonalNaive struct {
	SeasonalNaive
}

// NewIntervalSeasonalNaive builds the interval-carrying seasonal-naive
// forecaster.
func NewIntervalSeasonalNaive(season int) *IntervalSeasonalNaive {
	return &IntervalSeasonalNaive{SeasonalNaive{Season: season}}
}

// Name implements Forecaster.
func (f *IntervalSeasonalNaive) Name() string {
	return "interval-" + f.SeasonalNaive.Name()
}

// HistoryNeed implements HistoryBound, overriding the embedded
// SeasonalNaive's answer: residualSD compares the last two full seasons,
// so the interval (and hence the §4.3 prefilter verdict) depends on
// 2×Season trailing samples, not one.
func (f *IntervalSeasonalNaive) HistoryNeed() int {
	if f.Season <= 1 {
		return 1
	}
	return 2 * f.Season
}

// ForecastInterval implements IntervalForecaster.
func (f *IntervalSeasonalNaive) ForecastInterval(history []float64, horizon int) (point, lo, hi []float64, err error) {
	point, err = f.Forecast(history, horizon)
	if err != nil {
		return nil, nil, nil, err
	}
	sd := f.residualSD(history)
	lo = make([]float64, len(point))
	hi = make([]float64, len(point))
	const z = 1.96
	for i, p := range point {
		l := p - z*sd
		if l < 0 {
			l = 0
		}
		lo[i] = l
		hi[i] = p + z*sd
	}
	return point, lo, hi, nil
}

// residualSD estimates the one-season-ahead forecast error spread from
// the residuals between the last two full seasons.
func (f *IntervalSeasonalNaive) residualSD(history []float64) float64 {
	m := f.Season
	if m <= 1 || len(history) < 2*m {
		return 0
	}
	res := make([]float64, m)
	for i := 0; i < m; i++ {
		cur := history[len(history)-m+i]
		prev := history[len(history)-2*m+i]
		res[i] = cur - prev
	}
	return stats.StdDev(res)
}

// RelativeUncertainty summarises an interval forecast as a single number:
// the mean interval half-width divided by the mean point forecast (floored
// at a small epsilon). A value of 0 means perfectly confident; values
// above ~1 mean the interval is wider than the forecast itself.
func RelativeUncertainty(point, lo, hi []float64) float64 {
	if len(point) == 0 {
		return 0
	}
	var width, level float64
	for i := range point {
		width += (hi[i] - lo[i]) / 2
		level += point[i]
	}
	width /= float64(len(point))
	level /= float64(len(point))
	if level < 0.1 {
		level = 0.1
	}
	if math.IsNaN(width) || math.IsInf(width, 0) {
		return math.Inf(1)
	}
	return width / level
}
