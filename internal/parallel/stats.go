package parallel

import (
	"context"
	"sync/atomic"
	"time"

	"caasper/internal/obs"
)

// Stats accumulates the runtime behaviour of pool runs: how many tasks
// ran, across how many workers, how deep the backlog got, and the
// wall-clock latency distribution of individual tasks. All measurements
// are wall-clock and therefore outside the determinism contract — they
// describe how fast the engine ran, never what it computed.
//
// A Stats value may be reused across several ForEachStats calls; the
// counters and the latency histogram accumulate. All methods are safe for
// concurrent use.
type Stats struct {
	tasks    atomic.Int64
	maxQueue atomic.Int64
	busy     atomic.Int64 // summed nanoseconds inside task fns
	elapsed  atomic.Int64 // summed nanoseconds of whole runs
	workers  atomic.Int64 // pool size of the most recent run
	latency  *obs.Histogram
}

// NewStats builds an empty accumulator with a duration-bucketed latency
// histogram.
func NewStats() *Stats {
	return &Stats{latency: obs.NewDurationHistogram()}
}

// Tasks returns the number of tasks executed.
func (s *Stats) Tasks() int64 { return s.tasks.Load() }

// Workers returns the pool size of the most recent run (1 means the
// sequential fast path).
func (s *Stats) Workers() int { return int(s.workers.Load()) }

// MaxQueueDepth returns the largest backlog (tasks not yet handed to a
// worker) observed at any claim.
func (s *Stats) MaxQueueDepth() int64 { return s.maxQueue.Load() }

// BusyNanos returns summed wall time spent inside task functions.
func (s *Stats) BusyNanos() int64 { return s.busy.Load() }

// ElapsedNanos returns summed wall time of the runs themselves.
func (s *Stats) ElapsedNanos() int64 { return s.elapsed.Load() }

// Latency returns the per-task wall-latency histogram (nanoseconds).
func (s *Stats) Latency() *obs.Histogram { return s.latency }

// Utilization returns busy ÷ (workers × elapsed): the fraction of the
// pool's available worker-time spent inside task functions, in [0, 1].
// Values well below 1 on a saturated pool point at claim contention or
// wildly uneven task sizes.
func (s *Stats) Utilization() float64 {
	w, e := s.workers.Load(), s.elapsed.Load()
	if w <= 0 || e <= 0 {
		return 0
	}
	u := float64(s.busy.Load()) / (float64(w) * float64(e))
	if u > 1 {
		u = 1 // scheduling jitter can nudge the ratio past 1
	}
	return u
}

// observeQueueDepth records the backlog after the claim that just issued.
func (s *Stats) observeQueueDepth(pending int64) {
	for {
		old := s.maxQueue.Load()
		if pending <= old {
			return
		}
		if s.maxQueue.CompareAndSwap(old, pending) {
			return
		}
	}
}

// ForEachStats is ForEach with runtime accounting: identical semantics,
// determinism contract and error selection, plus per-task latency, busy
// time, queue depth and utilization recorded into st. A nil st degrades
// to plain ForEach with zero overhead.
func ForEachStats(ctx context.Context, n, workers int, st *Stats, fn func(i int) error) error {
	if st == nil {
		return ForEach(ctx, n, workers, fn)
	}
	if n <= 0 {
		return nil
	}
	st.workers.Store(int64(Workers(workers, n)))
	var issued atomic.Int64
	start := time.Now()
	err := ForEach(ctx, n, workers, func(i int) error {
		st.observeQueueDepth(int64(n) - issued.Add(1))
		t0 := time.Now()
		taskErr := fn(i)
		d := time.Since(t0)
		st.latency.Observe(float64(d.Nanoseconds()))
		st.busy.Add(d.Nanoseconds())
		st.tasks.Add(1)
		return taskErr
	})
	st.elapsed.Add(time.Since(start).Nanoseconds())
	return err
}
