package stats

import "math"

// RNG is a small, fast, deterministic random number generator
// (xorshift64* core) used throughout the repository wherever randomness is
// needed: synthetic trace noise, random parameter search, arrival jitter.
// It exists so that every experiment is reproducible from an explicit seed
// and so that no package depends on global math/rand state.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from the Box–Muller
	// transform (NormFloat64 produces two per trig evaluation).
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant (xorshift requires non-zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &RNG{state: seed}
	// Warm up: the first few xorshift outputs correlate with small seeds.
	for i := 0; i < 8; i++ {
		r.next()
	}
	return r
}

func (r *RNG) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next() }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal deviate via Box–Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u1 float64
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*u2)
}

// LogUniform returns a value whose natural log is uniform in [lnLo, lnHi].
// The paper's Eq. 6 samples the slack-penalty coefficient alpha from a
// log-uniform (reciprocal) distribution.
func (r *RNG) LogUniform(lnLo, lnHi float64) float64 {
	return math.Exp(r.Range(lnLo, lnHi))
}

// Fork derives an independent child generator; useful for giving each
// parallel experiment its own deterministic stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.next())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
