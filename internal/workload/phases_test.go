package workload

import (
	"math"
	"testing"
	"time"

	"caasper/internal/trace"
)

// trace30s builds a 3-sample trace at 30-second resolution for the
// sub-minute TracePattern test.
func trace30s() *trace.Trace {
	return trace.New("fine", 30*time.Second, []float64{10, 20, 30})
}

func TestMixAtWithoutPhases(t *testing.T) {
	ls := &LoadSchedule{Mix: TPCCMix()}
	if got := ls.MixAt(500); len(got) != len(TPCCMix()) {
		t.Error("phase-less schedule should return Mix")
	}
}

func TestMixAtPhaseBoundaries(t *testing.T) {
	light, heavy := YCSBMix(), TPCHMix()
	ls := &LoadSchedule{
		Mix: light,
		Phases: []MixPhase{
			{Mix: light, Minutes: 60},
			{Mix: heavy, Minutes: 120},
			{Mix: light, Minutes: 60},
		},
	}
	cases := []struct {
		minute float64
		write  float64 // expected write fraction identifies the mix
	}{
		{0, 0.5},     // ycsb
		{59.9, 0.5},  // still ycsb
		{60, 0},      // tpch (read-only)
		{179.9, 0},   // still tpch
		{180, 0.5},   // ycsb again
		{10000, 0.5}, // past the end: last phase holds
	}
	for _, c := range cases {
		if got := ls.MixAt(c.minute).WriteFraction(); got != c.write {
			t.Errorf("MixAt(%v) write fraction = %v, want %v", c.minute, got, c.write)
		}
	}
}

func TestCPUDemandPatternHonoursPhases(t *testing.T) {
	light, heavy := YCSBMix(), TPCHMix()
	ls := &LoadSchedule{
		Mix: light,
		Phases: []MixPhase{
			{Mix: light, Minutes: 60},
			{Mix: heavy, Minutes: 60},
		},
		Rate:     Constant(10),
		Duration: 2 * time.Hour,
	}
	demand := ls.CPUDemandPattern()
	lightDemand := demand(30)
	heavyDemand := demand(90)
	if math.Abs(lightDemand-10*light.MeanCPUSeconds()) > 1e-12 {
		t.Errorf("light demand = %v", lightDemand)
	}
	if math.Abs(heavyDemand-10*heavy.MeanCPUSeconds()) > 1e-12 {
		t.Errorf("heavy demand = %v", heavyDemand)
	}
	if heavyDemand <= lightDemand {
		t.Error("tpch phase should demand far more CPU")
	}
}

func TestTracePattern(t *testing.T) {
	tr := Render("tp", Constant(0), 3*time.Minute)
	tr.Values[0], tr.Values[1], tr.Values[2] = 1, 2, 3
	p := TracePattern(tr)
	if p(0) != 1 || p(0.5) != 1 || p(1) != 2 || p(2.9) != 3 {
		t.Errorf("TracePattern lookups wrong: %v %v %v %v", p(0), p(0.5), p(1), p(2.9))
	}
	// Past the end clamps to the last sample.
	if p(100) != 3 {
		t.Errorf("clamp = %v", p(100))
	}
	// Sub-minute intervals index correctly.
	fine := trace30s()
	pf := TracePattern(fine)
	if pf(0) != 10 || pf(0.5) != 20 || pf(1) != 30 {
		t.Errorf("30s pattern: %v %v %v", pf(0), pf(0.5), pf(1))
	}
}
