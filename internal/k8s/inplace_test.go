package k8s

import "testing"

func TestResizeInPlaceAdjustsAllocation(t *testing.T) {
	c, err := NewCluster(NewNode("n1", 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	p := &Pod{Name: "a", Phase: PhasePending, Spec: NewGuaranteedSpec(2, 8)}
	if err := c.Schedule(p); err != nil {
		t.Fatal(err)
	}
	// Grow within capacity.
	if err := c.ResizeInPlace(p, NewGuaranteedSpec(6, 8)); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalAllocated().CPUCores; got != 6 {
		t.Errorf("allocated = %v, want 6", got)
	}
	if p.CPULimit() != 6 {
		t.Errorf("limit = %v", p.CPULimit())
	}
	// Grow beyond capacity: rejected (the real feature's Infeasible).
	if err := c.ResizeInPlace(p, NewGuaranteedSpec(9, 8)); err == nil {
		t.Error("over-capacity in-place resize should fail")
	}
	if p.CPULimit() != 6 {
		t.Error("failed resize must not change the spec")
	}
	// Shrink always fits.
	if err := c.ResizeInPlace(p, NewGuaranteedSpec(2, 8)); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalAllocated().CPUCores; got != 2 {
		t.Errorf("allocated after shrink = %v", got)
	}
	// Invalid spec rejected.
	if err := c.ResizeInPlace(p, ContainerSpec{}); err == nil {
		t.Error("invalid spec should fail")
	}
	// Unbound pod: spec updates locally.
	q := &Pod{Name: "q", Spec: NewGuaranteedSpec(1, 1)}
	if err := c.ResizeInPlace(q, NewGuaranteedSpec(3, 1)); err != nil {
		t.Fatal(err)
	}
	if q.CPULimit() != 3 {
		t.Error("unbound pod spec not updated")
	}
	// Pod bound to a vanished node: error.
	ghost := &Pod{Name: "g", NodeName: "gone", Spec: NewGuaranteedSpec(1, 1)}
	if err := c.ResizeInPlace(ghost, NewGuaranteedSpec(2, 1)); err == nil {
		t.Error("unknown node should fail")
	}
}

func TestOperatorInPlaceResizeIsInstantAndQuiet(t *testing.T) {
	c := SmallCluster()
	set, err := NewStatefulSet("db", 3, 2, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(set, c, 300)
	if err != nil {
		t.Fatal(err)
	}
	op.InPlace = true

	var downs int
	op.OnPodDown = func(*Pod) { downs++ }

	if err := op.RequestResize(6, 1000); err != nil {
		t.Fatal(err)
	}
	// Instant: no update in flight, every pod already resized, no
	// restarts, no failovers (§6.2 footnote 10).
	if op.Updating() {
		t.Error("in-place resize should complete synchronously")
	}
	for _, p := range set.Pods {
		if p.CPULimit() != 6 || !p.Running() || p.Restarts != 0 {
			t.Errorf("pod %s: limit=%v phase=%s restarts=%d", p.Name, p.CPULimit(), p.Phase, p.Restarts)
		}
	}
	if downs != 0 || op.FailoverCount != 0 {
		t.Errorf("downs=%d failovers=%d, want 0", downs, op.FailoverCount)
	}
	if op.ResizeCount != 1 || op.EffectiveAt != 1000 {
		t.Errorf("ResizeCount=%d EffectiveAt=%d", op.ResizeCount, op.EffectiveAt)
	}
	if p := set.Primary(); p == nil || p.Ordinal != 0 {
		t.Error("primary must not move during in-place resize")
	}
}

func TestOperatorInPlaceInfeasibleRollsBack(t *testing.T) {
	// A 2-node cluster where each node fits one pod at 4 cores but not 8.
	c, err := NewCluster(NewNode("n1", 6, 32), NewNode("n2", 6, 32))
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewStatefulSet("db", 2, 4, 8, c)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(set, c, 60)
	if err != nil {
		t.Fatal(err)
	}
	op.InPlace = true
	if err := op.RequestResize(8, 0); err == nil {
		t.Fatal("infeasible in-place resize should fail")
	}
	// All pods rolled back to the original spec.
	for _, p := range set.Pods {
		if p.CPULimit() != 4 {
			t.Errorf("pod %s limit = %v after rollback, want 4", p.Name, p.CPULimit())
		}
	}
	if got := c.TotalAllocated().CPUCores; got != 8 {
		t.Errorf("allocated = %v, want original 8", got)
	}
	if op.ResizeCount != 0 {
		t.Errorf("failed resize counted: %d", op.ResizeCount)
	}
}
