// Command caasper-compare runs a matrix of recommenders over a set of
// workload traces under identical simulator settings and prints the
// K/C/N / throughput / cost comparison — the quickest way to see where
// each policy wins.
//
// Examples:
//
//	caasper-compare -workloads step62h,cyclical3d
//	caasper-compare -workloads workday12h -recommenders caasper,vpa,autopilot
//	caasper-compare -alibaba c_1,c_29247 -recommenders caasper,caasper-proactive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"caasper"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/sim"
	"caasper/internal/trace"
	"caasper/internal/workload"
)

func main() {
	var (
		workloads    = flag.String("workloads", "workday12h", "comma-separated synthetic workload names")
		alibaba      = flag.String("alibaba", "", "comma-separated alibaba trace ids")
		recommenders = flag.String("recommenders", "control,caasper,caasper-proactive,vpa,openshift,autopilot", "comma-separated policies")
		seed         = flag.Uint64("seed", 1, "workload seed")
		season       = flag.Int("season", 1440, "seasonal period for the proactive policy (minutes)")
		workers      = flag.Int("workers", 0, "worker goroutines for matrix cells (default: GOMAXPROCS; the table is identical for any value)")
	)
	var cli obs.CLIConfig
	cli.Register(flag.CommandLine)
	flag.Parse()

	session, err := cli.Start()
	if err != nil {
		fatal(err)
	}
	defer session.Finish(os.Stdout)
	session.FlushOnSignal(os.Stdout, "caasper-compare")

	traces, err := collectTraces(*workloads, *alibaba, *seed)
	if err != nil {
		fatal(err)
	}
	factories, err := collectFactories(*recommenders, traces, *season)
	if err != nil {
		fatal(err)
	}
	session.Log.Infof("matrix: %d traces x %d recommenders", len(traces), len(factories))

	m, err := sim.RunMatrix(traces, factories, sim.Options{
		DecisionEveryMinutes: 10,
		ResizeDelayMinutes:   10,
		BillingPeriod:        time.Hour,
		Workers:              *workers,
		Events:               session.Events,
		Metrics:              session.Metrics,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(m.Summary())
}

func collectTraces(workloads, alibaba string, seed uint64) ([]*trace.Trace, error) {
	var out []*trace.Trace
	if alibaba != "" {
		for _, id := range splitList(alibaba) {
			tr, err := workload.AlibabaTrace(id, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, tr)
		}
		return out, nil
	}
	for _, name := range splitList(workloads) {
		gen, ok := caasper.Workloads[name]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		out = append(out, gen(seed))
	}
	return out, nil
}

func collectFactories(list string, traces []*trace.Trace, season int) ([]sim.RecommenderFactory, error) {
	// Size the shared ladder from the largest trace peak so every
	// policy competes on the same field.
	peak := 0.0
	for _, tr := range traces {
		if m := tr.Summarize().Max; m > peak {
			peak = m
		}
	}
	maxCores := int(peak*1.5) + 2
	controlCores := int(peak) + 1

	settings := caasper.RecommenderSettings{
		MaxCores:     maxCores,
		Season:       season,
		ControlCores: controlCores,
	}
	var out []sim.RecommenderFactory
	for _, name := range splitList(list) {
		name := name
		// Validate eagerly so an unknown name fails before any cell runs.
		if _, err := caasper.NewRecommenderByName(name, settings); err != nil {
			return nil, err
		}
		out = append(out, sim.RecommenderFactory{Name: name, New: func() (recommend.Recommender, error) {
			return caasper.NewRecommenderByName(name, settings)
		}})
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caasper-compare:", err)
	os.Exit(1)
}
