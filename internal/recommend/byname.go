package recommend

import (
	"fmt"
	"strings"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/forecast"
)

// Settings carries the shared knobs of the named recommender
// constructors. Only MaxCores is required; every other field has the
// paper's running default. The public caasper.RecommenderSettings is an
// alias of this type; it lives here so the serve layer (which hot-swaps
// policies by name at runtime) can construct recommenders without
// importing the public package.
type Settings struct {
	// MaxCores tops the SKU ladder (required, ≥ 1).
	MaxCores int
	// Window is the reactive decision window in samples (default 40, the
	// paper's "last 40 minutes of CPU usage").
	Window int
	// Horizon is the proactive forecast horizon in samples (default 60).
	Horizon int
	// Season is the seasonal-naïve period in samples (default 1440, one
	// day at minute resolution).
	Season int
	// ControlCores is the fixed allocation of the "control" policy
	// (default: MaxCores).
	ControlCores int
	// Config overrides core.DefaultConfig(MaxCores) for the CaaSPER
	// policies.
	Config *core.Config
}

// Names lists the names NewByName accepts, sorted.
func Names() []string {
	return []string{"autopilot", "caasper", "caasper-proactive", "control", "openshift", "vpa"}
}

// NewByName builds a recommender from its CLI-facing name — the one
// switch every command and the serve layer share:
//
//	caasper             the reactive CaaSPER policy (Algorithm 1)
//	caasper-proactive   the hybrid reactive+forecast policy (Eq. 4)
//	vpa                 the default Kubernetes VPA baseline
//	openshift           the OpenShift-style predictive VPA baseline
//	autopilot           the Autopilot-style moving-maximum baseline
//	control             fixed limits at ControlCores
//
// An unrecognised name wraps errs.ErrUnknownRecommender.
func NewByName(name string, s Settings) (Recommender, error) {
	if s.MaxCores < 1 {
		return nil, fmt.Errorf("recommend: MaxCores must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	window := s.Window
	if window == 0 {
		window = 40
	}
	horizon := s.Horizon
	if horizon == 0 {
		horizon = 60
	}
	season := s.Season
	if season == 0 {
		season = 1440
	}
	control := s.ControlCores
	if control == 0 {
		control = s.MaxCores
	}
	cfg := core.DefaultConfig(s.MaxCores)
	if s.Config != nil {
		cfg = *s.Config
	}
	switch name {
	case "caasper", "caasper-reactive":
		return NewCaaSPERReactive(cfg, window)
	case "caasper-proactive":
		return NewCaaSPERProactive(cfg, &forecast.SeasonalNaive{Season: season}, window, horizon, season)
	case "vpa":
		return baselines.NewKubernetesVPA(baselines.DefaultKubernetesVPAOptions(s.MaxCores))
	case "openshift":
		return baselines.NewOpenShiftVPA(baselines.DefaultOpenShiftVPAOptions(s.MaxCores))
	case "autopilot":
		return baselines.NewAutopilot(baselines.DefaultAutopilotOptions(s.MaxCores))
	case "control":
		return baselines.NewControl(control), nil
	}
	return nil, fmt.Errorf("recommend: %w %q (known: %s)",
		errs.ErrUnknownRecommender, name, strings.Join(Names(), ", "))
}
