package k8s

import (
	"strings"
	"testing"

	"caasper/internal/baselines"
	"caasper/internal/faults"
	"caasper/internal/obs"
)

// captureRec records every observation it is fed and always recommends a
// fixed target — a probe for what the scaler actually shows the
// recommender.
type captureRec struct {
	target  int
	minutes []int
	values  []float64
}

func (c *captureRec) Name() string { return "capture" }
func (c *captureRec) Observe(minute int, usageCores float64) {
	c.minutes = append(c.minutes, minute)
	c.values = append(c.values, usageCores)
}
func (c *captureRec) Recommend(int) int { return c.target }
func (c *captureRec) Reset()            { c.minutes, c.values = nil, nil }

// panicRec panics on Recommend — the scaler must survive it.
type panicRec struct{ captureRec }

func (p *panicRec) Recommend(int) int { panic("recommender bug") }

func mustSpec(t *testing.T, s string) *faults.Spec {
	t.Helper()
	spec, err := faults.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestScalerCursorSurvivesFailover is the regression test for the cursor
// bug: the scaler tracked only a bare series index, so after a failover
// the index kept walking a *different pod's* history — feeding the new
// primary's old secondary-role samples as if they were fresh primary
// load. The fix keys the cursor on (pod, index) and resumes from the new
// primary's first post-failover bucket.
func TestScalerCursorSurvivesFailover(t *testing.T) {
	c := SmallCluster()
	set, err := NewStatefulSet("db", 2, 4, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(set, c, 100)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMetricsServer(60)
	rec := &captureRec{target: 4}
	sc, err := NewScaler(rec, op, ms, 600, 2, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Primary db-0 at 6 cores for 10 closed buckets; secondary db-1 idles
	// at 1 core but has *more* closed buckets (14) — its scrapes kept
	// flowing while db-0's stalled, exactly the shape that exposed the
	// bare-index bug.
	for s := int64(0); s < 10*60; s++ {
		ms.RecordUsage("db-0", s, 6)
	}
	ms.RecordUsage("db-0", 10*60, 6) // close bucket 9
	for s := int64(0); s < 14*60; s++ {
		ms.RecordUsage("db-1", s, 1)
	}
	sc.Tick(0)
	if n := len(rec.values); n != 10 {
		t.Fatalf("pre-failover observations = %d, want 10", n)
	}

	// Failover on the bucket boundary: db-1 becomes primary and starts
	// serving the real load from second 840 (bucket 14) on.
	set.Pods[0].Role = RoleSecondary
	set.Pods[1].Role = RolePrimary
	ms.RecordUsage("db-1", 14*60, 7) // closes idle bucket 13
	sc.Tick(1)
	if n := len(rec.values); n != 10 {
		t.Fatalf("failover instant fed %d observations, want still 10 (no closed post-failover bucket yet)", n)
	}
	// Two post-failover buckets close at 7 cores.
	for s := int64(14*60 + 1); s < 16*60; s++ {
		ms.RecordUsage("db-1", s, 7)
	}
	ms.RecordUsage("db-1", 16*60, 7)
	sc.Tick(2)

	// The buggy cursor would now have replayed db-1's buckets 10..13 —
	// four samples at 1 core of pre-failover secondary history.
	for i, v := range rec.values {
		if v == 1 {
			t.Fatalf("observation %d = 1 core: new primary's pre-failover history leaked into the feed\nvalues: %v", i, rec.values)
		}
	}
	// Exactly the 10 old-primary samples plus db-1's post-failover buckets
	// (bucket 14 at ~1→7 transition is skipped: it closed pre-switch).
	want := []float64{6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 7, 7}
	if len(rec.values) != len(want) {
		t.Fatalf("observations = %v, want %v", rec.values, want)
	}
	for i := range want {
		if rec.values[i] != want[i] {
			t.Fatalf("observation %d = %v, want %v (all: %v)", i, rec.values[i], want[i], rec.values)
		}
	}
	// The minute indices stay on the global bucket grid across the switch.
	if last := rec.minutes[len(rec.minutes)-1]; last != 15 {
		t.Errorf("last minute index = %d, want 15", last)
	}
}

// TestScalerCarriesForwardOverSilentBuckets is the regression test for
// restart-gap zeros: buckets with no samples (pod restarting, scrapes
// lost) used to be fed to the recommender as measured 0.0, dragging the
// recommendation down right after every resize. They now carry the last
// real level forward.
func TestScalerCarriesForwardOverSilentBuckets(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 2, 4, 16, c)
	op, _ := NewOperator(set, c, 100)
	ms := NewMetricsServer(60)
	rec := &captureRec{target: 4}
	sc, err := NewScaler(rec, op, ms, 600, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sc.Stats = reg

	// Buckets 0–4 measured at 3.5 cores, buckets 5–7 silent (restart
	// gap), buckets 8–9 measured at 3.5 again.
	for s := int64(0); s < 5*60; s++ {
		ms.RecordUsage("db-0", s, 3.5)
	}
	for s := int64(8 * 60); s < 10*60; s++ {
		ms.RecordUsage("db-0", s, 3.5)
	}
	ms.RecordUsage("db-0", 10*60, 3.5)
	sc.Tick(0)

	if len(rec.values) != 10 {
		t.Fatalf("observations = %v, want 10 buckets", rec.values)
	}
	for i, v := range rec.values {
		if v != 3.5 {
			t.Errorf("observation %d = %v, want carried-forward 3.5", i, v)
		}
	}
	if got := reg.Counter("k8s.silent_samples").Value(); got != 3 {
		t.Errorf("silent_samples counter = %d, want 3", got)
	}
	// And the metrics server itself knows which buckets were silent.
	for i := 0; i < 10; i++ {
		want := i >= 5 && i <= 7
		if ms.IsSilent("db-0", i) != want {
			t.Errorf("IsSilent(%d) = %v, want %v", i, !want, want)
		}
	}
}

// TestScalerGapDecisionMatchesGaplessRun pins the post-resize decision:
// a run whose metric stream has a restart gap must decide exactly like a
// run that never lost a sample, because carry-forward makes the gap
// invisible to the recommender.
func TestScalerGapDecisionMatchesGaplessRun(t *testing.T) {
	decide := func(gap bool) float64 {
		c := SmallCluster()
		set, _ := NewStatefulSet("db", 2, 6, 16, c)
		op, _ := NewOperator(set, c, 100)
		ms := NewMetricsServer(60)
		rec, err := baselines.NewKubernetesVPA(baselines.DefaultKubernetesVPAOptions(8))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScaler(rec, op, ms, 1200, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		for s := int64(0); s <= 20*60; s++ {
			inGap := gap && s >= 10*60 && s < 13*60
			if !inGap {
				ms.RecordUsage("db-0", s, 4)
			}
		}
		sc.Tick(1200)
		if len(sc.DecisionSeries) != 1 {
			t.Fatalf("decisions = %v", sc.DecisionSeries)
		}
		return sc.DecisionSeries[0]
	}
	withGap, without := decide(true), decide(false)
	if withGap != without {
		t.Errorf("decision with restart gap = %v, without = %v; carry-forward must make them equal", withGap, without)
	}
}

// TestScalerHoldsOnStaleMetrics pins graceful degradation: when the
// primary's samples stop arriving entirely (dead metrics pipeline), the
// scaler holds the last enacted limit instead of deciding on silence.
func TestScalerHoldsOnStaleMetrics(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 2, 4, 16, c)
	op, _ := NewOperator(set, c, 100)
	ms := NewMetricsServer(60)
	sc, err := NewScaler(baselines.NewControl(8), op, ms, 600, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink()
	reg := obs.NewRegistry()
	sc.Events, sc.Stats = mem, reg

	// Samples flow for 100 s, then the pipeline dies.
	for s := int64(0); s <= 100; s++ {
		ms.RecordUsage("db-0", s, 3)
	}
	sc.Tick(600) // newest sample is 500 s old > 3×60 s default threshold

	if sc.DecisionsHeld != 1 || sc.ScalingsRequested != 0 {
		t.Errorf("held=%d requested=%d, want 1/0", sc.DecisionsHeld, sc.ScalingsRequested)
	}
	if set.CPULimit() != 4 {
		t.Errorf("limit = %d, want held 4", set.CPULimit())
	}
	if got := reg.Counter("k8s.decisions_held").Value(); got != 1 {
		t.Errorf("decisions_held counter = %d, want 1", got)
	}
	lines := eventLines(mem)
	if countEvents(lines, "k8s.decision-held") != 1 {
		t.Fatalf("no decision-held event:\n%s", strings.Join(lines, "\n"))
	}
	for _, l := range lines {
		if strings.Contains(l, `"type":"k8s.decision-held"`) && !strings.Contains(l, `"reason":"metrics stale"`) {
			t.Errorf("held event missing stale reason: %s", l)
		}
	}

	// Disabling the check restores the old eager behavior.
	sc2, _ := NewScaler(baselines.NewControl(8), op, ms, 600, 2, 8)
	sc2.StaleAfterSeconds = -1
	sc2.Tick(600)
	if sc2.DecisionsHeld != 0 || sc2.ScalingsRequested != 1 {
		t.Errorf("disabled staleness: held=%d requested=%d, want 0/1", sc2.DecisionsHeld, sc2.ScalingsRequested)
	}
}

// TestScalerRecoversFromRecommenderPanic pins the other degradation rule:
// a panicking recommender must not take the control loop down — the tick
// holds, the panic is counted, and later ticks keep running.
func TestScalerRecoversFromRecommenderPanic(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 2, 4, 16, c)
	op, _ := NewOperator(set, c, 100)
	ms := NewMetricsServer(60)
	sc, err := NewScaler(&panicRec{}, op, ms, 600, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink()
	reg := obs.NewRegistry()
	sc.Events, sc.Stats = mem, reg
	for s := int64(0); s <= 1300; s++ {
		ms.RecordUsage("db-0", s, 3)
	}

	sc.Tick(600)
	sc.Tick(1200)

	if sc.RecommenderPanics != 2 || sc.DecisionsHeld != 2 {
		t.Errorf("panics=%d held=%d, want 2/2", sc.RecommenderPanics, sc.DecisionsHeld)
	}
	if set.CPULimit() != 4 {
		t.Errorf("limit = %d, want held 4", set.CPULimit())
	}
	if got := reg.Counter("k8s.recommender_panics").Value(); got != 2 {
		t.Errorf("recommender_panics counter = %d, want 2", got)
	}
	lines := eventLines(mem)
	if countEvents(lines, "k8s.recommender-panic") != 2 || countEvents(lines, "k8s.decision-held") != 2 {
		t.Errorf("panic audit events missing:\n%s", strings.Join(lines, "\n"))
	}
}

// TestOperatorRetriesThenAbortsStuckUpdate is the acceptance lifecycle
// test: under an injected permanently-stuck restart the operator retries
// with exponential backoff, aborts into a consistent whole-set limit
// (never a split spec), rejects-and-audits the resize the scaler asks for
// while the aborted pod recovers, and accepts a fresh resize afterwards.
func TestOperatorRetriesThenAbortsStuckUpdate(t *testing.T) {
	c := SmallCluster()
	set, err := NewStatefulSet("db", 3, 4, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(set, c, 400)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMetricsServer(60)
	sc, err := NewScaler(baselines.NewControl(6), op, ms, 300, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(mustSpec(t, "restart-stuck:p=1:dur=100000"), 1)
	mem := obs.NewMemorySink()
	reg := obs.NewRegistry()
	inj.Events, inj.Stats = mem, reg
	op.Events, op.Stats = mem, reg
	sc.Events, sc.Stats = mem, reg
	op.Faults = inj

	for now := int64(0); now <= 3350; now++ {
		op.Tick(now)
		for _, p := range set.Pods {
			if p.Running() {
				ms.RecordUsage(p.Name, now, p.ConsumeCPU(3, 1))
			}
		}
		sc.Tick(now)
	}

	// Retry/abort accounting: the scaler requests at t=300, the operator
	// starts the first attempt at t=301 (deadline 1101), retries at 1101
	// and 1931 (backoff 30 then 60), and aborts at 2791.
	if op.RestartRetries != 2 {
		t.Errorf("RestartRetries = %d, want 2", op.RestartRetries)
	}
	if op.ResizesAborted != 1 {
		t.Errorf("ResizesAborted = %d, want 1", op.ResizesAborted)
	}
	if got := reg.Counter("k8s.restart_retries").Value(); got != 2 {
		t.Errorf("restart_retries counter = %d, want 2", got)
	}
	if got := reg.Counter("k8s.resizes_aborted").Value(); got != 1 {
		t.Errorf("resizes_aborted counter = %d, want 1", got)
	}
	// The scaler's decision during recovery was rejected and audited;
	// after recovery the next decision was accepted (second update).
	if sc.ScalingsRejected != 1 {
		t.Errorf("ScalingsRejected = %d, want 1", sc.ScalingsRejected)
	}
	if got := reg.Counter("k8s.resizes_rejected").Value(); got != 1 {
		t.Errorf("resizes_rejected counter = %d, want 1", got)
	}
	if sc.ScalingsRequested != 2 {
		t.Errorf("ScalingsRequested = %d, want 2 (initial + post-recovery)", sc.ScalingsRequested)
	}

	// Exact chaos event sequence (fault injections, retries, abort,
	// recovery, rejection, re-request), in emission order.
	wantSeq := []string{
		`{"t":300,"type":"k8s.resize-requested","from":4,"to":6,"mode":"rolling","pods":3}`,
		`{"t":301,"type":"fault.restart-stuck","pod":"db-1","dur":100000}`,
		`{"t":1101,"type":"fault.restart-stuck","pod":"db-1","dur":100000}`,
		`{"t":1101,"type":"k8s.restart-retry","pod":"db-1","reason":"attempt timed out","attempt":2,"backoff":30,"until":101531}`,
		`{"t":1931,"type":"fault.restart-stuck","pod":"db-1","dur":100000}`,
		`{"t":1931,"type":"k8s.restart-retry","pod":"db-1","reason":"attempt timed out","attempt":3,"backoff":60,"until":102391}`,
		`{"t":2791,"type":"k8s.resize-aborted","from":4,"to":6,"final":4,"reason":"attempt timed out"}`,
		`{"t":3000,"type":"k8s.resize-rejected","to":6,"reason":"abort recovery in flight"}`,
		`{"t":3191,"type":"k8s.rolling-phase","pod":"db-1","phase":"recovered","restarts":1}`,
		`{"t":3300,"type":"k8s.resize-requested","from":4,"to":6,"mode":"rolling","pods":3}`,
	}
	lines := eventLines(mem)
	i := 0
	for _, l := range lines {
		if i < len(wantSeq) && l == wantSeq[i] {
			i++
		}
	}
	if i != len(wantSeq) {
		t.Errorf("event sequence diverged at step %d (%s)\nstream:\n%s",
			i, wantSeq[i], strings.Join(lines, "\n"))
	}

	// No split spec at any point after the abort settled: by the end of
	// the run the *second* update is in flight, so check consistency on a
	// fresh replica scan — every pod not mid-restart shares one limit.
	limits := map[float64]int{}
	for _, p := range set.Pods {
		if p.Running() {
			limits[p.Spec.Requests.CPUCores]++
		}
	}
	if len(limits) > 1 {
		t.Errorf("split spec across running pods: %v", limits)
	}
	// The aborted update must not have emitted a completion span.
	aborted2790 := false
	for _, l := range lines {
		if strings.Contains(l, `"type":"k8s.resize-completed"`) && strings.Contains(l, `"t":300,`) {
			aborted2790 = true
		}
	}
	if aborted2790 {
		t.Error("aborted update emitted a resize-completed span")
	}
}

// TestOperatorAbortRollsBackUpdatedPods pins the whole-set consistency
// rule when the abort lands mid-queue: the already-updated pods are
// rolled back (scale-up abort → final = the old limit), so the set never
// splits across two specs.
func TestOperatorAbortRollsBackUpdatedPods(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 3, 4, 16, c)
	op, _ := NewOperator(set, c, 100)
	op.MaxRestartRetries = 1
	op.BackoffBaseSeconds = 10
	mem := obs.NewMemorySink()
	op.Events = mem

	if err := op.RequestResize(6, 0); err != nil {
		t.Fatal(err)
	}
	// Let the first secondary (db-1) update cleanly, then arm the
	// injector so every later restart fails: the abort lands mid-queue
	// with one pod already on the new spec.
	now := int64(0)
	for ; now < 5000; now++ {
		op.Tick(now)
		if set.Pods[1].Running() && set.Pods[1].Spec.Requests.CPUCores == 6 {
			break
		}
	}
	if !op.Updating() {
		t.Fatal("update finished before the fault could be armed")
	}
	op.Faults = faults.New(mustSpec(t, "restart-fail:p=1"), 1)
	for ; now < 10000 && op.Updating(); now++ {
		op.Tick(now)
	}
	if op.ResizesAborted != 1 {
		t.Fatalf("ResizesAborted = %d, want 1", op.ResizesAborted)
	}
	// The already-updated db-1 was rolled back by the abort itself.
	if got := set.Pods[1].Spec.Requests.CPUCores; got != 4 {
		t.Errorf("updated pod db-1 at %v cores after abort, want rolled back to 4", got)
	}
	if countEvents(eventLines(mem), "k8s.rolling-phase") == 0 {
		t.Error("no rolling-phase events emitted")
	}
	// Scale-up abort: final spec is the old limit for every pod.
	for now := int64(5000); op.Recovering(); now++ {
		op.Tick(now)
	}
	for _, p := range set.Pods {
		if p.Spec.Requests.CPUCores != 4 {
			t.Errorf("pod %s at %v cores after abort, want rolled back to 4", p.Name, p.Spec.Requests.CPUCores)
		}
		if !p.Running() {
			t.Errorf("pod %s not running after recovery", p.Name)
		}
	}
	if got := c.TotalAllocated().CPUCores; got != 12 {
		t.Errorf("allocated = %v, want 12 (3 pods × 4 cores)", got)
	}
}

// TestOperatorScaleDownAbortRollsForward pins the other abort direction:
// aborting a scale-DOWN rolls the remaining pods forward to the new
// (smaller) limit — still one consistent spec, still only shrinks.
func TestOperatorScaleDownAbortRollsForward(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 3, 6, 16, c)
	op, _ := NewOperator(set, c, 100)
	op.MaxRestartRetries = 1
	op.BackoffBaseSeconds = 10
	inj := faults.New(mustSpec(t, "restart-fail:p=1"), 1)
	op.Faults = inj

	if err := op.RequestResize(4, 0); err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 5000 && op.Updating(); now++ {
		op.Tick(now)
	}
	if op.ResizesAborted != 1 {
		t.Fatalf("ResizesAborted = %d, want 1", op.ResizesAborted)
	}
	for now := int64(5000); op.Recovering(); now++ {
		op.Tick(now)
	}
	for _, p := range set.Pods {
		if p.Spec.Requests.CPUCores != 4 {
			t.Errorf("pod %s at %v cores, want rolled forward to 4", p.Name, p.Spec.Requests.CPUCores)
		}
	}
}

// TestSchedulingPressureDelaysRestart pins the cluster-side fault: with
// transient co-tenant pressure eating node headroom, a restarted pod can
// fail to place and re-enters the scheduling queue until the pressure
// window passes (or the attempt deadline retries it).
func TestSchedulingPressureDelaysRestart(t *testing.T) {
	// One-node cluster: 8 cores, one 4-core pod. Free = 4 cores; a
	// pressure of 6 cores blocks any placement.
	c, err := NewCluster(NewNode("n1", 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	p := &Pod{Name: "solo", Phase: PhasePending, Spec: NewGuaranteedSpec(4, 8)}
	if err := c.Schedule(p); err != nil {
		t.Fatal(err)
	}
	c.Evict(p)
	p.Phase = PhaseRestarting

	c.SetPressure(6)
	if err := c.Schedule(p); err == nil {
		t.Fatal("schedule under 6-core pressure should fail")
	} else if !strings.Contains(err.Error(), "pressure 6c") {
		t.Errorf("error should mention pressure: %v", err)
	}
	c.SetPressure(0)
	if err := c.Schedule(p); err != nil {
		t.Fatalf("schedule after pressure cleared: %v", err)
	}
	if got := c.TotalAllocated().CPUCores; got != 4 {
		t.Errorf("allocated = %v, want 4", got)
	}
}

// TestOperatorInPlaceMidwayFailureRollsBackEarlierPods is the satellite
// coverage for resizeInPlace's rollback arm: the scale-up fits for the
// first pods but not for a later one, so the earlier patches are undone
// and node request accounting returns to exactly the pre-resize state.
func TestOperatorInPlaceMidwayFailureRollsBackEarlierPods(t *testing.T) {
	// n1 takes all three pods (least-allocated always prefers it); its
	// free capacity (14 − 12 = 2) fits the first pod's +2 growth but not
	// the second's.
	c, err := NewCluster(NewNode("n1", 14, 96), NewNode("n2", 5, 32))
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewStatefulSet("db", 3, 4, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range set.Pods {
		if p.NodeName != "n1" {
			t.Fatalf("pod %s on %s, test assumes all pods pack onto n1", p.Name, p.NodeName)
		}
	}
	op, err := NewOperator(set, c, 60)
	if err != nil {
		t.Fatal(err)
	}
	op.InPlace = true

	if err := op.RequestResize(6, 0); err == nil {
		t.Fatal("mid-way infeasible in-place resize should fail")
	}
	for _, p := range set.Pods {
		if p.CPULimit() != 4 {
			t.Errorf("pod %s limit = %v after rollback, want 4", p.Name, p.CPULimit())
		}
	}
	if got := c.TotalAllocated().CPUCores; got != 12 {
		t.Errorf("allocated = %v, want pre-resize 12", got)
	}
	free := 0.0
	for _, n := range c.Nodes() {
		if n.Name == "n1" {
			free = n.Free().CPUCores
		}
	}
	if free != 2 {
		t.Errorf("n1 free = %v, want 2 — request accounting must balance", free)
	}
	if op.ResizeCount != 0 {
		t.Errorf("failed resize counted: %d", op.ResizeCount)
	}
}

// TestMetricsGapFaultDropsSamples pins the metrics-server fault hook: a
// p=1 metrics-gap spec silences every scrape, and the buckets the server
// later synthesizes are marked silent rather than measured.
func TestMetricsGapFaultDropsSamples(t *testing.T) {
	ms := NewMetricsServer(60)
	ms.Faults = faults.New(mustSpec(t, "metrics-gap:p=1"), 9)
	for s := int64(0); s < 300; s++ {
		ms.RecordUsage("db-0", s, 5)
	}
	if len(ms.UsageSeries("db-0")) != 0 {
		t.Errorf("series = %v, want empty under total sample loss", ms.UsageSeries("db-0"))
	}
	if _, ok := ms.LastSampleAt("db-0"); ok {
		t.Error("no sample should have been accepted")
	}
	if c := ms.Faults.Counts(); c.MetricsGaps != 300 {
		t.Errorf("MetricsGaps = %d, want 300", c.MetricsGaps)
	}
}

// TestFaultStreamDeterministicAcrossSeeds sanity-checks the operator-level
// chaos determinism contract in one process: two identical closed-loop
// runs with the same fault seed produce byte-identical event streams.
func TestFaultStreamDeterministicAcrossSeeds(t *testing.T) {
	run := func() []string {
		c := SmallCluster()
		set, _ := NewStatefulSet("db", 3, 4, 16, c)
		op, _ := NewOperator(set, c, 200)
		ms := NewMetricsServer(60)
		sc, err := NewScaler(baselines.NewControl(6), op, ms, 600, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.New(mustSpec(t, "restart-fail:p=0.4,restart-stuck:p=0.3:dur=120,metrics-gap:p=0.01"), 42)
		mem := obs.NewMemorySink()
		inj.Events = mem
		op.Events = mem
		sc.Events = mem
		op.Faults = inj
		ms.Faults = inj
		for now := int64(0); now < 4000; now++ {
			op.Tick(now)
			for _, p := range set.Pods {
				if p.Running() {
					ms.RecordUsage(p.Name, now, p.ConsumeCPU(3, 1))
				}
			}
			sc.Tick(now)
		}
		return eventLines(mem)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("chaos run emitted no events")
	}
}
