package forecast

import (
	"fmt"

	"caasper/internal/stats"
)

// HoltWinters is additive triple exponential smoothing: level, trend and
// seasonal components updated per observation. It is the classical
// predictive-autoscaling algorithm (Wang et al. [73], discussed in paper
// §1/§7) that CaaSPER's naïve forecaster is compared against.
type HoltWinters struct {
	// Alpha smooths the level, Beta the trend, Gamma the seasonality.
	// All must lie in (0, 1).
	Alpha, Beta, Gamma float64
	// Season is the seasonal period in samples; must be ≥ 2 and the
	// history must contain at least two full seasons.
	Season int
}

// Name implements Forecaster.
func (f *HoltWinters) Name() string {
	return fmt.Sprintf("holt-winters(%.2f,%.2f,%.2f,%d)", f.Alpha, f.Beta, f.Gamma, f.Season)
}

// Forecast implements Forecaster.
func (f *HoltWinters) Forecast(history []float64, horizon int) ([]float64, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	m := f.Season
	if len(history) < 2*m {
		return nil, ErrShortHistory
	}
	if horizon <= 0 {
		return nil, nil
	}

	// Initial level: mean of first season. Initial trend: average
	// per-sample change between the first two seasons. Initial seasonal
	// indices: first-season deviations from its mean.
	level := stats.Mean(history[:m])
	var trend float64
	for i := 0; i < m; i++ {
		trend += (history[m+i] - history[i]) / float64(m)
	}
	trend /= float64(m)
	seasonal := make([]float64, m)
	for i := 0; i < m; i++ {
		seasonal[i] = history[i] - level
	}

	for t := m; t < len(history); t++ {
		s := t % m
		prevLevel := level
		level = f.Alpha*(history[t]-seasonal[s]) + (1-f.Alpha)*(level+trend)
		trend = f.Beta*(level-prevLevel) + (1-f.Beta)*trend
		seasonal[s] = f.Gamma*(history[t]-level) + (1-f.Gamma)*seasonal[s]
	}

	out := make([]float64, horizon)
	n := len(history)
	for h := 1; h <= horizon; h++ {
		s := (n + h - 1) % m
		out[h-1] = level + float64(h)*trend + seasonal[s]
	}
	return clampNonNegative(out), nil
}

func (f *HoltWinters) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"alpha", f.Alpha}, {"beta", f.Beta}, {"gamma", f.Gamma}} {
		if p.v <= 0 || p.v >= 1 {
			return fmt.Errorf("forecast: holt-winters %s %v out of (0,1)", p.name, p.v)
		}
	}
	if f.Season < 2 {
		return fmt.Errorf("forecast: holt-winters season %d must be ≥ 2", f.Season)
	}
	return nil
}
