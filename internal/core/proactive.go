package core

import (
	"errors"
	"fmt"

	"caasper/internal/errs"
	"caasper/internal/forecast"
)

// Proactive wraps a reactive Recommender with the forecast-extended input
// preprocessing of §4.3 (Eq. 4, Figure 8): the decision window fed to
// Algorithm 1 is the concatenation of the tail of the observed series
// (length o_n − o_f) with a forecast of the next o_f samples. Until one
// full seasonality period of history has accumulated, it operates purely
// reactively (the paper's period₁ behaviour).
type Proactive struct {
	// Reactive is the underlying Algorithm 1 evaluator.
	Reactive *Recommender
	// Forecaster produces the predicted segment. Nil disables
	// forecasting entirely (pure reactive mode).
	Forecaster forecast.Forecaster
	// ObservedWindow is o_n − o_f: how many recent observed samples
	// enter the combined window (the paper uses e.g. the last 40
	// minutes of CPU usage).
	ObservedWindow int
	// Horizon is o_f: how many samples ahead the forecaster projects
	// (the paper's "scale-ahead window").
	Horizon int
	// MinHistory is the number of observed samples required before the
	// proactive mode activates — one full seasonality period in the
	// paper's Figure 8.
	MinHistory int
	// MaxRelativeUncertainty, when positive and the forecaster
	// implements forecast.IntervalForecaster, enables the paper's §4.3
	// planned confidence prefilter: if the forecast's relative
	// uncertainty (mean interval half-width over mean forecast level)
	// exceeds this bound, the prediction is discarded and the decision
	// falls back to reactive. Zero disables the prefilter.
	MaxRelativeUncertainty float64

	// combined is the reusable observed+forecast window buffer. It makes
	// a Proactive single-goroutine state: give each concurrent decision
	// stream its own instance (they are cheap).
	combined []float64
}

// NewProactive builds a proactive wrapper with validation.
func NewProactive(r *Recommender, f forecast.Forecaster, observedWindow, horizon, minHistory int) (*Proactive, error) {
	if r == nil {
		return nil, errors.New("core: nil reactive recommender")
	}
	if observedWindow < 1 {
		return nil, fmt.Errorf("core: ObservedWindow %d must be ≥ 1: %w", observedWindow, errs.ErrBadWindow)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("core: Horizon %d must be ≥ 0: %w", horizon, errs.ErrBadWindow)
	}
	if minHistory < 0 {
		return nil, fmt.Errorf("core: MinHistory %d must be ≥ 0: %w", minHistory, errs.ErrBadWindow)
	}
	return &Proactive{
		Reactive:       r,
		Forecaster:     f,
		ObservedWindow: observedWindow,
		Horizon:        horizon,
		MinHistory:     minHistory,
	}, nil
}

// Decide evaluates Algorithm 1 on the combined observed+forecast window
// (Eq. 4). history is the full observed usage series up to the decision
// instant; the method slices its own windows. When the forecaster is nil,
// errors, or the history is shorter than MinHistory, it degrades to the
// reactive decision on the observed window — forecast failures must never
// block scaling (R5: low-predictability workloads).
//
// The returned bool reports whether the forecast contributed.
func (p *Proactive) Decide(currentCores int, history []float64) (Decision, bool, error) {
	var s Scratch
	d, used, err := p.DecideHistoryScratch(&s, currentCores, history, len(history))
	if err == nil && d.Explanation == "" {
		// The reactive fallback path defers the explanation to the
		// scratch (see Recommender.DecideScratch); one-shot callers get
		// it materialised.
		d.Explanation = s.Explanation()
	}
	return d, used, err
}

// DecideScratch is Decide evaluated through a caller-owned Scratch (see
// Recommender.DecideScratch): the combined observed+forecast window and
// every downstream evaluation buffer are reused across calls. A nil
// scratch allocates fresh state per call.
func (p *Proactive) DecideScratch(s *Scratch, currentCores int, history []float64) (Decision, bool, error) {
	return p.DecideHistoryScratch(s, currentCores, history, len(history))
}

// DecideHistoryScratch is DecideScratch for callers that retain only a
// bounded tail of the observed series (a window.Ring): history is the
// retained tail and totalObserved the logical series length. The
// MinHistory warm-up gates on totalObserved, so a ring-backed caller
// activates proactive mode at exactly the same tick as an unbounded one.
// The forecaster still sees only the retained tail — bounded callers are
// responsible for sizing their ring to the forecaster's HistoryNeed.
func (p *Proactive) DecideHistoryScratch(s *Scratch, currentCores int, history []float64, totalObserved int) (Decision, bool, error) {
	if s == nil {
		s = &Scratch{}
	}
	observed := tail(history, p.ObservedWindow)

	if p.Forecaster == nil || p.Horizon == 0 || totalObserved < p.MinHistory {
		d, err := p.Reactive.DecideScratch(s, currentCores, observed)
		return d, false, err
	}

	var predicted []float64
	var err error
	if ivf, ok := p.Forecaster.(forecast.IntervalForecaster); ok && p.MaxRelativeUncertainty > 0 {
		point, lo, hi, ferr := ivf.ForecastInterval(history, p.Horizon)
		err = ferr
		if err == nil {
			if forecast.RelativeUncertainty(point, lo, hi) > p.MaxRelativeUncertainty {
				// The prefilter of §4.3: a too-uncertain prediction is
				// worse than none — stay reactive this tick.
				d, rerr := p.Reactive.DecideScratch(s, currentCores, observed)
				return d, false, rerr
			}
			predicted = point
		}
	} else {
		predicted, err = p.Forecaster.Forecast(history, p.Horizon)
	}
	if err != nil {
		d, rerr := p.Reactive.DecideScratch(s, currentCores, observed)
		return d, false, rerr
	}

	combined := append(p.combined[:0], observed...)
	combined = append(combined, predicted...)
	p.combined = combined
	d, err := p.Reactive.DecideScratch(s, currentCores, combined)
	if err != nil {
		return d, false, err
	}
	// The inner decision's explanation is deferred in the scratch buffer
	// (Recommender.DecideScratch); the proactive prefix materialises it.
	// This path forecasts every tick — it allocates regardless — so the
	// zero-alloc budget only ever applied to the reactive fallback.
	d.Explanation = fmt.Sprintf("proactive[%s,+%d]: %s", p.Forecaster.Name(), p.Horizon, s.Explanation())
	return d, true, nil
}

// tail returns the last n elements of xs (all of xs when shorter).
func tail(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	return xs[len(xs)-n:]
}
