// Quickstart: make one CaaSPER decision by hand, then run a full
// trace-driven simulation against an over-provisioned workload and watch
// the algorithm right-size it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"caasper"
)

func main() {
	// --- One-shot decision ------------------------------------------------
	// A pod allocated 12 cores whose workload uses ~2.5: what would
	// CaaSPER do? (This is the paper's Figure 7b over-provisioning case.)
	usage := make([]float64, 60)
	for i := range usage {
		usage[i] = 2.5 + 0.3*float64(i%3)
	}
	cfg := caasper.DefaultConfig(16)
	d, err := caasper.Decide(cfg, 12, usage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one-shot decision:")
	fmt.Printf("  %d -> %d cores (%s)\n", d.CurrentCores, d.TargetCores, d.Branch)
	fmt.Printf("  %s\n\n", d.Explanation)

	// --- Full simulation --------------------------------------------------
	// A 12-hour workday trace: light OLTP, a heavy 6-hour batch window,
	// light OLTP again. Start over-provisioned at 8 cores and let the
	// reactive recommender track the load.
	tr := caasper.Workloads["workday12h"](42)
	rec, err := caasper.NewReactive(caasper.DefaultConfig(8), 40)
	if err != nil {
		log.Fatal(err)
	}
	opts := caasper.DefaultSimOptions(8, 8)
	res, err := caasper.Simulate(tr, rec, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %s of %q:\n", time.Duration(res.Minutes)*time.Minute, res.TraceName)
	fmt.Printf("  scalings:          %d\n", res.NumScalings)
	for _, dec := range res.Decisions {
		fmt.Printf("    t=%4dm  %d -> %d cores\n", dec.Minute, dec.From, dec.To)
	}
	fmt.Printf("  avg slack:         %.2f cores\n", res.AvgSlack)
	fmt.Printf("  throttled minutes: %.1f%%\n", res.ThrottledPct*100)
	fmt.Printf("  throughput proxy:  %.1f%%\n", res.ThroughputProxy()*100)
	fmt.Printf("  billed core-hours: %.0f (fixed 8 cores would bill %d)\n",
		res.BilledCorePeriods, 8*12)
}
