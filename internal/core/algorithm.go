package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"caasper/internal/obs"
	"caasper/internal/pvp"
	"caasper/internal/stats"
)

// Branch identifies which arm of Algorithm 1 produced a decision.
type Branch string

// The decision branches of Algorithm 1.
const (
	// BranchScaleUp is lines 8–9: steep slope or thin head-room.
	BranchScaleUp Branch = "scale-up"
	// BranchScaleDown is lines 10–11: flat slope or large idle share.
	BranchScaleDown Branch = "scale-down"
	// BranchWalkDown is lines 12–13: flat tail, severe over-provisioning.
	BranchWalkDown Branch = "walk-down"
	// BranchHold is the implicit between-thresholds case: no change.
	BranchHold Branch = "hold"
)

// Decision is the output of one Algorithm 1 evaluation, carrying enough
// intermediate state to satisfy the paper's interpretability requirement
// (R6): the slope, skew, raw scaling factor and a prose explanation.
type Decision struct {
	// CurrentCores is the allocation the decision was made against.
	CurrentCores int
	// TargetCores is the recommended allocation (integer, guardrailed).
	TargetCores int
	// Delta is TargetCores − CurrentCores.
	Delta int
	// Branch names the Algorithm 1 arm that fired.
	Branch Branch
	// Slope is the PvP-curve slope s at CurrentCores.
	Slope float64
	// Skew is the slope-distribution skewness used by Eq. 3.
	Skew float64
	// RawSF is the unclamped, fractional Eq. 3 scaling factor.
	RawSF float64
	// Quantile is the usage quantile compared against the slack bands.
	Quantile float64
	// Explanation is a human-readable account of the decision.
	Explanation string
}

// ScalingNeeded reports whether the decision changes the allocation.
func (d Decision) ScalingNeeded() bool { return d.Delta != 0 }

// Recommender evaluates Algorithm 1. It is stateless across calls — the
// paper's "clean-slate, history-independent reactive algorithm" — so a
// single instance may be shared by concurrent callers.
type Recommender struct {
	cfg Config
}

// New builds a Recommender after validating cfg.
func New(cfg Config) (*Recommender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Recommender{cfg: cfg}, nil
}

// Config returns the recommender's configuration.
func (r *Recommender) Config() Config { return r.cfg }

// ErrNoUsage is returned when the usage window is empty after
// preprocessing.
var ErrNoUsage = errors.New("core: empty usage window")

// Preprocess cleans a usage window the way Algorithm 1 line 2 does:
// NaN/Inf samples (metric-gap artifacts around restarts) and negatives
// are dropped. The input is not mutated.
func Preprocess(usage []float64) []float64 {
	return appendPreprocessed(make([]float64, 0, len(usage)), usage)
}

// appendPreprocessed appends the Preprocess-surviving samples of usage to
// dst and returns it.
func appendPreprocessed(dst, usage []float64) []float64 {
	for _, v := range usage {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// Scratch holds the reusable per-caller evaluation state of Decide: the
// preprocessed-window buffer, the PvP curve storage, and a memo of the
// most recent decision. A long-lived caller (the simulator adapters, the
// k8s control loop) keeps one Scratch per decision stream and passes it to
// DecideScratch, eliminating the per-decision allocations and skipping the
// curve rebuild entirely when the decision inputs are unchanged — common
// while usage sits flat or pinned at the cap between ticks.
//
// A Scratch must not be shared between goroutines. The zero value is
// ready to use; a Scratch handed to a different Recommender resets itself,
// so a stale memo can never cross configurations.
type Scratch struct {
	// Sink, when non-nil and enabled, receives one "core.decision" audit
	// event per evaluation: branch, slope, skew, raw scaling factor,
	// quantile and whether the memo answered — the machine-readable form
	// of the paper's interpretability requirement (R6). It survives owner
	// resets, so attaching a sink before the first call is safe.
	Sink obs.Sink
	// Now is the simulated time stamped on audit events. Loop callers set
	// it before each decision (the recommend adapters track it from
	// Observe); it is meaningless when Sink is nil.
	Now int64
	// MemoHits / MemoMisses count decisions answered from the memo versus
	// full Algorithm 1 evaluations — the decision stream's cache telemetry.
	MemoHits, MemoMisses uint64

	owner *Recommender
	clean []float64
	curve pvp.Curve

	memoValid bool
	memoCores int
	memoClean []float64
	memoDec   Decision
}

// emitDecision writes the per-evaluation audit event. Callers guard on
// Sink being enabled so the disabled path costs one branch.
func (sc *Scratch) emitDecision(d Decision, memoHit bool) {
	sc.Sink.Emit(obs.Event{T: sc.Now, Type: "core.decision", Fields: []obs.Field{
		obs.I("cores", int64(d.CurrentCores)),
		obs.I("target", int64(d.TargetCores)),
		obs.S("branch", string(d.Branch)),
		obs.F("slope", d.Slope),
		obs.F("skew", d.Skew),
		obs.F("raw_sf", d.RawSF),
		obs.F("quantile", d.Quantile),
		obs.B("memo", memoHit),
	}})
}

// Decide runs Algorithm 1 for the current allocation and usage window
// (observed and/or forecast-extended; see Proactive). It returns the
// decision or an error for unusable input. Loop-style callers should
// prefer DecideScratch, which avoids the per-call allocations.
func (r *Recommender) Decide(currentCores int, usage []float64) (Decision, error) {
	var s Scratch
	return r.DecideScratch(&s, currentCores, usage)
}

// DecideScratch is Decide evaluated through a caller-owned Scratch. The
// returned decision is bit-identical to Decide's for the same inputs; only
// the allocation behaviour differs. A nil scratch is allowed (one is
// created per call, degrading to Decide).
func (r *Recommender) DecideScratch(sc *Scratch, currentCores int, usage []float64) (Decision, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	if sc.owner != r {
		// Reset evaluation state but keep the caller-attached telemetry:
		// a sink installed before the first decision must survive this.
		*sc = Scratch{owner: r, Sink: sc.Sink, Now: sc.Now}
	}
	cfg := r.cfg
	xc := stats.ClampInt(currentCores, cfg.SKUs.MinCores, cfg.SKUs.MaxCores)

	// Line 2: preprocess CPU into the reusable buffer.
	clean := appendPreprocessed(sc.clean[:0], usage)
	sc.clean = clean
	if len(clean) == 0 {
		return Decision{}, ErrNoUsage
	}
	sort.Float64s(clean)

	// Identical sorted window + allocation ⇒ identical decision: Algorithm
	// 1 is a pure function of (window multiset, current cores, config), so
	// the PvP curve rebuild can be skipped outright when the window stats
	// are unchanged since the previous tick.
	if sc.memoValid && xc == sc.memoCores && equalFloats(clean, sc.memoClean) {
		sc.MemoHits++
		if obs.Enabled(sc.Sink) {
			sc.emitDecision(sc.memoDec, true)
		}
		return sc.memoDec, nil
	}
	sc.MemoMisses++

	// Line 3: build the PvP curve (the refactored SKU recommendation
	// tool of §4.2, CPU-only), reusing the scratch storage.
	if err := pvp.BuildCurveInto(&sc.curve, clean, cfg.SKUs); err != nil {
		return Decision{}, err
	}
	curve := &sc.curve

	// Lines 4–7: slopes, skew, current slope, scaling factor.
	skew := curve.Skew()
	s := curve.SlopeAt(xc)
	rawSF := pvp.ScalingFactor(s, skew, cfg.SF)

	q, err := stats.QuantileSorted(clean, cfg.QuantileP)
	if err != nil {
		return Decision{}, err
	}
	peak, _ := stats.QuantileSorted(clean, 1)

	d := Decision{
		CurrentCores: xc,
		Slope:        s,
		Skew:         skew,
		RawSF:        rawSF,
		Quantile:     q,
	}

	capf := float64(xc)
	switch {
	// Lines 8–9: scale up on a steep slope or when the usage quantile
	// eats into the head-room buffer.
	case s >= cfg.SlopeHigh || q >= (1-cfg.SlackHigh)*capf:
		step := r.roundSF(rawSF)
		if step < 1 {
			step = 1 // an up-trigger always moves at least one core
		}
		if step > cfg.MaxStepUp {
			step = cfg.MaxStepUp
		}
		// Single-step sufficiency: never land below the capacity that
		// restores the configured buffer over the observed quantile.
		needed := int(math.Ceil(q / (1 - cfg.SlackHigh)))
		target := xc + step
		if target < needed {
			target = stats.ClampInt(needed, xc+1, xc+cfg.MaxStepUp)
		}
		d.Branch = BranchScaleUp
		d.TargetCores = r.guardrail(target)
		d.Explanation = fmt.Sprintf(
			"scale-up: slope %.2f (threshold %.2f), P%.0f usage %.2f of %d cores (buffer threshold %.2f); SF %.2f → +%d cores",
			s, cfg.SlopeHigh, cfg.QuantileP*100, q, xc, (1-cfg.SlackHigh)*capf, rawSF, d.TargetCores-xc)

	// Lines 10–13: scale down when the slope is flat or most capacity
	// is idle; on a flat tail, walk the curve down in one move.
	case s <= cfg.SlopeLow || q <= cfg.SlackLow*capf:
		if curve.FlatTailAt(xc) && s == 0 {
			// Lines 12–13: walk down to the cheapest SKU that still
			// meets the workload at the configured performance target.
			target := curve.WalkDown(xc, cfg.WalkDownPerfTarget)
			// Preserve the head-room buffer over the observed peak.
			buffered := int(math.Ceil(peak / (1 - cfg.SlackHigh)))
			if target < buffered {
				target = buffered
			}
			if target > xc {
				target = xc
			}
			d.Branch = BranchWalkDown
			d.TargetCores = r.guardrail(target)
			d.Explanation = fmt.Sprintf(
				"walk-down: flat PvP tail at %d cores (peak usage %.2f); cheapest SKU meeting %.0f%% performance is %d cores",
				xc, peak, cfg.WalkDownPerfTarget*100, d.TargetCores)
			if d.TargetCores >= xc {
				d.Branch = BranchHold
				d.TargetCores = xc
				d.Explanation = fmt.Sprintf(
					"hold: flat PvP tail at %d cores but no cheaper SKU clears the buffered peak %.2f", xc, peak)
			}
		} else {
			step := r.roundSF(rawSF)
			if step < 1 {
				step = 1
			}
			if step > cfg.MaxStepDown {
				step = cfg.MaxStepDown
			}
			// Do not scale below the buffered quantile.
			minSafe := int(math.Ceil(q / (1 - cfg.SlackHigh)))
			target := xc - step
			if target < minSafe {
				target = minSafe
			}
			if target > xc {
				target = xc
			}
			d.TargetCores = r.guardrail(target)
			if d.TargetCores < xc {
				d.Branch = BranchScaleDown
				d.Explanation = fmt.Sprintf(
					"scale-down: slope %.2f ≤ %.2f or P%.0f usage %.2f ≤ %.2f (idle threshold); SF %.2f → -%d cores",
					s, cfg.SlopeLow, cfg.QuantileP*100, q, cfg.SlackLow*capf, rawSF, xc-d.TargetCores)
			} else {
				d.Branch = BranchHold
				d.TargetCores = xc
				d.Explanation = fmt.Sprintf(
					"hold: down-trigger fired but buffered quantile %.2f forbids shrinking below %d cores", q, xc)
			}
		}

	// Between thresholds: hold (the paper's R3 penalises needless
	// scaling; holding is the only frequency-minimising choice).
	default:
		d.Branch = BranchHold
		d.TargetCores = xc
		d.Explanation = fmt.Sprintf(
			"hold: slope %.2f within (%.2f, %.2f) and P%.0f usage %.2f within slack bands of %d cores",
			s, cfg.SlopeLow, cfg.SlopeHigh, cfg.QuantileP*100, q, xc)
	}

	d.Delta = d.TargetCores - d.CurrentCores

	sc.memoClean = append(sc.memoClean[:0], clean...)
	sc.memoCores = xc
	sc.memoDec = d
	sc.memoValid = true
	if obs.Enabled(sc.Sink) {
		sc.emitDecision(d, false)
	}
	return d, nil
}

// equalFloats reports element-wise equality (inputs are NaN-free: both
// come out of the line 2 preprocessing).
func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// roundSF converts the fractional Eq. 3 factor into whole cores per the
// configured rounding mode (paper: round down by default, §4.2).
func (r *Recommender) roundSF(sf float64) int {
	if r.cfg.RoundUp {
		return int(math.Ceil(sf))
	}
	return int(math.Floor(sf))
}

// guardrail applies the Algorithm 1 line 14 guardrails: clamp the target
// into [max(c_min, ladder bottom), ladder top].
func (r *Recommender) guardrail(target int) int {
	return stats.ClampInt(target, r.cfg.floor(), r.cfg.SKUs.MaxCores)
}
