package main

// Load-generator mode: caasper-fleet -target http://host:port replays
// the fleet's synthetic traces against a running caasper-serve instance
// instead of simulating locally — the serve smoke stage and the ingest
// throughput numbers both come from here. Tenants are registered over
// the admin API, their samples posted as NDJSON batches (per-tenant
// ordering preserved, 429 backpressure honoured via Retry-After), and
// the run reports ingest throughput plus client-side latency
// percentiles and the server's own /metrics table.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"caasper"
	"caasper/internal/obs"
)

// loadgenConfig is the subset of fleet flags the -target mode consumes.
type loadgenConfig struct {
	target    string
	tenants   int
	samples   int // samples posted per tenant (the -minutes flag)
	batch     int // samples per POST
	conns     int // concurrent posters (tenants are sharded across them)
	policy    string
	workloads []string
	seed      uint64
	maxCores  int
}

// runLoadgen drives one load-generation run and prints its report.
func runLoadgen(cfg loadgenConfig, session *obs.Session) error {
	if cfg.samples <= 0 {
		cfg.samples = 1440
	}
	if cfg.batch <= 0 {
		cfg.batch = 60
	}
	if cfg.conns <= 0 {
		cfg.conns = 8
	}
	base := strings.TrimRight(cfg.target, "/")
	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: cfg.conns * 2},
	}

	// Generate every tenant's sample stream up front so the timed
	// section measures ingest, not trace synthesis.
	type tenantLoad struct {
		id    string
		lines []string // pre-encoded NDJSON batch bodies
	}
	loads := make([]tenantLoad, cfg.tenants)
	for i := range loads {
		wname := cfg.workloads[i%len(cfg.workloads)]
		gen, ok := caasper.Workloads[wname]
		if !ok {
			return fmt.Errorf("unknown workload %q", wname)
		}
		tr := gen(cfg.seed + uint64(i))
		usage := tr.Values
		var batches []string
		var b strings.Builder
		for s := 0; s < cfg.samples; s++ {
			fmt.Fprintf(&b, `{"cpu":%.4f}`+"\n", usage[s%len(usage)])
			if (s+1)%cfg.batch == 0 || s == cfg.samples-1 {
				batches = append(batches, b.String())
				b.Reset()
			}
		}
		loads[i] = tenantLoad{id: fmt.Sprintf("t%02d", i), lines: batches}
	}

	maxC := cfg.maxCores
	if maxC <= 0 {
		maxC = 16
	}
	for _, ld := range loads {
		body := fmt.Sprintf(`{"policy":%q,"min_cores":1,"max_cores":%d,"initial_cores":2}`, cfg.policy, maxC)
		if err := put(client, base+"/v1/tenants/"+ld.id, body); err != nil {
			return fmt.Errorf("registering %s: %w", ld.id, err)
		}
	}

	// The timed ingest: each worker owns a stripe of tenants so one
	// tenant's batches always arrive in order.
	lat := obs.NewRegistry().Histogram("loadgen.post_latency")
	var retries int64
	var retriesMu sync.Mutex
	start := time.Now()
	errCh := make(chan error, cfg.conns)
	var wg sync.WaitGroup
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < len(loads); j += cfg.conns {
				for _, body := range loads[j].lines {
					if err := postWithRetry(client, base+"/v1/tenants/"+loads[j].id+"/samples", body, lat, &retries, &retriesMu); err != nil {
						errCh <- fmt.Errorf("tenant %s: %w", loads[j].id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return err
	default:
	}

	total := int64(cfg.tenants) * int64(cfg.samples)
	perMinute := float64(total) / elapsed.Minutes()
	fmt.Printf("loadgen: %d tenants × %d samples = %d samples in %v\n",
		cfg.tenants, cfg.samples, total, elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen: %.0f samples/minute (%d posts, %d retried on 429)\n",
		perMinute, lat.Count(), retries)
	fmt.Printf("loadgen: client POST latency p50 %.2fms p99 %.2fms max %.2fms\n",
		lat.Quantile(0.50)/1e6, lat.Quantile(0.99)/1e6, lat.Max()/1e6)
	session.Metrics.Gauge("loadgen.samples_per_minute").Set(perMinute)

	// The server's own view: decision counts and decision latency come
	// from its /metrics table.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("fetching server metrics: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("\nserver metrics:\n%s", raw)
	return nil
}

func put(client *http.Client, url, body string) error {
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// postWithRetry posts one NDJSON batch, honouring 429 Retry-After with a
// bounded number of retries so backpressure slows the generator down
// instead of dropping samples.
func postWithRetry(client *http.Client, url, body string, lat *obs.Histogram, retries *int64, mu *sync.Mutex) error {
	for attempt := 0; attempt < 50; attempt++ {
		t0 := time.Now()
		resp, err := client.Post(url, "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			return err
		}
		lat.ObserveSince(t0)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests:
			mu.Lock()
			*retries++
			mu.Unlock()
			delay := 10 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					// Cap the documented one-second hint: local
					// queues drain far faster than that.
					delay = time.Duration(secs) * 100 * time.Millisecond
				}
			}
			time.Sleep(delay)
		default:
			return fmt.Errorf("post: %s", resp.Status)
		}
	}
	return fmt.Errorf("post: gave up after 50 backpressure retries")
}
