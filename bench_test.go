// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the artifact end to end and reporting its
// headline metrics), plus micro-benchmarks of the hot paths (PvP-curve
// construction, Algorithm 1 decisions, simulator stepping, forecasting).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks report custom metrics (slack reductions, cost
// ratios, throughput shares) so the paper-vs-measured comparison is
// visible straight from the bench output; EXPERIMENTS.md records one run.
package caasper_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"caasper"
	"caasper/internal/experiments"
	"caasper/internal/k8s"
)

// ---------------------------------------------------------------------------
// Per-figure/table benchmarks

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.VPASlackReduction*100, "vpa_slack_red_%")
		b.ReportMetric(res.CaaSPERSlackReduction*100, "caasper_slack_red_%")
		b.ReportMetric(res.OpenShiftThroughput*100, "openshift_thrpt_%")
		b.ReportMetric(res.CaaSPERThroughput*100, "caasper_thrpt_%")
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TargetCores), "target_cores")
		b.ReportMetric(res.RawSF, "raw_sf")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ThrottledSlope, "throttled_slope")
		b.ReportMetric(res.HealthySlope, "healthy_slope")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6()
		b.ReportMetric(res.Factors[len(res.Factors)-1], "sf_at_max_slope")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.WalkDownDelta), "walkdown_delta")
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9Table1(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CostRatio*100, "cost_vs_ctrl_%")
		b.ReportMetric(res.SlackReduction*100, "slack_red_%")
		b.ReportMetric(float64(res.Resizes), "resizes")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10Table1(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReactiveCostRatio*100, "reactive_cost_%")
		b.ReportMetric(res.ProactiveCostRatio*100, "proactive_cost_%")
		b.ReportMetric(res.ReactiveSlackReduction*100, "reactive_slack_red_%")
		b.ReportMetric(res.ProactiveSlackReduction*100, "proactive_slack_red_%")
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11Table2(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PerfCostRatio*100, "perf_cost_%")
		b.ReportMetric(res.SavingsCostRatio*100, "savings_cost_%")
		b.ReportMetric(res.PerfThroughputRatio*100, "perf_thrpt_%")
		b.ReportMetric(res.SavingsThroughputRatio*100, "savings_thrpt_%")
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(1, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Frontier)), "pareto_points")
		b.ReportMetric(res.ProactiveMeanK, "proactive_mean_K")
		b.ReportMetric(res.ReactiveMeanK, "reactive_mean_K")
	}
}

func BenchmarkFigure13(b *testing.B) {
	fig12, err := experiments.Figure12(1, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(fig12)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Chosen[0].K-res.Chosen[len(res.Chosen)-1].K, "K_range")
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure14Table3(1, 25)
		if err != nil {
			b.Fatal(err)
		}
		var maxThrottled float64
		for _, row := range res.Rows {
			if row.ThrottledPct > maxThrottled {
				maxThrottled = row.ThrottledPct
			}
		}
		b.ReportMetric(maxThrottled*100, "max_throttled_%")
		b.ReportMetric(float64(len(res.Rows)), "traces")
	}
}

func BenchmarkSimCorrectness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SimulatorCorrectness(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TTest.P, "ttest_p")
	}
}

func BenchmarkMotivationHorizontal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MotivationHorizontal(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HorizontalThroughputGain, "horizontal_gain_x")
		b.ReportMetric(res.VerticalThroughputGain, "vertical_gain_x")
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (design-choice studies from DESIGN.md / paper §8)

func BenchmarkAblationInPlace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationInPlace(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rolling.DB.InterruptedTxns, "rolling_interrupted")
		b.ReportMetric(res.InPlace.DB.InterruptedTxns, "inplace_interrupted")
	}
}

func BenchmarkAblationHorizon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHorizon(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(first.SumInsufficient, "reactive_C")
		b.ReportMetric(last.SumInsufficient, "h120_C")
	}
}

func BenchmarkAblationPrefilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPrefilter(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Without.SumSlack, "nofilter_K")
		b.ReportMetric(res.With.SumSlack, "prefilter_K")
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths

func BenchmarkBuildCurve(b *testing.B) {
	usage := make([]float64, 40)
	for i := range usage {
		usage[i] = float64(i%13) + 0.5
	}
	r := caasper.SKURange{MinCores: 1, MaxCores: 32}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caasper.BuildCurve(usage, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecide(b *testing.B) {
	cfg := caasper.DefaultConfig(32)
	usage := make([]float64, 40)
	for i := range usage {
		usage[i] = float64(i%13) + 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caasper.Decide(cfg, 8, usage); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateWorkday(b *testing.B) {
	tr := caasper.Workloads["workday12h"](1)
	opts := caasper.DefaultSimOptions(6, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := caasper.NewReactive(caasper.DefaultConfig(8), 40)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := caasper.Simulate(tr, rec, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "sim_minutes/s")
}

// BenchmarkSimulateWorkdayEvents measures the same run with a live event
// sink attached, bounding the telemetry layer's enabled-path cost; compare
// against BenchmarkSimulateWorkday for the disabled-path (no-op sink) cost.
func BenchmarkSimulateWorkdayEvents(b *testing.B) {
	tr := caasper.Workloads["workday12h"](1)
	opts := caasper.DefaultSimOptions(6, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := caasper.NewReactive(caasper.DefaultConfig(8), 40)
		if err != nil {
			b.Fatal(err)
		}
		opts.Events = caasper.NewMemorySink()
		if _, err := caasper.Simulate(tr, rec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeasonalNaiveForecast(b *testing.B) {
	hist := make([]float64, 2*1440)
	for i := range hist {
		hist[i] = float64(i % 1440)
	}
	f := caasper.NewSeasonalNaive(1440)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Forecast(hist, 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHoltWintersForecast(b *testing.B) {
	hist := make([]float64, 6*288)
	for i := range hist {
		hist[i] = 3 + float64(i%288)/100
	}
	f := caasper.NewHoltWinters(0.3, 0.1, 0.2, 288)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Forecast(hist, 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunLiveHour(b *testing.B) {
	demand := caasper.NewTrace("bench", caasper.Workloads["workday12h"](1).Interval,
		caasper.Workloads["workday12h"](1).Values[:60])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := caasper.ScheduleForCores("bench-live", caasper.MixedOLTP(),
			caasper.TracePattern(demand), demand.Duration())
		if err != nil {
			b.Fatal(err)
		}
		rec, err := caasper.NewReactive(caasper.DefaultConfig(6), 40)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := caasper.RunLive(sched, rec, caasper.DatabaseA(4, 6)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlibabaTraceSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := caasper.AlibabaTrace("c_29247", uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommenderMonthTrace drives the reactive recommender's
// observe/decide loop over a full simulated month (43 200 minutes, one
// decision every 10) with no simulator around it — the recommender-only
// cost of a fleet-month replay. With the ring-buffer window and the
// sort-free decision path this loop is allocation-free at steady state
// (see TestMonthReplaySteadyStateAllocs); allocs/op counts only the
// per-op recommender construction.
func BenchmarkRecommenderMonthTrace(b *testing.B) {
	day := caasper.Workloads["workday12h"](1)
	vals := day.Values
	const monthMinutes = 43200
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := caasper.NewReactive(caasper.DefaultConfig(16), 40)
		if err != nil {
			b.Fatal(err)
		}
		cur := 6
		for m := 0; m < monthMinutes; m++ {
			rec.Observe(m, vals[m%len(vals)])
			if m%10 == 9 {
				cur = rec.Recommend(cur)
			}
		}
	}
	b.ReportMetric(float64(43200*b.N)/b.Elapsed().Seconds(), "obs_minutes/s")
}

// benchFleetSpecs builds an n-tenant fleet over minutes-long demand traces
// (eight workday-derived variants, shared read-only across tenants) plus a
// cluster sized to host one 1-core pod per tenant with scale-up head-room.
// The cluster is built per call: a fleet run binds pods to it.
func benchFleetSpecs(b *testing.B, n, minutes int) ([]caasper.TenantSpec, caasper.FleetOptions) {
	b.Helper()
	const variants = 8
	traces := make([]*caasper.Trace, variants)
	for v := range traces {
		day := caasper.Workloads["workday12h"](uint64(v + 1))
		vals := make([]float64, minutes)
		for i := range vals {
			vals[i] = day.Values[i%len(day.Values)]
		}
		traces[v] = caasper.NewTrace(fmt.Sprintf("wk-%d", v), time.Minute, vals)
	}
	specs := make([]caasper.TenantSpec, n)
	for i := range specs {
		specs[i] = caasper.TenantSpec{
			Name:  fmt.Sprintf("t%04d", i),
			Trace: traces[i%variants],
			NewRecommender: func() (caasper.Recommender, error) {
				return caasper.NewReactive(caasper.DefaultConfig(4), 40)
			},
			InitialCores: 1,
			MinCores:     1,
			MaxCores:     4,
			Replicas:     1,
			MemGiBPerPod: 1,
		}
	}
	nodes := make([]*k8s.Node, 32)
	for i := range nodes {
		nodes[i] = k8s.NewNode(fmt.Sprintf("bench-node-%02d", i), 64, 256)
	}
	cluster, err := k8s.NewCluster(nodes...)
	if err != nil {
		b.Fatal(err)
	}
	opts := caasper.DefaultFleetOptions()
	opts.Cluster = cluster
	opts.Minutes = minutes
	return specs, opts
}

// benchFleet runs the shared fleet benchmark body under the given engine,
// reporting tenant_minutes/s.
func benchFleet(b *testing.B, tenants, minutes int, engine string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		specs, opts := benchFleetSpecs(b, tenants, minutes)
		opts.Engine = engine
		if _, err := caasper.RunFleet(specs, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tenants*minutes*(i+1))/b.Elapsed().Seconds(), "tenant_minutes/s")
	}
}

// BenchmarkFleetTick measures the fleet controller's steady tick cost at
// 1000 tenants: one op replays a 1-hour horizon (60 000 tenant-minutes),
// exercising the segment-batched observe phase and the sequential
// arbitration phase.
func BenchmarkFleetTick(b *testing.B) {
	benchFleet(b, 1000, 60, caasper.FleetEngineStepped)
}

// BenchmarkFleetTickEvents is BenchmarkFleetTick under the discrete-event
// engine. The workday traces are noisy (minute-length constant runs), so
// this bounds the event engine's overhead on its worst-case input rather
// than showing its best case — see BenchmarkFleetMonth100k for that.
func BenchmarkFleetTickEvents(b *testing.B) {
	benchFleet(b, 1000, 60, caasper.FleetEngineEvents)
}

// BenchmarkFleetWeek1k is a headline scale demonstration: 1000 tenants
// replayed over one full week (10.08 M tenant-minutes per op). heap_sys_MB
// reports the Go heap footprint after the run — with O(window) recommender
// state it stays bounded by the traces and per-tenant fixtures, not the
// replay length.
func BenchmarkFleetWeek1k(b *testing.B) {
	benchFleet(b, 1000, 7*24*60, caasper.FleetEngineStepped)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.Sys)/(1<<20), "heap_sys_MB")
}

// BenchmarkFleetWeek1kEvents is BenchmarkFleetWeek1k under the
// discrete-event engine (same noisy-trace caveat as
// BenchmarkFleetTickEvents).
func BenchmarkFleetWeek1kEvents(b *testing.B) {
	benchFleet(b, 1000, 7*24*60, caasper.FleetEngineEvents)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.Sys)/(1<<20), "heap_sys_MB")
}

// benchMonthSpecs builds the 100 000-tenant month fleet: 24 shared
// piecewise-constant day-shaped traces (a 9-hour busy plateau over a quiet
// baseline, phase-staggered per variant, two inflections per day) and a
// cluster sized for one pod per tenant with scale-up head-room. The levels
// are chosen so each plateau has a fixed-point limit inside the
// recommender's hold band: tenants resize once per inflection, then sleep
// until the next one — the discrete-event engine's intended regime.
func benchMonthSpecs(b *testing.B, n, minutes int) ([]caasper.TenantSpec, caasper.FleetOptions) {
	b.Helper()
	const variants = 24
	traces := make([]*caasper.Trace, variants)
	for v := range traces {
		low := 0.5 + 0.05*float64(v%8)
		high := 2.2 + 0.06*float64(v%8)
		// Plateau edges land one minute after a decision tick, staggered
		// per variant: a woken tenant then sees nine new-level samples at
		// its first tick instead of one, minimising ticks spent mixed.
		start := (421 + 40*v) % 1440
		vals := make([]float64, minutes)
		for m := range vals {
			mm := m % 1440
			busy := mm-start >= 0 && mm-start < 540 ||
				mm+1440-start < 540 // plateau wraps past midnight
			if busy {
				vals[m] = high
			} else {
				vals[m] = low
			}
		}
		traces[v] = caasper.NewTrace(fmt.Sprintf("month-%02d", v), time.Minute, vals)
	}
	specs := make([]caasper.TenantSpec, n)
	for i := range specs {
		specs[i] = caasper.TenantSpec{
			Name:  fmt.Sprintf("t%05d", i),
			Trace: traces[i%variants],
			NewRecommender: func() (caasper.Recommender, error) {
				// A 20-minute window re-saturates two decision ticks after
				// each inflection, bounding the awake ticks per plateau.
				return caasper.NewReactive(caasper.DefaultConfig(4), 20)
			},
			InitialCores: 1,
			MinCores:     1,
			MaxCores:     4,
			Replicas:     1,
			MemGiBPerPod: 1,
		}
	}
	nodes := make([]*k8s.Node, 128)
	for i := range nodes {
		nodes[i] = k8s.NewNode(fmt.Sprintf("bench-node-%03d", i), 4096, 8192)
	}
	cluster, err := k8s.NewCluster(nodes...)
	if err != nil {
		b.Fatal(err)
	}
	opts := caasper.DefaultFleetOptions()
	opts.Cluster = cluster
	opts.Minutes = minutes
	// Daily billing periods keep the per-tenant metering state at 30
	// periods over the month instead of 720.
	opts.BillingPeriod = 24 * time.Hour
	return specs, opts
}

// BenchmarkFleetMonth100k is the discrete-event engine's headline: 100 000
// tenants replayed over a full month (4.32 B tenant-minutes per op). The
// stepped engine executes every tenant every minute; the event engine wakes
// each tenant only around its two daily inflections and sleeps it through
// the plateaus, so the month completes in well under a minute on one
// machine. (The stepped engine on this configuration is ~2 orders of
// magnitude slower — run it via `caasper-fleet -engine stepped` if you want
// the direct comparison.)
func BenchmarkFleetMonth100k(b *testing.B) {
	const tenants, minutes = 100_000, 43_200
	for i := 0; i < b.N; i++ {
		specs, opts := benchMonthSpecs(b, tenants, minutes)
		opts.Engine = caasper.FleetEngineEvents
		if _, err := caasper.RunFleet(specs, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tenants)*minutes*float64(i+1)/b.Elapsed().Seconds(), "tenant_minutes/s")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.Sys)/(1<<20), "heap_sys_MB")
}

// BenchmarkFleetMonth10k is the core-scaling probe: the same month
// workload at a tenth the tenants, small enough to repeat at several
// -cpu values (scripts/bench.sh runs it at -cpu 1,4,8 and keeps each
// GOMAXPROCS variant as its own row). Under the default Sharding auto
// the 128 bench nodes split the fleet into node-disjoint shard groups
// that run concurrently, so tenant_minutes/s should track cores until
// the sequential merge becomes the bottleneck (Amdahl's ceiling).
func BenchmarkFleetMonth10k(b *testing.B) {
	const tenants, minutes = 10_000, 43_200
	for i := 0; i < b.N; i++ {
		specs, opts := benchMonthSpecs(b, tenants, minutes)
		opts.Engine = caasper.FleetEngineEvents
		if _, err := caasper.RunFleet(specs, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tenants)*minutes*float64(i+1)/b.Elapsed().Seconds(), "tenant_minutes/s")
	}
}

func BenchmarkRandomSearch(b *testing.B) {
	tr := caasper.Workloads["workday12h"](1)
	opts := caasper.DefaultSimOptions(6, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caasper.RandomSearch(tr, caasper.TuningOptions{
			Samples: 10, Seed: uint64(i + 1), Sim: &opts, SeasonMinutes: 720,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeIngest drives the recommender service's HTTP ingest path
// end to end — NDJSON batch POSTs through the real handler stack into
// the shard queues, decisions firing at the default cadence — and
// reports sustained samples/minute (the serve throughput figure).
func BenchmarkServeIngest(b *testing.B) {
	srv, err := caasper.NewServer(caasper.ServeOptions{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}

	const tenants = 8
	const batchSamples = 60
	for i := 0; i < tenants; i++ {
		req, _ := http.NewRequest(http.MethodPut,
			fmt.Sprintf("%s/v1/tenants/t%02d", ts.URL, i),
			strings.NewReader(`{"policy":"caasper","max_cores":16,"initial_cores":2}`))
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("register: %s", resp.Status)
		}
	}
	tr := caasper.Workloads["workday12h"](1)
	var body strings.Builder
	for s := 0; s < batchSamples; s++ {
		fmt.Fprintf(&body, "{\"cpu\":%.4f}\n", tr.At(s))
	}
	batch := body.String()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("%s/v1/tenants/t%02d/samples", ts.URL, i%tenants)
		for {
			resp, err := client.Post(url, "application/x-ndjson", strings.NewReader(batch))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				b.Fatalf("post: %s", resp.Status)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batchSamples/b.Elapsed().Minutes(), "samples/min")
}
