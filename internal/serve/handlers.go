package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"caasper/internal/obs"
	"caasper/internal/recommend"
)

// routes builds the HTTP surface:
//
//	PUT  /v1/tenants/{id}                register (or reconfigure) a tenant
//	GET  /v1/tenants/{id}                tenant status
//	POST /v1/tenants/{id}/samples        ingest NDJSON samples {"cpu": 1.5, "ram_gb": 3.2, "disk_gb": 12}
//	GET  /v1/tenants/{id}/decisions      decision stream (since=, explain=1)
//	GET  /v1/admin/tenants               list tenants with their ranges
//	PUT  /v1/admin/tenants/{id}/range    retune {"min_cores","max_cores"} (+ optional
//	                                     "min_ram_gb","max_ram_gb","disk_gb","max_replicas")
//	PUT  /v1/admin/tenants/{id}/policy   hot-swap {"policy": "vpa"}
//	POST /v1/admin/snapshot              checkpoint now
//	GET  /metrics                        runtime metrics table
//	GET  /healthz                        liveness
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/tenants/{id}", s.span("tenant.put", s.handleTenantPut))
	mux.HandleFunc("GET /v1/tenants/{id}", s.span("tenant.get", s.handleTenantGet))
	mux.HandleFunc("POST /v1/tenants/{id}/samples", s.span("samples.post", s.handleSamples))
	mux.HandleFunc("GET /v1/tenants/{id}/decisions", s.span("decisions.get", s.handleDecisions))
	mux.HandleFunc("GET /v1/admin/tenants", s.span("admin.list", s.handleAdminList))
	mux.HandleFunc("PUT /v1/admin/tenants/{id}/range", s.span("admin.range", s.handleAdminRange))
	mux.HandleFunc("PUT /v1/admin/tenants/{id}/policy", s.span("admin.policy", s.handleAdminPolicy))
	mux.HandleFunc("POST /v1/admin/snapshot", s.span("admin.snapshot", s.handleAdminSnapshot))
	mux.HandleFunc("GET /metrics", s.span("metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

// span wraps a handler with request-span telemetry: a latency sample in
// the registry and, when events are on, one "serve.span" event stamped
// with milliseconds since server start.
func (s *Server) span(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		dur := s.opts.Metrics.Histogram("serve.request_latency").ObserveSince(t0)
		s.opts.Metrics.Counter("serve.requests").Inc()
		if s.events.Enabled() {
			s.events.Emit(obs.Event{T: time.Since(s.start).Milliseconds(), Type: "serve.span", Fields: []obs.Field{
				obs.S("route", route),
				obs.I("status", int64(sw.status)),
				obs.I("dur_us", dur.Microseconds()),
			}})
		}
	}
}

// statusWriter captures the response status for spans.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// lookup resolves a tenant (shard lock, briefly) and hands it to fn
// under the tenant's own lock, or answers 404.
func (s *Server) lookup(w http.ResponseWriter, id string, fn func(*tenantState)) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	t, ok := sh.tenants[id]
	sh.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	t.mu.Lock()
	fn(t)
	t.mu.Unlock()
}

// handleTenantPut registers a tenant (idempotent re-PUT reconfigures it
// from scratch: fresh window, fresh decision log).
func (s *Server) handleTenantPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var cfg TenantConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "tenant config: %v", err)
		return
	}
	t, err := s.newTenant(id, cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Snapshot the status row before publishing t: once it is in the
	// map a concurrent ingest could start mutating it.
	row := s.statusOf(t)
	sh := s.shardFor(id)
	sh.mu.Lock()
	_, existed := sh.tenants[id]
	sh.tenants[id] = t
	sh.mu.Unlock()
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, row)
}

// tenantStatus is the status body of GET /v1/tenants/{id} and the admin
// list rows.
type tenantStatus struct {
	ID       string `json:"id"`
	Policy   string `json:"policy"`
	Cores    int    `json:"cores"`
	MinCores int    `json:"min_cores"`
	MaxCores int    `json:"max_cores"`
	Samples  int    `json:"samples"`
	Decision int64  `json:"decisions"`
	// Multi-resource grants, appended after the v1 fields and omitted for
	// CPU-only tenants (their rows stay byte-identical).
	RAMGB    int `json:"ram_gb,omitempty"`
	MaxRAMGB int `json:"max_ram_gb,omitempty"`
	DiskGB   int `json:"disk_gb,omitempty"`
	Replicas int `json:"replicas,omitempty"`
}

// statusOf snapshots a tenant's status row. Caller holds the tenant lock
// (or exclusively owns the tenant, as handleTenantPut does pre-insert).
func (s *Server) statusOf(t *tenantState) tenantStatus {
	return tenantStatus{
		ID:       t.id,
		Policy:   t.cfg.Policy,
		Cores:    t.cores,
		MinCores: t.cfg.MinCores,
		MaxCores: t.cfg.MaxCores,
		Samples:  t.minute,
		Decision: t.seq,
		RAMGB:    t.ramGB,
		MaxRAMGB: t.cfg.MaxRAMGB,
		DiskGB:   t.diskGB,
		Replicas: t.replicas,
	}
}

func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	s.lookup(w, r.PathValue("id"), func(t *tenantState) {
		writeJSON(w, http.StatusOK, s.statusOf(t))
	})
}

// handleSamples ingests an NDJSON body of samples. The whole batch is
// parsed before anything is enqueued, so a malformed line rejects the
// request (400) without applying a prefix of it. A full shard queue
// answers 429 with Retry-After — the backpressure contract.
func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sh := s.shardFor(id)
	sh.mu.Lock()
	t, ok := sh.tenants[id]
	sh.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}

	// Parse scratch comes from the ingest pools: the scanner buffer is
	// returned on every path, while the samples slice travels with the
	// batch through the shard queue and is recycled by the drain worker —
	// except on reject paths (400/429), where the deferred check returns
	// it here instead.
	bufp := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(bufp)
	box := samplesPool.Get().(*[]sample)
	samples := (*box)[:0]
	enqueued := false
	defer func() {
		if !enqueued {
			*box = samples[:0]
			samplesPool.Put(box)
		}
	}()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(*bufp, 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var smp sample
		smp.CPU = -1
		if !parseSampleFast(raw, &smp) {
			smp = sample{CPU: -1}
			if err := json.Unmarshal(raw, &smp); err != nil {
				httpError(w, http.StatusBadRequest, "sample line %d: %v", line, err)
				return
			}
		}
		if smp.CPU < 0 {
			httpError(w, http.StatusBadRequest, `sample line %d: "cpu" must be present and ≥ 0`, line)
			return
		}
		samples = append(samples, smp)
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "reading samples: %v", err)
		return
	}
	if len(samples) == 0 {
		httpError(w, http.StatusBadRequest, "empty sample batch")
		return
	}

	select {
	case sh.queue <- batch{t: t, samples: samples, box: box, enq: time.Now()}:
		enqueued = true
		s.opts.Metrics.Counter("serve.batches").Inc()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\"accepted\":%d}\n", len(samples))
	default:
		s.opts.Metrics.Counter("serve.rejected").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingest queue full (depth %d)", s.opts.QueueDepth)
	}
}

// handleDecisions streams the tenant's decision log as NDJSON. since=N
// skips records with Seq ≤ N (a resume cursor); explain=1 materialises
// each record's prose explanation.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	var since int64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "since=%q is not a non-negative integer", v)
			return
		}
		since = n
	}
	withExplain := r.URL.Query().Get("explain") == "1"

	// Copy the eligible records out under the lock, format outside it.
	var out []DecisionRecord
	found := false
	s.lookup(w, r.PathValue("id"), func(t *tenantState) {
		found = true
		for _, rec := range t.log {
			if rec.Seq > since {
				out = append(out, rec)
			}
		}
	})
	if !found {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for i := range out {
		if withExplain {
			out[i].Explanation = explain(out[i])
		}
		enc.Encode(out[i])
	}
	bw.Flush()
}

func (s *Server) handleAdminList(w http.ResponseWriter, _ *http.Request) {
	var rows []tenantStatus
	for _, id := range s.tenantIDs() {
		s.lookupQuiet(id, func(t *tenantState) {
			rows = append(rows, s.statusOf(t))
		})
	}
	if rows == nil {
		rows = []tenantStatus{}
	}
	writeJSON(w, http.StatusOK, rows)
}

// lookupQuiet is lookup without the HTTP 404 (admin sweeps tolerate a
// tenant vanishing between the ID listing and the row read).
func (s *Server) lookupQuiet(id string, fn func(*tenantState)) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	t, ok := sh.tenants[id]
	sh.mu.Unlock()
	if !ok {
		return
	}
	t.mu.Lock()
	fn(t)
	t.mu.Unlock()
}

// handleAdminRange retunes a tenant's resource ranges (the Zerops
// scaling-API verb: adjust the autoscaling bounds, let the autoscaler
// move inside them). The CPU pair is required; the multi-resource fields
// are optional and, when zero, leave that dimension's bounds untouched —
// so a CPU-only PUT behaves exactly as it did before the vector API.
// Current grants are clamped into the new ranges immediately.
func (s *Server) handleAdminRange(w http.ResponseWriter, r *http.Request) {
	var body struct {
		MinCores    int `json:"min_cores"`
		MaxCores    int `json:"max_cores"`
		MinRAMGB    int `json:"min_ram_gb"`
		MaxRAMGB    int `json:"max_ram_gb"`
		DiskGB      int `json:"disk_gb"`
		MaxReplicas int `json:"max_replicas"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "range: %v", err)
		return
	}
	if body.MinCores < 1 || body.MaxCores < body.MinCores {
		httpError(w, http.StatusBadRequest, "range: need 1 ≤ min_cores ≤ max_cores, got [%d, %d]",
			body.MinCores, body.MaxCores)
		return
	}
	if body.MinRAMGB > 0 && body.MaxRAMGB == 0 {
		httpError(w, http.StatusBadRequest, "range: min_ram_gb needs max_ram_gb")
		return
	}
	if body.MaxRAMGB > 0 && body.MinRAMGB > body.MaxRAMGB {
		httpError(w, http.StatusBadRequest, "range: min_ram_gb %d > max_ram_gb %d", body.MinRAMGB, body.MaxRAMGB)
		return
	}
	if body.DiskGB < 0 || body.MaxReplicas < 0 {
		httpError(w, http.StatusBadRequest, "range: negative disk_gb or max_replicas")
		return
	}
	s.lookup(w, r.PathValue("id"), func(t *tenantState) {
		t.cfg.MinCores = body.MinCores
		t.cfg.MaxCores = body.MaxCores
		if t.cores < body.MinCores {
			t.cores = body.MinCores
		}
		if t.cores > body.MaxCores {
			t.cores = body.MaxCores
		}
		if body.MaxRAMGB > 0 {
			t.cfg.MinRAMGB = body.MinRAMGB
			if t.cfg.MinRAMGB <= 0 {
				t.cfg.MinRAMGB = 1
			}
			t.cfg.MaxRAMGB = body.MaxRAMGB
			if t.cfg.InitialRAMGB == 0 {
				t.cfg.InitialRAMGB = t.cfg.MinRAMGB
			}
			if t.ramGB < t.cfg.MinRAMGB {
				t.ramGB = t.cfg.MinRAMGB
			}
			if t.ramGB > t.cfg.MaxRAMGB {
				t.ramGB = t.cfg.MaxRAMGB
			}
		}
		if body.DiskGB > 0 {
			t.cfg.DiskGB = body.DiskGB
			if t.cfg.MaxDiskGB > 0 && t.cfg.MaxDiskGB < body.DiskGB {
				t.cfg.MaxDiskGB = body.DiskGB
			}
			// Volumes only grow: an admin can provision ahead of demand but
			// never shrink under live data.
			if t.diskGB < body.DiskGB {
				t.diskGB = body.DiskGB
			}
		}
		if body.MaxReplicas > 0 {
			t.cfg.MaxReplicas = body.MaxReplicas
			if t.replicas == 0 {
				t.replicas = 1
			}
			if t.replicas > body.MaxReplicas {
				t.replicas = body.MaxReplicas
			}
		}
		writeJSON(w, http.StatusOK, s.statusOf(t))
	})
}

// handleAdminPolicy hot-swaps a tenant's recommender without a restart.
// The new policy starts with a cold observation window (policies have
// incompatible state shapes); the decision log, sequence numbers and
// sample clock carry over, so streams resume seamlessly mid-flight.
func (s *Server) handleAdminPolicy(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Policy string `json:"policy"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Policy == "" {
		httpError(w, http.StatusBadRequest, `policy: body must be {"policy": "<name>"}`)
		return
	}
	s.lookup(w, r.PathValue("id"), func(t *tenantState) {
		cfg := t.cfg
		cfg.Policy = body.Policy
		rec, err := recommend.NewByName(cfg.Policy, cfg.settings())
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if in, ok := rec.(recommend.Instrumentable); ok && s.events.Enabled() {
			in.SetEventSink(s.events)
		}
		t.cfg = cfg
		t.rec = rec
		writeJSON(w, http.StatusOK, s.statusOf(t))
	})
}

func (s *Server) handleAdminSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.opts.SnapshotPath == "" {
		httpError(w, http.StatusConflict, "no snapshot path configured")
		return
	}
	if err := s.Snapshot(s.opts.SnapshotPath); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"snapshot": s.opts.SnapshotPath})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.opts.Metrics == nil {
		io.WriteString(w, "metrics disabled\n")
		return
	}
	io.WriteString(w, s.opts.Metrics.Summary())
}

// parseSampleFast decodes the canonical flat sample object — plain
// escape-free keys from the fixed schema, plain RFC 8259 numbers, no
// nesting — without encoding/json's reflection machinery or its
// per-token allocations. It is strictly conservative: anything unusual
// (unknown keys, string escapes, nested values, null, numbers outside
// the exact-conversion fast path below) returns false and the caller
// retries the line with json.Unmarshal, so every accepted input decodes
// bit-identically on both paths and rejection semantics never change.
func parseSampleFast(b []byte, out *sample) bool {
	i := 0
	skipWS := func() {
		for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
			i++
		}
	}
	skipWS()
	if i >= len(b) || b[i] != '{' {
		return false
	}
	i++
	skipWS()
	if i < len(b) && b[i] == '}' {
		i++
		skipWS()
		return i == len(b)
	}
	for {
		skipWS()
		if i >= len(b) || b[i] != '"' {
			return false
		}
		i++
		keyStart := i
		for i < len(b) && b[i] != '"' {
			if b[i] == '\\' {
				return false
			}
			i++
		}
		if i >= len(b) {
			return false
		}
		key := b[keyStart:i]
		i++
		skipWS()
		if i >= len(b) || b[i] != ':' {
			return false
		}
		i++
		skipWS()
		v, ok := parseNumberFast(b, &i)
		if !ok {
			return false
		}
		switch string(key) { // compiler elides the conversion in a switch
		case "cpu":
			out.CPU = v
		case "ram_gb":
			out.RAMGB = v
		case "disk_gb":
			out.DiskGB = v
		default:
			return false
		}
		skipWS()
		if i >= len(b) {
			return false
		}
		switch b[i] {
		case ',':
			i++
		case '}':
			i++
			skipWS()
			return i == len(b)
		default:
			return false
		}
	}
}

// pow10Exact holds the powers of ten exactly representable as float64 —
// the range where one multiply or divide is correctly rounded.
var pow10Exact = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
	1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseNumberFast reads a JSON number at b[*i] via Clinger's exact
// conversion: when the mantissa fits in 53 bits and the decimal
// exponent stays within ±22, float64(mantissa) scaled by an exact power
// of ten is correctly rounded — bit-identical to strconv.ParseFloat,
// with no intermediate string. Anything outside that window (too many
// digits, extreme exponents, malformed syntax) reports !ok and the
// caller falls back to the full decoder.
func parseNumberFast(b []byte, ip *int) (float64, bool) {
	i := *ip
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	var mant uint64
	digits := 0
	switch {
	case i < len(b) && b[i] == '0':
		i++
		digits = 1
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			mant = mant*10 + uint64(b[i]-'0')
			digits++
			if digits > 19 {
				return 0, false
			}
			i++
		}
	default:
		return 0, false
	}
	exp10 := 0
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			mant = mant*10 + uint64(b[i]-'0')
			digits++
			exp10--
			if digits > 19 {
				return 0, false
			}
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		eneg := false
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			eneg = b[i] == '-'
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		e := 0
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			e = e*10 + int(b[i]-'0')
			if e > 400 {
				return 0, false
			}
			i++
		}
		if eneg {
			exp10 -= e
		} else {
			exp10 += e
		}
	}
	if mant >= 1<<53 || exp10 < -22 || exp10 > 22 {
		return 0, false
	}
	v := float64(mant)
	if exp10 > 0 {
		v *= pow10Exact[exp10]
	} else if exp10 < 0 {
		v /= pow10Exact[-exp10]
	}
	if neg {
		v = -v
	}
	*ip = i
	return v, true
}
