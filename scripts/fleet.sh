#!/bin/sh
# Fleet determinism gate: run a 16-tenant chaos fleet on the small
# (contended) cluster under BOTH tick engines (stepped and discrete-event)
# at worker counts 1, 4 and 8 — under the race detector — and require the
# fleet/fault event streams to be byte-identical to each other and to the
# checked-in golden. Any scheduling nondeterminism in the parallel
# observe/decide phase, drift in the arbiter's grant order, a change to
# the fault injector's draw discipline, or a divergence between the event
# engine's analytic catch-up and the stepped reference shows up here as a
# byte diff.
#
#   sh scripts/fleet.sh            # verify against testdata/fleet golden
#   UPDATE=1 sh scripts/fleet.sh   # regenerate the golden
set -eu

cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

FAULTS="restart-fail:p=0.2,metrics-gap:p=0.05,sched-pressure:p=0.5:dur=60:cores=4"

for ENG in stepped events; do
    for W in 1 4 8; do
        echo "==> fleet chaos run (16 tenants, 240 min, small cluster, engine $ENG, workers $W, -race)"
        go run -race ./cmd/caasper-fleet -tenants 16 -minutes 240 -cluster small \
            -engine "$ENG" -workers "$W" -faults "$FAULTS" -fault-seed 7 \
            -events "$OUT/fleet-$ENG-w$W.ndjson" >/dev/null
        grep -E '"type":"(fleet|fault)\.' "$OUT/fleet-$ENG-w$W.ndjson" > "$OUT/fleet-$ENG-w$W.events.ndjson"
    done
done

REF="$OUT/fleet-stepped-w1.events.ndjson"
for ENG in stepped events; do
    for W in 1 4 8; do
        cmp "$REF" "$OUT/fleet-$ENG-w$W.events.ndjson"
    done
done
echo "==> engines stepped/events byte-identical at workers 1/4/8"

# Sharding determinism: the events legs above run with the default
# -sharding auto (node-disjoint tenant groups in parallel); this leg pins
# the single-shard reference loop against the same stream, so a drift in
# the shard partition, the per-shard clocks or the merge order is a byte
# diff here.
for W in 1 4 8; do
    echo "==> fleet chaos run (engine events, sharding off, workers $W, -race)"
    go run -race ./cmd/caasper-fleet -tenants 16 -minutes 240 -cluster small \
        -engine events -sharding off -workers "$W" -faults "$FAULTS" -fault-seed 7 \
        -events "$OUT/fleet-nosharding-w$W.ndjson" >/dev/null
    grep -E '"type":"(fleet|fault)\.' "$OUT/fleet-nosharding-w$W.ndjson" > "$OUT/fleet-nosharding-w$W.events.ndjson"
    cmp "$REF" "$OUT/fleet-nosharding-w$W.events.ndjson"
done
echo "==> sharding auto/off byte-identical at workers 1/4/8"

# Multi-resource determinism: the same contract for the resource-vector
# path (RAM + disk + horizontal overflow, mem-pressure faults). The
# events engine rejects multi tenants, so this leg runs stepped only.
MFAULTS="mem-pressure:p=0.3:gb=3,metrics-gap:p=0.1"
for W in 1 4 8; do
    echo "==> fleet multi-resource run (8 tenants, 240 min, small cluster, workers $W, -race)"
    go run -race ./cmd/caasper-fleet -tenants 8 -minutes 240 -cluster small \
        -engine stepped -workers "$W" -resources "ram=4-16,disk=5-40,replicas=1-3" \
        -faults "$MFAULTS" -fault-seed 7 \
        -events "$OUT/fleet-multi-w$W.ndjson" >/dev/null
    grep -E '"type":"(fleet|fault)\.' "$OUT/fleet-multi-w$W.ndjson" > "$OUT/fleet-multi-w$W.events.ndjson"
done
MREF="$OUT/fleet-multi-w1.events.ndjson"
for W in 1 4 8; do
    cmp "$MREF" "$OUT/fleet-multi-w$W.events.ndjson"
done
echo "==> multi-resource stream byte-identical at workers 1/4/8"

GOLD=testdata/fleet
if [ "${UPDATE:-0}" = "1" ]; then
    mkdir -p "$GOLD"
    cp "$REF" "$GOLD/fleet-chaos.golden.ndjson"
    cp "$MREF" "$GOLD/fleet-multi.golden.ndjson"
    wc -l "$GOLD"/*.golden.ndjson
    echo "==> goldens regenerated in $GOLD/"
    exit 0
fi

diff -u "$GOLD/fleet-chaos.golden.ndjson" "$REF"
diff -u "$GOLD/fleet-multi.golden.ndjson" "$MREF"
echo "==> OK: fleet event streams byte-identical to goldens under both engines at every worker count"
