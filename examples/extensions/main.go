// Extensions: the paper's §8 future-work items, implemented and runnable.
//
//  1. In-place pod resize — resizes with no restarts, no dropped
//     connections, no failovers (§2.2 fn.4, §6.2 fn.10).
//
//  2. Multi-resource scaling — independent CaaSPER decisions per resource
//     dimension (CPU and memory) over a multi-dimensional usage stream.
//
//  3. Forecast-confidence prefilter and ensemble forecasting for the
//     proactive mode (§4.3).
//
//     go run ./examples/extensions
package main

import (
	"fmt"
	"log"
	"time"

	"caasper"
)

func main() {
	inPlaceDemo()
	multiResourceDemo()
	ensembleDemo()
}

func inPlaceDemo() {
	fmt.Println("── 1. in-place resize vs rolling update ──────────────────────")
	demand := caasper.Workloads["workday12h"](9)
	short := caasper.NewTrace("3h", time.Minute, demand.Values[:180])
	sched, err := caasper.ScheduleForCores("inplace-demo", caasper.MixedOLTP(),
		caasper.TracePattern(short), 3*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	run := func(inPlace bool) *caasper.LiveResult {
		rec, err := caasper.NewReactive(caasper.DefaultConfig(6), 30)
		if err != nil {
			log.Fatal(err)
		}
		opts := caasper.DatabaseA(2, 6)
		opts.InPlaceResize = inPlace
		res, err := caasper.RunLive(sched, rec, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	rolling := run(false)
	inPlace := run(true)
	fmt.Printf("%-16s %12s %12s %10s\n", "mode", "interrupted", "failovers", "resizes")
	fmt.Printf("%-16s %12.0f %12d %10d\n", "rolling", rolling.DB.InterruptedTxns, rolling.Failovers, rolling.NumScalings)
	fmt.Printf("%-16s %12.0f %12d %10d\n", "in-place", inPlace.DB.InterruptedTxns, inPlace.Failovers, inPlace.NumScalings)
	fmt.Println()
}

func multiResourceDemo() {
	fmt.Println("── 2. multi-resource scaling (CPU + memory) ──────────────────")
	m, err := caasper.NewMultiResource(caasper.MultiResourceConfig{
		Ladders: map[string]caasper.ResourceLadder{
			"cpu":     {Min: 2, Max: 16, Step: 1},
			"mem_gib": {Min: 8, Max: 64, Step: 4},
		},
		Base: caasper.DefaultConfig(16),
	})
	if err != nil {
		log.Fatal(err)
	}
	// CPU is throttled at its 4-core cap while memory idles at 12 of 48.
	samples := make([]caasper.UsageSample, 90)
	for i := range samples {
		samples[i] = caasper.UsageSample{"cpu": 4, "mem_gib": 12}
	}
	current := map[string]int{"cpu": 4, "mem_gib": 48}
	d, err := m.Decide(current, samples)
	if err != nil {
		log.Fatal(err)
	}
	for _, dim := range []string{"cpu", "mem_gib"} {
		fmt.Printf("%-8s %2d -> %2d   %s\n", dim, current[dim], d.Targets[dim],
			d.PerDimension[dim].Explanation)
	}
	fmt.Println()
}

func ensembleDemo() {
	fmt.Println("── 3. ensemble forecasting + confidence intervals ────────────")
	// Two days of a daily cycle at one-minute resolution.
	hist := make([]float64, 2*1440)
	for i := range hist {
		hist[i] = 3
		if m := i % 1440; m >= 600 && m < 720 {
			hist[i] = 9 // daily two-hour surge
		}
	}
	ensemble := caasper.NewEnsemble(caasper.EnsembleMax,
		caasper.NewSeasonalNaive(1440),
		caasper.NewMovingAverage(120),
	)
	pred, err := ensemble.Forecast(hist, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s next-hour forecast: first %.1f cores, max %.1f cores\n",
		ensemble.Name(), pred[0], maxOf(pred))

	rec, err := caasper.NewProactive(caasper.DefaultConfig(12), ensemble, 40, 60, 1440)
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range hist {
		rec.Observe(i, v)
	}
	target := rec.Recommend(4)
	fmt.Printf("proactive recommendation with the ensemble at minute %d: %d -> %d cores\n",
		len(hist), 4, target)
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
