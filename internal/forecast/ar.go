package forecast

import (
	"fmt"

	"caasper/internal/stats"
)

// AR is an autoregressive model of order P fit by the Yule–Walker
// equations (solved with Levinson–Durbin recursion). It stands in for the
// ARIMA forecaster the paper evaluated from sktime: an AR(p) over the
// mean-removed series captures the same short-horizon autocorrelation
// structure without the differencing/MA machinery, which the paper's
// workloads did not need (they chose the naïve model anyway).
type AR struct {
	// P is the autoregressive order; must be ≥ 1.
	P int
}

// Name implements Forecaster.
func (f *AR) Name() string { return fmt.Sprintf("ar(%d)", f.P) }

// Forecast implements Forecaster.
func (f *AR) Forecast(history []float64, horizon int) ([]float64, error) {
	if f.P < 1 {
		return nil, fmt.Errorf("forecast: ar order %d must be ≥ 1", f.P)
	}
	if len(history) < f.P+2 {
		return nil, ErrShortHistory
	}
	if horizon <= 0 {
		return nil, nil
	}

	mean := stats.Mean(history)
	centered := make([]float64, len(history))
	for i, v := range history {
		centered[i] = v - mean
	}

	phi, ok := yuleWalker(centered, f.P)
	if !ok {
		// Degenerate autocovariance (constant series): forecast the mean.
		out := make([]float64, horizon)
		for i := range out {
			out[i] = mean
		}
		return clampNonNegative(out), nil
	}

	// Iterated one-step-ahead prediction.
	buf := append([]float64(nil), centered...)
	out := make([]float64, horizon)
	for h := 0; h < horizon; h++ {
		var pred float64
		for k := 0; k < f.P; k++ {
			pred += phi[k] * buf[len(buf)-1-k]
		}
		buf = append(buf, pred)
		out[h] = pred + mean
	}
	return clampNonNegative(out), nil
}

// yuleWalker solves the Yule–Walker equations for AR coefficients using
// Levinson–Durbin recursion. It returns ok=false when the lag-0
// autocovariance is zero (constant input).
func yuleWalker(x []float64, p int) ([]float64, bool) {
	n := len(x)
	// Biased autocovariance estimates r[0..p].
	r := make([]float64, p+1)
	for lag := 0; lag <= p; lag++ {
		var s float64
		for t := lag; t < n; t++ {
			s += x[t] * x[t-lag]
		}
		r[lag] = s / float64(n)
	}
	if r[0] == 0 {
		return nil, false
	}

	phi := make([]float64, p)
	prev := make([]float64, p)
	e := r[0]
	for k := 1; k <= p; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * r[k-j]
		}
		if e == 0 {
			return nil, false
		}
		lambda := acc / e
		for j := 0; j < k-1; j++ {
			phi[j] = prev[j] - lambda*prev[k-2-j]
		}
		phi[k-1] = lambda
		e *= 1 - lambda*lambda
		copy(prev, phi[:k])
	}
	return phi, true
}

// Accuracy reports forecast error on a held-out split: the forecaster is
// fit on history[:split] and scored on history[split:split+horizon].
// It returns MAE and MAPE. This is the tooling used to compare candidate
// forecasters the way the paper's §4.3 evaluation did.
func Accuracy(f Forecaster, history []float64, split, horizon int) (mae, mape float64, err error) {
	if split <= 0 || split >= len(history) {
		return 0, 0, fmt.Errorf("forecast: split %d out of range", split)
	}
	if split+horizon > len(history) {
		horizon = len(history) - split
	}
	pred, err := f.Forecast(history[:split], horizon)
	if err != nil {
		return 0, 0, err
	}
	actual := history[split : split+horizon]
	mae, err = stats.MAE(pred, actual)
	if err != nil {
		return 0, 0, err
	}
	mape, err = stats.MAPE(pred, actual)
	if err != nil {
		// All-zero actuals: MAPE undefined, report MAE only.
		return mae, 0, nil
	}
	return mae, mape, nil
}
