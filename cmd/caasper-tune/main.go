// Command caasper-tune runs the §5 parameter-tuning methodology on a CPU
// trace: a random search over CaaSPER's reactive parameters and proactive
// window sizes, Pareto-frontier extraction over (slack, throttling), and
// a sweep of the Eq. 5 objective G(α, p) = α·K + C over log-uniform α
// samples, printing the preference-ordered optimal parameter set.
//
// Examples:
//
//	caasper-tune -workload cyclical3d -samples 500
//	caasper-tune -alibaba c_29247 -samples 200 -alphas 12
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"caasper"
	"caasper/internal/obs"
)

func main() {
	var (
		workloadName = flag.String("workload", "cyclical3d", "synthetic workload name")
		alibabaID    = flag.String("alibaba", "", "alibaba-style trace id (overrides -workload)")
		samples      = flag.Int("samples", 500, "random parameter combinations (paper: 5000)")
		alphaCount   = flag.Int("alphas", 8, "log-uniform alpha samples for the Eq. 6 sweep")
		season       = flag.Int("season", 1440, "seasonal period in minutes for proactive combinations")
		seed         = flag.Uint64("seed", 1, "search and workload seed")
		workers      = flag.Int("workers", 0, "evaluation worker goroutines (default: GOMAXPROCS; results are identical for any value)")
	)
	var cli obs.CLIConfig
	cli.Register(flag.CommandLine)
	flag.Parse()

	session, err := cli.Start()
	if err != nil {
		fatal(err)
	}
	defer session.Finish(os.Stdout)
	session.FlushOnSignal(os.Stdout, "caasper-tune")

	var tr *caasper.Trace
	if *alibabaID != "" {
		tr, err = caasper.AlibabaTrace(*alibabaID, *seed)
	} else {
		gen, ok := caasper.Workloads[*workloadName]
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workloadName))
		}
		tr = gen(*seed)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("tuning on %s: %d samples...\n", tr.Name, *samples)
	evals, report, err := caasper.RandomSearchReport(tr, caasper.TuningOptions{
		Samples:       *samples,
		Seed:          *seed,
		SeasonMinutes: *season,
		Workers:       *workers,
		Events:        session.Events,
		Metrics:       session.Metrics,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(report.String())
	fmt.Println(report.PoolSummary())
	reasons := make([]string, 0, len(report.SkipReasons))
	for reason := range report.SkipReasons {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		session.Log.Infof("skips: %dx %s", report.SkipReasons[reason], reason)
	}

	frontier := caasper.ParetoFrontier(evals)
	fmt.Printf("\nPareto frontier (%d of %d evaluations):\n", len(frontier), len(evals))
	fmt.Printf("%10s  %10s  %6s  %9s  %s\n", "K (slack)", "C (insuff)", "N", "throttled", "params")
	for _, e := range frontier {
		fmt.Printf("%10.0f  %10.1f  %6d  %8.2f%%  %s\n",
			e.K, e.C, e.N, e.ThrottledPct*100, e.Params)
	}

	alphas := caasper.SampleAlphas(*alphaCount, -5, 5, *seed+1)
	fmt.Printf("\nEq. 6 alpha sweep (G = alpha*K + C):\n")
	fmt.Printf("%10s  %10s  %10s  %6s  %s\n", "alpha", "K", "C", "N", "params")
	for _, a := range alphas {
		best, err := caasper.BestForAlpha(a, evals)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%10.4f  %10.0f  %10.1f  %6d  %s\n", a, best.K, best.C, best.N, best.Params)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caasper-tune:", err)
	os.Exit(1)
}
