package workload

import (
	"testing"

	"caasper/internal/stats"
)

func TestAlibabaTraceUnknownID(t *testing.T) {
	if _, err := AlibabaTrace("c_nope", 0); err == nil {
		t.Error("unknown id should error")
	}
}

func TestAlibabaTracesBasicShape(t *testing.T) {
	for _, id := range AlibabaIDs {
		tr, err := AlibabaTrace(id, 0)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tr.Name != id {
			t.Errorf("%s: name = %q", id, tr.Name)
		}
		// ~8 days at 1-minute resolution ≈ 11.5k points; the paper says
		// "around 11k data points".
		if tr.Len() < 10000 || tr.Len() > 13000 {
			t.Errorf("%s: %d points, want ≈11.5k", id, tr.Len())
		}
		s := tr.Summarize()
		if s.Min < 0 {
			t.Errorf("%s: negative usage %v", id, s.Min)
		}
		if s.Max <= 0 {
			t.Errorf("%s: empty trace", id)
		}
	}
}

func TestAlibabaTraceCharacteristics(t *testing.T) {
	get := func(id string) *struct{ mean, max float64 } {
		tr, err := AlibabaTrace(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := tr.Summarize()
		return &struct{ mean, max float64 }{s.Mean, s.Max}
	}
	// c_29247 has the Day-3 outlier spike near 20 cores.
	if s := get("c_29247"); s.max < 15 {
		t.Errorf("c_29247 max = %v, want ≥15 (outlier spike)", s.max)
	}
	// c_48113 is a large batch workload reaching ~16+ cores.
	if s := get("c_48113"); s.max < 12 {
		t.Errorf("c_48113 max = %v, want ≥12", s.max)
	}
	// c_4043 is small and steady.
	if s := get("c_4043"); s.max > 3 {
		t.Errorf("c_4043 max = %v, want small", s.max)
	}
	// c_29345 has an elevated baseline.
	tr, _ := AlibabaTrace("c_29345", 0)
	if m := tr.Summarize().Min; m < 1.0 {
		t.Errorf("c_29345 min = %v, want elevated baseline", m)
	}
}

func TestAlibabaSpikeOnDay3(t *testing.T) {
	tr, err := AlibabaTrace("c_29247", 0)
	if err != nil {
		t.Fatal(err)
	}
	day := 24 * 60
	day3Max := stats.Max(tr.Window(2*day, 3*day))
	day1Max := stats.Max(tr.Window(0, day))
	if day3Max < day1Max+8 {
		t.Errorf("day3 max %v should dwarf day1 max %v", day3Max, day1Max)
	}
}

func TestAllAlibabaTraces(t *testing.T) {
	traces := AllAlibabaTraces(0)
	if len(traces) != len(AlibabaIDs) {
		t.Fatalf("got %d traces", len(traces))
	}
	for i, tr := range traces {
		if tr.Name != AlibabaIDs[i] {
			t.Errorf("trace %d name = %q, want %q", i, tr.Name, AlibabaIDs[i])
		}
	}
}

func TestAlibabaDeterminism(t *testing.T) {
	a, _ := AlibabaTrace("c_1", 0)
	b, _ := AlibabaTrace("c_1", 0)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same-seed alibaba trace diverged")
		}
	}
}

func TestSelectRepresentatives(t *testing.T) {
	traces := AllAlibabaTraces(0)
	reps, err := SelectRepresentatives(traces, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) == 0 || len(reps) > 4 {
		t.Errorf("got %d representatives", len(reps))
	}
	seen := map[string]bool{}
	for _, r := range reps {
		if seen[r.Name] {
			t.Errorf("duplicate representative %s", r.Name)
		}
		seen[r.Name] = true
	}
	// k > n clamps.
	reps, err = SelectRepresentatives(traces[:2], 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) > 2 {
		t.Errorf("k should clamp to n, got %d", len(reps))
	}
}
