module caasper

go 1.22
