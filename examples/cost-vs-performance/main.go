// Cost-vs-performance: the paper's §5 parameter-tuning flow. A random
// search over CaaSPER's parameters is evaluated in the simulator, the
// Pareto frontier over (slack, throttling) is extracted, and the Eq. 5
// objective G(α, p) = α·K + C maps a customer's preference — cheap vs
// fast — onto a concrete parameter combination.
//
//	go run ./examples/cost-vs-performance
package main

import (
	"fmt"
	"log"

	"caasper"
)

func main() {
	tr := caasper.Workloads["cyclical3d"](11)
	fmt.Printf("tuning CaaSPER on %q (%d minute samples)...\n\n", tr.Name, tr.Len())

	evals, err := caasper.RandomSearch(tr, caasper.TuningOptions{
		Samples:       150, // the paper sweeps 5000; keep the example snappy
		Seed:          3,
		SeasonMinutes: 24 * 60,
	})
	if err != nil {
		log.Fatal(err)
	}

	frontier := caasper.ParetoFrontier(evals)
	fmt.Printf("Pareto frontier: %d of %d combinations survive\n", len(frontier), len(evals))
	fmt.Printf("%12s %12s %8s  %s\n", "K (slack)", "C (insuff)", "N", "mode")
	for _, e := range frontier {
		mode := "reactive"
		if e.Params.Proactive() {
			mode = "proactive"
		}
		fmt.Printf("%12.0f %12.1f %8d  %s\n", e.K, e.C, e.N, mode)
	}

	// Two customers, two preferences (the paper's Figure 13 sweep):
	// α → 0 buys insurance against throttling; large α trims every idle
	// core.
	fmt.Printf("\n%-22s %10s %12s %12s %8s\n", "preference", "alpha", "K (slack)", "C (insuff)", "N")
	for _, pref := range []struct {
		name  string
		alpha float64
	}{
		{"mission-critical", 0.01},
		{"balanced", 0.447},
		{"cost-conscious", 2.28},
		{"ruthless-saver", 50},
	} {
		best, err := caasper.BestForAlpha(pref.alpha, evals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.3f %12.0f %12.1f %8d\n",
			pref.name, pref.alpha, best.K, best.C, best.N)
	}
	fmt.Println("\nas the slack penalty alpha grows, the chosen configuration trades head-room for cost (paper Figure 13)")
}
