package core

import (
	"fmt"
	"strconv"
	"strings"

	"caasper/internal/errs"
)

// Resources is an allocation (or demand) vector over every dimension the
// autoscaler can manage. CPU is the paper's original dimension; RAM, disk
// and replica count follow the Zerops production scaling surface
// (min/max per dimension, containers for stateless tiers). A dimension
// with value 0 is "unset": Limits.Clamp passes it through untouched and
// policies skip it, which is what keeps CPU-only configurations on the
// exact pre-vector code paths.
type Resources struct {
	CPUCores int // cores per pod
	RAMGB    int // resident memory per pod, GB
	DiskGB   int // persistent volume per pod, GB (grow-only)
	Replicas int // pods in the set (horizontal overflow, stateless only)
}

// IsZero reports whether no dimension is set.
func (r Resources) IsZero() bool { return r == Resources{} }

// String renders the set dimensions as "cpu=4 ram=8 disk=20 replicas=2".
func (r Resources) String() string {
	var b strings.Builder
	dim := func(name string, v int) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(v))
	}
	dim("cpu", r.CPUCores)
	dim("ram", r.RAMGB)
	dim("disk", r.DiskGB)
	dim("replicas", r.Replicas)
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// Limits bounds each dimension of a Resources vector. A dimension whose
// Max is 0 is unmanaged: Clamp leaves it alone and the multi-resource
// paths never scale it.
type Limits struct {
	Min Resources
	Max Resources
}

// Managed reports whether the named vector dimension has a ceiling.
func (l Limits) managedCPU() bool  { return l.Max.CPUCores > 0 }
func (l Limits) managedRAM() bool  { return l.Max.RAMGB > 0 }
func (l Limits) managedDisk() bool { return l.Max.DiskGB > 0 }

// Multi reports whether any non-CPU dimension is managed — the switch
// that upgrades a tenant from the CPU-only decision loop to the
// resource-vector loop.
func (l Limits) Multi() bool {
	return l.Max.RAMGB > 0 || l.Max.DiskGB > 0 || l.Max.Replicas > 0
}

// Clamp limits each managed dimension of r to [Min, Max]. Unmanaged
// dimensions (Max 0) pass through so CPU-only callers see identity.
func (l Limits) Clamp(r Resources) Resources {
	if l.managedCPU() {
		r.CPUCores = clampDim(r.CPUCores, l.Min.CPUCores, l.Max.CPUCores)
	}
	if l.managedRAM() {
		r.RAMGB = clampDim(r.RAMGB, l.Min.RAMGB, l.Max.RAMGB)
	}
	if l.managedDisk() {
		r.DiskGB = clampDim(r.DiskGB, l.Min.DiskGB, l.Max.DiskGB)
	}
	if l.Max.Replicas > 0 {
		r.Replicas = clampDim(r.Replicas, l.Min.Replicas, l.Max.Replicas)
	}
	return r
}

func clampDim(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if hi > 0 && v > hi {
		return hi
	}
	return v
}

// ResourceRange is the shared "initial + bounds" spelling used by every
// options struct (SimOptions, HarnessOptions, fleet TenantSpec, serve
// tenant config). It replaces the three near-duplicate sets of
// InitialCores/MinCores/MaxCores fields; the old scalar fields remain as
// deprecated aliases and win when non-zero, exactly like the RunHooks
// Merge precedent.
type ResourceRange struct {
	Initial Resources
	Limits
}

// MergeCPU overlays the deprecated scalar CPU fields onto the range:
// a non-zero scalar wins over the corresponding vector entry, so seed
// callers that only ever set InitialCores/MinCores/MaxCores keep their
// exact behaviour. Missing Initial entries for managed dimensions
// default to that dimension's Min.
func (rr ResourceRange) MergeCPU(initial, min, max int) ResourceRange {
	// The Initial→Min fallback applies only to vector-spelled CPU bounds:
	// a zero scalar InitialCores stays zero (and fails validation), the
	// seed's exact behaviour.
	vectorCPU := rr.Initial.CPUCores > 0 || rr.Min.CPUCores > 0 || rr.Max.CPUCores > 0
	if initial != 0 {
		rr.Initial.CPUCores = initial
	}
	if min != 0 {
		rr.Min.CPUCores = min
	}
	if max != 0 {
		rr.Max.CPUCores = max
	}
	if vectorCPU && rr.Initial.CPUCores == 0 {
		rr.Initial.CPUCores = rr.Min.CPUCores
	}
	if rr.Max.RAMGB > 0 {
		if rr.Min.RAMGB < 1 {
			rr.Min.RAMGB = 1
		}
		if rr.Initial.RAMGB == 0 {
			rr.Initial.RAMGB = rr.Min.RAMGB
		}
	}
	if rr.Max.DiskGB > 0 && rr.Initial.DiskGB == 0 {
		if rr.Min.DiskGB > 0 {
			rr.Initial.DiskGB = rr.Min.DiskGB
		} else {
			rr.Initial.DiskGB = rr.Max.DiskGB
		}
	}
	if rr.Max.Replicas > 0 {
		if rr.Min.Replicas < 1 {
			rr.Min.Replicas = 1
		}
		if rr.Initial.Replicas == 0 {
			rr.Initial.Replicas = rr.Min.Replicas
		}
	}
	return rr
}

// Validate checks the managed dimensions for internal consistency.
func (rr ResourceRange) Validate() error {
	type dim struct {
		name              string
		initial, min, max int
	}
	dims := []dim{
		{"cpu", rr.Initial.CPUCores, rr.Min.CPUCores, rr.Max.CPUCores},
		{"ram", rr.Initial.RAMGB, rr.Min.RAMGB, rr.Max.RAMGB},
		{"disk", rr.Initial.DiskGB, rr.Min.DiskGB, rr.Max.DiskGB},
		{"replicas", rr.Initial.Replicas, rr.Min.Replicas, rr.Max.Replicas},
	}
	for _, d := range dims {
		if d.max == 0 && d.min == 0 && d.initial == 0 {
			continue // unmanaged dimension
		}
		if d.min < 0 || d.max < 0 || d.initial < 0 {
			return fmt.Errorf("%w: resource range %s has a negative bound", errs.ErrInvalidConfig, d.name)
		}
		if d.max > 0 && d.min > d.max {
			return fmt.Errorf("%w: resource range %s min %d exceeds max %d", errs.ErrInvalidConfig, d.name, d.min, d.max)
		}
		if d.initial > 0 && d.initial < d.min {
			return fmt.Errorf("%w: resource range %s initial %d below min %d", errs.ErrInvalidConfig, d.name, d.initial, d.min)
		}
		if d.initial > 0 && d.max > 0 && d.initial > d.max {
			return fmt.Errorf("%w: resource range %s initial %d above max %d", errs.ErrInvalidConfig, d.name, d.initial, d.max)
		}
	}
	return nil
}

// ParseResourceSpec parses the CLI -resources grammar: comma-separated
// dimension clauses, each "dim=lo-hi" or "dim=n" (fixed), dimensions
// cpu, ram, disk, replicas. Initial allocation defaults to the low
// bound. Example: "ram=4-16,disk=20-100,replicas=1-4".
func ParseResourceSpec(s string) (ResourceRange, error) {
	var rr ResourceRange
	s = strings.TrimSpace(s)
	if s == "" {
		return rr, fmt.Errorf("%w: empty -resources spec", errs.ErrInvalidConfig)
	}
	seen := map[string]bool{}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rng, ok := strings.Cut(clause, "=")
		if !ok {
			return rr, fmt.Errorf("%w: resource clause %q is not dim=lo-hi", errs.ErrInvalidConfig, clause)
		}
		name = strings.TrimSpace(name)
		if seen[name] {
			return rr, fmt.Errorf("%w: duplicate resource dimension %q", errs.ErrInvalidConfig, name)
		}
		seen[name] = true
		loStr, hiStr, ranged := strings.Cut(strings.TrimSpace(rng), "-")
		lo, err := strconv.Atoi(strings.TrimSpace(loStr))
		if err != nil || lo < 1 {
			return rr, fmt.Errorf("%w: resource clause %q needs a positive low bound", errs.ErrInvalidConfig, clause)
		}
		hi := lo
		if ranged {
			hi, err = strconv.Atoi(strings.TrimSpace(hiStr))
			if err != nil || hi < lo {
				return rr, fmt.Errorf("%w: resource clause %q high bound must be ≥ low", errs.ErrInvalidConfig, clause)
			}
		}
		switch name {
		case "cpu":
			rr.Initial.CPUCores, rr.Min.CPUCores, rr.Max.CPUCores = lo, lo, hi
		case "ram":
			rr.Initial.RAMGB, rr.Min.RAMGB, rr.Max.RAMGB = lo, lo, hi
		case "disk":
			rr.Initial.DiskGB, rr.Min.DiskGB, rr.Max.DiskGB = lo, lo, hi
		case "replicas":
			rr.Initial.Replicas, rr.Min.Replicas, rr.Max.Replicas = lo, lo, hi
		default:
			return rr, fmt.Errorf("%w: unknown resource dimension %q (cpu, ram, disk, replicas)", errs.ErrInvalidConfig, name)
		}
	}
	return rr, nil
}
