package forecast

import (
	"math"
	"testing"

	"caasper/internal/stats"
)

func TestIntervalSeasonalNaiveName(t *testing.T) {
	f := NewIntervalSeasonalNaive(48)
	if f.Name() != "interval-seasonal-naive(48)" {
		t.Errorf("name = %q", f.Name())
	}
}

func TestIntervalDegeneratesWithoutTwoSeasons(t *testing.T) {
	f := NewIntervalSeasonalNaive(100)
	hist := []float64{3, 3, 3}
	point, lo, hi, err := f.ForecastInterval(hist, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range point {
		if lo[i] != point[i] || hi[i] != point[i] {
			t.Errorf("interval should be degenerate without history: [%v %v %v]", lo[i], point[i], hi[i])
		}
	}
}

func TestIntervalWidthTracksNoise(t *testing.T) {
	season := 60
	mk := func(noise float64, seed uint64) []float64 {
		rng := stats.NewRNG(seed)
		hist := make([]float64, 4*season)
		for i := range hist {
			hist[i] = 5 + 2*math.Sin(2*math.Pi*float64(i)/float64(season)) + rng.NormFloat64()*noise
		}
		return hist
	}
	f := NewIntervalSeasonalNaive(season)

	quietP, quietLo, quietHi, err := f.ForecastInterval(mk(0.05, 1), season)
	if err != nil {
		t.Fatal(err)
	}
	noisyP, noisyLo, noisyHi, err := f.ForecastInterval(mk(2.0, 2), season)
	if err != nil {
		t.Fatal(err)
	}
	quietU := RelativeUncertainty(quietP, quietLo, quietHi)
	noisyU := RelativeUncertainty(noisyP, noisyLo, noisyHi)
	if noisyU <= quietU {
		t.Errorf("noisy uncertainty %v should exceed quiet %v", noisyU, quietU)
	}
	// Intervals bracket the point and never go negative.
	for i := range noisyP {
		if noisyLo[i] > noisyP[i] || noisyHi[i] < noisyP[i] {
			t.Fatalf("interval does not bracket point at %d", i)
		}
		if noisyLo[i] < 0 {
			t.Fatalf("negative lower bound at %d", i)
		}
	}
}

func TestIntervalErrorPropagates(t *testing.T) {
	f := NewIntervalSeasonalNaive(10)
	if _, _, _, err := f.ForecastInterval(nil, 5); err != ErrShortHistory {
		t.Errorf("err = %v", err)
	}
}

func TestRelativeUncertainty(t *testing.T) {
	if got := RelativeUncertainty(nil, nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	point := []float64{10, 10}
	lo := []float64{8, 8}
	hi := []float64{12, 12}
	if got := RelativeUncertainty(point, lo, hi); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("uncertainty = %v, want 0.2", got)
	}
	// Near-zero forecasts don't blow up the ratio.
	small := RelativeUncertainty([]float64{0.001}, []float64{0}, []float64{0.1})
	if math.IsInf(small, 0) || math.IsNaN(small) {
		t.Errorf("small-level uncertainty = %v", small)
	}
}

var _ IntervalForecaster = (*IntervalSeasonalNaive)(nil)
