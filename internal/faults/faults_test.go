package faults

import (
	"strings"
	"testing"

	"caasper/internal/obs"
)

func TestParseSpecGrammar(t *testing.T) {
	spec, err := ParseSpec("restart-fail:p=0.1,restart-stuck:p=0.05:dur=600,metrics-gap:p=0.02,sched-pressure:cores=4")
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := spec.Get(RestartFail); !ok || f.P != 0.1 {
		t.Errorf("restart-fail = %+v, %v", f, ok)
	}
	if f, ok := spec.Get(RestartStuck); !ok || f.P != 0.05 || f.Dur != 600 {
		t.Errorf("restart-stuck = %+v, %v", f, ok)
	}
	if f, ok := spec.Get(MetricsGap); !ok || f.P != 0.02 {
		t.Errorf("metrics-gap = %+v, %v", f, ok)
	}
	// Unset parameters take kind defaults.
	if f, ok := spec.Get(SchedPressure); !ok || f.Cores != 4 || f.P != 1 || f.Dur != 300 {
		t.Errorf("sched-pressure = %+v, %v", f, ok)
	}
}

func TestParseSpecEmptyAndErrors(t *testing.T) {
	if spec, err := ParseSpec(""); err != nil || !spec.Empty() {
		t.Errorf("empty spec: %v, %v", spec, err)
	}
	if spec, err := ParseSpec("   "); err != nil || !spec.Empty() {
		t.Errorf("blank spec: %v, %v", spec, err)
	}
	for _, bad := range []string{
		"pod-explode:p=1",           // unknown kind
		"restart-fail:p=2",          // probability out of range
		"restart-fail:p=x",          // non-numeric
		"restart-stuck:dur=0",       // non-positive duration
		"sched-pressure:cores=-1",   // non-positive cores
		"restart-fail:frobnicate=1", // unknown parameter
		"restart-fail:p",            // not key=value
		"restart-fail,restart-fail", // duplicate kind
		",",                         // nothing but separators
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestSpecStringRoundTrips(t *testing.T) {
	spec, err := ParseSpec("sched-pressure:cores=4,restart-fail:p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	s := spec.String()
	// Canonical form: kinds sorted, parameters explicit.
	if s != "restart-fail:p=0.25,sched-pressure:p=1:dur=300:cores=4" {
		t.Errorf("String() = %q", s)
	}
	again, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != s {
		t.Errorf("round trip drifted: %q vs %q", again.String(), s)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.RestartFails("db-0", 100) || in.RestartStuck("db-0", 100) != 0 ||
		in.DropSample("db-0", 100) || in.PressureCores(100) != 0 {
		t.Error("nil injector must inject nothing")
	}
	if in.Counts().Any() || in.Summary() != "" || in.Seed() != 0 || in.Spec() != nil {
		t.Error("nil injector accessors must be zero")
	}
	spec, _ := ParseSpec("")
	if New(spec, 1) != nil {
		t.Error("empty spec must build a nil injector")
	}
}

func TestExtremeProbabilities(t *testing.T) {
	always, _ := ParseSpec("restart-fail:p=1,metrics-gap:p=1")
	in := New(always, 7)
	for now := int64(0); now < 50; now++ {
		if !in.RestartFails("db-0", now) {
			t.Fatalf("p=1 restart-fail must always fire (t=%d)", now)
		}
		if !in.DropSample("db-1", now) {
			t.Fatalf("p=1 metrics-gap must always fire (t=%d)", now)
		}
	}
	never, _ := ParseSpec("restart-fail:p=0,metrics-gap:p=0")
	in = New(never, 7)
	for now := int64(0); now < 50; now++ {
		if in.RestartFails("db-0", now) || in.DropSample("db-0", now) {
			t.Fatalf("p=0 faults must never fire (t=%d)", now)
		}
	}
}

func TestDrawRateTracksProbability(t *testing.T) {
	spec, _ := ParseSpec("metrics-gap:p=0.2")
	in := New(spec, 42)
	fired := 0
	const n = 20000
	for now := int64(0); now < n; now++ {
		if in.DropSample("db-0", now) {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.17 || rate > 0.23 {
		t.Errorf("empirical rate %.3f, want ≈0.2", rate)
	}
}

// TestDrawsAreOrderIndependent pins the determinism mechanism: a draw
// depends only on (seed, kind, pod, time), never on the interleaving of
// other draws — the property that keeps fault streams byte-identical at
// any worker count.
func TestDrawsAreOrderIndependent(t *testing.T) {
	spec, _ := ParseSpec("restart-fail:p=0.5,metrics-gap:p=0.5")
	type key struct {
		pod string
		t   int64
	}
	keys := []key{{"db-0", 10}, {"db-1", 10}, {"db-0", 11}, {"db-2", 500}, {"db-1", 11}}

	forward := map[key]bool{}
	in := New(spec, 99)
	for _, k := range keys {
		forward[k] = in.RestartFails(k.pod, k.t)
		in.DropSample(k.pod, k.t) // interleave a different kind
	}
	in = New(spec, 99)
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if got := in.RestartFails(k.pod, k.t); got != forward[k] {
			t.Errorf("draw for %v depends on query order: %v vs %v", k, got, forward[k])
		}
	}
}

func TestSeedChangesOutcomes(t *testing.T) {
	spec, _ := ParseSpec("metrics-gap:p=0.5")
	a, b := New(spec, 1), New(spec, 2)
	same := true
	for now := int64(0); now < 64; now++ {
		if a.DropSample("db-0", now) != b.DropSample("db-0", now) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different fault patterns")
	}
}

func TestPressureWindowsAndEvents(t *testing.T) {
	spec, _ := ParseSpec("sched-pressure:p=1:cores=3:dur=100")
	in := New(spec, 5)
	mem := obs.NewMemorySink()
	reg := obs.NewRegistry()
	in.Events, in.Stats = mem, reg

	for now := int64(0); now < 250; now++ {
		if got := in.PressureCores(now); got != 3 {
			t.Fatalf("pressure at t=%d = %v, want 3", now, got)
		}
	}
	// Three windows (0, 100, 200) touched, each emitting exactly one
	// activation event stamped at its boundary.
	if c := in.Counts(); c.PressureWindows != 3 {
		t.Errorf("PressureWindows = %d, want 3", c.PressureWindows)
	}
	if got := reg.Counter("fault.sched_pressure_windows").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	events := mem.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for i, want := range []int64{0, 100, 200} {
		if events[i].T != want || events[i].Type != "fault.sched-pressure" {
			t.Errorf("event %d = %v@%d", i, events[i].Type, events[i].T)
		}
	}
}

func TestInjectedFaultEventsAndCounts(t *testing.T) {
	spec, _ := ParseSpec("restart-fail:p=1,restart-stuck:p=1:dur=42,metrics-gap:p=1")
	in := New(spec, 3)
	mem := obs.NewMemorySink()
	in.Events = mem

	if !in.RestartFails("db-1", 10) {
		t.Fatal("restart-fail must fire")
	}
	if d := in.RestartStuck("db-1", 20); d != 42 {
		t.Fatalf("stuck dur = %d, want 42", d)
	}
	if !in.DropSample("db-2", 30) {
		t.Fatal("metrics-gap must fire")
	}
	c := in.Counts()
	if c.RestartFails != 1 || c.RestartStucks != 1 || c.MetricsGaps != 1 || !c.Any() {
		t.Errorf("counts = %+v", c)
	}
	var lines []string
	var buf []byte
	for _, e := range mem.Events() {
		buf = e.AppendNDJSON(buf[:0])
		lines = append(lines, string(buf))
	}
	wants := []string{
		`{"t":10,"type":"fault.restart-fail","pod":"db-1"}`,
		`{"t":20,"type":"fault.restart-stuck","pod":"db-1","dur":42}`,
		`{"t":30,"type":"fault.metrics-gap","pod":"db-2"}`,
	}
	if len(lines) != len(wants) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range wants {
		if lines[i] != wants[i] {
			t.Errorf("event %d:\n got  %s\n want %s", i, lines[i], wants[i])
		}
	}
	sum := in.Summary()
	for _, want := range []string{"chaos:", "seed=3", "restart attempts failed:   1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
