package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3 (clamped to task count)", got)
	}
	if got := Workers(5, 0); got != 1 {
		t.Errorf("Workers(5, 0) = %d, want 1", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			counts := make([]int64, n)
			err := ForEach(context.Background(), n, workers, func(i int) error {
				atomic.AddInt64(&counts[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("index %d ran %d times", i, c)
				}
			}
		})
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(context.Background(), -5, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for empty task set")
	}
}

func TestForEachNilContext(t *testing.T) {
	var ran int64
	if err := ForEach(nil, 10, 4, func(int) error { atomic.AddInt64(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 10 {
		t.Errorf("ran %d of 10 tasks with nil ctx", ran)
	}
}

// The error from the lowest failing index wins, for every worker count,
// and every task still runs (complete, worker-count-independent results).
func TestForEachLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 50
			var ran int64
			err := ForEach(context.Background(), n, workers, func(i int) error {
				atomic.AddInt64(&ran, 1)
				if i == 7 || i == 31 {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "task 7 failed" {
				t.Errorf("err = %v, want task 7's error", err)
			}
			if ran != n {
				t.Errorf("ran %d of %d tasks after failure", ran, n)
			}
		})
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	err := ForEach(ctx, 1000, 4, func(i int) error {
		if atomic.AddInt64(&ran, 1) == 5 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&ran); got >= 1000 {
		t.Errorf("cancellation did not stop task issuance (ran %d)", got)
	}
}

func TestMapIndexAddressedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 64
			out, err := Map(context.Background(), n, workers, func(i int) (int, error) {
				return i * i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != n {
				t.Fatalf("len(out) = %d, want %d", len(out), n)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(i int) (string, error) { return "x", nil })
	if err != nil || out != nil {
		t.Errorf("Map(0 tasks) = (%v, %v), want (nil, nil)", out, err)
	}
}

// Identical outputs regardless of worker count — the engine's core
// guarantee, checked over a non-trivial reduction.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		out, err := Map(context.Background(), 200, workers, func(i int) (int, error) {
			return (i*2654435761 + 12345) % 997, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d diverges at index %d: %d vs %d", workers, i, got[i], ref[i])
			}
		}
	}
}
