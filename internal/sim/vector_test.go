package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/trace"
)

func vectorOpts(t *testing.T, spec string) Options {
	t.Helper()
	rr, err := core.ParseResourceSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2, 8)
	opts.Resources = rr
	return opts
}

func TestRunVectorCPUByteIdentical(t *testing.T) {
	tr := trace.New("t", time.Minute, make([]float64, 180))
	for i := range tr.Values {
		tr.Values[i] = 2 + float64(i%7)
	}
	newRec := func() recommend.Recommender {
		r, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base, err := Run(tr, newRec(), DefaultOptions(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	vec, err := RunVector(tr, newRec(), vectorOpts(t, "ram=4-16"))
	if err != nil {
		t.Fatal(err)
	}
	// The CPU dimension of a vector run must be the CPU-only run, field
	// for field.
	if base.String() != vec.Result.String() {
		t.Fatalf("CPU dimension diverged:\n%s\nvs\n%s", base.String(), vec.Result.String())
	}
	if len(base.Decisions) != len(vec.Decisions) {
		t.Fatalf("decision counts diverged: %d vs %d", len(base.Decisions), len(vec.Decisions))
	}
}

func TestRunVectorScalesRAMAndDisk(t *testing.T) {
	n := 240
	cpu := make([]float64, n)
	ram := make([]float64, n)
	for i := range cpu {
		cpu[i] = 3
		ram[i] = 2
		if i >= 60 && i < 180 {
			ram[i] = 9 // above the initial 4 GB grant
		}
	}
	opts := vectorOpts(t, "ram=4-16,disk=5-50")
	opts.RAMTrace = trace.New("ram", time.Minute, ram)
	rec, _ := recommend.NewByName("control", recommend.Settings{MaxCores: 8})
	res, err := RunVector(trace.New("t", time.Minute, cpu), rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RAMScalings == 0 || res.OOMMinutes == 0 {
		t.Fatalf("RAM loop inert: %d scalings, %d oom", res.RAMScalings, res.OOMMinutes)
	}
	if res.FinalDiskGB < 5 || res.BilledDiskGBPeriods == 0 {
		t.Fatalf("disk loop inert: final=%d billed=%v", res.FinalDiskGB, res.BilledDiskGBPeriods)
	}
	if res.TotalCost() <= res.BilledCorePeriods {
		t.Fatalf("vector cost must exceed the CPU bill alone: %v", res.TotalCost())
	}
	if !strings.Contains(res.String(), "ram=") {
		t.Fatalf("vector String misses RAM: %s", res.String())
	}
}

func TestRunVectorMemPressureFaults(t *testing.T) {
	n := 300
	cpu := make([]float64, n)
	for i := range cpu {
		cpu[i] = 2
	}
	opts := vectorOpts(t, "ram=2-8")
	spec, err := faults.ParseSpec("mem-pressure:p=0.6:dur=60:gb=5")
	if err != nil {
		t.Fatal(err)
	}
	opts.FaultSpec = spec
	opts.FaultSeed = 11
	mem := obs.NewMemorySink()
	opts.RunHooks.Events = mem
	rec, _ := recommend.NewByName("control", recommend.Settings{MaxCores: 8})
	res, err := RunVector(trace.New("t", time.Minute, cpu), rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemPressureWindows == 0 {
		t.Fatal("p=0.6 over 5 windows should fire at least once")
	}
	var sawFault, sawOOM bool
	var buf []byte
	for _, e := range mem.Events() {
		buf = e.AppendNDJSON(buf[:0])
		s := string(buf)
		if strings.Contains(s, "fault.mem-pressure") {
			sawFault = true
		}
		if strings.Contains(s, "sim.oom") {
			sawOOM = true
		}
	}
	if !sawFault || !sawOOM {
		t.Fatalf("expected fault.mem-pressure and sim.oom events: fault=%v oom=%v", sawFault, sawOOM)
	}
	// Determinism: same seed, same counters.
	res2, err := RunVector(trace.New("t", time.Minute, cpu), rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MemPressureWindows != res.MemPressureWindows || res2.OOMMinutes != res.OOMMinutes {
		t.Fatalf("nondeterministic fault stream: %d/%d vs %d/%d",
			res.MemPressureWindows, res.OOMMinutes, res2.MemPressureWindows, res2.OOMMinutes)
	}
}

func TestRunVectorRejectsCPUOnly(t *testing.T) {
	rec, _ := recommend.NewByName("control", recommend.Settings{MaxCores: 8})
	_, err := RunVector(trace.New("t", time.Minute, []float64{1, 2}), rec, DefaultOptions(2, 8))
	if !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("CPU-only options must be rejected, got %v", err)
	}
}
