package core

import (
	"errors"
	"math"
	"strconv"

	"caasper/internal/obs"
	"caasper/internal/pvp"
	"caasper/internal/stats"
)

// Branch identifies which arm of Algorithm 1 produced a decision.
type Branch string

// The decision branches of Algorithm 1.
const (
	// BranchScaleUp is lines 8–9: steep slope or thin head-room.
	BranchScaleUp Branch = "scale-up"
	// BranchScaleDown is lines 10–11: flat slope or large idle share.
	BranchScaleDown Branch = "scale-down"
	// BranchWalkDown is lines 12–13: flat tail, severe over-provisioning.
	BranchWalkDown Branch = "walk-down"
	// BranchHold is the implicit between-thresholds case: no change.
	BranchHold Branch = "hold"
)

// Decision is the output of one Algorithm 1 evaluation, carrying enough
// intermediate state to satisfy the paper's interpretability requirement
// (R6): the slope, skew, raw scaling factor and a prose explanation.
type Decision struct {
	// Current is the full allocation vector the decision was made
	// against. Algorithm 1 itself only populates the CPU dimension; the
	// multi-resource policies (recommend.MemoryPolicy, DiskPolicy and
	// the fleet's horizontal overflow) fill the rest.
	Current Resources
	// Target is the recommended allocation vector.
	Target Resources
	// CurrentCores is the CPU allocation the decision was made against.
	//
	// Deprecated: read Current.CPUCores. Kept populated so seed callers
	// compile and behave identically.
	CurrentCores int
	// TargetCores is the recommended CPU allocation (integer,
	// guardrailed).
	//
	// Deprecated: read Target.CPUCores. Kept populated so seed callers
	// compile and behave identically.
	TargetCores int
	// Delta is Target.CPUCores − Current.CPUCores.
	Delta int
	// Branch names the Algorithm 1 arm that fired.
	Branch Branch
	// Slope is the PvP-curve slope s at CurrentCores.
	Slope float64
	// Skew is the slope-distribution skewness used by Eq. 3.
	Skew float64
	// RawSF is the unclamped, fractional Eq. 3 scaling factor.
	RawSF float64
	// Quantile is the usage quantile compared against the slack bands.
	Quantile float64
	// Explanation is a human-readable account of the decision.
	Explanation string
}

// ScalingNeeded reports whether the decision changes the allocation.
func (d Decision) ScalingNeeded() bool { return d.Delta != 0 }

// Recommender evaluates Algorithm 1. It is stateless across calls — the
// paper's "clean-slate, history-independent reactive algorithm" — so a
// single instance may be shared by concurrent callers.
type Recommender struct {
	cfg Config
}

// New builds a Recommender after validating cfg.
func New(cfg Config) (*Recommender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Recommender{cfg: cfg}, nil
}

// Config returns the recommender's configuration.
func (r *Recommender) Config() Config { return r.cfg }

// ErrNoUsage is returned when the usage window is empty after
// preprocessing.
var ErrNoUsage = errors.New("core: empty usage window")

// Preprocess cleans a usage window the way Algorithm 1 line 2 does:
// NaN/Inf samples (metric-gap artifacts around restarts) and negatives
// are dropped. The input is not mutated.
func Preprocess(usage []float64) []float64 {
	return appendPreprocessed(make([]float64, 0, len(usage)), usage)
}

// appendPreprocessed appends the Preprocess-surviving samples of usage to
// dst and returns it.
func appendPreprocessed(dst, usage []float64) []float64 {
	for _, v := range usage {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// Scratch holds the reusable per-caller evaluation state of Decide: the
// preprocessed-window buffer, the PvP curve storage, and a memo of the
// most recent decision. A long-lived caller (the simulator adapters, the
// k8s control loop) keeps one Scratch per decision stream and passes it to
// DecideScratch, eliminating the per-decision allocations and skipping the
// curve rebuild entirely when the decision inputs are unchanged — common
// while usage sits flat or pinned at the cap between ticks.
//
// A Scratch must not be shared between goroutines. The zero value is
// ready to use; a Scratch handed to a different Recommender resets itself,
// so a stale memo can never cross configurations.
type Scratch struct {
	// Sink, when non-nil and enabled, receives one "core.decision" audit
	// event per evaluation: branch, slope, skew, raw scaling factor,
	// quantile and whether the memo answered — the machine-readable form
	// of the paper's interpretability requirement (R6). It survives owner
	// resets, so attaching a sink before the first call is safe.
	Sink obs.Sink
	// Now is the simulated time stamped on audit events. Loop callers set
	// it before each decision (the recommend adapters track it from
	// Observe); it is meaningless when Sink is nil.
	Now int64
	// MemoHits / MemoMisses count decisions answered from the memo versus
	// full Algorithm 1 evaluations — the decision stream's cache telemetry.
	MemoHits, MemoMisses uint64

	owner *Recommender
	clean []float64
	curve pvp.Curve
	exp   []byte

	// expKind/expPeak record which prose template the last full
	// evaluation would have produced and the one operand (the observed
	// peak) the Decision struct does not carry. Explanation() rebuilds
	// the string from them on demand; the decision hot path never touches
	// strconv.
	expKind expKind
	expPeak float64

	memoValid bool
	memoCores int
	memoClean []float64
	memoDec   Decision

	// evFields is the reusable audit-event field buffer: Sink.Emit lets
	// callers reclaim the backing after it returns, so the per-decision
	// event costs zero steady-state allocations.
	evFields []obs.Field
}

// expKind discriminates the prose templates of Explanation(). Branch
// alone cannot: three distinct hold explanations share BranchHold.
type expKind uint8

const (
	expNone expKind = iota
	expScaleUp
	expWalkDown
	expHoldNoCheaper // flat tail but no cheaper SKU clears the buffered peak
	expScaleDown
	expHoldQuantile // down-trigger fired but the buffered quantile forbids it
	expHoldDefault
)

// Explanation materialises the prose account of the scratch's most recent
// successful decision ("" before the first one). DecideScratch records
// only which template applies (and the one operand the Decision does not
// carry); this accessor — called by the interpretability surfaces
// (Explainer.Explain, the one-shot Decide wrappers) and nothing on the
// steady-state loop — formats the string from the memoised decision, so
// the hot path pays neither strconv nor the allocation. The result is
// only valid until the next decision on this scratch.
func (s *Scratch) Explanation() string {
	if s.owner == nil || s.expKind == expNone {
		return ""
	}
	cfg := s.owner.cfg
	d := s.memoDec
	capf := float64(d.CurrentCores)
	e := expBuilder{b: s.exp[:0]}
	switch s.expKind {
	case expScaleUp:
		e.str("scale-up: slope ").f2(d.Slope).str(" (threshold ").f2(cfg.SlopeHigh).
			str("), P").f0(cfg.QuantileP * 100).str(" usage ").f2(d.Quantile).
			str(" of ").num(d.CurrentCores).str(" cores (buffer threshold ").f2((1 - cfg.SlackHigh) * capf).
			str("); SF ").f2(d.RawSF).str(" → +").num(d.TargetCores - d.CurrentCores).str(" cores")
	case expWalkDown:
		e.str("walk-down: flat PvP tail at ").num(d.CurrentCores).str(" cores (peak usage ").f2(s.expPeak).
			str("); cheapest SKU meeting ").f0(cfg.WalkDownPerfTarget * 100).
			str("% performance is ").num(d.TargetCores).str(" cores")
	case expHoldNoCheaper:
		e.str("hold: flat PvP tail at ").num(d.CurrentCores).
			str(" cores but no cheaper SKU clears the buffered peak ").f2(s.expPeak)
	case expScaleDown:
		e.str("scale-down: slope ").f2(d.Slope).str(" ≤ ").f2(cfg.SlopeLow).
			str(" or P").f0(cfg.QuantileP * 100).str(" usage ").f2(d.Quantile).
			str(" ≤ ").f2(cfg.SlackLow * capf).str(" (idle threshold); SF ").f2(d.RawSF).
			str(" → -").num(d.CurrentCores - d.TargetCores).str(" cores")
	case expHoldQuantile:
		e.str("hold: down-trigger fired but buffered quantile ").f2(d.Quantile).
			str(" forbids shrinking below ").num(d.CurrentCores).str(" cores")
	case expHoldDefault:
		e.str("hold: slope ").f2(d.Slope).str(" within (").f2(cfg.SlopeLow).str(", ").f2(cfg.SlopeHigh).
			str(") and P").f0(cfg.QuantileP * 100).str(" usage ").f2(d.Quantile).
			str(" within slack bands of ").num(d.CurrentCores).str(" cores")
	}
	s.exp = e.b
	return string(s.exp)
}

// MemoState is the serialisable form of a Scratch's decision memo and
// explanation template — what a checkpoint writes out so a restarted
// decision loop resumes with an identical warm cache: the first
// post-restore decision hits or misses the memo exactly as the
// uninterrupted loop would, keeping audit streams (the "memo" field) and
// MemoHits/MemoMisses counters bit-identical across the restart.
type MemoState struct {
	// Valid mirrors the memo's armed flag; the zero MemoState restores a
	// cold scratch.
	Valid bool
	// Cores and Window are the memo key: the clamped allocation and the
	// preprocessed usage window of the last full evaluation.
	Cores  int
	Window []float64
	// Decision is the memoised result.
	Decision Decision
	// ExpKind and ExpPeak are the lazy-explanation template state (which
	// prose template Explanation() rebuilds, and its one extra operand).
	ExpKind uint8
	ExpPeak float64
	// Now is the audit clock stamped on the next decision event.
	Now int64
}

// MemoSnapshot copies out the scratch's memo and explanation-template
// state. The returned Window is a fresh slice, safe to retain.
func (s *Scratch) MemoSnapshot() MemoState {
	return MemoState{
		Valid:    s.memoValid,
		Cores:    s.memoCores,
		Window:   append([]float64(nil), s.memoClean...),
		Decision: s.memoDec,
		ExpKind:  uint8(s.expKind),
		ExpPeak:  s.expPeak,
		Now:      s.Now,
	}
}

// RestoreMemo re-arms a snapshotted memo on a scratch that will be used
// with this recommender, binding the scratch's owner so the next
// DecideScratch call does not wipe the restored state. The scratch's Sink
// survives, mirroring the reset contract.
func (r *Recommender) RestoreMemo(sc *Scratch, m MemoState) {
	if sc.owner != r {
		*sc = Scratch{owner: r, Sink: sc.Sink, evFields: sc.evFields}
	}
	sc.Now = m.Now
	sc.memoValid = m.Valid
	sc.memoCores = m.Cores
	sc.memoClean = append(sc.memoClean[:0], m.Window...)
	sc.memoDec = m.Decision
	// v1 (pre-vector) snapshots carry only the scalar CPU fields;
	// backfill the vector so restored memo hits match live decisions.
	if sc.memoDec.Current.IsZero() && sc.memoDec.Target.IsZero() {
		sc.memoDec.Current = Resources{CPUCores: m.Decision.CurrentCores}
		sc.memoDec.Target = Resources{CPUCores: m.Decision.TargetCores}
	}
	sc.expKind = expKind(m.ExpKind)
	sc.expPeak = m.ExpPeak
}

// emitDecision writes the per-evaluation audit event. Callers guard on
// Sink being enabled so the disabled path costs one branch.
func (sc *Scratch) emitDecision(d Decision, memoHit bool) {
	sc.evFields = append(sc.evFields[:0],
		obs.I("cores", int64(d.CurrentCores)),
		obs.I("target", int64(d.TargetCores)),
		obs.S("branch", string(d.Branch)),
		obs.F("slope", d.Slope),
		obs.F("skew", d.Skew),
		obs.F("raw_sf", d.RawSF),
		obs.F("quantile", d.Quantile),
		obs.B("memo", memoHit),
	)
	sc.Sink.Emit(obs.Event{T: sc.Now, Type: "core.decision", Fields: sc.evFields})
}

// Decide runs Algorithm 1 for the current allocation and usage window
// (observed and/or forecast-extended; see Proactive). It returns the
// decision or an error for unusable input. Loop-style callers should
// prefer DecideScratch, which avoids the per-call allocations.
func (r *Recommender) Decide(currentCores int, usage []float64) (Decision, error) {
	var s Scratch
	d, err := r.DecideScratch(&s, currentCores, usage)
	if err == nil {
		d.Explanation = s.Explanation()
	}
	return d, err
}

// DecideScratch is Decide evaluated through a caller-owned Scratch. The
// returned decision is bit-identical to Decide's for the same inputs with
// one deliberate exception: Explanation is left empty and deferred to
// Scratch.Explanation(), so the steady-state decision loop allocates
// nothing at all (the prose lives in the scratch's reusable byte buffer
// until something actually reads it — the simulator only does on the rare
// enacted resize). A nil scratch is allowed (one is created per call).
func (r *Recommender) DecideScratch(sc *Scratch, currentCores int, usage []float64) (Decision, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	if sc.owner != r {
		// Reset evaluation state but keep the caller-attached telemetry:
		// a sink installed before the first decision must survive this.
		*sc = Scratch{owner: r, Sink: sc.Sink, Now: sc.Now, evFields: sc.evFields}
	}
	cfg := r.cfg
	xc := stats.ClampInt(currentCores, cfg.SKUs.MinCores, cfg.SKUs.MaxCores)

	// Line 2: preprocess CPU into the reusable buffer.
	clean := appendPreprocessed(sc.clean[:0], usage)
	sc.clean = clean
	if len(clean) == 0 {
		return Decision{}, ErrNoUsage
	}

	// Identical raw window + allocation ⇒ identical decision: Algorithm 1
	// is a pure function of (window, current cores, config), so the PvP
	// curve rebuild can be skipped outright when the window is unchanged
	// since the previous tick — common while usage sits flat or pinned at
	// the cap. (Raw equality is stricter than the multiset equality the
	// algorithm actually depends on; it trades a few extra misses for a
	// sort-free hot path.)
	if sc.memoValid && xc == sc.memoCores && equalFloats(clean, sc.memoClean) {
		sc.MemoHits++
		if obs.Enabled(sc.Sink) {
			sc.emitDecision(sc.memoDec, true)
		}
		return sc.memoDec, nil
	}
	sc.MemoMisses++
	// Invalidate before touching memo state: an error return below must
	// not leave a half-updated memo armed.
	sc.memoValid = false
	sc.memoClean = append(sc.memoClean[:0], clean...)
	sc.memoCores = xc

	// Line 3: build the PvP curve (the refactored SKU recommendation
	// tool of §4.2, CPU-only), reusing the scratch storage.
	if err := pvp.BuildCurveInto(&sc.curve, clean, cfg.SKUs); err != nil {
		return Decision{}, err
	}
	curve := &sc.curve

	// Lines 4–7: slopes, skew, current slope, scaling factor.
	skew := curve.Skew()
	s := curve.SlopeAt(xc)
	rawSF := pvp.ScalingFactor(s, skew, cfg.SF)

	// Quickselect in place (clean is partially reordered from here on;
	// every later read — Max below — is order-independent). Bit-identical
	// to sorting first and reading the R-7 quantile.
	q, err := stats.QuantileInPlace(clean, cfg.QuantileP)
	if err != nil {
		return Decision{}, err
	}
	peak := stats.Max(clean)

	d := Decision{
		CurrentCores: xc,
		Slope:        s,
		Skew:         skew,
		RawSF:        rawSF,
		Quantile:     q,
	}

	capf := float64(xc)
	switch {
	// Lines 8–9: scale up on a steep slope or when the usage quantile
	// eats into the head-room buffer.
	case s >= cfg.SlopeHigh || q >= (1-cfg.SlackHigh)*capf:
		step := r.roundSF(rawSF)
		if step < 1 {
			step = 1 // an up-trigger always moves at least one core
		}
		if step > cfg.MaxStepUp {
			step = cfg.MaxStepUp
		}
		// Single-step sufficiency: never land below the capacity that
		// restores the configured buffer over the observed quantile.
		needed := int(math.Ceil(q / (1 - cfg.SlackHigh)))
		target := xc + step
		if target < needed {
			target = stats.ClampInt(needed, xc+1, xc+cfg.MaxStepUp)
		}
		d.Branch = BranchScaleUp
		d.TargetCores = r.guardrail(target)
		sc.expKind = expScaleUp

	// Lines 10–13: scale down when the slope is flat or most capacity
	// is idle; on a flat tail, walk the curve down in one move.
	case s <= cfg.SlopeLow || q <= cfg.SlackLow*capf:
		if curve.FlatTailAt(xc) && s == 0 {
			// Lines 12–13: walk down to the cheapest SKU that still
			// meets the workload at the configured performance target.
			target := curve.WalkDown(xc, cfg.WalkDownPerfTarget)
			// Preserve the head-room buffer over the observed peak.
			buffered := int(math.Ceil(peak / (1 - cfg.SlackHigh)))
			if target < buffered {
				target = buffered
			}
			if target > xc {
				target = xc
			}
			d.Branch = BranchWalkDown
			d.TargetCores = r.guardrail(target)
			if d.TargetCores >= xc {
				d.Branch = BranchHold
				d.TargetCores = xc
				sc.expKind = expHoldNoCheaper
			} else {
				sc.expKind = expWalkDown
			}
			sc.expPeak = peak
		} else {
			step := r.roundSF(rawSF)
			if step < 1 {
				step = 1
			}
			if step > cfg.MaxStepDown {
				step = cfg.MaxStepDown
			}
			// Do not scale below the buffered quantile.
			minSafe := int(math.Ceil(q / (1 - cfg.SlackHigh)))
			target := xc - step
			if target < minSafe {
				target = minSafe
			}
			if target > xc {
				target = xc
			}
			d.TargetCores = r.guardrail(target)
			if d.TargetCores < xc {
				d.Branch = BranchScaleDown
				sc.expKind = expScaleDown
			} else {
				d.Branch = BranchHold
				d.TargetCores = xc
				sc.expKind = expHoldQuantile
			}
		}

	// Between thresholds: hold (the paper's R3 penalises needless
	// scaling; holding is the only frequency-minimising choice).
	default:
		d.Branch = BranchHold
		d.TargetCores = xc
		sc.expKind = expHoldDefault
	}

	d.Delta = d.TargetCores - d.CurrentCores
	d.Current = Resources{CPUCores: d.CurrentCores}
	d.Target = Resources{CPUCores: d.TargetCores}

	sc.memoDec = d
	sc.memoValid = true
	if obs.Enabled(sc.Sink) {
		sc.emitDecision(d, false)
	}
	return d, nil
}

// expBuilder assembles a Decision explanation in Scratch's reusable byte
// buffer. Its float verbs are byte-identical to fmt's %.2f / %.0f (both
// bottom out in strconv's 'f' formatting, including the +Inf/NaN
// spellings), so swapping fmt.Sprintf out of the hot path changed no
// output; it only cut the ~6 interface-boxing allocations per formatted
// decision down to the single final string conversion.
type expBuilder struct{ b []byte }

func (e *expBuilder) str(lit string) *expBuilder {
	e.b = append(e.b, lit...)
	return e
}

func (e *expBuilder) f2(v float64) *expBuilder {
	e.b = strconv.AppendFloat(e.b, v, 'f', 2, 64)
	return e
}

func (e *expBuilder) f0(v float64) *expBuilder {
	e.b = strconv.AppendFloat(e.b, v, 'f', 0, 64)
	return e
}

func (e *expBuilder) num(v int) *expBuilder {
	e.b = strconv.AppendInt(e.b, int64(v), 10)
	return e
}

// equalFloats reports element-wise equality (inputs are NaN-free: both
// come out of the line 2 preprocessing).
func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// roundSF converts the fractional Eq. 3 factor into whole cores per the
// configured rounding mode (paper: round down by default, §4.2).
func (r *Recommender) roundSF(sf float64) int {
	if r.cfg.RoundUp {
		return int(math.Ceil(sf))
	}
	return int(math.Floor(sf))
}

// guardrail applies the Algorithm 1 line 14 guardrails: clamp the target
// into [max(c_min, ladder bottom), ladder top].
func (r *Recommender) guardrail(target int) int {
	return stats.ClampInt(target, r.cfg.floor(), r.cfg.SKUs.MaxCores)
}
