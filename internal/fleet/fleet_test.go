package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/k8s"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/trace"
	"caasper/internal/workload"
)

// stubRec always recommends a fixed target — the minimal deterministic
// policy for arbitration tests.
type stubRec struct {
	name   string
	target int
}

func (s *stubRec) Name() string              { return s.name }
func (s *stubRec) Observe(int, float64)      {}
func (s *stubRec) Recommend(current int) int { return s.target }
func (s *stubRec) Reset()                    {}
func stubFactory(name string, target int) func() (recommend.Recommender, error) {
	return func() (recommend.Recommender, error) { return &stubRec{name: name, target: target}, nil }
}

// flatTrace builds a constant-demand minute trace.
func flatTrace(name string, minutes int, demand float64) *trace.Trace {
	vs := make([]float64, minutes)
	for i := range vs {
		vs[i] = demand
	}
	return trace.New(name, time.Minute, vs)
}

// mixedFleet builds a small heterogeneous fleet over real workload
// generators, one CaaSPER reactive policy per tenant.
func mixedFleet(t *testing.T, n int) []TenantSpec {
	t.Helper()
	gens := []func(seed uint64) *trace.Trace{
		workload.Workday12h, workload.Cyclical3Day, workload.StepTrace62h, workload.CustomerTrace,
	}
	specs := make([]TenantSpec, 0, n)
	for i := 0; i < n; i++ {
		tr := gens[i%len(gens)](uint64(i) + 1)
		peak := tr.Summarize().Max
		maxC := int(peak*1.5) + 2
		specs = append(specs, TenantSpec{
			Name:  fmt.Sprintf("t%02d", i),
			Trace: tr,
			NewRecommender: func() (recommend.Recommender, error) {
				return recommend.NewCaaSPERReactive(core.DefaultConfig(maxC), 40)
			},
			InitialCores: 2,
			MinCores:     2,
			MaxCores:     maxC,
			Replicas:     1,
			MemGiBPerPod: 2,
		})
	}
	return specs
}

func encodeStream(mem *obs.MemorySink) string {
	var b strings.Builder
	var buf []byte
	for _, e := range mem.Events() {
		buf = e.AppendNDJSON(buf[:0])
		b.Write(buf)
	}
	return b.String()
}

// TestDeterminismAcrossWorkerCounts is the fleet's core contract: the
// results AND the event stream are byte-identical at every worker count,
// with chaos enabled to prove fault injection composes.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	spec, err := faults.ParseSpec("restart-fail:p=0.2,metrics-gap:p=0.05,sched-pressure:p=0.5:dur=60:cores=4")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (*Result, string) {
		mem := obs.NewMemorySink()
		opts := DefaultOptions()
		opts.Cluster = k8s.SmallCluster()
		opts.Minutes = 180
		opts.Workers = workers
		opts.Events = mem
		opts.FaultSpec = spec
		opts.FaultSeed = 7
		res, err := Run(mixedFleet(t, 8), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, encodeStream(mem)
	}

	base, baseStream := run(1)
	if base.TotalScalings == 0 {
		t.Fatal("fleet run produced no scalings; test traces too tame")
	}
	for _, w := range []int{2, 4, 8} {
		res, stream := run(w)
		if !reflect.DeepEqual(base, res) {
			t.Errorf("workers=%d: result diverged from workers=1:\n%s\nvs\n%s", w, base.Summary(), res.Summary())
		}
		if stream != baseStream {
			t.Errorf("workers=%d: event stream diverged from workers=1", w)
		}
	}
}

// TestArbitrationSeverityPriority contrives a node oversubscription: two
// tenants on one 8-core node, both asking for +4 cores with only 4 free.
// The more-throttled tenant must win; the other must be deferred and the
// deferral audited.
func TestArbitrationSeverityPriority(t *testing.T) {
	cluster, err := k8s.NewCluster(k8s.NewNode("solo", 8, 64))
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink()
	opts := DefaultOptions()
	opts.Cluster = cluster
	opts.Minutes = 15
	opts.Events = mem
	// hot is throttled harder (demand 10 vs 6 against a 2-core limit), so
	// its accumulated severity is larger. Both want 2→6 (+4) with only
	// 8−2−2 = 4 cores free: exactly one grant fits.
	tenants := []TenantSpec{
		{Name: "mild", Trace: flatTrace("mild", 15, 6), NewRecommender: stubFactory("stub", 6),
			InitialCores: 2, MinCores: 1, MaxCores: 8, Replicas: 1, MemGiBPerPod: 1},
		{Name: "hot", Trace: flatTrace("hot", 15, 10), NewRecommender: stubFactory("stub", 6),
			InitialCores: 2, MinCores: 1, MaxCores: 8, Replicas: 1, MemGiBPerPod: 1},
	}
	res, err := Run(tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	mild, hot := res.Tenants[0], res.Tenants[1]
	if hot.NumScalings != 1 || hot.Deferrals != 0 {
		t.Errorf("hot tenant: got %d scalings / %d deferrals, want 1 / 0", hot.NumScalings, hot.Deferrals)
	}
	if mild.NumScalings != 0 || mild.Deferrals != 1 {
		t.Errorf("mild tenant: got %d scalings / %d deferrals, want 0 / 1", mild.NumScalings, mild.Deferrals)
	}
	if res.ArbitrationTicks != 1 || res.TotalDeferrals != 1 {
		t.Errorf("aggregate: got %d arbitration ticks / %d deferrals, want 1 / 1", res.ArbitrationTicks, res.TotalDeferrals)
	}
	var sawDeferred, sawArbitration bool
	for _, e := range mem.Events() {
		switch e.Type {
		case "fleet.deferred":
			sawDeferred = true
		case "fleet.arbitration":
			sawArbitration = true
		}
	}
	if !sawDeferred || !sawArbitration {
		t.Errorf("missing audit events: deferred=%v arbitration=%v", sawDeferred, sawArbitration)
	}
}

// TestScaleDownsReleaseCapacityFirst: a tenant shrinking in the same tick
// frees the cores another tenant's scale-up needs — downs are enacted
// before the arbiter runs.
func TestScaleDownsReleaseCapacityFirst(t *testing.T) {
	cluster, err := k8s.NewCluster(k8s.NewNode("solo", 8, 64))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Cluster = cluster
	opts.Minutes = 15
	// shrinker 4→2 frees 2 cores; grower 4→6 needs 2 more than the 0
	// free at tick start. The grant must succeed only because the
	// scale-down lands first.
	tenants := []TenantSpec{
		{Name: "grower", Trace: flatTrace("g", 15, 8), NewRecommender: stubFactory("stub", 6),
			InitialCores: 4, MinCores: 1, MaxCores: 8, Replicas: 1, MemGiBPerPod: 1},
		{Name: "shrinker", Trace: flatTrace("s", 15, 1), NewRecommender: stubFactory("stub", 2),
			InitialCores: 4, MinCores: 1, MaxCores: 8, Replicas: 1, MemGiBPerPod: 1},
	}
	res, err := Run(tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	grower := res.Tenants[0]
	if grower.NumScalings != 1 || grower.Deferrals != 0 {
		t.Errorf("grower: got %d scalings / %d deferrals, want 1 / 0 (scale-down should free capacity first)",
			grower.NumScalings, grower.Deferrals)
	}
	if grower.FinalCores != 6 || res.Tenants[1].FinalCores != 2 {
		t.Errorf("final cores: grower=%d shrinker=%d, want 6 / 2", grower.FinalCores, res.Tenants[1].FinalCores)
	}
}

// TestChaosAborts: restart-fail faults abort enactments and are tallied
// per tenant.
func TestChaosAborts(t *testing.T) {
	spec, err := faults.ParseSpec("restart-fail:p=1")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Cluster = k8s.SmallCluster()
	opts.Minutes = 60
	opts.FaultSpec = spec
	opts.FaultSeed = 3
	tenants := []TenantSpec{
		{Name: "only", Trace: flatTrace("o", 60, 6), NewRecommender: stubFactory("stub", 6),
			InitialCores: 2, MinCores: 1, MaxCores: 8, Replicas: 1, MemGiBPerPod: 1},
	}
	res, err := Run(tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	only := res.Tenants[0]
	if only.NumScalings != 0 {
		t.Errorf("got %d scalings with p=1 restart-fail, want 0", only.NumScalings)
	}
	if only.ResizesAborted == 0 || only.FaultCounts.RestartFails == 0 {
		t.Errorf("aborts not tallied: aborted=%d counts=%+v", only.ResizesAborted, only.FaultCounts)
	}
	if only.FinalCores != 2 {
		t.Errorf("final cores %d, want unchanged 2", only.FinalCores)
	}
}

// TestValidationErrors: every rejection is classifiable via errors.Is.
func TestValidationErrors(t *testing.T) {
	good := TenantSpec{
		Name: "a", Trace: flatTrace("a", 10, 1), NewRecommender: stubFactory("stub", 2),
		InitialCores: 1, MinCores: 1, MaxCores: 4, Replicas: 1,
	}
	cases := []struct {
		name    string
		tenants []TenantSpec
		mutate  func(*Options)
		want    error
	}{
		{"no tenants", nil, nil, errs.ErrInvalidConfig},
		{"bad cadence", []TenantSpec{good}, func(o *Options) { o.DecisionEveryMinutes = 0 }, errs.ErrInvalidConfig},
		{"empty trace", []TenantSpec{{Name: "x", NewRecommender: good.NewRecommender,
			InitialCores: 1, MinCores: 1, MaxCores: 4}}, nil, errs.ErrEmptyTrace},
		{"coarse trace", []TenantSpec{{Name: "x", Trace: trace.New("coarse", time.Hour, []float64{1, 2, 3}),
			NewRecommender: good.NewRecommender,
			InitialCores:   1, MinCores: 1, MaxCores: 4}}, nil, errs.ErrInvalidConfig},
		{"duplicate names", []TenantSpec{good, good}, nil, errs.ErrInvalidConfig},
		{"bad bounds", []TenantSpec{{Name: "x", Trace: good.Trace, NewRecommender: good.NewRecommender,
			InitialCores: 0, MinCores: 1, MaxCores: 4}}, nil, errs.ErrInvalidConfig},
	}
	for _, tc := range cases {
		opts := DefaultOptions()
		if tc.mutate != nil {
			tc.mutate(&opts)
		}
		_, err := Run(tc.tenants, opts)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
}
