package k8s

import (
	"fmt"

	"caasper/internal/errs"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/stats"
)

// Scaler is the decision-enacting entity of the autoscaling loop (paper
// Figure 1, steps 5–6): it feeds fresh metric samples to the recommender,
// polls it on a fixed cadence, performs health and resource safety checks,
// and instructs the operator to enact accepted decisions.
//
// Per the paper's adaptation (§3.3, footnote 6), the scaler targets the
// *primary* replica's metrics: secondary replicas of a primary/secondary
// database see an asymmetric workload, so set-wide averaging (what stock
// VPA does for stateless replica sets) would dilute the signal.
//
// The scaler degrades gracefully rather than acting on bad input: when the
// primary's metrics go stale (scrape loss, dead metrics pipeline) or the
// recommender panics, it holds the last enacted limit and audits the held
// tick instead of feeding garbage into a resize.
type Scaler struct {
	// Rec is the pluggable recommender.
	Rec recommend.Recommender
	// Operator enacts resizes.
	Operator *Operator
	// Metrics is the metric source.
	Metrics *MetricsServer
	// DecisionEverySeconds is the recommendation cadence (600 s in the
	// experiments: resizes take minutes, deciding faster is pointless).
	DecisionEverySeconds int64
	// MinCores / MaxCores are the safety clamps ("we implemented logic
	// to prevent autoscaling below 2 cores", §3.3; the max is bounded by
	// node size and co-tenants, §6.2).
	MinCores, MaxCores int
	// StaleAfterSeconds holds decisions when the primary's newest
	// accepted sample is older than this (0 selects the default,
	// 3× the metrics interval; −1 disables the check).
	StaleAfterSeconds int64

	// ScalingsRequested counts accepted resize requests.
	ScalingsRequested int
	// ScalingsRejected counts resize requests the operator refused
	// (update in flight between ticks, abort recovery, …). Rejections
	// are audited with a "k8s.decision-rejected" event rather than
	// silently swallowed.
	ScalingsRejected int
	// DecisionsSuppressed counts decision ticks that landed while a
	// rolling update was in flight. Those ticks never enter
	// DecisionSeries (the §5 t-test compares enactable decisions only),
	// but they are counted — and, with Events enabled, recorded as
	// "k8s.decision-suppressed" — so a mid-update decision is auditable
	// instead of silently absent.
	DecisionsSuppressed int
	// DecisionsHeld counts decision ticks skipped in degraded mode
	// (stale metrics, recommender panic); the current limit stays.
	DecisionsHeld int
	// RecommenderPanics counts recovered recommender panics.
	RecommenderPanics int
	// DecisionSeries records the clamped recommendation at every
	// decision tick (holds included) for §5's simulator-vs-live t-test.
	DecisionSeries []float64

	// Events, when non-nil and enabled, receives "k8s.decision",
	// "k8s.decision-suppressed", "k8s.decision-held" and
	// "k8s.decision-rejected" events keyed on simulated seconds.
	Events obs.Sink
	// Stats, when non-nil, receives decision counters.
	Stats *obs.Registry

	// cursor tracks metric samples already fed to the recommender as a
	// (pod, index) pair: bucket indices are only comparable within one
	// pod's series, so a bare index silently mixes pod histories across
	// a failover.
	cursorPod string
	cursor    int
	// lastFed is the last *measured* sample fed to the recommender;
	// silent buckets (restart gaps, total scrape loss) carry it forward
	// instead of reporting a fake zero.
	lastFed      float64
	nextDecision int64
}

// NewScaler wires the loop together.
func NewScaler(rec recommend.Recommender, op *Operator, ms *MetricsServer, decisionEverySeconds int64, minCores, maxCores int) (*Scaler, error) {
	if rec == nil || op == nil || ms == nil {
		return nil, fmt.Errorf("k8s: scaler needs recommender, operator and metrics: %w", errs.ErrInvalidConfig)
	}
	if decisionEverySeconds < 1 {
		return nil, fmt.Errorf("k8s: decision cadence must be ≥ 1s: %w", errs.ErrInvalidConfig)
	}
	if minCores < 1 || maxCores < minCores {
		return nil, fmt.Errorf("k8s: bad core bounds: %w", errs.ErrInvalidConfig)
	}
	return &Scaler{
		Rec:                  rec,
		Operator:             op,
		Metrics:              ms,
		DecisionEverySeconds: decisionEverySeconds,
		MinCores:             minCores,
		MaxCores:             maxCores,
		nextDecision:         decisionEverySeconds,
	}, nil
}

// staleAfter returns the staleness threshold in seconds (0 = disabled).
func (s *Scaler) staleAfter() int64 {
	switch {
	case s.StaleAfterSeconds < 0:
		return 0
	case s.StaleAfterSeconds > 0:
		return s.StaleAfterSeconds
	default:
		return 3 * s.Metrics.IntervalSeconds
	}
}

// recommend consults the recommender, recovering from panics. ok is false
// when the recommender panicked; the caller holds the current limit.
func (s *Scaler) recommend(now int64, current int) (target int, ok bool) {
	target, ok = current, true
	defer func() {
		if r := recover(); r != nil {
			ok = false
			s.RecommenderPanics++
			s.Stats.Counter("k8s.recommender_panics").Inc()
			if obs.Enabled(s.Events) {
				s.Events.Emit(obs.Event{T: now, Type: "k8s.recommender-panic", Fields: []obs.Field{
					obs.S("panic", fmt.Sprint(r)),
				}})
			}
		}
	}()
	target = s.Rec.Recommend(current)
	return target, ok
}

// feed pushes the primary's newly closed metric samples into the
// recommender. The cursor is a (pod, index) pair: after a failover it
// resumes from the *new* primary's first post-failover bucket instead of
// continuing a stale index into a different pod's history (the old
// behavior mixed the two series, feeding the new primary's ancient
// secondary-role samples as if they were fresh). Bucket indices are
// global (now / interval), so the recommender's timeline stays aligned
// across the switch.
func (s *Scaler) feed(primary *Pod) {
	series := s.Metrics.UsageSeries(primary.Name)
	if primary.Name != s.cursorPod {
		if s.cursorPod != "" {
			// Failover: skip the new primary's pre-failover buckets —
			// they measured its life as a secondary, an asymmetric
			// workload the paper's adaptation deliberately excludes.
			s.cursor = len(series)
		}
		s.cursorPod = primary.Name
	}
	for s.cursor < len(series) {
		v := series[s.cursor]
		if s.Metrics.IsSilent(primary.Name, s.cursor) {
			// Restart gap or total scrape loss: no measurement exists.
			// Carry the last real level forward; a literal zero would
			// drag the recommendation down right after every resize.
			v = s.lastFed
			s.Stats.Counter("k8s.silent_samples").Inc()
		} else {
			s.lastFed = v
		}
		s.Rec.Observe(s.cursor, v)
		s.cursor++
	}
}

// Tick advances the scaler at time now (seconds). It pushes any newly
// closed metric samples of the primary into the recommender and, at the
// decision cadence, asks for and possibly enacts a recommendation.
func (s *Scaler) Tick(now int64) {
	primary := s.Operator.Set.Primary()
	if primary == nil {
		return
	}
	s.feed(primary)

	if now < s.nextDecision {
		return
	}
	s.nextDecision = now + s.DecisionEverySeconds

	current := s.Operator.Set.CPULimit()

	// Health check: never stack decisions on an in-flight update. The
	// suppressed tick is still recorded — the recommender is consulted
	// (Recommenders are pure functions of their observation history, so
	// the extra query does not perturb later decisions) and the would-be
	// target lands in the audit stream, but no resize is issued and the
	// tick stays out of DecisionSeries.
	if s.Operator.Updating() {
		s.DecisionsSuppressed++
		s.Stats.Counter("k8s.decisions_suppressed").Inc()
		if obs.Enabled(s.Events) {
			target, ok := s.recommend(now, current)
			if !ok {
				target = current
			}
			target = stats.ClampInt(target, s.MinCores, s.MaxCores)
			s.Events.Emit(obs.Event{T: now, Type: "k8s.decision-suppressed", Fields: []obs.Field{
				obs.I("current", int64(current)),
				obs.I("target", int64(target)),
				obs.I("updating_to", int64(s.Operator.TargetCores())),
				obs.S("reason", "rolling update in flight"),
			}})
		}
		return
	}

	// Degraded mode: stale metrics mean the recommender would decide on
	// a frozen (or empty) picture. Hold the last enacted limit.
	if stale := s.staleAfter(); stale > 0 {
		if t, ok := s.Metrics.LastSampleAt(primary.Name); !ok || now-t > stale {
			s.DecisionsHeld++
			s.Stats.Counter("k8s.decisions_held").Inc()
			if obs.Enabled(s.Events) {
				age := int64(-1)
				if ok {
					age = now - t
				}
				s.Events.Emit(obs.Event{T: now, Type: "k8s.decision-held", Fields: []obs.Field{
					obs.I("current", int64(current)),
					obs.S("reason", "metrics stale"),
					obs.I("age", age),
				}})
			}
			return
		}
	}

	target, ok := s.recommend(now, current)
	if !ok {
		// Degraded mode: the recommender blew up. Hold the last enacted
		// limit and keep ticking — the next decision gets a fresh try.
		s.DecisionsHeld++
		s.Stats.Counter("k8s.decisions_held").Inc()
		if obs.Enabled(s.Events) {
			s.Events.Emit(obs.Event{T: now, Type: "k8s.decision-held", Fields: []obs.Field{
				obs.I("current", int64(current)),
				obs.S("reason", "recommender panic"),
			}})
		}
		return
	}
	target = stats.ClampInt(target, s.MinCores, s.MaxCores)
	s.DecisionSeries = append(s.DecisionSeries, float64(target))
	s.Stats.Counter("k8s.decisions").Inc()
	if obs.Enabled(s.Events) {
		s.Events.Emit(obs.Event{T: now, Type: "k8s.decision", Fields: []obs.Field{
			obs.I("current", int64(current)),
			obs.I("target", int64(target)),
			obs.B("hold", target == current),
		}})
	}
	if target == current {
		return
	}
	if err := s.Operator.RequestResize(target, now); err != nil {
		// The operator refused (another update raced in, abort recovery
		// in flight, …). Count it and leave an audit trail: a silently
		// swallowed rejection looks identical to a hold in the stream.
		s.ScalingsRejected++
		s.Stats.Counter("k8s.resizes_rejected").Inc()
		if obs.Enabled(s.Events) {
			s.Events.Emit(obs.Event{T: now, Type: "k8s.decision-rejected", Fields: []obs.Field{
				obs.I("current", int64(current)),
				obs.I("target", int64(target)),
				obs.S("reason", err.Error()),
			}})
		}
		return
	}
	s.ScalingsRequested++
	s.Stats.Counter("k8s.resizes_requested").Inc()
}
