package forecast

import (
	"math"
	"strings"
	"testing"

	"caasper/internal/stats"
)

func sinusoid(n, period int, mean, amp float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + amp*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	return out
}

func TestNaiveLastValue(t *testing.T) {
	f := Naive{}
	got, err := f.Forecast([]float64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 3 {
			t.Errorf("naive forecast = %v, want all 3", got)
		}
	}
	if _, err := f.Forecast(nil, 3); err != ErrShortHistory {
		t.Errorf("empty history err = %v", err)
	}
	if got, _ := f.Forecast([]float64{1}, 0); got != nil {
		t.Error("zero horizon should return nil")
	}
}

func TestSeasonalNaiveRepeatsSeason(t *testing.T) {
	f := &SeasonalNaive{Season: 4}
	hist := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	got, err := f.Forecast(hist, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 40, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("forecast[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSeasonalNaiveDegradesWithoutFullSeason(t *testing.T) {
	f := &SeasonalNaive{Season: 100}
	got, err := f.Forecast([]float64{5, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 7 {
			t.Errorf("degraded forecast = %v, want last value 7", got)
		}
	}
}

func TestSeasonalNaivePerfectOnPeriodicSeries(t *testing.T) {
	period := 60
	hist := sinusoid(300, period, 5, 2)
	f := &SeasonalNaive{Season: period}
	pred, err := f.Forecast(hist, period)
	if err != nil {
		t.Fatal(err)
	}
	// A perfectly periodic series is forecast exactly.
	for h := 0; h < period; h++ {
		want := 5 + 2*math.Sin(2*math.Pi*float64(300+h)/float64(period))
		if want < 0 {
			want = 0
		}
		if math.Abs(pred[h]-want) > 1e-9 {
			t.Fatalf("h=%d: pred %v, want %v", h, pred[h], want)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	f := &MovingAverage{Window: 3}
	got, err := f.Forecast([]float64{10, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 2 {
		t.Errorf("MA forecast = %v, want 2", got)
	}
	// Oversized window uses everything.
	wide := &MovingAverage{Window: 100}
	got, _ = wide.Forecast([]float64{2, 4}, 1)
	if got[0] != 3 {
		t.Errorf("wide MA = %v", got[0])
	}
	if _, err := f.Forecast(nil, 1); err != ErrShortHistory {
		t.Error("empty history should error")
	}
}

func TestEMA(t *testing.T) {
	f := &ExponentialMovingAverage{Alpha: 0.5}
	got, err := f.Forecast([]float64{0, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Errorf("EMA = %v, want 5", got[0])
	}
	bad := &ExponentialMovingAverage{Alpha: 0}
	if _, err := bad.Forecast([]float64{1}, 1); err == nil {
		t.Error("alpha 0 should error")
	}
	bad.Alpha = 1.5
	if _, err := bad.Forecast([]float64{1}, 1); err == nil {
		t.Error("alpha > 1 should error")
	}
}

func TestDrift(t *testing.T) {
	f := &Drift{}
	got, err := f.Forecast([]float64{0, 1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 5, 6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("drift[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Downward drift floors at zero.
	got, _ = f.Forecast([]float64{3, 2, 1}, 5)
	if got[4] != 0 {
		t.Errorf("drift should floor at 0, got %v", got[4])
	}
	if _, err := f.Forecast([]float64{1}, 1); err != ErrShortHistory {
		t.Error("short history should error")
	}
}

func TestHoltWintersValidation(t *testing.T) {
	bad := []*HoltWinters{
		{Alpha: 0, Beta: 0.1, Gamma: 0.1, Season: 4},
		{Alpha: 0.1, Beta: 1, Gamma: 0.1, Season: 4},
		{Alpha: 0.1, Beta: 0.1, Gamma: -1, Season: 4},
		{Alpha: 0.1, Beta: 0.1, Gamma: 0.1, Season: 1},
	}
	hist := sinusoid(100, 4, 5, 1)
	for i, f := range bad {
		if _, err := f.Forecast(hist, 4); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	ok := &HoltWinters{Alpha: 0.3, Beta: 0.1, Gamma: 0.2, Season: 50}
	if _, err := ok.Forecast(hist[:60], 4); err != ErrShortHistory {
		t.Errorf("insufficient seasons err = %v", err)
	}
}

func TestHoltWintersTracksSeasonalSeries(t *testing.T) {
	period := 24
	hist := sinusoid(period*8, period, 6, 2)
	f := &HoltWinters{Alpha: 0.3, Beta: 0.05, Gamma: 0.3, Season: period}
	pred, err := f.Forecast(hist, period)
	if err != nil {
		t.Fatal(err)
	}
	mae := 0.0
	for h := 0; h < period; h++ {
		want := 6 + 2*math.Sin(2*math.Pi*float64(len(hist)+h)/float64(period))
		mae += math.Abs(pred[h] - want)
	}
	mae /= float64(period)
	if mae > 0.5 {
		t.Errorf("Holt-Winters MAE = %v on clean seasonal series", mae)
	}
}

func TestHoltWintersWithTrend(t *testing.T) {
	period := 12
	n := period * 6
	hist := make([]float64, n)
	for i := range hist {
		hist[i] = 2 + 0.05*float64(i) + math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	f := &HoltWinters{Alpha: 0.4, Beta: 0.1, Gamma: 0.3, Season: period}
	pred, err := f.Forecast(hist, period)
	if err != nil {
		t.Fatal(err)
	}
	// The forecast must continue climbing with the trend.
	lastLevel := hist[n-1]
	if pred[period-1] < lastLevel {
		t.Errorf("trend not extrapolated: pred end %v < last %v", pred[period-1], lastLevel)
	}
}

func TestARValidationAndConstantSeries(t *testing.T) {
	f := &AR{P: 0}
	if _, err := f.Forecast([]float64{1, 2, 3, 4}, 1); err == nil {
		t.Error("order 0 should error")
	}
	f = &AR{P: 3}
	if _, err := f.Forecast([]float64{1, 2}, 1); err != ErrShortHistory {
		t.Error("short history should error")
	}
	// Constant series: forecast the mean.
	got, err := f.Forecast([]float64{4, 4, 4, 4, 4, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 4 {
			t.Errorf("constant-series forecast = %v", got)
		}
	}
}

func TestARTracksAR1Process(t *testing.T) {
	// x_t = 0.8 x_{t-1} + noise. The fitted AR(1) coefficient should be
	// near 0.8 and multi-step forecasts should decay toward the mean.
	rng := stats.NewRNG(17)
	n := 2000
	x := make([]float64, n)
	for t := 1; t < n; t++ {
		x[t] = 0.8*x[t-1] + rng.NormFloat64()*0.5
	}
	// Shift positive so the non-negativity floor doesn't distort.
	for i := range x {
		x[i] += 10
	}
	phi, ok := yuleWalker(centered(x), 1)
	if !ok {
		t.Fatal("yuleWalker failed")
	}
	if math.Abs(phi[0]-0.8) > 0.1 {
		t.Errorf("AR(1) coefficient = %v, want ≈0.8", phi[0])
	}
	f := &AR{P: 1}
	pred, err := f.Forecast(x, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Long-horizon forecast converges to the mean (≈10).
	if math.Abs(pred[49]-10) > 1.0 {
		t.Errorf("long-horizon AR forecast = %v, want ≈10", pred[49])
	}
}

func centered(x []float64) []float64 {
	m := stats.Mean(x)
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - m
	}
	return out
}

func TestForecastsNonNegative(t *testing.T) {
	hist := []float64{5, 3, 1, 0.2, 0.1}
	forecasters := []Forecaster{
		Naive{},
		&SeasonalNaive{Season: 2},
		&MovingAverage{Window: 3},
		&ExponentialMovingAverage{Alpha: 0.5},
		&Drift{},
		&AR{P: 2},
	}
	for _, f := range forecasters {
		pred, err := f.Forecast(hist, 10)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		for _, v := range pred {
			if v < 0 {
				t.Errorf("%s produced negative forecast %v", f.Name(), v)
			}
		}
	}
}

func TestForecasterNames(t *testing.T) {
	cases := []struct {
		f    Forecaster
		want string
	}{
		{Naive{}, "naive"},
		{&SeasonalNaive{Season: 1440}, "seasonal-naive(1440)"},
		{&MovingAverage{Window: 5}, "moving-average(5)"},
		{&ExponentialMovingAverage{Alpha: 0.25}, "ema(0.25)"},
		{&Drift{Window: 10}, "drift(10)"},
		{&AR{P: 3}, "ar(3)"},
		{&HoltWinters{Alpha: 0.1, Beta: 0.2, Gamma: 0.3, Season: 7}, "holt-winters"},
	}
	for _, c := range cases {
		if got := c.f.Name(); !strings.HasPrefix(got, strings.Split(c.want, "(")[0]) {
			t.Errorf("Name = %q, want prefix of %q", got, c.want)
		}
	}
}

func TestAccuracy(t *testing.T) {
	period := 48
	hist := sinusoid(period*5, period, 5, 2)
	mae, mape, err := Accuracy(&SeasonalNaive{Season: period}, hist, period*4, period)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 1e-9 || mape > 1e-9 {
		t.Errorf("seasonal-naive on periodic series: mae=%v mape=%v, want 0", mae, mape)
	}
	// The plain naive forecaster should do worse on a seasonal series.
	nmae, _, err := Accuracy(Naive{}, hist, period*4, period)
	if err != nil {
		t.Fatal(err)
	}
	if nmae <= mae {
		t.Errorf("naive MAE %v should exceed seasonal MAE %v", nmae, mae)
	}
	if _, _, err := Accuracy(Naive{}, hist, 0, 10); err == nil {
		t.Error("split 0 should error")
	}
	if _, _, err := Accuracy(Naive{}, hist, len(hist), 10); err == nil {
		t.Error("split at end should error")
	}
}

func TestAccuracyHorizonClamp(t *testing.T) {
	hist := []float64{1, 2, 3, 4, 5}
	mae, _, err := Accuracy(Naive{}, hist, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Forecast value is 3; actuals are {4, 5} -> MAE 1.5.
	if math.Abs(mae-1.5) > 1e-9 {
		t.Errorf("clamped-horizon MAE = %v, want 1.5", mae)
	}
}

// ---------------------------------------------------------------------------
// HistoryBound contract

// TestHistoryNeedContract: for every bounded forecaster, forecasting from
// the last HistoryNeed samples must be bit-identical to forecasting from
// the full series — that equivalence is what lets ring-backed adapters
// cap their retained history.
func TestHistoryNeedContract(t *testing.T) {
	rng := stats.NewRNG(31)
	series := make([]float64, 700)
	for i := range series {
		series[i] = 2 + math.Sin(float64(i)*2*math.Pi/48) + rng.NormFloat64()*0.1
	}
	bounded := []Forecaster{
		&SeasonalNaive{Season: 48},
		&SeasonalNaive{Season: 0},
		Naive{},
		&MovingAverage{Window: 30},
		&Drift{Window: 25},
		&Ensemble{Members: []Forecaster{&SeasonalNaive{Season: 48}, &MovingAverage{Window: 30}}},
	}
	for _, f := range bounded {
		need := HistoryNeed(f)
		if need <= 0 {
			t.Fatalf("%s: HistoryNeed = %d, want bounded > 0", f.Name(), need)
		}
		full, err := f.Forecast(series, 60)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		tail, err := f.Forecast(series[len(series)-need:], 60)
		if err != nil {
			t.Fatalf("%s tail: %v", f.Name(), err)
		}
		for i := range full {
			if full[i] != tail[i] {
				t.Fatalf("%s: tail forecast diverges at %d: %v != %v", f.Name(), i, tail[i], full[i])
			}
		}
	}

	unbounded := []Forecaster{
		&ExponentialMovingAverage{Alpha: 0.3},
		&MovingAverage{Window: 0},
		&Drift{Window: 0},
		&HoltWinters{Alpha: 0.3, Beta: 0.1, Gamma: 0.1, Season: 48},
		&AR{P: 4},
		&AutoSeasonalNaive{MinLag: 2, MaxLag: 96},
		&Ensemble{Members: []Forecaster{Naive{}, &ExponentialMovingAverage{Alpha: 0.3}}},
	}
	for _, f := range unbounded {
		if need := HistoryNeed(f); need >= 0 {
			t.Errorf("%s: HistoryNeed = %d, want unbounded (<0)", f.Name(), need)
		}
	}
	if HistoryNeed(nil) != 0 {
		t.Error("nil forecaster should need no history")
	}
}

// TestIntervalHistoryNeedCoversResiduals: the interval forecaster's bound
// must cover the two seasons residualSD reads, so the prefilter verdict
// is identical under bounded history.
func TestIntervalHistoryNeedCoversResiduals(t *testing.T) {
	rng := stats.NewRNG(33)
	series := make([]float64, 500)
	for i := range series {
		series[i] = 3 + math.Sin(float64(i)*2*math.Pi/40) + rng.NormFloat64()*0.2
	}
	f := NewIntervalSeasonalNaive(40)
	need := f.HistoryNeed()
	if need != 80 {
		t.Fatalf("HistoryNeed = %d, want 80 (2 seasons)", need)
	}
	p1, l1, h1, err := f.ForecastInterval(series, 50)
	if err != nil {
		t.Fatal(err)
	}
	p2, l2, h2, err := f.ForecastInterval(series[len(series)-need:], 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] || l1[i] != l2[i] || h1[i] != h2[i] {
			t.Fatalf("interval diverges at %d", i)
		}
	}
}
