package recommend

import (
	"fmt"

	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/stats"
	win "caasper/internal/window"
)

// Vector upgrades a CPU Recommender to the full resource vector: CPU
// keeps the wrapped policy (Algorithm 1 or a baseline), RAM follows the
// dual-threshold MemoryPolicy over its own bounded ring window, disk is
// grow-only off a high-water mark, and — for stateless tiers — replicas
// overflow horizontally once the vertical CPU ceiling is pinned
// (vertical-first, the hybrid mode of the paper's §7 discussion).
//
// Vector still satisfies Recommender (Observe/Recommend see only the CPU
// dimension) so it drops into any seed call site; the vector surface is
// ObserveVector/RecommendVector.
type Vector struct {
	cpu  Recommender
	lim  core.Limits
	mem  MemoryPolicy
	disk DiskPolicy

	ram      *win.Ring // RAM usage window, GB
	diskHigh float64   // high-water disk usage, GB

	// HorizontalHeadroom is the spare fraction of the (replicas−1)
	// configuration that must cover peak total CPU demand before a
	// replica is removed (default 0.25).
	HorizontalHeadroom float64
	totalCPUPeak       float64 // peak replicas×usage since last decision

	last core.Decision
}

// NewVector wraps cpu with multi-resource policies. windowMinutes sizes
// the per-dimension observation rings (must be ≥ 1). Zero-valued
// policies take their defaults; lim must manage at least one non-CPU
// dimension.
func NewVector(cpu Recommender, lim core.Limits, mem MemoryPolicy, disk DiskPolicy, windowMinutes int) (*Vector, error) {
	if cpu == nil {
		return nil, fmt.Errorf("%w: vector recommender needs a CPU policy", errs.ErrInvalidConfig)
	}
	if windowMinutes < 1 {
		return nil, fmt.Errorf("%w: vector window must be ≥ 1 minute", errs.ErrInvalidConfig)
	}
	if !lim.Multi() {
		return nil, fmt.Errorf("%w: vector recommender needs at least one managed non-CPU dimension", errs.ErrInvalidConfig)
	}
	return &Vector{
		cpu:                cpu,
		lim:                lim,
		mem:                mem.withDefaults(),
		disk:               disk.withDefaults(),
		ram:                win.New(windowMinutes),
		HorizontalHeadroom: 0.25,
	}, nil
}

// Name identifies the composite policy.
func (v *Vector) Name() string { return v.cpu.Name() + "+vector" }

// Observe forwards the CPU sample (Recommender compatibility).
func (v *Vector) Observe(minute int, usageCores float64) { v.cpu.Observe(minute, usageCores) }

// ObserveVector records one metric interval across dimensions: per-pod
// CPU cores, per-pod resident RAM GB, per-pod disk GB, and the number of
// serving replicas (≤ 1 means single-pod vertical scaling).
func (v *Vector) ObserveVector(minute int, cpuCores, ramGB, diskGB float64, replicas int) {
	v.cpu.Observe(minute, cpuCores)
	v.ram.Push(ramGB)
	if diskGB > v.diskHigh {
		v.diskHigh = diskGB
	}
	reps := replicas
	if reps < 1 {
		reps = 1
	}
	if total := cpuCores * float64(reps); total > v.totalCPUPeak {
		v.totalCPUPeak = total
	}
}

// Recommend forwards to the CPU policy (Recommender compatibility).
func (v *Vector) Recommend(currentCores int) int { return v.cpu.Recommend(currentCores) }

// RecommendVector evaluates every managed dimension against the current
// allocation vector and returns a Decision whose Current/Target carry
// the full vectors. The CPU scalar fields mirror the CPU dimension so
// seed consumers of Decision keep working.
func (v *Vector) RecommendVector(cur core.Resources) core.Decision {
	d := core.Decision{Current: cur, CurrentCores: cur.CPUCores}
	target := cur

	// CPU: the wrapped policy, clamped to the managed range.
	target.CPUCores = v.cpu.Recommend(cur.CPUCores)
	if v.lim.Max.CPUCores > 0 {
		target.CPUCores = clampDim(target.CPUCores, v.lim.Min.CPUCores, v.lim.Max.CPUCores)
	}

	// RAM: dual-threshold policy over the ring window's peak.
	if v.lim.Max.RAMGB > 0 {
		peak := 0.0
		if view := v.ram.View(); len(view) > 0 {
			peak = stats.Max(view)
		}
		target.RAMGB = v.mem.Target(cur.RAMGB, peak, v.lim.Min.RAMGB, v.lim.Max.RAMGB)
	}

	// Disk: grow-only from the high-water mark.
	if v.lim.Max.DiskGB > 0 {
		target.DiskGB = v.disk.Target(cur.DiskGB, v.diskHigh, v.lim.Max.DiskGB)
	}

	// Replicas: vertical-first horizontal overflow. Only when the CPU
	// target is pinned at the per-pod ceiling does a replica get added;
	// a replica is removed only when the remaining set could absorb the
	// observed peak with headroom to spare AND the vertical dimension
	// has room again.
	if v.lim.Max.Replicas > 0 {
		reps := cur.Replicas
		if reps < 1 {
			reps = 1
		}
		maxPod := v.lim.Max.CPUCores
		if maxPod == 0 {
			maxPod = target.CPUCores
		}
		switch {
		case target.CPUCores >= maxPod && v.lim.Max.CPUCores > 0 &&
			v.totalCPUPeak > float64(maxPod*reps)*(1-v.HorizontalHeadroom) &&
			reps < v.lim.Max.Replicas:
			reps++
		case reps > v.lim.Min.Replicas && target.CPUCores < maxPod &&
			v.totalCPUPeak <= float64(maxPod*(reps-1))*(1-v.HorizontalHeadroom):
			reps--
		}
		target.Replicas = reps
	}

	v.totalCPUPeak = 0 // per-decision peak, like the window advancing

	d.Target = target
	d.TargetCores = target.CPUCores
	d.Delta = target.CPUCores - cur.CPUCores
	v.last = d
	return d
}

// LastDecision returns the most recent vector decision.
func (v *Vector) LastDecision() core.Decision { return v.last }

// Reset clears every dimension's accumulated state.
func (v *Vector) Reset() {
	v.cpu.Reset()
	v.ram.Reset()
	v.diskHigh = 0
	v.totalCPUPeak = 0
	v.last = core.Decision{}
}

func clampDim(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if hi > 0 && v > hi {
		return hi
	}
	return v
}
