GO ?= go

.PHONY: build test race bench bench-all check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# Full verification gate: vet + build + race tests + benchmark smoke.
check:
	sh scripts/check.sh
