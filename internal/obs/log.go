package obs

import (
	"fmt"
	"io"
	"sync"
)

// Log levels. Errors always print; Info prints at verbosity ≥ 1; Debug at
// verbosity ≥ 2. The zero verbosity is the CLIs' quiet default.
const (
	LevelQuiet = 0
	LevelInfo  = 1
	LevelDebug = 2
)

// Logger is a minimal verbosity-leveled line logger. It exists so the
// CLIs share one leveling convention without pulling a logging framework
// into a stdlib-only repository. The nil receiver is valid and silent.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level int
}

// NewLogger writes lines at or below the given verbosity to w.
func NewLogger(w io.Writer, level int) *Logger {
	return &Logger{w: w, level: level}
}

// Level returns the configured verbosity (LevelQuiet for nil).
func (l *Logger) Level() int {
	if l == nil {
		return LevelQuiet
	}
	return l.level
}

func (l *Logger) printf(min int, format string, args ...any) {
	if l == nil || l.level < min {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, format, args...)
	fmt.Fprintln(l.w)
}

// Infof logs a progress line (verbosity ≥ 1).
func (l *Logger) Infof(format string, args ...any) { l.printf(LevelInfo, format, args...) }

// Debugf logs a detail line (verbosity ≥ 2).
func (l *Logger) Debugf(format string, args ...any) { l.printf(LevelDebug, format, args...) }

// Errorf logs unconditionally (nil receivers excepted).
func (l *Logger) Errorf(format string, args ...any) {
	if l == nil {
		return
	}
	l.printf(l.level, format, args...)
}
