#!/bin/sh
# Public-API drift gate: dump the exported symbols of the root caasper
# package (scripts/apidump) and diff them against the checked-in
# snapshot. A removed re-export or renamed constructor fails here as a
# byte diff instead of surprising downstream callers.
#
# Additions are allowlisted through the deprecation marker: a new symbol
# whose doc carries "Deprecated:" (a compatibility alias kept for old
# callers) passes without a snapshot update; any other addition — and
# every removal — requires an intentional UPDATE=1 regeneration.
#
#   sh scripts/apicheck.sh            # verify against testdata/api.txt
#   UPDATE=1 sh scripts/apicheck.sh   # regenerate after an intentional change
set -eu

cd "$(dirname "$0")/.."

OUT=$(mktemp)
REMOVED=$(mktemp)
ADDED=$(mktemp)
DEP=$(mktemp)
trap 'rm -f "$OUT" "$REMOVED" "$ADDED" "$DEP"' EXIT

go run ./scripts/apidump | LC_ALL=C sort > "$OUT"

GOLD=testdata/api.txt
if [ "${UPDATE:-0}" = "1" ]; then
    cp "$OUT" "$GOLD"
    wc -l "$GOLD"
    echo "==> API snapshot regenerated in $GOLD"
    exit 0
fi

if cmp -s "$GOLD" "$OUT"; then
    echo "==> OK: exported API matches $GOLD ($(wc -l < "$GOLD") symbols)"
    exit 0
fi

LC_ALL=C comm -23 "$GOLD" "$OUT" > "$REMOVED"
LC_ALL=C comm -13 "$GOLD" "$OUT" > "$ADDED"

if [ -s "$REMOVED" ]; then
    echo "==> FAIL: exported symbols removed from the public API:" >&2
    sed 's/^/    - /' "$REMOVED" >&2
    echo "    (removals always fail; regenerate with UPDATE=1 only for an intentional break)" >&2
    exit 1
fi

# Every addition must be a deprecated compatibility alias to pass the
# gate without a snapshot update.
go run ./scripts/apidump -deprecated | LC_ALL=C sort > "$DEP"
BAD=0
while IFS= read -r sym; do
    if ! grep -Fqx "$sym" "$DEP"; then
        [ "$BAD" = 0 ] && echo "==> FAIL: new exported symbols are not Deprecated: aliases:" >&2
        echo "    + $sym" >&2
        BAD=1
    fi
done < "$ADDED"
if [ "$BAD" = 1 ]; then
    echo "    (run UPDATE=1 sh scripts/apicheck.sh to bless an intentional API addition)" >&2
    exit 1
fi

echo "==> OK: exported API matches $GOLD plus $(wc -l < "$ADDED" | tr -d ' ') deprecated alias(es)"
