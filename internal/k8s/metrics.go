package k8s

import (
	"sort"

	"caasper/internal/faults"
)

// MetricsServer aggregates per-pod CPU usage into fixed-interval samples
// (paper Figure 1, step 2). The live system samples at one-minute
// intervals; the server accumulates second-level usage and closes a
// bucket every IntervalSeconds.
//
// A bucket that saw no samples at all — the pod was restarting, or every
// scrape in the interval was lost — closes as a *silent* zero rather than
// a measured one. Consumers that would misread silence as idleness (the
// scaler feeding the recommender) must check IsSilent: observing 0.0 for
// a restart gap drags recommendations down right after every resize,
// the opposite of the paper's capped-usage correction.
type MetricsServer struct {
	// IntervalSeconds is the sample width (60 for one-minute samples).
	IntervalSeconds int64

	// Faults, when non-nil, drops samples before they are recorded
	// (metrics-gap injection). Nil is the fault-free fast path.
	Faults *faults.Injector

	series map[string][]float64 // pod → closed per-interval mean cores
	silent map[string][]bool    // pod → bucket closed with no samples
	acc    map[string]float64   // pod → cpu-seconds in the open bucket
	opened map[string]int64     // pod → open bucket index
	last   map[string]int64     // pod → time of the last accepted sample
}

// NewMetricsServer builds a server with the given sample interval.
func NewMetricsServer(intervalSeconds int64) *MetricsServer {
	if intervalSeconds < 1 {
		intervalSeconds = 60
	}
	return &MetricsServer{
		IntervalSeconds: intervalSeconds,
		series:          make(map[string][]float64),
		silent:          make(map[string][]bool),
		acc:             make(map[string]float64),
		opened:          make(map[string]int64),
		last:            make(map[string]int64),
	}
}

// RecordUsage registers that the pod consumed usedCores during the
// one-second tick at time now. Buckets close automatically; a pod that
// records nothing in a bucket (e.g. while restarting) reports a silent
// zero for it (see IsSilent).
func (m *MetricsServer) RecordUsage(pod string, now int64, usedCores float64) {
	if m.Faults.DropSample(pod, now) {
		return
	}
	bucket := now / m.IntervalSeconds
	if open, ok := m.opened[pod]; ok && bucket != open {
		m.closeThrough(pod, bucket)
	}
	if _, ok := m.opened[pod]; !ok {
		// First sample for this pod: backfill zeros for skipped buckets.
		m.closeThrough(pod, bucket)
	}
	m.opened[pod] = bucket
	m.acc[pod] += usedCores
	m.last[pod] = now
}

// closeThrough closes buckets for pod up to (but excluding) bucket.
func (m *MetricsServer) closeThrough(pod string, bucket int64) {
	open, ok := m.opened[pod]
	if !ok {
		// Never recorded: create empty (silent) history up to the
		// target bucket.
		for int64(len(m.series[pod])) < bucket {
			m.series[pod] = append(m.series[pod], 0)
			m.silent[pod] = append(m.silent[pod], true)
		}
		return
	}
	// Close the open bucket: it held at least one real sample.
	m.series[pod] = append(m.series[pod], m.acc[pod]/float64(m.IntervalSeconds))
	m.silent[pod] = append(m.silent[pod], false)
	m.acc[pod] = 0
	// Zero-fill wholly silent buckets in between, marked as such.
	for b := open + 1; b < bucket; b++ {
		m.series[pod] = append(m.series[pod], 0)
		m.silent[pod] = append(m.silent[pod], true)
	}
	delete(m.opened, pod)
}

// UsageSeries returns the closed per-interval mean-cores series for the
// pod. The returned slice is shared; callers must not mutate it.
func (m *MetricsServer) UsageSeries(pod string) []float64 {
	return m.series[pod]
}

// IsSilent reports whether the pod's closed bucket i contains no
// recorded samples — a restart gap or total scrape loss, not measured
// idleness. Out-of-range indices report false.
func (m *MetricsServer) IsSilent(pod string, i int) bool {
	s := m.silent[pod]
	return i >= 0 && i < len(s) && s[i]
}

// LastSampleAt returns the time of the pod's most recent accepted sample
// and whether any sample was ever accepted — the scaler's staleness
// signal. Synthesized silent buckets do not count as samples.
func (m *MetricsServer) LastSampleAt(pod string) (int64, bool) {
	t, ok := m.last[pod]
	return t, ok
}

// Pods returns the pods with any recorded samples, sorted by name.
func (m *MetricsServer) Pods() []string {
	out := make([]string, 0, len(m.series))
	for name := range m.series {
		out = append(out, name)
	}
	for name := range m.opened {
		if _, ok := m.series[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
