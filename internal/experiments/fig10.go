package experiments

import (
	"fmt"
	"strings"
	"time"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/dbsim"
	"caasper/internal/forecast"
	"caasper/internal/k8s"
	"caasper/internal/recommend"
	"caasper/internal/workload"
)

// workloadWorkday builds the Figure 9 live schedule.
func workloadWorkday(seed uint64) *workload.LoadSchedule {
	return workload.WorkdaySchedule(seed)
}

// workloadCyclical builds the Figure 10 live schedule: the 3-day cyclical
// demand trace converted to a mixed-OLTP transaction schedule on
// Database B.
func workloadCyclical(seed uint64) (*workload.LoadSchedule, error) {
	tr := workload.Cyclical3Day(seed)
	return workload.ScheduleForCores("cyclical-live", workload.MixedOLTP(),
		workload.TracePattern(tr), 72*time.Hour)
}

// Figure10Result holds the §6.2 cyclical evaluation on Database B
// (Figure 10) and the cyclical columns of Table 1: control vs reactive-
// only vs reactive+proactive CaaSPER.
type Figure10Result struct {
	Control, Reactive, Proactive *dbsim.LiveResult
	// ReactiveCostRatio / ProactiveCostRatio vs control (paper: 0.57y /
	// 0.56y).
	ReactiveCostRatio, ProactiveCostRatio float64
	// ReactiveSlackReduction / ProactiveSlackReduction vs control
	// (paper: 66.5% / 68.2%).
	ReactiveSlackReduction, ProactiveSlackReduction float64
	Report                                          string
}

// Figure10Table1 reproduces Figure 10 and the cyclical columns of
// Table 1: a 3-day cyclical workload on a 2-replica Database B, control
// fixed at 14 cores, compared against reactive-only CaaSPER and CaaSPER
// with the seasonal-naive forecaster (one-day season, one-hour
// scale-ahead window as in the paper's display configuration).
func Figure10Table1(seed uint64) (*Figure10Result, error) {
	sched, err := workloadCyclical(seed)
	if err != nil {
		return nil, err
	}

	const controlCores = 14
	// 14-core pods need the paper's large cluster (16-CPU nodes). Every
	// run gets a fresh cluster: capacity accounting is per-instance.
	mkOpts := func() dbsim.HarnessOptions {
		o := dbsim.DatabaseBOptions(controlCores, controlCores)
		o.Cluster = k8s.LargeCluster()
		return o
	}
	control, err := dbsim.RunLive(sched, baselines.NewControl(controlCores), mkOpts())
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}

	cfg := core.DefaultConfig(controlCores)
	reactiveRec, err := recommend.NewCaaSPERReactive(cfg, 40)
	if err != nil {
		return nil, err
	}
	reactive, err := dbsim.RunLive(sched, reactiveRec, mkOpts())
	if err != nil {
		return nil, fmt.Errorf("reactive: %w", err)
	}

	const season = 24 * 60 // one-day seasonality in minute samples
	proRec, err := recommend.NewCaaSPERProactive(cfg,
		&forecast.SeasonalNaive{Season: season}, 40, 60, season)
	if err != nil {
		return nil, err
	}
	proactive, err := dbsim.RunLive(sched, proRec, mkOpts())
	if err != nil {
		return nil, fmt.Errorf("proactive: %w", err)
	}

	res := &Figure10Result{
		Control:                 control,
		Reactive:                reactive,
		Proactive:               proactive,
		ReactiveCostRatio:       reactive.CostRatioVs(control),
		ProactiveCostRatio:      proactive.CostRatioVs(control),
		ReactiveSlackReduction:  reactive.SlackReductionVs(control),
		ProactiveSlackReduction: proactive.SlackReductionVs(control),
	}

	tb := NewTable("Figure 10 / Table 1 (cyclical, 3 days on Database B)",
		"run", "completed txns", "avg lat ms", "med lat ms", "resizes", "slack vs ctrl", "price")
	tb.AddRow("control (no resize)", control.DB.CompletedTxns, control.DB.AvgLatencyMS,
		control.DB.MedLatencyMS, control.NumScalings, "-", "1.00x")
	tb.AddRow("caasper (reactive only)", reactive.DB.CompletedTxns, reactive.DB.AvgLatencyMS,
		reactive.DB.MedLatencyMS, reactive.NumScalings,
		"-"+pct(res.ReactiveSlackReduction), ratio(res.ReactiveCostRatio))
	tb.AddRow("caasper (+proactive)", proactive.DB.CompletedTxns, proactive.DB.AvgLatencyMS,
		proactive.DB.MedLatencyMS, proactive.NumScalings,
		"-"+pct(res.ProactiveSlackReduction), ratio(res.ProactiveCostRatio))
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper: slack -66.5%% (reactive) / -68.2%% (proactive); price 0.57y / 0.56y; latency within noise\n")
	res.Report = b.String()
	return res, nil
}
