package stats

import (
	"errors"
	"fmt"
	"math"
)

// DecayingHistogram is an exponentially decaying histogram of CPU samples,
// modelled after the primitive inside the Kubernetes Vertical Pod Autoscaler
// recommender (paper §3.3): bucket boundaries grow geometrically so that
// relative resolution is constant across the core range, each added sample
// carries a weight that doubles every half-life, and percentile queries
// return the upper bound of the bucket containing the requested cumulative
// weight.
//
// The VPA baseline in internal/baselines feeds one-minute CPU usage samples
// into this histogram and reads its 90th percentile.
type DecayingHistogram struct {
	bounds    []float64 // ascending bucket upper bounds; last is +Inf
	weights   []float64
	total     float64
	halfLife  float64 // in the caller's time unit (minutes in this repo)
	refTime   float64 // reference time for weight normalisation
	firstBase float64
	growth    float64
}

// DecayingHistogramOptions configures a DecayingHistogram.
type DecayingHistogramOptions struct {
	// FirstBucket is the upper bound of the first bucket, in cores.
	// The real VPA uses 0.01 cores.
	FirstBucket float64
	// Growth is the geometric growth ratio between consecutive bucket
	// widths. The real VPA uses 1.05.
	Growth float64
	// MaxValue is the largest representable sample; samples above it fall
	// into the final catch-all bucket.
	MaxValue float64
	// HalfLife is the exponential decay half-life, in the same time unit
	// as the timestamps passed to Add (minutes in this repo). The real
	// VPA uses 24 hours.
	HalfLife float64
}

// NewDecayingHistogram builds a histogram with geometrically growing
// buckets covering (0, MaxValue] plus a final overflow bucket.
func NewDecayingHistogram(opts DecayingHistogramOptions) (*DecayingHistogram, error) {
	if opts.FirstBucket <= 0 {
		return nil, errors.New("stats: FirstBucket must be positive")
	}
	if opts.Growth <= 1 {
		return nil, errors.New("stats: Growth must exceed 1")
	}
	if opts.MaxValue <= opts.FirstBucket {
		return nil, errors.New("stats: MaxValue must exceed FirstBucket")
	}
	if opts.HalfLife <= 0 {
		return nil, errors.New("stats: HalfLife must be positive")
	}
	var bounds []float64
	b := opts.FirstBucket
	for b < opts.MaxValue {
		bounds = append(bounds, b)
		b *= opts.Growth
	}
	bounds = append(bounds, opts.MaxValue)
	bounds = append(bounds, math.Inf(1))
	return &DecayingHistogram{
		bounds:    bounds,
		weights:   make([]float64, len(bounds)),
		halfLife:  opts.HalfLife,
		firstBase: opts.FirstBucket,
		growth:    opts.Growth,
	}, nil
}

// bucketFor returns the index of the bucket whose range contains v.
func (h *DecayingHistogram) bucketFor(v float64) int {
	// Binary search over the ascending bounds.
	lo, hi := 0, len(h.bounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Add records sample value v observed at time t (same unit as HalfLife)
// with the given base weight. Weights are normalised so that a sample at
// time t carries 2^(t/halfLife) relative weight; this is numerically
// re-based when the exponent grows large.
func (h *DecayingHistogram) Add(v, weight, t float64) {
	if weight <= 0 || v < 0 || math.IsNaN(v) {
		return
	}
	w := weight * math.Exp2((t-h.refTime)/h.halfLife)
	if w > 1e12 {
		// Re-base all weights to keep the arithmetic in a sane range.
		scale := math.Exp2((h.refTime - t) / h.halfLife)
		for i := range h.weights {
			h.weights[i] *= scale
		}
		h.total *= scale
		h.refTime = t
		w = weight
	}
	h.weights[h.bucketFor(v)] += w
	h.total += w
}

// Percentile returns the value at cumulative weight fraction q ∈ [0, 1]:
// the upper bound of the first bucket at which the running weight reaches
// q·total. An empty histogram returns 0.
func (h *DecayingHistogram) Percentile(q float64) float64 {
	if h.total <= 0 {
		return 0
	}
	q = Clamp(q, 0, 1)
	target := q * h.total
	var cum float64
	for i, w := range h.weights {
		cum += w
		if cum >= target && w > 0 {
			if math.IsInf(h.bounds[i], 1) {
				// Overflow bucket: report the last finite bound.
				return h.bounds[i-1]
			}
			return h.bounds[i]
		}
	}
	// Numerical slack: return the largest non-empty bucket bound.
	for i := len(h.weights) - 1; i >= 0; i-- {
		if h.weights[i] > 0 {
			if math.IsInf(h.bounds[i], 1) && i > 0 {
				return h.bounds[i-1]
			}
			return h.bounds[i]
		}
	}
	return 0
}

// Empty reports whether the histogram holds no weight.
func (h *DecayingHistogram) Empty() bool { return h.total <= 0 }

// TotalWeight returns the current (decayed, re-based) total weight.
func (h *DecayingHistogram) TotalWeight() float64 { return h.total }

// String summarises the histogram for debugging.
func (h *DecayingHistogram) String() string {
	return fmt.Sprintf("DecayingHistogram{buckets=%d total=%.3f p50=%.3f p90=%.3f}",
		len(h.bounds), h.total, h.Percentile(0.5), h.Percentile(0.9))
}
