// Package core implements the CaaSPER autoscaling decision algorithm
// (paper §4, Algorithm 1): the reactive PvP-curve-driven decision rule and
// the proactive forecast-extended variant (Eq. 4, Figure 8).
//
// The package is deliberately free of any Kubernetes or simulator types:
// its input is the current core count plus a CPU usage window, its output
// a Decision with the core delta and a human-readable explanation (the
// paper's interpretability requirement R6). internal/sim replays traces
// through it; internal/k8s runs it inside the control loop.
package core

import (
	"fmt"

	"caasper/internal/errs"
	"caasper/internal/pvp"
)

// Config carries every "Require:" input of Algorithm 1 plus the rounding
// and buffering choices §4.2 discusses. The zero value is not usable; use
// DefaultConfig as a starting point.
type Config struct {
	// SKUs is the candidate core ladder (system inputs R of Algorithm 1:
	// resource limit, price per core, per-core granularity).
	SKUs pvp.SKURange

	// SlopeHigh is s_h: slopes at or above it trigger scale-up.
	SlopeHigh float64
	// SlopeLow is s_l: slopes at or below it make scale-down admissible.
	SlopeLow float64

	// SlackHigh is m_h: the high-slack threshold as a fraction of
	// capacity. If the usage quantile reaches (1−m_h)·cores, the buffer
	// is too thin and the algorithm scales up even with a modest slope.
	SlackHigh float64
	// SlackLow is m_l: if the usage quantile falls to m_l·cores or
	// below, most capacity is idle and scale-down is admissible.
	SlackLow float64

	// MaxStepUp is SF_h, the maximum single-step scale-up in cores.
	MaxStepUp int
	// MaxStepDown is SF_l, the maximum single-step scale-down in cores.
	// The flat-tail walk-down (Figure 7b) is exempt: a severely
	// over-provisioned pod may step down further in one decision.
	MaxStepDown int

	// MinCores is c_min, the operational floor (Database A mandates 2).
	MinCores int

	// QuantileP is the usage quantile compared against the slack
	// thresholds (the Quantile({X_t}) of Algorithm 1). Default 0.95.
	QuantileP float64

	// SF configures the Eq. 3 scaling-factor function.
	SF pvp.ScalingFactorParams

	// WalkDownPerfTarget is the performance level (1−P(throttling)) the
	// walk-down must preserve; 1.0 means every observed sample stays
	// under the new capacity (the paper's "meet the workload
	// requirements at 100% utilization").
	WalkDownPerfTarget float64

	// RoundUp, when true, rounds fractional scaling factors up instead
	// of down. The paper rounds down ("the result is rounded down
	// (configurable)").
	RoundUp bool
}

// DefaultConfig returns the paper-flavoured defaults used across the
// experiments: 2-core floor, P95 slack tests, a 10%-of-capacity head-room
// buffer, 30%-idle scale-down trigger, and 8-core/2-core max steps.
func DefaultConfig(maxCores int) Config {
	return Config{
		SKUs:               pvp.SKURange{MinCores: 1, MaxCores: maxCores, PricePerCore: 1},
		SlopeHigh:          2.0,
		SlopeLow:           0.2,
		SlackHigh:          0.10,
		SlackLow:           0.30,
		MaxStepUp:          8,
		MaxStepDown:        2,
		MinCores:           2,
		QuantileP:          0.95,
		SF:                 pvp.ScalingFactorParams{CMin: 2, SkewWeight: 4},
		WalkDownPerfTarget: 1.0,
	}
}

// Validate checks configuration invariants. Every failure wraps
// errs.ErrInvalidConfig, so callers can branch with errors.Is.
func (c Config) Validate() error {
	if err := c.SKUs.Validate(); err != nil {
		return err
	}
	if c.MinCores < 1 {
		return fmt.Errorf("core: MinCores must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	if c.MinCores > c.SKUs.MaxCores {
		return fmt.Errorf("core: MinCores %d exceeds MaxCores %d: %w", c.MinCores, c.SKUs.MaxCores, errs.ErrInvalidConfig)
	}
	if c.SlopeHigh < c.SlopeLow {
		return fmt.Errorf("core: SlopeHigh %v below SlopeLow %v: %w", c.SlopeHigh, c.SlopeLow, errs.ErrInvalidConfig)
	}
	if c.SlackHigh < 0 || c.SlackHigh >= 1 {
		return fmt.Errorf("core: SlackHigh %v out of [0,1): %w", c.SlackHigh, errs.ErrInvalidConfig)
	}
	if c.SlackLow < 0 || c.SlackLow >= 1 {
		return fmt.Errorf("core: SlackLow %v out of [0,1): %w", c.SlackLow, errs.ErrInvalidConfig)
	}
	if c.MaxStepUp < 1 {
		return fmt.Errorf("core: MaxStepUp must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	if c.MaxStepDown < 1 {
		return fmt.Errorf("core: MaxStepDown must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	if c.QuantileP <= 0 || c.QuantileP > 1 {
		return fmt.Errorf("core: QuantileP %v out of (0,1]: %w", c.QuantileP, errs.ErrInvalidConfig)
	}
	if c.WalkDownPerfTarget <= 0 || c.WalkDownPerfTarget > 1 {
		return fmt.Errorf("core: WalkDownPerfTarget %v out of (0,1]: %w", c.WalkDownPerfTarget, errs.ErrInvalidConfig)
	}
	return nil
}

// floor returns the effective lower bound for targets: the larger of the
// operational floor and the SKU ladder's bottom.
func (c Config) floor() int {
	if c.MinCores > c.SKUs.MinCores {
		return c.MinCores
	}
	return c.SKUs.MinCores
}
