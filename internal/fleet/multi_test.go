package fleet

import (
	"errors"
	"strings"
	"testing"
	"time"

	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/hooks"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/trace"
)

// multiSpec builds one multi-resource tenant: a CPU spike plus an
// explicit RAM trace that overflows the initial grant, and a growing
// disk trace.
func multiSpec(name string, minutes int) TenantSpec {
	cpu := make([]float64, minutes)
	ram := make([]float64, minutes)
	dsk := make([]float64, minutes)
	for i := range cpu {
		cpu[i] = 1
		ram[i] = 2
		dsk[i] = 4 + float64(i)*0.05
		if i >= minutes/3 && i < 2*minutes/3 {
			cpu[i] = 6
			ram[i] = 7 // above the initial 4 GB grant: OOM until RAM scales
		}
	}
	return TenantSpec{
		Name:           name,
		Trace:          trace.New(name, time.Minute, cpu),
		RAMTrace:       trace.New(name+"-ram", time.Minute, ram),
		DiskTrace:      trace.New(name+"-disk", time.Minute, dsk),
		NewRecommender: stubFactory("stub", 2),
		InitialCores:   2, MinCores: 1, MaxCores: 4,
		Resources: mustRange("ram=4-16,disk=5-40"),
	}
}

func mustRange(s string) core.ResourceRange {
	rr, err := core.ParseResourceSpec(s)
	if err != nil {
		panic(err)
	}
	return rr
}

func TestMultiRAMScalesUpAndBillsDimensions(t *testing.T) {
	const minutes = 120
	spec := multiSpec("m0", minutes)
	opts := DefaultOptions()
	opts.Minutes = minutes
	res, err := Run([]TenantSpec{spec}, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tenants[0]
	// RAM rides the spike up (4→9) and the hysteresis brings it back to
	// the 4 GB floor afterwards, so the trajectory shows up as scalings
	// and extra GB-periods, not in the final grant.
	if tr.NumScalings < 2 {
		t.Fatalf("RAM never scaled: %d scalings", tr.NumScalings)
	}
	if tr.BilledRAMGBPeriods <= 8 { // 2 hourly periods × the 4 GB floor
		t.Fatalf("RAM bill %v shows no scale-up above the floor", tr.BilledRAMGBPeriods)
	}
	if tr.FinalRAMGB != 4 {
		t.Fatalf("hysteresis must return RAM to the floor, got %d GB", tr.FinalRAMGB)
	}
	if tr.OOMMinutes == 0 || tr.RAMShortGBMin == 0 {
		t.Fatalf("the 7 GB plateau must OOM before RAM catches up: oom=%d short=%v",
			tr.OOMMinutes, tr.RAMShortGBMin)
	}
	if tr.FinalDiskGB <= 5 {
		t.Fatalf("disk never grew: final %d GB", tr.FinalDiskGB)
	}
	if tr.BilledRAMGBPeriods == 0 || tr.BilledDiskGBPeriods == 0 {
		t.Fatalf("non-CPU dimensions must bill: ram=%v disk=%v",
			tr.BilledRAMGBPeriods, tr.BilledDiskGBPeriods)
	}
	if res.TotalRAMCost == 0 || res.TotalOOMMinutes != tr.OOMMinutes {
		t.Fatalf("aggregates not rolled up: %+v", res)
	}
	if !strings.Contains(res.Summary(), "ram-short") {
		t.Fatal("multi summary block missing")
	}
}

func TestMultiDiskGrowOnly(t *testing.T) {
	const minutes = 90
	spec := multiSpec("d0", minutes)
	// Disk trace rises then falls back: the volume must keep its peak.
	// The plateau is long enough for the step-capped growth to converge
	// (usage is capped at the volume, so each decision only sees the next
	// rung of the ladder).
	vs := make([]float64, minutes)
	for i := range vs {
		vs[i] = 4
		if i >= 20 && i < 80 {
			vs[i] = 30
		}
	}
	spec.DiskTrace = trace.New("d0-disk", time.Minute, vs)
	opts := DefaultOptions()
	opts.Minutes = minutes
	res, err := Run([]TenantSpec{spec}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tenants[0].FinalDiskGB; got < 38 { // ceil(30/0.8)=38→40 step
		t.Fatalf("disk must hold its high-water size, got %d GB", got)
	}
}

func TestMultiHorizontalOverflow(t *testing.T) {
	const minutes = 200
	cpu := make([]float64, minutes)
	for i := range cpu {
		cpu[i] = 2
		if i >= 50 {
			cpu[i] = 11 // far above the 4-core per-pod ceiling
		}
	}
	spec := TenantSpec{
		Name:           "web",
		Trace:          trace.New("web", time.Minute, cpu),
		NewRecommender: stubFactory("stub", 8), // always pinned to Max
		InitialCores:   2, MinCores: 1, MaxCores: 4,
		Stateless: true,
		Resources: mustRange("ram=2-8,replicas=1-4"),
	}
	opts := DefaultOptions()
	opts.Minutes = minutes
	res, err := Run([]TenantSpec{spec}, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tenants[0]
	// 11 cores of demand with a 4-core ceiling and 25% headroom needs
	// ceil(11 / (4×0.75)) = 4 replicas.
	if tr.FinalReplicas < 3 {
		t.Fatalf("overflow never engaged: %d replicas", tr.FinalReplicas)
	}
	if tr.FinalReplicas > 4 {
		t.Fatalf("MaxReplicas=4 violated: %d", tr.FinalReplicas)
	}
}

func TestMultiHorizontalScaleIn(t *testing.T) {
	const minutes = 400
	cpu := make([]float64, minutes)
	for i := range cpu {
		cpu[i] = 10
		if i >= 200 {
			cpu[i] = 1 // load collapses: replicas must drain back down
		}
	}
	spec := TenantSpec{
		Name:           "web",
		Trace:          trace.New("web", time.Minute, cpu),
		NewRecommender: newThresholdFactory(4),
		InitialCores:   2, MinCores: 1, MaxCores: 4,
		Stateless: true,
		Resources: mustRange("ram=2-8,replicas=1-6"),
	}
	opts := DefaultOptions()
	opts.Minutes = minutes
	res, err := Run([]TenantSpec{spec}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tenants[0].FinalReplicas; got != 1 {
		t.Fatalf("replicas must scale back in after the load drops, got %d", got)
	}
}

// thresholdRec recommends Max while recent per-pod usage is high and 1
// when idle — enough policy to drive overflow both directions.
type thresholdRec struct {
	max  int
	last float64
}

func (s *thresholdRec) Name() string             { return "threshold" }
func (s *thresholdRec) Observe(_ int, v float64) { s.last = v }
func (s *thresholdRec) Recommend(int) int {
	if s.last > 1.5 {
		return s.max
	}
	return 1
}
func (s *thresholdRec) Reset() { s.last = 0 }

func newThresholdFactory(max int) func() (recommend.Recommender, error) {
	return func() (recommend.Recommender, error) { return &thresholdRec{max: max}, nil }
}

func TestMultiDeterministicAcrossWorkers(t *testing.T) {
	const minutes = 240
	build := func() []TenantSpec {
		specs := mixedFleet(t, 6)
		for i := range specs {
			if i%2 == 0 {
				specs[i].Resources = mustRange("ram=4-16,disk=10-60")
			}
		}
		specs = append(specs, multiSpec("mx", minutes))
		return specs
	}
	runAt := func(workers int) (*Result, string) {
		mem := obs.NewMemorySink()
		opts := DefaultOptions()
		opts.Minutes = minutes
		opts.Workers = workers
		fspec, err := faults.ParseSpec("mem-pressure:p=0.3:gb=3,metrics-gap:p=0.1")
		if err != nil {
			t.Fatal(err)
		}
		opts.RunHooks = hooks.RunHooks{Events: mem, FaultSpec: fspec, FaultSeed: 7}
		res, err := Run(build(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, encodeStream(mem)
	}
	res1, ev1 := runAt(1)
	for _, w := range []int{4, 8} {
		resW, evW := runAt(w)
		if ev1 != evW {
			t.Fatalf("event stream differs at workers=%d", w)
		}
		if res1.Summary() != resW.Summary() {
			t.Fatalf("summary differs at workers=%d:\n%s\nvs\n%s", w, res1.Summary(), resW.Summary())
		}
	}
}

func TestMultiRejectsEventsEngine(t *testing.T) {
	spec := multiSpec("m0", 60)
	opts := DefaultOptions()
	opts.Minutes = 60
	opts.Engine = EngineEvents
	if _, err := Run([]TenantSpec{spec}, opts); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("events engine must reject multi tenants, got %v", err)
	}
}

func TestMultiShortTraceRejected(t *testing.T) {
	spec := multiSpec("m0", 60)
	spec.RAMTrace = trace.New("short", time.Minute, []float64{1, 2})
	opts := DefaultOptions()
	opts.Minutes = 60
	if _, err := Run([]TenantSpec{spec}, opts); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("short RAM trace must be rejected, got %v", err)
	}
}

func TestCPUOnlyStreamUnchangedByMultiTenantPresence(t *testing.T) {
	// A CPU-only tenant's per-tenant event fields must be identical
	// whether or not a multi-resource tenant shares the fleet.
	const minutes = 120
	cpuOnly := TenantSpec{
		Name: "solo", Trace: flatTrace("solo", minutes, 3),
		NewRecommender: stubFactory("stub", 3),
		InitialCores:   2, MinCores: 1, MaxCores: 4,
	}
	run := func(specs []TenantSpec) string {
		mem := obs.NewMemorySink()
		opts := DefaultOptions()
		opts.Minutes = minutes
		opts.RunHooks = hooks.RunHooks{Events: mem}
		if _, err := Run(specs, opts); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		var buf []byte
		for _, e := range mem.Events() {
			buf = e.AppendNDJSON(buf[:0])
			if strings.Contains(string(buf), `"tenant":"solo"`) {
				b.Write(buf)
			}
		}
		return b.String()
	}
	alone := run([]TenantSpec{cpuOnly})
	mixed := run([]TenantSpec{cpuOnly, multiSpec("mx", minutes)})
	if alone == "" {
		t.Fatal("no solo events captured")
	}
	if alone != mixed {
		t.Fatalf("CPU-only tenant stream changed when a multi tenant joined:\n%s\nvs\n%s", alone, mixed)
	}
}
