package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// postMultiSamples posts an NDJSON batch carrying RAM/disk readings next
// to the CPU ones.
func postMultiSamples(t *testing.T, base, id string, cpu, ram, disk []float64) {
	t.Helper()
	var b strings.Builder
	for i := range cpu {
		fmt.Fprintf(&b, `{"cpu":%g,"ram_gb":%g,"disk_gb":%g}`+"\n", cpu[i], ram[i], disk[i])
	}
	code, body, _ := do(t, http.MethodPost, base+"/v1/tenants/"+id+"/samples", b.String())
	if code != http.StatusAccepted {
		t.Fatalf("samples: %d %s", code, body)
	}
}

func statusRow(t *testing.T, base, id string) tenantStatus {
	t.Helper()
	code, body, _ := do(t, http.MethodGet, base+"/v1/tenants/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st tenantStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeMultiTenantLifecycle drives a multi-resource tenant end to
// end: RAM grows under the dual-threshold policy when the reported usage
// outruns the grant, disk grows (and only grows) behind its high-water
// mark, and the decision stream carries the appended ram_from/ram_to and
// disk_to fields.
func TestServeMultiTenantLifecycle(t *testing.T) {
	_, ts := testServer(t, Options{DecisionEveryMinutes: 10})
	register(t, ts.URL, "m",
		`{"policy":"control","max_cores":8,"min_ram_gb":2,"max_ram_gb":16,"initial_ram_gb":4,"disk_gb":10}`)

	n := 60
	cpu := make([]float64, n)
	ram := make([]float64, n)
	disk := make([]float64, n)
	for i := range cpu {
		cpu[i] = 2
		ram[i] = 9 // well above the 4 GB grant
		disk[i] = 9 + float64(i)*0.2
	}
	postMultiSamples(t, ts.URL, "m", cpu, ram, disk)
	waitSamples(t, ts.URL, "m", n)

	st := statusRow(t, ts.URL, "m")
	if st.RAMGB <= 4 || st.MaxRAMGB != 16 {
		t.Fatalf("RAM grant should have grown past 4 GB: %+v", st)
	}
	if st.DiskGB <= 10 {
		t.Fatalf("disk volume should have grown past 10 GB: %+v", st)
	}
	stream := decisionsOf(t, ts.URL, "m")
	if !strings.Contains(stream, `"ram_to"`) || !strings.Contains(stream, `"disk_to"`) {
		t.Fatalf("decision stream misses multi fields:\n%s", stream)
	}
}

// TestServeCPUOnlyUnchanged pins the byte-identity contract on the HTTP
// surface: a CPU-only tenant's status row and decision NDJSON contain
// none of the appended multi fields.
func TestServeCPUOnlyUnchanged(t *testing.T) {
	_, ts := testServer(t, Options{DecisionEveryMinutes: 10})
	register(t, ts.URL, "solo", `{"policy":"caasper","max_cores":8}`)
	postSamples(t, ts.URL, "solo", rampUsage(40))
	waitSamples(t, ts.URL, "solo", 40)

	_, body, _ := do(t, http.MethodGet, ts.URL+"/v1/tenants/solo", "")
	for _, field := range []string{"ram_gb", "max_ram_gb", "disk_gb", "replicas"} {
		if strings.Contains(body, field) {
			t.Fatalf("CPU-only status leaks %q: %s", field, body)
		}
	}
	stream := decisionsOf(t, ts.URL, "solo")
	for _, field := range []string{"ram_from", "ram_to", "disk_to", "replicas"} {
		if strings.Contains(stream, field) {
			t.Fatalf("CPU-only decisions leak %q:\n%s", field, stream)
		}
	}
}

// TestServeAdminRangeMulti retunes a CPU-only tenant into a
// multi-resource one through the admin range verb and checks replicas
// arrive via the horizontal-overflow path when the CPU target pins.
func TestServeAdminRangeMulti(t *testing.T) {
	_, ts := testServer(t, Options{DecisionEveryMinutes: 10})
	register(t, ts.URL, "web", `{"policy":"control","max_cores":4,"initial_cores":4,"min_cores":4}`)

	code, body, _ := do(t, http.MethodPut, ts.URL+"/v1/admin/tenants/web/range",
		`{"min_cores":4,"max_cores":4,"min_ram_gb":2,"max_ram_gb":8,"max_replicas":3}`)
	if code != http.StatusOK {
		t.Fatalf("admin range: %d %s", code, body)
	}
	var st tenantStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.RAMGB != 2 || st.MaxRAMGB != 8 || st.Replicas != 1 {
		t.Fatalf("range upgrade row = %+v", st)
	}

	// Pinned at 4 cores with hot usage → replicas climb.
	n := 40
	cpu := make([]float64, n)
	ram := make([]float64, n)
	disk := make([]float64, n)
	for i := range cpu {
		cpu[i] = 3.9
		ram[i] = 1
	}
	postMultiSamples(t, ts.URL, "web", cpu, ram, disk)
	waitSamples(t, ts.URL, "web", n)
	if st := statusRow(t, ts.URL, "web"); st.Replicas < 2 {
		t.Fatalf("pinned hot tier should have overflowed horizontally: %+v", st)
	}

	// Invalid multi bounds are rejected.
	code, _, _ = do(t, http.MethodPut, ts.URL+"/v1/admin/tenants/web/range",
		`{"min_cores":1,"max_cores":4,"min_ram_gb":9,"max_ram_gb":8}`)
	if code != http.StatusBadRequest {
		t.Fatalf("inverted RAM range accepted: %d", code)
	}
}

// TestServeMultiConfigValidation covers the registration-time checks.
func TestServeMultiConfigValidation(t *testing.T) {
	_, ts := testServer(t, Options{})
	for name, cfg := range map[string]string{
		"ram min without max":   `{"max_cores":4,"min_ram_gb":2}`,
		"ram min above max":     `{"max_cores":4,"min_ram_gb":9,"max_ram_gb":8}`,
		"initial ram outside":   `{"max_cores":4,"min_ram_gb":2,"max_ram_gb":8,"initial_ram_gb":9}`,
		"max disk without disk": `{"max_cores":4,"max_disk_gb":50}`,
		"disk above max disk":   `{"max_cores":4,"disk_gb":60,"max_disk_gb":50}`,
		"negative replicas":     `{"max_cores":4,"max_replicas":-1}`,
	} {
		code, body, _ := do(t, http.MethodPut, ts.URL+"/v1/tenants/bad", cfg)
		if code != http.StatusBadRequest {
			t.Errorf("%s: accepted (%d %s)", name, code, body)
		}
	}
}

// TestSnapshotV1MigrationBitIdentical pins the version migration: a v1
// CPU-only checkpoint (the pre-vector format) restored by the v2 server
// resumes with bit-identical subsequent decisions and RAM/disk left at
// their defaults.
func TestSnapshotV1MigrationBitIdentical(t *testing.T) {
	usage := rampUsage(200)
	const cut = 87
	cfg := `{"policy":"caasper","max_cores":10,"initial_cores":5}`

	// Control: uninterrupted server over the full stream.
	_, ctl := testServer(t, Options{DecisionEveryMinutes: 10})
	register(t, ctl.URL, "mig", cfg)
	postSamples(t, ctl.URL, "mig", usage)
	waitSamples(t, ctl.URL, "mig", len(usage))

	// First half on a snapshotting server.
	snap := filepath.Join(t.TempDir(), "serve.snapshot")
	s1, err := New(Options{DecisionEveryMinutes: 10, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestFrontend(t, s1)
	register(t, ts1, "mig", cfg)
	postSamples(t, ts1, "mig", usage[:cut])
	waitSamples(t, ts1, "mig", cut)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Downgrade the checkpoint to the v1 format. A CPU-only tenant line
	// is already byte-identical across versions (every v2 field is
	// omitempty), so rewriting the header version is the whole migration.
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"version":2`) {
		t.Fatalf("snapshot not v2: %s", raw)
	}
	for _, field := range []string{"ram_gb", "disk_gb", "replicas", "ram_peak"} {
		if strings.Contains(string(raw), field) {
			t.Fatalf("CPU-only v2 tenant line leaks %q — v1 compatibility broken: %s", field, raw)
		}
	}
	v1 := strings.Replace(string(raw), `"version":2`, `"version":1`, 1)
	if err := os.WriteFile(snap, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restore the v1 file into a fresh v2 server and finish the stream.
	s2, err := New(Options{DecisionEveryMinutes: 10, SnapshotPath: snap})
	if err != nil {
		t.Fatalf("v2 server must restore a v1 checkpoint: %v", err)
	}
	ts2 := newTestFrontend(t, s2)
	defer s2.Close()
	if st := statusRow(t, ts2, "mig"); st.RAMGB != 0 || st.DiskGB != 0 || st.Replicas != 0 {
		t.Fatalf("v1 tenant restored with non-default multi state: %+v", st)
	}
	postSamples(t, ts2, "mig", usage[cut:])
	waitSamples(t, ts2, "mig", len(usage))

	want := decisionsOf(t, ctl.URL, "mig")
	got := decisionsOf(t, ts2, "mig")
	if want != got {
		t.Fatalf("v1-migrated stream diverged:\ncontrol:\n%s\nmigrated:\n%s", want, got)
	}
}

// TestSnapshotMultiRoundTrip extends the durability contract to the
// vector: a multi-resource tenant interrupted mid-window resumes with the
// same grants and a decision stream identical to an uninterrupted run.
func TestSnapshotMultiRoundTrip(t *testing.T) {
	n := 120
	const cut = 53
	cpu := make([]float64, n)
	ram := make([]float64, n)
	disk := make([]float64, n)
	for i := range cpu {
		cpu[i] = 2 + float64(i%5)
		ram[i] = 3 + float64(i%9)
		disk[i] = 8 + float64(i)*0.1
	}
	cfg := `{"policy":"control","max_cores":8,"min_ram_gb":2,"max_ram_gb":16,"disk_gb":10}`

	_, ctl := testServer(t, Options{DecisionEveryMinutes: 10})
	register(t, ctl.URL, "mv", cfg)
	postMultiSamples(t, ctl.URL, "mv", cpu, ram, disk)
	waitSamples(t, ctl.URL, "mv", n)

	snap := filepath.Join(t.TempDir(), "serve.snapshot")
	s1, err := New(Options{DecisionEveryMinutes: 10, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestFrontend(t, s1)
	register(t, ts1, "mv", cfg)
	postMultiSamples(t, ts1, "mv", cpu[:cut], ram[:cut], disk[:cut])
	waitSamples(t, ts1, "mv", cut)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{DecisionEveryMinutes: 10, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestFrontend(t, s2)
	defer s2.Close()
	postMultiSamples(t, ts2, "mv", cpu[cut:], ram[cut:], disk[cut:])
	waitSamples(t, ts2, "mv", n)

	if want, got := decisionsOf(t, ctl.URL, "mv"), decisionsOf(t, ts2, "mv"); want != got {
		t.Fatalf("multi stream diverged after restart:\ncontrol:\n%s\nrestored:\n%s", want, got)
	}
	if want, got := statusRow(t, ctl.URL, "mv"), statusRow(t, ts2, "mv"); want != got {
		t.Fatalf("multi status diverged after restart: %+v vs %+v", want, got)
	}
}
