GO ?= go

.PHONY: build test race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Full verification gate: vet + build + race tests + benchmark smoke.
check:
	sh scripts/check.sh
