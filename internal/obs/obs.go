// Package obs is the repository's structured telemetry layer: a
// stdlib-only event stream, metrics registry and timing toolkit shared by
// the decision core, the trace-driven simulator, the Kubernetes substrate,
// the parallel evaluation engine, the tuning harness and every CLI.
//
// Two kinds of telemetry flow through it, with different contracts:
//
//   - Events (this file) are the decision audit trail: structured records
//     keyed on *simulated* time, encoded as NDJSON with a stable field
//     order. Given the same inputs a run emits a bit-identical stream for
//     every worker count — the golden event-stream tests pin this.
//
//   - Metrics (metrics.go) are runtime counters, gauges and latency
//     histograms measured on the wall clock. They describe how fast the
//     engine ran, not what it decided, and are deliberately excluded from
//     the determinism contract.
//
// The hot paths guard every emission behind a nil/Enabled check, so with
// telemetry disabled (the default) the layer costs one predictable branch
// per potential event and allocates nothing.
package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// Event is one structured telemetry record. T is simulated time in the
// emitting layer's native unit (minutes in the simulator, seconds on the
// Kubernetes substrate, sample indices in the tuning harness); Type is a
// dotted lower-case name ("core.decision", "k8s.resize-completed");
// Fields preserve emission order, which is what makes the NDJSON encoding
// deterministic.
type Event struct {
	T      int64
	Type   string
	Fields []Field
}

// Field is one key/value pair of an event. Values are restricted to the
// four kinds the telemetry schema uses (string, float, int, bool) so that
// encoding never reflects and never varies across runs.
type Field struct {
	Key  string
	kind fieldKind
	s    string
	f    float64
	i    int64
}

type fieldKind uint8

const (
	kindString fieldKind = iota
	kindFloat
	kindInt
	kindBool
)

// S builds a string field.
func S(key, v string) Field { return Field{Key: key, kind: kindString, s: v} }

// F builds a float field.
func F(key string, v float64) Field { return Field{Key: key, kind: kindFloat, f: v} }

// I builds an integer field.
func I(key string, v int64) Field { return Field{Key: key, kind: kindInt, i: v} }

// B builds a boolean field.
func B(key string, v bool) Field {
	var i int64
	if v {
		i = 1
	}
	return Field{Key: key, kind: kindBool, i: i}
}

// AppendNDJSON appends the event's single-line JSON encoding (no trailing
// newline) to dst and returns it. The encoding is byte-deterministic:
// fields appear in emission order, floats use the shortest round-trippable
// form, and NaN/Inf (never produced by healthy emitters) encode as null.
func (e Event) AppendNDJSON(dst []byte) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, e.T, 10)
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, e.Type)
	for _, f := range e.Fields {
		dst = append(dst, ',')
		dst = appendJSONString(dst, f.Key)
		dst = append(dst, ':')
		switch f.kind {
		case kindString:
			dst = appendJSONString(dst, f.s)
		case kindFloat:
			dst = appendJSONFloat(dst, f.f)
		case kindInt:
			dst = strconv.AppendInt(dst, f.i, 10)
		case kindBool:
			if f.i != 0 {
				dst = append(dst, `true`...)
			} else {
				dst = append(dst, `false`...)
			}
		}
	}
	return append(dst, '}')
}

// appendJSONString appends a JSON-escaped quoted string. Printable
// characters (including multi-byte UTF-8, which the decision explanations
// use) pass through untouched; quotes, backslashes and control characters
// are escaped per RFC 8259.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendJSONFloat appends a float in shortest round-trippable form;
// non-finite values become null (JSON has no representation for them).
func appendJSONFloat(dst []byte, v float64) []byte {
	if v != v || v > maxFinite || v < -maxFinite {
		return append(dst, `null`...)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

const maxFinite = 1.7976931348623157e308

// Sink consumes structured events. Implementations must be safe for
// concurrent Emit calls; the determinism contract is the *emitters'*
// responsibility (a single simulation run emits sequentially; multi-run
// drivers buffer per run and replay in run order — see sim.RunMatrix).
type Sink interface {
	// Enabled reports whether emissions are consumed. Emitters check it
	// (or Enabled(sink)) before building an event, so a disabled sink
	// costs one branch and zero allocations per call site.
	Enabled() bool
	// Emit consumes one event. Implementations that retain the event past
	// the call (buffers, replayers) must copy its Fields, because callers
	// are allowed to reuse the Fields backing array for the next event —
	// that reuse is what keeps hot emit sites allocation-free. Encoding
	// sinks that serialize before returning need no copy.
	Emit(e Event)
	// Flush forces buffered output down to the underlying writer.
	Flush() error
}

// Enabled reports whether s is a non-nil, enabled sink — the standard
// emission guard.
func Enabled(s Sink) bool { return s != nil && s.Enabled() }

// Discard is the no-op sink: disabled, so guarded emitters skip event
// construction entirely and the telemetry layer compiles down to a
// predictable branch per call site.
var Discard Sink = nopSink{}

type nopSink struct{}

func (nopSink) Enabled() bool { return false }
func (nopSink) Emit(Event)    {}
func (nopSink) Flush() error  { return nil }

// NDJSONSink encodes events as newline-delimited JSON onto a writer. It
// is safe for concurrent use; lines are written atomically under a mutex,
// and the encoding buffer is reused across events.
type NDJSONSink struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	buf   []byte
	count int64
	err   error
}

// NewNDJSONSink wraps w (buffered internally; call Flush before reading
// the output).
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{bw: bufio.NewWriter(w)}
}

// Enabled implements Sink.
func (s *NDJSONSink) Enabled() bool { return true }

// Emit implements Sink. Write errors are sticky: the first one is kept
// (see Err) and later emissions become no-ops, so a dying disk does not
// take the run down with it.
func (s *NDJSONSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = e.AppendNDJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if _, err := s.bw.Write(s.buf); err != nil {
		s.err = err
		return
	}
	s.count++
}

// Flush implements Sink.
func (s *NDJSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// Count returns the number of events successfully encoded.
func (s *NDJSONSink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Err returns the sticky write error, if any.
func (s *NDJSONSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MemorySink collects events in memory — the buffering half of the
// multi-run determinism story (per-run capture, ordered replay) and the
// assertion surface of the golden event-stream tests.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
	// arena backs the collected events' Fields: Emit copies each event's
	// fields in (the Sink contract lets emitters reuse their backing), so
	// a long capture costs one growing arena instead of one slice header
	// per event — and pooled sinks reuse it across runs after Reset.
	arena []Field
}

// NewMemorySink returns an empty collecting sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Enabled implements Sink.
func (m *MemorySink) Enabled() bool { return true }

// Emit implements Sink. The event's Fields are copied into the sink's
// arena, so callers may reuse their backing array immediately.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	if n := len(e.Fields); n > 0 {
		if cap(m.arena)-len(m.arena) < n {
			// Chunked growth: open a fresh block instead of reallocating,
			// so already-captured events keep pointing into the old chunks
			// (immutable, alive until the events are) and no capture ever
			// re-copies what it already copied.
			size := 2 * cap(m.arena)
			if size < 512 {
				size = 512
			}
			if size < n {
				size = n
			}
			m.arena = make([]Field, 0, size)
		}
		start := len(m.arena)
		m.arena = append(m.arena, e.Fields...)
		e.Fields = m.arena[start:len(m.arena):len(m.arena)]
	}
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Flush implements Sink.
func (m *MemorySink) Flush() error { return nil }

// Events returns the collected events in emission order. The events'
// Fields alias the sink's internal arena: they are immutable, but only
// valid until the next Reset (which recycles the arena for new events) —
// consume or deep-copy them before resetting.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Len returns the number of collected events.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Reset discards the collected events but keeps the backing storage, so
// a sink can be pooled across runs instead of reallocated.
func (m *MemorySink) Reset() {
	m.mu.Lock()
	m.events = m.events[:0]
	m.arena = m.arena[:0]
	m.mu.Unlock()
}

// ReplayTo re-emits every collected event into dst in order.
func (m *MemorySink) ReplayTo(dst Sink) {
	if !Enabled(dst) {
		return
	}
	for _, e := range m.Events() {
		dst.Emit(e)
	}
}

// Span is a simulated-time interval under construction: begin it at the
// start of an operation, End it when the operation completes, and one
// event typed after the span is emitted carrying t = start and the
// simulated duration. A zero Span (disabled sink) is inert.
type Span struct {
	sink  Sink
	typ   string
	start int64
}

// StartSpan opens a span at simulated time start. No event is emitted
// until End.
func StartSpan(sink Sink, typ string, start int64) Span {
	if !Enabled(sink) {
		return Span{}
	}
	return Span{sink: sink, typ: typ, start: start}
}

// End closes the span at simulated time end, emitting the span event with
// a "dur" field followed by any extra fields.
func (sp Span) End(end int64, extra ...Field) {
	if sp.sink == nil {
		return
	}
	fields := make([]Field, 0, 1+len(extra))
	fields = append(fields, I("dur", end-sp.start))
	fields = append(fields, extra...)
	sp.sink.Emit(Event{T: sp.start, Type: sp.typ, Fields: fields})
}
