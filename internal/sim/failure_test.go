package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/recommend"
	"caasper/internal/stats"
	"caasper/internal/trace"
)

// Failure-injection tests: metric pipelines drop samples and emit NaN/Inf
// artifacts around pod restarts; the simulator and recommenders must
// digest such traces without corrupting the accounting.

func corruptedTrace(seed uint64, minutes int) *trace.Trace {
	rng := stats.NewRNG(seed)
	vals := make([]float64, minutes)
	for i := range vals {
		switch rng.Intn(20) {
		case 0:
			vals[i] = math.NaN()
		case 1:
			vals[i] = math.Inf(1)
		case 2:
			vals[i] = -1
		default:
			vals[i] = 3 + rng.NormFloat64()
		}
	}
	return trace.New("corrupted", time.Minute, vals)
}

func TestRunSurvivesCorruptedTrace(t *testing.T) {
	tr := corruptedTrace(1, 600)
	rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, rec, DefaultOptions(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{res.SumSlack, res.SumInsufficient, res.BilledCorePeriods, res.ThrottledPct} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("corrupted metrics leaked into accounting: %+v", res)
		}
	}
	for _, u := range res.Usage {
		if math.IsNaN(u) || u < 0 {
			t.Fatal("usage series corrupted")
		}
	}
}

func TestRunSurvivesAllInvalidTrace(t *testing.T) {
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = math.NaN()
	}
	tr := trace.New("all-nan", time.Minute, vals)
	rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, rec, DefaultOptions(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	// All-invalid demand reads as zero: full slack, zero throttling,
	// and the recommender (seeing only zeros) scales to the floor.
	if res.SumInsufficient != 0 {
		t.Errorf("C = %v", res.SumInsufficient)
	}
	if res.Limits[len(res.Limits)-1] != 2 {
		t.Errorf("final limit = %v, want floor 2", res.Limits[len(res.Limits)-1])
	}
}

func TestRunInvariantsProperty(t *testing.T) {
	// Properties over random traces and recommenders:
	//   usage[t] ≤ limits[t], limits within [min, max],
	//   K = Σ(limits − usage), C ≥ 0, billing ≥ per-hour peak of limits.
	f := func(seed uint16, initial uint8) bool {
		rng := stats.NewRNG(uint64(seed) + 1)
		vals := make([]float64, 180)
		for i := range vals {
			vals[i] = rng.Float64() * 12
		}
		tr := trace.New("prop", time.Minute, vals)
		opts := DefaultOptions(1+int(initial%10), 12)
		rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(12), 30)
		if err != nil {
			return false
		}
		res, err := Run(tr, rec, opts)
		if err != nil {
			return false
		}
		var k float64
		for t := 0; t < res.Minutes; t++ {
			if res.Usage[t] > res.Limits[t]+1e-9 {
				return false
			}
			if res.Limits[t] < float64(opts.MinCores)-1e-9 || res.Limits[t] > float64(opts.MaxCores)+1e-9 {
				return false
			}
			k += res.Limits[t] - res.Usage[t]
		}
		if math.Abs(k-res.SumSlack) > 1e-6 {
			return false
		}
		return res.SumInsufficient >= 0 && res.BilledCorePeriods >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunBillingNeverBelowPeakLimitHours(t *testing.T) {
	tr := corruptedTrace(9, 240)
	res, err := Run(tr, baselines.NewControl(5), DefaultOptions(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	// 4 full hours at a constant 5-core limit bill exactly 20.
	if res.BilledCorePeriods != 20 {
		t.Errorf("billed = %v, want 20", res.BilledCorePeriods)
	}
}

func TestRunZeroResizeDelay(t *testing.T) {
	// Instant resizes (the in-place future) are a legal configuration.
	tr := flatTrace(6, 120)
	opts := DefaultOptions(2, 8)
	opts.ResizeDelayMinutes = 0
	rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumScalings == 0 {
		t.Fatal("expected scalings")
	}
	d := res.Decisions[0]
	if d.EffectiveAt != d.Minute {
		t.Errorf("zero-delay resize effective at %d, decided at %d", d.EffectiveAt, d.Minute)
	}
}
