package k8s

import (
	"errors"
	"fmt"
	"sort"
)

// Operator coordinates a stateful set's state transitions (paper Figure 1,
// step 1): role management, failover, and — central to this repository —
// rolling updates with restart (§2.2): a resize restarts pods one at a
// time, secondaries first, the initial primary last, each restart evicting
// and rescheduling the pod with its new resource spec.
//
// The operator is tick-driven: call Tick once per simulated second.
type Operator struct {
	// Set is the managed stateful set.
	Set *StatefulSet
	// Cluster schedules restarted pods.
	Cluster *Cluster
	// RestartSeconds is how long one pod's deallocate/reschedule/restart
	// cycle takes. Database A's strict HA flow takes ~300 s per pod (a
	// 3-replica resize spans the paper's 5–15 minute window); Database B
	// ~120 s.
	RestartSeconds int64

	// InPlace enables the Kubernetes in-place pod resize feature the
	// paper evaluates as future work (§2.2 footnote 4, §6.2 footnote 10,
	// §8): limits change without deallocating pods, so resizes complete
	// in one tick with no restarts, no dropped connections and no
	// failover. The paper reports that with this feature "neither the
	// scale-up lag nor failed transactions occur".
	InPlace bool

	// OnPodDown, OnPodUp and OnFailover, when non-nil, notify the
	// application layer (the database simulator drops the pod's
	// connections on restart, matching the paper's "user connections
	// are interrupted when a pod instance restarts").
	OnPodDown  func(p *Pod)
	OnPodUp    func(p *Pod)
	OnFailover func(oldPrimary, newPrimary *Pod)

	// FailoverCount counts primary hand-offs (observability).
	FailoverCount int
	// ResizeCount counts completed rolling updates.
	ResizeCount int

	// rolling-update state
	updating    bool
	targetCores int
	queue       []*Pod // pods still to restart, in restart order
	inFlight    *Pod   // pod currently restarting
	// EffectiveAt records when the most recent resize became effective
	// for the primary (users "experience" the new allocation).
	EffectiveAt int64
}

// NewOperator builds an operator.
func NewOperator(set *StatefulSet, cluster *Cluster, restartSeconds int64) (*Operator, error) {
	if set == nil || cluster == nil {
		return nil, errors.New("k8s: operator needs a set and a cluster")
	}
	if restartSeconds < 1 {
		return nil, errors.New("k8s: restartSeconds must be ≥ 1")
	}
	return &Operator{Set: set, Cluster: cluster, RestartSeconds: restartSeconds}, nil
}

// Updating reports whether a rolling update is in flight.
func (o *Operator) Updating() bool { return o.updating }

// TargetCores returns the in-flight resize target (0 when idle).
func (o *Operator) TargetCores() int {
	if !o.updating {
		return 0
	}
	return o.targetCores
}

// ResizeDuration returns the expected wall time of a full rolling update.
func (o *Operator) ResizeDuration() int64 {
	return o.RestartSeconds * int64(len(o.Set.Pods))
}

// RequestResize begins a rolling update to the new whole-core limit. It
// fails while another update is in flight (the scaler serializes on this)
// or when the target equals the current limit.
func (o *Operator) RequestResize(targetCores int, now int64) error {
	if o.updating {
		return fmt.Errorf("k8s: resize to %d rejected: update to %d in flight", targetCores, o.targetCores)
	}
	if targetCores < 1 {
		return fmt.Errorf("k8s: invalid target %d", targetCores)
	}
	if targetCores == o.Set.CPULimit() {
		return fmt.Errorf("k8s: target %d equals current limit", targetCores)
	}
	if o.InPlace {
		// In-place resize: patch every pod's spec without a restart.
		// Node request accounting moves with the spec; a scale-up that
		// no longer fits its node would be rejected by the real
		// scheduler too, so reject it here rather than over-commit.
		if err := o.resizeInPlace(targetCores); err != nil {
			return err
		}
		o.ResizeCount++
		o.EffectiveAt = now
		return nil
	}
	o.updating = true
	o.targetCores = targetCores

	// Restart order: secondaries by ordinal, the current primary last
	// (§3.1: "the operator policy prioritizes updating the initial
	// primary replica last to avoid additional client failovers").
	var secondaries, primaries []*Pod
	for _, p := range o.Set.Pods {
		if p.Role == RolePrimary {
			primaries = append(primaries, p)
		} else {
			secondaries = append(secondaries, p)
		}
	}
	sort.Slice(secondaries, func(i, j int) bool { return secondaries[i].Ordinal < secondaries[j].Ordinal })
	o.queue = append(secondaries, primaries...)
	return nil
}

// resizeInPlace patches every pod's spec through the cluster's in-place
// resize path, validating feasibility pod by pod. On a mid-way failure it
// rolls the already-patched pods back so the set never ends up split.
func (o *Operator) resizeInPlace(targetCores int) error {
	spec := NewGuaranteedSpec(targetCores, o.Set.MemGiBPerPod)
	var done []*Pod
	var prev []ContainerSpec
	for _, p := range o.Set.Pods {
		old := p.Spec
		if err := o.Cluster.ResizeInPlace(p, spec); err != nil {
			for i := len(done) - 1; i >= 0; i-- {
				// Shrinking back to the previous spec always fits.
				if rbErr := o.Cluster.ResizeInPlace(done[i], prev[i]); rbErr != nil {
					// Rollback of a shrink cannot fail; if it somehow
					// does, surface both errors loudly.
					return fmt.Errorf("k8s: in-place rollback failed: %v (original: %w)", rbErr, err)
				}
			}
			return err
		}
		done = append(done, p)
		prev = append(prev, old)
	}
	return nil
}

// Tick advances the rolling-update state machine by one step at time now
// (seconds). It finishes at most one restart and starts at most one per
// call; with one call per simulated second this matches the serialized
// per-pod flow.
func (o *Operator) Tick(now int64) {
	if !o.updating {
		return
	}

	// Complete an in-flight restart.
	if o.inFlight != nil && now >= o.inFlight.RestartingUntil {
		p := o.inFlight
		if err := o.Cluster.Schedule(p); err != nil {
			// No capacity right now: retry next tick. Real operators
			// back off; one-second retries are equivalent here.
			return
		}
		p.Phase = PhaseRunning
		p.Restarts++
		o.inFlight = nil
		if o.OnPodUp != nil {
			o.OnPodUp(p)
		}
	}
	if o.inFlight != nil {
		return // still restarting
	}

	// Start the next restart, or finish the update.
	if len(o.queue) == 0 {
		o.updating = false
		o.ResizeCount++
		o.EffectiveAt = now
		return
	}
	p := o.queue[0]
	o.queue = o.queue[1:]

	// Restarting the primary forces a failover to an updated secondary
	// first — the single, final failover the paper's ordering is
	// designed to guarantee.
	if p.Role == RolePrimary {
		if s := o.pickFailoverTarget(); s != nil {
			p.Role = RoleSecondary
			s.Role = RolePrimary
			o.FailoverCount++
			if o.OnFailover != nil {
				o.OnFailover(p, s)
			}
		}
	}

	o.Cluster.Evict(p)
	if o.OnPodDown != nil {
		o.OnPodDown(p)
	}
	p.Phase = PhaseRestarting
	p.Spec = NewGuaranteedSpec(o.targetCores, o.Set.MemGiBPerPod)
	p.RestartingUntil = now + o.RestartSeconds
	o.inFlight = p
}

// pickFailoverTarget chooses the running secondary with the lowest
// ordinal (deterministic; already resized at this point in the queue).
func (o *Operator) pickFailoverTarget() *Pod {
	var best *Pod
	for _, p := range o.Set.Pods {
		if p.Running() && p.Role == RoleSecondary {
			if best == nil || p.Ordinal < best.Ordinal {
				best = p
			}
		}
	}
	return best
}
