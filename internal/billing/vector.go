package billing

import "time"

// Rates prices each scalable dimension per billing period. The CPU rate
// is the paper's original price-per-core-period; RAM and disk follow the
// CaaS pattern of cheaper secondary dimensions (Zerops bills RAM at a
// fraction of a core and disk at a fraction of RAM). A zero rate means
// "free", which is how CPU-only runs keep their exact cost figures.
type Rates struct {
	// CPUCorePeriod is the price of one core held for one period.
	CPUCorePeriod float64
	// RAMGBPeriod is the price of one GB of RAM held for one period.
	RAMGBPeriod float64
	// DiskGBPeriod is the price of one GB of disk held for one period.
	DiskGBPeriod float64
}

// DefaultRates returns the reference price vector used by the simulator
// and fleet when the caller does not override it: CPU at unit price, RAM
// at a quarter of a core per GB, disk at a fiftieth.
func DefaultRates() Rates {
	return Rates{CPUCorePeriod: 1, RAMGBPeriod: 0.25, DiskGBPeriod: 0.02}
}

// VectorMeter meters the full resource vector: one peak-per-period Meter
// per dimension, all sharing the same period and sample cadence so the
// per-dimension costs add up on aligned boundaries. Replicas are not a
// billed dimension — each replica's limits are folded into the recorded
// totals by the caller (total provisioned cores/GB across the set).
type VectorMeter struct {
	// CPU, RAM and Disk meter their dimension's provisioned limits.
	CPU, RAM, Disk Meter
}

// NewVectorMeter builds a meter per dimension at the given rates.
func NewVectorMeter(rates Rates, period, sampleInterval time.Duration) (*VectorMeter, error) {
	cpu, err := NewMeter(rates.CPUCorePeriod, period, sampleInterval)
	if err != nil {
		return nil, err
	}
	ram, err := NewMeter(rates.RAMGBPeriod, period, sampleInterval)
	if err != nil {
		return nil, err
	}
	disk, err := NewMeter(rates.DiskGBPeriod, period, sampleInterval)
	if err != nil {
		return nil, err
	}
	return &VectorMeter{CPU: *cpu, RAM: *ram, Disk: *disk}, nil
}

// Record registers one sample interval's provisioned totals across the
// set: cores, RAM GB and disk GB (all replicas summed by the caller).
func (m *VectorMeter) Record(cores, ramGB, diskGB float64) {
	m.CPU.Record(cores)
	m.RAM.Record(ramGB)
	m.Disk.Record(diskGB)
}

// Flush closes any partially filled period in every dimension.
func (m *VectorMeter) Flush() {
	m.CPU.Flush()
	m.RAM.Flush()
	m.Disk.Flush()
}

// TotalCost sums the per-dimension costs.
func (m *VectorMeter) TotalCost() float64 {
	return m.CPU.TotalCost() + m.RAM.TotalCost() + m.Disk.TotalCost()
}

// Reset clears every dimension's accumulated state.
func (m *VectorMeter) Reset() {
	m.CPU.Reset()
	m.RAM.Reset()
	m.Disk.Reset()
}
