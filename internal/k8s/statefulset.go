package k8s

import (
	"fmt"
	"strconv"

	"caasper/internal/errs"
)

// StatefulSet is a replicated stateful application: one writable primary
// plus n−1 readable secondaries (paper Figure 2).
type StatefulSet struct {
	// Name prefixes pod names.
	Name string
	// Pods are the replicas, indexed by ordinal.
	Pods []*Pod
	// MemGiBPerPod is the fixed per-pod memory spec (memory is not
	// scaled or billed in the paper's model).
	MemGiBPerPod float64
}

// NewStatefulSet creates a set with the given replica count and initial
// whole-core CPU limit (limits == requests per the service invariant) and
// schedules every pod onto the cluster. Ordinal 0 starts as primary.
func NewStatefulSet(name string, replicas, cpuCores int, memGiB float64, cluster *Cluster) (*StatefulSet, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("k8s: replicas must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	if cpuCores < 1 {
		return nil, fmt.Errorf("k8s: cpuCores must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	set := &StatefulSet{Name: name, MemGiBPerPod: memGiB, Pods: make([]*Pod, 0, replicas)}
	// One backing block for all replicas: fleet runs build hundreds of
	// thousands of sets and the per-pod heap objects dominated their
	// construction cost.
	pods := make([]Pod, replicas)
	for i := range pods {
		role := RoleSecondary
		if i == 0 {
			role = RolePrimary
		}
		p := &pods[i]
		p.Name = name + "-" + strconv.Itoa(i)
		p.Ordinal = i
		p.Role = role
		p.Phase = PhasePending
		p.Spec = NewGuaranteedSpec(cpuCores, memGiB)
		if err := cluster.Schedule(p); err != nil {
			return nil, fmt.Errorf("k8s: scheduling %s: %w", p.Name, err)
		}
		p.Phase = PhaseRunning
		set.Pods = append(set.Pods, p)
	}
	return set, nil
}

// Primary returns the current primary pod, or nil when none is running
// (mid-failover instant).
func (s *StatefulSet) Primary() *Pod {
	for _, p := range s.Pods {
		if p.Role == RolePrimary {
			return p
		}
	}
	return nil
}

// RunningPods returns the pods currently able to serve.
func (s *StatefulSet) RunningPods() []*Pod {
	out := make([]*Pod, 0, len(s.Pods))
	for _, p := range s.Pods {
		if p.Running() {
			out = append(out, p)
		}
	}
	return out
}

// RunningSecondaries returns running secondary replicas.
func (s *StatefulSet) RunningSecondaries() []*Pod {
	out := make([]*Pod, 0, len(s.Pods))
	for _, p := range s.Pods {
		if p.Running() && p.Role == RoleSecondary {
			out = append(out, p)
		}
	}
	return out
}

// AddReplica grows the set horizontally by one secondary. The new pod is
// scheduled immediately but serves nothing until seedUntil: creating a
// database replica "often involves a 'size of data copy' operation to
// seed the new replica from existing ones" (§3.1) — the cost that makes
// horizontal scaling a poor fit for stateful monoliths. The pod enters
// PhaseRestarting with RestartingUntil=seedUntil; callers flip it to
// PhaseRunning when the seed completes (the operator's Tick does not
// manage scale-out pods — horizontal scaling is intentionally outside the
// vertical operator's duties).
func (s *StatefulSet) AddReplica(cluster *Cluster, cpuCores int, seedUntil int64) (*Pod, error) {
	ordinal := len(s.Pods)
	p := &Pod{
		Name:            fmt.Sprintf("%s-%d", s.Name, ordinal),
		Ordinal:         ordinal,
		Role:            RoleSecondary,
		Phase:           PhasePending,
		Spec:            NewGuaranteedSpec(cpuCores, s.MemGiBPerPod),
		RestartingUntil: seedUntil,
	}
	if err := cluster.Schedule(p); err != nil {
		return nil, fmt.Errorf("k8s: scaling out %s: %w", s.Name, err)
	}
	p.Phase = PhaseRestarting // seeding: scheduled but not serving
	s.Pods = append(s.Pods, p)
	return p, nil
}

// RemoveReplica shrinks the set horizontally by one: the highest-ordinal
// secondary is evicted from the cluster and dropped from the set. The
// primary is never removed — a one-pod set cannot shrink. Returns the
// removed pod, or an error when no removable secondary exists.
func (s *StatefulSet) RemoveReplica(cluster *Cluster) (*Pod, error) {
	for i := len(s.Pods) - 1; i >= 0; i-- {
		p := s.Pods[i]
		if p.Role != RoleSecondary {
			continue
		}
		cluster.Evict(p)
		p.Phase = PhasePending // unbound; no terminal phase in the model
		s.Pods = append(s.Pods[:i], s.Pods[i+1:]...)
		return p, nil
	}
	return nil, fmt.Errorf("k8s: %s has no removable secondary: %w", s.Name, errs.ErrInvalidConfig)
}

// CPULimit returns the set's common whole-core CPU limit (all replicas
// share one spec; during a rolling update pods may briefly diverge, in
// which case the primary's spec is authoritative, matching how the
// paper's billing views the set).
func (s *StatefulSet) CPULimit() int {
	if p := s.Primary(); p != nil {
		return int(p.CPULimit())
	}
	if len(s.Pods) > 0 {
		return int(s.Pods[0].CPULimit())
	}
	return 0
}
