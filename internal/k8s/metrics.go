package k8s

import "sort"

// MetricsServer aggregates per-pod CPU usage into fixed-interval samples
// (paper Figure 1, step 2). The live system samples at one-minute
// intervals; the server accumulates second-level usage and closes a
// bucket every IntervalSeconds.
type MetricsServer struct {
	// IntervalSeconds is the sample width (60 for one-minute samples).
	IntervalSeconds int64

	series map[string][]float64 // pod → closed per-interval mean cores
	acc    map[string]float64   // pod → cpu-seconds in the open bucket
	opened map[string]int64     // pod → open bucket index
}

// NewMetricsServer builds a server with the given sample interval.
func NewMetricsServer(intervalSeconds int64) *MetricsServer {
	if intervalSeconds < 1 {
		intervalSeconds = 60
	}
	return &MetricsServer{
		IntervalSeconds: intervalSeconds,
		series:          make(map[string][]float64),
		acc:             make(map[string]float64),
		opened:          make(map[string]int64),
	}
}

// RecordUsage registers that the pod consumed usedCores during the
// one-second tick at time now. Buckets close automatically; a pod that
// records nothing in a bucket (e.g. while restarting) reports zero for it.
func (m *MetricsServer) RecordUsage(pod string, now int64, usedCores float64) {
	bucket := now / m.IntervalSeconds
	if open, ok := m.opened[pod]; ok && bucket != open {
		m.closeThrough(pod, bucket)
	}
	if _, ok := m.opened[pod]; !ok {
		// First sample for this pod: backfill zeros for skipped buckets.
		m.closeThrough(pod, bucket)
	}
	m.opened[pod] = bucket
	m.acc[pod] += usedCores
}

// closeThrough closes buckets for pod up to (but excluding) bucket.
func (m *MetricsServer) closeThrough(pod string, bucket int64) {
	open, ok := m.opened[pod]
	if !ok {
		// Never recorded: create empty history up to the target bucket.
		for int64(len(m.series[pod])) < bucket {
			m.series[pod] = append(m.series[pod], 0)
		}
		return
	}
	// Close the open bucket.
	m.series[pod] = append(m.series[pod], m.acc[pod]/float64(m.IntervalSeconds))
	m.acc[pod] = 0
	// Zero-fill wholly silent buckets in between.
	for b := open + 1; b < bucket; b++ {
		m.series[pod] = append(m.series[pod], 0)
	}
	delete(m.opened, pod)
}

// UsageSeries returns the closed per-interval mean-cores series for the
// pod. The returned slice is shared; callers must not mutate it.
func (m *MetricsServer) UsageSeries(pod string) []float64 {
	return m.series[pod]
}

// Pods returns the pods with any recorded samples, sorted by name.
func (m *MetricsServer) Pods() []string {
	out := make([]string, 0, len(m.series))
	for name := range m.series {
		out = append(out, name)
	}
	for name := range m.opened {
		if _, ok := m.series[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
