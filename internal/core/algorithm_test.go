package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"caasper/internal/pvp"
	"caasper/internal/stats"
)

func mustRecommender(t *testing.T, maxCores int) *Recommender {
	t.Helper()
	r, err := New(DefaultConfig(maxCores))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func cappedUsage(level, cap float64, n int, seed uint64) []float64 {
	rng := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		v := level + rng.NormFloat64()*0.3
		if v > cap {
			v = cap
		}
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(16)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.SKUs.MinCores = 0 },
		func(c *Config) { c.MinCores = 0 },
		func(c *Config) { c.MinCores = 99 },
		func(c *Config) { c.SlopeHigh, c.SlopeLow = 0.1, 5 },
		func(c *Config) { c.SlackHigh = 1.0 },
		func(c *Config) { c.SlackHigh = -0.1 },
		func(c *Config) { c.SlackLow = 1.5 },
		func(c *Config) { c.MaxStepUp = 0 },
		func(c *Config) { c.MaxStepDown = 0 },
		func(c *Config) { c.QuantileP = 0 },
		func(c *Config) { c.QuantileP = 1.1 },
		func(c *Config) { c.WalkDownPerfTarget = 0 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig(16)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
}

func TestPreprocess(t *testing.T) {
	in := []float64{1, math.NaN(), -2, math.Inf(1), 3}
	out := Preprocess(in)
	if len(out) != 2 || out[0] != 1 || out[1] != 3 {
		t.Errorf("Preprocess = %v", out)
	}
	// Input untouched.
	if !math.IsNaN(in[1]) {
		t.Error("Preprocess must not mutate input")
	}
}

func TestDecideEmptyUsage(t *testing.T) {
	r := mustRecommender(t, 16)
	if _, err := r.Decide(4, nil); err != ErrNoUsage {
		t.Errorf("err = %v, want ErrNoUsage", err)
	}
	if _, err := r.Decide(4, []float64{math.NaN()}); err != ErrNoUsage {
		t.Errorf("all-invalid usage err = %v", err)
	}
}

func TestDecideScaleUpOnThrottling(t *testing.T) {
	// Usage pinned at a 3-core cap (Figure 4): must scale up decisively.
	r := mustRecommender(t, 16)
	usage := cappedUsage(6, 3, 120, 1)
	d, err := r.Decide(3, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Branch != BranchScaleUp {
		t.Fatalf("branch = %s, want scale-up (%s)", d.Branch, d.Explanation)
	}
	if d.Delta < 1 {
		t.Errorf("delta = %d, want ≥ 1", d.Delta)
	}
	if d.Slope < r.cfg.SlopeHigh {
		t.Errorf("slope = %v, expected steep", d.Slope)
	}
	if d.TargetCores > 3+r.cfg.MaxStepUp {
		t.Errorf("target %d exceeds max step", d.TargetCores)
	}
	if !strings.Contains(d.Explanation, "scale-up") {
		t.Errorf("explanation = %q", d.Explanation)
	}
}

func TestDecideScaleUpRespectsMaxStep(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.MaxStepUp = 4
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	usage := cappedUsage(40, 6, 200, 2)
	d, err := r.Decide(6, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delta > 4 {
		t.Errorf("delta = %d, exceeds MaxStepUp 4", d.Delta)
	}
	if d.Branch != BranchScaleUp {
		t.Errorf("branch = %s", d.Branch)
	}
}

func TestDecideThinBufferTriggersScaleUpWithoutSteepSlope(t *testing.T) {
	// Usage hovering at 93% of capacity but not capped: quantile trigger.
	r := mustRecommender(t, 32)
	rng := stats.NewRNG(3)
	usage := make([]float64, 200)
	for i := range usage {
		usage[i] = 9.3 + rng.NormFloat64()*0.1 // of 10 cores
	}
	d, err := r.Decide(10, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Branch != BranchScaleUp {
		t.Fatalf("branch = %s (%s)", d.Branch, d.Explanation)
	}
	// The buffered-quantile floor should lift capacity enough that the
	// quantile fits under (1-SlackHigh) of the new target.
	if float64(d.TargetCores)*(1-r.cfg.SlackHigh) < d.Quantile {
		t.Errorf("target %d leaves quantile %v above buffer", d.TargetCores, d.Quantile)
	}
}

func TestDecideWalkDownWhenOverProvisioned(t *testing.T) {
	// Figure 7b: using ~2.5-3.5 cores of 12 — flat tail, big step down.
	r := mustRecommender(t, 16)
	rng := stats.NewRNG(4)
	usage := make([]float64, 300)
	for i := range usage {
		usage[i] = 2.8 + rng.NormFloat64()*0.3
	}
	d, err := r.Decide(12, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Branch != BranchWalkDown {
		t.Fatalf("branch = %s (%s)", d.Branch, d.Explanation)
	}
	// Should drop far more than MaxStepDown in one move (the paper's
	// "scaling down by almost 8 cores").
	if d.Delta > -5 {
		t.Errorf("delta = %d, want a large single-step drop", d.Delta)
	}
	if d.TargetCores < r.cfg.MinCores {
		t.Errorf("target %d below floor", d.TargetCores)
	}
	// New capacity still covers the peak.
	if float64(d.TargetCores) < stats.Max(usage) {
		t.Errorf("target %d below peak %v", d.TargetCores, stats.Max(usage))
	}
}

func TestDecideGradualScaleDown(t *testing.T) {
	// Moderately idle but not flat-tail (some samples near capacity):
	// uses the bounded scale-down arm.
	cfg := DefaultConfig(16)
	cfg.SlackLow = 0.5
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	usage := make([]float64, 300)
	for i := range usage {
		// Mostly ~2 cores with rare excursions just above the 10-core
		// allocation (forecast-extended windows can exceed the cap):
		// the slope at 10 is small but nonzero, so the tail is not
		// flat and the bounded scale-down arm fires instead of the
		// walk-down.
		usage[i] = 2 + rng.NormFloat64()*0.2
		if i%97 == 0 {
			usage[i] = 10.5
		}
	}
	d, err := r.Decide(10, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delta >= 0 {
		t.Fatalf("expected scale-down, got %s (%s)", d.Branch, d.Explanation)
	}
	if -d.Delta > cfg.MaxStepDown && d.Branch == BranchScaleDown {
		t.Errorf("gradual scale-down exceeded MaxStepDown: %d", -d.Delta)
	}
}

func TestDecideHoldInBand(t *testing.T) {
	// Right-sized workload with a moderate slope at the allocation:
	// ~3% of samples sit just above 10 cores (slope ≈ 0.3, between the
	// thresholds) while the P95 stays inside both slack bands — the
	// between-thresholds hold arm.
	r := mustRecommender(t, 32)
	usage := make([]float64, 300)
	for i := range usage {
		usage[i] = 5
		if i%33 == 0 {
			usage[i] = 10.5
		}
	}
	d, err := r.Decide(10, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Branch != BranchHold || d.Delta != 0 {
		t.Errorf("branch = %s delta = %d (%s)", d.Branch, d.Delta, d.Explanation)
	}
	if !strings.Contains(d.Explanation, "within") {
		t.Errorf("expected the between-thresholds hold, got %q", d.Explanation)
	}
}

func TestDecideWalkDownHoldsWhenBufferForbids(t *testing.T) {
	// Flat tail at 4 cores, but the buffered peak (3.9/0.9 → 5) exceeds
	// the current allocation: the walk-down arm must refuse to move.
	r := mustRecommender(t, 16)
	usage := make([]float64, 200)
	for i := range usage {
		usage[i] = 1.0
		if i%50 == 0 {
			usage[i] = 3.9
		}
	}
	d, err := r.Decide(4, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Branch != BranchHold || d.Delta != 0 {
		t.Errorf("branch = %s delta = %d (%s)", d.Branch, d.Delta, d.Explanation)
	}
	if !strings.Contains(d.Explanation, "flat PvP tail") {
		t.Errorf("expected the walk-down hold, got %q", d.Explanation)
	}
}

func TestDecideGradualScaleDownHoldWhenQuantileForbids(t *testing.T) {
	// Down-trigger fires on a small slope, but the buffered quantile
	// already needs the full allocation: the bounded scale-down arm
	// must hold rather than shrink below safety.
	cfg := DefaultConfig(16)
	cfg.SlackLow = 0.80 // extremely eager idle trigger
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	usage := make([]float64, 300)
	for i := range usage {
		// P95 = 5.5: below the up-trigger (0.9·7 = 6.3), inside the
		// idle trigger (0.8·7 = 5.6), and its buffer ceil(5.5/0.9) = 7
		// already needs all 7 cores.
		usage[i] = 5.5
		if i%90 == 0 {
			usage[i] = 7.4 // nonzero slope at 7 keeps the flat-tail arm out
		}
	}
	d, err := r.Decide(7, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Branch != BranchHold || d.Delta != 0 {
		t.Errorf("branch = %s delta = %d (%s)", d.Branch, d.Delta, d.Explanation)
	}
	if !strings.Contains(d.Explanation, "forbids shrinking") {
		t.Errorf("expected the quantile-forbids hold, got %q", d.Explanation)
	}
}

func TestDecideNeverScalesBelowFloor(t *testing.T) {
	r := mustRecommender(t, 16)
	usage := []float64{0.01, 0.01, 0.02, 0.01}
	d, err := r.Decide(12, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetCores < 2 {
		t.Errorf("target %d below the 2-core floor", d.TargetCores)
	}
}

func TestDecideNeverExceedsMaxCores(t *testing.T) {
	r := mustRecommender(t, 8)
	usage := cappedUsage(50, 8, 100, 7)
	d, err := r.Decide(8, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetCores > 8 {
		t.Errorf("target %d above ladder max 8", d.TargetCores)
	}
}

func TestDecideClampsCurrentCores(t *testing.T) {
	r := mustRecommender(t, 16)
	usage := []float64{3, 3, 3}
	d, err := r.Decide(99, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.CurrentCores != 16 {
		t.Errorf("current clamped to %d, want 16", d.CurrentCores)
	}
	d, err = r.Decide(-3, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.CurrentCores != 1 {
		t.Errorf("current clamped to %d, want 1", d.CurrentCores)
	}
}

func TestDecideRoundingModes(t *testing.T) {
	down := DefaultConfig(32)
	up := DefaultConfig(32)
	up.RoundUp = true
	rDown, _ := New(down)
	rUp, _ := New(up)
	usage := cappedUsage(12, 5, 200, 8)
	dDown, err := rDown.Decide(5, usage)
	if err != nil {
		t.Fatal(err)
	}
	dUp, err := rUp.Decide(5, usage)
	if err != nil {
		t.Fatal(err)
	}
	if dUp.TargetCores < dDown.TargetCores {
		t.Errorf("round-up target %d < round-down target %d", dUp.TargetCores, dDown.TargetCores)
	}
}

func TestScalingNeeded(t *testing.T) {
	if (Decision{Delta: 0}).ScalingNeeded() {
		t.Error("zero delta should not need scaling")
	}
	if !(Decision{Delta: -2}).ScalingNeeded() {
		t.Error("nonzero delta should need scaling")
	}
}

func TestDecidePropertyTargetAlwaysWithinLadder(t *testing.T) {
	r := mustRecommender(t, 24)
	f := func(seed uint16, cur uint8) bool {
		rng := stats.NewRNG(uint64(seed))
		usage := make([]float64, 60)
		for i := range usage {
			usage[i] = rng.Float64() * 30
		}
		d, err := r.Decide(int(cur%30), usage)
		if err != nil {
			return false
		}
		return d.TargetCores >= 2 && d.TargetCores <= 24 &&
			d.Delta == d.TargetCores-d.CurrentCores &&
			d.Explanation != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecidePropertyThrottledAlwaysScalesUp(t *testing.T) {
	// Property: usage pinned at the current cap (≥98% of samples at cap)
	// must always trigger scale-up while below the ladder max.
	r := mustRecommender(t, 32)
	for cap := 2; cap <= 20; cap++ {
		usage := make([]float64, 100)
		for i := range usage {
			usage[i] = float64(cap)
		}
		d, err := r.Decide(cap, usage)
		if err != nil {
			t.Fatal(err)
		}
		if d.Delta < 1 {
			t.Errorf("cap %d: delta = %d, want scale-up (%s)", cap, d.Delta, d.Explanation)
		}
	}
}

func TestGuardrailFloorInteraction(t *testing.T) {
	// MinCores above ladder bottom dominates.
	cfg := DefaultConfig(16)
	cfg.MinCores = 4
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Decide(10, []float64{0.1, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetCores < 4 {
		t.Errorf("target %d below MinCores 4", d.TargetCores)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig(40)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.SKUs.MaxCores != 40 || c.MinCores != 2 {
		t.Errorf("defaults: %+v", c)
	}
	if c.floor() != 2 {
		t.Errorf("floor = %d", c.floor())
	}
	low := c
	low.SKUs.MinCores = 5
	if low.floor() != 5 {
		t.Errorf("floor with high ladder bottom = %d", low.floor())
	}
}

func TestSKURangeExposedThroughConfig(t *testing.T) {
	r := mustRecommender(t, 12)
	if got := r.Config().SKUs.MaxCores; got != 12 {
		t.Errorf("Config().SKUs.MaxCores = %d", got)
	}
	_ = pvp.SKURange{} // keep the import honest in minimal builds
}
