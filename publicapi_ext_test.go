package caasper

import (
	"testing"
	"time"
)

// Tests for the public surface of the paper-§8 extensions: interval
// forecasting, ensembles, multi-resource scaling and in-place resizes.

func TestPublicIntervalForecaster(t *testing.T) {
	f := NewIntervalSeasonalNaive(60)
	hist := make([]float64, 180)
	for i := range hist {
		hist[i] = float64(i % 60)
	}
	pred, err := f.Forecast(hist, 10)
	if err != nil || len(pred) != 10 {
		t.Fatalf("forecast: %v %v", pred, err)
	}
}

func TestPublicEnsemble(t *testing.T) {
	e := NewEnsemble(EnsembleMax, NewSeasonalNaive(30), NewMovingAverage(10))
	hist := make([]float64, 90)
	for i := range hist {
		hist[i] = 2 + float64(i%30)/10
	}
	pred, err := e.Forecast(hist, 15)
	if err != nil || len(pred) != 15 {
		t.Fatalf("ensemble: %v %v", pred, err)
	}
	for _, mode := range []EnsembleMode{EnsembleMean, EnsembleMedian} {
		e := NewEnsemble(mode, NewSeasonalNaive(30))
		if _, err := e.Forecast(hist, 5); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func TestPublicMultiResource(t *testing.T) {
	m, err := NewMultiResource(MultiResourceConfig{
		Ladders: map[string]ResourceLadder{
			"cpu":     {Min: 2, Max: 16, Step: 1},
			"mem_gib": {Min: 8, Max: 64, Step: 4},
		},
		Base: DefaultConfig(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]UsageSample, 60)
	for i := range samples {
		samples[i] = UsageSample{"cpu": 4, "mem_gib": 12}
	}
	d, err := m.Decide(map[string]int{"cpu": 4, "mem_gib": 48}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) != 2 {
		t.Errorf("targets = %+v", d.Targets)
	}
	if d.Targets["cpu"] <= 4 {
		t.Error("capped cpu should scale up")
	}
	if d.Targets["mem_gib"] >= 48 {
		t.Error("idle memory should scale down")
	}
}

func TestPublicInPlaceResize(t *testing.T) {
	demand := Workloads["workday12h"](4)
	short := NewTrace("short", time.Minute, demand.Values[:120])
	sched, err := ScheduleForCores("ip", MixedOLTP(), TracePattern(short), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewReactive(DefaultConfig(6), 30)
	if err != nil {
		t.Fatal(err)
	}
	opts := DatabaseA(2, 6)
	opts.InPlaceResize = true
	res, err := RunLive(sched, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.InterruptedTxns != 0 || res.Failovers != 0 {
		t.Errorf("in-place run interrupted %v txns, %d failovers; want zero",
			res.DB.InterruptedTxns, res.Failovers)
	}
}

func TestPublicProactiveLongSoak(t *testing.T) {
	// Soak: 8 days of a daily cycle through the proactive recommender;
	// the limit series must stay stable (no runaway growth or collapse).
	if testing.Short() {
		t.Skip("soak")
	}
	tr, err := AlibabaTrace("c_1", 3)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewProactive(DefaultConfig(12), NewSeasonalNaive(1440), 40, 60, 1440)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, rec, DefaultSimOptions(9, 12))
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: limits bounded, some but not absurd scaling, low throttle.
	for _, l := range res.Limits {
		if l < 2 || l > 12 {
			t.Fatalf("limit %v escaped bounds", l)
		}
	}
	if res.NumScalings == 0 || res.NumScalings > 1200 {
		t.Errorf("scalings = %d", res.NumScalings)
	}
	if res.ThrottledPct > 0.08 {
		t.Errorf("throttled = %v", res.ThrottledPct)
	}
	// The last day's limit pattern should track the first full
	// post-warm-up day's (stable seasonal behaviour).
	day := 24 * 60
	lastDayAvg := mean(res.Limits[7*day:])
	secondDayAvg := mean(res.Limits[1*day : 2*day])
	if lastDayAvg > secondDayAvg*1.5 || lastDayAvg < secondDayAvg*0.5 {
		t.Errorf("limit drift: day2 avg %v vs day8 avg %v", secondDayAvg, lastDayAvg)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
