package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"caasper/internal/obs"
	"caasper/internal/recommend"
)

// testServer builds a server plus an httptest front end.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// newTestFrontend exposes an already-built Server over httptest without
// tying the Server's lifecycle to the test (snapshot tests close and
// rebuild servers mid-test).
func newTestFrontend(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func do(t *testing.T, method, url, body string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw), resp.Header
}

// register creates a tenant and fails the test on a non-2xx answer.
func register(t *testing.T, base, id, cfg string) {
	t.Helper()
	code, body, _ := do(t, http.MethodPut, base+"/v1/tenants/"+id, cfg)
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("register %s: %d %s", id, code, body)
	}
}

// postSamples posts a usage series as one NDJSON batch.
func postSamples(t *testing.T, base, id string, usage []float64) {
	t.Helper()
	var b strings.Builder
	for _, u := range usage {
		fmt.Fprintf(&b, `{"cpu":%g}`+"\n", u)
	}
	code, body, _ := do(t, http.MethodPost, base+"/v1/tenants/"+id+"/samples", b.String())
	if code != http.StatusAccepted {
		t.Fatalf("post samples: %d %s", code, body)
	}
}

// waitSamples polls the tenant status until n samples have been applied
// by the shard worker (ingest is asynchronous).
func waitSamples(t *testing.T, base, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		code, body, _ := do(t, http.MethodGet, base+"/v1/tenants/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var st tenantStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.Samples >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("tenant %s never reached %d samples", id, n)
}

// rampUsage is a deterministic series that exercises scale-up, hold and
// scale-down across 120 samples.
func rampUsage(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 2.5 + 2*math.Sin(float64(i)/9)
		if i%40 > 30 {
			out[i] += 3
		}
	}
	return out
}

func TestIngestAndDecisionStream(t *testing.T) {
	_, ts := testServer(t, Options{DecisionEveryMinutes: 10})
	register(t, ts.URL, "alpha", `{"policy":"caasper","max_cores":8,"initial_cores":4}`)

	postSamples(t, ts.URL, "alpha", rampUsage(120))
	waitSamples(t, ts.URL, "alpha", 120)

	code, body, hdr := do(t, http.MethodGet, ts.URL+"/v1/tenants/alpha/decisions", "")
	if code != http.StatusOK {
		t.Fatalf("decisions: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("decision stream content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 12 {
		t.Fatalf("120 samples at cadence 10 → want 12 decisions, got %d:\n%s", len(lines), body)
	}
	var first DecisionRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || first.Minute != 9 || first.Policy != "caasper" || first.From != 4 {
		t.Fatalf("first decision = %+v", first)
	}
	if first.Explanation != "" {
		t.Fatalf("explanation materialised without explain=1: %q", first.Explanation)
	}

	// since= cursor resumes mid-stream.
	code, body, _ = do(t, http.MethodGet, ts.URL+"/v1/tenants/alpha/decisions?since=10", "")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if got := len(strings.Split(strings.TrimSpace(body), "\n")); got != 2 {
		t.Fatalf("since=10 → want 2 records, got %d", got)
	}

	// explain=1 lazily materialises prose on every record.
	code, body, _ = do(t, http.MethodGet, ts.URL+"/v1/tenants/alpha/decisions?explain=1", "")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	for i, ln := range strings.Split(strings.TrimSpace(body), "\n") {
		var rec DecisionRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Explanation == "" {
			t.Fatalf("record %d has no explanation under explain=1: %s", i, ln)
		}
	}
}

func TestMalformedAndUnknown(t *testing.T) {
	_, ts := testServer(t, Options{})
	register(t, ts.URL, "alpha", `{"max_cores":8}`)

	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"malformed ndjson", "POST", "/v1/tenants/alpha/samples", "{\"cpu\":1}\nnot json\n", http.StatusBadRequest},
		{"missing cpu field", "POST", "/v1/tenants/alpha/samples", "{\"usage\":1}\n", http.StatusBadRequest},
		{"negative cpu", "POST", "/v1/tenants/alpha/samples", "{\"cpu\":-3}\n", http.StatusBadRequest},
		{"empty batch", "POST", "/v1/tenants/alpha/samples", "", http.StatusBadRequest},
		{"unknown tenant samples", "POST", "/v1/tenants/ghost/samples", "{\"cpu\":1}\n", http.StatusNotFound},
		{"unknown tenant decisions", "GET", "/v1/tenants/ghost/decisions", "", http.StatusNotFound},
		{"unknown tenant status", "GET", "/v1/tenants/ghost", "", http.StatusNotFound},
		{"bad since", "GET", "/v1/tenants/alpha/decisions?since=x", "", http.StatusBadRequest},
		{"bad policy", "PUT", "/v1/tenants/beta", `{"policy":"nope","max_cores":4}`, http.StatusBadRequest},
		{"missing max", "PUT", "/v1/tenants/beta", `{"policy":"caasper"}`, http.StatusBadRequest},
		{"bad range", "PUT", "/v1/admin/tenants/alpha/range", `{"min_cores":5,"max_cores":2}`, http.StatusBadRequest},
	} {
		code, body, _ := do(t, tc.method, ts.URL+tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s: status = %d (want %d): %s", tc.name, code, tc.want, body)
		}
	}

	// The malformed batch above must not have applied its valid prefix.
	_, body, _ := do(t, http.MethodGet, ts.URL+"/v1/tenants/alpha", "")
	var st tenantStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Samples != 0 {
		t.Fatalf("malformed batch applied %d samples; want all-or-nothing", st.Samples)
	}
}

// gatedRec wraps a recommender so its first Observe parks until the test
// releases it — a deterministic way to wedge a shard worker mid-apply.
type gatedRec struct {
	recommend.Recommender
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func (g *gatedRec) Observe(m int, u float64) {
	g.once.Do(func() {
		close(g.started)
		<-g.gate
	})
	g.Recommender.Observe(m, u)
}

func TestBackpressure429(t *testing.T) {
	s, ts := testServer(t, Options{QueueDepth: 1, Shards: 1})
	register(t, ts.URL, "alpha", `{"max_cores":8}`)

	// Wedge the shard worker inside the first apply, then fill the
	// single-slot queue and watch the next post bounce.
	sh := s.shards[0]
	sh.mu.Lock()
	tn := sh.tenants["alpha"]
	sh.mu.Unlock()
	g := &gatedRec{Recommender: tn.rec, started: make(chan struct{}), gate: make(chan struct{})}
	tn.mu.Lock()
	tn.rec = g
	tn.mu.Unlock()

	code1, body1, _ := do(t, http.MethodPost, ts.URL+"/v1/tenants/alpha/samples", `{"cpu":1}`+"\n")
	if code1 != http.StatusAccepted {
		t.Fatalf("first post: %d %s", code1, body1)
	}
	<-g.started // worker is mid-apply; queue is empty again

	code2, body2, _ := do(t, http.MethodPost, ts.URL+"/v1/tenants/alpha/samples", `{"cpu":1}`+"\n")
	if code2 != http.StatusAccepted {
		t.Fatalf("second post must fill the queue: %d %s", code2, body2)
	}
	code3, body3, hdr3 := do(t, http.MethodPost, ts.URL+"/v1/tenants/alpha/samples", `{"cpu":1}`+"\n")
	if code3 != http.StatusTooManyRequests {
		t.Fatalf("third post with full queue and wedged worker: %d %s", code3, body3)
	}
	if hdr3.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(g.gate)
	waitSamples(t, ts.URL, "alpha", 2)
}

func TestPolicyHotSwapMidStream(t *testing.T) {
	_, ts := testServer(t, Options{DecisionEveryMinutes: 10})
	register(t, ts.URL, "alpha", `{"policy":"caasper","max_cores":8,"initial_cores":4}`)

	postSamples(t, ts.URL, "alpha", rampUsage(50))
	waitSamples(t, ts.URL, "alpha", 50)

	code, body, _ := do(t, http.MethodPut, ts.URL+"/v1/admin/tenants/alpha/policy", `{"policy":"autopilot"}`)
	if code != http.StatusOK {
		t.Fatalf("hot-swap: %d %s", code, body)
	}
	var st tenantStatus
	json.Unmarshal([]byte(body), &st)
	if st.Policy != "autopilot" {
		t.Fatalf("policy after swap = %q", st.Policy)
	}

	postSamples(t, ts.URL, "alpha", rampUsage(50))
	waitSamples(t, ts.URL, "alpha", 100)

	_, body, _ = do(t, http.MethodGet, ts.URL+"/v1/tenants/alpha/decisions", "")
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 10 {
		t.Fatalf("want 10 decisions across the swap, got %d", len(lines))
	}
	var recs []DecisionRecord
	for _, ln := range lines {
		var r DecisionRecord
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	for i, r := range recs {
		wantPolicy := "caasper"
		if i >= 5 {
			wantPolicy = "autopilot"
		}
		if r.Policy != wantPolicy {
			t.Fatalf("decision %d policy = %q, want %q (hot-swap at sample 50)", i, r.Policy, wantPolicy)
		}
		if r.Seq != int64(i+1) {
			t.Fatalf("seq %d at index %d: sequence must survive the swap", r.Seq, i)
		}
	}
}

func TestAdminRangeAndList(t *testing.T) {
	_, ts := testServer(t, Options{})
	register(t, ts.URL, "b", `{"max_cores":8,"initial_cores":6}`)
	register(t, ts.URL, "a", `{"max_cores":4}`)

	// Tightening the range clamps the current allocation immediately.
	code, body, _ := do(t, http.MethodPut, ts.URL+"/v1/admin/tenants/b/range", `{"min_cores":1,"max_cores":3}`)
	if code != http.StatusOK {
		t.Fatalf("range: %d %s", code, body)
	}
	var st tenantStatus
	json.Unmarshal([]byte(body), &st)
	if st.Cores != 3 || st.MaxCores != 3 {
		t.Fatalf("after tightening: %+v", st)
	}

	code, body, _ = do(t, http.MethodGet, ts.URL+"/v1/admin/tenants", "")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var rows []tenantStatus
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].ID != "a" || rows[1].ID != "b" {
		t.Fatalf("admin list = %+v (want sorted a, b)", rows)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, ts := testServer(t, Options{})
	register(t, ts.URL, "alpha", `{"max_cores":8}`)
	postSamples(t, ts.URL, "alpha", rampUsage(20))
	waitSamples(t, ts.URL, "alpha", 20)

	code, body, _ := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != http.StatusOK || !strings.Contains(body, "serve.samples") {
		t.Fatalf("metrics: %d\n%s", code, body)
	}
	code, body, _ = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

func TestRequestSpansEmitted(t *testing.T) {
	sink := obs.NewMemorySink()
	_, ts := testServer(t, Options{Events: sink})
	register(t, ts.URL, "alpha", `{"max_cores":8}`)
	postSamples(t, ts.URL, "alpha", []float64{1, 2})
	waitSamples(t, ts.URL, "alpha", 2)

	spans := 0
	events := sink.Events()
	for _, e := range events {
		if e.Type == "serve.span" {
			spans++
		}
	}
	if spans < 2 {
		t.Fatalf("want ≥ 2 serve.span events (put + post), got %d of %d events", spans, len(events))
	}
}

// TestPutResetsTenant pins re-PUT semantics: a fresh window and log.
func TestPutResetsTenant(t *testing.T) {
	_, ts := testServer(t, Options{})
	register(t, ts.URL, "alpha", `{"max_cores":8}`)
	postSamples(t, ts.URL, "alpha", rampUsage(20))
	waitSamples(t, ts.URL, "alpha", 20)

	code, body, _ := do(t, http.MethodPut, ts.URL+"/v1/tenants/alpha", `{"max_cores":8}`)
	if code != http.StatusOK {
		t.Fatalf("re-PUT: %d %s", code, body)
	}
	var st tenantStatus
	json.Unmarshal([]byte(body), &st)
	if st.Samples != 0 || st.Decision != 0 {
		t.Fatalf("re-PUT did not reset: %+v", st)
	}
}

// TestDecisionLogBounded pins the ring bound: only the newest
// DecisionLogSize records are retained.
func TestDecisionLogBounded(t *testing.T) {
	_, ts := testServer(t, Options{DecisionEveryMinutes: 1, DecisionLogSize: 4})
	register(t, ts.URL, "alpha", `{"max_cores":8}`)
	postSamples(t, ts.URL, "alpha", rampUsage(10))
	waitSamples(t, ts.URL, "alpha", 10)

	_, body, _ := do(t, http.MethodGet, ts.URL+"/v1/tenants/alpha/decisions", "")
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 4 {
		t.Fatalf("log holds %d records, want 4", len(lines))
	}
	var first DecisionRecord
	json.Unmarshal([]byte(lines[0]), &first)
	if first.Seq != 7 {
		t.Fatalf("oldest retained seq = %d, want 7 (10 decisions, ring of 4)", first.Seq)
	}
}

// TestLockedSinkConcurrency exercises the shared event sink under
// parallel ingest (run with -race).
func TestLockedSinkConcurrency(t *testing.T) {
	var buf bytes.Buffer
	_, ts := testServer(t, Options{Events: obs.NewNDJSONSink(&buf), Shards: 4, DecisionEveryMinutes: 5})
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for _, id := range ids {
		register(t, ts.URL, id, `{"max_cores":8}`)
	}
	done := make(chan struct{})
	for _, id := range ids {
		id := id
		go func() {
			defer func() { done <- struct{}{} }()
			postSamples(t, ts.URL, id, rampUsage(40))
		}()
	}
	for range ids {
		<-done
	}
	for _, id := range ids {
		waitSamples(t, ts.URL, id, 40)
	}
}
