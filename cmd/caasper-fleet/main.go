// Command caasper-fleet autoscales a fleet of tenants — each a stateful
// set, a recommender and a synthetic demand trace — concurrently against
// ONE shared Kubernetes cluster, with the capacity arbiter resolving
// simultaneous scale-ups that would oversubscribe a node. Results and the
// "fleet.*" event stream are byte-identical at every -workers value.
//
// Examples:
//
//	caasper-fleet -tenants 16 -minutes 240
//	caasper-fleet -tenants 8 -recommender caasper,vpa -cluster small
//	caasper-fleet -tenants 16 -minutes 240 -workers 8 -events fleet.ndjson
//	caasper-fleet -tenants 100000 -minutes 43200 -engine events
//	caasper-fleet -tenants 1000 -minutes 10080 -cpuprofile fleet.pprof
//
// Chaos runs inject deterministic faults into every tenant plus
// fleet-wide scheduling pressure (fault times are in minutes, the fleet's
// tick):
//
//	caasper-fleet -tenants 4 -faults "restart-fail:p=0.2,metrics-gap:p=0.05,sched-pressure:p=0.5:dur=60:cores=4" -fault-seed 7
//
// A -resources vector upgrades every tenant to multi-resource scaling —
// RAM under the dual-threshold policy, grow-only disk, and (with a
// replicas range) vertical-first horizontal overflow for stateless tiers:
//
//	caasper-fleet -tenants 8 -resources "ram=4-16,disk=5-40"
//	caasper-fleet -tenants 8 -resources "ram=4-16,replicas=1-4" -faults "mem-pressure:p=0.3:gb=3"
//
// With -target the binary becomes a load generator instead: it registers
// its tenants against a running caasper-serve instance and replays their
// traces as NDJSON sample batches, reporting ingest throughput and
// decision-latency percentiles:
//
//	caasper-fleet -target http://127.0.0.1:8080 -tenants 32 -minutes 1440
package main

import (
	"flag"
	"fmt"
	_ "net/http/pprof"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"caasper"
	"caasper/internal/faults"
	"caasper/internal/obs"
)

func main() {
	var (
		tenantCount  = flag.Int("tenants", 16, "number of tenants in the fleet")
		workloads    = flag.String("workloads", "workday12h,cyclical3d,step62h,customer", "comma-separated workload names cycled across tenants")
		recNames     = flag.String("recommender", "caasper", "recommender name(s), cycled across tenants: caasper, caasper-proactive, vpa, openshift, autopilot, control")
		minutes      = flag.Int("minutes", 0, "simulated minutes (0: until the shortest trace ends)")
		clusterName  = flag.String("cluster", "large", "shared cluster: small (6×8c) or large (6×16c)")
		replicas     = flag.Int("replicas", 1, "replicas per tenant stateful set")
		memGiB       = flag.Float64("mem", 2, "memory GiB per pod (scheduling only)")
		initial      = flag.Int("initial", 2, "initial cores per tenant")
		minCores     = flag.Int("min", 2, "per-tenant core floor")
		maxCores     = flag.Int("max", 0, "per-tenant core ceiling (default: trace peak * 1.5 + 2)")
		decisionInt  = flag.Int("decision-interval", 10, "minutes between decisions")
		workers      = flag.Int("workers", 0, "worker goroutines for the observe/decide phase (default: GOMAXPROCS; results identical at any value)")
		seed         = flag.Uint64("seed", 1, "workload seed base (tenant i uses seed+i)")
		faultSpecStr = flag.String("faults", "", `fault-injection spec, e.g. "restart-fail:p=0.2,metrics-gap:p=0.05,sched-pressure:p=0.5:dur=60:cores=4" (times in minutes; empty: fault-free)`)
		faultSeed    = flag.Uint64("fault-seed", 1, "fault-injection seed (same seed, same faults, byte-identical stream)")
		engine       = flag.String("engine", "stepped", "tick engine: stepped (minute-by-minute reference) or events (discrete-event wake queue; byte-identical output)")
		sharding     = flag.String("sharding", "auto", "events-engine shard parallelism: auto (run node-disjoint tenant groups concurrently) or off (single-shard reference loop; byte-identical output)")
		resourceSpec = flag.String("resources", "", `resource-vector spec applied to every tenant, e.g. "ram=4-16,disk=5-40" or "ram=4-32,replicas=1-4" (a replicas range marks the tenants stateless for horizontal overflow; requires the stepped engine)`)
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the fleet run to this file")
		target       = flag.String("target", "", "load-generator mode: replay traces against a caasper-serve URL instead of simulating")
		batchSize    = flag.Int("batch", 60, "samples per POST in -target mode")
		conns        = flag.Int("conns", 8, "concurrent posters in -target mode")
	)
	var cli obs.CLIConfig
	cli.Register(flag.CommandLine)
	flag.Parse()

	session, err := cli.Start()
	if err != nil {
		fatal(err)
	}
	defer session.Finish(os.Stdout)

	if _, err := obs.StartPprof(*pprofAddr, session.Log); err != nil {
		fatal(err)
	}

	// Graceful SIGINT/SIGTERM: an interrupted run flushes its -events
	// NDJSON sink instead of truncating the audit stream mid-event.
	session.FlushOnSignal(os.Stdout, "caasper-fleet")

	if *tenantCount < 1 {
		fatal(fmt.Errorf("-tenants must be ≥ 1"))
	}
	wnames := splitList(*workloads)
	rnames := splitList(*recNames)
	if len(wnames) == 0 || len(rnames) == 0 {
		fatal(fmt.Errorf("-workloads and -recommender must be non-empty"))
	}

	if *target != "" {
		err := runLoadgen(loadgenConfig{
			target:    *target,
			tenants:   *tenantCount,
			samples:   *minutes,
			batch:     *batchSize,
			conns:     *conns,
			policy:    rnames[0],
			workloads: wnames,
			seed:      *seed,
			maxCores:  *maxCores,
		}, session)
		if err != nil {
			fatal(err)
		}
		return
	}

	var rr caasper.ResourceRange
	if *resourceSpec != "" {
		rr, err = caasper.ParseResourceSpec(*resourceSpec)
		if err != nil {
			fatal(err)
		}
	}

	tenants := make([]caasper.TenantSpec, 0, *tenantCount)
	for i := 0; i < *tenantCount; i++ {
		wname := wnames[i%len(wnames)]
		gen, ok := caasper.Workloads[wname]
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", wname))
		}
		tr := gen(*seed + uint64(i))
		maxC := *maxCores
		if maxC == 0 {
			maxC = int(tr.Summarize().Max*1.5) + 2
		}
		rname := rnames[i%len(rnames)]
		tenants = append(tenants, caasper.TenantSpec{
			Name:  fmt.Sprintf("t%02d", i),
			Trace: tr,
			NewRecommender: func() (caasper.Recommender, error) {
				return caasper.NewRecommenderByName(rname, caasper.RecommenderSettings{MaxCores: maxC})
			},
			InitialCores: *initial,
			MinCores:     *minCores,
			MaxCores:     maxC,
			Replicas:     *replicas,
			MemGiBPerPod: *memGiB,
			Resources:    rr,
			Stateless:    rr.Max.Replicas > 0,
		})
	}

	opts := caasper.DefaultFleetOptions()
	opts.Minutes = *minutes
	opts.DecisionEveryMinutes = *decisionInt
	opts.Workers = *workers
	opts.Events = session.Events
	opts.Metrics = session.Metrics
	switch *clusterName {
	case "small":
		opts.Cluster = caasper.SmallCluster()
	case "large":
		opts.Cluster = caasper.LargeCluster()
	default:
		fatal(fmt.Errorf("unknown cluster %q (small or large)", *clusterName))
	}
	spec, err := caasper.ParseFaultSpec(*faultSpecStr)
	if err != nil {
		fatal(err)
	}
	opts.FaultSpec = spec
	opts.FaultSeed = *faultSeed
	opts.Engine = *engine
	opts.Sharding = *sharding

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	fmt.Printf("fleet: %d tenants on the %s cluster (workloads %s; policies %s; %s engine)\n",
		len(tenants), *clusterName, strings.Join(wnames, ","), strings.Join(rnames, ","), *engine)
	start := time.Now()
	res, err := caasper.RunFleet(tenants, opts)
	if err != nil {
		fatal(err)
	}
	session.Log.Infof("fleet run: %d minutes in %v", res.Minutes, time.Since(start).Round(time.Millisecond))

	fmt.Println()
	fmt.Print(res.Summary())
	if !spec.Empty() {
		var agg caasper.FaultCounts
		for _, t := range res.Tenants {
			agg.RestartFails += t.FaultCounts.RestartFails
			agg.RestartStucks += t.FaultCounts.RestartStucks
			agg.MetricsGaps += t.FaultCounts.MetricsGaps
			agg.MemPressureWindows += t.FaultCounts.MemPressureWindows
		}
		agg.PressureWindows = res.PressureWindows
		fmt.Println()
		fmt.Print(faults.Summarize(spec, *faultSeed, agg))
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caasper-fleet:", err)
	os.Exit(1)
}
