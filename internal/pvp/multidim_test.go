package pvp

import (
	"testing"

	"caasper/internal/stats"
)

func sampleCatalog() []SKU {
	return []SKU{
		{Name: "small", Capacity: map[string]float64{"cpu": 4, "ram_gib": 16, "iops": 3000}, MonthlyPrice: 100},
		{Name: "medium", Capacity: map[string]float64{"cpu": 8, "ram_gib": 32, "iops": 6000}, MonthlyPrice: 200},
		{Name: "large", Capacity: map[string]float64{"cpu": 16, "ram_gib": 64, "iops": 12000}, MonthlyPrice: 400},
	}
}

func TestBuildMultiCurveValidation(t *testing.T) {
	if _, err := BuildMultiCurve(nil, sampleCatalog()); err == nil {
		t.Error("no samples should fail")
	}
	if _, err := BuildMultiCurve([]UsageSample{{"cpu": 1}}, nil); err == nil {
		t.Error("empty catalog should fail")
	}
	bad := []SKU{{Name: "x"}}
	if _, err := BuildMultiCurve([]UsageSample{{"cpu": 1}}, bad); err == nil {
		t.Error("SKU without capacities should fail")
	}
}

func TestMultiCurveUnionSemantics(t *testing.T) {
	// The sample fits "small" on CPU but busts its IOPS: Eq. 1's union
	// must count it as throttled for "small" yet fine for "medium".
	samples := []UsageSample{
		{"cpu": 2, "ram_gib": 8, "iops": 5000},
	}
	c, err := BuildMultiCurve(samples, sampleCatalog())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, p := range c.Points {
		byName[p.SKU.Name] = p.Performance
	}
	if byName["small"] != 0 {
		t.Errorf("small performance = %v, want 0 (IOPS busted)", byName["small"])
	}
	if byName["medium"] != 1 || byName["large"] != 1 {
		t.Errorf("medium/large = %v/%v, want 1", byName["medium"], byName["large"])
	}
}

func TestMultiCurveMissingDimensions(t *testing.T) {
	// Sample dimension absent from a SKU's capacity → always exceeded.
	samples := []UsageSample{{"gpu": 1}}
	c, err := BuildMultiCurve(samples, sampleCatalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if p.Performance != 0 {
			t.Errorf("%s should be throttled on the unknown dimension", p.SKU.Name)
		}
	}
	// SKU dimension absent from samples → cannot be exceeded.
	samples = []UsageSample{{"cpu": 1}}
	c, err = BuildMultiCurve(samples, sampleCatalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if p.Performance != 1 {
			t.Errorf("%s should be clean", p.SKU.Name)
		}
	}
}

func TestMultiCurveOrderingAndFrontier(t *testing.T) {
	rng := stats.NewRNG(3)
	var samples []UsageSample
	for i := 0; i < 300; i++ {
		samples = append(samples, UsageSample{
			"cpu":     rng.Float64() * 10,
			"ram_gib": rng.Float64() * 40,
			"iops":    rng.Float64() * 8000,
		})
	}
	c, err := BuildMultiCurve(samples, sampleCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// Points sorted by price; performance monotone for a nested catalog.
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].SKU.MonthlyPrice < c.Points[i-1].SKU.MonthlyPrice {
			t.Fatal("points not price-sorted")
		}
		if c.Points[i].Performance < c.Points[i-1].Performance {
			t.Fatal("nested catalog should give monotone performance")
		}
	}
	f := c.Frontier()
	for i := 1; i < len(f); i++ {
		if f[i].Performance <= f[i-1].Performance {
			t.Fatal("frontier must strictly improve")
		}
	}
}

func TestMultiCurveRecommend(t *testing.T) {
	samples := []UsageSample{
		{"cpu": 6, "ram_gib": 20, "iops": 4000},
		{"cpu": 3, "ram_gib": 10, "iops": 2000},
	}
	c, err := BuildMultiCurve(samples, sampleCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// "small" throttles the first sample; "medium" covers both.
	sku, err := c.Recommend(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sku.Name != "medium" {
		t.Errorf("recommended %s, want medium (cheapest fully covering)", sku.Name)
	}
	// Half coverage is enough for the small SKU.
	sku, err = c.Recommend(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sku.Name != "small" {
		t.Errorf("recommended %s, want small at 50%% target", sku.Name)
	}
	// Unreachable target errors.
	huge := []UsageSample{{"cpu": 1000}}
	c2, _ := BuildMultiCurve(huge, sampleCatalog())
	if _, err := c2.Recommend(1.0); err == nil {
		t.Error("unreachable target should error")
	}
}

func TestMultiCurveAgreesWithCPUOnlyCurve(t *testing.T) {
	// The general Eq. 1 restricted to one CPU dimension must reproduce
	// the CaaSPER curve exactly.
	rng := stats.NewRNG(8)
	usage := make([]float64, 500)
	samples := make([]UsageSample, 500)
	for i := range usage {
		usage[i] = rng.Float64() * 12
		samples[i] = UsageSample{"cpu": usage[i]}
	}
	r := SKURange{MinCores: 1, MaxCores: 16, PricePerCore: 1}
	cpuCurve, err := BuildCurve(usage, r)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BuildMultiCurve(samples, CPUOnlyCatalog(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Points) != len(cpuCurve.Points) {
		t.Fatalf("lengths differ: %d vs %d", len(multi.Points), len(cpuCurve.Points))
	}
	for i := range multi.Points {
		if multi.Points[i].Performance != cpuCurve.Points[i].Performance {
			t.Errorf("SKU %d: multi %v vs cpu %v", i,
				multi.Points[i].Performance, cpuCurve.Points[i].Performance)
		}
		if multi.Points[i].SKU.MonthlyPrice != cpuCurve.Points[i].MonthlyPrice {
			t.Errorf("SKU %d price mismatch", i)
		}
	}
}
