package experiments

import (
	"errors"
	"strings"
	"testing"
)

func TestReplicateAggregates(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	metrics, err := Replicate(seeds, func(seed uint64) ([]MetricSample, error) {
		return []MetricSample{
			{Name: "a", Value: float64(seed)},      // 1, 2, 3
			{Name: "b", Value: float64(seed * 10)}, // 10, 20, 30
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 2 {
		t.Fatalf("metrics = %+v", metrics)
	}
	if metrics[0].Name != "a" || metrics[0].Mean != 2 || metrics[0].N != 3 {
		t.Errorf("a = %+v", metrics[0])
	}
	if metrics[1].Mean != 20 || metrics[1].Std != 10 {
		t.Errorf("b = %+v", metrics[1])
	}
	if s := metrics[1].String(); s != "20.0±10.0" {
		t.Errorf("String = %q", s)
	}
}

func TestReplicateValidation(t *testing.T) {
	if _, err := Replicate(nil, nil); err == nil {
		t.Error("no seeds should fail")
	}
	if _, err := Replicate([]uint64{1}, func(uint64) ([]MetricSample, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Error("run error should propagate")
	}
	// Inconsistent metric sets across runs are rejected.
	call := 0
	_, err := Replicate([]uint64{1, 2}, func(uint64) ([]MetricSample, error) {
		call++
		if call == 1 {
			return []MetricSample{{Name: "x", Value: 1}}, nil
		}
		return []MetricSample{{Name: "y", Value: 1}}, nil
	})
	if err == nil {
		t.Error("mismatched metric sets should fail")
	}
}

func TestReplicatedFigure9Margins(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated live-loop experiment")
	}
	metrics, report, err := ReplicatedFigure9([]uint64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ReplicatedMetric{}
	for _, m := range metrics {
		byName[m.Name] = m
	}
	// The paper's latency margins are small relative to the mean; ours
	// must be too (stable substrate, different seeds = workload noise).
	lat := byName["caasper avg lat (ms)"]
	if lat.Mean <= 0 {
		t.Fatalf("latency = %+v", lat)
	}
	if lat.Std > lat.Mean*0.25 {
		t.Errorf("latency margin %v too wide for mean %v", lat.Std, lat.Mean)
	}
	// The cost ratio is tight across seeds.
	price := byName["caasper price (% of control)"]
	if price.Mean <= 0 || price.Mean >= 100 {
		t.Errorf("price = %+v", price)
	}
	if price.Std > 10 {
		t.Errorf("price margin = %v, want tight", price.Std)
	}
	if !strings.Contains(report, "±") {
		t.Errorf("report lacks margins:\n%s", report)
	}
}
