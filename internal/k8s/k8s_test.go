package k8s

import (
	"strings"
	"testing"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPUCores: 4, MemoryGiB: 16}
	b := Resources{CPUCores: 1, MemoryGiB: 4}
	if got := a.Add(b); got.CPUCores != 5 || got.MemoryGiB != 20 {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got.CPUCores != 3 || got.MemoryGiB != 12 {
		t.Errorf("Sub = %+v", got)
	}
	if !b.Fits(a) || a.Fits(b) {
		t.Error("Fits misbehaves")
	}
}

func TestContainerSpec(t *testing.T) {
	s := NewGuaranteedSpec(4, 16)
	if !s.Guaranteed() {
		t.Error("guaranteed spec should have limits == requests")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ContainerSpec{
		Requests: Resources{CPUCores: 4},
		Limits:   Resources{CPUCores: 2},
	}
	if err := bad.Validate(); err == nil {
		t.Error("limits < requests should fail")
	}
	if err := (ContainerSpec{}).Validate(); err == nil {
		t.Error("zero CPU should fail")
	}
	neg := NewGuaranteedSpec(2, 8)
	neg.Requests.MemoryGiB = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative memory should fail")
	}
}

func TestPodConsumeCPU(t *testing.T) {
	p := &Pod{Name: "db-0", Phase: PhaseRunning, Spec: NewGuaranteedSpec(4, 16)}
	// Demand under the limit: all used, nothing throttled.
	if used := p.ConsumeCPU(3, 1); used != 3 {
		t.Errorf("used = %v", used)
	}
	if p.ThrottledCPUSeconds != 0 {
		t.Errorf("throttled = %v", p.ThrottledCPUSeconds)
	}
	// Demand above the limit: capped, remainder throttled.
	if used := p.ConsumeCPU(7, 2); used != 4 {
		t.Errorf("capped used = %v", used)
	}
	if p.ThrottledCPUSeconds != 6 { // (7-4)*2s
		t.Errorf("throttled = %v, want 6", p.ThrottledCPUSeconds)
	}
	if p.UsedCPUSeconds != 11 { // 3*1 + 4*2
		t.Errorf("used total = %v, want 11", p.UsedCPUSeconds)
	}
	// Restarting pods consume nothing.
	p.Phase = PhaseRestarting
	if used := p.ConsumeCPU(5, 1); used != 0 {
		t.Errorf("restarting pod used = %v", used)
	}
	// Negative/zero demand consumes nothing.
	p.Phase = PhaseRunning
	if used := p.ConsumeCPU(-1, 1); used != 0 {
		t.Errorf("negative demand used = %v", used)
	}
	if !strings.Contains(p.String(), "db-0") {
		t.Errorf("String = %q", p.String())
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(); err == nil {
		t.Error("empty cluster should fail")
	}
	n := NewNode("a", 8, 32)
	if _, err := NewCluster(n, NewNode("a", 8, 32)); err == nil {
		t.Error("duplicate node names should fail")
	}
}

func TestSchedulerSpreadsAndRespectsCapacity(t *testing.T) {
	c, err := NewCluster(NewNode("n1", 8, 32), NewNode("n2", 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, cores int) *Pod {
		return &Pod{Name: name, Phase: PhasePending, Spec: NewGuaranteedSpec(cores, 8)}
	}
	p1, p2 := mk("a", 4), mk("b", 4)
	if err := c.Schedule(p1); err != nil {
		t.Fatal(err)
	}
	if err := c.Schedule(p2); err != nil {
		t.Fatal(err)
	}
	// Least-allocated spread: the two pods land on different nodes.
	if p1.NodeName == p2.NodeName {
		t.Errorf("pods co-located on %s; expected spread", p1.NodeName)
	}
	// Fill up and overflow.
	p3, p4 := mk("c", 4), mk("d", 4)
	if err := c.Schedule(p3); err != nil {
		t.Fatal(err)
	}
	if err := c.Schedule(p4); err != nil {
		t.Fatal(err)
	}
	p5 := mk("e", 6)
	if err := c.Schedule(p5); err == nil {
		t.Error("over-capacity pod should not schedule")
	}
	// Evicting both pods of one node frees enough for the 6-core pod.
	evicted := p1.NodeName
	c.Evict(p1)
	if p1.NodeName != "" {
		t.Error("evict should clear binding")
	}
	for _, p := range []*Pod{p2, p3, p4} {
		if p.NodeName == evicted {
			c.Evict(p)
		}
	}
	if err := c.Schedule(p5); err != nil {
		t.Errorf("after evictions, 6-core pod should fit: %v", err)
	}
	// Rescheduling a running pod is rejected.
	p5.Phase = PhaseRunning
	if err := c.Schedule(p5); err == nil {
		t.Error("scheduling a running pod should fail")
	}
	// Evicting an unbound pod is a no-op.
	c.Evict(&Pod{Name: "ghost"})
}

func TestClusterTotals(t *testing.T) {
	c := SmallCluster()
	total := c.TotalAllocatable()
	if total.CPUCores != 48 || total.MemoryGiB != 192 {
		t.Errorf("small cluster totals = %+v", total)
	}
	lg := LargeCluster()
	if lt := lg.TotalAllocatable(); lt.CPUCores != 96 || lt.MemoryGiB != 336 {
		t.Errorf("large cluster totals = %+v", lt)
	}
	if got := c.TotalAllocated(); got.CPUCores != 0 {
		t.Errorf("fresh cluster allocated = %+v", got)
	}
	if len(c.Nodes()) != 6 {
		t.Errorf("nodes = %d", len(c.Nodes()))
	}
}

func TestNewStatefulSet(t *testing.T) {
	c := SmallCluster()
	set, err := NewStatefulSet("db", 3, 4, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Pods) != 3 {
		t.Fatalf("pods = %d", len(set.Pods))
	}
	if set.Primary() == nil || set.Primary().Ordinal != 0 {
		t.Error("ordinal 0 should start as primary")
	}
	if got := len(set.RunningSecondaries()); got != 2 {
		t.Errorf("secondaries = %d", got)
	}
	if set.CPULimit() != 4 {
		t.Errorf("CPULimit = %d", set.CPULimit())
	}
	if got := c.TotalAllocated().CPUCores; got != 12 {
		t.Errorf("allocated = %v", got)
	}
	// HA spread: three replicas on three distinct nodes.
	nodes := map[string]bool{}
	for _, p := range set.Pods {
		nodes[p.NodeName] = true
	}
	if len(nodes) != 3 {
		t.Errorf("replicas on %d nodes, want 3", len(nodes))
	}
	// Validation.
	if _, err := NewStatefulSet("x", 0, 4, 16, c); err == nil {
		t.Error("0 replicas should fail")
	}
	if _, err := NewStatefulSet("x", 1, 0, 16, c); err == nil {
		t.Error("0 cores should fail")
	}
	// Unschedulable set fails cleanly.
	tiny, _ := NewCluster(NewNode("t", 2, 8))
	if _, err := NewStatefulSet("big", 2, 4, 4, tiny); err == nil {
		t.Error("unschedulable set should fail")
	}
}

func TestOperatorValidation(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 3, 4, 16, c)
	if _, err := NewOperator(nil, c, 10); err == nil {
		t.Error("nil set should fail")
	}
	if _, err := NewOperator(set, nil, 10); err == nil {
		t.Error("nil cluster should fail")
	}
	if _, err := NewOperator(set, c, 0); err == nil {
		t.Error("zero restart time should fail")
	}
}

func TestRollingUpdateOrderAndTiming(t *testing.T) {
	c := SmallCluster()
	set, err := NewStatefulSet("db", 3, 4, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator(set, c, 100)
	if err != nil {
		t.Fatal(err)
	}

	var downs, ups []string
	var failovers int
	op.OnPodDown = func(p *Pod) { downs = append(downs, p.Name) }
	op.OnPodUp = func(p *Pod) { ups = append(ups, p.Name) }
	op.OnFailover = func(oldP, newP *Pod) { failovers++ }

	if err := op.RequestResize(6, 0); err != nil {
		t.Fatal(err)
	}
	if !op.Updating() || op.TargetCores() != 6 {
		t.Error("update should be in flight")
	}
	// Concurrent resize rejected.
	if err := op.RequestResize(8, 0); err == nil {
		t.Error("concurrent resize should fail")
	}

	// Drive to completion.
	var now int64
	for op.Updating() && now < 10000 {
		op.Tick(now)
		now++
	}
	if op.Updating() {
		t.Fatal("update did not complete")
	}
	// Restart order: secondaries (db-1, db-2) first, initial primary
	// (db-0) last.
	want := []string{"db-db-1", "db-db-2", "db-db-0"}
	_ = want
	if len(downs) != 3 {
		t.Fatalf("downs = %v", downs)
	}
	if downs[0] != "db-1" || downs[1] != "db-2" || downs[2] != "db-0" {
		t.Errorf("restart order = %v, want secondaries first, primary last", downs)
	}
	if len(ups) != 3 {
		t.Errorf("ups = %v", ups)
	}
	// Exactly one failover, and the new primary is an updated secondary.
	if failovers != 1 || op.FailoverCount != 1 {
		t.Errorf("failovers = %d", failovers)
	}
	if p := set.Primary(); p == nil || p.Ordinal == 0 {
		t.Errorf("primary should have moved off ordinal 0, got %v", set.Primary())
	}
	// Every pod now runs with the new spec.
	for _, p := range set.Pods {
		if !p.Running() || p.CPULimit() != 6 {
			t.Errorf("pod %s: phase=%s limit=%v", p.Name, p.Phase, p.CPULimit())
		}
		if p.Restarts != 1 {
			t.Errorf("pod %s restarts = %d", p.Name, p.Restarts)
		}
	}
	if set.CPULimit() != 6 {
		t.Errorf("set limit = %d", set.CPULimit())
	}
	// Total duration ≈ 3 × 100 s (the paper's multi-minute window).
	if op.EffectiveAt < 300 || op.EffectiveAt > 310 {
		t.Errorf("EffectiveAt = %d, want ≈300", op.EffectiveAt)
	}
	if op.ResizeCount != 1 {
		t.Errorf("ResizeCount = %d", op.ResizeCount)
	}

	// A second resize works and keeps the (new) primary last.
	downs = nil
	if err := op.RequestResize(4, now); err != nil {
		t.Fatal(err)
	}
	cur := set.Primary().Name
	for op.Updating() && now < 20000 {
		op.Tick(now)
		now++
	}
	if downs[len(downs)-1] != cur {
		t.Errorf("second update restarted %v last, want the then-primary %s", downs, cur)
	}
}

func TestRequestResizeValidation(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 2, 4, 16, c)
	op, _ := NewOperator(set, c, 10)
	if err := op.RequestResize(4, 0); err == nil {
		t.Error("same-size resize should fail")
	}
	if err := op.RequestResize(0, 0); err == nil {
		t.Error("zero target should fail")
	}
}

func TestRollingUpdateSingleReplica(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("solo", 1, 2, 8, c)
	op, _ := NewOperator(set, c, 50)
	if err := op.RequestResize(4, 0); err != nil {
		t.Fatal(err)
	}
	var now int64
	for op.Updating() && now < 1000 {
		op.Tick(now)
		now++
	}
	// Single replica: no failover possible, pod keeps primary role.
	if op.FailoverCount != 0 {
		t.Errorf("failovers = %d", op.FailoverCount)
	}
	if p := set.Primary(); p == nil || p.CPULimit() != 4 {
		t.Errorf("primary after solo update: %v", set.Primary())
	}
}

func TestPodDownDuringRestartServesNothing(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 2, 4, 16, c)
	op, _ := NewOperator(set, c, 100)
	if err := op.RequestResize(6, 0); err != nil {
		t.Fatal(err)
	}
	op.Tick(0) // first secondary goes down
	var restarting *Pod
	for _, p := range set.Pods {
		if p.Phase == PhaseRestarting {
			restarting = p
		}
	}
	if restarting == nil {
		t.Fatal("no pod restarting after first tick")
	}
	if got := restarting.ConsumeCPU(4, 1); got != 0 {
		t.Errorf("restarting pod consumed %v", got)
	}
	if got := len(set.RunningPods()); got != 1 {
		t.Errorf("running pods = %d, want 1", got)
	}
}
