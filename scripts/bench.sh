#!/bin/sh
# Benchmark capture: runs the hot-path benchmarks and writes the results
# as machine-readable JSON to BENCH_sim.json (array of {name, ns_op,
# allocs_op, bytes_op, tenant_minutes_s}), so perf regressions are
# diffable across commits.
#
# Two passes: the main filter runs at the default GOMAXPROCS (the "-N"
# name suffix is stripped — those rows are machine-width-independent),
# then the core-scaling probe BenchmarkFleetMonth10k repeats at -cpu
# 1,4,8 with each GOMAXPROCS variant kept as its own row (the bare name
# is the 1-cpu run; Go only suffixes names when GOMAXPROCS > 1), so the
# sharded engine's multi-core curve is pinned alongside the single-core
# numbers.
#
#   scripts/bench.sh                # default filter + count
#   BENCH_FILTER=BenchmarkDecide scripts/bench.sh
#   BENCH_SCALE_CPUS=1,2,4,8 scripts/bench.sh   # wider scaling sweep
#   BENCH_COUNT=5 scripts/bench.sh  # more samples (go test -count semantics
#                                   # via -benchtime; last sample wins here)
set -eu

cd "$(dirname "$0")/.."

FILTER="${BENCH_FILTER:-BenchmarkDecide|BenchmarkBuildCurve|BenchmarkSimulateWorkday|BenchmarkRecommenderMonthTrace|BenchmarkFleetTick|BenchmarkFleetWeek1k|BenchmarkFleetMonth100k\$|BenchmarkRandomSearch\$|BenchmarkServeIngest\$}"
SCALE_FILTER="${BENCH_SCALE_FILTER:-BenchmarkFleetMonth10k\$}"
SCALE_CPUS="${BENCH_SCALE_CPUS:-1,4,8}"
BENCHTIME="${BENCH_BENCHTIME:-1s}"
OUT="${BENCH_OUT:-BENCH_sim.json}"

# parse emits one JSON object per benchmark line. keep=1 keeps the
# GOMAXPROCS suffix ("-8") in the name; keep=0 strips it. A benchmark
# line looks like:
#   BenchmarkSimulateWorkday-8   5000   207482 ns/op   55562 B/op   387 allocs/op
parse() {
    awk -v keep="$1" '
    $1 ~ /^Benchmark/ && /ns\/op/ {
        name = $1
        if (!keep) sub(/-[0-9]+$/, "", name)
        ns = ""; bytes = ""; allocs = ""; tm = ""
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op")            ns = $(i-1)
            if ($i == "B/op")             bytes = $(i-1)
            if ($i == "allocs/op")        allocs = $(i-1)
            if ($i == "tenant_minutes/s") tm = $(i-1)
        }
        if (ns == "") next
        printf "  {\"name\": \"%s\", \"ns_op\": %s", name, ns
        if (bytes != "")  printf ", \"bytes_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_op\": %s", allocs
        if (tm != "")     printf ", \"tenant_minutes_s\": %s", tm
        print "}"
    }'
}

echo "==> go test -bench '$FILTER' -benchtime $BENCHTIME -benchmem ."
RAW="$(go test -run xxx -bench "$FILTER" -benchtime "$BENCHTIME" -benchmem . | tee /dev/stderr)"

echo "==> go test -bench '$SCALE_FILTER' -cpu $SCALE_CPUS -benchtime $BENCHTIME -benchmem ."
SCALERAW="$(go test -run xxx -bench "$SCALE_FILTER" -cpu "$SCALE_CPUS" -benchtime "$BENCHTIME" -benchmem . | tee /dev/stderr)"

{
    printf '%s\n' "$RAW" | parse 0
    printf '%s\n' "$SCALERAW" | parse 1
} | awk '
BEGIN { print "[" }
{ rows[++n] = $0 }
END {
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], i < n ? "," : ""
    print "]"
}' > "$OUT"

echo "==> wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
