package sim

import (
	"strings"
	"testing"
	"time"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/recommend"
	"caasper/internal/trace"
	"caasper/internal/workload"
)

func minuteTrace(name string, values []float64) *trace.Trace {
	return trace.New(name, time.Minute, values)
}

func flatTrace(level float64, minutes int) *trace.Trace {
	vals := make([]float64, minutes)
	for i := range vals {
		vals[i] = level
	}
	return minuteTrace("flat", vals)
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{InitialCores: 0, MinCores: 1, MaxCores: 4, DecisionEveryMinutes: 10, BillingPeriod: time.Hour},
		{InitialCores: 2, MinCores: 0, MaxCores: 4, DecisionEveryMinutes: 10, BillingPeriod: time.Hour},
		{InitialCores: 2, MinCores: 5, MaxCores: 4, DecisionEveryMinutes: 10, BillingPeriod: time.Hour},
		{InitialCores: 2, MinCores: 1, MaxCores: 4, DecisionEveryMinutes: 0, BillingPeriod: time.Hour},
		{InitialCores: 2, MinCores: 1, MaxCores: 4, DecisionEveryMinutes: 10, ResizeDelayMinutes: -1, BillingPeriod: time.Hour},
		{InitialCores: 2, MinCores: 1, MaxCores: 4, DecisionEveryMinutes: 10, BillingPeriod: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := DefaultOptions(6, 16).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunInputValidation(t *testing.T) {
	rec := baselines.NewControl(4)
	if _, err := Run(nil, rec, DefaultOptions(4, 16)); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := Run(minuteTrace("e", nil), rec, DefaultOptions(4, 16)); err == nil {
		t.Error("empty trace should error")
	}
	secTrace := trace.New("s", time.Second, []float64{1, 2})
	if _, err := Run(secTrace, rec, DefaultOptions(4, 16)); err == nil {
		t.Error("non-minute trace should error")
	}
	if _, err := Run(flatTrace(1, 10), rec, Options{}); err == nil {
		t.Error("invalid options should error")
	}
}

func TestControlRunMetrics(t *testing.T) {
	// Demand 3 cores, fixed limits 5: slack 2/min, no throttling.
	tr := flatTrace(3, 120)
	res, err := Run(tr, baselines.NewControl(5), DefaultOptions(5, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Minutes != 120 {
		t.Errorf("minutes = %d", res.Minutes)
	}
	if res.SumSlack != 240 {
		t.Errorf("K = %v, want 240", res.SumSlack)
	}
	if res.SumInsufficient != 0 || res.ThrottledMinutes != 0 {
		t.Errorf("C = %v, throttled = %d", res.SumInsufficient, res.ThrottledMinutes)
	}
	if res.NumScalings != 0 {
		t.Errorf("N = %d, want 0 for control", res.NumScalings)
	}
	if res.AvgSlack != 2 {
		t.Errorf("avg slack = %v", res.AvgSlack)
	}
	// 2 hours at 5 cores = 10 billed core-hours.
	if res.BilledCorePeriods != 10 {
		t.Errorf("billed = %v, want 10", res.BilledCorePeriods)
	}
	if res.ThroughputProxy() != 1 {
		t.Errorf("throughput = %v", res.ThroughputProxy())
	}
}

func TestThrottlingAccounting(t *testing.T) {
	// Demand 8, limits 5: 3 cores insufficient every minute.
	tr := flatTrace(8, 60)
	res, err := Run(tr, baselines.NewControl(5), DefaultOptions(5, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.SumInsufficient != 180 {
		t.Errorf("C = %v, want 180", res.SumInsufficient)
	}
	if res.ThrottledPct != 1 {
		t.Errorf("throttled pct = %v", res.ThrottledPct)
	}
	// Usage is capped at limits.
	for _, u := range res.Usage {
		if u != 5 {
			t.Fatalf("usage = %v, want capped 5", u)
		}
	}
	want := 1 - 180.0/480.0
	if got := res.ThroughputProxy(); got != want {
		t.Errorf("throughput proxy = %v, want %v", got, want)
	}
}

func TestResizeDelayAndSerialization(t *testing.T) {
	// A recommender that always asks for 8 cores from a 4-core start:
	// the resize decided at the first tick must take effect only after
	// the delay, and only one scaling occurs.
	tr := flatTrace(2, 60)
	opts := DefaultOptions(4, 16)
	opts.DecisionEveryMinutes = 10
	opts.ResizeDelayMinutes = 15
	res, err := Run(tr, baselines.NewControl(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumScalings != 1 {
		t.Fatalf("N = %d, want 1", res.NumScalings)
	}
	d := res.Decisions[0]
	if d.Minute != 10 || d.From != 4 || d.To != 8 || d.EffectiveAt != 25 {
		t.Errorf("decision = %+v", d)
	}
	// Limits before minute 25 are 4, after are 8.
	if res.Limits[24] != 4 || res.Limits[25] != 8 {
		t.Errorf("limits around resize: %v, %v", res.Limits[24], res.Limits[25])
	}
}

func TestScalerClampsRecommendation(t *testing.T) {
	tr := flatTrace(2, 40)
	opts := DefaultOptions(4, 6)
	opts.MinCores = 3
	res, err := Run(tr, baselines.NewControl(99), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Limits {
		if l > 6 {
			t.Fatalf("limit %v exceeds safety max", l)
		}
	}
	res, err = Run(tr, baselines.NewControl(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Limits[len(res.Limits)-1]
	if final < 3 {
		t.Fatalf("limit %v below safety min", final)
	}
}

func TestDecisionSeriesRecordsHolds(t *testing.T) {
	tr := flatTrace(2, 61)
	opts := DefaultOptions(4, 16)
	opts.DecisionEveryMinutes = 10
	res, err := Run(tr, baselines.NewControl(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Ticks at minutes 10..60 = 6 decisions, all holds at 4.
	if len(res.DecisionSeries) != 6 {
		t.Fatalf("decision series length = %d", len(res.DecisionSeries))
	}
	for _, v := range res.DecisionSeries {
		if v != 4 {
			t.Errorf("decision = %v, want hold 4", v)
		}
	}
}

func TestCaaSPEREscapesThrottlingVPADoesNot(t *testing.T) {
	// Head-to-head on a demand trace that exceeds the initial limits:
	// CaaSPER must scale out of throttling, OpenShift-style prediction
	// must stay trapped (§3.3).
	demand := make([]float64, 6*60)
	for i := range demand {
		demand[i] = 7
	}
	tr := minuteTrace("trap", demand)
	opts := DefaultOptions(2, 14)

	ca, err := recommend.NewCaaSPERReactive(core.DefaultConfig(14), 40)
	if err != nil {
		t.Fatal(err)
	}
	caRes, err := Run(tr, ca, opts)
	if err != nil {
		t.Fatal(err)
	}
	os, err := baselines.NewOpenShiftVPA(baselines.DefaultOpenShiftVPAOptions(14))
	if err != nil {
		t.Fatal(err)
	}
	osRes, err := Run(tr, os, opts)
	if err != nil {
		t.Fatal(err)
	}

	if caRes.ThroughputProxy() < 0.85 {
		t.Errorf("CaaSPER throughput = %v, want ≥0.85", caRes.ThroughputProxy())
	}
	if osRes.ThroughputProxy() > 0.6 {
		t.Errorf("OpenShift throughput = %v, want trapped low", osRes.ThroughputProxy())
	}
	if caRes.SumInsufficient >= osRes.SumInsufficient {
		t.Errorf("CaaSPER C=%v should beat OpenShift C=%v", caRes.SumInsufficient, osRes.SumInsufficient)
	}
}

func TestCaaSPERReducesSlackVsControl(t *testing.T) {
	tr := workload.StepTrace62h(1)
	opts := DefaultOptions(14, 14)

	control, err := Run(tr, baselines.NewControl(14), opts)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := recommend.NewCaaSPERReactive(core.DefaultConfig(14), 40)
	if err != nil {
		t.Fatal(err)
	}
	caRes, err := Run(tr, ca, opts)
	if err != nil {
		t.Fatal(err)
	}
	red := caRes.SlackReductionVs(control)
	if red < 0.5 {
		t.Errorf("slack reduction = %.1f%%, want substantial (paper: 78.3%%)", red*100)
	}
	if caRes.ThroughputProxy() < 0.9 {
		t.Errorf("throughput = %v, want ≥0.9", caRes.ThroughputProxy())
	}
	if caRes.CostRatioVs(control) >= 1 {
		t.Errorf("cost ratio = %v, want < 1", caRes.CostRatioVs(control))
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{SumSlack: 50, BilledCorePeriods: 30, Demand: []float64{0}}
	b := &Result{SumSlack: 100, BilledCorePeriods: 60}
	if got := r.SlackReductionVs(b); got != 0.5 {
		t.Errorf("slack reduction = %v", got)
	}
	if got := r.CostRatioVs(b); got != 0.5 {
		t.Errorf("cost ratio = %v", got)
	}
	zero := &Result{}
	if r.SlackReductionVs(zero) != 0 || r.CostRatioVs(zero) != 0 {
		t.Error("zero baselines should yield 0")
	}
	if zero2 := (&Result{Demand: []float64{0, 0}}).ThroughputProxy(); zero2 != 1 {
		t.Errorf("zero-demand throughput = %v, want 1", zero2)
	}
	over := &Result{Demand: []float64{1}, SumInsufficient: 5}
	if got := over.ThroughputProxy(); got != 0 {
		t.Errorf("over-throttled proxy = %v, want floor 0", got)
	}
	if !strings.Contains(r.String(), "Result{") {
		t.Errorf("String = %q", r.String())
	}
}

func TestRunDeterminism(t *testing.T) {
	tr := workload.Workday12h(7)
	mk := func() *Result {
		ca, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tr, ca, DefaultOptions(6, 8))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.SumSlack != b.SumSlack || a.NumScalings != b.NumScalings || a.BilledCorePeriods != b.BilledCorePeriods {
		t.Error("simulation must be deterministic")
	}
}

func TestWarmupDelaysFirstDecision(t *testing.T) {
	tr := flatTrace(2, 120)
	opts := DefaultOptions(4, 16)
	opts.DecisionEveryMinutes = 10
	opts.WarmupMinutes = 60
	res, err := Run(tr, baselines.NewControl(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0].Minute < 60 {
		t.Errorf("first decision at %d, want ≥ warmup 60", res.Decisions[0].Minute)
	}
}
