// Command caasper-sim replays a CPU demand trace through a pluggable
// vertical-autoscaling recommender using the paper's §5 trace-driven
// simulator and reports the K/C/N metrics, throttled-observation share,
// throughput proxy and pay-as-you-go cost.
//
// Examples:
//
//	caasper-sim -workload step62h -recommender caasper -initial 14 -max 14
//	caasper-sim -workload cyclical3d -recommender caasper-proactive -season 1440
//	caasper-sim -alibaba c_29247 -recommender vpa
//	caasper-sim -trace usage.csv -recommender openshift -max 16
//
// A comma-separated -recommender list replays the trace once per policy
// across a worker pool and prints the comparison table instead:
//
//	caasper-sim -workload cyclical3d -recommender caasper,vpa,autopilot -workers 4
//
// A -resources vector adds RAM (dual-threshold policy), grow-only disk
// and their bills on top of the unchanged CPU replay:
//
//	caasper-sim -workload workday12h -recommender caasper -resources ram=4-16
//	caasper-sim -workload cyclical3d -resources "ram=4-32,disk=20-100"
//
// Chaos runs inject deterministic faults into every replay (fault times
// are in simulated minutes here, the simulator's tick):
//
//	caasper-sim -workload workday12h -recommender caasper,vpa \
//	    -faults "restart-fail:p=0.2,metrics-gap:p=0.05" -fault-seed 7
//	caasper-sim -workload workday12h -resources ram=4-16 \
//	    -faults "mem-pressure:p=0.3:gb=4" -fault-seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"caasper"
	"caasper/internal/obs"
	"caasper/internal/sim"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "synthetic workload name (step62h, workday12h, cyclical3d, customer, ...)")
		alibabaID    = flag.String("alibaba", "", "alibaba-style trace id (c_1, c_4043, ...)")
		traceFile    = flag.String("trace", "", "CSV trace file (index,cpu_cores) at 1-minute resolution")
		recName      = flag.String("recommender", "caasper", "recommender (comma-separate several for a comparison matrix): caasper, caasper-proactive, vpa, openshift, autopilot, control")
		initial      = flag.Int("initial", 0, "initial core allocation (default: trace peak + 1)")
		maxCores     = flag.Int("max", 0, "SKU ladder maximum (default: trace peak * 1.5 + 2)")
		controlAt    = flag.Int("control-cores", 0, "fixed allocation for -recommender control (default: initial)")
		window       = flag.Int("window", 40, "reactive decision window in minutes")
		horizon      = flag.Int("horizon", 60, "proactive forecast horizon in minutes")
		season       = flag.Int("season", 1440, "seasonal-naive period in minutes")
		decisionInt  = flag.Int("decision-interval", 10, "minutes between decisions")
		resizeDelay  = flag.Int("resize-delay", 10, "minutes for a resize to take effect")
		seed         = flag.Uint64("seed", 1, "workload seed")
		resourceSpec = flag.String("resources", "", `resource-vector spec enabling the multi-resource simulator, e.g. "ram=4-16" or "cpu=2-12,ram=4-32,disk=20-100" (CPU bounds default to -initial/-max when no cpu= entry is given)`)
		faultSpec    = flag.String("faults", "", `fault-injection spec, e.g. "restart-fail:p=0.2,metrics-gap:p=0.05" (times in minutes; empty: fault-free)`)
		faultSeed    = flag.Uint64("fault-seed", 1, "fault-injection seed (same seed, same faults, byte-identical stream)")
		workers      = flag.Int("workers", 0, "worker goroutines for multi-recommender runs (default: GOMAXPROCS)")
		plot         = flag.Bool("plot", true, "print an ASCII chart of limits vs usage")
		explain      = flag.Bool("explain", false, "print each resize's decision explanation (CaaSPER recommenders)")
	)
	var cli obs.CLIConfig
	cli.Register(flag.CommandLine)
	flag.Parse()

	session, err := cli.Start()
	if err != nil {
		fatal(err)
	}
	defer session.Finish(os.Stdout)
	session.FlushOnSignal(os.Stdout, "caasper-sim")

	tr, err := loadTrace(*workloadName, *alibabaID, *traceFile, *seed)
	if err != nil {
		fatal(err)
	}
	session.Log.Infof("loaded trace %s: %d minutes", tr.Name, tr.Len())
	peak := tr.Summarize().Max
	if *maxCores == 0 {
		*maxCores = int(peak*1.5) + 2
	}
	if *initial == 0 {
		*initial = int(peak) + 1
		if *initial > *maxCores {
			*initial = *maxCores
		}
	}
	if *controlAt == 0 {
		*controlAt = *initial
	}

	opts := caasper.DefaultSimOptions(*initial, *maxCores)
	opts.DecisionEveryMinutes = *decisionInt
	opts.ResizeDelayMinutes = *resizeDelay
	opts.Workers = *workers
	opts.Events = session.Events
	opts.Metrics = session.Metrics
	spec, err := caasper.ParseFaultSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	opts.Faults = spec
	opts.FaultSeed = *faultSeed
	if *resourceSpec != "" {
		rr, err := caasper.ParseResourceSpec(*resourceSpec)
		if err != nil {
			fatal(err)
		}
		opts.Resources = rr
	}
	vector := opts.Range().Multi()

	recNames := splitList(*recName)
	if len(recNames) == 0 {
		fatal(fmt.Errorf("no recommender given"))
	}
	if vector && len(recNames) > 1 {
		fatal(fmt.Errorf("-resources with non-CPU dimensions needs a single -recommender (the comparison matrix is CPU-only)"))
	}
	if len(recNames) > 1 {
		// Comparison mode: one simulation per policy, fanned out across
		// the worker pool, reported as the standard matrix table.
		factories := make([]sim.RecommenderFactory, 0, len(recNames))
		for _, name := range recNames {
			name := name
			factories = append(factories, sim.RecommenderFactory{
				Name: name,
				New: func() (caasper.Recommender, error) {
					return buildRecommender(name, *maxCores, *controlAt, *window, *horizon, *season)
				},
			})
		}
		m, err := sim.RunMatrix([]*caasper.Trace{tr}, factories, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %s (%d minutes, peak %.2f cores)\n\n", tr.Name, tr.Len(), peak)
		fmt.Print(m.Summary())
		return
	}

	rec, err := buildRecommender(recNames[0], *maxCores, *controlAt, *window, *horizon, *season)
	if err != nil {
		fatal(err)
	}

	var res *caasper.SimResult
	var vres *caasper.VectorSimResult
	if vector {
		vres, err = caasper.SimulateVector(tr, rec, opts)
		if err != nil {
			fatal(err)
		}
		res = vres.Result
	} else {
		res, err = caasper.Simulate(tr, rec, opts)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("trace:        %s (%d minutes, peak %.2f cores)\n", res.TraceName, res.Minutes, peak)
	fmt.Printf("recommender:  %s\n", res.Recommender)
	fmt.Printf("sum slack K:        %.1f core-minutes (avg %.3f)\n", res.SumSlack, res.AvgSlack)
	fmt.Printf("sum insufficient C: %.1f core-minutes (avg %.4f)\n", res.SumInsufficient, res.AvgInsufficient)
	fmt.Printf("num scalings N:     %d\n", res.NumScalings)
	fmt.Printf("throttled obs:      %.2f%%\n", res.ThrottledPct*100)
	fmt.Printf("throughput proxy:   %.1f%%\n", res.ThroughputProxy()*100)
	fmt.Printf("billed core-hours:  %.0f\n", res.BilledCorePeriods)
	if vres != nil {
		if vres.FinalRAMGB > 0 {
			fmt.Printf("ram:                %d GB final, %d scalings, %d OOM-minutes (short %.1f GB-min), %.0f GB-hours billed\n",
				vres.FinalRAMGB, vres.RAMScalings, vres.OOMMinutes, vres.RAMShortGBMin, vres.BilledRAMGBPeriods)
		}
		if vres.FinalDiskGB > 0 {
			fmt.Printf("disk:               %d GB final, %d grow steps, %d disk-full minutes, %.0f GB-hours billed\n",
				vres.FinalDiskGB, vres.DiskScalings, vres.DiskFullMinutes, vres.BilledDiskGBPeriods)
		}
		fmt.Printf("vector cost:        %.2f (cpu %.2f + ram %.2f + disk %.2f at default rates)\n",
			vres.TotalCost(),
			res.BilledCorePeriods*caasper.DefaultBillingRates().CPUCorePeriod,
			vres.BilledRAMGBPeriods*caasper.DefaultBillingRates().RAMGBPeriod,
			vres.BilledDiskGBPeriods*caasper.DefaultBillingRates().DiskGBPeriod)
	}
	if !spec.Empty() {
		c := res.FaultCounts
		fmt.Printf("chaos: spec=%s seed=%d\n", spec, *faultSeed)
		fmt.Printf("  resizes aborted (restart-fail): %d\n", res.AbortedScalings)
		fmt.Printf("  restarts stuck:                 %d\n", c.RestartStucks)
		fmt.Printf("  metric samples dropped:         %d\n", c.MetricsGaps)
		fmt.Printf("  scheduling-pressure windows:    %d\n", c.PressureWindows)
		if vres != nil {
			fmt.Printf("  memory-pressure windows:        %d\n", vres.MemPressureWindows)
		}
	}
	if len(res.Decisions) > 0 {
		fmt.Printf("scalings:\n")
		for _, d := range res.Decisions {
			fmt.Printf("  t=%5dm  %2d -> %2d cores (effective t=%dm)\n", d.Minute, d.From, d.To, d.EffectiveAt)
			if *explain && d.Explanation != "" {
				fmt.Printf("           %s\n", d.Explanation)
			}
		}
	}
	if *plot {
		fmt.Println()
		fmt.Println(asciiChart(res.Demand, res.Limits, 72, 14))
	}
}

func loadTrace(workloadName, alibabaID, traceFile string, seed uint64) (*caasper.Trace, error) {
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return caasper.ReadTraceCSV(f, traceFile, time.Minute)
	case alibabaID != "":
		return caasper.AlibabaTrace(alibabaID, seed)
	case workloadName != "":
		gen, ok := caasper.Workloads[workloadName]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (known: %s)", workloadName, knownWorkloads())
		}
		return gen(seed), nil
	default:
		return nil, fmt.Errorf("one of -workload, -alibaba or -trace is required (workloads: %s)", knownWorkloads())
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func knownWorkloads() string {
	names := make([]string, 0, len(caasper.Workloads))
	for n := range caasper.Workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func buildRecommender(name string, maxCores, controlAt, window, horizon, season int) (caasper.Recommender, error) {
	return caasper.NewRecommenderByName(name, caasper.RecommenderSettings{
		MaxCores:     maxCores,
		Window:       window,
		Horizon:      horizon,
		Season:       season,
		ControlCores: controlAt,
	})
}

// asciiChart renders demand (·) and limits (#) as a downsampled chart.
func asciiChart(demand, limits []float64, width, height int) string {
	if len(demand) == 0 {
		return ""
	}
	maxV := 0.0
	for i := range demand {
		if demand[i] > maxV {
			maxV = demand[i]
		}
		if limits[i] > maxV {
			maxV = limits[i]
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	bucket := (len(demand) + width - 1) / width
	cols := (len(demand) + bucket - 1) / bucket
	dOut := make([]float64, cols)
	lOut := make([]float64, cols)
	for c := 0; c < cols; c++ {
		lo, hi := c*bucket, (c+1)*bucket
		if hi > len(demand) {
			hi = len(demand)
		}
		for i := lo; i < hi; i++ {
			if demand[i] > dOut[c] {
				dOut[c] = demand[i]
			}
			if limits[i] > lOut[c] {
				lOut[c] = limits[i]
			}
		}
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	rowFor := func(v float64) int {
		r := height - 1 - int(v/maxV*float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for c := 0; c < cols; c++ {
		grid[rowFor(dOut[c])][c] = '.'
		grid[rowFor(lOut[c])][c] = '#'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cores (max %.1f)   '#' = limits, '.' = demand\n", maxV)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caasper-sim:", err)
	os.Exit(1)
}
