// Package trace defines the CPU time-series type shared by every layer of
// the repository: workload generators produce traces, the simulator replays
// them, recommenders consume windows of them, and the experiment harness
// summarises them.
//
// A Trace is a regularly sampled series of CPU values (in cores) with an
// explicit sample interval. The paper's pipeline resamples every input to a
// one-minute grid (§6.3) and, for the Alibaba traces, rescales millicore
// series into whole-core ranges; both operations live here.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"caasper/internal/stats"
)

// Trace is a regularly sampled CPU usage series.
type Trace struct {
	// Name identifies the trace in reports (e.g. "c_29247", "workday").
	Name string
	// Interval is the spacing between consecutive samples.
	Interval time.Duration
	// Values holds the CPU usage in cores at each sample point.
	Values []float64
}

// New builds a trace, defensively copying values.
func New(name string, interval time.Duration, values []float64) *Trace {
	return &Trace{
		Name:     name,
		Interval: interval,
		Values:   append([]float64(nil), values...),
	}
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Values) }

// Duration returns the total time span covered by the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Values)) * t.Interval
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	return New(t.Name, t.Interval, t.Values)
}

// At returns the value at sample index i, clamping out-of-range indices to
// the nearest endpoint (convenient for window arithmetic at trace edges).
func (t *Trace) At(i int) float64 {
	if len(t.Values) == 0 {
		return 0
	}
	i = stats.ClampInt(i, 0, len(t.Values)-1)
	return t.Values[i]
}

// Window returns the samples in [from, to) with indices clamped to the
// trace bounds. The returned slice aliases the trace's backing array; do
// not mutate it.
func (t *Trace) Window(from, to int) []float64 {
	if from < 0 {
		from = 0
	}
	if to > len(t.Values) {
		to = len(t.Values)
	}
	if from >= to {
		return nil
	}
	return t.Values[from:to]
}

// RunStarts returns the start index of every maximal constant-value run,
// ascending and beginning with 0 (nil for an empty trace). These are the
// trace's inflection points: between consecutive entries the demand is
// flat, which is the property the discrete-event fleet engine exploits to
// advance observation windows in bulk and to sleep steady tenants until
// the next inflection. NaN samples never extend a run (NaN != NaN), so a
// corrupted trace degrades to minute-length runs instead of masking a
// change.
func (t *Trace) RunStarts() []int32 {
	vs := t.Values
	if len(vs) == 0 {
		return nil
	}
	n := 1
	for i := 1; i < len(vs); i++ {
		if vs[i] != vs[i-1] {
			n++
		}
	}
	starts := make([]int32, 1, n)
	for i := 1; i < len(vs); i++ {
		if vs[i] != vs[i-1] {
			starts = append(starts, int32(i))
		}
	}
	return starts
}

// Peak returns the largest sample value (0 for an empty trace). It is the
// shared peak scan behind every "size the SKU ladder from the trace"
// derivation: NaN samples are skipped so an unsanitised trace cannot
// poison a ladder bound.
func (t *Trace) Peak() float64 {
	peak := 0.0
	for _, v := range t.Values {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Scale multiplies every sample by f in place and returns the trace.
// The paper scales millicore traces into full-core ranges this way (§6.3).
func (t *Trace) Scale(f float64) *Trace {
	for i := range t.Values {
		t.Values[i] *= f
	}
	return t
}

// Clip limits every sample into [lo, hi] in place and returns the trace.
func (t *Trace) Clip(lo, hi float64) *Trace {
	for i := range t.Values {
		t.Values[i] = stats.Clamp(t.Values[i], lo, hi)
	}
	return t
}

// Round rounds every sample to the nearest integer number of cores in
// place and returns the trace.
func (t *Trace) Round() *Trace {
	for i := range t.Values {
		t.Values[i] = math.Round(t.Values[i])
	}
	return t
}

// Sanitize replaces NaN/Inf samples with zero and floors negatives at zero,
// in place, returning the count of repaired samples. Real metric pipelines
// emit such artifacts around pod restarts.
func (t *Trace) Sanitize() int {
	var fixed int
	for i, v := range t.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Values[i] = 0
			fixed++
		}
	}
	return fixed
}

// Resample converts the trace to a new sampling interval. Downsampling
// (newInterval > Interval) averages the samples covered by each new bucket,
// which is how one-minute grids are built from finer telemetry; upsampling
// repeats values (step interpolation). The trace name is preserved.
func (t *Trace) Resample(newInterval time.Duration) (*Trace, error) {
	if newInterval <= 0 {
		return nil, errors.New("trace: non-positive interval")
	}
	if t.Interval <= 0 {
		return nil, errors.New("trace: source interval unset")
	}
	if newInterval == t.Interval {
		return t.Clone(), nil
	}
	srcDur := t.Duration()
	n := int(srcDur / newInterval)
	if n == 0 {
		n = 1
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		start := time.Duration(i) * newInterval
		end := start + newInterval
		lo := int(start / t.Interval)
		hi := int(end / t.Interval)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(t.Values) {
			hi = len(t.Values)
		}
		if lo >= len(t.Values) {
			lo = len(t.Values) - 1
			hi = len(t.Values)
		}
		out[i] = stats.Mean(t.Values[lo:hi])
	}
	return &Trace{Name: t.Name, Interval: newInterval, Values: out}, nil
}

// Summary captures the descriptive statistics reported per trace in the
// experiment harness.
type Summary struct {
	Name     string
	Samples  int
	Mean     float64
	Max      float64
	Min      float64
	P50      float64
	P90      float64
	P99      float64
	StdDev   float64
	Duration time.Duration
}

// Summarize computes descriptive statistics for the trace.
func (t *Trace) Summarize() Summary {
	s := Summary{Name: t.Name, Samples: t.Len(), Duration: t.Duration()}
	if t.Len() == 0 {
		return s
	}
	s.Mean = stats.Mean(t.Values)
	s.Max = stats.Max(t.Values)
	s.Min = stats.Min(t.Values)
	s.StdDev = stats.StdDev(t.Values)
	sorted := append([]float64(nil), t.Values...)
	sort.Float64s(sorted)
	s.P50, _ = stats.QuantileSorted(sorted, 0.50)
	s.P90, _ = stats.QuantileSorted(sorted, 0.90)
	s.P99, _ = stats.QuantileSorted(sorted, 0.99)
	return s
}

// FeatureVector returns a fixed-length numeric description of the trace
// used for k-means clustering when selecting representative workloads
// (paper §6.3): mean, stddev, p50, p90, max, and a burstiness ratio.
func (t *Trace) FeatureVector() []float64 {
	s := t.Summarize()
	burst := 0.0
	if s.Mean > 0 {
		burst = s.Max / s.Mean
	}
	return []float64{s.Mean, s.StdDev, s.P50, s.P90, s.Max, burst}
}

// String summarises the trace.
func (t *Trace) String() string {
	s := t.Summarize()
	return fmt.Sprintf("Trace{%s: %d samples @ %s, mean=%.2f max=%.2f}",
		t.Name, s.Samples, t.Interval, s.Mean, s.Max)
}

// WriteCSV writes the trace as "index,cpu" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "cpu_cores"}); err != nil {
		return err
	}
	for i, v := range t.Values {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(v, 'f', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. The interval must be
// supplied by the caller since CSV rows carry only sample indices.
func ReadCSV(r io.Reader, name string, interval time.Duration) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, errors.New("trace: empty csv")
	}
	start := 0
	if len(rows[0]) >= 2 && rows[0][1] == "cpu_cores" {
		start = 1
	}
	values := make([]float64, 0, len(rows)-start)
	for _, row := range rows[start:] {
		if len(row) < 2 {
			return nil, fmt.Errorf("trace: short csv row %v", row)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: parsing %q: %w", row[1], err)
		}
		values = append(values, v)
	}
	return &Trace{Name: name, Interval: interval, Values: values}, nil
}

// jsonTrace is the serialised representation used by MarshalJSON.
type jsonTrace struct {
	Name       string    `json:"name"`
	IntervalMS int64     `json:"interval_ms"`
	Values     []float64 `json:"values"`
}

// MarshalJSON encodes the trace with its interval in milliseconds.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTrace{
		Name:       t.Name,
		IntervalMS: t.Interval.Milliseconds(),
		Values:     t.Values,
	})
}

// UnmarshalJSON decodes a trace written by MarshalJSON.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var jt jsonTrace
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	if jt.IntervalMS <= 0 {
		return errors.New("trace: non-positive interval in JSON")
	}
	t.Name = jt.Name
	t.Interval = time.Duration(jt.IntervalMS) * time.Millisecond
	t.Values = jt.Values
	return nil
}
