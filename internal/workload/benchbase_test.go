package workload

import (
	"math"
	"testing"
	"time"

	"caasper/internal/stats"
)

func TestMixMeanCPUSeconds(t *testing.T) {
	m := Mix{
		{Class: TxnClass{Name: "a", CPUSeconds: 1}, Weight: 1},
		{Class: TxnClass{Name: "b", CPUSeconds: 3}, Weight: 1},
	}
	if got := m.MeanCPUSeconds(); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := (Mix{}).MeanCPUSeconds(); got != 0 {
		t.Errorf("empty mix mean = %v", got)
	}
}

func TestMixWriteFraction(t *testing.T) {
	m := Mix{
		{Class: TxnClass{Name: "w", Write: true}, Weight: 3},
		{Class: TxnClass{Name: "r", Write: false}, Weight: 1},
	}
	if got := m.WriteFraction(); got != 0.75 {
		t.Errorf("write fraction = %v", got)
	}
	if got := (Mix{}).WriteFraction(); got != 0 {
		t.Errorf("empty mix = %v", got)
	}
}

func TestMixPickRespectsWeights(t *testing.T) {
	m := Mix{
		{Class: TxnClass{Name: "common"}, Weight: 90},
		{Class: TxnClass{Name: "rare"}, Weight: 10},
	}
	rng := stats.NewRNG(1)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[m.Pick(rng).Name]++
	}
	frac := float64(counts["common"]) / 10000
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("common picked %.1f%%, want ≈90%%", frac*100)
	}
}

func TestStandardMixes(t *testing.T) {
	tpcc := TPCCMix()
	if len(tpcc) != 5 {
		t.Errorf("TPC-C classes = %d", len(tpcc))
	}
	// Canonical TPC-C is write-heavy: NewOrder+Payment+Delivery = 92%.
	if wf := tpcc.WriteFraction(); math.Abs(wf-0.92) > 1e-9 {
		t.Errorf("TPC-C write fraction = %v, want 0.92", wf)
	}
	tpch := TPCHMix()
	if wf := tpch.WriteFraction(); wf != 0 {
		t.Errorf("TPC-H should be read-only, got %v", wf)
	}
	// TPC-H queries are orders of magnitude heavier than OLTP.
	if tpch.MeanCPUSeconds() < 50*tpcc.MeanCPUSeconds() {
		t.Error("TPC-H should be much heavier than TPC-C")
	}
	ycsb := YCSBMix()
	if wf := ycsb.WriteFraction(); wf != 0.5 {
		t.Errorf("YCSB write fraction = %v", wf)
	}
	if ycsb.MeanCPUSeconds() >= tpcc.MeanCPUSeconds() {
		t.Error("YCSB ops should be cheaper than TPC-C")
	}
	oltp := MixedOLTP()
	if len(oltp) != len(tpcc)+len(ycsb) {
		t.Errorf("MixedOLTP classes = %d", len(oltp))
	}
}

func TestRateForCores(t *testing.T) {
	mix := Mix{{Class: TxnClass{Name: "x", CPUSeconds: 0.01}, Weight: 1}}
	rate, err := RateForCores(mix, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 200 {
		t.Errorf("rate = %v, want 200 txn/s", rate)
	}
	if _, err := RateForCores(Mix{}, 2); err == nil {
		t.Error("zero-cost mix should error")
	}
}

func TestScheduleForCoresRoundTrip(t *testing.T) {
	mix := TPCCMix()
	demand := Constant(4)
	ls, err := ScheduleForCores("s", mix, demand, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	got := ls.CPUDemandPattern()(30)
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("round-trip demand = %v, want 4", got)
	}
	tr := ls.DemandTrace()
	if tr.Len() != 60 {
		t.Errorf("trace len = %d", tr.Len())
	}
	if math.Abs(stats.Mean(tr.Values)-4) > 1e-9 {
		t.Errorf("trace mean = %v", stats.Mean(tr.Values))
	}
}

func TestWorkdaySchedule(t *testing.T) {
	ls := WorkdaySchedule(1)
	if err := ls.Validate(); err != nil {
		t.Fatal(err)
	}
	if ls.Duration != 12*time.Hour {
		t.Errorf("duration = %v", ls.Duration)
	}
	// Middle phase should demand noticeably more CPU than edges — the
	// heavy phase uses the TPC-H mix so convert via rate ratios instead
	// of the schedule-level mix.
	lightRate := ls.Rate(60)
	heavyRate := ls.Rate(6 * 60)
	if heavyRate == lightRate {
		t.Error("phases should differ in rate")
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := &LoadSchedule{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Error("empty schedule should fail validation")
	}
	bad.Duration = time.Hour
	if err := bad.Validate(); err == nil {
		t.Error("empty mix should fail")
	}
	bad.Mix = TPCCMix()
	if err := bad.Validate(); err == nil {
		t.Error("nil rate should fail")
	}
	bad.Rate = Constant(1)
	if err := bad.Validate(); err != nil {
		t.Errorf("valid schedule failed: %v", err)
	}
}

func TestStitchRecreatesEnvelope(t *testing.T) {
	src := CustomerTrace(3)
	sw, err := Stitch(src, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Segments) == 0 {
		t.Fatal("no segments")
	}
	rec := sw.RecreatedTrace()
	if rec.Len() != src.Len() {
		t.Fatalf("recreated len %d != source %d", rec.Len(), src.Len())
	}
	// Per-segment means must match the source within tolerance.
	for _, seg := range sw.Segments {
		from := int(seg.Start / src.Interval)
		to := from + int(seg.Length/src.Interval)
		srcMean := stats.Mean(src.Window(from, to))
		recMean := stats.Mean(rec.Window(from, to))
		if math.Abs(srcMean-recMean) > 0.02*math.Max(1, srcMean) {
			t.Errorf("segment at %v: source mean %.3f, recreated %.3f", seg.Start, srcMean, recMean)
		}
	}
	// Overall means also line up.
	if sm, rm := stats.Mean(src.Values), stats.Mean(rec.Values); math.Abs(sm-rm) > 0.05*sm {
		t.Errorf("overall mean: source %.3f recreated %.3f", sm, rm)
	}
}

func TestStitchSegmentMixSelection(t *testing.T) {
	// A heavy flat plateau should map to TPC-H.
	flat := Render("flat", Constant(6), 2*time.Hour)
	sw, err := Stitch(flat, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range sw.Segments {
		if seg.MixName != "tpch" {
			t.Errorf("heavy plateau mapped to %s, want tpch", seg.MixName)
		}
	}
	// A light trace maps to OLTP.
	light := Render("light", Constant(2), 2*time.Hour)
	sw, err = Stitch(light, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range sw.Segments {
		if seg.MixName != "oltp" {
			t.Errorf("light segment mapped to %s, want oltp", seg.MixName)
		}
	}
}

func TestStitchErrors(t *testing.T) {
	if _, err := Stitch(nil, time.Hour); err == nil {
		t.Error("nil target should error")
	}
	src := Render("x", Constant(1), time.Hour)
	if _, err := Stitch(src, time.Second); err == nil {
		t.Error("segment shorter than interval should error")
	}
}

func TestStitchedSchedule(t *testing.T) {
	src := CustomerTrace(5)
	sw, err := Stitch(src, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ls := sw.Schedule()
	if err := ls.Validate(); err != nil {
		t.Fatal(err)
	}
	if ls.Duration != src.Duration() {
		t.Errorf("schedule duration = %v", ls.Duration)
	}
	// Rate at any in-range minute should be one of the segment rates.
	r := ls.Rate(90)
	var found bool
	for _, seg := range sw.Segments {
		if math.Abs(seg.RatePerSec-r) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Errorf("rate %v not from any segment", r)
	}
}
