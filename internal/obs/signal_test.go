package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestHandleSignalFlushesNDJSON is the regression test for the
// interrupted -events run: before the shared helper, caasper-fleet and
// caasper-sim exited from the default signal disposition with the NDJSON
// sink's bufio buffer unflushed, truncating the audit stream mid-event.
// HandleSignal must leave a valid, complete NDJSON file and return the
// conventional 128+signum exit code.
func TestHandleSignalFlushesNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	cfg := CLIConfig{EventsPath: path}
	s, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Emit fewer bytes than the bufio buffer holds, so nothing reaches the
	// file until a flush — exactly the window the truncation bug lived in.
	for i := 0; i < 10; i++ {
		s.Events.Emit(Event{T: int64(i), Type: "test.sample", Fields: []Field{I("i", int64(i))}})
	}
	if raw, err := os.ReadFile(path); err != nil || len(raw) != 0 {
		t.Fatalf("precondition: events unexpectedly flushed early (%d bytes, err %v)", len(raw), err)
	}

	var out, errw bytes.Buffer
	if code := s.HandleSignal(syscall.SIGTERM, &out, &errw, "caasper-test"); code != 143 {
		t.Fatalf("exit code = %d, want 143 (128+SIGTERM)", code)
	}
	if !bytes.Contains(errw.Bytes(), []byte("caasper-test")) {
		t.Fatalf("diagnostic %q does not name the CLI", errw.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("line %d is not valid JSON after interrupt flush: %v\n%s", lines+1, err, sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 10 {
		t.Fatalf("flushed %d events, want all 10", lines)
	}

	// A racing normal exit must stay harmless (Finish is idempotent).
	if err := s.Finish(&out); err != nil {
		t.Fatalf("Finish after HandleSignal: %v", err)
	}
}

// TestFlushOnSignalStop pins that the returned stop function uninstalls
// the handler without firing it.
func TestFlushOnSignalStop(t *testing.T) {
	s, err := (&CLIConfig{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	stop := s.FlushOnSignal(&bytes.Buffer{}, "caasper-test")
	stop()
	stop() // double-stop must not panic the close
}

// TestStartPprofBindsSynchronously pins the fail-fast contract: a bad
// address errors before the run starts, and a good one serves pprof on
// the bound listener immediately.
func TestStartPprofBindsSynchronously(t *testing.T) {
	log := NewLogger(&bytes.Buffer{}, 0)
	if _, err := StartPprof("256.0.0.1:99999", log); err == nil {
		t.Fatal("StartPprof accepted an unbindable address")
	}
	addr, err := StartPprof("127.0.0.1:0", log)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof not reachable at %s: %v", addr, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
	if addrEmpty, err := StartPprof("", log); err != nil || addrEmpty != "" {
		t.Fatalf("empty addr must be a no-op, got (%q, %v)", addrEmpty, err)
	}
}
