package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/k8s"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/trace"
)

// runEngine executes one fleet run capturing the result and the encoded
// event stream.
func runEngine(t *testing.T, specs []TenantSpec, opts Options, engine string, workers int) (*Result, string) {
	t.Helper()
	mem := obs.NewMemorySink()
	opts.Engine = engine
	opts.Workers = workers
	opts.Events = mem
	res, err := Run(specs, opts)
	if err != nil {
		t.Fatalf("engine=%s workers=%d: %v", engine, workers, err)
	}
	return res, encodeStream(mem)
}

// TestEventEngineEquivalenceChaos16 is the tentpole contract on the same
// configuration scripts/fleet.sh pins as the chaos golden: a 16-tenant
// heterogeneous fleet on the small cluster with restart-fail, metrics-gap
// and sched-pressure faults all active. The event engine must reproduce
// the stepped engine bit for bit — results and NDJSON stream — at every
// worker count.
func TestEventEngineEquivalenceChaos16(t *testing.T) {
	spec, err := faults.ParseSpec("restart-fail:p=0.2,metrics-gap:p=0.05,sched-pressure:p=0.5:dur=60:cores=4")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Cluster = nil // reset per run below
	opts.Minutes = 240
	opts.FaultSpec = spec
	opts.FaultSeed = 7

	base, baseStream := runEngine(t, mixedFleet(t, 16), withSmallCluster(opts), EngineStepped, 1)
	if base.TotalScalings == 0 {
		t.Fatal("chaos fleet produced no scalings; traces too tame to prove anything")
	}
	for _, engine := range []string{EngineStepped, EngineEvents} {
		for _, w := range []int{1, 4, 8} {
			if engine == EngineStepped && w == 1 {
				continue
			}
			res, stream := runEngine(t, mixedFleet(t, 16), withSmallCluster(opts), engine, w)
			if !reflect.DeepEqual(base, res) {
				t.Errorf("engine=%s workers=%d: result diverged:\n%s\nvs\n%s",
					engine, w, base.Summary(), res.Summary())
			}
			if stream != baseStream {
				t.Errorf("engine=%s workers=%d: event stream diverged", engine, w)
			}
		}
	}
}

// withSmallCluster returns opts with a fresh small cluster (cluster state
// is mutated by a run, so each run needs its own).
func withSmallCluster(opts Options) Options {
	opts.Cluster = k8s.SmallCluster()
	return opts
}

// TestEventEngineEquivalenceRandomized64 fuzzes the equivalence over a
// 64-tenant fleet with a fixed seed: piecewise-constant and noisy traces,
// every recommender family (bulk-capable, steady-capable, per-minute-only,
// and one that implements neither optional interface), 1–2 replicas, and
// chaos faults. Any divergence between the engines' analytic and stepped
// arithmetic shows up as a result or stream mismatch.
func TestEventEngineEquivalenceRandomized64(t *testing.T) {
	base, baseStream := runEngine(t, randomized64Specs(t), randomized64Opts(t), EngineStepped, 1)
	for _, engine := range []string{EngineStepped, EngineEvents} {
		for _, w := range []int{1, 4, 8} {
			if engine == EngineStepped && w == 1 {
				continue
			}
			res, stream := runEngine(t, randomized64Specs(t), randomized64Opts(t), engine, w)
			if !reflect.DeepEqual(base, res) {
				t.Errorf("engine=%s workers=%d: result diverged:\n%s\nvs\n%s",
					engine, w, base.Summary(), res.Summary())
			}
			if stream != baseStream {
				t.Errorf("engine=%s workers=%d: event stream diverged", engine, w)
			}
		}
	}
}

const randomized64Minutes = 420

// randomized64Specs builds the 64-tenant fuzz fleet the engine- and
// sharding-equivalence tests share: piecewise-constant and noisy traces,
// every recommender family, 1–2 replicas. Deterministic (fixed seed), so
// repeated calls build identical fleets.
func randomized64Specs(t *testing.T) []TenantSpec {
	t.Helper()
	const minutes = randomized64Minutes

	mkTrace := func(rng *rand.Rand, name string) *trace.Trace {
		vs := make([]float64, minutes)
		if rng.Intn(2) == 0 {
			// Piecewise-constant: long flat runs — the event engine's
			// best case, exercising bulk append and steady sleep.
			level := 0.5 + rng.Float64()*4
			for i := 0; i < minutes; {
				runLen := 20 + rng.Intn(120)
				for j := 0; j < runLen && i < minutes; j++ {
					vs[i] = level
					i++
				}
				level = 0.5 + rng.Float64()*4
			}
		} else {
			// Noisy: every minute distinct — degenerates the event engine
			// to minute-length runs, exercising the fallback paths.
			for i := range vs {
				vs[i] = 0.5 + rng.Float64()*4
			}
		}
		return trace.New(name, time.Minute, vs)
	}

	rng := rand.New(rand.NewSource(42))
	specs := make([]TenantSpec, 0, 64)
	for i := 0; i < 64; i++ {
		tr := mkTrace(rng, fmt.Sprintf("r%02d", i))
		maxC := 8
		var factory func() (recommend.Recommender, error)
		switch i % 6 {
		case 0:
			factory = func() (recommend.Recommender, error) {
				return recommend.NewCaaSPERReactive(core.DefaultConfig(maxC), 40)
			}
		case 1:
			factory = func() (recommend.Recommender, error) {
				return baselines.NewKubernetesVPA(baselines.DefaultKubernetesVPAOptions(maxC))
			}
		case 2:
			factory = func() (recommend.Recommender, error) {
				return baselines.NewOpenShiftVPA(baselines.DefaultOpenShiftVPAOptions(maxC))
			}
		case 3:
			factory = func() (recommend.Recommender, error) {
				return baselines.NewAutopilot(baselines.DefaultAutopilotOptions(maxC))
			}
		case 4:
			factory = func() (recommend.Recommender, error) {
				return baselines.NewControl(4), nil
			}
		case 5:
			factory = stubFactory("stub", 2+i%4) // neither optional interface
		}
		specs = append(specs, TenantSpec{
			Name:           fmt.Sprintf("t%02d", i),
			Trace:          tr,
			NewRecommender: factory,
			InitialCores:   1 + rng.Intn(3),
			MinCores:       1,
			MaxCores:       maxC,
			Replicas:       1 + rng.Intn(2),
			MemGiBPerPod:   1,
		})
	}
	return specs
}

// randomized64Opts builds the fuzz fleet's options: sixteen wide nodes
// (so the 64 tenants partition into many node-disjoint groups) and the
// full chaos fault spec.
func randomized64Opts(t *testing.T) Options {
	t.Helper()
	spec, err := faults.ParseSpec("restart-fail:p=0.1,metrics-gap:p=0.03,sched-pressure:p=0.3:dur=45:cores=8")
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*k8s.Node, 16)
	for i := range nodes {
		nodes[i] = k8s.NewNode(fmt.Sprintf("node-%d", i), 64, 256)
	}
	cluster, err := k8s.NewCluster(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Cluster = cluster
	opts.Minutes = randomized64Minutes
	opts.FaultSpec = spec
	opts.FaultSeed = 11
	return opts
}

// countingRec wraps the reactive adapter, counting Recommend calls while
// transparently promoting its RunObserver/SteadyObserver methods.
type countingRec struct {
	*recommend.CaaSPERReactive
	calls *int64
}

func (c *countingRec) Recommend(cur int) int {
	atomic.AddInt64(c.calls, 1)
	return c.CaaSPERReactive.Recommend(cur)
}

// TestEventEngineSleepsSteadyTenants proves the wake queue actually skips
// decision ticks: on a two-level piecewise-constant trace held at "hold"
// by the MinCores clamp, the event engine must consult the recommender far
// less often than the stepped engine's once-per-tick — with bit-equal
// results.
func TestEventEngineSleepsSteadyTenants(t *testing.T) {
	const minutes = 600
	vs := make([]float64, minutes)
	for i := range vs {
		if i < 300 {
			vs[i] = 1
		} else {
			vs[i] = 3
		}
	}
	mkSpecs := func(calls *int64) []TenantSpec {
		return []TenantSpec{{
			Name:  "steady",
			Trace: trace.New("two-level", time.Minute, vs),
			NewRecommender: func() (recommend.Recommender, error) {
				r, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
				if err != nil {
					return nil, err
				}
				return &countingRec{CaaSPERReactive: r, calls: calls}, nil
			},
			InitialCores: 4,
			MinCores:     4, // clamp forces "hold" on the low plateau
			MaxCores:     8,
			Replicas:     1,
			MemGiBPerPod: 1,
		}}
	}

	run := func(engine string) (*Result, int64) {
		var calls int64
		opts := DefaultOptions()
		opts.Cluster = k8s.SmallCluster()
		opts.Minutes = minutes
		opts.Engine = engine
		res, err := Run(mkSpecs(&calls), opts)
		if err != nil {
			t.Fatalf("engine=%s: %v", engine, err)
		}
		return res, atomic.LoadInt64(&calls)
	}

	stepped, steppedCalls := run(EngineStepped)
	events, eventsCalls := run(EngineEvents)
	if !reflect.DeepEqual(stepped, events) {
		t.Errorf("results diverged:\n%s\nvs\n%s", stepped.Summary(), events.Summary())
	}
	// Stepped decides at every tick 10, 20, …, 590: 59 calls. The event
	// engine should need only the window warm-ups around the two plateaus.
	if steppedCalls != 59 {
		t.Fatalf("stepped made %d Recommend calls, want 59 (test premise broken)", steppedCalls)
	}
	if eventsCalls >= steppedCalls/2 {
		t.Errorf("event engine made %d Recommend calls vs stepped's %d; steady tenant never slept",
			eventsCalls, steppedCalls)
	}
}

// TestEventEngineEdgeCadences pins the engines together on awkward
// schedules: a warm-up beyond the horizon (no decisions at all), a cadence
// that does not divide the horizon, and a horizon ending exactly on a
// decision tick.
func TestEventEngineEdgeCadences(t *testing.T) {
	cases := []struct {
		name           string
		minutes, d, wu int
	}{
		{"no decisions", 120, 10, 1000},
		{"odd cadence", 100, 7, 13},
		{"horizon on tick", 90, 30, 30},
		{"every minute", 50, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkSpecs := func() []TenantSpec { return mixedFleet(t, 4) }
			opts := DefaultOptions()
			opts.Minutes = tc.minutes
			opts.DecisionEveryMinutes = tc.d
			opts.WarmupMinutes = tc.wu
			base, baseStream := runEngine(t, mkSpecs(), withSmallCluster(opts), EngineStepped, 1)
			res, stream := runEngine(t, mkSpecs(), withSmallCluster(opts), EngineEvents, 1)
			if !reflect.DeepEqual(base, res) {
				t.Errorf("result diverged:\n%s\nvs\n%s", base.Summary(), res.Summary())
			}
			if stream != baseStream {
				t.Errorf("event stream diverged")
			}
		})
	}
}

// TestEngineValidation: unknown engine names are rejected as config errors.
func TestEngineValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.Engine = "warp"
	if err := opts.Validate(); err == nil {
		t.Fatal("engine \"warp\" accepted")
	} else if !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("got %v, want ErrInvalidConfig", err)
	}
}
