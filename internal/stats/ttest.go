package stats

import (
	"errors"
	"math"
)

// TTestResult holds the outcome of a paired Student t-test.
type TTestResult struct {
	// T is the test statistic: mean(diff) / (sd(diff)/sqrt(n)).
	T float64
	// DF is the degrees of freedom (n - 1).
	DF int
	// P is the two-sided p-value.
	P float64
	// MeanDiff is the mean of the pairwise differences.
	MeanDiff float64
	// N is the number of pairs.
	N int
}

// Significant reports whether the test rejects the null hypothesis of equal
// means at significance level alpha (e.g. 0.05).
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// PairedTTest performs a two-sided paired Student t-test on samples a and b.
// The paper (§5, "Simulator Correctness") uses exactly this test to check
// that the decision series produced by the simulator and by live runs are
// statistically equivalent on average at alpha = 0.05: a high p-value means
// the simulator's decisions are indistinguishable from the live system's.
//
// If every pairwise difference is exactly zero, the statistic is defined as
// T = 0 with P = 1 (the samples are literally identical on average).
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, errors.New("stats: paired t-test requires equal-length samples")
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, errors.New("stats: paired t-test requires at least 2 pairs")
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	md := Mean(diffs)
	sd := StdDev(diffs)
	df := n - 1
	if sd == 0 {
		p := 1.0
		if md != 0 {
			p = 0.0 // identical spread but shifted: certainly different
		}
		return TTestResult{T: 0, DF: df, P: p, MeanDiff: md, N: n}, nil
	}
	t := md / (sd / math.Sqrt(float64(n)))
	p := 2 * studentTSF(math.Abs(t), float64(df))
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p, MeanDiff: md, N: n}, nil
}

// studentTSF returns P(T > t) for a Student t distribution with df degrees
// of freedom, via the regularised incomplete beta function:
//
//	P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2   for t ≥ 0.
func studentTSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularised incomplete beta function I_x(a, b)
// using the continued-fraction expansion from Numerical Recipes.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
