package k8s

import (
	"errors"

	"caasper/internal/recommend"
	"caasper/internal/stats"
)

// Scaler is the decision-enacting entity of the autoscaling loop (paper
// Figure 1, steps 5–6): it feeds fresh metric samples to the recommender,
// polls it on a fixed cadence, performs health and resource safety checks,
// and instructs the operator to enact accepted decisions.
//
// Per the paper's adaptation (§3.3, footnote 6), the scaler targets the
// *primary* replica's metrics: secondary replicas of a primary/secondary
// database see an asymmetric workload, so set-wide averaging (what stock
// VPA does for stateless replica sets) would dilute the signal.
type Scaler struct {
	// Rec is the pluggable recommender.
	Rec recommend.Recommender
	// Operator enacts resizes.
	Operator *Operator
	// Metrics is the metric source.
	Metrics *MetricsServer
	// DecisionEverySeconds is the recommendation cadence (600 s in the
	// experiments: resizes take minutes, deciding faster is pointless).
	DecisionEverySeconds int64
	// MinCores / MaxCores are the safety clamps ("we implemented logic
	// to prevent autoscaling below 2 cores", §3.3; the max is bounded by
	// node size and co-tenants, §6.2).
	MinCores, MaxCores int

	// ScalingsRequested counts accepted resize requests.
	ScalingsRequested int
	// DecisionSeries records the clamped recommendation at every
	// decision tick (holds included) for §5's simulator-vs-live t-test.
	DecisionSeries []float64

	cursor       int // metric samples already fed to the recommender
	nextDecision int64
}

// NewScaler wires the loop together.
func NewScaler(rec recommend.Recommender, op *Operator, ms *MetricsServer, decisionEverySeconds int64, minCores, maxCores int) (*Scaler, error) {
	if rec == nil || op == nil || ms == nil {
		return nil, errors.New("k8s: scaler needs recommender, operator and metrics")
	}
	if decisionEverySeconds < 1 {
		return nil, errors.New("k8s: decision cadence must be ≥ 1s")
	}
	if minCores < 1 || maxCores < minCores {
		return nil, errors.New("k8s: bad core bounds")
	}
	return &Scaler{
		Rec:                  rec,
		Operator:             op,
		Metrics:              ms,
		DecisionEverySeconds: decisionEverySeconds,
		MinCores:             minCores,
		MaxCores:             maxCores,
		nextDecision:         decisionEverySeconds,
	}, nil
}

// Tick advances the scaler at time now (seconds). It pushes any newly
// closed metric samples of the primary into the recommender and, at the
// decision cadence, asks for and possibly enacts a recommendation.
func (s *Scaler) Tick(now int64) {
	primary := s.Operator.Set.Primary()
	if primary == nil {
		return
	}
	// Feed newly closed samples. The cursor survives failovers: the
	// series switches to the new primary's history from its next sample
	// on, mirroring how the live pipeline re-targets its metric query.
	series := s.Metrics.UsageSeries(primary.Name)
	for s.cursor < len(series) {
		s.Rec.Observe(s.cursor, series[s.cursor])
		s.cursor++
	}

	if now < s.nextDecision {
		return
	}
	s.nextDecision = now + s.DecisionEverySeconds

	// Health check: never stack decisions on an in-flight update.
	if s.Operator.Updating() {
		return
	}
	current := s.Operator.Set.CPULimit()
	target := stats.ClampInt(s.Rec.Recommend(current), s.MinCores, s.MaxCores)
	s.DecisionSeries = append(s.DecisionSeries, float64(target))
	if target == current {
		return
	}
	if err := s.Operator.RequestResize(target, now); err == nil {
		s.ScalingsRequested++
	}
}
