package main

import (
	"strings"
	"testing"
	"time"

	"caasper"
)

func TestLoadTraceSelection(t *testing.T) {
	if _, err := loadTrace("", "", "", 1); err == nil {
		t.Error("no source should error")
	}
	if _, err := loadTrace("nope", "", "", 1); err == nil {
		t.Error("unknown workload should error")
	}
	tr, err := loadTrace("workday12h", "", "", 1)
	if err != nil || tr.Len() == 0 {
		t.Errorf("workload load failed: %v", err)
	}
	tr, err = loadTrace("", "c_1", "", 1)
	if err != nil || tr.Len() == 0 {
		t.Errorf("alibaba load failed: %v", err)
	}
	if _, err := loadTrace("", "", "/nonexistent/file.csv", 1); err == nil {
		t.Error("missing trace file should error")
	}
}

func TestBuildRecommenderSelection(t *testing.T) {
	names := []string{"caasper", "caasper-proactive", "vpa", "openshift", "autopilot", "control"}
	for _, n := range names {
		rec, err := buildRecommender(n, 16, 8, 40, 60, 1440)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if rec.Name() == "" {
			t.Errorf("%s: empty name", n)
		}
	}
	if _, err := buildRecommender("bogus", 16, 8, 40, 60, 1440); err == nil {
		t.Error("unknown recommender should error")
	}
}

func TestKnownWorkloadsLists(t *testing.T) {
	s := knownWorkloads()
	if !strings.Contains(s, "workday12h") || !strings.Contains(s, "step62h") {
		t.Errorf("known workloads = %q", s)
	}
}

func TestAsciiChart(t *testing.T) {
	demand := []float64{1, 2, 3, 4, 5, 6}
	limits := []float64{6, 6, 6, 6, 6, 6}
	out := asciiChart(demand, limits, 3, 5)
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("chart missing marks:\n%s", out)
	}
	if !strings.Contains(out, "max 6.0") {
		t.Errorf("chart header wrong:\n%s", out)
	}
	if asciiChart(nil, nil, 10, 5) != "" {
		t.Error("empty chart should be empty")
	}
	// All-zero series must not divide by zero.
	if out := asciiChart([]float64{0, 0}, []float64{0, 0}, 2, 3); out == "" {
		t.Error("zero chart should still render")
	}
}

func TestEndToEndSimViaHelpers(t *testing.T) {
	tr, err := loadTrace("workday12h", "", "", 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := buildRecommender("caasper", 8, 0, 40, 60, 720)
	if err != nil {
		t.Fatal(err)
	}
	opts := caasper.DefaultSimOptions(6, 8)
	res, err := caasper.Simulate(tr, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Minutes != int(12*time.Hour/time.Minute) {
		t.Errorf("minutes = %d", res.Minutes)
	}
}
