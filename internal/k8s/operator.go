package k8s

import (
	"errors"
	"fmt"
	"sort"

	"caasper/internal/obs"
)

// Operator coordinates a stateful set's state transitions (paper Figure 1,
// step 1): role management, failover, and — central to this repository —
// rolling updates with restart (§2.2): a resize restarts pods one at a
// time, secondaries first, the initial primary last, each restart evicting
// and rescheduling the pod with its new resource spec.
//
// The operator is tick-driven: call Tick once per simulated second.
type Operator struct {
	// Set is the managed stateful set.
	Set *StatefulSet
	// Cluster schedules restarted pods.
	Cluster *Cluster
	// RestartSeconds is how long one pod's deallocate/reschedule/restart
	// cycle takes. Database A's strict HA flow takes ~300 s per pod (a
	// 3-replica resize spans the paper's 5–15 minute window); Database B
	// ~120 s.
	RestartSeconds int64

	// InPlace enables the Kubernetes in-place pod resize feature the
	// paper evaluates as future work (§2.2 footnote 4, §6.2 footnote 10,
	// §8): limits change without deallocating pods, so resizes complete
	// in one tick with no restarts, no dropped connections and no
	// failover. The paper reports that with this feature "neither the
	// scale-up lag nor failed transactions occur".
	InPlace bool

	// OnPodDown, OnPodUp and OnFailover, when non-nil, notify the
	// application layer (the database simulator drops the pod's
	// connections on restart, matching the paper's "user connections
	// are interrupted when a pod instance restarts").
	OnPodDown  func(p *Pod)
	OnPodUp    func(p *Pod)
	OnFailover func(oldPrimary, newPrimary *Pod)

	// FailoverCount counts primary hand-offs (observability).
	FailoverCount int
	// ResizeCount counts completed rolling updates.
	ResizeCount int

	// Events, when non-nil and enabled, receives the operator's
	// structured lifecycle stream keyed on simulated seconds:
	// "k8s.resize-requested" / "k8s.resize-rejected", "k8s.rolling-phase"
	// per pod transition, "k8s.restart-disruption" per eviction,
	// "k8s.failover" per hand-off and a "k8s.resize-completed" span event
	// carrying the update's simulated duration.
	Events obs.Sink
	// Stats, when non-nil, receives runtime counters (pod restarts,
	// failovers, completed resizes).
	Stats *obs.Registry

	// rolling-update state
	updating    bool
	started     bool     // first restart of the update has begun
	targetCores int
	resizeSpan  obs.Span // open resize interval, ends at completion
	queue       []*Pod   // pods still to restart, in restart order
	inFlight    *Pod     // pod currently restarting
	// EffectiveAt records when the most recent resize became effective
	// for the primary (users "experience" the new allocation).
	EffectiveAt int64
}

// NewOperator builds an operator.
func NewOperator(set *StatefulSet, cluster *Cluster, restartSeconds int64) (*Operator, error) {
	if set == nil || cluster == nil {
		return nil, errors.New("k8s: operator needs a set and a cluster")
	}
	if restartSeconds < 1 {
		return nil, errors.New("k8s: restartSeconds must be ≥ 1")
	}
	return &Operator{Set: set, Cluster: cluster, RestartSeconds: restartSeconds}, nil
}

// Updating reports whether a rolling update is in flight.
func (o *Operator) Updating() bool { return o.updating }

// TargetCores returns the in-flight resize target (0 when idle).
func (o *Operator) TargetCores() int {
	if !o.updating {
		return 0
	}
	return o.targetCores
}

// ResizeDuration returns the expected wall time of a full rolling update.
func (o *Operator) ResizeDuration() int64 {
	return o.RestartSeconds * int64(len(o.Set.Pods))
}

// emit sends one lifecycle event when the sink is enabled.
func (o *Operator) emit(now int64, typ string, fields ...obs.Field) {
	if obs.Enabled(o.Events) {
		o.Events.Emit(obs.Event{T: now, Type: typ, Fields: fields})
	}
}

// RequestResize begins a rolling update to the new whole-core limit. It
// fails while another update is in flight (the scaler serializes on this)
// or when the target equals the current limit.
func (o *Operator) RequestResize(targetCores int, now int64) error {
	if o.updating {
		o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", "update in flight"))
		return fmt.Errorf("k8s: resize to %d rejected: update to %d in flight", targetCores, o.targetCores)
	}
	if targetCores < 1 {
		o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", "invalid target"))
		return fmt.Errorf("k8s: invalid target %d", targetCores)
	}
	from := o.Set.CPULimit()
	if targetCores == from {
		o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", "target equals current limit"))
		return fmt.Errorf("k8s: target %d equals current limit", targetCores)
	}
	if o.InPlace {
		// In-place resize: patch every pod's spec without a restart.
		// Node request accounting moves with the spec; a scale-up that
		// no longer fits its node would be rejected by the real
		// scheduler too, so reject it here rather than over-commit.
		o.emit(now, "k8s.resize-requested",
			obs.I("from", int64(from)), obs.I("to", int64(targetCores)), obs.S("mode", "in-place"))
		if err := o.resizeInPlace(targetCores); err != nil {
			o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", err.Error()))
			return err
		}
		o.ResizeCount++
		o.EffectiveAt = now
		o.Stats.Counter("k8s.resizes_completed").Inc()
		o.emit(now, "k8s.resize-completed",
			obs.I("dur", 0), obs.I("to", int64(targetCores)), obs.S("mode", "in-place"))
		return nil
	}
	o.updating = true
	o.started = false
	o.targetCores = targetCores
	o.emit(now, "k8s.resize-requested",
		obs.I("from", int64(from)), obs.I("to", int64(targetCores)),
		obs.S("mode", "rolling"), obs.I("pods", int64(len(o.Set.Pods))))
	o.resizeSpan = obs.StartSpan(o.Events, "k8s.resize-completed", now)

	// Restart order: secondaries by ordinal, the current primary last
	// (§3.1: "the operator policy prioritizes updating the initial
	// primary replica last to avoid additional client failovers").
	var secondaries, primaries []*Pod
	for _, p := range o.Set.Pods {
		if p.Role == RolePrimary {
			primaries = append(primaries, p)
		} else {
			secondaries = append(secondaries, p)
		}
	}
	sort.Slice(secondaries, func(i, j int) bool { return secondaries[i].Ordinal < secondaries[j].Ordinal })
	o.queue = append(secondaries, primaries...)
	return nil
}

// resizeInPlace patches every pod's spec through the cluster's in-place
// resize path, validating feasibility pod by pod. On a mid-way failure it
// rolls the already-patched pods back so the set never ends up split.
func (o *Operator) resizeInPlace(targetCores int) error {
	spec := NewGuaranteedSpec(targetCores, o.Set.MemGiBPerPod)
	var done []*Pod
	var prev []ContainerSpec
	for _, p := range o.Set.Pods {
		old := p.Spec
		if err := o.Cluster.ResizeInPlace(p, spec); err != nil {
			for i := len(done) - 1; i >= 0; i-- {
				// Shrinking back to the previous spec always fits.
				if rbErr := o.Cluster.ResizeInPlace(done[i], prev[i]); rbErr != nil {
					// Rollback of a shrink cannot fail; if it somehow
					// does, surface both errors loudly.
					return fmt.Errorf("k8s: in-place rollback failed: %v (original: %w)", rbErr, err)
				}
			}
			return err
		}
		done = append(done, p)
		prev = append(prev, old)
	}
	return nil
}

// Tick advances the rolling-update state machine by one step at time now
// (seconds). It finishes at most one restart and starts at most one per
// call; with one call per simulated second this matches the serialized
// per-pod flow.
func (o *Operator) Tick(now int64) {
	if !o.updating {
		return
	}

	// Complete an in-flight restart.
	if o.inFlight != nil && now >= o.inFlight.RestartingUntil {
		p := o.inFlight
		if err := o.Cluster.Schedule(p); err != nil {
			// No capacity right now: retry next tick. Real operators
			// back off; one-second retries are equivalent here.
			return
		}
		p.Phase = PhaseRunning
		p.Restarts++
		o.inFlight = nil
		o.Stats.Counter("k8s.pod_restarts").Inc()
		o.emit(now, "k8s.rolling-phase",
			obs.S("pod", p.Name), obs.S("phase", "running"), obs.I("restarts", int64(p.Restarts)))
		if o.OnPodUp != nil {
			o.OnPodUp(p)
		}
	}
	if o.inFlight != nil {
		return // still restarting
	}

	// Start the next restart, or finish the update.
	if len(o.queue) == 0 {
		o.updating = false
		o.ResizeCount++
		o.EffectiveAt = now
		o.Stats.Counter("k8s.resizes_completed").Inc()
		o.resizeSpan.End(now, obs.I("to", int64(o.targetCores)), obs.S("mode", "rolling"))
		o.resizeSpan = obs.Span{}
		return
	}
	if !o.started {
		o.started = true
		o.emit(now, "k8s.resize-started",
			obs.I("to", int64(o.targetCores)), obs.I("pods", int64(len(o.queue))))
	}
	p := o.queue[0]
	o.queue = o.queue[1:]

	// Restarting the primary forces a failover to an updated secondary
	// first — the single, final failover the paper's ordering is
	// designed to guarantee.
	if p.Role == RolePrimary {
		if s := o.pickFailoverTarget(); s != nil {
			p.Role = RoleSecondary
			s.Role = RolePrimary
			o.FailoverCount++
			o.Stats.Counter("k8s.failovers").Inc()
			o.emit(now, "k8s.failover", obs.S("from", p.Name), obs.S("to", s.Name))
			if o.OnFailover != nil {
				o.OnFailover(p, s)
			}
		}
	}

	o.Cluster.Evict(p)
	o.emit(now, "k8s.restart-disruption",
		obs.S("pod", p.Name), obs.S("role", string(p.Role)), obs.I("until", now+o.RestartSeconds))
	if o.OnPodDown != nil {
		o.OnPodDown(p)
	}
	p.Phase = PhaseRestarting
	p.Spec = NewGuaranteedSpec(o.targetCores, o.Set.MemGiBPerPod)
	p.RestartingUntil = now + o.RestartSeconds
	o.inFlight = p
	o.emit(now, "k8s.rolling-phase",
		obs.S("pod", p.Name), obs.S("phase", "restarting"), obs.I("cores", int64(o.targetCores)))
}

// pickFailoverTarget chooses the running secondary with the lowest
// ordinal (deterministic; already resized at this point in the queue).
func (o *Operator) pickFailoverTarget() *Pod {
	var best *Pod
	for _, p := range o.Set.Pods {
		if p.Running() && p.Role == RoleSecondary {
			if best == nil || p.Ordinal < best.Ordinal {
				best = p
			}
		}
	}
	return best
}
