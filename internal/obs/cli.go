package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIConfig binds the observability flags every CLI shares:
//
//	-events <file>  write the NDJSON structured event stream (- = stderr)
//	-obs            print the runtime metrics summary table at exit
//	-v <level>      log verbosity (0 quiet, 1 progress, 2 debug)
//
// Register the flags, flag.Parse, then Start to materialize a Session.
type CLIConfig struct {
	EventsPath string
	Summary    bool
	Verbosity  int
}

// Register installs the shared flags on fs.
func (c *CLIConfig) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.EventsPath, "events", "", "write the structured NDJSON event stream to this file (\"-\" for stderr)")
	fs.BoolVar(&c.Summary, "obs", false, "print the runtime observability summary at exit")
	fs.IntVar(&c.Verbosity, "v", 0, "log verbosity: 0 quiet, 1 progress, 2 debug")
}

// Session is one CLI run's materialized telemetry: an event sink (Discard
// unless -events was given), a metrics registry and a leveled logger.
// Close it (or Finish it) before exit so buffered events reach the file.
type Session struct {
	Events  Sink
	Metrics *Registry
	Log     *Logger

	cfg    CLIConfig
	ndjson *NDJSONSink
	file   *os.File
	closed bool
}

// Start opens the session: the events file is created (truncated) when
// requested, and the logger writes to stderr so it never corrupts a CLI's
// stdout tables.
func (c *CLIConfig) Start() (*Session, error) {
	s := &Session{
		Events:  Discard,
		Metrics: NewRegistry(),
		Log:     NewLogger(os.Stderr, c.Verbosity),
		cfg:     *c,
	}
	switch c.EventsPath {
	case "":
	case "-":
		s.ndjson = NewNDJSONSink(os.Stderr)
		s.Events = s.ndjson
	default:
		f, err := os.Create(c.EventsPath)
		if err != nil {
			return nil, fmt.Errorf("obs: opening events file: %w", err)
		}
		s.file = f
		s.ndjson = NewNDJSONSink(f)
		s.Events = s.ndjson
	}
	return s, nil
}

// Close flushes the event sink and closes the events file. It is
// idempotent, so a signal handler and a normal exit path can both call it.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.ndjson != nil {
		err = s.ndjson.Flush()
		s.Log.Infof("events: %d records written", s.ndjson.Count())
	}
	if s.file != nil {
		if cerr := s.file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Finish closes the session and, when -obs was given, prints the metrics
// summary table to w. This is every CLI's last call before returning.
func (s *Session) Finish(w io.Writer) error {
	if s == nil {
		return nil
	}
	err := s.Close()
	if s.cfg.Summary {
		fmt.Fprintln(w)
		fmt.Fprint(w, s.Metrics.Summary())
	}
	return err
}
