package dbsim

import (
	"testing"
	"time"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/recommend"
	"caasper/internal/workload"
)

func shortSchedule(seed uint64) *workload.LoadSchedule {
	// A compressed workday: 30 min light, 60 min heavy, 30 min light.
	light := workload.MixedOLTP()
	heavy := workload.TPCHMix()
	lightRate, _ := workload.RateForCores(light, 1.8)
	heavyRate, _ := workload.RateForCores(heavy, 5.2)
	rate := workload.Piecewise(
		workload.Segment{Pattern: workload.Constant(lightRate), Minutes: 30},
		workload.Segment{Pattern: workload.Constant(heavyRate), Minutes: 60},
		workload.Segment{Pattern: workload.Constant(lightRate), Minutes: 30},
	)
	return &workload.LoadSchedule{
		Name: "mini-workday",
		Mix:  light,
		Phases: []workload.MixPhase{
			{Mix: light, Minutes: 30},
			{Mix: heavy, Minutes: 60},
			{Mix: light, Minutes: 30},
		},
		Rate:     rate,
		Duration: 2 * time.Hour,
	}
}

func TestRunLiveValidation(t *testing.T) {
	rec := baselines.NewControl(4)
	if _, err := RunLive(nil, rec, DatabaseAOptions(4, 8)); err == nil {
		t.Error("nil schedule should fail")
	}
	if _, err := RunLive(shortSchedule(1), nil, DatabaseAOptions(4, 8)); err == nil {
		t.Error("nil recommender should fail")
	}
	bad := DatabaseAOptions(4, 8)
	bad.Replicas = 0
	if _, err := RunLive(shortSchedule(1), rec, bad); err == nil {
		t.Error("bad replicas should fail")
	}
}

func TestRunLiveControl(t *testing.T) {
	res, err := RunLive(shortSchedule(1), baselines.NewControl(6), DatabaseAOptions(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumScalings != 0 {
		t.Errorf("control scalings = %d", res.NumScalings)
	}
	if res.DB.CompletedTxns == 0 {
		t.Error("no transactions completed")
	}
	if res.DB.DroppedTxns > res.DB.CompletedTxns*0.01 {
		t.Errorf("control run dropped %v of %v txns", res.DB.DroppedTxns, res.DB.CompletedTxns)
	}
	// 2 hours at 6 cores = 12 billed core-hours.
	if res.BilledCorePeriods != 12 {
		t.Errorf("billed = %v, want 12", res.BilledCorePeriods)
	}
	if len(res.LimitsPerMinute) != 120 {
		t.Errorf("minutes = %d", len(res.LimitsPerMinute))
	}
	if res.SumSlack <= 0 {
		t.Error("control run should have slack")
	}
}

func TestRunLiveCaaSPERScalesAndSaves(t *testing.T) {
	sched := shortSchedule(2)
	control, err := RunLive(sched, baselines.NewControl(6), DatabaseAOptions(6, 6))
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig(6)
	rec, err := recommend.NewCaaSPERReactive(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	opts := DatabaseAOptions(2, 6)
	opts.RestartSecondsPerPod = 120 // compressed run: faster resizes
	res, err := RunLive(sched, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumScalings == 0 {
		t.Fatal("CaaSPER never scaled")
	}
	// It must scale up for the heavy phase...
	peak := 0.0
	for _, l := range res.LimitsPerMinute {
		if l > peak {
			peak = l
		}
	}
	if peak < 5.5 {
		t.Errorf("peak limit = %v, want ≥6 for the heavy phase", peak)
	}
	// ...and cost less than the control.
	if ratio := res.CostRatioVs(control); ratio >= 1 {
		t.Errorf("cost ratio = %v, want < 1", ratio)
	}
	// Throughput within a few percent of control (retries enabled).
	if res.DB.CompletedTxns < control.DB.CompletedTxns*0.9 {
		t.Errorf("throughput %v vs control %v", res.DB.CompletedTxns, control.DB.CompletedTxns)
	}
	// Slack reduced.
	if red := res.SlackReductionVs(control); red <= 0 {
		t.Errorf("slack reduction = %v", red)
	}
	// Rolling updates imply at least one failover (primary restart).
	if res.Failovers == 0 {
		t.Error("expected at least one failover across resizes")
	}
}

func TestRunLiveDeterminism(t *testing.T) {
	sched := shortSchedule(3)
	mk := func() *LiveResult {
		rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(6), 40)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunLive(sched, rec, DatabaseAOptions(3, 6))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.DB.CompletedTxns != b.DB.CompletedTxns || a.NumScalings != b.NumScalings ||
		a.BilledCorePeriods != b.BilledCorePeriods {
		t.Error("live runs must be deterministic")
	}
	for i := range a.DecisionSeries {
		if a.DecisionSeries[i] != b.DecisionSeries[i] {
			t.Fatal("decision series diverged")
		}
	}
}

func TestDatabaseOptionPresets(t *testing.T) {
	a := DatabaseAOptions(4, 8)
	if a.Replicas != 3 || a.RestartSecondsPerPod != 300 {
		t.Errorf("Database A preset: %+v", a)
	}
	// Full resize ≈ 15 min: within the paper's 5–15 minute window.
	if total := a.RestartSecondsPerPod * int64(a.Replicas); total != 900 {
		t.Errorf("Database A resize = %ds", total)
	}
	b := DatabaseBOptions(4, 8)
	if b.Replicas != 2 || b.RestartSecondsPerPod != 120 {
		t.Errorf("Database B preset: %+v", b)
	}
	// Full resize ≈ 4 min: within the 3–5 minute window.
	if total := b.RestartSecondsPerPod * int64(b.Replicas); total != 240 {
		t.Errorf("Database B resize = %ds", total)
	}
}

func TestLiveResultRatios(t *testing.T) {
	a := &LiveResult{BilledCorePeriods: 30, SumSlack: 25}
	b := &LiveResult{BilledCorePeriods: 60, SumSlack: 100}
	if got := a.CostRatioVs(b); got != 0.5 {
		t.Errorf("cost ratio = %v", got)
	}
	if got := a.SlackReductionVs(b); got != 0.75 {
		t.Errorf("slack reduction = %v", got)
	}
	zero := &LiveResult{}
	if a.CostRatioVs(zero) != 0 || a.SlackReductionVs(zero) != 0 {
		t.Error("zero baseline should yield 0")
	}
}
