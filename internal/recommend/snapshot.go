package recommend

import (
	"fmt"

	"caasper/internal/core"
)

// State is the serialisable form of a recommender adapter's mutable
// state: the retained observation window, the logical history length and
// the decision-scratch memo. It is everything a checkpoint must carry so
// a restored adapter's subsequent decisions are bit-identical to one
// that never stopped — the pinned guarantee of the serve layer's
// snapshot/restore test.
type State struct {
	// Window holds the retained usage samples, oldest first.
	Window []float64 `json:"window,omitempty"`
	// Total is the number of samples ever observed (≥ len(Window); the
	// proactive warm-up gates on this, not on the retained length).
	Total int `json:"total"`
	// Memo is the Algorithm 1 raw-window memo and lazy-explanation
	// template of the adapter's scratch.
	Memo core.MemoState `json:"memo"`
	// LastDecision is the most recent full decision, so interpretability
	// surfaces keep answering across a restart.
	LastDecision core.Decision `json:"last_decision"`
	// LastUsedForecast mirrors CaaSPERProactive.LastUsedForecast
	// (always false for the reactive adapter).
	LastUsedForecast bool `json:"last_used_forecast,omitempty"`
}

// StateSnapshotter is the optional checkpoint surface of a recommender:
// SnapshotState serialises the mutable state, RestoreState rebuilds it on
// a freshly constructed adapter of the same configuration. Policies that
// do not implement it are restored cold (empty window) — correct but not
// bit-identical mid-window, which is why the serve layer reports the
// capability per tenant.
type StateSnapshotter interface {
	// SnapshotState copies out the adapter's mutable state.
	SnapshotState() State
	// RestoreState rebuilds the adapter's mutable state from a snapshot
	// taken on an identically configured adapter.
	RestoreState(State) error
}

// DecisionReporter is implemented by recommenders that expose their most
// recent full decision (branch, slope, target) rather than only the bare
// Recommend integer — the serve layer's decision records are built
// from it.
type DecisionReporter interface {
	// LastFullDecision returns the most recent decision with its
	// intermediate state (zero value before the first decision).
	LastFullDecision() core.Decision
}

// SnapshotState implements StateSnapshotter.
func (c *CaaSPERReactive) SnapshotState() State {
	s := State{Memo: c.scratch.MemoSnapshot(), LastDecision: c.LastDecision}
	s.Window, s.Total = c.history.Snapshot(nil)
	return s
}

// RestoreState implements StateSnapshotter.
func (c *CaaSPERReactive) RestoreState(s State) error {
	if err := c.history.Restore(s.Window, s.Total); err != nil {
		return fmt.Errorf("recommend: reactive restore: %w", err)
	}
	c.algo.RestoreMemo(&c.scratch, s.Memo)
	c.LastDecision = s.LastDecision
	return nil
}

// LastFullDecision implements DecisionReporter.
func (c *CaaSPERReactive) LastFullDecision() core.Decision { return c.LastDecision }

// SnapshotState implements StateSnapshotter.
func (c *CaaSPERProactive) SnapshotState() State {
	s := State{
		Memo:             c.scratch.MemoSnapshot(),
		LastDecision:     c.LastDecision,
		LastUsedForecast: c.LastUsedForecast,
	}
	s.Window, s.Total = c.history.Snapshot(nil)
	return s
}

// RestoreState implements StateSnapshotter. The forecaster itself is
// stateless between decisions (it re-reads the history each tick), so the
// window plus memo is the complete mutable state.
func (c *CaaSPERProactive) RestoreState(s State) error {
	if err := c.history.Restore(s.Window, s.Total); err != nil {
		return fmt.Errorf("recommend: proactive restore: %w", err)
	}
	c.pro.Reactive.RestoreMemo(&c.scratch, s.Memo)
	c.LastDecision = s.LastDecision
	c.LastUsedForecast = s.LastUsedForecast
	return nil
}

// LastFullDecision implements DecisionReporter.
func (c *CaaSPERProactive) LastFullDecision() core.Decision { return c.LastDecision }
