package experiments

import (
	"fmt"
	"strings"
	"time"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/dbsim"
	"caasper/internal/k8s"
	"caasper/internal/recommend"
	"caasper/internal/workload"
)

// Figure11Result holds the §6.2 recreated-customer-trace evaluation
// (Figure 11 / Table 2): a Stitcher-recreated Database A workload bounded
// to 6 cores, run under a prefer-performance and a prefer-savings tuning,
// with throttled transactions NOT retried.
type Figure11Result struct {
	Control, PreferPerf, PreferSavings *dbsim.LiveResult
	// PerfCostRatio / SavingsCostRatio vs control (paper: 0.74x total
	// and ~0.49x total).
	PerfCostRatio, SavingsCostRatio float64
	// PerfThroughputRatio / SavingsThroughputRatio vs control (paper:
	// 1.0 and 0.9 — "saving half the cost shows only a 10% throughput
	// impact").
	PerfThroughputRatio, SavingsThroughputRatio float64
	Report                                      string
}

// Figure11Table2 reproduces Figure 11 and Table 2. The customer trace is
// recreated Stitcher-style from benchmark mixes; the two CaaSPER runs are
// tuned per §5 for the two customer preferences: the performance tuning
// holds a 4-core floor and a generous head-room buffer, the savings
// tuning allows the mandatory 2-core minimum and trims slack aggressively.
func Figure11Table2(seed uint64) (*Figure11Result, error) {
	source := workload.CustomerTrace(seed)
	stitched, err := workload.Stitch(source, 30*time.Minute)
	if err != nil {
		return nil, err
	}
	sched := stitched.Schedule()

	// §6.2: the small cluster "had other customer-required services
	// running, bounding the limits to a max of 6 cores". Co-tenant pods
	// occupy 2 cores of each 8-core node, so a replica can never grow
	// past 6 — the bound emerges from capacity, and the scaler's clamp
	// matches it.
	const maxCores = 6
	mkOpts := func() (dbsim.HarnessOptions, error) {
		cluster := k8s.SmallCluster()
		if err := k8s.AddCoTenants(cluster, 6, 2, 8); err != nil {
			return dbsim.HarnessOptions{}, err
		}
		o := dbsim.DatabaseAOptions(maxCores, maxCores)
		o.Cluster = cluster
		o.DB.Retry = false // §6.2: throttled txns not retried
		return o, nil
	}

	ctrlOpts, err := mkOpts()
	if err != nil {
		return nil, err
	}
	control, err := dbsim.RunLive(sched, baselines.NewControl(maxCores), ctrlOpts)
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}

	// Prefer performance: 4-core floor, thick buffer, fast scale-up.
	perfCfg := core.DefaultConfig(maxCores)
	perfCfg.MinCores = 4
	perfCfg.SlackHigh = 0.20
	perfCfg.SlackLow = 0.15
	perfCfg.MaxStepUp = maxCores
	perfRec, err := recommend.NewCaaSPERReactive(perfCfg, 30)
	if err != nil {
		return nil, err
	}
	perfOpts, err := mkOpts()
	if err != nil {
		return nil, err
	}
	perf, err := dbsim.RunLive(sched, perfRec, perfOpts)
	if err != nil {
		return nil, fmt.Errorf("prefer-perf: %w", err)
	}

	// Prefer savings: 2-core floor, thin buffer, eager scale-down.
	saveCfg := core.DefaultConfig(maxCores)
	saveCfg.MinCores = 2
	saveCfg.SlackHigh = 0.05
	saveCfg.SlackLow = 0.45
	saveCfg.MaxStepDown = 4
	saveRec, err := recommend.NewCaaSPERReactive(saveCfg, 60)
	if err != nil {
		return nil, err
	}
	saveOpts, err := mkOpts()
	if err != nil {
		return nil, err
	}
	savings, err := dbsim.RunLive(sched, saveRec, saveOpts)
	if err != nil {
		return nil, fmt.Errorf("prefer-savings: %w", err)
	}

	res := &Figure11Result{
		Control:       control,
		PreferPerf:    perf,
		PreferSavings: savings,
	}
	res.PerfCostRatio = perf.CostRatioVs(control)
	res.SavingsCostRatio = savings.CostRatioVs(control)
	if control.DB.CompletedTxns > 0 {
		res.PerfThroughputRatio = perf.DB.CompletedTxns / control.DB.CompletedTxns
		res.SavingsThroughputRatio = savings.DB.CompletedTxns / control.DB.CompletedTxns
	}

	tb := NewTable("Figure 11 / Table 2 (recreated customer trace, no txn retry, 6-core max)",
		"run", "total thrpt (txns)", "thrpt vs ctrl", "avg lat ms", "med lat ms", "total price")
	tb.AddRow("control", control.DB.CompletedTxns, "1.00x", control.DB.AvgLatencyMS, control.DB.MedLatencyMS, "1.00x")
	tb.AddRow("caasper: prefer perf", perf.DB.CompletedTxns, ratio(res.PerfThroughputRatio),
		perf.DB.AvgLatencyMS, perf.DB.MedLatencyMS, ratio(res.PerfCostRatio))
	tb.AddRow("caasper: prefer savings", savings.DB.CompletedTxns, ratio(res.SavingsThroughputRatio),
		savings.DB.AvgLatencyMS, savings.DB.MedLatencyMS, ratio(res.SavingsCostRatio))
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper: perf-preferred matches control throughput at 0.74x price; savings completes 10%% fewer txns at ~0.49x price\n")
	res.Report = b.String()
	return res, nil
}
