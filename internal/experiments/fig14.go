package experiments

import (
	"fmt"
	"strings"

	"caasper/internal/sim"
	"caasper/internal/trace"
	"caasper/internal/tuning"
	"caasper/internal/workload"
)

// AlibabaRow is one Table 3 row: the per-trace autoscaling metrics after
// simulator-based parameter tuning.
type AlibabaRow struct {
	// Workload is the trace ID ("c_1", ...).
	Workload string
	// AvgSlack, NumScalings, AvgInsufficient and ThrottledPct are the
	// Table 3 columns.
	AvgSlack        float64
	NumScalings     int
	AvgInsufficient float64
	ThrottledPct    float64
	// Params is the tuned combination used.
	Params tuning.Params
	// Result is the full simulation outcome (the Figure 14 series live
	// in Result.Limits / Result.Usage).
	Result *sim.Result
}

// Figure14Result holds the §6.3 Alibaba-trace evaluation: Figure 14's
// decision series and Table 3's per-trace metric summary.
type Figure14Result struct {
	Rows   []AlibabaRow
	Report string
}

// Figure14Table3 reproduces the Alibaba evaluation. For each of the 11
// trace IDs the paper reports, a (synthetic stand-in) 8-day trace is
// generated, parameters are tuned with a random search on the simulator
// (tuneSamples combinations; the paper uses 5000), the α-balanced
// G-optimum is selected, and the tuned configuration is re-simulated to
// produce the Table 3 metrics.
func Figure14Table3(seed uint64, tuneSamples int) (*Figure14Result, error) {
	res := &Figure14Result{}
	tb := NewTable("Figure 14 / Table 3 — Alibaba workloads under tuned CaaSPER",
		"workload", "avg slack", "num scalings", "avg insuff. cpu", "throttling obs %")
	for _, id := range workload.AlibabaIDs {
		tr, err := workload.AlibabaTrace(id, seed)
		if err != nil {
			return nil, err
		}
		// §6.3: traces recorded in millicores are scaled into integer
		// core ranges ("for a range of 0.000-3.000 cores in a trace, we
		// scaled to 0-30 cores") since the prototype works whole-core.
		// Small traces get the same ×10 treatment here.
		scale := 1.0
		if tr.Summarize().Max < 5 {
			tr.Scale(10)
			scale = 10
		}
		row, err := tuneAndRun(tr, seed, tuneSamples)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		// "To visualize, we converted the values back to the original":
		// per-core metrics are reported in the trace's native scale.
		row.AvgSlack /= scale
		row.AvgInsufficient /= scale
		res.Rows = append(res.Rows, row)
		tb.AddRow(row.Workload, row.AvgSlack, row.NumScalings, row.AvgInsufficient, pct(row.ThrottledPct))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper Table 3 ranges: avg slack 0.15-3.94, scalings 38-443, avg insuff 0.000-0.005, throttled obs 0-1.21%%\n")
	res.Report = b.String()
	return res, nil
}

// tuneAndRun tunes parameters for one trace and re-simulates the chosen
// combination.
func tuneAndRun(tr *trace.Trace, seed uint64, tuneSamples int) (AlibabaRow, error) {
	peak := tr.Summarize().Max
	maxCores := int(peak*1.3) + 2
	initial := int(peak) + 1
	if initial > maxCores {
		initial = maxCores
	}
	simOpts := sim.DefaultOptions(initial, maxCores)
	// The §6.3 simulation applies decisions at trace resolution: Table 3
	// reports up to 443 scalings over ~11.5k minutes (one per ~26 min),
	// which requires a much faster loop than the live system's rolling
	// updates. Decisions every 5 minutes, effective the next minute.
	simOpts.DecisionEveryMinutes = 5
	simOpts.ResizeDelayMinutes = 1

	evals, err := tuning.RandomSearch(tr, tuning.SearchOptions{
		Samples:       tuneSamples,
		Seed:          seed + 7,
		Sim:           &simOpts,
		SeasonMinutes: 24 * 60,
	})
	if err != nil {
		return AlibabaRow{}, err
	}
	// The paper picks per-trace parameters "based on desired slack and
	// throttling": Table 3 shows sub-2% throttled observations across
	// every trace, so the selection first filters to combinations within
	// that throttling budget, then minimises slack (with the R3
	// scaling-frequency tie-break inside BestForAlpha).
	const throttleBudget = 0.02
	candidates := make([]tuning.Evaluation, 0, len(evals))
	for _, e := range evals {
		if e.ThrottledPct <= throttleBudget {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		// No combination meets the budget: fall back to the least
		// throttled ones.
		bestPct := evals[0].ThrottledPct
		for _, e := range evals[1:] {
			if e.ThrottledPct < bestPct {
				bestPct = e.ThrottledPct
			}
		}
		for _, e := range evals {
			if e.ThrottledPct <= bestPct*1.25 {
				candidates = append(candidates, e)
			}
		}
	}
	best, err := tuning.BestForAlpha(1.0, candidates)
	if err != nil {
		return AlibabaRow{}, err
	}
	// Re-simulate the chosen combination keeping the full series for the
	// Figure 14 plots (Evaluate discards them).
	rec, err := tuning.NewRecommender(best.Params, simOpts.MaxCores, 24*60)
	if err != nil {
		return AlibabaRow{}, err
	}
	full, err := sim.Run(tr, rec, simOpts)
	if err != nil {
		return AlibabaRow{}, err
	}
	if full.SumSlack != best.K || full.NumScalings != best.N {
		return AlibabaRow{}, fmt.Errorf("experiments: nondeterministic evaluation (K %v vs %v, N %d vs %d)",
			best.K, full.SumSlack, best.N, full.NumScalings)
	}
	return AlibabaRow{
		Workload:        tr.Name,
		AvgSlack:        full.AvgSlack,
		NumScalings:     full.NumScalings,
		AvgInsufficient: full.AvgInsufficient,
		ThrottledPct:    full.ThrottledPct,
		Params:          best.Params,
		Result:          full,
	}, nil
}
