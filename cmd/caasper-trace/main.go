// Command caasper-trace synthesizes the repository's workload traces —
// the paper's synthetic evaluation workloads and the Alibaba-style
// stand-ins — and writes them as CSV (index,cpu_cores at one-minute
// resolution) for use with caasper-sim or external tooling.
//
// Examples:
//
//	caasper-trace -workload step62h > step.csv
//	caasper-trace -alibaba c_29247 -out c29247.csv
//	caasper-trace -list
//	caasper-trace -workload cyclical3d -summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"caasper"
	"caasper/internal/obs"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "synthetic workload name")
		alibabaID    = flag.String("alibaba", "", "alibaba-style trace id")
		out          = flag.String("out", "", "output file (default stdout)")
		list         = flag.Bool("list", false, "list available workloads and exit")
		summary      = flag.Bool("summary", false, "print summary statistics instead of CSV")
		seed         = flag.Uint64("seed", 1, "generator seed")
	)
	var cli obs.CLIConfig
	cli.Register(flag.CommandLine)
	flag.Parse()

	session, err := cli.Start()
	if err != nil {
		fatal(err)
	}
	defer session.Finish(os.Stderr) // CSV owns stdout
	session.FlushOnSignal(os.Stderr, "caasper-trace")

	if *list {
		names := make([]string, 0, len(caasper.Workloads))
		for n := range caasper.Workloads {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("synthetic workloads:")
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("alibaba-style traces:")
		for _, id := range caasper.AlibabaIDs {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	var tr *caasper.Trace
	switch {
	case *alibabaID != "":
		tr, err = caasper.AlibabaTrace(*alibabaID, *seed)
	case *workloadName != "":
		gen, ok := caasper.Workloads[*workloadName]
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (use -list)", *workloadName))
		}
		tr = gen(*seed)
	default:
		fatal(fmt.Errorf("one of -workload or -alibaba is required (use -list)"))
	}
	if err != nil {
		fatal(err)
	}
	if obs.Enabled(session.Events) {
		s := tr.Summarize()
		session.Events.Emit(obs.Event{T: 0, Type: "trace.generated", Fields: []obs.Field{
			obs.S("name", s.Name),
			obs.I("samples", int64(s.Samples)),
			obs.F("mean", s.Mean),
			obs.F("peak", s.Max),
		}})
	}
	session.Metrics.Counter("trace.samples").Add(int64(tr.Len()))

	if *summary {
		s := tr.Summarize()
		fmt.Printf("name:     %s\n", s.Name)
		fmt.Printf("samples:  %d (%s)\n", s.Samples, s.Duration)
		fmt.Printf("mean:     %.3f cores\n", s.Mean)
		fmt.Printf("stddev:   %.3f\n", s.StdDev)
		fmt.Printf("min/max:  %.3f / %.3f\n", s.Min, s.Max)
		fmt.Printf("p50/p90/p99: %.3f / %.3f / %.3f\n", s.P50, s.P90, s.P99)
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caasper-trace:", err)
	os.Exit(1)
}
