package billing

import (
	"testing"
	"time"
)

func hourlyMeter(t *testing.T, price float64) *Meter {
	t.Helper()
	m, err := NewMeter(price, time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeterValidation(t *testing.T) {
	if _, err := NewMeter(-1, time.Hour, time.Minute); err == nil {
		t.Error("negative price should error")
	}
	if _, err := NewMeter(1, 0, time.Minute); err == nil {
		t.Error("zero period should error")
	}
	if _, err := NewMeter(1, time.Hour, 0); err == nil {
		t.Error("zero interval should error")
	}
	if _, err := NewMeter(1, time.Hour, 7*time.Minute); err == nil {
		t.Error("non-dividing interval should error")
	}
}

func TestMeterPeakPerPeriod(t *testing.T) {
	m := hourlyMeter(t, 2)
	// Hour 1: limits mostly 4, one spike to 6.
	for i := 0; i < 59; i++ {
		m.Record(4)
	}
	m.Record(6)
	// Hour 2: flat 3.
	for i := 0; i < 60; i++ {
		m.Record(3)
	}
	if got := m.BilledCorePeriods(); got != 9 { // 6 + 3
		t.Errorf("billed = %v, want 9", got)
	}
	if got := m.TotalCost(); got != 18 {
		t.Errorf("cost = %v, want 18", got)
	}
	if p := m.Periods(); len(p) != 2 || p[0] != 6 || p[1] != 3 {
		t.Errorf("periods = %v", p)
	}
}

func TestMeterRoundsUpWholeCores(t *testing.T) {
	m := hourlyMeter(t, 1)
	for i := 0; i < 60; i++ {
		m.Record(2.1) // fractional limits bill as 3 whole cores
	}
	if got := m.BilledCorePeriods(); got != 3 {
		t.Errorf("billed = %v, want 3 (round-up)", got)
	}
}

func TestMeterFlushPartialPeriod(t *testing.T) {
	m := hourlyMeter(t, 1)
	for i := 0; i < 30; i++ {
		m.Record(5)
	}
	if got := m.BilledCorePeriods(); got != 0 {
		t.Errorf("open period should not bill yet, got %v", got)
	}
	m.Flush()
	if got := m.BilledCorePeriods(); got != 5 {
		t.Errorf("after flush = %v, want 5", got)
	}
	// Double flush is a no-op.
	m.Flush()
	if got := m.BilledCorePeriods(); got != 5 {
		t.Errorf("double flush = %v", got)
	}
}

func TestMeterReset(t *testing.T) {
	m := hourlyMeter(t, 1)
	for i := 0; i < 120; i++ {
		m.Record(4)
	}
	m.Reset()
	m.Flush()
	if got := m.BilledCorePeriods(); got != 0 {
		t.Errorf("after reset = %v", got)
	}
}

func TestCostRatio(t *testing.T) {
	a := hourlyMeter(t, 1)
	b := hourlyMeter(t, 1)
	for i := 0; i < 60; i++ {
		a.Record(3)
		b.Record(6)
	}
	a.Flush()
	b.Flush()
	if got := CostRatio(a, b); got != 0.5 {
		t.Errorf("ratio = %v, want 0.5", got)
	}
	empty := hourlyMeter(t, 1)
	if got := CostRatio(a, empty); got != 0 {
		t.Errorf("ratio vs empty baseline = %v, want 0", got)
	}
}

func TestMeterMinutelyPeriod(t *testing.T) {
	// §3.1: "this time period may be minutely or hourly".
	m, err := NewMeter(1, time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	m.Record(2)
	m.Record(4)
	m.Record(3)
	if got := m.BilledCorePeriods(); got != 9 {
		t.Errorf("minutely billed = %v, want 9", got)
	}
}
