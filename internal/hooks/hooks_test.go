package hooks

import (
	"testing"

	"caasper/internal/faults"
	"caasper/internal/obs"
)

func TestMergeAliasWins(t *testing.T) {
	embedded := obs.NewMemorySink()
	alias := obs.NewMemorySink()
	spec, err := faults.ParseSpec("metrics-gap:p=0.5")
	if err != nil {
		t.Fatal(err)
	}

	h := RunHooks{Events: embedded, FaultSeed: 1}
	got := h.Merge(alias, nil, spec, 9)
	if got.Events != obs.Sink(alias) {
		t.Error("alias sink should win over the embedded one")
	}
	if got.FaultSpec != spec || got.FaultSeed != 9 {
		t.Errorf("alias fault knobs should win: got spec=%v seed=%d", got.FaultSpec, got.FaultSeed)
	}

	// Zero aliases leave the embedded values untouched.
	kept := h.Merge(nil, nil, nil, 0)
	if kept.Events != obs.Sink(embedded) || kept.FaultSeed != 1 {
		t.Error("zero aliases must not clobber embedded hooks")
	}
}

func TestInjectorWiring(t *testing.T) {
	if inj := (RunHooks{}).Injector(); inj != nil {
		t.Errorf("empty hooks should build a nil (fault-free) injector, got %v", inj)
	}
	spec, err := faults.ParseSpec("metrics-gap:p=1")
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewMemorySink()
	reg := obs.NewRegistry()
	inj := RunHooks{Events: sink, Metrics: reg, FaultSpec: spec, FaultSeed: 4}.Injector()
	if inj == nil {
		t.Fatal("non-empty spec should build an injector")
	}
	if inj.Events != obs.Sink(sink) || inj.Stats != reg {
		t.Error("Injector must prewire the hooks' sink and registry")
	}
	if !inj.DropSample("pod-0", 1) {
		t.Error("p=1 metrics-gap should drop every sample")
	}
}
