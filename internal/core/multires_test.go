package core

import (
	"strings"
	"testing"

	"caasper/internal/pvp"
	"caasper/internal/stats"
)

func multiCfg(t *testing.T) MultiResourceConfig {
	t.Helper()
	return MultiResourceConfig{
		Ladders: map[string]ResourceLadder{
			"cpu":     {Min: 2, Max: 16, Step: 1},
			"mem_gib": {Min: 8, Max: 64, Step: 4},
		},
		Base: DefaultConfig(16),
	}
}

func TestNewMultiResourceValidation(t *testing.T) {
	if _, err := NewMultiResource(MultiResourceConfig{}); err == nil {
		t.Error("no ladders should fail")
	}
	bad := multiCfg(t)
	bad.Ladders["cpu"] = ResourceLadder{Min: 0, Max: 4, Step: 1}
	if _, err := NewMultiResource(bad); err == nil {
		t.Error("bad ladder should fail")
	}
	bad = multiCfg(t)
	bad.Ladders["cpu"] = ResourceLadder{Min: 2, Max: 8, Step: 0}
	if _, err := NewMultiResource(bad); err == nil {
		t.Error("zero step should fail")
	}
}

func TestMultiResourceIndependentDecisions(t *testing.T) {
	// CPU pinned at its 4-core cap (scale up) while memory idles at
	// 10 GiB of 48 (scale down): the two dimensions must move in
	// opposite directions, per §4.2's "each resource can be scaled
	// independently".
	m, err := NewMultiResource(multiCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]pvp.UsageSample, 120)
	for i := range samples {
		samples[i] = pvp.UsageSample{"cpu": 4, "mem_gib": 10}
	}
	d, err := m.Decide(map[string]int{"cpu": 4, "mem_gib": 48}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if d.Targets["cpu"] <= 4 {
		t.Errorf("cpu target = %d, want scale-up", d.Targets["cpu"])
	}
	if d.Targets["mem_gib"] >= 48 {
		t.Errorf("mem target = %d, want scale-down", d.Targets["mem_gib"])
	}
	if !d.AnyChange(map[string]int{"cpu": 4, "mem_gib": 48}) {
		t.Error("AnyChange should be true")
	}
	// Memory target respects the 4-GiB granularity and ladder bounds.
	if d.Targets["mem_gib"]%4 != 0 {
		t.Errorf("mem target %d not on the 4-GiB grid", d.Targets["mem_gib"])
	}
	if d.Targets["mem_gib"] < 8 || d.Targets["mem_gib"] > 64 {
		t.Errorf("mem target %d outside ladder", d.Targets["mem_gib"])
	}
	// Explanations carry the dimension tag (R6).
	if !strings.HasPrefix(d.PerDimension["cpu"].Explanation, "[cpu]") {
		t.Errorf("cpu explanation = %q", d.PerDimension["cpu"].Explanation)
	}
}

func TestMultiResourceHoldWhenRightSized(t *testing.T) {
	m, err := NewMultiResource(multiCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	samples := make([]pvp.UsageSample, 200)
	for i := range samples {
		samples[i] = pvp.UsageSample{
			"cpu":     5.2 + rng.NormFloat64()*0.2,
			"mem_gib": 22 + rng.NormFloat64()*0.8,
		}
	}
	current := map[string]int{"cpu": 7, "mem_gib": 28}
	d, err := m.Decide(current, samples)
	if err != nil {
		t.Fatal(err)
	}
	if d.AnyChange(current) {
		t.Errorf("right-sized pod should hold: %+v", d.Targets)
	}
}

func TestMultiResourceMissingCurrentDefaultsToMin(t *testing.T) {
	m, err := NewMultiResource(multiCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	samples := []pvp.UsageSample{{"cpu": 1, "mem_gib": 6}}
	d, err := m.Decide(map[string]int{}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if d.Targets["cpu"] < 2 || d.Targets["mem_gib"] < 8 {
		t.Errorf("targets below ladder minima: %+v", d.Targets)
	}
}

func TestMultiResourceEmptySamples(t *testing.T) {
	m, _ := NewMultiResource(multiCfg(t))
	if _, err := m.Decide(map[string]int{"cpu": 4}, nil); err != ErrNoUsage {
		t.Errorf("err = %v, want ErrNoUsage", err)
	}
}

func TestMultiResourceDeterministicAcrossRuns(t *testing.T) {
	m, _ := NewMultiResource(multiCfg(t))
	samples := make([]pvp.UsageSample, 60)
	for i := range samples {
		samples[i] = pvp.UsageSample{"cpu": 3.5, "mem_gib": 30}
	}
	cur := map[string]int{"cpu": 8, "mem_gib": 32}
	a, err := m.Decide(cur, samples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Decide(cur, samples)
	if err != nil {
		t.Fatal(err)
	}
	for dim := range a.Targets {
		if a.Targets[dim] != b.Targets[dim] {
			t.Fatalf("dimension %s nondeterministic", dim)
		}
	}
}

func TestStepsFor(t *testing.T) {
	if stepsFor(8, 4) != 2 || stepsFor(9, 4) != 3 || stepsFor(1, 1) != 1 {
		t.Error("stepsFor arithmetic wrong")
	}
}
