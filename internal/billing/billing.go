// Package billing implements the resource-based pay-as-you-go model of the
// paper's DBaaS offerings (§3.1, §6.1): users are charged for the *peak*
// CPU limits provisioned within each billing period, rounded up to whole
// cores, at a fixed price per core-period. Memory is not billed. The
// whole-core round-up and peak-based metering are the service invariants
// (R1) that shape CaaSPER's integral scaling decisions.
package billing

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Meter accumulates billable usage under the pay-as-you-go model.
type Meter struct {
	// PricePerCorePeriod is the price of one core held for one period.
	PricePerCorePeriod float64
	// Period is the metering granularity ("minutely or hourly depending
	// on configuration" per §3.1).
	Period time.Duration
	// SampleInterval is the spacing of samples passed to Record.
	SampleInterval time.Duration

	samplesPerPeriod int
	sampleInPeriod   int
	peakThisPeriod   float64
	periods          []float64 // peak cores per completed period
}

// NewMeter builds a billing meter. SampleInterval must evenly divide
// Period.
func NewMeter(pricePerCorePeriod float64, period, sampleInterval time.Duration) (*Meter, error) {
	if pricePerCorePeriod < 0 {
		return nil, errors.New("billing: negative price")
	}
	if period <= 0 || sampleInterval <= 0 {
		return nil, errors.New("billing: non-positive period or interval")
	}
	if period%sampleInterval != 0 {
		return nil, fmt.Errorf("billing: interval %v does not divide period %v", sampleInterval, period)
	}
	return &Meter{
		PricePerCorePeriod: pricePerCorePeriod,
		Period:             period,
		SampleInterval:     sampleInterval,
		samplesPerPeriod:   int(period / sampleInterval),
	}, nil
}

// Record registers the provisioned limits (in cores, possibly fractional)
// during one sample interval. Completed periods are closed automatically.
func (m *Meter) Record(limitsCores float64) {
	if limitsCores > m.peakThisPeriod {
		m.peakThisPeriod = limitsCores
	}
	m.sampleInPeriod++
	if m.sampleInPeriod == m.samplesPerPeriod {
		m.closePeriod()
	}
}

// RecordN registers the same provisioned limits for n consecutive sample
// intervals — the bulk form the discrete-event fleet engine uses when the
// limit is provably constant across a span. The resulting meter state is
// identical to n sequential Record calls, but the cost is O(periods
// touched) instead of O(n): the peak comparison happens once per period
// and whole periods at a constant limit close immediately.
func (m *Meter) RecordN(limitsCores float64, n int) {
	for n > 0 {
		if limitsCores > m.peakThisPeriod {
			m.peakThisPeriod = limitsCores
		}
		take := m.samplesPerPeriod - m.sampleInPeriod
		if take > n {
			take = n
		}
		m.sampleInPeriod += take
		n -= take
		if m.sampleInPeriod == m.samplesPerPeriod {
			m.closePeriod()
		}
	}
}

func (m *Meter) closePeriod() {
	m.periods = append(m.periods, m.peakThisPeriod)
	m.peakThisPeriod = 0
	m.sampleInPeriod = 0
}

// Flush closes a partially filled period, if any. Call it once at the end
// of a run before reading totals.
func (m *Meter) Flush() {
	if m.sampleInPeriod > 0 {
		m.closePeriod()
	}
}

// TotalCost returns the accumulated cost over all closed periods: the
// per-period peak, rounded up to whole cores, times the price.
func (m *Meter) TotalCost() float64 {
	var total float64
	for _, peak := range m.periods {
		total += math.Ceil(peak) * m.PricePerCorePeriod
	}
	return total
}

// BilledCorePeriods returns the total billed core-periods (cost at unit
// price) — convenient for price ratios, which is how the paper reports
// every cost figure.
func (m *Meter) BilledCorePeriods() float64 {
	var total float64
	for _, peak := range m.periods {
		total += math.Ceil(peak)
	}
	return total
}

// Periods returns the per-period peaks recorded so far (closed periods
// only). The slice is a copy.
func (m *Meter) Periods() []float64 {
	return append([]float64(nil), m.periods...)
}

// Reset clears all accumulated state.
func (m *Meter) Reset() {
	m.periods = m.periods[:0]
	m.peakThisPeriod = 0
	m.sampleInPeriod = 0
}

// CostRatio is a convenience: cost of run over cost of baseline, the form
// every price figure in the paper takes (e.g. "0.74x"). It returns 0 when
// the baseline cost is 0.
func CostRatio(run, baseline *Meter) float64 {
	b := baseline.BilledCorePeriods()
	if b == 0 {
		return 0
	}
	return run.BilledCorePeriods() / b
}
