package k8s

import "testing"

func TestAddCoTenants(t *testing.T) {
	c := SmallCluster() // 6 × 8 cores
	if err := AddCoTenants(c, 6, 2, 8); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalAllocated().CPUCores; got != 12 {
		t.Errorf("allocated = %v, want 12", got)
	}
	// With 2 cores reserved per node, a 7-core pod no longer fits
	// anywhere — the §6.2 "bounded to a max of 6 cores" situation.
	big := &Pod{Name: "big", Phase: PhasePending, Spec: NewGuaranteedSpec(7, 8)}
	if err := c.Schedule(big); err == nil {
		t.Error("7-core pod should not fit next to co-tenants")
	}
	six := &Pod{Name: "six", Phase: PhasePending, Spec: NewGuaranteedSpec(6, 8)}
	if err := c.Schedule(six); err != nil {
		t.Errorf("6-core pod should fit: %v", err)
	}
}

func TestAddCoTenantsOverflow(t *testing.T) {
	c, _ := NewCluster(NewNode("n", 4, 8))
	if err := AddCoTenants(c, 3, 2, 2); err == nil {
		t.Error("over-capacity co-tenants should fail")
	}
}
