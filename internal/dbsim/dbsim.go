// Package dbsim is the transaction-level database simulator behind the
// paper's live-system evaluation (§6.2): a replicated RDBMS ("Database A"
// / "Database B") running inside the internal/k8s substrate, driven by a
// BenchBase-style load schedule, reporting the metrics of Tables 1–2 —
// total throughput, average and median latency, dropped transactions, and
// (through internal/billing) price.
//
// The service model is a fluid-flow queue per replica, advanced in
// one-second ticks:
//
//   - arrivals: the schedule's rate (txn/s) split by the transaction
//     mix's write fraction — writes go to the primary only (§3.1), reads
//     spread across all running replicas;
//   - service: each replica processes up to limit·1 s CPU-seconds of
//     queued work per tick (the cgroup cap enforced by k8s.Pod);
//   - latency: completed work experiences the replica's queueing delay
//     (backlog/capacity) plus its base service time;
//   - timeouts: queued work older than the timeout is abandoned and, per
//     the §6.2 customer-trace experiment, *not* retried when Retry is
//     false ("we did not retry throttled transactions after a timeout
//     window");
//   - restarts: a pod restart drops its queued work and redirects its
//     arrivals (retried or dropped), matching "user connections are
//     interrupted when a pod instance restarts".
package dbsim

import (
	"errors"
	"math"

	"caasper/internal/k8s"
	"caasper/internal/workload"
)

// Options configures the database service model.
type Options struct {
	// TimeoutSeconds is how long work may queue before abandonment.
	TimeoutSeconds float64
	// Retry controls whether dropped/timed-out transactions are
	// resubmitted ("in practice, customer applications would typically
	// retry transactions", §6.2 footnote).
	Retry bool
	// BaseLatencySeconds is the fixed non-CPU component of transaction
	// latency (parse/commit/network).
	BaseLatencySeconds float64
	// SecondaryIdleCores is the background CPU each secondary burns for
	// replication apply, independent of user traffic.
	SecondaryIdleCores float64
	// SecondaryReadFraction is the share of read transactions offloaded
	// to secondary replicas (spread evenly among them). The paper's
	// primary "handles most user requests" (§3.1), so the default is 0:
	// everything lands on the primary. The Database B read-scale setup
	// spreads reads across its replicas.
	SecondaryReadFraction float64
}

// DefaultOptions returns service parameters matching the paper's setup:
// a 30-second timeout, retries on, 20 ms base latency, and a light
// replication-apply load on secondaries.
func DefaultOptions() Options {
	return Options{
		TimeoutSeconds:     30,
		Retry:              true,
		BaseLatencySeconds: 0.020,
		SecondaryIdleCores: 0.2,
	}
}

// Validate checks option invariants.
func (o Options) Validate() error {
	if o.TimeoutSeconds <= 0 {
		return errors.New("dbsim: TimeoutSeconds must be positive")
	}
	if o.BaseLatencySeconds < 0 || o.SecondaryIdleCores < 0 {
		return errors.New("dbsim: negative latency or idle load")
	}
	if o.SecondaryReadFraction < 0 || o.SecondaryReadFraction > 1 {
		return errors.New("dbsim: SecondaryReadFraction out of [0,1]")
	}
	return nil
}

// replicaState is the per-replica fluid queue.
type replicaState struct {
	pod *k8s.Pod
	// backlogWork is queued work in CPU-seconds.
	backlogWork float64
	// backlogTxns is the matching transaction count (kept separately so
	// mixed-cost phases account correctly).
	backlogTxns float64
	// lastArrivalTxns holds the previous tick's arrivals: the
	// connections considered in flight when the pod restarts.
	lastArrivalTxns float64
}

// Database is the replicated database instance.
type Database struct {
	// Set is the underlying stateful set.
	Set *k8s.StatefulSet
	// Schedule drives arrivals.
	Schedule *workload.LoadSchedule
	// Opts is the service model configuration.
	Opts Options

	replicas map[string]*replicaState

	// Totals.
	CompletedTxns float64
	DroppedTxns   float64
	RetriedTxns   float64

	// latSum accumulates txn-weighted latency; latWeighted holds
	// (latency, txns) samples for the median.
	latSum      float64
	latSamples  []float64
	latWeights  []float64
	totalOff    float64 // txns shed due to restarts (subset of dropped/retried)
	pendingWork map[string]float64
}

// New builds a database over the stateful set.
func New(set *k8s.StatefulSet, sched *workload.LoadSchedule, opts Options) (*Database, error) {
	if set == nil {
		return nil, errors.New("dbsim: nil stateful set")
	}
	if sched == nil {
		return nil, errors.New("dbsim: nil schedule")
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	db := &Database{Set: set, Schedule: sched, Opts: opts, replicas: map[string]*replicaState{}}
	for _, p := range set.Pods {
		db.replicas[p.Name] = &replicaState{pod: p}
	}
	return db, nil
}

// TrackReplica registers a pod added after construction (horizontal
// scale-out). Tracking an already-known pod is a no-op.
func (d *Database) TrackReplica(p *k8s.Pod) {
	if _, ok := d.replicas[p.Name]; !ok {
		d.replicas[p.Name] = &replicaState{pod: p}
	}
}

// OnPodDown implements the connection-drop semantics of a rolling-update
// restart: the replica's queued work is shed. Wire it to
// k8s.Operator.OnPodDown.
func (d *Database) OnPodDown(p *k8s.Pod) {
	rs, ok := d.replicas[p.Name]
	if !ok {
		return
	}
	// Interrupted work: the queued backlog plus the connections that
	// were mid-flight (approximated by the previous tick's arrivals) —
	// this is the paper's "one transaction is dropped and retried"
	// during each resize.
	txns := rs.backlogTxns + rs.lastArrivalTxns
	rs.backlogWork = 0
	rs.backlogTxns = 0
	rs.lastArrivalTxns = 0
	d.totalOff += txns
	if d.Opts.Retry {
		// Connections reconnect and the transactions are retried on the
		// surviving replicas next tick.
		d.RetriedTxns += txns
		d.carryover(txns)
	} else {
		d.DroppedTxns += txns
	}
}

// carryover re-enqueues retried transactions onto running replicas.
func (d *Database) carryover(txns float64) {
	running := d.Set.RunningPods()
	if len(running) == 0 || txns <= 0 {
		return
	}
	mean := d.Schedule.Mix.MeanCPUSeconds()
	per := txns / float64(len(running))
	for _, p := range running {
		rs := d.replicas[p.Name]
		rs.backlogTxns += per
		rs.backlogWork += per * mean
	}
}

// Tick advances the database one second at time now, consuming CPU from
// the pods and recording usage into the metrics server (ms may be nil).
func (d *Database) Tick(now int64, ms *k8s.MetricsServer) {
	// Pick up replicas added by horizontal scale-out since construction.
	for _, p := range d.Set.Pods {
		if _, ok := d.replicas[p.Name]; !ok {
			d.replicas[p.Name] = &replicaState{pod: p}
		}
	}

	minute := float64(now) / 60
	mix := d.Schedule.MixAt(minute)
	rate := d.Schedule.Rate(minute)
	if rate < 0 {
		rate = 0
	}
	meanCPU := mix.MeanCPUSeconds()
	writeFrac := mix.WriteFraction()

	primary := d.Set.Primary()
	running := d.Set.RunningPods()
	secondaries := d.Set.RunningSecondaries()

	// --- Route arrivals -------------------------------------------------
	// Writes must reach the primary; reads go to the primary by default
	// with an optional fraction offloaded to secondaries (§3.1).
	writeTxns := rate * writeFrac
	readTxns := rate * (1 - writeFrac)
	secReadTxns := 0.0
	if len(secondaries) > 0 {
		secReadTxns = readTxns * d.Opts.SecondaryReadFraction
	}
	primaryTxns := writeTxns + (readTxns - secReadTxns)

	// Clear the previous in-flight markers before recording this tick's.
	for _, rs := range d.replicas {
		rs.lastArrivalTxns = 0
	}

	if primary != nil && primary.Running() {
		rs := d.replicas[primary.Name]
		rs.backlogTxns += primaryTxns
		rs.backlogWork += primaryTxns * meanCPU
		rs.lastArrivalTxns = primaryTxns
	} else if primaryTxns > 0 {
		// No writable primary (failover instant): connections break.
		d.totalOff += primaryTxns
		if d.Opts.Retry && len(running) > 0 {
			d.RetriedTxns += primaryTxns
			d.carryover(primaryTxns)
		} else {
			d.DroppedTxns += primaryTxns
		}
	}
	if secReadTxns > 0 {
		per := secReadTxns / float64(len(secondaries))
		for _, p := range secondaries {
			rs := d.replicas[p.Name]
			rs.backlogTxns += per
			rs.backlogWork += per * meanCPU
			rs.lastArrivalTxns += per
		}
	}

	// --- Serve ----------------------------------------------------------
	for _, p := range d.Set.Pods {
		rs := d.replicas[p.Name]
		demand := rs.backlogWork // offer the whole queue; the cgroup caps it
		if p.Role == k8s.RoleSecondary {
			demand += d.Opts.SecondaryIdleCores
		}
		used := p.ConsumeCPU(demand, 1)
		if !p.Running() {
			// No kubelet scrape exists for a down pod: recording a zero
			// here would turn the restart gap into *measured* idleness.
			// Skipping instead closes those buckets as silent, which the
			// scaler carries over rather than feeding to the recommender.
			continue
		}
		if ms != nil {
			ms.RecordUsage(p.Name, now, used)
		}
		// Replication-apply overhead is served first on secondaries.
		avail := used
		if p.Role == k8s.RoleSecondary {
			overhead := math.Min(avail, d.Opts.SecondaryIdleCores)
			avail -= overhead
		}
		if avail <= 0 {
			continue
		}
		processedWork := math.Min(avail, rs.backlogWork)
		if processedWork <= 0 {
			continue
		}
		waitBefore := 0.0
		if cap := p.CPULimit(); cap > 0 {
			waitBefore = rs.backlogWork / cap
		}
		frac := processedWork / rs.backlogWork
		doneTxns := rs.backlogTxns * frac
		rs.backlogWork -= processedWork
		rs.backlogTxns -= doneTxns

		lat := d.Opts.BaseLatencySeconds + meanCPU + waitBefore/2
		d.CompletedTxns += doneTxns
		d.latSum += lat * doneTxns
		d.latSamples = append(d.latSamples, lat)
		d.latWeights = append(d.latWeights, doneTxns)

		// --- Timeouts ----------------------------------------------------
		cap := p.CPULimit()
		if cap > 0 {
			maxQueue := d.Opts.TimeoutSeconds * cap
			if rs.backlogWork > maxQueue {
				excess := rs.backlogWork - maxQueue
				exFrac := excess / rs.backlogWork
				exTxns := rs.backlogTxns * exFrac
				rs.backlogWork -= excess
				rs.backlogTxns -= exTxns
				if d.Opts.Retry {
					d.RetriedTxns += exTxns
					d.carryover(exTxns)
				} else {
					d.DroppedTxns += exTxns
				}
			}
		}
	}
}

// Stats summarises the run so far.
type Stats struct {
	// CompletedTxns, DroppedTxns and RetriedTxns are transaction counts.
	CompletedTxns, DroppedTxns, RetriedTxns float64
	// AvgLatencyMS and MedLatencyMS are txn-weighted latency statistics
	// in milliseconds.
	AvgLatencyMS, MedLatencyMS float64
	// P99LatencyMS is the txn-weighted 99th-percentile latency.
	P99LatencyMS float64
	// InterruptedTxns counts transactions shed by restarts/failovers.
	InterruptedTxns float64
}

// Stats computes the current statistics.
func (d *Database) Stats() Stats {
	s := Stats{
		CompletedTxns:   d.CompletedTxns,
		DroppedTxns:     d.DroppedTxns,
		RetriedTxns:     d.RetriedTxns,
		InterruptedTxns: d.totalOff,
	}
	if d.CompletedTxns > 0 {
		s.AvgLatencyMS = d.latSum / d.CompletedTxns * 1000
	}
	s.MedLatencyMS = weightedQuantile(d.latSamples, d.latWeights, 0.5) * 1000
	s.P99LatencyMS = weightedQuantile(d.latSamples, d.latWeights, 0.99) * 1000
	return s
}

// weightedQuantile computes the weighted q-quantile of samples.
func weightedQuantile(samples, weights []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	// Sort by sample value (indices to avoid disturbing inputs).
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free sort via sort.Slice equivalent; local to avoid an
	// extra import dance.
	quickSortByValue(idx, samples)
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	target := q * total
	var cum float64
	for _, i := range idx {
		cum += weights[i]
		if cum >= target {
			return samples[i]
		}
	}
	return samples[idx[len(idx)-1]]
}

func quickSortByValue(idx []int, vals []float64) {
	if len(idx) < 2 {
		return
	}
	pivot := vals[idx[len(idx)/2]]
	left, right := 0, len(idx)-1
	for left <= right {
		for vals[idx[left]] < pivot {
			left++
		}
		for vals[idx[right]] > pivot {
			right--
		}
		if left <= right {
			idx[left], idx[right] = idx[right], idx[left]
			left++
			right--
		}
	}
	quickSortByValue(idx[:right+1], vals)
	quickSortByValue(idx[left:], vals)
}

// Backlog returns the current total queued work in CPU-seconds
// (observability for tests).
func (d *Database) Backlog() float64 {
	var total float64
	for _, rs := range d.replicas {
		total += rs.backlogWork
	}
	return total
}
