// Package experiments contains one runner per table and figure of the
// paper's evaluation (§3.3, §4, §6). Each runner regenerates its artifact
// from scratch — workload synthesis, simulation or live-loop execution,
// metric extraction — and returns both structured results and a formatted
// text report. DESIGN.md §3 maps every experiment to its modules;
// EXPERIMENTS.md records paper-vs-measured values produced by these
// runners.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple text table builder used by every experiment report.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// ratio formats a cost/throughput ratio the way the paper does (".74x").
func ratio(f float64) string { return fmt.Sprintf("%.2fx", f) }
