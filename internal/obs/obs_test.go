package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventNDJSONEncoding(t *testing.T) {
	e := Event{T: 42, Type: "core.decision", Fields: []Field{
		S("branch", "scale-up"),
		F("slope", 1.25),
		I("cores", 8),
		B("memo", true),
		B("throttled", false),
		S("note", "a \"quoted\"\nline\twith → unicode"),
		F("nan", math.NaN()),
		F("inf", math.Inf(1)),
	}}
	got := string(e.AppendNDJSON(nil))
	want := `{"t":42,"type":"core.decision","branch":"scale-up","slope":1.25,"cores":8,` +
		`"memo":true,"throttled":false,"note":"a \"quoted\"\nline\twith → unicode","nan":null,"inf":null}`
	if got != want {
		t.Errorf("encoding mismatch:\n got  %s\n want %s", got, want)
	}
	// Every line must parse as standard JSON.
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if m["t"].(float64) != 42 || m["branch"] != "scale-up" || m["memo"] != true {
		t.Errorf("decoded fields wrong: %v", m)
	}
}

func TestNDJSONSinkConcurrentLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sink.Emit(Event{T: int64(i), Type: "test", Fields: []Field{I("g", int64(g))}})
			}
		}(g)
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	if sink.Count() != 400 {
		t.Errorf("Count = %d", sink.Count())
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("interleaved write produced invalid JSON line %q: %v", ln, err)
		}
	}
}

// errWriter fails after the first write.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func TestNDJSONSinkStickyError(t *testing.T) {
	sink := NewNDJSONSink(&errWriter{})
	big := strings.Repeat("x", 8192) // defeat bufio buffering
	sink.Emit(Event{Type: "a", Fields: []Field{S("pad", big)}})
	sink.Emit(Event{Type: "b", Fields: []Field{S("pad", big)}})
	sink.Emit(Event{Type: "c", Fields: []Field{S("pad", big)}})
	if sink.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if sink.Flush() == nil {
		t.Error("Flush should report the sticky error")
	}
}

func TestDiscardAndEnabled(t *testing.T) {
	if Discard.Enabled() {
		t.Error("Discard must be disabled")
	}
	if Enabled(nil) || Enabled(Discard) {
		t.Error("Enabled must be false for nil and Discard")
	}
	if !Enabled(NewMemorySink()) {
		t.Error("MemorySink must be enabled")
	}
	Discard.Emit(Event{})
	if err := Discard.Flush(); err != nil {
		t.Error(err)
	}
}

func TestMemorySinkReplayPreservesOrder(t *testing.T) {
	mem := NewMemorySink()
	for i := 0; i < 10; i++ {
		mem.Emit(Event{T: int64(i), Type: "seq"})
	}
	dst := NewMemorySink()
	mem.ReplayTo(dst)
	got := dst.Events()
	if len(got) != 10 {
		t.Fatalf("replayed %d events", len(got))
	}
	for i, e := range got {
		if e.T != int64(i) {
			t.Fatalf("order broken at %d: %+v", i, e)
		}
	}
	mem.ReplayTo(Discard) // must be a no-op, not a panic
	if mem.Len() != 10 {
		t.Errorf("Len = %d", mem.Len())
	}
}

func TestSpan(t *testing.T) {
	mem := NewMemorySink()
	sp := StartSpan(mem, "k8s.resize-completed", 100)
	sp.End(160, I("to", 8))
	evs := mem.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	line := string(evs[0].AppendNDJSON(nil))
	want := `{"t":100,"type":"k8s.resize-completed","dur":60,"to":8}`
	if line != want {
		t.Errorf("span event = %s, want %s", line, want)
	}
	// Disabled spans are inert.
	StartSpan(Discard, "x", 0).End(5)
	StartSpan(nil, "x", 0).End(5)
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim.decisions")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("sim.decisions") != c {
		t.Error("get-or-create must return the same counter")
	}
	g := r.Gauge("pool.max_queue")
	g.Set(3)
	g.SetMax(10)
	g.SetMax(7) // lower: ignored
	if g.Value() != 10 {
		t.Errorf("gauge = %v", g.Value())
	}

	// Nil instruments are inert.
	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("y").Set(1)
	nilReg.Histogram("z").Observe(1)
	if nilReg.Counter("x").Value() != 0 || nilReg.Summary() != "" {
		t.Error("nil registry must be inert")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewDurationHistogram()
	// 100 samples: 1ms..100ms uniformly.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e6)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5e6) > 1 {
		t.Errorf("mean = %v", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 20e6 || p50 > 80e6 {
		t.Errorf("p50 = %vms, want ≈50ms", p50/1e6)
	}
	p99 := h.Quantile(0.99)
	if p99 < 80e6 || p99 > 100e6 {
		t.Errorf("p99 = %vms, want ≈99ms", p99/1e6)
	}
	if h.Max() != 100e6 {
		t.Errorf("max = %v", h.Max())
	}
	if h.Quantile(1) > 100e6 {
		t.Errorf("p100 = %v exceeds max", h.Quantile(1))
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 || empty.Mean() != 0 {
		t.Error("nil histogram must report zeros")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewDurationHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if got, want := h.Sum(), 8*1000.0*1001/2; math.Abs(got-want) > 0.5 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if h.Max() != 1000 {
		t.Errorf("max = %v", h.Max())
	}
}

func TestRegistrySummaryTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.resizes").Add(10)
	r.Gauge("pool.workers").Set(4)
	r.Histogram("pool.task_latency").Observe(5e6)
	s := r.Summary()
	for _, want := range []string{"sim.resizes", "pool.workers", "pool.task_latency", "p99="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if NewRegistry().Summary() == "" {
		t.Error("empty registry should still render a header")
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Infof("info %d", 1)
	l.Debugf("debug hidden")
	l.Errorf("error shown")
	out := buf.String()
	if !strings.Contains(out, "info 1") || !strings.Contains(out, "error shown") {
		t.Errorf("missing lines: %q", out)
	}
	if strings.Contains(out, "debug hidden") {
		t.Errorf("debug leaked at info level: %q", out)
	}
	var nilLog *Logger
	nilLog.Infof("x")
	nilLog.Errorf("x")
	if nilLog.Level() != LevelQuiet {
		t.Error("nil logger level")
	}
}

func TestCLISessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.ndjson")

	var cfg CLIConfig
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Register(fs)
	if err := fs.Parse([]string{"-events", path, "-obs", "-v", "1"}); err != nil {
		t.Fatal(err)
	}
	sess, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled(sess.Events) {
		t.Fatal("events sink should be enabled")
	}
	sess.Events.Emit(Event{T: 1, Type: "test.event", Fields: []Field{I("n", 1)}})
	sess.Metrics.Counter("test.counter").Inc()

	var out bytes.Buffer
	if err := sess.Finish(&out); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"test.event"`) {
		t.Errorf("events file content: %q", data)
	}
	if !strings.Contains(out.String(), "test.counter") {
		t.Errorf("-obs summary missing counter: %q", out.String())
	}

	// No -events: Discard, and Finish is quiet without -obs.
	sess2, err := (&CLIConfig{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if Enabled(sess2.Events) {
		t.Error("default events sink must be disabled")
	}
	var out2 bytes.Buffer
	if err := sess2.Finish(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Len() != 0 {
		t.Errorf("quiet finish wrote %q", out2.String())
	}
}

func TestObserveSince(t *testing.T) {
	h := NewDurationHistogram()
	t0 := time.Now()
	d := h.ObserveSince(t0)
	if d < 0 || h.Count() != 1 {
		t.Errorf("ObserveSince: d=%v count=%d", d, h.Count())
	}
}
