// Package caasper is the public API of this repository: a from-scratch
// reproduction of CaaSPER, the hybrid reactive/proactive vertical
// autoscaling algorithm for Container-as-a-Service databases described in
// "Vertically Autoscaling Monolithic Applications with CaaSPER" (SIGMOD
// 2024).
//
// The package re-exports the stable surface of the internal packages:
//
//   - the decision algorithm (Algorithm 1) behind NewReactive and
//     NewProactive, both implementing the pluggable Recommender
//     interface of the autoscaling loop;
//   - the price-vs-performance curve machinery (BuildCurve, SKURange)
//     that the algorithm's slope detection is built on;
//   - the forecasters of the proactive mode (SeasonalNaive, HoltWinters,
//     AR, MovingAverage, ...);
//   - the baseline recommenders the paper compares against (the default
//     Kubernetes VPA, an OpenShift-style predictive VPA, fixed limits,
//     and an Autopilot-style moving maximum);
//   - the §5 trace-driven simulator (Simulate) with its K/C/N metrics
//     and pay-as-you-go billing;
//   - the parameter-tuning harness (RandomSearch, ParetoFrontier,
//     BestForAlpha) for mapping customer cost/performance preferences to
//     algorithm parameters;
//   - the live end-to-end harness (RunLive) that executes workloads on a
//     miniature Kubernetes substrate with rolling-update resizes and a
//     transaction-level database model;
//   - workload synthesis (Workloads, AlibabaTrace, Stitch) for every
//     trace family used in the paper's evaluation;
//   - the structured telemetry layer (EventSink, NDJSONSink,
//     MetricsRegistry): a deterministic decision-audit event stream plus
//     runtime metrics, wired through the simulator, the Kubernetes
//     substrate and the tuning harness;
//   - seeded deterministic fault injection (ParseFaultSpec,
//     NewFaultInjector): failed/stuck restarts, metric gaps and
//     scheduling pressure, reproducible byte-for-byte from one seed.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory.
package caasper

import (
	"caasper/internal/baselines"
	"caasper/internal/billing"
	"caasper/internal/core"
	"caasper/internal/dbsim"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/fleet"
	"caasper/internal/forecast"
	"caasper/internal/hooks"
	"caasper/internal/k8s"
	"caasper/internal/obs"
	"caasper/internal/pvp"
	"caasper/internal/recommend"
	"caasper/internal/serve"
	"caasper/internal/sim"
	"caasper/internal/trace"
	"caasper/internal/tuning"
	"caasper/internal/workload"
)

// ---------------------------------------------------------------------------
// Errors
//
// Every public constructor and Validate method classifies its failures by
// wrapping one of these sentinels, so callers branch with errors.Is
// instead of matching message strings:
//
//	if errors.Is(err, caasper.ErrBadWindow) { ... }
var (
	// ErrInvalidConfig marks configuration that violates an invariant
	// (non-positive cores, inverted bounds, missing required fields).
	ErrInvalidConfig = errs.ErrInvalidConfig
	// ErrBadWindow marks invalid decision/observation window sizes.
	ErrBadWindow = errs.ErrBadWindow
	// ErrEmptyTrace marks empty or malformed trace input.
	ErrEmptyTrace = errs.ErrEmptyTrace
	// ErrUnknownRecommender marks a recommender name NewRecommenderByName
	// does not recognise.
	ErrUnknownRecommender = errs.ErrUnknownRecommender
)

// ---------------------------------------------------------------------------
// Core algorithm

// Config carries the Algorithm 1 inputs: slope thresholds (s_h, s_l),
// slack thresholds (m_h, m_l), maximum step sizes (SF_h, SF_l), the
// operational floor c_min, the usage quantile and the SKU ladder.
type Config = core.Config

// Decision is one autoscaling decision with its interpretable
// intermediate state (slope, skew, scaling factor, prose explanation).
type Decision = core.Decision

// Branch identifies which arm of Algorithm 1 produced a decision.
type Branch = core.Branch

// The Algorithm 1 decision branches.
const (
	BranchScaleUp   = core.BranchScaleUp
	BranchScaleDown = core.BranchScaleDown
	BranchWalkDown  = core.BranchWalkDown
	BranchHold      = core.BranchHold
)

// DefaultConfig returns the paper-flavoured defaults over a SKU ladder of
// 1..maxCores whole cores.
func DefaultConfig(maxCores int) Config { return core.DefaultConfig(maxCores) }

// Recommender is the pluggable policy interface of the autoscaling loop
// (paper Figure 1 step 3): Observe one usage sample per metric interval,
// Recommend a target allocation at each decision tick.
type Recommender = recommend.Recommender

// NewReactive builds the reactive CaaSPER recommender: Algorithm 1
// evaluated over a sliding usage window of `window` samples (the paper
// uses the last 40 minutes).
func NewReactive(cfg Config, window int) (Recommender, error) {
	return recommend.NewCaaSPERReactive(cfg, window)
}

// NewProactive builds the hybrid reactive+proactive recommender: the
// decision window combines the observed tail with `horizon` forecast
// samples (Eq. 4) once `minHistory` samples (one full season) have
// accumulated.
func NewProactive(cfg Config, f Forecaster, observedWindow, horizon, minHistory int) (Recommender, error) {
	return recommend.NewCaaSPERProactive(cfg, f, observedWindow, horizon, minHistory)
}

// Decide evaluates Algorithm 1 once, outside any loop: given the current
// whole-core allocation and a CPU usage window, it returns the decision
// with its explanation. This is the stateless entry point for ad-hoc
// "what would CaaSPER do" queries.
func Decide(cfg Config, currentCores int, usage []float64) (Decision, error) {
	r, err := core.New(cfg)
	if err != nil {
		return Decision{}, err
	}
	return r.Decide(currentCores, usage)
}

// ---------------------------------------------------------------------------
// PvP curves

// SKURange is the candidate core ladder of the PvP curve.
type SKURange = pvp.SKURange

// Curve is a price-vs-performance curve: 1−P(throttling) per SKU.
type Curve = pvp.Curve

// BuildCurve constructs the PvP curve for a usage window (Eq. 1).
func BuildCurve(usage []float64, r SKURange) (*Curve, error) {
	return pvp.BuildCurve(usage, r)
}

// ScalingFactor evaluates the Eq. 3 function SF(s, skew).
func ScalingFactor(slope, skew float64, params pvp.ScalingFactorParams) float64 {
	return pvp.ScalingFactor(slope, skew, params)
}

// ScalingFactorParams configures Eq. 3.
type ScalingFactorParams = pvp.ScalingFactorParams

// ---------------------------------------------------------------------------
// Forecasting

// Forecaster predicts future CPU usage from history.
type Forecaster = forecast.Forecaster

// NewSeasonalNaive returns the paper's production forecaster: repeat the
// last full season of `season` samples.
func NewSeasonalNaive(season int) Forecaster { return &forecast.SeasonalNaive{Season: season} }

// NewHoltWinters returns an additive triple-exponential-smoothing
// forecaster.
func NewHoltWinters(alpha, beta, gamma float64, season int) Forecaster {
	return &forecast.HoltWinters{Alpha: alpha, Beta: beta, Gamma: gamma, Season: season}
}

// NewAR returns an autoregressive forecaster of order p (Yule–Walker).
func NewAR(p int) Forecaster { return &forecast.AR{P: p} }

// NewMovingAverage returns a windowed moving-average forecaster.
func NewMovingAverage(window int) Forecaster { return &forecast.MovingAverage{Window: window} }

// NewIntervalSeasonalNaive returns the seasonal-naïve forecaster with
// empirical prediction intervals, enabling the §4.3 confidence prefilter
// (set Proactive.MaxRelativeUncertainty on the core type to use it).
func NewIntervalSeasonalNaive(season int) Forecaster {
	return forecast.NewIntervalSeasonalNaive(season)
}

// EnsembleMode selects how an ensemble combines member forecasts.
type EnsembleMode = forecast.EnsembleMode

// Ensemble combination rules.
const (
	EnsembleMean   = forecast.EnsembleMean
	EnsembleMax    = forecast.EnsembleMax
	EnsembleMedian = forecast.EnsembleMedian
)

// NewEnsemble combines several forecasters under the given rule.
func NewEnsemble(mode EnsembleMode, members ...Forecaster) Forecaster {
	return &forecast.Ensemble{Members: members, Mode: mode}
}

// ---------------------------------------------------------------------------
// Multi-resource scaling (paper §8 future work)

// UsageSample is one multi-dimensional resource observation
// (e.g. {"cpu": 3.2, "mem_gib": 18}).
type UsageSample = pvp.UsageSample

// ResourceLadder bounds one scalable dimension.
type ResourceLadder = core.ResourceLadder

// MultiResourceConfig configures independent per-dimension decisions.
type MultiResourceConfig = core.MultiResourceConfig

// MultiResourceDecision carries per-dimension targets and explanations.
type MultiResourceDecision = core.MultiResourceDecision

// NewMultiResource builds the multi-dimensional recommender: one
// Algorithm 1 evaluation per resource dimension (CPU, memory, ...) over
// its marginal usage distribution.
func NewMultiResource(cfg MultiResourceConfig) (*core.MultiResourceRecommender, error) {
	return core.NewMultiResource(cfg)
}

// ---------------------------------------------------------------------------
// Resource vectors
//
// The resource-vector API generalises the CPU-only bounds to
// CPU + RAM + disk + replicas. Every options struct (SimOptions,
// LiveOptions, TenantSpec) carries a ResourceRange next to its deprecated
// scalar CPU fields; non-zero scalars win, so CPU-only callers behave
// byte-identically.

// Resources is one point in resource space: CPU cores, RAM GB, disk GB
// and replica count.
type Resources = core.Resources

// ResourceLimits bounds the scalable dimensions (Min/Max per dimension);
// a zero Max leaves a dimension unmanaged.
type ResourceLimits = core.Limits

// ResourceRange is the full vector contract of a workload: the initial
// allocation plus the min/max bounds of every managed dimension.
type ResourceRange = core.ResourceRange

// ParseResourceSpec parses the -resources CLI grammar, e.g.
// "cpu=2-16,ram=4-32,disk=20,replicas=1-4" (a single number pins the
// dimension's initial value; a range bounds its scaling).
var ParseResourceSpec = core.ParseResourceSpec

// MemoryPolicy is the dual-threshold RAM policy (grow when free memory
// falls under max(MinFreeGB, MinFreePct·alloc), shrink with hysteresis).
type MemoryPolicy = recommend.MemoryPolicy

// DiskPolicy is the grow-only volume policy (keep HeadroomPct free,
// round up to StepGB, never shrink).
type DiskPolicy = recommend.DiskPolicy

// DefaultMemoryPolicy / DefaultDiskPolicy return the running defaults
// used wherever a zero policy is supplied.
var (
	DefaultMemoryPolicy = recommend.DefaultMemoryPolicy
	DefaultDiskPolicy   = recommend.DefaultDiskPolicy
)

// BillingRates prices the resource vector per billing period.
type BillingRates = billing.Rates

// DefaultBillingRates returns the running price weights (CPU 1.0 per
// core-period, RAM 0.25 per GB-period, disk 0.02 per GB-period).
var DefaultBillingRates = billing.DefaultRates

// VectorMeter meters a multi-resource allocation into one bill.
type VectorMeter = billing.VectorMeter

// NewVectorMeter builds a VectorMeter over the given rates and periods.
var NewVectorMeter = billing.NewVectorMeter

// DeriveRAMTrace / DeriveDiskTrace synthesize RAM-usage and disk-usage
// series from a CPU demand trace — the stand-ins the simulator uses when
// a vector run supplies no explicit non-CPU traces.
var (
	DeriveRAMTrace  = workload.DeriveRAM
	DeriveDiskTrace = workload.DeriveDisk
)

// VectorSimResult aggregates a multi-resource simulation: the embedded
// CPU SimResult plus the RAM/disk trajectories, OOM accounting and
// per-dimension bills.
type VectorSimResult = sim.VectorResult

// SimulateVector replays a demand trace through a recommender across the
// full resource vector: the CPU dimension runs through Simulate
// unchanged, RAM scales under MemoryPolicy, disk grows under DiskPolicy.
// SimOptions.Resources must manage at least one non-CPU dimension.
func SimulateVector(tr *Trace, rec Recommender, opts SimOptions) (*VectorSimResult, error) {
	return sim.RunVector(tr, rec, opts)
}

// ---------------------------------------------------------------------------
// Baselines

// NewControl returns the fixed-limits reference policy.
func NewControl(cores int) Recommender { return baselines.NewControl(cores) }

// NewKubernetesVPA returns the default-VPA baseline (decaying histogram,
// P90 target) with upstream-default options over the given ladder.
func NewKubernetesVPA(maxCores int) (Recommender, error) {
	return baselines.NewKubernetesVPA(baselines.DefaultKubernetesVPAOptions(maxCores))
}

// NewOpenShiftVPA returns the OpenShift-style predictive baseline.
func NewOpenShiftVPA(maxCores int) (Recommender, error) {
	return baselines.NewOpenShiftVPA(baselines.DefaultOpenShiftVPAOptions(maxCores))
}

// NewAutopilot returns the moving-window-maximum baseline.
func NewAutopilot(maxCores int) (Recommender, error) {
	return baselines.NewAutopilot(baselines.DefaultAutopilotOptions(maxCores))
}

// ---------------------------------------------------------------------------
// Named recommender construction

// RecommenderSettings carries the shared knobs of the named recommender
// constructors. Only MaxCores is required; every other field has the
// paper's running default. It aliases recommend.Settings so the serve
// layer can hot-swap policies by name without importing this package.
type RecommenderSettings = recommend.Settings

// RecommenderNames lists the names NewRecommenderByName accepts, sorted.
func RecommenderNames() []string { return recommend.Names() }

// NewRecommenderByName builds a recommender from its CLI-facing name —
// the one switch every command shares instead of each growing its own:
//
//	caasper             the reactive CaaSPER policy (Algorithm 1)
//	caasper-proactive   the hybrid reactive+forecast policy (Eq. 4)
//	vpa                 the default Kubernetes VPA baseline
//	openshift           the OpenShift-style predictive VPA baseline
//	autopilot           the Autopilot-style moving-maximum baseline
//	control             fixed limits at ControlCores
//
// An unrecognised name wraps ErrUnknownRecommender.
func NewRecommenderByName(name string, s RecommenderSettings) (Recommender, error) {
	return recommend.NewByName(name, s)
}

// ---------------------------------------------------------------------------
// Traces and workloads

// Trace is a regularly sampled CPU usage series in cores.
type Trace = trace.Trace

// NewTrace builds a trace from raw values.
var NewTrace = trace.New

// ReadTraceCSV parses a trace in the repository's CSV form
// (index,cpu_cores rows with a header), attaching the given name and
// sample interval.
var ReadTraceCSV = trace.ReadCSV

// Workloads exposes the paper's synthetic workload generators keyed by
// name. Each takes a seed and returns a one-minute-resolution trace.
var Workloads = map[string]func(seed uint64) *Trace{
	"step62h":    workload.StepTrace62h,
	"workday12h": workload.Workday12h,
	"cyclical3d": workload.Cyclical3Day,
	"workweek":   workload.WorkWeek,
	"customer":   workload.CustomerTrace,
	"throttled8": workload.ThrottledAt8,
	"healthy32":  workload.HealthyAt32,
	"overprov12": workload.OverProvisionedAt12,
	"throttled3": workload.ThrottledAt3,
}

// AlibabaIDs lists the Alibaba-style trace identifiers of §6.3.
var AlibabaIDs = workload.AlibabaIDs

// AlibabaTrace synthesizes the stand-in for one Alibaba container trace.
func AlibabaTrace(id string, seed uint64) (*Trace, error) {
	return workload.AlibabaTrace(id, seed)
}

// ---------------------------------------------------------------------------
// Simulation (§5)

// SimOptions configures the trace-driven simulator.
type SimOptions = sim.Options

// SimResult aggregates one simulation run: the K/C/N metrics, throttled
// observation share, billing cost and full per-minute series.
type SimResult = sim.Result

// DefaultSimOptions returns 10-minute decisions, 10-minute resizes and
// hourly billing.
func DefaultSimOptions(initial, maxCores int) SimOptions {
	return sim.DefaultOptions(initial, maxCores)
}

// Simulate replays a demand trace through a recommender.
func Simulate(tr *Trace, rec Recommender, opts SimOptions) (*SimResult, error) {
	return sim.Run(tr, rec, opts)
}

// ---------------------------------------------------------------------------
// Parameter tuning (§5)

// TuningParams is one tunable parameter combination.
type TuningParams = tuning.Params

// TuningEvaluation is one simulated evaluation of a combination.
type TuningEvaluation = tuning.Evaluation

// RandomSearch evaluates random parameter combinations on a trace.
var RandomSearch = tuning.RandomSearch

// RandomSearchReport is RandomSearch plus a TuningReport describing how
// many sampled combinations were actually evaluated versus skipped.
var RandomSearchReport = tuning.RandomSearchReport

// TuningOptions configures RandomSearch.
type TuningOptions = tuning.SearchOptions

// TuningReport summarises a RandomSearchReport run (sampled / evaluated /
// skipped counts and the first skip's reason).
type TuningReport = tuning.SearchReport

// ParetoFrontier extracts the non-dominated (K, C) evaluations.
var ParetoFrontier = tuning.ParetoFrontier

// BestForAlpha minimises G(α, p) = α·K + C (Eq. 5).
var BestForAlpha = tuning.BestForAlpha

// SampleAlphas draws slack-penalty coefficients from the log-uniform
// distribution of Eq. 6, sorted ascending.
var SampleAlphas = tuning.SampleAlphas

// ---------------------------------------------------------------------------
// Live end-to-end harness (§6.2)

// LiveOptions configures the end-to-end run on the Kubernetes substrate.
type LiveOptions = dbsim.HarnessOptions

// LiveResult aggregates a live run: transaction throughput/latency,
// scaling counts, failovers, slack and billing.
type LiveResult = dbsim.LiveResult

// LoadSchedule is a transaction workload: arrival rates plus a mix.
type LoadSchedule = workload.LoadSchedule

// Cluster is the miniature Kubernetes node pool hosting a stateful set.
type Cluster = k8s.Cluster

// SmallCluster returns the paper's small test cluster (6 × 8 CPU / 32 GiB).
var SmallCluster = k8s.SmallCluster

// LargeCluster returns the paper's large test cluster (6 × 16 CPU / 56 GiB).
var LargeCluster = k8s.LargeCluster

// DatabaseA returns the paper's Database A preset: 3 replicas, strict HA,
// 5–15 minute resizes.
func DatabaseA(initial, maxCores int) LiveOptions { return dbsim.DatabaseAOptions(initial, maxCores) }

// DatabaseB returns the paper's Database B preset: 2 read-scale replicas,
// 3–5 minute resizes.
func DatabaseB(initial, maxCores int) LiveOptions { return dbsim.DatabaseBOptions(initial, maxCores) }

// RunLive executes the full autoscaling loop (Figure 1) for the schedule.
func RunLive(sched *LoadSchedule, rec Recommender, opts LiveOptions) (*LiveResult, error) {
	return dbsim.RunLive(sched, rec, opts)
}

// ---------------------------------------------------------------------------
// Fleet controller

// TenantSpec describes one tenant of a fleet run: its demand trace, its
// recommender factory and its stateful-set shape.
type TenantSpec = fleet.TenantSpec

// FleetOptions configures a fleet run: the shared cluster, the horizon,
// the decision cadence, the worker pool and — through the embedded
// RunHooks — telemetry and fault injection.
type FleetOptions = fleet.Options

// FleetResult aggregates a fleet run: per-tenant K/C/N, cost and
// arbitration losses plus the fleet-level totals.
type FleetResult = fleet.Result

// FleetTenantResult is one tenant's outcome within a FleetResult.
type FleetTenantResult = fleet.TenantResult

// Fleet tick engines, for FleetOptions.Engine: the minute-stepped
// reference engine (also selected by "") and the discrete-event engine,
// which produces byte-identical results and event streams while scaling
// with trace inflections and decision ticks instead of simulated minutes.
const (
	FleetEngineStepped = fleet.EngineStepped
	FleetEngineEvents  = fleet.EngineEvents
)

// Fleet sharding modes, for FleetOptions.Sharding: the event engine's
// shard-parallel mode (the default, also selected by "") partitions the
// fleet into node-disjoint shard groups — tenants that can never contend
// for the same node's capacity — and runs them concurrently, merging the
// per-shard outputs back into the single-shard byte order afterwards.
// FleetShardingOff forces the single-shard reference loop; results and
// event streams are byte-identical either way.
const (
	FleetShardingAuto = fleet.ShardingAuto
	FleetShardingOff  = fleet.ShardingOff
)

// DefaultFleetOptions returns the fleet defaults: 10-minute decisions,
// hourly billing, shortest-trace horizon.
func DefaultFleetOptions() FleetOptions { return fleet.DefaultOptions() }

// RunFleet autoscales every tenant concurrently against one shared
// cluster: a parallel observe/decide phase per tick, then a sequential
// enact phase where the capacity arbiter grants contended scale-ups in
// throttling-severity order and defers the rest. Results and the
// "fleet.*" event stream are byte-identical at every worker count.
func RunFleet(tenants []TenantSpec, opts FleetOptions) (*FleetResult, error) {
	return fleet.Run(tenants, opts)
}

// ---------------------------------------------------------------------------
// Fault injection

// RunHooks is the telemetry/fault knob set shared by SimOptions,
// LiveOptions and FleetOptions: an event sink, a metrics registry and a
// fault spec + seed, embedded in each options struct under one canonical
// spelling. The older per-struct fields remain as deprecated aliases that
// win when set.
type RunHooks = hooks.RunHooks

// FaultSpec is a parsed fault-injection specification (what to inject,
// with which probabilities and durations).
type FaultSpec = faults.Spec

// FaultInjector draws deterministic faults from a spec and a seed: the
// same seed reproduces the same fault pattern byte-for-byte at any
// worker count. A nil injector is inert (the fault-free fast path).
type FaultInjector = faults.Injector

// FaultCounts tallies injected faults by kind.
type FaultCounts = faults.Counts

// ParseFaultSpec parses the -faults grammar, e.g.
// "restart-fail:p=0.1,restart-stuck:p=0.05:dur=600,metrics-gap:p=0.02".
// Empty input yields an empty spec; NewFaultInjector then returns nil.
var ParseFaultSpec = faults.ParseSpec

// NewFaultInjector builds a deterministic injector (nil for empty specs).
var NewFaultInjector = faults.New

// WorkdaySchedule returns the §6.2 12-hour live workload.
var WorkdaySchedule = workload.WorkdaySchedule

// ScheduleForCores converts a CPU demand pattern into a transaction
// schedule under the given mix.
var ScheduleForCores = workload.ScheduleForCores

// TracePattern adapts a trace into a demand pattern for ScheduleForCores.
var TracePattern = workload.TracePattern

// MixedOLTP returns the blended TPC-C + YCSB transaction mix.
var MixedOLTP = workload.MixedOLTP

// Stitch recreates a customer trace from benchmark mixes (Stitcher-style).
var Stitch = workload.Stitch

// ---------------------------------------------------------------------------
// Telemetry

// Event is one structured telemetry record: simulated time, a dotted type
// name and ordered key/value fields, NDJSON-encodable bit-identically for
// every worker count.
type Event = obs.Event

// EventSink receives structured events; DiscardEvents drops them at
// near-zero cost and is what every Options zero value means.
type EventSink = obs.Sink

// NDJSONSink streams events to a writer as newline-delimited JSON.
type NDJSONSink = obs.NDJSONSink

// MemorySink buffers events in memory (tests, deterministic replay).
type MemorySink = obs.MemorySink

// MetricsRegistry is a named collection of runtime counters, gauges and
// latency histograms with a formatted Summary table.
type MetricsRegistry = obs.Registry

// DiscardEvents is the no-op event sink.
var DiscardEvents = obs.Discard

// NewNDJSONSink wraps a writer in a buffered NDJSON event sink; call
// Flush before exit.
var NewNDJSONSink = obs.NewNDJSONSink

// NewMemorySink returns an in-memory event buffer.
var NewMemorySink = obs.NewMemorySink

// NewMetricsRegistry returns an empty runtime-metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// ---------------------------------------------------------------------------
// Recommender service

// ServeOptions configures the long-running recommender service behind
// caasper-serve: shard count, ingest queue depth, decision cadence,
// snapshot path and telemetry hooks.
type ServeOptions = serve.Options

// ServeTenantConfig is a tenant's registration body for the service:
// which policy decides for it and over which min/max core range.
type ServeTenantConfig = serve.TenantConfig

// ServeDecisionRecord is one decision as streamed by the service's
// NDJSON decision endpoint.
type ServeDecisionRecord = serve.DecisionRecord

// Server is the recommender-as-a-service HTTP server: tenants POST
// metric samples, decisions stream back, and the admin surface retunes
// core ranges and hot-swaps policies without a restart. Expose via
// Handler, checkpoint via Snapshot, stop with Close.
type Server = serve.Server

// NewServer builds a Server, starts its shard workers, and restores the
// checkpoint at ServeOptions.SnapshotPath when one exists.
var NewServer = serve.New
