GO ?= go

.PHONY: build test race bench bench-all benchdiff check chaos fleet serve-smoke apicheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# Compare two benchmark captures; fails on >10% ns/op or any allocs/op
# regression: make benchdiff OLD=BENCH_old.json NEW=BENCH_sim.json
OLD ?= BENCH_old.json
NEW ?= BENCH_sim.json
benchdiff:
	sh scripts/benchdiff $(OLD) $(NEW)

# Full verification gate: vet + build + race tests + benchmark smoke.
check:
	sh scripts/check.sh

# Fixed-seed fault-injection matrix diffed against the chaos goldens.
# Regenerate after an intentional behaviour change: UPDATE=1 make chaos
chaos:
	sh scripts/chaos.sh

# 16-tenant fleet determinism golden: byte-identical event streams at
# workers 1/4/8 under -race. Regenerate: UPDATE=1 make fleet
fleet:
	sh scripts/fleet.sh

# Serve smoke: caasper-serve + loadgen + decision-stream golden + drain.
# Regenerate after an intentional decision change: UPDATE=1 make serve-smoke
serve-smoke:
	sh scripts/serve.sh

# Exported-API snapshot diffed against testdata/api.txt.
# Regenerate after an intentional API change: UPDATE=1 make apicheck
apicheck:
	sh scripts/apicheck.sh
