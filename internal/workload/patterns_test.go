package workload

import (
	"math"
	"testing"
	"time"

	"caasper/internal/stats"
)

func TestRenderGridAndNonNegativity(t *testing.T) {
	p := func(m float64) float64 { return m - 5 } // negative for m<5
	tr := Render("r", p, 10*time.Minute)
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Interval != time.Minute {
		t.Errorf("Interval = %v", tr.Interval)
	}
	for i := 0; i < 5; i++ {
		if tr.Values[i] != 0 {
			t.Errorf("negative demand not floored at %d: %v", i, tr.Values[i])
		}
	}
	if tr.Values[9] != 4 {
		t.Errorf("Values[9] = %v", tr.Values[9])
	}
}

func TestConstantAndStep(t *testing.T) {
	c := Constant(3)
	if c(0) != 3 || c(1e6) != 3 {
		t.Error("Constant misbehaves")
	}
	s := Step(2, 7, 480) // 8h low, 8h high
	if s(0) != 2 || s(479) != 2 {
		t.Error("step low phase wrong")
	}
	if s(480) != 7 || s(959) != 7 {
		t.Error("step high phase wrong")
	}
	if s(960) != 2 {
		t.Error("step should repeat")
	}
}

func TestSineBounds(t *testing.T) {
	p := Sine(5, 2, 60)
	for m := 0.0; m < 240; m++ {
		v := p(m)
		if v < 3-1e-9 || v > 7+1e-9 {
			t.Fatalf("Sine out of [3,7] at %v: %v", m, v)
		}
	}
	if math.Abs(p(0)-5) > 1e-9 {
		t.Errorf("Sine(0) = %v, want 5", p(0))
	}
}

func TestDiurnalShape(t *testing.T) {
	p := Diurnal(2, 6, 13*60)
	peak := p(13 * 60)
	trough := p(1 * 60)
	if math.Abs(peak-6) > 1e-6 {
		t.Errorf("peak = %v, want 6", peak)
	}
	if trough > 2.5 {
		t.Errorf("trough = %v, want ≈2", trough)
	}
	// Daily periodicity.
	if math.Abs(p(13*60)-p(13*60+24*60)) > 1e-9 {
		t.Error("Diurnal should repeat daily")
	}
	// Base never undershoots.
	for m := 0.0; m < 24*60; m += 7 {
		if v := p(m); v < 2-1e-9 || v > 6+1e-9 {
			t.Fatalf("Diurnal out of [2,6] at %v: %v", m, v)
		}
	}
}

func TestSpikeAndRamp(t *testing.T) {
	s := Spike(Constant(1), 10, 5, 3)
	if s(9) != 1 || s(10) != 4 || s(14) != 4 || s(15) != 1 {
		t.Error("Spike window wrong")
	}
	r := Ramp(2, 6, 10, 20)
	if r(0) != 2 || r(9.99) != 2 {
		t.Error("Ramp before window wrong")
	}
	if r(30) != 6 || r(100) != 6 {
		t.Error("Ramp after window wrong")
	}
	if math.Abs(r(20)-4) > 1e-9 {
		t.Errorf("Ramp midpoint = %v, want 4", r(20))
	}
}

func TestPiecewiseAndRepeat(t *testing.T) {
	p := Piecewise(
		Segment{Pattern: Constant(1), Minutes: 10},
		Segment{Pattern: Constant(2), Minutes: 10},
	)
	if p(5) != 1 || p(15) != 2 {
		t.Error("Piecewise segments wrong")
	}
	// Last segment extends forever.
	if p(100) != 2 {
		t.Error("Piecewise should hold last segment")
	}
	// Time is rebased per segment.
	ramp := Piecewise(
		Segment{Pattern: Constant(0), Minutes: 10},
		Segment{Pattern: Ramp(0, 10, 0, 10), Minutes: 10},
	)
	if math.Abs(ramp(15)-5) > 1e-9 {
		t.Errorf("rebased ramp(15) = %v, want 5", ramp(15))
	}
	rep := Repeat(p, 20)
	if rep(25) != 1 || rep(35) != 2 {
		t.Error("Repeat wrong")
	}
}

func TestAddAndScalePattern(t *testing.T) {
	p := Add(Constant(1), Constant(2), Constant(3))
	if p(0) != 6 {
		t.Errorf("Add = %v", p(0))
	}
	sp := ScalePattern(Constant(4), 0.5)
	if sp(0) != 2 {
		t.Errorf("ScalePattern = %v", sp(0))
	}
}

func TestWithNoiseDeterminismAndFloor(t *testing.T) {
	mk := func() []float64 {
		rng := stats.NewRNG(77)
		p := WithNoise(Constant(0.1), 1.0, rng)
		out := make([]float64, 100)
		for i := range out {
			out[i] = p(float64(i))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed noise diverged")
		}
		if a[i] < 0 {
			t.Fatal("noise must be floored at 0")
		}
	}
	// Noise actually perturbs.
	var differs bool
	for _, v := range a {
		if v != 0.1 {
			differs = true
		}
	}
	if !differs {
		t.Error("noise had no effect")
	}
}

func TestWithJitterBounds(t *testing.T) {
	rng := stats.NewRNG(5)
	p := WithJitter(Constant(10), 0.2, rng)
	for i := 0; i < 200; i++ {
		v := p(float64(i))
		if v < 8-1e-9 || v > 12+1e-9 {
			t.Fatalf("jitter out of bounds: %v", v)
		}
	}
}

func TestPaperTraceShapes(t *testing.T) {
	t.Run("step62h", func(t *testing.T) {
		tr := StepTrace62h(1)
		if tr.Duration() != 62*time.Hour {
			t.Errorf("duration = %v", tr.Duration())
		}
		s := tr.Summarize()
		if s.Max > 9 || s.Max < 6.5 {
			t.Errorf("max = %v, want ≈7-8", s.Max)
		}
		// First 8 hours should hover near 2.5 cores.
		lowMean := stats.Mean(tr.Window(0, 8*60))
		if lowMean < 1.8 || lowMean > 3.2 {
			t.Errorf("low-phase mean = %v", lowMean)
		}
		highMean := stats.Mean(tr.Window(8*60, 16*60))
		if highMean < 6.3 || highMean > 7.7 {
			t.Errorf("high-phase mean = %v", highMean)
		}
	})
	t.Run("workday12h", func(t *testing.T) {
		tr := Workday12h(1)
		if tr.Duration() != 12*time.Hour {
			t.Errorf("duration = %v", tr.Duration())
		}
		light := stats.Mean(tr.Window(0, 3*60))
		heavy := stats.Mean(tr.Window(3*60, 9*60))
		if light < 1 || light > 3.4 {
			t.Errorf("light mean = %v, want ~1-3.3", light)
		}
		if heavy < 5 || heavy > 6 {
			t.Errorf("heavy mean = %v, want ~5.5", heavy)
		}
	})
	t.Run("cyclical3day", func(t *testing.T) {
		tr := Cyclical3Day(1)
		if tr.Duration() != 72*time.Hour {
			t.Errorf("duration = %v", tr.Duration())
		}
		s := tr.Summarize()
		if s.Max < 10 || s.Max > 14 {
			t.Errorf("max = %v, want ≈12 (Day-2 spike)", s.Max)
		}
		// Day 1 and Day 3 should be similar (cyclical), Day 2 has the spike.
		d1 := stats.Max(tr.Window(0, 24*60))
		d2 := stats.Max(tr.Window(24*60, 48*60))
		if d2 <= d1 {
			t.Errorf("day2 max %v should exceed day1 max %v", d2, d1)
		}
	})
	t.Run("throttled-capped", func(t *testing.T) {
		tr := ThrottledAt8(1)
		if stats.Max(tr.Values) > 8 {
			t.Error("ThrottledAt8 must be capped at 8")
		}
		// Most samples near the cap.
		atCap := 0
		for _, v := range tr.Values {
			if v > 7.5 {
				atCap++
			}
		}
		if frac := float64(atCap) / float64(tr.Len()); frac < 0.4 {
			t.Errorf("only %.0f%% of samples near cap", frac*100)
		}
	})
	t.Run("throttled3", func(t *testing.T) {
		tr := ThrottledAt3(1)
		if stats.Max(tr.Values) > 3 {
			t.Error("cap exceeded")
		}
		if stats.Mean(tr.Values) < 2.8 {
			t.Errorf("mean = %v, want pinned at cap", stats.Mean(tr.Values))
		}
	})
	t.Run("overprov12", func(t *testing.T) {
		tr := OverProvisionedAt12(1)
		if s := tr.Summarize(); s.Max > 4.5 {
			t.Errorf("max = %v, want ≲4 (deep over-provisioning vs 12)", s.Max)
		}
	})
	t.Run("customer", func(t *testing.T) {
		tr := CustomerTrace(1)
		s := tr.Summarize()
		if s.Max < 5.5 {
			t.Errorf("max = %v, want bursts ≥6", s.Max)
		}
		if s.Min > 2.5 {
			t.Errorf("min = %v, want light phases ≈2", s.Min)
		}
	})
}

func TestPaperTracesDeterministic(t *testing.T) {
	a := Cyclical3Day(42)
	b := Cyclical3Day(42)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same-seed trace diverged")
		}
	}
	c := Cyclical3Day(43)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}
