// Allocation-regression pins for the decision hot path. The perf story of
// the bounded-window rework is not just "faster once" — it is a budget:
// the simulator minute loop allocates O(1) per run regardless of trace
// length, and a warmed-up recommender allocates nothing at steady state.
// These tests fail the build if a future change quietly re-introduces
// per-minute garbage, the same way the golden event streams pin behaviour.
package caasper_test

import (
	"runtime/debug"
	"testing"

	"caasper"
)

// TestSimulateWorkdayAllocBudget pins the disabled-telemetry simulator
// loop: one full 720-minute workday, fresh recommender each run, no event
// sink. The seed implementation spent 387 allocs per workday (one sort +
// curve + explanation boxing per decision tick); the ring-buffer window,
// in-place quantile selection and histogram curve build cut that to ~103,
// all of it setup cost. The budget leaves slack for noise but fails long
// before per-tick allocations creep back in.
func TestSimulateWorkdayAllocBudget(t *testing.T) {
	tr := caasper.Workloads["workday12h"](1)
	opts := caasper.DefaultSimOptions(6, 8)
	allocs := testing.AllocsPerRun(10, func() {
		rec, err := caasper.NewReactive(caasper.DefaultConfig(8), 40)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := caasper.Simulate(tr, rec, opts); err != nil {
			t.Fatal(err)
		}
	})
	// 720 minutes / 72 decision ticks: anything near one alloc per tick
	// means a hot-path regression.
	const budget = 140
	if allocs > budget {
		t.Fatalf("workday simulation allocated %.0f times, budget %d (seed was 387)", allocs, budget)
	}
}

// TestMonthReplaySteadyStateAllocs replays a full simulated month (43200
// minutes) through a warmed-up reactive recommender and requires the
// observe/decide loop to allocate nothing at all. Combined with the ring
// buffer's fixed backing array (internal/window), this is the O(window)
// memory guarantee: a fleet-month replay holds one 40-sample window per
// tenant, not a month of history.
func TestMonthReplaySteadyStateAllocs(t *testing.T) {
	rec, err := caasper.NewReactive(caasper.DefaultConfig(16), 40)
	if err != nil {
		t.Fatal(err)
	}
	tr := caasper.Workloads["workday12h"](7)
	vals := tr.Values
	cur := 6
	// Warm-up: fill the window and let the decision scratch buffers reach
	// their high-water marks.
	for m := 0; m < 2*40; m++ {
		rec.Observe(m, vals[m%len(vals)])
		if m%10 == 9 {
			cur = rec.Recommend(cur)
		}
	}
	const monthMinutes = 43200
	// A GC cycle mid-measurement clears sync.Pool caches, and the next
	// Get's refill shows up as an "allocation" of the replay loop —
	// pausing the collector keeps the pin about the code path, not about
	// collector timing (which earlier tests' heap pressure perturbs).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(1, func() {
		for m := 0; m < monthMinutes; m++ {
			rec.Observe(m, vals[m%len(vals)])
			if m%10 == 9 {
				cur = rec.Recommend(cur)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("month replay allocated %.0f times after warm-up, want 0", allocs)
	}
	if cur < 1 || cur > 16 {
		t.Fatalf("recommendation %d escaped [1,16]", cur)
	}
}

// TestMonthReplayMatchesUnboundedDecisions drives the same month-long
// sample stream through the ring-windowed recommender and a brute-force
// replica that slices the window off an unbounded history, requiring
// bit-equal decisions at every tick — the correctness half of the
// bounded-memory contract, at the public-API level.
func TestMonthReplayMatchesUnboundedDecisions(t *testing.T) {
	const window = 40
	rec, err := caasper.NewReactive(caasper.DefaultConfig(16), window)
	if err != nil {
		t.Fatal(err)
	}
	cfg := caasper.DefaultConfig(16)
	tr := caasper.Workloads["workday12h"](3)
	vals := tr.Values
	var history []float64
	cur, refCur := 6, 6
	for m := 0; m < 43200; m++ {
		v := vals[m%len(vals)]
		rec.Observe(m, v)
		history = append(history, v)
		if m%10 != 9 {
			continue
		}
		cur = rec.Recommend(cur)
		win := history
		if len(win) > window {
			win = win[len(win)-window:]
		}
		d, err := caasper.Decide(cfg, refCur, win)
		if err != nil {
			t.Fatalf("minute %d: %v", m, err)
		}
		refCur = d.TargetCores
		if cur != refCur {
			t.Fatalf("minute %d: ring window recommends %d, unbounded history %d", m, cur, refCur)
		}
	}
}
