package recommend

import (
	"encoding/json"
	"math"
	"testing"

	"caasper/internal/core"
	"caasper/internal/forecast"
)

// demand is a deterministic wiggly series exercising every Algorithm 1
// branch: ramps, plateaus and a drop.
func demandAt(t int) float64 {
	base := 4 + 3*math.Sin(float64(t)/37)
	if t%200 > 150 {
		base += 5
	}
	return base
}

// runAdapter drives rec over minutes [from, to), deciding every 10
// samples, and returns the decision series.
func runAdapter(t *testing.T, rec Recommender, from, to int, cores *int) []int {
	t.Helper()
	var out []int
	for m := from; m < to; m++ {
		rec.Observe(m, demandAt(m))
		if (m+1)%10 == 0 {
			*cores = rec.Recommend(*cores)
			out = append(out, *cores)
		}
	}
	return out
}

// TestStateSnapshotRoundTrip pins the checkpoint guarantee: an adapter
// snapshotted mid-window (through a JSON round trip, as the serve layer's
// checkpoint file does) and restored onto a fresh identically configured
// adapter emits bit-identical subsequent decisions.
func TestStateSnapshotRoundTrip(t *testing.T) {
	cfg := core.DefaultConfig(16)
	build := func(name string) StateSnapshotter {
		t.Helper()
		switch name {
		case "reactive":
			r, err := NewCaaSPERReactive(cfg, 40)
			if err != nil {
				t.Fatal(err)
			}
			return r
		case "proactive":
			r, err := NewCaaSPERProactive(cfg, &forecast.SeasonalNaive{Season: 120}, 40, 20, 120)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		t.Fatalf("unknown adapter %q", name)
		return nil
	}
	// Cut points cover: mid-warm-up, exactly at window saturation, deep in
	// steady operation, and (for proactive) after forecast activation.
	for _, name := range []string{"reactive", "proactive"} {
		for _, cut := range []int{7, 40, 173, 360} {
			const end = 600
			ref := build(name)
			refCores := 8
			refAll := runAdapter(t, ref.(Recommender), 0, end, &refCores)

			live := build(name)
			liveCores := 8
			runAdapter(t, live.(Recommender), 0, cut, &liveCores)
			raw, err := json.Marshal(live.SnapshotState())
			if err != nil {
				t.Fatalf("%s cut=%d: marshal: %v", name, cut, err)
			}
			var state State
			if err := json.Unmarshal(raw, &state); err != nil {
				t.Fatalf("%s cut=%d: unmarshal: %v", name, cut, err)
			}

			restored := build(name)
			if err := restored.RestoreState(state); err != nil {
				t.Fatalf("%s cut=%d: restore: %v", name, cut, err)
			}
			restoredCores := liveCores
			got := runAdapter(t, restored.(Recommender), cut, end, &restoredCores)

			want := refAll[len(refAll)-len(got):]
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s cut=%d: decision %d after restore = %d cores, uninterrupted run said %d",
						name, cut, i, got[i], want[i])
				}
			}
			// The lazily materialised explanation must survive too: the
			// memo's template is part of the snapshot.
			if e1, e2 := ref.(Explainer).Explain(), restored.(Explainer).Explain(); e1 != e2 {
				t.Fatalf("%s cut=%d: explanation diverged after restore:\n  uninterrupted: %q\n  restored:      %q",
					name, cut, e1, e2)
			}
		}
	}
}

// TestRestoreStateRejectsBadSnapshot pins that a malformed window
// snapshot surfaces as an error instead of corrupting the ring.
func TestRestoreStateRejectsBadSnapshot(t *testing.T) {
	r, err := NewCaaSPERReactive(core.DefaultConfig(8), 10)
	if err != nil {
		t.Fatal(err)
	}
	bad := State{Window: make([]float64, 11), Total: 11} // exceeds capacity
	if err := r.RestoreState(bad); err == nil {
		t.Fatal("RestoreState accepted a window larger than the adapter's capacity")
	}
}

// TestDecisionReporter pins that both adapters surface their last full
// decision, including the branch and target, through the optional
// interface the serve layer's decision records use.
func TestDecisionReporter(t *testing.T) {
	r, err := NewCaaSPERReactive(core.DefaultConfig(16), 40)
	if err != nil {
		t.Fatal(err)
	}
	var rep DecisionReporter = r
	if d := rep.LastFullDecision(); d.TargetCores != 0 {
		t.Fatalf("zero-value decision expected before first Recommend, got %+v", d)
	}
	cores := 8
	runAdapter(t, r, 0, 100, &cores)
	d := rep.LastFullDecision()
	if d.TargetCores != cores {
		t.Fatalf("LastFullDecision().TargetCores = %d, Recommend said %d", d.TargetCores, cores)
	}
}
