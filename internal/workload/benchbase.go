package workload

import (
	"errors"
	"fmt"
	"time"

	"caasper/internal/stats"
	"caasper/internal/trace"
)

// This file models a BenchBase-style load driver (paper §6.2: "we generate
// load using a selection of queries across the TPC-H, TPC-C, and YCSB
// benchmarks, using BenchBase to drive the client's workload across many
// terminals"). The live evaluation only needs the benchmarks as sources of
// transaction classes with characteristic CPU costs and read/write mixes;
// this package provides those classes, weighted mixes, and arrival-rate
// schedules that the dbsim package executes.

// TxnClass describes one transaction type of a benchmark.
type TxnClass struct {
	// Name identifies the class, e.g. "tpcc.NewOrder".
	Name string
	// CPUSeconds is the CPU time one transaction consumes on the
	// primary (writes) or on any replica (reads).
	CPUSeconds float64
	// Write marks transactions that must execute on the primary.
	Write bool
}

// MixEntry pairs a transaction class with its relative weight in a mix.
type MixEntry struct {
	Class  TxnClass
	Weight float64
}

// Mix is a weighted set of transaction classes.
type Mix []MixEntry

// MeanCPUSeconds returns the weighted mean CPU cost per transaction.
func (m Mix) MeanCPUSeconds() float64 {
	var wsum, csum float64
	for _, e := range m {
		wsum += e.Weight
		csum += e.Weight * e.Class.CPUSeconds
	}
	if wsum == 0 {
		return 0
	}
	return csum / wsum
}

// WriteFraction returns the weighted fraction of write transactions.
func (m Mix) WriteFraction() float64 {
	var wsum, w float64
	for _, e := range m {
		wsum += e.Weight
		if e.Class.Write {
			w += e.Weight
		}
	}
	if wsum == 0 {
		return 0
	}
	return w / wsum
}

// Pick samples a transaction class according to the weights.
func (m Mix) Pick(rng *stats.RNG) TxnClass {
	var wsum float64
	for _, e := range m {
		wsum += e.Weight
	}
	target := rng.Float64() * wsum
	var cum float64
	for _, e := range m {
		cum += e.Weight
		if cum >= target {
			return e.Class
		}
	}
	return m[len(m)-1].Class
}

// The standard mixes. CPU costs are stylised but keep the benchmarks'
// relative character: YCSB point operations are cheapest, TPC-C
// transactions are mid-weight with the canonical 45/43/4/4/4 mix, and
// TPC-H analytic queries are orders of magnitude heavier and read-only.

// TPCCMix returns the canonical TPC-C transaction mix.
func TPCCMix() Mix {
	return Mix{
		{Class: TxnClass{Name: "tpcc.NewOrder", CPUSeconds: 0.012, Write: true}, Weight: 45},
		{Class: TxnClass{Name: "tpcc.Payment", CPUSeconds: 0.006, Write: true}, Weight: 43},
		{Class: TxnClass{Name: "tpcc.OrderStatus", CPUSeconds: 0.004, Write: false}, Weight: 4},
		{Class: TxnClass{Name: "tpcc.Delivery", CPUSeconds: 0.020, Write: true}, Weight: 4},
		{Class: TxnClass{Name: "tpcc.StockLevel", CPUSeconds: 0.010, Write: false}, Weight: 4},
	}
}

// TPCHMix returns a read-only analytic mix of light/medium/heavy queries.
func TPCHMix() Mix {
	return Mix{
		{Class: TxnClass{Name: "tpch.QLight", CPUSeconds: 0.8, Write: false}, Weight: 50},
		{Class: TxnClass{Name: "tpch.QMedium", CPUSeconds: 2.5, Write: false}, Weight: 35},
		{Class: TxnClass{Name: "tpch.QHeavy", CPUSeconds: 8.0, Write: false}, Weight: 15},
	}
}

// YCSBMix returns workload-A-style 50/50 reads and updates.
func YCSBMix() Mix {
	return Mix{
		{Class: TxnClass{Name: "ycsb.Read", CPUSeconds: 0.0008, Write: false}, Weight: 50},
		{Class: TxnClass{Name: "ycsb.Update", CPUSeconds: 0.0012, Write: true}, Weight: 50},
	}
}

// MixedOLTP blends TPC-C with YCSB — the light read/write phases of the
// paper's workday experiment.
func MixedOLTP() Mix {
	out := append(Mix{}, TPCCMix()...)
	for _, e := range YCSBMix() {
		e.Weight *= 0.5
		out = append(out, e)
	}
	return out
}

// LoadSchedule is a complete client workload: an arrival-rate curve over
// time and the transaction mix the arrivals draw from. It is what the
// dbsim load generator executes, and what the trace-level experiments
// flatten into CPU demand.
type LoadSchedule struct {
	// Name labels the schedule in reports.
	Name string
	// Mix is the weighted transaction mix (the default when Phases is
	// empty).
	Mix Mix
	// Phases optionally switches the mix over time (the paper's workday
	// run alternates OLTP and analytic phases). Consecutive entries
	// cover consecutive intervals; past the last phase the final mix
	// applies.
	Phases []MixPhase
	// Rate maps minutes-from-start to arrivals per second.
	Rate Pattern
	// Duration is the total schedule length.
	Duration time.Duration
}

// MixPhase holds one time-bounded transaction mix.
type MixPhase struct {
	// Mix is the phase's transaction mix.
	Mix Mix
	// Minutes is the phase duration.
	Minutes float64
}

// MixAt returns the transaction mix active at the given minute.
func (ls *LoadSchedule) MixAt(minute float64) Mix {
	if len(ls.Phases) == 0 {
		return ls.Mix
	}
	var offset float64
	for i, ph := range ls.Phases {
		if minute < offset+ph.Minutes || i == len(ls.Phases)-1 {
			return ph.Mix
		}
		offset += ph.Minutes
	}
	return ls.Mix
}

// CPUDemandPattern converts the schedule into expected CPU demand in
// cores: rate (txn/s) × mean CPU seconds per txn = CPU-seconds per second
// = cores. Phase-dependent mixes are honoured.
func (ls *LoadSchedule) CPUDemandPattern() Pattern {
	return func(m float64) float64 { return ls.Rate(m) * ls.MixAt(m).MeanCPUSeconds() }
}

// DemandTrace renders the schedule's expected CPU demand at one-minute
// resolution.
func (ls *LoadSchedule) DemandTrace() *trace.Trace {
	return Render(ls.Name, ls.CPUDemandPattern(), ls.Duration)
}

// RateForCores returns the arrival rate (txn/s) that produces the target
// CPU demand in cores under the mix.
func RateForCores(mix Mix, cores float64) (float64, error) {
	mean := mix.MeanCPUSeconds()
	if mean <= 0 {
		return 0, errors.New("workload: mix has zero CPU cost")
	}
	return cores / mean, nil
}

// ScheduleForCores builds a LoadSchedule whose expected CPU demand follows
// the given core-demand pattern using the given mix.
func ScheduleForCores(name string, mix Mix, demand Pattern, duration time.Duration) (*LoadSchedule, error) {
	mean := mix.MeanCPUSeconds()
	if mean <= 0 {
		return nil, errors.New("workload: mix has zero CPU cost")
	}
	return &LoadSchedule{
		Name:     name,
		Mix:      mix,
		Rate:     func(m float64) float64 { return demand(m) / mean },
		Duration: duration,
	}, nil
}

// WorkdaySchedule builds the §6.2 Figure 9 live workload as a transaction
// schedule: light mixed OLTP for 3 hours, heavy TPC-H read batches for 6,
// then light OLTP again. The read-only middle phase matches the paper's
// "batches of read-only queries requiring ~5.5 cores".
func WorkdaySchedule(seed uint64) *LoadSchedule {
	rng := stats.NewRNG(seed)
	light := MixedOLTP()
	heavy := TPCHMix()
	lightRate, _ := RateForCores(light, 2.2)
	heavyRate, _ := RateForCores(heavy, 5.5)
	rate := Piecewise(
		Segment{Pattern: WithJitter(Constant(lightRate), 0.3, rng), Minutes: 3 * 60},
		Segment{Pattern: WithJitter(Constant(heavyRate), 0.1, rng), Minutes: 6 * 60},
		Segment{Pattern: WithJitter(Constant(lightRate), 0.3, rng), Minutes: 3 * 60},
	)
	return &LoadSchedule{
		Name: "workday-live",
		Mix:  light,
		Phases: []MixPhase{
			{Mix: light, Minutes: 3 * 60},
			{Mix: heavy, Minutes: 6 * 60},
			{Mix: light, Minutes: 3 * 60},
		},
		Rate:     rate,
		Duration: 12 * time.Hour,
	}
}

// Validate checks schedule invariants.
func (ls *LoadSchedule) Validate() error {
	if ls.Duration <= 0 {
		return fmt.Errorf("workload: schedule %q has non-positive duration", ls.Name)
	}
	if len(ls.Mix) == 0 {
		return fmt.Errorf("workload: schedule %q has empty mix", ls.Name)
	}
	if ls.Rate == nil {
		return fmt.Errorf("workload: schedule %q has nil rate", ls.Name)
	}
	return nil
}
