package experiments

import (
	"fmt"
	"strings"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/forecast"
	"caasper/internal/recommend"
	"caasper/internal/sim"
	"caasper/internal/workload"
)

// Figure3Result holds the §3.3/Figure 3 recommender comparison: the same
// 62-hour step workload run under fixed limits (3a), the default K8s VPA
// (3b), an OpenShift-style predictive VPA (3c) and CaaSPER (3d).
type Figure3Result struct {
	// Control, VPA, OpenShift, CaaSPER are the four runs.
	Control, VPA, OpenShift, CaaSPER *sim.Result
	// VPASlackReduction and CaaSPERSlackReduction are vs the control
	// (paper: 61% and 78.3%).
	VPASlackReduction     float64
	CaaSPERSlackReduction float64
	// OpenShiftThroughput is the predictive baseline's throughput share
	// (paper: throttled to ~27%, a 73% reduction).
	OpenShiftThroughput float64
	// CaaSPERThroughput is CaaSPER's throughput share (paper: 90–100%).
	CaaSPERThroughput float64
	// Report is the formatted comparison.
	Report string
}

// Figure3 reproduces the Figure 3 comparison. seed controls workload
// noise; the paper's trace alternates 8 h at ~2–3 cores with 8 h at ~7
// cores for 62 hours, with control limits fixed at 14 cores and a 2-core
// scale-down floor.
func Figure3(seed uint64) (*Figure3Result, error) {
	tr := workload.StepTrace62h(seed)
	const controlCores = 14
	opts := sim.DefaultOptions(controlCores, controlCores)

	control, err := sim.Run(tr, baselines.NewControl(controlCores), opts)
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}

	vpaRec, err := baselines.NewKubernetesVPA(baselines.DefaultKubernetesVPAOptions(controlCores))
	if err != nil {
		return nil, err
	}
	vpa, err := sim.Run(tr, vpaRec, opts)
	if err != nil {
		return nil, fmt.Errorf("vpa: %w", err)
	}

	osRec, err := baselines.NewOpenShiftVPA(baselines.DefaultOpenShiftVPAOptions(controlCores))
	if err != nil {
		return nil, err
	}
	// The OpenShift run starts from the predictive recommender's own
	// low initial estimate (the paper's cold-start throttling).
	osOpts := opts
	osOpts.InitialCores = 2
	osRun, err := sim.Run(tr, osRec, osOpts)
	if err != nil {
		return nil, fmt.Errorf("openshift: %w", err)
	}

	// CaaSPER proactive: daily seasonality (the workload's period is
	// 16 h; a 16-hour season captures it).
	season := 16 * 60
	caRec, err := recommend.NewCaaSPERProactive(
		core.DefaultConfig(controlCores),
		&forecast.SeasonalNaive{Season: season},
		40, 30, season)
	if err != nil {
		return nil, err
	}
	ca, err := sim.Run(tr, caRec, opts)
	if err != nil {
		return nil, fmt.Errorf("caasper: %w", err)
	}

	res := &Figure3Result{
		Control:               control,
		VPA:                   vpa,
		OpenShift:             osRun,
		CaaSPER:               ca,
		VPASlackReduction:     vpa.SlackReductionVs(control),
		CaaSPERSlackReduction: ca.SlackReductionVs(control),
		OpenShiftThroughput:   osRun.ThroughputProxy(),
		CaaSPERThroughput:     ca.ThroughputProxy(),
	}

	tb := NewTable("Figure 3 — recommender comparison on the 62h step workload",
		"recommender", "sum slack K", "sum insuff C", "scalings N", "throttled obs", "throughput", "slack vs ctrl", "cost vs ctrl")
	for _, r := range []*sim.Result{control, vpa, osRun, ca} {
		tb.AddRow(r.Recommender, r.SumSlack, r.SumInsufficient, r.NumScalings,
			pct(r.ThrottledPct), pct(r.ThroughputProxy()),
			"-"+pct(r.SlackReductionVs(control)), ratio(r.CostRatioVs(control)))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\npaper: VPA slack -61%%, CaaSPER slack -78.3%%, OpenShift throughput ~27%%, CaaSPER throughput 90-100%%\n")
	res.Report = b.String()
	return res, nil
}
