package forecast

import (
	"errors"

	"caasper/internal/stats"
)

// DetectSeason estimates a series' dominant seasonality period from its
// autocorrelation function — the prerequisite the paper's proactive mode
// leaves implicit ("a complete seasonality period is awaited before
// transitioning to proactive mode", §4.3, Figure 8): before a season can
// be awaited, something must know its length. Daily-cyclical workloads at
// one-minute resolution detect as 1440.
//
// The method is the textbook one: compute the ACF up to maxLag, find the
// first local maximum beyond the initial decay that exceeds minACF, and
// return its lag. A series with no periodicity above the threshold
// returns ErrNoSeason.
//
// minLag bounds the search from below (short-range autocorrelation from
// smoothness would otherwise win); pass 0 for the default of 10 samples.
func DetectSeason(series []float64, minLag, maxLag int, minACF float64) (int, error) {
	if minLag <= 0 {
		minLag = 10
	}
	if maxLag <= minLag {
		return 0, errors.New("forecast: maxLag must exceed minLag")
	}
	if len(series) < 2*maxLag {
		return 0, ErrShortHistory
	}
	if minACF <= 0 || minACF >= 1 {
		return 0, errors.New("forecast: minACF out of (0,1)")
	}

	acf, err := autocorrelation(series, maxLag)
	if err != nil {
		return 0, err
	}

	// Find the highest local ACF maximum in [minLag, maxLag].
	bestLag, bestVal := 0, minACF
	for lag := minLag; lag < maxLag; lag++ {
		v := acf[lag]
		if v <= bestVal {
			continue
		}
		// Local maximum: at least as large as both neighbours.
		if v >= acf[lag-1] && (lag+1 >= len(acf) || v >= acf[lag+1]) {
			bestLag, bestVal = lag, v
		}
	}
	if bestLag == 0 {
		return 0, ErrNoSeason
	}
	return bestLag, nil
}

// ErrNoSeason is returned when no periodicity clears the ACF threshold —
// the paper's "low predictability" R5 scenario, in which CaaSPER must
// stay purely reactive.
var ErrNoSeason = errors.New("forecast: no seasonality detected")

// autocorrelation returns the normalised ACF for lags 0..maxLag.
func autocorrelation(series []float64, maxLag int) ([]float64, error) {
	n := len(series)
	if n < 2 {
		return nil, ErrShortHistory
	}
	mean := stats.Mean(series)
	var denom float64
	centered := make([]float64, n)
	for i, v := range series {
		centered[i] = v - mean
		denom += centered[i] * centered[i]
	}
	acf := make([]float64, maxLag+1)
	if denom == 0 {
		// Constant series: define ACF as zero beyond lag 0.
		acf[0] = 1
		return acf, nil
	}
	for lag := 0; lag <= maxLag; lag++ {
		var num float64
		for t := lag; t < n; t++ {
			num += centered[t] * centered[t-lag]
		}
		acf[lag] = num / denom
	}
	return acf, nil
}

// AutoSeasonalNaive builds a seasonal-naïve forecaster whose season is
// detected from the history itself, falling back to last-value
// forecasting when no season clears the threshold. It re-detects on every
// call, so the forecaster adapts as history accumulates — matching the
// §4.3 flow where period₁ is reactive and the proactive mode engages only
// once a full cycle is visible.
type AutoSeasonalNaive struct {
	// MinLag / MaxLag bound the detected period in samples.
	MinLag, MaxLag int
	// MinACF is the detection threshold (default 0.3 when zero).
	MinACF float64
	// LastDetected exposes the most recent detection (0 = none).
	LastDetected int
}

// Name implements Forecaster.
func (f *AutoSeasonalNaive) Name() string { return "auto-seasonal-naive" }

// Forecast implements Forecaster.
func (f *AutoSeasonalNaive) Forecast(history []float64, horizon int) ([]float64, error) {
	minACF := f.MinACF
	if minACF == 0 {
		minACF = 0.3
	}
	season, err := DetectSeason(history, f.MinLag, f.MaxLag, minACF)
	if err != nil {
		f.LastDetected = 0
		return Naive{}.Forecast(history, horizon)
	}
	f.LastDetected = season
	return (&SeasonalNaive{Season: season}).Forecast(history, horizon)
}
