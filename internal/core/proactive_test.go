package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"caasper/internal/forecast"
	"caasper/internal/stats"
)

type failingForecaster struct{}

func (failingForecaster) Name() string { return "failing" }
func (failingForecaster) Forecast([]float64, int) ([]float64, error) {
	return nil, errors.New("boom")
}

func TestNewProactiveValidation(t *testing.T) {
	r := mustRecommender(t, 16)
	if _, err := NewProactive(nil, nil, 10, 5, 0); err == nil {
		t.Error("nil recommender should error")
	}
	if _, err := NewProactive(r, nil, 0, 5, 0); err == nil {
		t.Error("zero window should error")
	}
	if _, err := NewProactive(r, nil, 10, -1, 0); err == nil {
		t.Error("negative horizon should error")
	}
	if _, err := NewProactive(r, nil, 10, 5, -1); err == nil {
		t.Error("negative MinHistory should error")
	}
	if _, err := NewProactive(r, nil, 10, 5, 0); err != nil {
		t.Error("nil forecaster is allowed (pure reactive)")
	}
}

func TestProactiveFallsBackWithoutForecaster(t *testing.T) {
	r := mustRecommender(t, 16)
	p, err := NewProactive(r, nil, 40, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	hist := cappedUsage(2.5, 16, 100, 1)
	d, usedForecast, err := p.Decide(8, hist)
	if err != nil {
		t.Fatal(err)
	}
	if usedForecast {
		t.Error("nil forecaster must not report forecast use")
	}
	if d.CurrentCores != 8 {
		t.Errorf("current = %d", d.CurrentCores)
	}
}

func TestProactiveFallsBackOnShortHistory(t *testing.T) {
	r := mustRecommender(t, 16)
	p, err := NewProactive(r, &forecast.SeasonalNaive{Season: 60}, 40, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	hist := cappedUsage(3, 16, 100, 2) // < MinHistory 500
	_, usedForecast, err := p.Decide(8, hist)
	if err != nil {
		t.Fatal(err)
	}
	if usedForecast {
		t.Error("short history must stay reactive (paper period₁)")
	}
}

func TestProactiveFallsBackOnForecastError(t *testing.T) {
	r := mustRecommender(t, 16)
	p, err := NewProactive(r, failingForecaster{}, 40, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	hist := cappedUsage(3, 16, 100, 3)
	d, usedForecast, err := p.Decide(8, hist)
	if err != nil {
		t.Fatal(err)
	}
	if usedForecast {
		t.Error("failed forecast must fall back to reactive")
	}
	if d.Explanation == "" {
		t.Error("fallback still explains itself")
	}
}

func TestProactiveScalesAheadOfPredictedSpike(t *testing.T) {
	// History: two full daily cycles at one-minute resolution, where a
	// spike to ~10 cores occurs at minute 700 of each day. The decision
	// instant is minute 690 of day 3: observed usage is still low, but
	// the seasonal-naive forecast sees the spike 10 minutes ahead.
	day := 1440
	var hist []float64
	for d := 0; d < 2; d++ {
		for m := 0; m < day; m++ {
			v := 2.0
			if m >= 700 && m < 760 {
				v = 10
			}
			hist = append(hist, v)
		}
	}
	// Day 3 up to minute 690: still low.
	for m := 0; m < 690; m++ {
		hist = append(hist, 2.0)
	}

	r := mustRecommender(t, 16)
	p, err := NewProactive(r, &forecast.SeasonalNaive{Season: day}, 40, 30, day)
	if err != nil {
		t.Fatal(err)
	}
	d, usedForecast, err := p.Decide(3, hist)
	if err != nil {
		t.Fatal(err)
	}
	if !usedForecast {
		t.Fatal("forecast should be active")
	}
	if d.Delta < 1 {
		t.Errorf("proactive should scale up ahead of the spike: %s", d.Explanation)
	}
	if !strings.Contains(d.Explanation, "proactive") {
		t.Errorf("explanation = %q", d.Explanation)
	}

	// The purely reactive decision on the same observed window would
	// hold or scale down — that is exactly the difference Figure 10
	// shows between the two modes.
	rd, err := r.Decide(3, hist[len(hist)-40:])
	if err != nil {
		t.Fatal(err)
	}
	if rd.Delta > 0 {
		t.Errorf("reactive should not foresee the spike, got +%d", rd.Delta)
	}
}

func TestProactiveCombinedWindowComposition(t *testing.T) {
	// With ObservedWindow=5 and Horizon=5, a capturing forecaster can
	// verify the combined window passed to the reactive algorithm.
	r := mustRecommender(t, 16)
	capture := &capturingForecaster{out: []float64{9, 9, 9, 9, 9}}
	p, err := NewProactive(r, capture, 5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	hist := []float64{1, 1, 1, 1, 1, 2, 2, 2, 2, 2}
	d, used, err := p.Decide(4, hist)
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Fatal("forecast should be used")
	}
	if len(capture.gotHistory) != len(hist) {
		t.Errorf("forecaster got %d samples, want full history %d", len(capture.gotHistory), len(hist))
	}
	// The combined window {2,2,2,2,2, 9,9,9,9,9} has P95 = 9 of 4 cores:
	// decisive scale-up even though observed usage is only 2.
	if d.Delta < 1 {
		t.Errorf("combined window should trigger scale-up: %+v", d)
	}
}

type capturingForecaster struct {
	gotHistory []float64
	out        []float64
}

func (c *capturingForecaster) Name() string { return "capturing" }
func (c *capturingForecaster) Forecast(history []float64, horizon int) ([]float64, error) {
	c.gotHistory = append([]float64(nil), history...)
	if horizon > len(c.out) {
		horizon = len(c.out)
	}
	return c.out[:horizon], nil
}

func TestProactiveZeroHorizonIsReactive(t *testing.T) {
	r := mustRecommender(t, 16)
	p, err := NewProactive(r, &forecast.SeasonalNaive{Season: 10}, 40, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, used, err := p.Decide(8, cappedUsage(3, 16, 50, 4))
	if err != nil {
		t.Fatal(err)
	}
	if used {
		t.Error("zero horizon must not use the forecast")
	}
}

func TestTail(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := tail(xs, 2); len(got) != 2 || got[0] != 2 {
		t.Errorf("tail = %v", got)
	}
	if got := tail(xs, 10); len(got) != 3 {
		t.Errorf("oversized tail = %v", got)
	}
}

func TestProactiveDeterminism(t *testing.T) {
	day := 1440
	rng := stats.NewRNG(5)
	hist := make([]float64, 2*day)
	for i := range hist {
		hist[i] = 3 + 2*math.Sin(2*math.Pi*float64(i)/float64(day)) + rng.NormFloat64()*0.1
		if hist[i] < 0 {
			hist[i] = 0
		}
	}
	r := mustRecommender(t, 16)
	p, _ := NewProactive(r, &forecast.SeasonalNaive{Season: day}, 40, 30, day)
	d1, _, err := p.Decide(6, hist)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := p.Decide(6, hist)
	if err != nil {
		t.Fatal(err)
	}
	if d1.TargetCores != d2.TargetCores || d1.Branch != d2.Branch {
		t.Error("proactive decisions must be deterministic")
	}
}
