package k8s

import (
	"strings"
	"testing"

	"caasper/internal/baselines"
	"caasper/internal/obs"
)

// eventLines encodes a memory sink's stream to NDJSON lines for assertions.
func eventLines(mem *obs.MemorySink) []string {
	lines := make([]string, 0, mem.Len())
	var buf []byte
	for _, e := range mem.Events() {
		buf = e.AppendNDJSON(buf[:0])
		lines = append(lines, string(buf))
	}
	return lines
}

func countEvents(lines []string, typ string) int {
	needle := `"type":"` + typ + `"`
	n := 0
	for _, l := range lines {
		if strings.Contains(l, needle) {
			n++
		}
	}
	return n
}

// TestScalerSuppressedDecisionsDuringRollingUpdate pins the health-check
// path: decision ticks that land while a rolling update is in flight must
// be recorded as suppressed (event + counter) without double-issuing a
// resize or polluting DecisionSeries.
func TestScalerSuppressedDecisionsDuringRollingUpdate(t *testing.T) {
	c := SmallCluster()
	set, err := NewStatefulSet("db", 3, 4, 16, c)
	if err != nil {
		t.Fatal(err)
	}
	// 400 s per pod → a 3-pod rolling update spans 1200 s, straddling two
	// 600 s decision ticks that must both be suppressed.
	op, err := NewOperator(set, c, 400)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMetricsServer(60)
	rec := baselines.NewControl(8) // always wants 8 cores
	sc, err := NewScaler(rec, op, ms, 600, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink()
	reg := obs.NewRegistry()
	op.Events, op.Stats = mem, reg
	sc.Events, sc.Stats = mem, reg

	for now := int64(0); now < 3600; now++ {
		op.Tick(now)
		for _, p := range set.Pods {
			used := p.ConsumeCPU(2, 1)
			ms.RecordUsage(p.Name, now, used)
		}
		sc.Tick(now)
	}

	// Exactly one resize: requested at the first decision tick (t=600),
	// in flight across the t=1200 and t=1800 ticks.
	if sc.ScalingsRequested != 1 {
		t.Errorf("ScalingsRequested = %d, want 1", sc.ScalingsRequested)
	}
	if op.ResizeCount != 1 {
		t.Errorf("ResizeCount = %d, want 1 (suppressed ticks must not stack resizes)", op.ResizeCount)
	}
	if sc.DecisionsSuppressed != 2 {
		t.Errorf("DecisionsSuppressed = %d, want 2", sc.DecisionsSuppressed)
	}
	if got := reg.Counter("k8s.decisions_suppressed").Value(); got != 2 {
		t.Errorf("counter k8s.decisions_suppressed = %d, want 2", got)
	}

	lines := eventLines(mem)
	if got := countEvents(lines, "k8s.decision-suppressed"); got != 2 {
		t.Errorf("decision-suppressed events = %d, want 2", got)
	}
	if got := countEvents(lines, "k8s.resize-requested"); got != 1 {
		t.Errorf("resize-requested events = %d, want 1", got)
	}
	// The suppression path returns before RequestResize, so the operator
	// never rejects a stacked request.
	if got := countEvents(lines, "k8s.resize-rejected"); got != 0 {
		t.Errorf("resize-rejected events = %d, want 0", got)
	}

	// Suppressed ticks carry the full audit payload but stay out of
	// DecisionSeries: decisions + suppressed == all ticks taken.
	decisions := countEvents(lines, "k8s.decision")
	if decisions != len(sc.DecisionSeries) {
		t.Errorf("decision events = %d, DecisionSeries len = %d; must match", decisions, len(sc.DecisionSeries))
	}
	for _, l := range lines {
		if !strings.Contains(l, `"type":"k8s.decision-suppressed"`) {
			continue
		}
		// "current" is omitted: the set's limit shifts mid-update as pods
		// restart with the new spec.
		for _, want := range []string{`"target":8`, `"updating_to":8`, `"reason":"rolling update in flight"`} {
			if !strings.Contains(l, want) {
				t.Errorf("suppressed event %s missing %s", l, want)
			}
		}
	}
}

// TestScalerSuppressedWithoutSinkStillCounts checks the disabled-telemetry
// path: no sink, no registry — the counter field still advances and no
// resize is double-issued.
func TestScalerSuppressedWithoutSinkStillCounts(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 3, 4, 16, c)
	op, _ := NewOperator(set, c, 400)
	ms := NewMetricsServer(60)
	sc, err := NewScaler(baselines.NewControl(8), op, ms, 600, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 3600; now++ {
		op.Tick(now)
		for _, p := range set.Pods {
			ms.RecordUsage(p.Name, now, p.ConsumeCPU(2, 1))
		}
		sc.Tick(now)
	}
	if sc.DecisionsSuppressed != 2 {
		t.Errorf("DecisionsSuppressed = %d, want 2", sc.DecisionsSuppressed)
	}
	if op.ResizeCount != 1 {
		t.Errorf("ResizeCount = %d, want 1", op.ResizeCount)
	}
}

// TestOperatorLifecycleEventStream pins the operator's event schema for
// one full rolling update: requested → started → per-pod phases →
// failover → completed span with the simulated duration.
func TestOperatorLifecycleEventStream(t *testing.T) {
	c := SmallCluster()
	set, _ := NewStatefulSet("db", 3, 4, 16, c)
	op, _ := NewOperator(set, c, 100)
	mem := obs.NewMemorySink()
	reg := obs.NewRegistry()
	op.Events, op.Stats = mem, reg

	if err := op.RequestResize(6, 50); err != nil {
		t.Fatal(err)
	}
	for now := int64(50); op.Updating(); now++ {
		op.Tick(now)
	}

	lines := eventLines(mem)
	for typ, want := range map[string]int{
		"k8s.resize-requested":   1,
		"k8s.resize-started":     1,
		"k8s.restart-disruption": 3,
		"k8s.failover":           1,
		"k8s.resize-completed":   1,
	} {
		if got := countEvents(lines, typ); got != want {
			t.Errorf("%s events = %d, want %d\n%s", typ, got, want, strings.Join(lines, "\n"))
		}
	}
	// The completed span is stamped at the request time and carries the
	// whole update's simulated duration.
	found := false
	for _, l := range lines {
		if strings.Contains(l, `"type":"k8s.resize-completed"`) {
			found = true
			if !strings.Contains(l, `"t":50,`) {
				t.Errorf("span event not stamped at start: %s", l)
			}
			if !strings.Contains(l, `"dur":`) || !strings.Contains(l, `"mode":"rolling"`) {
				t.Errorf("span event missing dur/mode: %s", l)
			}
		}
	}
	if !found {
		t.Fatal("no resize-completed event")
	}
	if got := reg.Counter("k8s.pod_restarts").Value(); got != 3 {
		t.Errorf("pod_restarts counter = %d, want 3", got)
	}
	if got := reg.Counter("k8s.failovers").Value(); got != 1 {
		t.Errorf("failovers counter = %d, want 1", got)
	}
	if got := reg.Counter("k8s.resizes_completed").Value(); got != 1 {
		t.Errorf("resizes_completed counter = %d, want 1", got)
	}
}
