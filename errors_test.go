package caasper

import (
	"errors"
	"testing"
	"time"
)

// Tests for the sentinel-error contract: every public constructor and
// Validate method classifies its failures by wrapping one of the exported
// sentinels, so callers branch with errors.Is instead of matching
// message strings.

func TestSentinelBadWindow(t *testing.T) {
	cfg := DefaultConfig(16)
	if _, err := NewReactive(cfg, 0); !errors.Is(err, ErrBadWindow) {
		t.Errorf("NewReactive(window=0): got %v, want errors.Is(ErrBadWindow)", err)
	}
	if _, err := NewProactive(cfg, NewSeasonalNaive(60), 0, 10, 60); !errors.Is(err, ErrBadWindow) {
		t.Errorf("NewProactive(observedWindow=0): got %v, want errors.Is(ErrBadWindow)", err)
	}
	if _, err := NewProactive(cfg, NewSeasonalNaive(60), 40, -1, 60); !errors.Is(err, ErrBadWindow) {
		t.Errorf("NewProactive(horizon=-1): got %v, want errors.Is(ErrBadWindow)", err)
	}
}

func TestSentinelInvalidConfig(t *testing.T) {
	bad := DefaultConfig(16)
	bad.MinCores = 0
	if _, err := NewReactive(bad, 40); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("NewReactive(MinCores=0): got %v, want errors.Is(ErrInvalidConfig)", err)
	}

	opts := DefaultSimOptions(4, 16)
	opts.DecisionEveryMinutes = 0
	if err := opts.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("SimOptions.Validate: got %v, want errors.Is(ErrInvalidConfig)", err)
	}

	var fo FleetOptions // zero cadence
	if _, err := RunFleet(nil, fo); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("RunFleet(zero options): got %v, want errors.Is(ErrInvalidConfig)", err)
	}

	if _, err := NewRecommenderByName("caasper", RecommenderSettings{}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("NewRecommenderByName(MaxCores=0): got %v, want errors.Is(ErrInvalidConfig)", err)
	}
}

func TestSentinelEmptyTrace(t *testing.T) {
	rec, err := NewReactive(DefaultConfig(8), 40)
	if err != nil {
		t.Fatal(err)
	}
	empty := NewTrace("empty", time.Minute, nil)
	if _, err := Simulate(empty, rec, DefaultSimOptions(2, 8)); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("Simulate(empty trace): got %v, want errors.Is(ErrEmptyTrace)", err)
	}
	// A wrong-interval trace is a configuration mistake, not missing data:
	// it must wrap ErrInvalidConfig and NOT ErrEmptyTrace.
	coarse := NewTrace("coarse", time.Hour, []float64{1, 2, 3})
	if _, err := Simulate(coarse, rec, DefaultSimOptions(2, 8)); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("Simulate(hourly trace): got %v, want errors.Is(ErrInvalidConfig)", err)
	}
	if _, err := Simulate(coarse, rec, DefaultSimOptions(2, 8)); errors.Is(err, ErrEmptyTrace) {
		t.Errorf("Simulate(hourly trace): wrapped ErrEmptyTrace, want ErrInvalidConfig only")
	}
}

func TestSentinelUnknownRecommender(t *testing.T) {
	_, err := NewRecommenderByName("bogus", RecommenderSettings{MaxCores: 8})
	if !errors.Is(err, ErrUnknownRecommender) {
		t.Errorf("got %v, want errors.Is(ErrUnknownRecommender)", err)
	}
	for _, name := range RecommenderNames() {
		if _, err := NewRecommenderByName(name, RecommenderSettings{MaxCores: 8}); err != nil {
			t.Errorf("NewRecommenderByName(%q): %v", name, err)
		}
	}
}
