package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// HandleSignal is the shared interrupt path of every CLI that owns a
// session: it announces the signal on errw, flushes the event sink and
// prints the metrics summary via Finish, and returns the conventional
// exit code 128+signum (130 for SIGINT, 143 for SIGTERM). It is the
// testable core of FlushOnSignal — tests drive it directly instead of
// delivering real signals — and Finish's idempotence keeps a racing
// normal exit harmless.
func (s *Session) HandleSignal(sig os.Signal, out, errw io.Writer, name string) int {
	fmt.Fprintf(errw, "\n%s: %v — flushing telemetry\n", name, sig)
	s.Finish(out)
	if ss, ok := sig.(syscall.Signal); ok {
		return 128 + int(ss)
	}
	return 1
}

// FlushOnSignal installs the graceful SIGINT/SIGTERM handler: on the
// first signal the session is flushed (HandleSignal) and the process
// exits with 128+signum, so an interrupted -events run leaves a valid,
// fully flushed NDJSON file instead of a stream truncated mid-event.
// name prefixes the diagnostic (the CLI's own name). The returned stop
// function uninstalls the handler; callers that drain on their own
// (servers with a shutdown sequence) use it to take over signal handling.
func (s *Session) FlushOnSignal(out io.Writer, name string) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		os.Exit(s.HandleSignal(sig, out, os.Stderr, name))
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(ch)
		})
	}
}

// StartPprof serves net/http/pprof on addr. The listener is bound
// synchronously, so a bad address fails fast with an error before the
// run starts instead of a goroutine logging the failure after startup
// has raced past it; the HTTP serving itself then proceeds in the
// background. An empty addr is a no-op. The returned address is the
// bound one (useful with ":0").
func StartPprof(addr string, log *Logger) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listener: %w", err)
	}
	log.Infof("pprof listening on http://%s/debug/pprof/", ln.Addr())
	go func() {
		// DefaultServeMux carries the net/http/pprof handlers the CLI
		// imported for its side effects.
		if err := http.Serve(ln, nil); err != nil {
			log.Errorf("pprof server: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}
