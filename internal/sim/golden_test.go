package sim

import (
	"testing"

	"runtime"
	"strings"

	"caasper/internal/core"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/trace"
	"caasper/internal/workload"
)

// Golden regression test: the exact resize sequence CaaSPER produces on
// the fixed-seed workday trace. This pins the *behaviour* of Algorithm 1 +
// simulator against accidental drift: any change to thresholds, curve
// construction, rounding or the decision cadence shows up here first.
//
// The assertion is deliberately tolerant of tiny floating-point
// differences across platforms: the resize count must match exactly and
// at least 90% of individual resize records must match the golden
// sequence; a genuine algorithm change breaks both.
func TestGoldenWorkdayDecisionSequence(t *testing.T) {
	tr := workload.Workday12h(42)
	rec, err := recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, rec, DefaultOptions(8, 8))
	if err != nil {
		t.Fatal(err)
	}

	golden := []DecisionRecord{
		{Minute: 10, From: 8, To: 4, EffectiveAt: 20},
		{Minute: 80, From: 4, To: 3, EffectiveAt: 90},
		{Minute: 100, From: 3, To: 4, EffectiveAt: 110},
		{Minute: 170, From: 4, To: 3, EffectiveAt: 180},
		{Minute: 190, From: 3, To: 6, EffectiveAt: 200},
		{Minute: 210, From: 6, To: 7, EffectiveAt: 220},
		{Minute: 580, From: 7, To: 5, EffectiveAt: 590},
		{Minute: 610, From: 5, To: 4, EffectiveAt: 620},
		{Minute: 630, From: 4, To: 3, EffectiveAt: 640},
		{Minute: 640, From: 3, To: 4, EffectiveAt: 650},
	}
	if len(res.Decisions) != len(golden) {
		t.Fatalf("resize count drifted: got %d, golden %d\n%+v",
			len(res.Decisions), len(golden), res.Decisions)
	}
	matches := 0
	for i := range golden {
		got := res.Decisions[i]
		if got.Minute == golden[i].Minute && got.From == golden[i].From &&
			got.To == golden[i].To && got.EffectiveAt == golden[i].EffectiveAt {
			matches++
		}
		// Every enacted CaaSPER decision must carry its explanation (R6).
		if got.Explanation == "" {
			t.Errorf("decision %d has no explanation", i)
		}
	}
	if frac := float64(matches) / float64(len(golden)); frac < 0.9 {
		t.Errorf("only %d/%d resize records match the golden sequence:\n got   %+v\n want %+v",
			matches, len(golden), res.Decisions, golden)
	}

	// Headline metrics pinned with tolerance.
	if res.NumScalings != 10 {
		t.Errorf("scalings = %d, golden 10", res.NumScalings)
	}
	if res.BilledCorePeriods < 70 || res.BilledCorePeriods > 78 {
		t.Errorf("billed = %v, golden ≈74", res.BilledCorePeriods)
	}
	if res.ThroughputProxy() < 0.97 {
		t.Errorf("throughput = %v, golden ≈0.98", res.ThroughputProxy())
	}
}

// encodeStream renders a memory sink's events as one NDJSON string.
func encodeStream(mem *obs.MemorySink) string {
	var b strings.Builder
	var buf []byte
	for _, e := range mem.Events() {
		buf = e.AppendNDJSON(buf[:0])
		b.Write(buf)
		b.WriteByte('\n')
	}
	return b.String()
}

// Golden event-stream test: the telemetry determinism contract. The same
// fixed-seed workload must yield a byte-identical NDJSON event stream for
// every worker count, because events are keyed on simulated time, cells
// buffer their streams, and the matrix replays them in cell order.
func TestGoldenWorkdayEventStreamDeterministicAcrossWorkers(t *testing.T) {
	factories := []RecommenderFactory{
		{Name: "caasper", New: func() (recommend.Recommender, error) {
			return recommend.NewCaaSPERReactive(core.DefaultConfig(8), 40)
		}},
		{Name: "caasper-2", New: func() (recommend.Recommender, error) {
			return recommend.NewCaaSPERReactive(core.DefaultConfig(8), 60)
		}},
	}
	run := func(workers int) string {
		t.Helper()
		tr := workload.Workday12h(42)
		mem := obs.NewMemorySink()
		opts := DefaultOptions(8, 8)
		opts.Workers = workers
		opts.Events = mem
		if _, err := RunMatrix([]*trace.Trace{tr}, factories, opts); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return encodeStream(mem)
	}

	want := run(1)
	if want == "" {
		t.Fatal("empty event stream")
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: event stream not byte-identical to sequential run (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}

	// Structural golden checks on the sequential stream: two cell headers
	// in cell order, and the first cell's resize events open with the
	// golden t=10 resize (integer fields: safe to pin exactly).
	lines := strings.Split(strings.TrimSuffix(want, "\n"), "\n")
	if !strings.Contains(lines[0], `"type":"sim.run"`) || !strings.Contains(lines[0], `"recommender":"caasper"`) {
		t.Errorf("stream must open with the first cell header, got %s", lines[0])
	}
	headers, resizes := 0, 0
	firstResize := ""
	for _, l := range lines {
		if strings.Contains(l, `"type":"sim.run"`) {
			headers++
		}
		if strings.Contains(l, `"type":"sim.resize"`) {
			resizes++
			if firstResize == "" {
				firstResize = l
			}
		}
	}
	if headers != 2 {
		t.Errorf("cell headers = %d, want 2", headers)
	}
	if resizes == 0 {
		t.Error("no resize events in stream")
	}
	const goldenFirstResize = `{"t":20,"type":"sim.resize","from":8,"to":4,"decided":10,"effective":20}`
	if firstResize != goldenFirstResize {
		t.Errorf("first resize event drifted:\n got  %s\n want %s", firstResize, goldenFirstResize)
	}
}
