// Alibaba-sweep: the paper's §6.3 trace study in miniature. Every
// Alibaba-style trace is pushed through tuned CaaSPER in the simulator
// and the Table 3 metrics are printed: average slack, scalings,
// average insufficient CPU, and throttled-observation share.
//
//	go run ./examples/alibaba-sweep
package main

import (
	"fmt"
	"log"

	"caasper"
)

func main() {
	fmt.Printf("%-10s %10s %10s %12s %14s %10s\n",
		"workload", "peak", "avg slack", "scalings", "avg insuff", "throttled")
	for _, id := range caasper.AlibabaIDs {
		tr, err := caasper.AlibabaTrace(id, 0)
		if err != nil {
			log.Fatal(err)
		}
		peak := tr.Summarize().Max
		maxCores := int(peak*1.3) + 2
		initial := int(peak) + 1
		if initial > maxCores {
			initial = maxCores
		}
		opts := caasper.DefaultSimOptions(initial, maxCores)
		opts.DecisionEveryMinutes = 5
		opts.ResizeDelayMinutes = 1

		// A quick tuned pick: small random search, then the G-optimal
		// combination under a balanced preference. The experiments
		// harness (cmd/caasper-experiments -run fig14) does the full
		// throttling-budgeted selection.
		evals, err := caasper.RandomSearch(tr, caasper.TuningOptions{
			Samples: 30, Seed: 17, Sim: &opts, SeasonMinutes: 24 * 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		best, err := caasper.BestForAlpha(0.2, evals)
		if err != nil {
			log.Fatal(err)
		}

		rec, err := caasper.NewReactive(best.Params.ToConfig(maxCores), best.Params.WindowMinutes)
		if err != nil {
			log.Fatal(err)
		}
		res, err := caasper.Simulate(tr, rec, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.1f %10.2f %12d %14.4f %9.2f%%\n",
			id, peak, res.AvgSlack, res.NumScalings, res.AvgInsufficient, res.ThrottledPct*100)
	}
	fmt.Println("\npaper Table 3 bands: avg slack 0.15-3.94, scalings 38-443, throttled obs 0-1.21%")
}
