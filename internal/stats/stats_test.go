package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSumMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		sum  float64
		mean float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 3, 3},
		{"several", []float64{1, 2, 3, 4}, 10, 2.5},
		{"negatives", []float64{-1, 1, -2, 2}, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Sum(c.in); got != c.sum {
				t.Errorf("Sum = %v, want %v", got, c.sum)
			}
			if got := Mean(c.in); got != c.mean {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
		})
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator = 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
	if Variance(nil) != 0 {
		t.Error("Variance of empty sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Min(empty) should panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-0.5, 1}, {1.5, 5}, // clamped
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(empty) err = %v, want ErrEmpty", err)
	}
	// Interpolation between ranks.
	got, _ := Quantile([]float64{10, 20}, 0.5)
	if !almostEqual(got, 15, 1e-12) {
		t.Errorf("median of {10,20} = %v, want 15", got)
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	rng := NewRNG(42)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	sorted := append([]float64(nil), xs...)
	sortFloats(sorted)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.95, 1} {
		a, _ := Quantile(xs, q)
		b, _ := QuantileSorted(sorted, q)
		if a != b {
			t.Errorf("q=%v: Quantile=%v QuantileSorted=%v", q, a, b)
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestSkewness(t *testing.T) {
	if got := Skewness([]float64{1, 2}); got != 0 {
		t.Errorf("Skewness(n<3) = %v, want 0", got)
	}
	if got := Skewness([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("Skewness(constant) = %v, want 0", got)
	}
	// Symmetric distribution: near-zero skew.
	if got := Skewness([]float64{1, 2, 3, 4, 5}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Skewness(symmetric) = %v, want 0", got)
	}
	// Right-skewed data has positive skewness.
	right := []float64{1, 1, 1, 1, 2, 2, 3, 10}
	if got := Skewness(right); got <= 0 {
		t.Errorf("Skewness(right-skewed) = %v, want > 0", got)
	}
	// Mirrored data flips the sign.
	left := make([]float64, len(right))
	for i, v := range right {
		left[i] = -v
	}
	if got, want := Skewness(left), -Skewness(right); !almostEqual(got, want, 1e-12) {
		t.Errorf("Skewness(mirror) = %v, want %v", got, want)
	}
}

func TestSlopes(t *testing.T) {
	if Slopes(nil) != nil || Slopes([]float64{1}) != nil {
		t.Error("Slopes of short input should be nil")
	}
	got := Slopes([]float64{1, 3, 2, 2})
	want := []float64{2, -1, 0}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Slopes[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-12) || !almostEqual(b, 2, 1e-12) {
		t.Errorf("fit = (%v, %v), want (1, 2)", a, b)
	}
	// Degenerate x: slope 0, intercept mean(y).
	a, b, err = LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if err != nil || b != 0 || !almostEqual(a, 2, 1e-12) {
		t.Errorf("degenerate fit = (%v, %v, %v)", a, b, err)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err != ErrEmpty {
		t.Errorf("short input err = %v, want ErrEmpty", err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Error("ClampInt misbehaves")
	}
}

func TestMAEAndMAPE(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{2, 2, 5}
	mae, err := MAE(pred, act)
	if err != nil || !almostEqual(mae, 1, 1e-12) {
		t.Errorf("MAE = %v, %v", mae, err)
	}
	mape, err := MAPE(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 + 0 + 0.4) / 3
	if !almostEqual(mape, want, 1e-12) {
		t.Errorf("MAPE = %v, want %v", mape, want)
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err != ErrEmpty {
		t.Errorf("MAPE all-zero actuals err = %v", err)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("MAE length mismatch should error")
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	// Property: any quantile lies within [min, max] of the sample.
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		qq := math.Mod(math.Abs(q), 1)
		got, err := Quantile(xs, qq)
		if err != nil {
			return false
		}
		return got >= Min(xs)-1e-9 && got <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantilePropertyMonotone(t *testing.T) {
	// Property: quantiles are monotone non-decreasing in q.
	rng := NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, _ := Quantile(xs, q)
			if v < prev-1e-9 {
				t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
			}
			prev = v
		}
	}
}

// ---------------------------------------------------------------------------
// Quickselect quantile equivalence (the O(window) hot-path contract)

// TestQuantileInPlaceMatchesSorted: QuantileInPlace must be bit-identical
// to the sort-based QuantileSorted for every q, including duplicate-heavy
// and adversarially ordered inputs — the decision hot path swaps one for
// the other and the goldens require byte-equal decisions.
func TestQuantileInPlaceMatchesSorted(t *testing.T) {
	rng := NewRNG(7)
	qs := []float64{0, 0.05, 0.25, 0.5, 0.9, 0.95, 0.99, 1, -0.5, 1.5}
	for trial := 0; trial < 300; trial++ {
		n := 1 + trial%97
		xs := make([]float64, n)
		for i := range xs {
			switch trial % 4 {
			case 0:
				xs[i] = rng.Range(0, 16)
			case 1:
				xs[i] = float64(int(rng.Range(0, 5))) // heavy duplicates
			case 2:
				xs[i] = float64(n - i) // descending
			default:
				xs[i] = 3.25 // constant
			}
		}
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		for _, q := range qs {
			want, err := QuantileSorted(sorted, q)
			if err != nil {
				t.Fatal(err)
			}
			scratch := make([]float64, n)
			copy(scratch, xs)
			got, err := QuantileInPlace(scratch, q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d n=%d q=%v: in-place %v != sorted %v", trial, n, q, got, want)
			}
			got2, err := Quantile(xs, q)
			if err != nil {
				t.Fatal(err)
			}
			if got2 != want {
				t.Fatalf("trial %d n=%d q=%v: Quantile %v != sorted %v", trial, n, q, got2, want)
			}
		}
	}
}

func TestQuantileInPlaceEmpty(t *testing.T) {
	if _, err := QuantileInPlace(nil, 0.5); err != ErrEmpty {
		t.Fatalf("empty: err = %v, want ErrEmpty", err)
	}
}

// TestQuantileInPlaceZeroAlloc: the in-place path must not allocate —
// it runs once per decision tick.
func TestQuantileInPlaceZeroAlloc(t *testing.T) {
	xs := make([]float64, 1440)
	for i := range xs {
		xs[i] = float64((i * 131) % 997)
	}
	scratch := make([]float64, len(xs))
	allocs := testing.AllocsPerRun(200, func() {
		copy(scratch, xs)
		if _, err := QuantileInPlace(scratch, 0.95); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("QuantileInPlace allocs = %v, want 0", allocs)
	}
}
