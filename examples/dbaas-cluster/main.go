// DBaaS-cluster: the paper's live-system evaluation in miniature. A
// 3-replica "Database A" stateful set runs on the small Kubernetes-like
// cluster, a BenchBase-style workday drives transactions at it, and the
// full autoscaling loop — metrics server, CaaSPER recommender, scaler,
// operator rolling updates with primary-last restarts — resizes the pods
// under load. Compare against the fixed-allocation control to see the
// paper's Table 1 trade-off: same throughput, lower bill.
//
//	go run ./examples/dbaas-cluster
package main

import (
	"fmt"
	"log"

	"caasper"
)

func main() {
	sched := caasper.WorkdaySchedule(5)
	const cores = 6 // the control's fixed allocation, sized for the peak

	fmt.Println("control run: limits fixed at 6 cores for 12 hours...")
	control, err := caasper.RunLive(sched, caasper.NewControl(cores), caasper.DatabaseA(cores, cores))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("caasper run: reactive autoscaling, same cluster, same workload...")
	rec, err := caasper.NewReactive(caasper.DefaultConfig(cores), 40)
	if err != nil {
		log.Fatal(err)
	}
	ca, err := caasper.RunLive(sched, rec, caasper.DatabaseA(cores, cores))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-26s %14s %14s\n", "", "control", "caasper")
	row := func(label string, c, a interface{}) {
		fmt.Printf("%-26s %14v %14v\n", label, c, a)
	}
	row("completed txns", int(control.DB.CompletedTxns), int(ca.DB.CompletedTxns))
	row("avg latency (ms)", fmt.Sprintf("%.1f", control.DB.AvgLatencyMS), fmt.Sprintf("%.1f", ca.DB.AvgLatencyMS))
	row("median latency (ms)", fmt.Sprintf("%.1f", control.DB.MedLatencyMS), fmt.Sprintf("%.1f", ca.DB.MedLatencyMS))
	row("interrupted txns", int(control.DB.InterruptedTxns), int(ca.DB.InterruptedTxns))
	row("resizes / failovers",
		fmt.Sprintf("%d / %d", control.NumScalings, control.Failovers),
		fmt.Sprintf("%d / %d", ca.NumScalings, ca.Failovers))
	row("billed core-hours", fmt.Sprintf("%.0f", control.BilledCorePeriods), fmt.Sprintf("%.0f", ca.BilledCorePeriods))

	fmt.Printf("\ncaasper price: %.0f%% of control (paper: 85%%), slack reduced %.0f%% (paper: 39.6%%)\n",
		ca.CostRatioVs(control)*100, ca.SlackReductionVs(control)*100)

	fmt.Println("\nlimit trajectory (cores per hour):")
	for h := 0; h*60 < len(ca.LimitsPerMinute); h++ {
		end := (h + 1) * 60
		if end > len(ca.LimitsPerMinute) {
			end = len(ca.LimitsPerMinute)
		}
		peak := 0.0
		for _, v := range ca.LimitsPerMinute[h*60 : end] {
			if v > peak {
				peak = v
			}
		}
		fmt.Printf("  h%02d %s\n", h, bar(peak))
	}
}

func bar(v float64) string {
	out := ""
	for i := 0.0; i < v; i++ {
		out += "█"
	}
	return fmt.Sprintf("%-8s %.0f", out, v)
}
