package tuning

import (
	"strings"
	"testing"
	"time"

	"caasper/internal/sim"
	"caasper/internal/stats"
	"caasper/internal/trace"
	"caasper/internal/workload"
)

func shortCyclicalTrace() *trace.Trace {
	rng := stats.NewRNG(1)
	day := 6 * 60.0 // compressed "day" for fast tests
	p := workload.WithNoise(workload.Add(
		workload.Diurnal(2, 6, day/2),
		workload.Repeat(workload.Spike(workload.Constant(0), day*0.7, 30, 3), day),
	), 0.2, rng)
	return workload.Render("mini-cyclical", p, 18*time.Hour)
}

func TestParamsToConfig(t *testing.T) {
	p := Params{
		SlopeHigh: 3, SlopeLow: 0.1, SlackHigh: 0.1, SlackLow: 0.3,
		MaxStepUp: 6, MaxStepDown: 2, MinCores: 3, QuantileP: 0.95,
		WindowMinutes: 40,
	}
	cfg := p.ToConfig(16)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.MinCores != 3 || cfg.MaxStepUp != 6 || cfg.SF.CMin != 3 {
		t.Errorf("config = %+v", cfg)
	}
	if p.Proactive() {
		t.Error("zero horizon should be reactive")
	}
	p.HorizonMinutes = 30
	if !p.Proactive() {
		t.Error("nonzero horizon should be proactive")
	}
	if !strings.Contains(p.String(), "proactive") {
		t.Errorf("String = %q", p.String())
	}
}

func TestSearchSpaceSampleWithinBounds(t *testing.T) {
	space := DefaultSearchSpace()
	rng := stats.NewRNG(7)
	var sawProactive, sawReactive bool
	for i := 0; i < 500; i++ {
		p := space.Sample(rng)
		if p.SlopeHigh < p.SlopeLow {
			t.Fatalf("invariant broken: %+v", p)
		}
		if p.SlopeHigh < space.SlopeLow[0] || p.SlopeHigh > space.SlopeHigh[1] {
			t.Fatalf("SlopeHigh out of range: %v", p.SlopeHigh)
		}
		if p.MaxStepUp < space.MaxStepUp[0] || p.MaxStepUp > space.MaxStepUp[1] {
			t.Fatalf("MaxStepUp out of range: %v", p.MaxStepUp)
		}
		if p.MinCores < 2 || p.MinCores > 4 {
			t.Fatalf("MinCores out of range: %v", p.MinCores)
		}
		if p.Proactive() {
			sawProactive = true
			if p.HorizonMinutes < space.HorizonMinutes[0] || p.HorizonMinutes > space.HorizonMinutes[1] {
				t.Fatalf("Horizon out of range: %v", p.HorizonMinutes)
			}
		} else {
			sawReactive = true
		}
		// Sampled configs must validate.
		if err := p.ToConfig(20).Validate(); err != nil {
			t.Fatalf("sampled config invalid: %v (%+v)", err, p)
		}
	}
	if !sawProactive || !sawReactive {
		t.Error("sampler should mix reactive and proactive combinations")
	}
}

func TestSearchSpaceDegenerateIntRange(t *testing.T) {
	space := DefaultSearchSpace()
	space.MaxStepUp = [2]int{5, 5}
	rng := stats.NewRNG(1)
	for i := 0; i < 20; i++ {
		if p := space.Sample(rng); p.MaxStepUp != 5 {
			t.Fatalf("degenerate range sampled %d", p.MaxStepUp)
		}
	}
}

func TestEvaluateAndObjective(t *testing.T) {
	tr := shortCyclicalTrace()
	simOpts := sim.DefaultOptions(8, 12)
	p := Params{
		SlopeHigh: 2, SlopeLow: 0.2, SlackHigh: 0.1, SlackLow: 0.3,
		MaxStepUp: 8, MaxStepDown: 2, MinCores: 2, QuantileP: 0.95,
		WindowMinutes: 40,
	}
	ev, err := Evaluate(tr, p, simOpts, 360)
	if err != nil {
		t.Fatal(err)
	}
	if ev.K <= 0 {
		t.Errorf("K = %v, expected some slack", ev.K)
	}
	if ev.Cost <= 0 {
		t.Errorf("cost = %v", ev.Cost)
	}
	// G(0, e) ignores slack entirely.
	if Objective(0, ev) != ev.C {
		t.Error("G(0) should equal C")
	}
	if Objective(2, ev) != 2*ev.K+ev.C {
		t.Error("G(2) mismatch")
	}
}

func TestRandomSearchProducesTradeoff(t *testing.T) {
	tr := shortCyclicalTrace()
	simOpts := sim.DefaultOptions(8, 12)
	evals, err := RandomSearch(tr, SearchOptions{
		Samples:       60,
		Seed:          11,
		Sim:           &simOpts,
		SeasonMinutes: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) < 50 {
		t.Fatalf("only %d evaluations", len(evals))
	}
	// The search must produce spread in both K and C.
	var minK, maxK = evals[0].K, evals[0].K
	for _, e := range evals {
		if e.K < minK {
			minK = e.K
		}
		if e.K > maxK {
			maxK = e.K
		}
	}
	if maxK <= minK {
		t.Error("no K spread in search results")
	}

	// Determinism.
	evals2, err := RandomSearch(tr, SearchOptions{
		Samples:       60,
		Seed:          11,
		Sim:           &simOpts,
		SeasonMinutes: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals2) != len(evals) || evals2[0].K != evals[0].K {
		t.Error("search must be deterministic per seed")
	}
}

func TestRandomSearchValidation(t *testing.T) {
	if _, err := RandomSearch(nil, SearchOptions{Samples: 5}); err == nil {
		t.Error("nil trace should fail")
	}
	tr := shortCyclicalTrace()
	if _, err := RandomSearch(tr, SearchOptions{Samples: 0}); err == nil {
		t.Error("zero samples should fail")
	}
}

func TestBestForAlphaAndOptimalSet(t *testing.T) {
	evals := []Evaluation{
		{Params: Params{MinCores: 2}, K: 100, C: 0, N: 5},  // high slack, no throttle
		{Params: Params{MinCores: 3}, K: 10, C: 50, N: 3},  // balanced
		{Params: Params{MinCores: 4}, K: 0, C: 200, N: 10}, // no slack, heavy throttle
	}
	// α = 0: only C matters → first entry.
	best, err := BestForAlpha(0, evals)
	if err != nil {
		t.Fatal(err)
	}
	if best.K != 100 {
		t.Errorf("α=0 best = %+v", best)
	}
	// Huge α: only K matters → third entry.
	best, _ = BestForAlpha(1000, evals)
	if best.K != 0 {
		t.Errorf("α→∞ best = %+v", best)
	}
	// Moderate α picks the balanced one: G(1) = {100, 60, 200}.
	best, _ = BestForAlpha(1, evals)
	if best.K != 10 {
		t.Errorf("α=1 best = %+v", best)
	}
	if _, err := BestForAlpha(1, nil); err == nil {
		t.Error("empty evaluations should fail")
	}

	set, err := OptimalSet(evals, []float64{0, 1, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Errorf("optimal set size = %d, want 3 distinct", len(set))
	}
	// Duplicates collapse.
	set, _ = OptimalSet(evals, []float64{1, 1, 1})
	if len(set) != 1 {
		t.Errorf("duplicate alphas should dedupe, got %d", len(set))
	}
	if _, err := OptimalSet(evals, nil); err == nil {
		t.Error("no alphas should fail")
	}
}

func TestBestForAlphaTieBreaks(t *testing.T) {
	evals := []Evaluation{
		{Params: Params{MinCores: 2}, K: 10, C: 10, N: 5, Cost: 100},
		{Params: Params{MinCores: 3}, K: 10, C: 10, N: 2, Cost: 90},
		{Params: Params{MinCores: 4}, K: 10, C: 10, N: 2, Cost: 80},
	}
	best, _ := BestForAlpha(1, evals)
	if best.N != 2 || best.Cost != 80 {
		t.Errorf("tie-break = %+v, want fewest scalings then cheapest", best)
	}
}

func TestSampleAlphas(t *testing.T) {
	alphas := SampleAlphas(100, -5, 5, 3)
	if len(alphas) != 100 {
		t.Fatalf("len = %d", len(alphas))
	}
	for i, a := range alphas {
		if a < 0.0067 || a > 148.5 {
			t.Fatalf("alpha %v out of e^±5 range", a)
		}
		if i > 0 && a < alphas[i-1] {
			t.Fatal("alphas must be sorted")
		}
	}
	// Determinism.
	again := SampleAlphas(100, -5, 5, 3)
	for i := range again {
		if again[i] != alphas[i] {
			t.Fatal("alpha sampling must be deterministic")
		}
	}
}

func TestParetoFrontier(t *testing.T) {
	evals := []Evaluation{
		{K: 1, C: 100},
		{K: 2, C: 50},
		{K: 3, C: 60}, // dominated by (2, 50)
		{K: 4, C: 10},
		{K: 5, C: 10}, // dominated by (4, 10)
		{K: 6, C: 5},
	}
	front := ParetoFrontier(evals)
	if len(front) != 4 {
		t.Fatalf("frontier = %+v", front)
	}
	// Sorted by K, strictly decreasing C.
	for i := 1; i < len(front); i++ {
		if front[i].K < front[i-1].K || front[i].C >= front[i-1].C {
			t.Fatalf("frontier not staircase: %+v", front)
		}
	}
	if ParetoFrontier(nil) != nil {
		t.Error("empty input should return nil")
	}
	// Identical points: exactly one survives.
	same := []Evaluation{{K: 1, C: 1}, {K: 1, C: 1}}
	if got := ParetoFrontier(same); len(got) != 1 {
		t.Errorf("identical points frontier = %d", len(got))
	}
}

func TestAlphaSweepMonotoneTradeoff(t *testing.T) {
	// Figure 13's property: as α grows, the chosen combination's slack
	// K must not increase (and throttling C must not decrease).
	tr := shortCyclicalTrace()
	simOpts := sim.DefaultOptions(8, 12)
	evals, err := RandomSearch(tr, SearchOptions{
		Samples:       80,
		Seed:          5,
		Sim:           &simOpts,
		SeasonMinutes: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	alphas := []float64{0, 0.063, 0.447, 2.28, 50}
	var prevK, prevC float64
	for i, a := range alphas {
		best, err := BestForAlpha(a, evals)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if best.K > prevK+1e-9 {
				t.Errorf("α=%v: K=%v rose above %v", a, best.K, prevK)
			}
			if best.C < prevC-1e-9 {
				t.Errorf("α=%v: C=%v fell below %v", a, best.C, prevC)
			}
		}
		prevK, prevC = best.K, best.C
	}
}
