// Package forecast provides the pluggable time-series forecasters behind
// CaaSPER's proactive mode (paper §4.3). The paper evaluated OpenShift's
// predictors, sktime's naïve and ARIMA forecasters, and Prophet, and chose
// the seasonal-naïve forecaster for production because it is the most
// lightweight and explainable; this package implements the same candidate
// set behind one small interface so callers can swap algorithms freely:
//
//   - SeasonalNaive: repeat the last full season (the production choice)
//   - HoltWinters:   additive triple exponential smoothing
//   - AR:            autoregressive model fit by Yule–Walker equations
//   - MovingAverage / ExponentialMovingAverage: the lightweight right-
//     sizing baselines of Zhao & Uta (paper §7)
//   - Drift:         linear extrapolation of the recent trend
//
// Forecasters are deterministic and allocation-light; Fit is cheap enough
// to call at every decision tick (the paper's OpenShift criticism is that
// retraining competing models per decision caused high latency — the
// naïve family avoids that by construction).
package forecast

import (
	"errors"
	"fmt"

	"caasper/internal/stats"
)

// Forecaster predicts future CPU usage from history.
type Forecaster interface {
	// Name identifies the algorithm in reports and explanations.
	Name() string
	// Forecast returns horizon future values given the history window.
	// Implementations must not mutate history. An error is returned when
	// the history is too short for the algorithm.
	Forecast(history []float64, horizon int) ([]float64, error)
}

// ErrShortHistory is returned when the history is insufficient to fit.
var ErrShortHistory = errors.New("forecast: history too short")

// HistoryBound is implemented by forecasters whose output depends only on
// a bounded tail of the history. Bounded-memory callers (the recommender
// adapters' window.Ring) use it to size their retained window: feeding
// such a forecaster the last HistoryNeed samples yields bit-identical
// forecasts to feeding it the full series.
//
// HistoryNeed returns the number of trailing samples the forecast is a
// function of, or a negative value when the forecaster genuinely reads
// the entire series (e.g. exponential smoothing, whose level folds in
// every sample ever seen) — callers must then retain unbounded history.
type HistoryBound interface {
	HistoryNeed() int
}

// HistoryNeed reports the retained-history requirement of f: f's own
// HistoryNeed when it implements HistoryBound, otherwise -1 (unbounded).
// A nil forecaster needs nothing.
func HistoryNeed(f Forecaster) int {
	if f == nil {
		return 0
	}
	if hb, ok := f.(HistoryBound); ok {
		return hb.HistoryNeed()
	}
	return -1
}

// clampNonNegative floors forecasts at zero — CPU usage cannot be negative.
func clampNonNegative(xs []float64) []float64 {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		}
	}
	return xs
}

// SeasonalNaive repeats the most recent full season: the forecast for time
// T+h is the observation at T+h−season. With no full season of history it
// degrades to last-value ("naïve") forecasting. This is the paper's
// production algorithm.
type SeasonalNaive struct {
	// Season is the seasonality period in samples (e.g. 1440 for a daily
	// cycle at one-minute resolution). Season ≤ 1 degrades to last-value.
	Season int
}

// Name implements Forecaster.
func (f *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive(%d)", f.Season) }

// Forecast implements Forecaster.
func (f *SeasonalNaive) Forecast(history []float64, horizon int) ([]float64, error) {
	if len(history) == 0 {
		return nil, ErrShortHistory
	}
	if horizon <= 0 {
		return nil, nil
	}
	out := make([]float64, horizon)
	if f.Season <= 1 || len(history) < f.Season {
		last := history[len(history)-1]
		for i := range out {
			out[i] = last
		}
		return clampNonNegative(out), nil
	}
	for h := 0; h < horizon; h++ {
		// Index of the same phase in the most recent complete season.
		idx := len(history) - f.Season + (h % f.Season)
		out[h] = history[idx]
	}
	return clampNonNegative(out), nil
}

// HistoryNeed implements HistoryBound: one full season (the forecast
// indexes at most Season samples back; shorter histories degrade to
// last-value, which needs just the final sample).
func (f *SeasonalNaive) HistoryNeed() int {
	if f.Season <= 1 {
		return 1
	}
	return f.Season
}

// Naive forecasts the last observed value for the whole horizon.
type Naive struct{}

// Name implements Forecaster.
func (Naive) Name() string { return "naive" }

// HistoryNeed implements HistoryBound: only the last value matters.
func (Naive) HistoryNeed() int { return 1 }

// Forecast implements Forecaster.
func (Naive) Forecast(history []float64, horizon int) ([]float64, error) {
	return (&SeasonalNaive{Season: 1}).Forecast(history, horizon)
}

// MovingAverage forecasts the mean of the last Window samples, held flat.
type MovingAverage struct {
	// Window is the averaging window length in samples.
	Window int
}

// Name implements Forecaster.
func (f *MovingAverage) Name() string { return fmt.Sprintf("moving-average(%d)", f.Window) }

// HistoryNeed implements HistoryBound. A non-positive Window averages
// the entire series, so it reports unbounded.
func (f *MovingAverage) HistoryNeed() int {
	if f.Window <= 0 {
		return -1
	}
	return f.Window
}

// Forecast implements Forecaster.
func (f *MovingAverage) Forecast(history []float64, horizon int) ([]float64, error) {
	if len(history) == 0 {
		return nil, ErrShortHistory
	}
	if horizon <= 0 {
		return nil, nil
	}
	w := f.Window
	if w <= 0 || w > len(history) {
		w = len(history)
	}
	m := stats.Mean(history[len(history)-w:])
	out := make([]float64, horizon)
	for i := range out {
		out[i] = m
	}
	return clampNonNegative(out), nil
}

// ExponentialMovingAverage forecasts the exponentially weighted mean of
// the history, held flat.
type ExponentialMovingAverage struct {
	// Alpha is the smoothing factor in (0, 1]; larger reacts faster.
	Alpha float64
}

// Name implements Forecaster.
func (f *ExponentialMovingAverage) Name() string { return fmt.Sprintf("ema(%.2f)", f.Alpha) }

// Forecast implements Forecaster.
func (f *ExponentialMovingAverage) Forecast(history []float64, horizon int) ([]float64, error) {
	if len(history) == 0 {
		return nil, ErrShortHistory
	}
	if horizon <= 0 {
		return nil, nil
	}
	a := f.Alpha
	if a <= 0 || a > 1 {
		return nil, fmt.Errorf("forecast: ema alpha %v out of (0,1]", f.Alpha)
	}
	level := history[0]
	for _, v := range history[1:] {
		level = a*v + (1-a)*level
	}
	out := make([]float64, horizon)
	for i := range out {
		out[i] = level
	}
	return clampNonNegative(out), nil
}

// Drift extrapolates the straight line through the first and last points
// of the recent window — the classic "drift" benchmark forecaster.
type Drift struct {
	// Window bounds how much history the trend is fit over; ≤0 uses all.
	Window int
}

// Name implements Forecaster.
func (f *Drift) Name() string { return fmt.Sprintf("drift(%d)", f.Window) }

// HistoryNeed implements HistoryBound. Window ≤ 1 fits the trend over
// the whole series, so it reports unbounded.
func (f *Drift) HistoryNeed() int {
	if f.Window <= 1 {
		return -1
	}
	return f.Window
}

// Forecast implements Forecaster.
func (f *Drift) Forecast(history []float64, horizon int) ([]float64, error) {
	if len(history) < 2 {
		return nil, ErrShortHistory
	}
	if horizon <= 0 {
		return nil, nil
	}
	w := f.Window
	if w <= 1 || w > len(history) {
		w = len(history)
	}
	recent := history[len(history)-w:]
	first, last := recent[0], recent[len(recent)-1]
	slope := (last - first) / float64(len(recent)-1)
	out := make([]float64, horizon)
	for h := 0; h < horizon; h++ {
		out[h] = last + slope*float64(h+1)
	}
	return clampNonNegative(out), nil
}
