package k8s

import (
	"errors"

	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/stats"
)

// Scaler is the decision-enacting entity of the autoscaling loop (paper
// Figure 1, steps 5–6): it feeds fresh metric samples to the recommender,
// polls it on a fixed cadence, performs health and resource safety checks,
// and instructs the operator to enact accepted decisions.
//
// Per the paper's adaptation (§3.3, footnote 6), the scaler targets the
// *primary* replica's metrics: secondary replicas of a primary/secondary
// database see an asymmetric workload, so set-wide averaging (what stock
// VPA does for stateless replica sets) would dilute the signal.
type Scaler struct {
	// Rec is the pluggable recommender.
	Rec recommend.Recommender
	// Operator enacts resizes.
	Operator *Operator
	// Metrics is the metric source.
	Metrics *MetricsServer
	// DecisionEverySeconds is the recommendation cadence (600 s in the
	// experiments: resizes take minutes, deciding faster is pointless).
	DecisionEverySeconds int64
	// MinCores / MaxCores are the safety clamps ("we implemented logic
	// to prevent autoscaling below 2 cores", §3.3; the max is bounded by
	// node size and co-tenants, §6.2).
	MinCores, MaxCores int

	// ScalingsRequested counts accepted resize requests.
	ScalingsRequested int
	// DecisionsSuppressed counts decision ticks that landed while a
	// rolling update was in flight. Those ticks never enter
	// DecisionSeries (the §5 t-test compares enactable decisions only),
	// but they are counted — and, with Events enabled, recorded as
	// "k8s.decision-suppressed" — so a mid-update decision is auditable
	// instead of silently absent.
	DecisionsSuppressed int
	// DecisionSeries records the clamped recommendation at every
	// decision tick (holds included) for §5's simulator-vs-live t-test.
	DecisionSeries []float64

	// Events, when non-nil and enabled, receives "k8s.decision" and
	// "k8s.decision-suppressed" events keyed on simulated seconds.
	Events obs.Sink
	// Stats, when non-nil, receives decision counters.
	Stats *obs.Registry

	cursor       int // metric samples already fed to the recommender
	nextDecision int64
}

// NewScaler wires the loop together.
func NewScaler(rec recommend.Recommender, op *Operator, ms *MetricsServer, decisionEverySeconds int64, minCores, maxCores int) (*Scaler, error) {
	if rec == nil || op == nil || ms == nil {
		return nil, errors.New("k8s: scaler needs recommender, operator and metrics")
	}
	if decisionEverySeconds < 1 {
		return nil, errors.New("k8s: decision cadence must be ≥ 1s")
	}
	if minCores < 1 || maxCores < minCores {
		return nil, errors.New("k8s: bad core bounds")
	}
	return &Scaler{
		Rec:                  rec,
		Operator:             op,
		Metrics:              ms,
		DecisionEverySeconds: decisionEverySeconds,
		MinCores:             minCores,
		MaxCores:             maxCores,
		nextDecision:         decisionEverySeconds,
	}, nil
}

// Tick advances the scaler at time now (seconds). It pushes any newly
// closed metric samples of the primary into the recommender and, at the
// decision cadence, asks for and possibly enacts a recommendation.
func (s *Scaler) Tick(now int64) {
	primary := s.Operator.Set.Primary()
	if primary == nil {
		return
	}
	// Feed newly closed samples. The cursor survives failovers: the
	// series switches to the new primary's history from its next sample
	// on, mirroring how the live pipeline re-targets its metric query.
	series := s.Metrics.UsageSeries(primary.Name)
	for s.cursor < len(series) {
		s.Rec.Observe(s.cursor, series[s.cursor])
		s.cursor++
	}

	if now < s.nextDecision {
		return
	}
	s.nextDecision = now + s.DecisionEverySeconds

	current := s.Operator.Set.CPULimit()

	// Health check: never stack decisions on an in-flight update. The
	// suppressed tick is still recorded — the recommender is consulted
	// (Recommenders are pure functions of their observation history, so
	// the extra query does not perturb later decisions) and the would-be
	// target lands in the audit stream, but no resize is issued and the
	// tick stays out of DecisionSeries.
	if s.Operator.Updating() {
		s.DecisionsSuppressed++
		s.Stats.Counter("k8s.decisions_suppressed").Inc()
		if obs.Enabled(s.Events) {
			target := stats.ClampInt(s.Rec.Recommend(current), s.MinCores, s.MaxCores)
			s.Events.Emit(obs.Event{T: now, Type: "k8s.decision-suppressed", Fields: []obs.Field{
				obs.I("current", int64(current)),
				obs.I("target", int64(target)),
				obs.I("updating_to", int64(s.Operator.TargetCores())),
				obs.S("reason", "rolling update in flight"),
			}})
		}
		return
	}
	target := stats.ClampInt(s.Rec.Recommend(current), s.MinCores, s.MaxCores)
	s.DecisionSeries = append(s.DecisionSeries, float64(target))
	s.Stats.Counter("k8s.decisions").Inc()
	if obs.Enabled(s.Events) {
		s.Events.Emit(obs.Event{T: now, Type: "k8s.decision", Fields: []obs.Field{
			obs.I("current", int64(current)),
			obs.I("target", int64(target)),
			obs.B("hold", target == current),
		}})
	}
	if target == current {
		return
	}
	if err := s.Operator.RequestResize(target, now); err == nil {
		s.ScalingsRequested++
		s.Stats.Counter("k8s.resizes_requested").Inc()
	}
}
