package sim

import (
	"strings"
	"testing"

	"time"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/recommend"
	"caasper/internal/trace"
	"caasper/internal/workload"
)

func testFactories() []RecommenderFactory {
	return []RecommenderFactory{
		{Name: "control", New: func() (recommend.Recommender, error) {
			return baselines.NewControl(8), nil
		}},
		{Name: "caasper", New: func() (recommend.Recommender, error) {
			return recommend.NewCaaSPERReactive(core.DefaultConfig(12), 40)
		}},
		{Name: "vpa", New: func() (recommend.Recommender, error) {
			return baselines.NewKubernetesVPA(baselines.DefaultKubernetesVPAOptions(12))
		}},
	}
}

func TestRunMatrixValidation(t *testing.T) {
	tr := workload.Workday12h(1)
	if _, err := RunMatrix(nil, testFactories(), Options{}); err == nil {
		t.Error("no traces should fail")
	}
	if _, err := RunMatrix([]*trace.Trace{tr}, nil, Options{}); err == nil {
		t.Error("no factories should fail")
	}
}

func TestRunMatrixCrossProduct(t *testing.T) {
	traces := []*trace.Trace{
		workload.Workday12h(1),
		workload.StepTrace62h(1),
	}
	factories := testFactories()
	// MaxCores 0: per-trace ladders derived from each trace's peak.
	m, err := RunMatrix(traces, factories, Options{
		DecisionEveryMinutes: 10,
		ResizeDelayMinutes:   10,
		BillingPeriod:        defaultBillingPeriod(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != len(traces)*len(factories) {
		t.Fatalf("cells = %d, want %d", len(m.Cells), len(traces)*len(factories))
	}
	// Every cell is addressable.
	for _, tr := range traces {
		for _, f := range factories {
			if m.Cell(tr.Name, f.Name) == nil {
				t.Errorf("missing cell %s/%s", tr.Name, f.Name)
			}
		}
	}
	if m.Cell("nope", "caasper") != nil {
		t.Error("unknown cell should be nil")
	}
	// CaaSPER should beat the fixed control on slack for both traces.
	for _, tr := range traces {
		ctrl := m.Cell(tr.Name, "control")
		ca := m.Cell(tr.Name, "caasper")
		if ca.SumSlack >= ctrl.SumSlack {
			// Control at 8 cores may itself be tight on the step trace;
			// only require CaaSPER not to be wildly worse.
			if ca.SumSlack > ctrl.SumSlack*1.5 {
				t.Errorf("%s: caasper slack %v vs control %v", tr.Name, ca.SumSlack, ctrl.SumSlack)
			}
		}
	}
	// Summary renders every cell.
	s := m.Summary()
	for _, f := range factories {
		if !strings.Contains(s, f.Name) {
			t.Errorf("summary missing %s:\n%s", f.Name, s)
		}
	}
}

func TestRunMatrixFactoryErrorPropagates(t *testing.T) {
	traces := []*trace.Trace{workload.Workday12h(1)}
	bad := []RecommenderFactory{{Name: "broken", New: func() (recommend.Recommender, error) {
		return recommend.NewCaaSPERReactive(core.Config{}, 40) // invalid config
	}}}
	if _, err := RunMatrix(traces, bad, DefaultOptions(4, 8)); err == nil {
		t.Error("factory error should propagate")
	}
}

func defaultBillingPeriod() (d time.Duration) { return time.Hour }
