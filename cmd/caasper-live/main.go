// Command caasper-live runs the full end-to-end autoscaling loop of
// paper Figure 1 on the miniature Kubernetes substrate: a replicated
// database stateful set driven by a BenchBase-style transaction schedule,
// with a metrics server, a pluggable recommender, a scaler with safety
// checks, rolling-update resizes (secondaries first, primary last), and
// pay-as-you-go billing.
//
// Examples:
//
//	caasper-live -workload workday -database A -recommender caasper
//	caasper-live -workload cyclical -database B -recommender caasper-proactive
//	caasper-live -workload workday -recommender control -control-cores 6
//
// Chaos runs inject deterministic faults (same -fault-seed, same faults):
//
//	caasper-live -workload workday -recommender caasper \
//	    -faults "restart-stuck:p=0.3:dur=600,metrics-gap:p=0.01" -fault-seed 7
package main

import (
	"flag"
	"fmt"
	_ "net/http/pprof"
	"os"
	"time"

	"caasper"
	"caasper/internal/faults"
	"caasper/internal/obs"
)

func main() {
	var (
		workloadName = flag.String("workload", "workday", "live workload: workday (12h), cyclical (3d), customer (20h)")
		database     = flag.String("database", "A", "database preset: A (3 replicas, strict HA) or B (2 read-scale replicas)")
		recName      = flag.String("recommender", "caasper", "recommender: caasper, caasper-proactive, vpa, openshift, autopilot, control")
		initial      = flag.Int("initial", 0, "initial cores (default: workload preset)")
		maxCores     = flag.Int("max", 0, "max cores (default: workload preset)")
		controlAt    = flag.Int("control-cores", 0, "fixed allocation for -recommender control")
		seed         = flag.Uint64("seed", 1, "workload seed")
		faultSpec    = flag.String("faults", "", `fault-injection spec, e.g. "restart-fail:p=0.1,restart-stuck:p=0.05:dur=600,metrics-gap:p=0.02,sched-pressure:cores=4" (empty: fault-free)`)
		faultSeed    = flag.Uint64("fault-seed", 1, "fault-injection seed (same seed, same faults, byte-identical stream)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	var cli obs.CLIConfig
	cli.Register(flag.CommandLine)
	flag.Parse()

	session, err := cli.Start()
	if err != nil {
		fatal(err)
	}
	defer session.Finish(os.Stdout)

	if _, err := obs.StartPprof(*pprofAddr, session.Log); err != nil {
		fatal(err)
	}

	// Graceful SIGINT/SIGTERM: flush the event sink and print the obs
	// summary before exiting, so an interrupted run still yields a valid
	// NDJSON stream and its metrics.
	session.FlushOnSignal(os.Stdout, "caasper-live")

	sched, defInitial, defMax, err := buildSchedule(*workloadName, *seed)
	if err != nil {
		fatal(err)
	}
	if *initial == 0 {
		*initial = defInitial
	}
	if *maxCores == 0 {
		*maxCores = defMax
	}
	if *controlAt == 0 {
		*controlAt = *maxCores
	}

	rec, err := buildRecommender(*recName, *maxCores, *controlAt)
	if err != nil {
		fatal(err)
	}

	var opts caasper.LiveOptions
	switch *database {
	case "A", "a":
		opts = caasper.DatabaseA(*initial, *maxCores)
	case "B", "b":
		opts = caasper.DatabaseB(*initial, *maxCores)
	default:
		fatal(fmt.Errorf("unknown database preset %q", *database))
	}

	if opts.MaxCores > 8 {
		opts.Cluster = caasper.LargeCluster()
	}
	opts.Events = session.Events
	opts.Metrics = session.Metrics

	spec, err := caasper.ParseFaultSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	opts.FaultSpec = spec
	opts.FaultSeed = *faultSeed

	fmt.Printf("running %s on Database %s with %s (%d replicas, %d..%d cores)...\n",
		sched.Name, *database, rec.Name(), opts.Replicas, opts.MinCores, opts.MaxCores)
	start := time.Now()
	res, err := caasper.RunLive(sched, rec, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nsimulated %s of wall time in %v\n", sched.Duration, time.Since(start).Round(time.Millisecond))
	fmt.Printf("completed txns:     %.0f\n", res.DB.CompletedTxns)
	fmt.Printf("dropped txns:       %.0f\n", res.DB.DroppedTxns)
	fmt.Printf("retried txns:       %.0f\n", res.DB.RetriedTxns)
	fmt.Printf("interrupted txns:   %.0f (restarts/failovers)\n", res.DB.InterruptedTxns)
	fmt.Printf("avg / med / p99 latency: %.1f / %.1f / %.1f ms\n",
		res.DB.AvgLatencyMS, res.DB.MedLatencyMS, res.DB.P99LatencyMS)
	fmt.Printf("resizes:            %d (failovers %d, suppressed decisions %d)\n",
		res.NumScalings, res.Failovers, res.DecisionsSuppressed)
	fmt.Printf("sum slack:          %.1f core-minutes\n", res.SumSlack)
	fmt.Printf("sum insufficient:   %.1f core-minutes\n", res.SumInsufficient)
	fmt.Printf("billed core-hours:  %.0f\n", res.BilledCorePeriods)
	if !spec.Empty() {
		fmt.Printf("\n%s", faults.Summarize(spec, *faultSeed, res.FaultCounts))
		fmt.Printf("  restart retries:           %d\n", res.RestartRetries)
		fmt.Printf("  resizes aborted:           %d\n", res.ResizesAborted)
	}
}

func buildSchedule(name string, seed uint64) (*caasper.LoadSchedule, int, int, error) {
	switch name {
	case "workday":
		return caasper.WorkdaySchedule(seed), 6, 6, nil
	case "cyclical":
		tr := caasper.Workloads["cyclical3d"](seed)
		sched, err := caasper.ScheduleForCores("cyclical-live", caasper.MixedOLTP(),
			caasper.TracePattern(tr), 72*time.Hour)
		return sched, 14, 14, err
	case "customer":
		src := caasper.Workloads["customer"](seed)
		sw, err := caasper.Stitch(src, 30*time.Minute)
		if err != nil {
			return nil, 0, 0, err
		}
		return sw.Schedule(), 6, 6, nil
	default:
		return nil, 0, 0, fmt.Errorf("unknown live workload %q", name)
	}
}

func buildRecommender(name string, maxCores, controlAt int) (caasper.Recommender, error) {
	return caasper.NewRecommenderByName(name, caasper.RecommenderSettings{
		MaxCores:     maxCores,
		ControlCores: controlAt,
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caasper-live:", err)
	os.Exit(1)
}
