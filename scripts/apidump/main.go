// Command apidump prints the exported package-level API surface of the
// root caasper package, one "kind Name" line per symbol, sorted. It is
// the input to scripts/apicheck.sh, which diffs the output against the
// checked-in snapshot testdata/api.txt so accidental API drift (a
// removed re-export, a renamed constructor) fails `make check` instead
// of surprising downstream callers.
//
// With -deprecated it prints only the symbols whose doc comment carries
// a "Deprecated:" marker — the allowlist apicheck.sh consults when the
// surface grows: additions of deprecated compatibility aliases pass the
// gate without a snapshot update, anything else requires UPDATE=1.
//
// Run from the repository root:
//
//	go run ./scripts/apidump
//	go run ./scripts/apidump -deprecated
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
)

func main() {
	depOnly := flag.Bool("deprecated", false, `print only symbols whose doc contains "Deprecated:"`)
	flag.Parse()

	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
	pkg, ok := pkgs["caasper"]
	if !ok {
		fmt.Fprintln(os.Stderr, "apidump: package caasper not found in cwd (run from the repo root)")
		os.Exit(1)
	}

	deprecated := func(docs ...*ast.CommentGroup) bool {
		for _, d := range docs {
			if d != nil && strings.Contains(d.Text(), "Deprecated:") {
				return true
			}
		}
		return false
	}

	var lines []string
	emit := func(line string, docs ...*ast.CommentGroup) {
		if *depOnly && !deprecated(docs...) {
			return
		}
		lines = append(lines, line)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods live on re-exported internal types; only
				// package-level functions are part of this surface.
				if d.Recv == nil && d.Name.IsExported() {
					emit("func "+d.Name.Name, d.Doc)
				}
			case *ast.GenDecl:
				kind := map[token.Token]string{
					token.CONST: "const", token.VAR: "var", token.TYPE: "type",
				}[d.Tok]
				if kind == "" {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							emit(kind+" "+s.Name.Name, s.Doc, d.Doc)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() {
								emit(kind+" "+name.Name, s.Doc, d.Doc)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}
