#!/bin/sh
# Fleet determinism gate: run a 16-tenant chaos fleet on the small
# (contended) cluster at worker counts 1, 4 and 8 — under the race
# detector — and require the fleet/fault event streams to be
# byte-identical to each other and to the checked-in golden. Any
# scheduling nondeterminism in the parallel observe/decide phase, drift
# in the arbiter's grant order, or a change to the fault injector's draw
# discipline shows up here as a byte diff.
#
#   sh scripts/fleet.sh            # verify against testdata/fleet golden
#   UPDATE=1 sh scripts/fleet.sh   # regenerate the golden
set -eu

cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

FAULTS="restart-fail:p=0.2,metrics-gap:p=0.05,sched-pressure:p=0.5:dur=60:cores=4"

for W in 1 4 8; do
    echo "==> fleet chaos run (16 tenants, 240 min, small cluster, workers $W, -race)"
    go run -race ./cmd/caasper-fleet -tenants 16 -minutes 240 -cluster small \
        -workers "$W" -faults "$FAULTS" -fault-seed 7 \
        -events "$OUT/fleet-w$W.ndjson" >/dev/null
    grep -E '"type":"(fleet|fault)\.' "$OUT/fleet-w$W.ndjson" > "$OUT/fleet-w$W.events.ndjson"
done

cmp "$OUT/fleet-w1.events.ndjson" "$OUT/fleet-w4.events.ndjson"
cmp "$OUT/fleet-w1.events.ndjson" "$OUT/fleet-w8.events.ndjson"
echo "==> worker counts 1/4/8 byte-identical"

GOLD=testdata/fleet
if [ "${UPDATE:-0}" = "1" ]; then
    mkdir -p "$GOLD"
    cp "$OUT/fleet-w1.events.ndjson" "$GOLD/fleet-chaos.golden.ndjson"
    wc -l "$GOLD/fleet-chaos.golden.ndjson"
    echo "==> golden regenerated in $GOLD/"
    exit 0
fi

diff -u "$GOLD/fleet-chaos.golden.ndjson" "$OUT/fleet-w1.events.ndjson"
echo "==> OK: fleet event stream byte-identical to golden at every worker count"
