package window

import (
	"testing"
)

// TestRingMatchesUnboundedTail: the ring's View must equal the tail of a
// plain append history at every step — this is the exact substitution
// the recommender adapters rely on for bit-equal decisions.
func TestRingMatchesUnboundedTail(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 5, 7, 40, 64} {
		r := New(capacity)
		var hist []float64
		for i := 0; i < 5*capacity+3; i++ {
			v := float64(i*i%17) + 0.25
			r.Push(v)
			hist = append(hist, v)

			want := hist
			if len(want) > capacity {
				want = want[len(want)-capacity:]
			}
			got := r.View()
			if len(got) != len(want) {
				t.Fatalf("cap=%d step=%d: View len=%d want %d", capacity, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("cap=%d step=%d: View[%d]=%v want %v", capacity, i, j, got[j], want[j])
				}
			}
			if r.Total() != len(hist) {
				t.Fatalf("cap=%d: Total=%d want %d", capacity, r.Total(), len(hist))
			}
			if r.Len() != len(want) {
				t.Fatalf("cap=%d: Len=%d want %d", capacity, r.Len(), len(want))
			}
		}
	}
}

func TestRingTail(t *testing.T) {
	r := New(5)
	for i := 0; i < 12; i++ {
		r.Push(float64(i))
	}
	// Retained: 7 8 9 10 11.
	got := r.Tail(3)
	if len(got) != 3 || got[0] != 9 || got[2] != 11 {
		t.Fatalf("Tail(3) = %v", got)
	}
	if n := len(r.Tail(99)); n != 5 {
		t.Fatalf("Tail(99) len = %d, want 5", n)
	}
}

func TestRingUnbounded(t *testing.T) {
	r := New(0)
	if r.Bounded() {
		t.Fatal("capacity 0 must be unbounded")
	}
	for i := 0; i < 100; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 100 || r.Total() != 100 || len(r.View()) != 100 {
		t.Fatalf("unbounded: Len=%d Total=%d view=%d", r.Len(), r.Total(), len(r.View()))
	}
	if r.View()[99] != 99 {
		t.Fatalf("unbounded tail sample = %v", r.View()[99])
	}

	// The zero value is an unbounded window too.
	var z Ring
	z.Push(1.5)
	if z.Len() != 1 || z.View()[0] != 1.5 {
		t.Fatalf("zero-value ring: Len=%d view=%v", z.Len(), z.View())
	}
}

func TestRingReset(t *testing.T) {
	r := New(4)
	for i := 0; i < 9; i++ {
		r.Push(float64(i))
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.View()) != 0 {
		t.Fatalf("after Reset: Len=%d Total=%d view=%d", r.Len(), r.Total(), len(r.View()))
	}
	r.Push(42)
	if v := r.View(); len(v) != 1 || v[0] != 42 {
		t.Fatalf("push after reset: %v", v)
	}

	u := New(0)
	u.Push(1)
	u.Reset()
	if u.Len() != 0 {
		t.Fatal("unbounded reset must clear")
	}
}

// TestRingSteadyStateZeroAllocs pins the memory contract: once warm, a
// bounded ring's Push and View never allocate.
func TestRingSteadyStateZeroAllocs(t *testing.T) {
	r := New(40)
	for i := 0; i < 80; i++ {
		r.Push(float64(i))
	}
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		r.Push(3.5)
		v := r.View()
		sink += v[len(v)-1]
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push+View allocs = %v, want 0", allocs)
	}
	_ = sink
}

// TestRingBoundedMemory: the backing array never grows past 2×capacity,
// no matter how long the replay — the O(window) memory claim itself.
func TestRingBoundedMemory(t *testing.T) {
	const capacity = 40
	r := New(capacity)
	for i := 0; i < 43200; i++ { // a month of minutes
		r.Push(float64(i % 97))
	}
	if got := cap(r.buf); got != 2*capacity {
		t.Fatalf("backing capacity = %d, want %d", got, 2*capacity)
	}
	if r.Len() != capacity || r.Total() != 43200 {
		t.Fatalf("Len=%d Total=%d", r.Len(), r.Total())
	}
}

// TestRingTailEdgeCases: Tail must clamp rather than panic across the full
// edge-case grid — negative n (the former slice-bounds panic), zero, the
// exact retained length and beyond — in both bounded and unbounded mode.
func TestRingTailEdgeCases(t *testing.T) {
	for _, capacity := range []int{0, 5} {
		mode := "bounded"
		if capacity == 0 {
			mode = "unbounded"
		}
		r := New(capacity)
		for i := 0; i < 12; i++ {
			r.Push(float64(i))
		}
		n := r.Len()
		for _, tc := range []struct {
			n, wantLen int
		}{
			{-1, 0}, {-100, 0}, {0, 0}, {1, 1}, {n, n}, {n + 1, n}, {n + 100, n},
		} {
			got := r.Tail(tc.n)
			if len(got) != tc.wantLen {
				t.Fatalf("%s: Tail(%d) len = %d, want %d", mode, tc.n, len(got), tc.wantLen)
			}
			if tc.wantLen > 0 && got[tc.wantLen-1] != 11 {
				t.Fatalf("%s: Tail(%d) last = %v, want 11", mode, tc.n, got[tc.wantLen-1])
			}
		}
		// An empty window: every n degrades to the empty tail.
		empty := New(capacity)
		for _, n := range []int{-3, 0, 1, 7} {
			if got := empty.Tail(n); len(got) != 0 {
				t.Fatalf("%s empty: Tail(%d) = %v, want empty", mode, n, got)
			}
		}
	}
}

// TestRingSnapshotRestore: a restored ring must be bit-identical to the
// snapshotted one — same View, Total, Len and, critically, the same
// internal offset, so subsequent pushes land in the same slots.
func TestRingSnapshotRestore(t *testing.T) {
	for _, capacity := range []int{0, 1, 5, 40} {
		for _, pushes := range []int{0, 3, 5, 7, 40, 41, 97} {
			if capacity == 0 && pushes > 50 {
				continue
			}
			orig := New(capacity)
			for i := 0; i < pushes; i++ {
				orig.Push(float64(i) * 1.5)
			}
			vals, total := orig.Snapshot(nil)
			if total != pushes {
				t.Fatalf("cap=%d pushes=%d: Snapshot total = %d", capacity, pushes, total)
			}
			rest := New(capacity)
			if err := rest.Restore(vals, total); err != nil {
				t.Fatalf("cap=%d pushes=%d: Restore: %v", capacity, pushes, err)
			}
			// Push the same continuation into both; the views must agree
			// at every step.
			for i := 0; i < 2*capacity+3; i++ {
				ov, rv := orig.View(), rest.View()
				if len(ov) != len(rv) {
					t.Fatalf("cap=%d pushes=%d step=%d: len %d vs %d", capacity, pushes, i, len(ov), len(rv))
				}
				for j := range ov {
					if ov[j] != rv[j] {
						t.Fatalf("cap=%d pushes=%d step=%d: View[%d] %v vs %v", capacity, pushes, i, j, ov[j], rv[j])
					}
				}
				if orig.Total() != rest.Total() {
					t.Fatalf("cap=%d pushes=%d: Total %d vs %d", capacity, pushes, orig.Total(), rest.Total())
				}
				v := float64(100+i) * 0.25
				orig.Push(v)
				rest.Push(v)
			}
		}
	}
}

// TestRingRestoreRejectsBadSnapshots: malformed snapshots must error, not
// corrupt the window.
func TestRingRestoreRejectsBadSnapshots(t *testing.T) {
	if err := New(3).Restore([]float64{1, 2, 3, 4}, 4); err == nil {
		t.Fatal("over-capacity snapshot must be rejected")
	}
	if err := New(3).Restore([]float64{1, 2}, 1); err == nil {
		t.Fatal("total < retained must be rejected")
	}
	if err := New(3).Restore([]float64{1, 2}, 7); err == nil {
		t.Fatal("saturated snapshot with a short window must be rejected")
	}
	if err := New(0).Restore([]float64{1, 2}, 3); err == nil {
		t.Fatal("unbounded snapshot with total != len must be rejected")
	}
}
