package sim

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"caasper/internal/errs"
	"caasper/internal/obs"
	"caasper/internal/parallel"
	"caasper/internal/recommend"
	"caasper/internal/trace"
)

// RecommenderFactory builds a fresh recommender per run. Matrix runs need
// factories rather than instances because recommenders are stateful and a
// single instance must not leak history across cells. New must be safe to
// call from concurrent goroutines (RunMatrix evaluates cells across a
// worker pool): construct everything inside the closure instead of
// capturing shared mutable state.
type RecommenderFactory struct {
	// Name labels the column in reports.
	Name string
	// New builds a fresh instance.
	New func() (recommend.Recommender, error)
}

// MatrixCell is one (trace, recommender) outcome.
type MatrixCell struct {
	TraceName       string
	RecommenderName string
	Result          *Result
}

// Matrix is the cross product of traces and recommender factories — the
// harness behind "evaluate our system's performance against standard
// workload traces" (§5 objective 2): every policy sees every trace under
// identical simulator settings.
type Matrix struct {
	Cells []MatrixCell

	// Cell-lookup index, built lazily on first use and rebuilt when the
	// Cells slice has visibly changed length (callers may append).
	mu       sync.Mutex
	index    map[cellKey]int
	indexLen int
}

type cellKey struct{ traceName, recName string }

// RunMatrix simulates every trace × factory combination across a bounded
// worker pool (opts.Workers; below 1 selects runtime.GOMAXPROCS(0)). opts
// applies to every cell except InitialCores/MaxCores, which are derived
// per trace when opts.MaxCores is zero (traces of very different
// magnitudes need different ladders).
//
// Each cell is an independent task writing its result into an
// index-addressed slot, so Cells keeps the historical ordering — traces in
// input order, factories in input order within each trace — and the whole
// matrix is deterministic for every worker count. On failure the error
// reported is the one from the earliest cell in that ordering.
func RunMatrix(traces []*trace.Trace, factories []RecommenderFactory, opts Options) (*Matrix, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("sim: no traces: %w", errs.ErrEmptyTrace)
	}
	if len(factories) == 0 {
		return nil, fmt.Errorf("sim: no recommender factories: %w", errs.ErrInvalidConfig)
	}
	// Derive per-trace options sequentially (a cheap peak scan) so the
	// worker tasks are pure cell evaluations.
	perTrace := make([]Options, len(traces))
	for i, tr := range traces {
		cellOpts := opts
		if cellOpts.MaxCores == 0 {
			peak := tr.Peak()
			cellOpts.MaxCores = int(peak*1.5) + 2
			cellOpts.InitialCores = int(peak) + 1
			if cellOpts.MinCores == 0 {
				cellOpts.MinCores = 2
			}
			if cellOpts.InitialCores > cellOpts.MaxCores {
				cellOpts.InitialCores = cellOpts.MaxCores
			}
		}
		perTrace[i] = cellOpts
	}

	// Event determinism across worker counts: concurrent cells must not
	// interleave on a shared sink, so each cell captures its stream into
	// its own memory sink and the streams are replayed into the caller's
	// sink sequentially, in cell order, after the pool drains. Each cell's
	// replay is preceded by a "sim.run" header identifying it. The sink is
	// resolved through Hooks so the embedded RunHooks.Events spelling works
	// too; the per-cell memory sink is installed via the deprecated outer
	// field, which Merge lets win inside each cell's Run.
	shared := opts.Hooks().Events
	emitShared := obs.Enabled(shared)
	var cellSinks []*obs.MemorySink
	if emitShared {
		cellSinks = make([]*obs.MemorySink, len(traces)*len(factories))
	}

	m := &Matrix{Cells: make([]MatrixCell, len(traces)*len(factories))}
	err := parallel.ForEach(context.Background(), len(m.Cells), opts.Workers, func(idx int) error {
		ti, fi := idx/len(factories), idx%len(factories)
		tr, f := traces[ti], factories[fi]
		rec, err := f.New()
		if err != nil {
			return fmt.Errorf("sim: building %s: %w", f.Name, err)
		}
		cellOpts := perTrace[ti]
		if emitShared {
			cellSinks[idx] = obs.NewMemorySink()
			cellOpts.Events = cellSinks[idx]
		}
		res, err := Run(tr, rec, cellOpts)
		if err != nil {
			return fmt.Errorf("sim: %s on %s: %w", f.Name, tr.Name, err)
		}
		m.Cells[idx] = MatrixCell{
			TraceName:       tr.Name,
			RecommenderName: f.Name,
			Result:          res,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if emitShared {
		for idx, mem := range cellSinks {
			c := m.Cells[idx]
			shared.Emit(obs.Event{T: 0, Type: "sim.run", Fields: []obs.Field{
				obs.S("trace", c.TraceName),
				obs.S("recommender", c.RecommenderName),
				obs.I("cell", int64(idx)),
			}})
			mem.ReplayTo(shared)
		}
	}
	return m, nil
}

// Cell returns the result for a (trace, recommender) pair, or nil. The
// first lookup builds a map index over Cells (rebuilt if Cells grows), so
// repeated lookups over large matrices are O(1) instead of a linear scan.
func (m *Matrix) Cell(traceName, recName string) *Result {
	m.mu.Lock()
	if m.index == nil || m.indexLen != len(m.Cells) {
		m.index = make(map[cellKey]int, len(m.Cells))
		for i, c := range m.Cells {
			k := cellKey{c.TraceName, c.RecommenderName}
			if _, dup := m.index[k]; !dup { // first match wins, like the scan did
				m.index[k] = i
			}
		}
		m.indexLen = len(m.Cells)
	}
	i, ok := m.index[cellKey{traceName, recName}]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	return m.Cells[i].Result
}

// Summary renders a compact comparison table: one row per cell with the
// K/C/N metrics, throughput proxy and cost.
func (m *Matrix) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-20s %10s %10s %6s %10s %8s\n",
		"trace", "recommender", "K", "C", "N", "thrpt", "cost")
	for _, c := range m.Cells {
		r := c.Result
		fmt.Fprintf(&b, "%-14s %-20s %10.0f %10.1f %6d %9.1f%% %8.0f\n",
			c.TraceName, c.RecommenderName, r.SumSlack, r.SumInsufficient,
			r.NumScalings, r.ThroughputProxy()*100, r.BilledCorePeriods)
	}
	return b.String()
}
