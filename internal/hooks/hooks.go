// Package hooks defines RunHooks, the telemetry-and-chaos knob set shared
// by every run harness in the repository. The simulator (internal/sim),
// the live loop (internal/dbsim) and the fleet controller (internal/fleet)
// all accept the same three cross-cutting inputs — a structured event
// sink, a runtime metrics registry and a deterministic fault injection
// spec — but grew them independently with divergent field shapes (the live
// harness took a prebuilt *faults.Injector, the simulator a *faults.Spec
// plus a seed). RunHooks unifies them: one embedded struct, one canonical
// spelling, one resolution rule.
//
// Migration contract: the pre-existing top-level fields on sim.Options and
// dbsim.HarnessOptions remain as deprecated aliases. Each harness resolves
// its effective hooks with Merge, where a set deprecated field wins over
// the embedded one, so every existing caller builds and behaves
// identically.
package hooks

import (
	"caasper/internal/faults"
	"caasper/internal/obs"
)

// RunHooks carries the cross-cutting run knobs shared by SimOptions,
// LiveOptions and FleetOptions.
type RunHooks struct {
	// Events, when non-nil and enabled, receives the run's structured
	// event stream, keyed on the harness's simulated-time unit and
	// byte-identical across worker counts.
	Events obs.Sink
	// Metrics, when non-nil, receives runtime counters, gauges and
	// latency histograms. Wall-clock telemetry, outside the determinism
	// contract.
	Metrics *obs.Registry
	// FaultSpec, when non-empty, injects deterministic faults into the
	// run (see internal/faults). Nil runs fault-free at nil-check cost.
	FaultSpec *faults.Spec
	// FaultSeed seeds the injector's deterministic draws: same seed,
	// same faults, byte-for-byte, at any worker count.
	FaultSeed uint64
}

// Merge overlays the deprecated alias fields onto the embedded hooks and
// returns the effective set: any non-zero alias wins over the embedded
// field it shadows. Harnesses call this once at run start.
func (h RunHooks) Merge(events obs.Sink, metrics *obs.Registry, spec *faults.Spec, seed uint64) RunHooks {
	if events != nil {
		h.Events = events
	}
	if metrics != nil {
		h.Metrics = metrics
	}
	if spec != nil {
		h.FaultSpec = spec
	}
	if seed != 0 {
		h.FaultSeed = seed
	}
	return h
}

// Injector builds the run's fault injector from the spec and seed (nil —
// the zero-cost fault-free path — when the spec is empty). The injector's
// Events/Stats are prewired to the hooks' sink and registry.
func (h RunHooks) Injector() *faults.Injector {
	inj := faults.New(h.FaultSpec, h.FaultSeed)
	if inj != nil {
		inj.Events, inj.Stats = h.Events, h.Metrics
	}
	return inj
}
