package sim

import (
	"errors"
	"fmt"
	"strings"

	"caasper/internal/recommend"
	"caasper/internal/trace"
)

// RecommenderFactory builds a fresh recommender per run. Matrix runs need
// factories rather than instances because recommenders are stateful and a
// single instance must not leak history across cells.
type RecommenderFactory struct {
	// Name labels the column in reports.
	Name string
	// New builds a fresh instance.
	New func() (recommend.Recommender, error)
}

// MatrixCell is one (trace, recommender) outcome.
type MatrixCell struct {
	TraceName       string
	RecommenderName string
	Result          *Result
}

// Matrix is the cross product of traces and recommender factories — the
// harness behind "evaluate our system's performance against standard
// workload traces" (§5 objective 2): every policy sees every trace under
// identical simulator settings.
type Matrix struct {
	Cells []MatrixCell
}

// RunMatrix simulates every trace × factory combination. opts applies to
// every cell except InitialCores/MaxCores, which are derived per trace
// when opts.MaxCores is zero (traces of very different magnitudes need
// different ladders).
func RunMatrix(traces []*trace.Trace, factories []RecommenderFactory, opts Options) (*Matrix, error) {
	if len(traces) == 0 {
		return nil, errors.New("sim: no traces")
	}
	if len(factories) == 0 {
		return nil, errors.New("sim: no recommender factories")
	}
	m := &Matrix{}
	for _, tr := range traces {
		cellOpts := opts
		if cellOpts.MaxCores == 0 {
			peak := 0.0
			for _, v := range tr.Values {
				if v > peak {
					peak = v
				}
			}
			cellOpts.MaxCores = int(peak*1.5) + 2
			cellOpts.InitialCores = int(peak) + 1
			if cellOpts.MinCores == 0 {
				cellOpts.MinCores = 2
			}
			if cellOpts.InitialCores > cellOpts.MaxCores {
				cellOpts.InitialCores = cellOpts.MaxCores
			}
		}
		for _, f := range factories {
			rec, err := f.New()
			if err != nil {
				return nil, fmt.Errorf("sim: building %s: %w", f.Name, err)
			}
			res, err := Run(tr, rec, cellOpts)
			if err != nil {
				return nil, fmt.Errorf("sim: %s on %s: %w", f.Name, tr.Name, err)
			}
			m.Cells = append(m.Cells, MatrixCell{
				TraceName:       tr.Name,
				RecommenderName: f.Name,
				Result:          res,
			})
		}
	}
	return m, nil
}

// Cell returns the result for a (trace, recommender) pair, or nil.
func (m *Matrix) Cell(traceName, recName string) *Result {
	for _, c := range m.Cells {
		if c.TraceName == traceName && c.RecommenderName == recName {
			return c.Result
		}
	}
	return nil
}

// Summary renders a compact comparison table: one row per cell with the
// K/C/N metrics, throughput proxy and cost.
func (m *Matrix) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-20s %10s %10s %6s %10s %8s\n",
		"trace", "recommender", "K", "C", "N", "thrpt", "cost")
	for _, c := range m.Cells {
		r := c.Result
		fmt.Fprintf(&b, "%-14s %-20s %10.0f %10.1f %6d %9.1f%% %8.0f\n",
			c.TraceName, c.RecommenderName, r.SumSlack, r.SumInsufficient,
			r.NumScalings, r.ThroughputProxy()*100, r.BilledCorePeriods)
	}
	return b.String()
}
